# Empty dependencies file for admin_operations.
# This may be replaced when dependencies are built.
