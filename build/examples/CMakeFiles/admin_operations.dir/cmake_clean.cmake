file(REMOVE_RECURSE
  "CMakeFiles/admin_operations.dir/admin_operations.cpp.o"
  "CMakeFiles/admin_operations.dir/admin_operations.cpp.o.d"
  "admin_operations"
  "admin_operations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admin_operations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
