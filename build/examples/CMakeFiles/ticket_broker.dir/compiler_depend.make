# Empty compiler generated dependencies file for ticket_broker.
# This may be replaced when dependencies are built.
