file(REMOVE_RECURSE
  "CMakeFiles/ticket_broker.dir/ticket_broker.cpp.o"
  "CMakeFiles/ticket_broker.dir/ticket_broker.cpp.o.d"
  "ticket_broker"
  "ticket_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ticket_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
