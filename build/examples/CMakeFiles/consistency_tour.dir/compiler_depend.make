# Empty compiler generated dependencies file for consistency_tour.
# This may be replaced when dependencies are built.
