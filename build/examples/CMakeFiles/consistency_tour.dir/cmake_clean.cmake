file(REMOVE_RECURSE
  "CMakeFiles/consistency_tour.dir/consistency_tour.cpp.o"
  "CMakeFiles/consistency_tour.dir/consistency_tour.cpp.o.d"
  "consistency_tour"
  "consistency_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistency_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
