file(REMOVE_RECURSE
  "CMakeFiles/bench_c5_consistency.dir/bench_c5_consistency.cc.o"
  "CMakeFiles/bench_c5_consistency.dir/bench_c5_consistency.cc.o.d"
  "bench_c5_consistency"
  "bench_c5_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c5_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
