file(REMOVE_RECURSE
  "CMakeFiles/bench_c13_management.dir/bench_c13_management.cc.o"
  "CMakeFiles/bench_c13_management.dir/bench_c13_management.cc.o.d"
  "bench_c13_management"
  "bench_c13_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c13_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
