file(REMOVE_RECURSE
  "CMakeFiles/bench_c10_availability.dir/bench_c10_availability.cc.o"
  "CMakeFiles/bench_c10_availability.dir/bench_c10_availability.cc.o.d"
  "bench_c10_availability"
  "bench_c10_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c10_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
