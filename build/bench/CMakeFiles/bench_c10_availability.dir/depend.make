# Empty dependencies file for bench_c10_availability.
# This may be replaced when dependencies are built.
