
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_c10_availability.cc" "bench/CMakeFiles/bench_c10_availability.dir/bench_c10_availability.cc.o" "gcc" "bench/CMakeFiles/bench_c10_availability.dir/bench_c10_availability.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/middleware/CMakeFiles/replidb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/replidb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/replidb_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/replidb_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/client/CMakeFiles/replidb_client.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/replidb_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/replidb_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/replidb_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/gcs/CMakeFiles/replidb_gcs.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/replidb_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/replidb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/replidb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
