file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_hot_standby.dir/bench_f3_hot_standby.cc.o"
  "CMakeFiles/bench_f3_hot_standby.dir/bench_f3_hot_standby.cc.o.d"
  "bench_f3_hot_standby"
  "bench_f3_hot_standby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_hot_standby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
