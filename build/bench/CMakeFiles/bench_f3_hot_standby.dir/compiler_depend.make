# Empty compiler generated dependencies file for bench_f3_hot_standby.
# This may be replaced when dependencies are built.
