file(REMOVE_RECURSE
  "CMakeFiles/bench_c8_recovery.dir/bench_c8_recovery.cc.o"
  "CMakeFiles/bench_c8_recovery.dir/bench_c8_recovery.cc.o.d"
  "bench_c8_recovery"
  "bench_c8_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c8_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
