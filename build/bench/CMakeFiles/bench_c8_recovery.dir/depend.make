# Empty dependencies file for bench_c8_recovery.
# This may be replaced when dependencies are built.
