# Empty compiler generated dependencies file for bench_c2_multimaster_saturation.
# This may be replaced when dependencies are built.
