file(REMOVE_RECURSE
  "CMakeFiles/bench_c2_multimaster_saturation.dir/bench_c2_multimaster_saturation.cc.o"
  "CMakeFiles/bench_c2_multimaster_saturation.dir/bench_c2_multimaster_saturation.cc.o.d"
  "bench_c2_multimaster_saturation"
  "bench_c2_multimaster_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c2_multimaster_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
