# Empty compiler generated dependencies file for bench_c1_ticket_broker.
# This may be replaced when dependencies are built.
