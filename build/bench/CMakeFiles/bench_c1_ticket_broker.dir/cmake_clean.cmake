file(REMOVE_RECURSE
  "CMakeFiles/bench_c1_ticket_broker.dir/bench_c1_ticket_broker.cc.o"
  "CMakeFiles/bench_c1_ticket_broker.dir/bench_c1_ticket_broker.cc.o.d"
  "bench_c1_ticket_broker"
  "bench_c1_ticket_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c1_ticket_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
