file(REMOVE_RECURSE
  "CMakeFiles/bench_c9_low_load_overhead.dir/bench_c9_low_load_overhead.cc.o"
  "CMakeFiles/bench_c9_low_load_overhead.dir/bench_c9_low_load_overhead.cc.o.d"
  "bench_c9_low_load_overhead"
  "bench_c9_low_load_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c9_low_load_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
