# Empty compiler generated dependencies file for bench_c9_low_load_overhead.
# This may be replaced when dependencies are built.
