# Empty dependencies file for bench_c6_stmt_vs_ws.
# This may be replaced when dependencies are built.
