file(REMOVE_RECURSE
  "CMakeFiles/bench_c6_stmt_vs_ws.dir/bench_c6_stmt_vs_ws.cc.o"
  "CMakeFiles/bench_c6_stmt_vs_ws.dir/bench_c6_stmt_vs_ws.cc.o.d"
  "bench_c6_stmt_vs_ws"
  "bench_c6_stmt_vs_ws.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c6_stmt_vs_ws.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
