file(REMOVE_RECURSE
  "CMakeFiles/bench_c12_partitions.dir/bench_c12_partitions.cc.o"
  "CMakeFiles/bench_c12_partitions.dir/bench_c12_partitions.cc.o.d"
  "bench_c12_partitions"
  "bench_c12_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c12_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
