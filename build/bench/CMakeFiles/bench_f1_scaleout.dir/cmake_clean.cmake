file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_scaleout.dir/bench_f1_scaleout.cc.o"
  "CMakeFiles/bench_f1_scaleout.dir/bench_f1_scaleout.cc.o.d"
  "bench_f1_scaleout"
  "bench_f1_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
