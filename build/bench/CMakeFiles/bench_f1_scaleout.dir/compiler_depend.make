# Empty compiler generated dependencies file for bench_f1_scaleout.
# This may be replaced when dependencies are built.
