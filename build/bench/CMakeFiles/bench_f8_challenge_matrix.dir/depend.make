# Empty dependencies file for bench_f8_challenge_matrix.
# This may be replaced when dependencies are built.
