file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_challenge_matrix.dir/bench_f8_challenge_matrix.cc.o"
  "CMakeFiles/bench_f8_challenge_matrix.dir/bench_f8_challenge_matrix.cc.o.d"
  "bench_f8_challenge_matrix"
  "bench_f8_challenge_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_challenge_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
