# Empty dependencies file for bench_c11_group_comm.
# This may be replaced when dependencies are built.
