file(REMOVE_RECURSE
  "CMakeFiles/bench_c11_group_comm.dir/bench_c11_group_comm.cc.o"
  "CMakeFiles/bench_c11_group_comm.dir/bench_c11_group_comm.cc.o.d"
  "bench_c11_group_comm"
  "bench_c11_group_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c11_group_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
