file(REMOVE_RECURSE
  "CMakeFiles/bench_c3_slave_lag.dir/bench_c3_slave_lag.cc.o"
  "CMakeFiles/bench_c3_slave_lag.dir/bench_c3_slave_lag.cc.o.d"
  "bench_c3_slave_lag"
  "bench_c3_slave_lag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c3_slave_lag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
