# Empty compiler generated dependencies file for bench_c3_slave_lag.
# This may be replaced when dependencies are built.
