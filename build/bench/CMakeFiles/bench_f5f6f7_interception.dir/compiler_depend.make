# Empty compiler generated dependencies file for bench_f5f6f7_interception.
# This may be replaced when dependencies are built.
