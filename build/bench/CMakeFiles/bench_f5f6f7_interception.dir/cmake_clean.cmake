file(REMOVE_RECURSE
  "CMakeFiles/bench_f5f6f7_interception.dir/bench_f5f6f7_interception.cc.o"
  "CMakeFiles/bench_f5f6f7_interception.dir/bench_f5f6f7_interception.cc.o.d"
  "bench_f5f6f7_interception"
  "bench_f5f6f7_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5f6f7_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
