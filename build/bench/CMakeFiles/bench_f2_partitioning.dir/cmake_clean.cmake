file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_partitioning.dir/bench_f2_partitioning.cc.o"
  "CMakeFiles/bench_f2_partitioning.dir/bench_f2_partitioning.cc.o.d"
  "bench_f2_partitioning"
  "bench_f2_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
