file(REMOVE_RECURSE
  "CMakeFiles/bench_c7_failure_detection.dir/bench_c7_failure_detection.cc.o"
  "CMakeFiles/bench_c7_failure_detection.dir/bench_c7_failure_detection.cc.o.d"
  "bench_c7_failure_detection"
  "bench_c7_failure_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_c7_failure_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
