file(REMOVE_RECURSE
  "CMakeFiles/bench_f4_wan.dir/bench_f4_wan.cc.o"
  "CMakeFiles/bench_f4_wan.dir/bench_f4_wan.cc.o.d"
  "bench_f4_wan"
  "bench_f4_wan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f4_wan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
