file(REMOVE_RECURSE
  "libreplidb_sql.a"
)
