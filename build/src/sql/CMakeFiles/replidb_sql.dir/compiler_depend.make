# Empty compiler generated dependencies file for replidb_sql.
# This may be replaced when dependencies are built.
