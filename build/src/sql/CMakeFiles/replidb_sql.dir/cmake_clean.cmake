file(REMOVE_RECURSE
  "CMakeFiles/replidb_sql.dir/ast.cc.o"
  "CMakeFiles/replidb_sql.dir/ast.cc.o.d"
  "CMakeFiles/replidb_sql.dir/determinism.cc.o"
  "CMakeFiles/replidb_sql.dir/determinism.cc.o.d"
  "CMakeFiles/replidb_sql.dir/parser.cc.o"
  "CMakeFiles/replidb_sql.dir/parser.cc.o.d"
  "CMakeFiles/replidb_sql.dir/value.cc.o"
  "CMakeFiles/replidb_sql.dir/value.cc.o.d"
  "libreplidb_sql.a"
  "libreplidb_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
