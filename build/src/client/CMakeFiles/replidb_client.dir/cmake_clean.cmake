file(REMOVE_RECURSE
  "CMakeFiles/replidb_client.dir/connection_pool.cc.o"
  "CMakeFiles/replidb_client.dir/connection_pool.cc.o.d"
  "CMakeFiles/replidb_client.dir/driver.cc.o"
  "CMakeFiles/replidb_client.dir/driver.cc.o.d"
  "libreplidb_client.a"
  "libreplidb_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
