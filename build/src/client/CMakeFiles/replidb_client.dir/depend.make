# Empty dependencies file for replidb_client.
# This may be replaced when dependencies are built.
