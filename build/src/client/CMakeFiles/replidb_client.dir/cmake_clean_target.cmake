file(REMOVE_RECURSE
  "libreplidb_client.a"
)
