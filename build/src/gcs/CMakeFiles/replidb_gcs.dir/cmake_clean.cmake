file(REMOVE_RECURSE
  "CMakeFiles/replidb_gcs.dir/group.cc.o"
  "CMakeFiles/replidb_gcs.dir/group.cc.o.d"
  "libreplidb_gcs.a"
  "libreplidb_gcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_gcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
