# Empty dependencies file for replidb_gcs.
# This may be replaced when dependencies are built.
