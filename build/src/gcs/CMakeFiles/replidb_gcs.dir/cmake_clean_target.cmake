file(REMOVE_RECURSE
  "libreplidb_gcs.a"
)
