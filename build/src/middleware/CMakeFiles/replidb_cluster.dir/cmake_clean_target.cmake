file(REMOVE_RECURSE
  "libreplidb_cluster.a"
)
