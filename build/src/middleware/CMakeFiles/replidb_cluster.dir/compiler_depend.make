# Empty compiler generated dependencies file for replidb_cluster.
# This may be replaced when dependencies are built.
