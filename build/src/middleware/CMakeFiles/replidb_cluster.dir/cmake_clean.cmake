file(REMOVE_RECURSE
  "CMakeFiles/replidb_cluster.dir/cluster.cc.o"
  "CMakeFiles/replidb_cluster.dir/cluster.cc.o.d"
  "libreplidb_cluster.a"
  "libreplidb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
