file(REMOVE_RECURSE
  "libreplidb_middleware.a"
)
