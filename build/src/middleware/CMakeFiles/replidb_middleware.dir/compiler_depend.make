# Empty compiler generated dependencies file for replidb_middleware.
# This may be replaced when dependencies are built.
