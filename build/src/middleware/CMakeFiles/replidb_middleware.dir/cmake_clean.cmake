file(REMOVE_RECURSE
  "CMakeFiles/replidb_middleware.dir/controller.cc.o"
  "CMakeFiles/replidb_middleware.dir/controller.cc.o.d"
  "CMakeFiles/replidb_middleware.dir/recovery_log.cc.o"
  "CMakeFiles/replidb_middleware.dir/recovery_log.cc.o.d"
  "CMakeFiles/replidb_middleware.dir/replica_node.cc.o"
  "CMakeFiles/replidb_middleware.dir/replica_node.cc.o.d"
  "libreplidb_middleware.a"
  "libreplidb_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
