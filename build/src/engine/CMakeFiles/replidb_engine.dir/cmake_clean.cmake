file(REMOVE_RECURSE
  "CMakeFiles/replidb_engine.dir/rdbms.cc.o"
  "CMakeFiles/replidb_engine.dir/rdbms.cc.o.d"
  "CMakeFiles/replidb_engine.dir/table.cc.o"
  "CMakeFiles/replidb_engine.dir/table.cc.o.d"
  "libreplidb_engine.a"
  "libreplidb_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
