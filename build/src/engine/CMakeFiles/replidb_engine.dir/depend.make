# Empty dependencies file for replidb_engine.
# This may be replaced when dependencies are built.
