file(REMOVE_RECURSE
  "libreplidb_engine.a"
)
