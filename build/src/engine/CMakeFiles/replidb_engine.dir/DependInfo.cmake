
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/rdbms.cc" "src/engine/CMakeFiles/replidb_engine.dir/rdbms.cc.o" "gcc" "src/engine/CMakeFiles/replidb_engine.dir/rdbms.cc.o.d"
  "/root/repo/src/engine/table.cc" "src/engine/CMakeFiles/replidb_engine.dir/table.cc.o" "gcc" "src/engine/CMakeFiles/replidb_engine.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/replidb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/replidb_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
