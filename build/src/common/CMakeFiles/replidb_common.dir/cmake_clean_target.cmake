file(REMOVE_RECURSE
  "libreplidb_common.a"
)
