# Empty compiler generated dependencies file for replidb_common.
# This may be replaced when dependencies are built.
