file(REMOVE_RECURSE
  "CMakeFiles/replidb_common.dir/histogram.cc.o"
  "CMakeFiles/replidb_common.dir/histogram.cc.o.d"
  "CMakeFiles/replidb_common.dir/logging.cc.o"
  "CMakeFiles/replidb_common.dir/logging.cc.o.d"
  "CMakeFiles/replidb_common.dir/status.cc.o"
  "CMakeFiles/replidb_common.dir/status.cc.o.d"
  "libreplidb_common.a"
  "libreplidb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
