file(REMOVE_RECURSE
  "CMakeFiles/replidb_workload.dir/load_generator.cc.o"
  "CMakeFiles/replidb_workload.dir/load_generator.cc.o.d"
  "CMakeFiles/replidb_workload.dir/workloads.cc.o"
  "CMakeFiles/replidb_workload.dir/workloads.cc.o.d"
  "libreplidb_workload.a"
  "libreplidb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
