# Empty dependencies file for replidb_workload.
# This may be replaced when dependencies are built.
