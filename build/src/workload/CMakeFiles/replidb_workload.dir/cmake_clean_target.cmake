file(REMOVE_RECURSE
  "libreplidb_workload.a"
)
