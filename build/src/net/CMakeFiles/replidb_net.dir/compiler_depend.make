# Empty compiler generated dependencies file for replidb_net.
# This may be replaced when dependencies are built.
