file(REMOVE_RECURSE
  "libreplidb_net.a"
)
