file(REMOVE_RECURSE
  "CMakeFiles/replidb_net.dir/failure_detector.cc.o"
  "CMakeFiles/replidb_net.dir/failure_detector.cc.o.d"
  "CMakeFiles/replidb_net.dir/network.cc.o"
  "CMakeFiles/replidb_net.dir/network.cc.o.d"
  "libreplidb_net.a"
  "libreplidb_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
