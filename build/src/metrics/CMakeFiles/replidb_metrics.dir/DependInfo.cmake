
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/availability.cc" "src/metrics/CMakeFiles/replidb_metrics.dir/availability.cc.o" "gcc" "src/metrics/CMakeFiles/replidb_metrics.dir/availability.cc.o.d"
  "/root/repo/src/metrics/report.cc" "src/metrics/CMakeFiles/replidb_metrics.dir/report.cc.o" "gcc" "src/metrics/CMakeFiles/replidb_metrics.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/replidb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/replidb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
