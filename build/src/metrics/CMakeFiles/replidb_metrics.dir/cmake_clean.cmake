file(REMOVE_RECURSE
  "CMakeFiles/replidb_metrics.dir/availability.cc.o"
  "CMakeFiles/replidb_metrics.dir/availability.cc.o.d"
  "CMakeFiles/replidb_metrics.dir/report.cc.o"
  "CMakeFiles/replidb_metrics.dir/report.cc.o.d"
  "libreplidb_metrics.a"
  "libreplidb_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
