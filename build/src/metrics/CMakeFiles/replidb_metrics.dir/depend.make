# Empty dependencies file for replidb_metrics.
# This may be replaced when dependencies are built.
