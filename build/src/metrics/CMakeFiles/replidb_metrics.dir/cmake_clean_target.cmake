file(REMOVE_RECURSE
  "libreplidb_metrics.a"
)
