file(REMOVE_RECURSE
  "libreplidb_sim.a"
)
