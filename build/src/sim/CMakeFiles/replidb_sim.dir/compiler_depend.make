# Empty compiler generated dependencies file for replidb_sim.
# This may be replaced when dependencies are built.
