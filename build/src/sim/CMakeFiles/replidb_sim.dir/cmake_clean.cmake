file(REMOVE_RECURSE
  "CMakeFiles/replidb_sim.dir/simulator.cc.o"
  "CMakeFiles/replidb_sim.dir/simulator.cc.o.d"
  "libreplidb_sim.a"
  "libreplidb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
