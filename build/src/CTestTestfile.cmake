# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("sim")
subdirs("net")
subdirs("sql")
subdirs("engine")
subdirs("gcs")
subdirs("metrics")
subdirs("middleware")
subdirs("client")
subdirs("workload")
subdirs("faults")
