file(REMOVE_RECURSE
  "CMakeFiles/replidb_faults.dir/fault_injector.cc.o"
  "CMakeFiles/replidb_faults.dir/fault_injector.cc.o.d"
  "libreplidb_faults.a"
  "libreplidb_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replidb_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
