file(REMOVE_RECURSE
  "libreplidb_faults.a"
)
