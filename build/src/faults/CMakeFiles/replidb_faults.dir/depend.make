# Empty dependencies file for replidb_faults.
# This may be replaced when dependencies are built.
