# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/gcs_test[1]_include.cmake")
include("/root/repo/build/tests/middleware_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/recovery_log_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/sql_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/engine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/lb_test[1]_include.cmake")
include("/root/repo/build/tests/standby_test[1]_include.cmake")
