file(REMOVE_RECURSE
  "CMakeFiles/standby_test.dir/standby_test.cc.o"
  "CMakeFiles/standby_test.dir/standby_test.cc.o.d"
  "standby_test"
  "standby_test.pdb"
  "standby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
