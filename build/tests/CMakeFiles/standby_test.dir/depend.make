# Empty dependencies file for standby_test.
# This may be replaced when dependencies are built.
