# Empty dependencies file for recovery_log_test.
# This may be replaced when dependencies are built.
