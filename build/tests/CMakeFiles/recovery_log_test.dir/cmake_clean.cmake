file(REMOVE_RECURSE
  "CMakeFiles/recovery_log_test.dir/recovery_log_test.cc.o"
  "CMakeFiles/recovery_log_test.dir/recovery_log_test.cc.o.d"
  "recovery_log_test"
  "recovery_log_test.pdb"
  "recovery_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
