// C1 — §1: the Fortune-500 travel-broker case.
//
// 95 % reads, 5 % writes, but absolute write volume is high. The paper:
// "a system using 2-phase-commit, or any other form of synchronous
// replication, would fail to meet customer performance requirements (thus
// confirming Gray's prediction)". We sweep offered load across replication
// strategies and watch who keeps up.

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::ReplicationMode;

void Run() {
  metrics::Banner("C1 / §1: ticket broker (95/5) — async vs synchronous");
  BenchReport report("c1_ticket_broker");
  sim::Duration duration = (BenchShortMode() ? 3 : 10) * sim::kSecond;
  struct Mode {
    const char* label;
    ReplicationMode mode;
  };
  const Mode modes[] = {
      {"master-slave 1-safe async", ReplicationMode::kMasterSlaveAsync},
      {"master-slave 2-safe sync", ReplicationMode::kMasterSlaveSync},
      {"multi-master statement", ReplicationMode::kMultiMasterStatement},
      {"multi-master certification", ReplicationMode::kMultiMasterCertification},
  };
  TablePrinter table({"mode", "offered_tps", "achieved_tps", "write_mean_ms",
                      "write_p99_ms", "failed_pct"});
  for (const Mode& m : modes) {
    for (double offered : {1000.0, 3000.0, 6000.0}) {
      workload::TicketBrokerWorkload w;
      ClusterOptions opts = BenchDefaults();
      opts.replicas = 4;
      opts.controller.mode = m.mode;
      opts.driver.max_retries = 2;
      opts.driver.request_timeout = 2 * sim::kSecond;
      auto c = MakeCluster(std::move(opts), &w);
      RunStats stats = RunOpenLoop(c.get(), &w, offered, duration);
      if (m.mode == ReplicationMode::kMasterSlaveAsync && offered == 3000.0) {
        // Headline configuration for the committed trajectory.
        report.FromStats(stats);
        report.CaptureCluster(*c, stats.committed);
      }
      table.AddRow({m.label, TablePrinter::Num(offered, 0),
                    TablePrinter::Num(stats.ThroughputTps(), 0),
                    TablePrinter::Num(stats.write_latency_ms.Mean(), 2),
                    TablePrinter::Num(stats.write_latency_ms.Percentile(99), 2),
                    TablePrinter::Num(100.0 * stats.AbortRate(), 2)});
    }
  }
  table.Print("offered vs achieved load per replication strategy (4 replicas)");
  std::printf(
      "\nExpected shape: async master-slave rides the read scale-out and\n"
      "keeps write latency flat; statement-mode pays every write on every\n"
      "replica and saturates first; certification adds a round trip per\n"
      "write; 2-safe adds the slave ack to every commit (§1, §2.1).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
