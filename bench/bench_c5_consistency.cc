// C5 — §3.3: the consistency spectrum.
//
// One workload, four cluster-level guarantees: eventual freshness,
// prefix-consistent session SI (read-your-writes), 1-copy strong SI, and
// 1-copy serializability (total-order statement execution + serializable
// local isolation). Stronger guarantees trade throughput and read latency
// for freshness; 1SR additionally pays engine-level table locking — the
// reason "much of today's research chooses snapshot isolation".

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::ConsistencyLevel;
using middleware::ReplicationMode;

struct Config {
  const char* label;
  ConsistencyLevel level;
  ReplicationMode mode;
  engine::IsolationLevel isolation;
};

RunStats RunConfig(const Config& cfg, BenchReport* report = nullptr) {
  workload::TicketBrokerWorkload::Options wo;
  wo.items = 800;
  wo.write_fraction = 0.10;
  workload::TicketBrokerWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.drivers = 8;  // Independent sessions: session guarantees differ.
  opts.controller.mode = cfg.mode;
  opts.controller.consistency = cfg.level;
  opts.engine.default_isolation = cfg.isolation;
  opts.driver.max_retries = 5;
  // Lazy propagation (150 ms shipping) is where the consistency spectrum
  // becomes visible: with eager apply all levels look alike.
  opts.replica.ship_interval = 150 * sim::kMillisecond;
  auto c = MakeCluster(std::move(opts), &w);

  std::vector<std::unique_ptr<workload::ClosedLoopGenerator>> gens;
  sim::TimePoint stop =
      c->sim.Now() + (BenchShortMode() ? 4 : 12) * sim::kSecond;
  for (int d = 0; d < 8; ++d) {
    gens.push_back(std::make_unique<workload::ClosedLoopGenerator>(
        &c->sim, c->driver(d), &w, /*clients=*/6, 0,
        static_cast<uint64_t>(100 + d)));
    gens.back()->Arm(stop);
  }
  c->sim.RunUntil(stop);
  c->sim.RunFor(5 * sim::kSecond);
  RunStats total;
  for (auto& g : gens) total.Merge(g->stats());
  if (report != nullptr) {
    report->FromStats(total);
    report->CaptureCluster(*c, total.committed);
  }
  return total;
}

void Run() {
  metrics::Banner("C5 / §3.3: consistency models (3 replicas, 10% writes, lazy 150ms shipping)");
  const Config configs[] = {
      {"eventual (loose freshness)", ConsistencyLevel::kEventual,
       ReplicationMode::kMasterSlaveAsync,
       engine::IsolationLevel::kSnapshot},
      {"session PCSI (Tashkent GSI)", ConsistencyLevel::kSessionPCSI,
       ReplicationMode::kMasterSlaveAsync,
       engine::IsolationLevel::kSnapshot},
      {"1-copy strong SI (Ganymed RSI-PC)", ConsistencyLevel::kStrongSI,
       ReplicationMode::kMasterSlaveAsync,
       engine::IsolationLevel::kSnapshot},
      {"certification SI (Postgres-R/Middle-R)", ConsistencyLevel::kSessionPCSI,
       ReplicationMode::kMultiMasterCertification,
       engine::IsolationLevel::kSnapshot},
      {"1SR (total order + serializable)",
       ConsistencyLevel::kOneCopySerializability,
       ReplicationMode::kMultiMasterStatement,
       engine::IsolationLevel::kSerializable},
  };
  BenchReport report("c5_consistency");
  TablePrinter table({"guarantee", "tps", "read_mean_ms", "read_p95_ms",
                      "stale_mean", "stale_max", "abort_pct"});
  for (const Config& cfg : configs) {
    // Session PCSI under async master-slave is the headline configuration.
    RunStats s = RunConfig(
        cfg, cfg.level == ConsistencyLevel::kSessionPCSI &&
                     cfg.mode == ReplicationMode::kMasterSlaveAsync
                 ? &report
                 : nullptr);
    table.AddRow({cfg.label, TablePrinter::Num(s.ThroughputTps(), 0),
                  TablePrinter::Num(s.read_latency_ms.Mean(), 2),
                  TablePrinter::Num(s.read_latency_ms.Percentile(95), 2),
                  TablePrinter::Num(s.staleness.Mean(), 2),
                  TablePrinter::Num(s.staleness.Max(), 0),
                  TablePrinter::Num(100.0 * s.AbortRate(), 2)});
  }
  table.Print("throughput / freshness / aborts per guarantee");
  std::printf(
      "\nExpected shape: eventual reads are fast but stale; session PCSI\n"
      "pays only when a session chases its own writes; strong SI gates\n"
      "every read on full freshness; 1SR costs the most throughput —\n"
      "which is why SI \"attracts substantial attention\" (§3.3, §5.1).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
