// F4 — Figure 4 (§2.2): worldwide multi-way master/slave replication.
//
// Three sites (EU, US, Asia). Each site is master for its own geographic
// data partition; each partition keeps a disaster-recovery replica at the
// next site, fed asynchronously over the WAN. Reported: local commit
// latency, the cost of synchronous cross-site commit (why nobody does it),
// DR-copy lag, and the loss window when a whole site is wiped out.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::Controller;
using middleware::ControllerOptions;
using middleware::ReplicaNode;
using middleware::ReplicationMode;

constexpr const char* kSiteNames[] = {"EU", "US", "Asia"};

struct WanDeployment {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  // Per site: [0] local master, [1] local slave, [2] remote DR replica.
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::vector<std::unique_ptr<Controller>> controllers;
  std::vector<std::unique_ptr<client::Driver>> drivers;
};

sim::Duration LoadDuration() {
  return (BenchShortMode() ? 3 : 10) * sim::kSecond;
}

std::unique_ptr<WanDeployment> Build(workload::Workload* w,
                                     ReplicationMode mode,
                                     bool use_codec = true) {
  auto d = std::make_unique<WanDeployment>();
  net::NetworkOptions nopts;  // Defaults: 50 ms WAN one-way, 0.2 ms LAN.
  d->network = std::make_unique<net::Network>(&d->sim, nopts);
  ClusterOptions defaults = BenchDefaults();
  defaults.replica.ship.use_codec = use_codec;
  defaults.controller.ship.use_codec = use_codec;
  for (int s = 0; s < 3; ++s) {
    std::vector<ReplicaNode*> members;
    for (int r = 0; r < 3; ++r) {
      engine::RdbmsOptions eopts = defaults.engine;
      eopts.name = std::string(kSiteNames[s]) + "-r" + std::to_string(r);
      eopts.physical_seed = static_cast<uint64_t>(s * 10 + r + 1);
      // Replica 2 is the DR copy, hosted at the *next* site.
      net::SiteId site = (r == 2) ? (s + 1) % 3 : s;
      auto node = std::make_unique<ReplicaNode>(
          &d->sim, d->network.get(), s * 10 + r + 1, eopts, defaults.replica,
          site);
      for (const std::string& stmt : w->SetupStatements()) node->AdminExec(stmt);
      members.push_back(node.get());
      d->replicas.push_back(std::move(node));
    }
    ControllerOptions copts = defaults.controller;
    copts.mode = mode;
    copts.sync_ack_count = 2;  // Sync mode must reach the remote DR copy.
    copts.heartbeat.period = sim::kSecond;
    copts.heartbeat.timeout = 900 * sim::kMillisecond;
    copts.request_timeout = 5 * sim::kSecond;
    auto controller = std::make_unique<Controller>(
        &d->sim, d->network.get(), 100 + s, members, copts, /*site=*/s);
    controller->Start();
    d->controllers.push_back(std::move(controller));
    d->drivers.push_back(std::make_unique<client::Driver>(
        &d->sim, d->network.get(), 200 + s,
        std::vector<net::NodeId>{100 + s}, client::DriverOptions{}, s));
  }
  d->sim.RunFor(2 * sim::kSecond);
  return d;
}

// --- F4(c): wire-codec ablation ---------------------------------------------

struct CodecRunResult {
  uint64_t wire_bytes = 0;      ///< ship.wire.bytes_total (on-wire, encoded).
  uint64_t raw_bytes = 0;       ///< ship.wire.raw_bytes_total (struct size).
  uint64_t network_bytes = 0;   ///< All bytes the simulated network moved.
  uint64_t peak_dr_lag = 0;
};

CodecRunResult RunCodecMode(bool use_codec) {
  obs::MetricsRegistry::Global().Reset();
  workload::TicketBrokerWorkload w;
  auto d = Build(&w, ReplicationMode::kMasterSlaveAsync, use_codec);
  ReplicaNode* eu_master = d->replicas[0].get();
  ReplicaNode* eu_dr = d->replicas[2].get();
  CodecRunResult out;
  sim::PeriodicTask lag_sampler(&d->sim, 100 * sim::kMillisecond, [&] {
    uint64_t m = eu_master->applied_version();
    uint64_t s = eu_dr->applied_version();
    if (m > s) out.peak_dr_lag = std::max(out.peak_dr_lag, m - s);
  });
  lag_sampler.Start();
  workload::OpenLoopGenerator gen(&d->sim, d->drivers[0].get(), &w,
                                  /*rate_tps=*/400, 13);
  gen.Run(LoadDuration());
  lag_sampler.Stop();
  auto& reg = obs::MetricsRegistry::Global();
  if (const auto* c = reg.FindCounter("ship.wire.bytes_total")) {
    out.wire_bytes = c->value();
  }
  if (const auto* c = reg.FindCounter("ship.wire.raw_bytes_total")) {
    out.raw_bytes = c->value();
  }
  out.network_bytes = d->network->bytes_delivered();
  return out;
}

void RunCodecAblation(BenchReport* report) {
  metrics::Banner("F4(c): wire codec on the WAN ship path");
  TablePrinter table({"codec", "ship_wire_MB", "ship_raw_MB", "compression",
                      "network_MB_total", "peak_DR_lag"});
  for (bool use_codec : {false, true}) {
    CodecRunResult r = RunCodecMode(use_codec);
    double ratio = r.wire_bytes > 0
                       ? static_cast<double>(r.raw_bytes) /
                             static_cast<double>(r.wire_bytes)
                       : 0.0;
    if (use_codec) {
      report->Set("codec_compression", ratio);
      report->Set("ship_wire_mb", static_cast<double>(r.wire_bytes) / 1e6);
    }
    table.AddRow({use_codec ? "on" : "off",
                  TablePrinter::Num(static_cast<double>(r.wire_bytes) / 1e6, 2),
                  TablePrinter::Num(static_cast<double>(r.raw_bytes) / 1e6, 2),
                  TablePrinter::Num(ratio, 2),
                  TablePrinter::Num(static_cast<double>(r.network_bytes) / 1e6,
                                    2),
                  TablePrinter::Int(static_cast<int64_t>(r.peak_dr_lag))});
  }
  table.Print("same 400 tps EU workload; codec off charges the raw struct "
              "size on the wire");
  std::printf(
      "\nExpected shape: the codec's dictionary + delta encoding shrinks\n"
      "the replication stream severalfold, which is exactly the bytes the\n"
      "50 ms / 100 Mbps WAN link to the DR copy has to carry (§4.3.4.1).\n");
}

void Run() {
  metrics::Banner("F4 / Figure 4: 3-site WAN multi-way master/slave");
  BenchReport report("f4_wan");

  // --- Local vs cross-site commit latency -----------------------------------
  TablePrinter lat({"commit mode", "write_mean_ms", "write_p99_ms"});
  for (ReplicationMode mode : {ReplicationMode::kMasterSlaveAsync,
                               ReplicationMode::kMasterSlaveSync}) {
    workload::TicketBrokerWorkload w;
    auto d = Build(&w, mode);
    workload::ClosedLoopGenerator gen(&d->sim, d->drivers[0].get(), &w,
                                      /*clients=*/16, 0, 11);
    gen.Run(LoadDuration());
    const RunStats& stats = gen.stats();
    if (mode == ReplicationMode::kMasterSlaveAsync) {
      // Async local commit with a WAN DR copy is the headline.
      report.FromStats(stats);
      report.Set("sim_events", static_cast<double>(d->sim.events_executed()));
    }
    lat.AddRow({mode == ReplicationMode::kMasterSlaveAsync
                    ? "async to DR copy (1-safe)"
                    : "sync incl. remote DR copy (2-safe x2)",
                TablePrinter::Num(stats.write_latency_ms.Mean(), 2),
                TablePrinter::Num(stats.write_latency_ms.Percentile(99), 2)});
  }
  lat.Print("EU-site commit latency: async vs synchronous WAN replication");
  std::printf(
      "\nThe WAN round trip makes synchronous replication two orders of\n"
      "magnitude slower: \"asynchronous replication is preferred over long\n"
      "distance links\" (§4.3.4.1).\n");

  // --- DR lag and site disaster -----------------------------------------------
  workload::TicketBrokerWorkload w;
  auto d = Build(&w, ReplicationMode::kMasterSlaveAsync);
  ReplicaNode* eu_master = d->replicas[0].get();
  ReplicaNode* eu_dr = d->replicas[2].get();  // Hosted in the US.
  uint64_t max_lag = 0;
  sim::PeriodicTask lag_sampler(&d->sim, 100 * sim::kMillisecond, [&] {
    uint64_t m = eu_master->applied_version();
    uint64_t s = eu_dr->applied_version();
    if (m > s) max_lag = std::max(max_lag, m - s);
  });
  lag_sampler.Start();
  workload::OpenLoopGenerator gen(&d->sim, d->drivers[0].get(), &w,
                                  /*rate_tps=*/400, 13);
  gen.Run(LoadDuration());
  lag_sampler.Stop();
  TablePrinter dr({"metric", "value"});
  dr.AddRow({"EU committed versions",
             TablePrinter::Int(static_cast<int64_t>(eu_master->applied_version()))});
  dr.AddRow({"DR copy (US) applied",
             TablePrinter::Int(static_cast<int64_t>(eu_dr->applied_version()))});
  dr.AddRow({"peak DR lag under load (versions)",
             TablePrinter::Int(static_cast<int64_t>(max_lag))});
  report.Lag(static_cast<double>(max_lag),
             static_cast<double>(
                 eu_master->applied_version() > eu_dr->applied_version()
                     ? eu_master->applied_version() - eu_dr->applied_version()
                     : 0));

  // Site disaster: both EU-local nodes vanish (earthquake/flood, §2.2).
  d->replicas[0]->Crash();
  d->replicas[1]->Crash();
  d->sim.RunFor(10 * sim::kSecond);
  dr.AddRow({"post-disaster master (node id)",
             TablePrinter::Int(d->controllers[0]->master())});
  dr.AddRow({"transactions lost at disaster",
             TablePrinter::Int(static_cast<int64_t>(
                 d->controllers[0]->stats().lost_transactions))});
  // Writes for EU data continue against the US-hosted copy.
  bool resumed = false;
  middleware::TxnRequest probe;
  probe.read_only = false;
  probe.statements = {"UPDATE inventory SET stock = stock - 1 WHERE item = 1"};
  d->drivers[0]->Submit(probe, [&](const middleware::TxnResult& r) {
    resumed = r.status.ok();
  });
  d->sim.RunFor(10 * sim::kSecond);
  dr.AddRow({"EU-data writes resumed on US copy", resumed ? "yes" : "no"});
  dr.Print("disaster recovery via the cross-site replica");

  RunCodecAblation(&report);
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
