// F5–F7 — Figures 5, 6, 7 (§3.1, §4.3.1): the query-interception design
// space. Engine-level integration (Figure 5), DBMS-native-protocol proxying
// (Figure 6), and driver-level (JDBC) middleware (Figure 7) trade
// per-request overhead against portability, upgradability, and client
// intrusiveness. We model their processing costs and measure the latency
// each adds over a direct single-database baseline, then print the
// qualitative trade-off matrix from the paper's discussion.

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

double MeasureDirectBaseline() {
  // One replica, no middleware in the path.
  workload::TicketBrokerWorkload w;
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 1;
  auto c = MakeCluster(std::move(opts), &w);
  DirectClient direct(&c->sim, c->network.get(), 300, /*replica=*/1);
  Histogram lat;
  Rng rng(3);
  int remaining = BenchShortMode() ? 600 : 2000;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    middleware::TxnRequest req = w.Next(&rng);
    sim::TimePoint start = c->sim.Now();
    direct.Execute(req, [&, start](const middleware::ExecTxnReply& reply) {
      (void)reply;
      lat.Add(sim::ToMillis(c->sim.Now() - start));
      next();
    });
  };
  next();
  c->sim.RunFor(60 * sim::kSecond);
  return lat.Mean();
}

double MeasureWithMiddleware(double per_statement_us) {
  workload::TicketBrokerWorkload w;
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.controller.per_statement_us = per_statement_us;
  auto c = MakeCluster(std::move(opts), &w);
  RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/1,
                                 (BenchShortMode() ? 4 : 10) * sim::kSecond);
  return stats.latency_ms.Mean();
}

void Run() {
  metrics::Banner("F5-F7 / Figures 5-7: query interception design space");
  BenchReport report("f5f6f7_interception");

  double direct = MeasureDirectBaseline();
  report.Set("direct_ms", direct);
  struct Design {
    const char* name;
    double per_statement_us;
    const char* client_change;
    const char* heterogeneous;
    const char* engine_coupling;
    const char* risk;
  };
  // Costs: engine integration adds almost nothing per statement (it lives
  // inside the execution path); a JDBC driver replacement parses SQL text;
  // a wire-protocol proxy must decode every driver's dialect of the
  // protocol (§4.3.1's 14 APIs x 16 platforms problem).
  const Design designs[] = {
      {"F5 engine-integrated (Postgres-R)", 3, "none", "no (one engine)",
       "deep (must live in core)", "diverges from engine (Postgres-R died)"},
      {"F6 wire-protocol proxy", 60, "none", "one protocol only",
       "none", "protocol licensing; driver quirks"},
      {"F7 driver-level JDBC (C-JDBC)", 25, "replace driver",
       "yes (any JDBC engine)", "none", "driver upgrades on 100s of clients"},
  };
  TablePrinter table({"design", "txn_mean_ms", "overhead_vs_direct",
                      "client change", "heterogeneous DBs", "engine coupling",
                      "main practical risk"});
  table.AddRow({"direct single DB (baseline)", TablePrinter::Num(direct, 3),
                "-", "none", "n/a", "n/a", "no replication at all"});
  const char* design_metrics[] = {"engine_integrated_ms", "wire_proxy_ms",
                                  "driver_level_ms"};
  int design_idx = 0;
  for (const Design& d : designs) {
    double mean = MeasureWithMiddleware(d.per_statement_us);
    report.Set(design_metrics[design_idx++], mean);
    table.AddRow({d.name, TablePrinter::Num(mean, 3),
                  "+" + TablePrinter::Num(100.0 * (mean - direct) / direct, 0) +
                      "%",
                  d.client_change, d.heterogeneous, d.engine_coupling, d.risk});
  }
  table.Print("interception designs: measured overhead + trade-off matrix");
  std::printf(
      "\nEvery interception point costs latency over a direct connection;\n"
      "the cheap one (engine integration) is the least deployable, the\n"
      "portable one (driver-level) pushes upgrades onto every client\n"
      "machine (§4.3.1).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
