// C2 — §2.1: multi-master write saturation.
//
// "As every replica has to perform all updates, there is a point beyond
// which adding more replicas does not increase throughput, because every
// replica is saturated applying updates."
//
// We sweep replica count x write fraction under statement-mode
// multi-master and report total throughput. Reads scale; writes put a hard
// ceiling on the whole system.

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

void Run() {
  metrics::Banner("C2 / §2.1: multi-master saturation (statement mode)");
  BenchReport report("c2_multimaster_saturation");
  sim::Duration duration = (BenchShortMode() ? 3 : 10) * sim::kSecond;
  TablePrinter table({"write_pct", "1 replica", "2", "4", "8"});
  for (double wf : {0.05, 0.25, 0.5, 1.0}) {
    std::vector<std::string> row = {TablePrinter::Num(100 * wf, 0) + "%"};
    for (int replicas : {1, 2, 4, 8}) {
      workload::MicroWorkload::Options wo;
      wo.rows = 500;
      wo.write_fraction = wf;
      workload::MicroWorkload w(wo);
      ClusterOptions opts = BenchDefaults();
      opts.replicas = replicas;
      opts.controller.mode = middleware::ReplicationMode::kMultiMasterStatement;
      auto c = MakeCluster(std::move(opts), &w);
      RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/128, duration);
      if (wf == 0.25 && replicas == 4) {
        // Headline configuration for the committed trajectory.
        report.FromStats(stats);
        report.CaptureCluster(*c, stats.committed);
      }
      row.push_back(TablePrinter::Num(stats.ThroughputTps(), 0));
    }
    table.AddRow(std::move(row));
  }
  table.Print("achieved tps vs replica count, by write fraction");
  std::printf(
      "\nExpected shape: at 5%% writes adding replicas helps; at 100%%\n"
      "writes the curve is flat or worse — every replica repeats every\n"
      "update, so \"the volume of update transactions remains the limiting\n"
      "performance factor\" (§2.1).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
