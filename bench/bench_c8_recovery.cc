// C8 — §4.4.2: resynchronizing a rejoining replica from the recovery log.
//
// A slave leaves for maintenance; the cluster keeps committing; the slave
// rejoins and replays the Sequoia-style recovery log from its checkpoint
// while NEW traffic keeps arriving. With serial replay the paper warns "a
// new replica may never catch up if the workload is update-heavy" —
// parallel replay (extracting parallelism from the log) is the fix.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

struct RecoveryResult {
  uint64_t backlog_entries = 0;
  double catch_up_seconds = -1;  ///< -1 = did not catch up in the window.
  uint64_t final_lag = 0;
  bool converged = false;
  uint64_t resyncs_started = 0;
  uint64_t resyncs_completed = 0;
};

RecoveryResult RunOnce(int apply_workers, double ongoing_write_tps,
                       BenchReport* report = nullptr) {
  // Clean registry per configuration so the per-stage breakdown and
  // resync counters describe exactly this run.
  obs::MetricsRegistry::Global().Reset();
  workload::MicroWorkload::Options wo;
  wo.rows = 3000;
  wo.write_fraction = 1.0;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * sim::kMillisecond;
  opts.controller.heartbeat.timeout = 200 * sim::kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.replica.apply_workers = apply_workers;
  // Replayed entries cost real apply work (log-structured, fsync-bound).
  opts.replica.apply_base_us = 1500;
  opts.replica.apply_per_op_us = 100;
  auto c = MakeCluster(std::move(opts), &w);

  // Take replica 3 down for "maintenance" and build a backlog.
  c->replica(2)->Crash();
  c->sim.RunFor(2 * sim::kSecond);
  RunStats build = RunOpenLoop(c.get(), &w, /*rate_tps=*/800,
                               (BenchShortMode() ? 5 : 15) * sim::kSecond, 21);
  (void)build;
  RecoveryResult out;
  out.backlog_entries = c->controller->global_version() -
                        c->replica(2)->applied_version();

  // Rejoin under continuing write load.
  c->replica(2)->Restart();
  sim::TimePoint rejoin_at = c->sim.Now();
  workload::OpenLoopGenerator ongoing(&c->sim, c->driver(), &w,
                                      ongoing_write_tps, 22);
  sim::TimePoint caught_up = -1;
  sim::PeriodicTask watcher(&c->sim, 250 * sim::kMillisecond, [&] {
    // Catch-up means reaching the LIVE head, not a snapshot of it: under
    // continuing writes a slow replayer chases a moving target.
    uint64_t head = c->controller->global_version();
    uint64_t applied = c->replica(2)->applied_version();
    if (caught_up < 0 && head > 0 && applied + 2 >= head) {
      caught_up = c->sim.Now();
    }
  });
  watcher.Start();
  ongoing.Run((BenchShortMode() ? 20 : 60) * sim::kSecond);
  watcher.Stop();
  if (caught_up >= 0) {
    out.catch_up_seconds = sim::ToSeconds(caught_up - rejoin_at);
  }
  uint64_t head = c->controller->global_version();
  uint64_t applied = c->replica(2)->applied_version();
  out.final_lag = head > applied ? head - applied : 0;
  c->sim.RunFor(2 * sim::kSecond);
  out.converged = c->Converged();
  auto& registry = obs::MetricsRegistry::Global();
  if (const obs::Counter* ctr =
          registry.FindCounter("middleware.recovery.resyncs_started")) {
    out.resyncs_started = ctr->value();
  }
  if (const obs::Counter* ctr =
          registry.FindCounter("middleware.recovery.resyncs_completed")) {
    out.resyncs_completed = ctr->value();
  }
  if (report != nullptr) {
    report->FromStats(ongoing.stats());
    report->CaptureCluster(*c, ongoing.stats().committed);
    report->Set("backlog_entries", static_cast<double>(out.backlog_entries));
    report->Set("catch_up_s", out.catch_up_seconds);
    report->Lag(static_cast<double>(out.backlog_entries),
                static_cast<double>(out.final_lag));
  }
  return out;
}

void Run() {
  metrics::Banner("C8 / §4.4.2: recovery-log replay, rejoin under load");
  BenchReport report("c8_recovery");
  TablePrinter table({"replay_workers", "ongoing_write_tps", "backlog",
                      "catch_up_s", "lag_after_60s", "converged", "resyncs"});
  for (int workers : {1, 2, 4, 8}) {
    for (double ongoing : {300.0, 900.0}) {
      // Parallel replay under heavy ongoing writes is the headline.
      RecoveryResult r = RunOnce(
          workers, ongoing,
          workers == 4 && ongoing == 900.0 ? &report : nullptr);
      table.AddRow(
          {TablePrinter::Int(workers), TablePrinter::Num(ongoing, 0),
           TablePrinter::Int(static_cast<int64_t>(r.backlog_entries)),
           r.catch_up_seconds < 0 ? "never (60s)"
                                  : TablePrinter::Num(r.catch_up_seconds, 1),
           TablePrinter::Int(static_cast<int64_t>(r.final_lag)),
           r.converged ? "yes" : "no",
           TablePrinter::Int(static_cast<int64_t>(r.resyncs_completed)) + "/" +
               TablePrinter::Int(static_cast<int64_t>(r.resyncs_started))});
      PrintStageBreakdown("per-stage breakdown, replay_workers=" +
                              std::to_string(workers) + " ongoing_tps=" +
                              TablePrinter::Num(ongoing, 0),
                          DefaultStages());
    }
  }
  table.Print("15s outage backlog, then rejoin while writes continue");
  std::printf(
      "\nExpected shape: serial replay cannot outrun an update-heavy\n"
      "workload (\"a new replica may never catch up\"); extracting\n"
      "parallelism from the log shrinks catch-up time (§4.4.2).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::InitTracingFromEnv();
  replidb::bench::Run();
  replidb::bench::WriteTraceIfEnabled();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
