// C6 — §4.3.2: statement replication vs transaction (writeset) replication.
//
// Three comparisons from the paper's discussion:
//  (a) bulk updates: one small statement vs hundreds of row images — CPU
//      is repeated on every replica under statement mode, network bytes
//      explode under writeset mode;
//  (b) stored procedures: "by replicating a stored procedure call, all the
//      read queries will be executed by all nodes" vs "writeset extraction
//      ... would be expensive";
//  (c) correctness: what each mode does to non-deterministic SQL
//      (condensed from the F8 matrix).

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::ReplicationMode;

void BulkUpdateComparison(BenchReport* report) {
  TablePrinter table({"mode", "tps", "write_mean_ms", "bytes_shipped_MB",
                      "slave_stmts_executed"});
  for (ReplicationMode mode : {ReplicationMode::kMultiMasterStatement,
                               ReplicationMode::kMultiMasterCertification}) {
    // Bulk workload: each write touches ~100 rows with one statement.
    class BulkWorkload : public workload::Workload {
     public:
      std::vector<std::string> SetupStatements() const override {
        std::vector<std::string> out = {
            "CREATE TABLE bulk (id INT PRIMARY KEY, grp INT, v INT)"};
        std::string batch;
        for (int i = 0; i < 2000; ++i) {
          batch += batch.empty() ? "INSERT INTO bulk VALUES " : ", ";
          batch += "(" + std::to_string(i) + ", " + std::to_string(i / 100) +
                   ", 0)";
          if ((i + 1) % 200 == 0) {
            out.push_back(batch);
            batch.clear();
          }
        }
        return out;
      }
      middleware::TxnRequest Next(Rng* rng) override {
        middleware::TxnRequest req;
        req.read_only = false;
        int64_t grp = rng->UniformRange(0, 19);
        req.statements.push_back("UPDATE bulk SET v = v + 1 WHERE grp = " +
                                 std::to_string(grp));
        return req;
      }
    } w;
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.mode = mode;
    opts.driver.max_retries = 5;
    auto c = MakeCluster(std::move(opts), &w);
    uint64_t bytes_before = c->network->bytes_delivered();
    uint64_t slave_stmts_before =
        c->replica(1)->engine()->stats().statements_executed;
    RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/16,
                                   (BenchShortMode() ? 3 : 10) * sim::kSecond);
    if (mode == ReplicationMode::kMultiMasterCertification) {
      // Writeset-mode bulk updates are the headline configuration.
      report->FromStats(stats);
      report->CaptureCluster(*c, stats.committed);
    }
    double mb = static_cast<double>(c->network->bytes_delivered() -
                                    bytes_before) /
                1e6;
    uint64_t slave_stmts =
        c->replica(1)->engine()->stats().statements_executed -
        slave_stmts_before;
    table.AddRow({mode == ReplicationMode::kMultiMasterStatement
                      ? "statement (re-execute everywhere)"
                      : "writeset (row images, apply)",
                  TablePrinter::Num(stats.ThroughputTps(), 0),
                  TablePrinter::Num(stats.write_latency_ms.Mean(), 2),
                  TablePrinter::Num(mb, 1),
                  TablePrinter::Int(static_cast<int64_t>(slave_stmts))});
  }
  table.Print("(a) bulk updates: 100 rows per statement, 3 replicas");
}

void StoredProcedureComparison() {
  // A procedure that reads a lot and writes a little — the worst case for
  // statement-style re-execution of its body (§4.2.1).
  auto register_proc = [](Cluster* c) {
    for (int i = 0; i < 3; ++i) {
      c->replica(i)->engine()->RegisterProcedure(
          "summarize", [](engine::ProcedureContext* ctx) {
            // Heavy read: scan the table; light write: bump one counter.
            engine::ExecResult scan =
                ctx->Exec("SELECT SUM(v) FROM bulk");
            if (!scan.ok()) return scan.status;
            int64_t sum = scan.rows[0][0].is_null()
                              ? 0
                              : scan.rows[0][0].AsInt();
            return ctx
                ->Exec("UPDATE summary SET total = " + std::to_string(sum) +
                       " WHERE id = 1")
                .status;
          });
    }
  };
  class ProcWorkload : public workload::Workload {
   public:
    std::vector<std::string> SetupStatements() const override {
      std::vector<std::string> out = {
          "CREATE TABLE bulk (id INT PRIMARY KEY, v INT)",
          "CREATE TABLE summary (id INT PRIMARY KEY, total INT)",
          "INSERT INTO summary VALUES (1, 0)"};
      std::string batch;
      for (int i = 0; i < 1500; ++i) {
        batch += batch.empty() ? "INSERT INTO bulk VALUES " : ", ";
        batch += "(" + std::to_string(i) + ", 1)";
        if ((i + 1) % 300 == 0) {
          out.push_back(batch);
          batch.clear();
        }
      }
      return out;
    }
    middleware::TxnRequest Next(Rng* rng) override {
      (void)rng;
      middleware::TxnRequest req;
      req.read_only = false;  // CALL may write; nobody can tell (§4.2.1).
      req.statements.push_back("CALL summarize()");
      return req;
    }
  } w;
  TablePrinter table({"mode", "tps", "call_mean_ms", "slave_rows_scanned"});
  for (ReplicationMode mode : {ReplicationMode::kMultiMasterStatement,
                               ReplicationMode::kMultiMasterCertification}) {
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.mode = mode;
    opts.driver.max_retries = 5;
    auto c = MakeCluster(std::move(opts), &w);
    register_proc(c.get());
    uint64_t scanned_before = c->replica(1)->engine()->stats().rows_scanned;
    RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/8,
                                   (BenchShortMode() ? 3 : 8) * sim::kSecond);
    uint64_t slave_scanned =
        c->replica(1)->engine()->stats().rows_scanned - scanned_before;
    table.AddRow({mode == ReplicationMode::kMultiMasterStatement
                      ? "statement: CALL re-executed everywhere"
                      : "writeset: execute once, ship 1 row image",
                  TablePrinter::Num(stats.ThroughputTps(), 0),
                  TablePrinter::Num(stats.write_latency_ms.Mean(), 2),
                  TablePrinter::Int(static_cast<int64_t>(slave_scanned))});
  }
  table.Print("(b) stored procedure: heavy read body, single-row write");
  std::printf(
      "\n(b) reading: statement mode makes every replica repeat the scan —\n"
      "\"all the read queries will be executed by all nodes, resulting in\n"
      "no speedup and thus a waste of resources\" (§4.2.1). Writeset mode\n"
      "ships one tiny row image instead.\n");
}

void ExtractionCostAblation() {
  // §4.3.2: "Writeset extraction is usually implemented using triggers,
  // to prevent database code modifications" — at a per-row price.
  TablePrinter table({"extraction", "write_tps", "write_mean_ms"});
  for (bool via_triggers : {false, true}) {
    workload::MicroWorkload::Options wo;
    wo.rows = 20000;  // Negligible contention: isolate the extraction cost.
    wo.write_fraction = 1.0;
    workload::MicroWorkload w(wo);
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.mode = ReplicationMode::kMultiMasterCertification;
    opts.engine.writesets_via_triggers = via_triggers;
    opts.engine.cost_model.writeset_trigger_us_per_row = 800;
    auto c = MakeCluster(std::move(opts), &w);
    // Fixed offered load below every ceiling: the extraction cost shows
    // up as pure latency.
    RunStats stats = RunOpenLoop(c.get(), &w, /*rate_tps=*/800,
                                 (BenchShortMode() ? 3 : 8) * sim::kSecond);
    table.AddRow({via_triggers ? "trigger-based (C-JDBC/Middle-R style)"
                               : "engine-native capture",
                  TablePrinter::Num(stats.ThroughputTps(), 0),
                  TablePrinter::Num(stats.write_latency_ms.Mean(), 2)});
  }
  table.Print("(d) ablation: writeset extraction mechanism (800 tps offered)");
}

/// Mixed workload for the audit demo: mostly deterministic point updates,
/// with an occasional per-row RAND() update — the exact statement class
/// the F8 matrix marks as divergent under statement replication.
class AuditDemoWorkload : public workload::Workload {
 public:
  std::vector<std::string> SetupStatements() const override {
    std::vector<std::string> out = {
        "CREATE TABLE audit_t (id INT PRIMARY KEY, x DOUBLE, grp INT)"};
    std::string batch;
    for (int i = 0; i < 200; ++i) {
      batch += batch.empty() ? "INSERT INTO audit_t VALUES " : ", ";
      batch += "(" + std::to_string(i) + ", 0.0, " + std::to_string(i % 20) +
               ")";
      if ((i + 1) % 50 == 0) {
        out.push_back(batch);
        batch.clear();
      }
    }
    return out;
  }
  middleware::TxnRequest Next(Rng* rng) override {
    middleware::TxnRequest req;
    req.read_only = false;
    if (rng->UniformRange(0, 9) == 0) {
      req.statements.push_back("UPDATE audit_t SET x = RAND() WHERE grp = " +
                               std::to_string(rng->UniformRange(0, 19)));
    } else {
      req.statements.push_back("UPDATE audit_t SET x = x + 1 WHERE id = " +
                               std::to_string(rng->UniformRange(0, 199)));
    }
    return req;
  }
};

void OnlineDivergenceAudit() {
  // The online auditor at work: the same RAND() workload under both modes
  // with audit barriers every 500 ms. Statement mode re-executes the
  // per-row RAND() with a different seed on every replica — the auditor
  // localizes the damage (replica, table, epoch) while the cluster is
  // still serving traffic. Writeset mode ships row images, so the same
  // workload audits clean.
  TablePrinter table({"mode", "epochs_compared", "divergences",
                      "first detection"});
  for (ReplicationMode mode : {ReplicationMode::kMultiMasterStatement,
                               ReplicationMode::kMultiMasterCertification}) {
    AuditDemoWorkload w;
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.mode = mode;
    opts.controller.nondeterminism =
        middleware::NonDeterminismPolicy::kBroadcastAnyway;
    opts.controller.audit_interval = 500 * sim::kMillisecond;
    opts.driver.max_retries = 5;
    auto c = MakeCluster(std::move(opts), &w);
    RunClosedLoop(c.get(), &w, /*clients=*/8,
                  (BenchShortMode() ? 3 : 10) * sim::kSecond);
    // Idle drain: replicas catch up to head, so the closing audit epochs
    // compare all three at the same stream position.
    c->sim.RunFor(3 * sim::kSecond);

    const audit::DivergenceAuditor& auditor = c->controller->auditor();
    std::string first = "none (content identical)";
    if (!auditor.divergences().empty()) {
      const audit::Divergence& d = auditor.divergences().front();
      first = "replica " + std::to_string(d.replica) + ", " + d.table +
              " @ epoch " + std::to_string(d.epoch);
    }
    table.AddRow({mode == ReplicationMode::kMultiMasterStatement
                      ? "statement + RAND() broadcast"
                      : "writeset (row images)",
                  TablePrinter::Int(
                      static_cast<int64_t>(auditor.epochs_compared())),
                  TablePrinter::Int(
                      static_cast<int64_t>(auditor.divergences().size())),
                  first});
    PrintStatusIfEnabled(*c);
    if (mode == ReplicationMode::kMultiMasterStatement &&
        !auditor.divergences().empty()) {
      std::printf(
          "\naudit caught statement-mode divergence online, per replica:\n");
      for (int i = 0; i < 3; ++i) {
        int32_t rid = c->replica(i)->id();
        if (!auditor.IsDiverged(rid)) continue;
        std::string tables;
        for (const std::string& t : auditor.DivergedTables(rid)) {
          if (!tables.empty()) tables += ", ";
          tables += t;
        }
        std::printf("  replica %d: %s, first divergent epoch %llu\n", rid,
                    tables.c_str(),
                    static_cast<unsigned long long>(
                        auditor.FirstDivergentEpoch(rid)));
      }
    }
  }
  table.Print("(e) online divergence audit: per-row RAND(), 3 replicas");
}

void Run() {
  metrics::Banner("C6 / §4.3.2: statement vs writeset replication");
  BenchReport report("c6_stmt_vs_ws");
  BulkUpdateComparison(&report);
  StoredProcedureComparison();
  ExtractionCostAblation();
  OnlineDivergenceAudit();
  std::printf(
      "\n(c) correctness: see bench_f8_challenge_matrix — statement mode\n"
      "diverges on RAND()/unordered LIMIT but keeps sequences in lockstep;\n"
      "writeset mode is immune to non-determinism but misses sequences and\n"
      "needs primary keys (§4.2.3, §4.3.2).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpMetricsIfEnabled();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
