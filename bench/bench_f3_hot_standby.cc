// F3 — Figure 3 (§2.2): hot standby failover.
//
// A 2-node hot-standby pair under load. The master crashes mid-run; the
// heartbeat detector notices, the controller promotes the standby, client
// drivers retry into the new master. Reported per configuration:
// detection latency, client-visible outage, transactions lost (1-safe vs
// 2-safe), and steady-state commit latency (the 2-safe tax).

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::ReplicationMode;

struct FailoverResult {
  double steady_latency_ms = 0;
  double outage_ms = 0;
  uint64_t lost = 0;
  uint64_t failed_txns = 0;
  double post_latency_ms = 0;
};

FailoverResult RunOnce(ReplicationMode mode, sim::Duration ship_interval,
                       sim::Duration hb_period,
                       BenchReport* report = nullptr) {
  workload::TicketBrokerWorkload w;
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = mode;
  opts.controller.heartbeat.period = hb_period;
  opts.controller.heartbeat.timeout = hb_period;
  opts.controller.heartbeat.miss_threshold = 3;
  opts.replica.ship_interval = ship_interval;
  opts.driver.max_retries = 20;
  opts.driver.request_timeout = sim::kSecond;
  auto c = MakeCluster(std::move(opts), &w);

  // Open-loop broker traffic; track last-success / first-failure windows.
  Rng rng(42);
  RunStats steady, post;
  sim::TimePoint crash_at = c->sim.Now() + 10 * sim::kSecond;
  sim::TimePoint last_commit = crash_at;
  sim::Duration max_commit_gap = 0;
  FailoverResult out;

  workload::TicketBrokerWorkload wl;
  sim::TimePoint stop =
      c->sim.Now() + (BenchShortMode() ? 18 : 30) * sim::kSecond;
  std::function<void()> arrivals = [&] {
    if (c->sim.Now() >= stop) return;
    middleware::TxnRequest req = wl.Next(&rng);
    bool pre = c->sim.Now() < crash_at;
    middleware::TxnRequest copy = req;
    c->driver()->Submit(std::move(req), [&, pre, copy](
                                            const middleware::TxnResult& r) {
      workload::Record(pre ? &steady : &post, copy, r);
      if (r.status.ok() && !copy.read_only && !pre) {
        // Client-visible outage: the longest stretch after the crash with
        // no write commit completing anywhere.
        max_commit_gap = std::max(max_commit_gap, c->sim.Now() - last_commit);
        last_commit = c->sim.Now();
      }
      if (!r.status.ok()) ++out.failed_txns;
    });
    c->sim.Schedule(static_cast<sim::Duration>(rng.Exponential(2000)),
                    arrivals);  // ~500 tps offered.
  };
  arrivals();
  c->sim.ScheduleAt(crash_at, [&] { c->replica(0)->Crash(); });
  c->sim.RunUntil(stop + 5 * sim::kSecond);

  out.steady_latency_ms = steady.write_latency_ms.Mean();
  out.post_latency_ms = post.write_latency_ms.Mean();
  out.lost = c->controller->stats().lost_transactions;
  out.outage_ms = sim::ToMillis(max_commit_gap);
  if (report != nullptr) {
    report->FromStats(steady, "steady.");
    report->FromStats(post, "post.");
    report->Set("outage_ms", out.outage_ms);
    report->Set("lost_txns", static_cast<double>(out.lost));
    report->CaptureCluster(*c, steady.committed + post.committed);
  }
  return out;
}

void Run() {
  metrics::Banner("F3 / Figure 3: hot standby failover (master crash at t=10s)");
  TablePrinter table({"mode", "ship_interval", "hb_period_ms",
                      "steady_write_ms", "outage_ms", "lost_txns",
                      "failed_txns", "post_write_ms"});
  struct Cfg {
    const char* label;
    ReplicationMode mode;
    sim::Duration ship;
    sim::Duration hb;
  };
  const Cfg cfgs[] = {
      {"1-safe async, 5s ship, 1s hb", ReplicationMode::kMasterSlaveAsync,
       5 * sim::kSecond, sim::kSecond},
      {"1-safe async, 100ms ship, 1s hb", ReplicationMode::kMasterSlaveAsync,
       100 * sim::kMillisecond, sim::kSecond},
      {"1-safe async, 100ms ship, 200ms hb", ReplicationMode::kMasterSlaveAsync,
       100 * sim::kMillisecond, 200 * sim::kMillisecond},
      {"2-safe sync, 200ms hb", ReplicationMode::kMasterSlaveSync,
       100 * sim::kMillisecond, 200 * sim::kMillisecond},
  };
  BenchReport report("f3_hot_standby");
  for (const Cfg& cfg : cfgs) {
    // Fast-ship, fast-heartbeat 1-safe is the headline configuration.
    FailoverResult r = RunOnce(
        cfg.mode, cfg.ship, cfg.hb,
        cfg.mode == ReplicationMode::kMasterSlaveAsync &&
                cfg.ship == 100 * sim::kMillisecond &&
                cfg.hb == 200 * sim::kMillisecond
            ? &report
            : nullptr);
    table.AddRow({cfg.label, TablePrinter::Num(sim::ToMillis(cfg.ship), 0) + "ms",
                  TablePrinter::Num(sim::ToMillis(cfg.hb), 0),
                  TablePrinter::Num(r.steady_latency_ms, 2),
                  TablePrinter::Num(r.outage_ms, 0),
                  TablePrinter::Int(static_cast<int64_t>(r.lost)),
                  TablePrinter::Int(static_cast<int64_t>(r.failed_txns)),
                  TablePrinter::Num(r.post_latency_ms, 2)});
  }
  table.Print("failover behaviour per configuration");
  std::printf(
      "\nExpected shape: 1-safe loses the unshipped window (bigger ship\n"
      "interval => more lost transactions); 2-safe loses nothing but pays\n"
      "commit latency; faster heartbeats shrink the outage (§2.2).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
