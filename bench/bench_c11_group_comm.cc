// C11 — §4.3.4.1: group communication as the intrinsic scalability limit.
//
// Total-order multicast throughput vs group size (the sequencer's ordering
// + fan-out cost grows with membership), and ordered-delivery latency on a
// LAN vs across a WAN — why "1-copy-serializability is unlikely to be
// successful in the WAN by extending existing LAN techniques".

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "gcs/group.h"

namespace replidb::bench {
namespace {

struct GroupEnv {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<gcs::GroupMember>> members;

  GroupEnv(int n, bool wan) {
    net::NetworkOptions nopts;
    network = std::make_unique<net::Network>(&sim, nopts);
    std::vector<net::NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i + 1);
    for (int i = 0; i < n; ++i) {
      // WAN: members spread over 3 sites.
      net::SiteId site = wan ? (i % 3) : 0;
      dispatchers.push_back(
          std::make_unique<net::Dispatcher>(network.get(), ids[i], site));
      members.push_back(std::make_unique<gcs::GroupMember>(
          &sim, dispatchers.back().get(), ids, gcs::GroupOptions{}));
    }
  }
};

void Throughput(BenchReport* report) {
  TablePrinter table({"group_size", "ordered_msgs_per_sec", "p50_delivery_ms"});
  for (int n : {2, 4, 8, 16}) {
    GroupEnv env(n, /*wan=*/false);
    const int kMsgs = BenchShortMode() ? 1000 : 3000;
    Histogram delivery_ms;
    std::vector<sim::TimePoint> sent(static_cast<size_t>(kMsgs) + 1);
    env.members[1 % n]->OnDeliver(
        [&](net::NodeId, uint64_t seq, const std::any&) {
          if (seq <= static_cast<uint64_t>(kMsgs) && sent[seq] > 0) {
            delivery_ms.Add(sim::ToMillis(env.sim.Now() - sent[seq]));
          }
        });
    // Saturating offered load from all members.
    int issued = 0;
    sim::PeriodicTask pump(&env.sim, 100, [&] {  // Every 100 µs.
      for (int k = 0; k < 2 && issued < kMsgs; ++k) {
        sent[static_cast<size_t>(issued) + 1] = env.sim.Now();
        env.members[static_cast<size_t>(issued) % n]->Multicast(
            std::string("m"), 512);
        ++issued;
      }
    });
    pump.Start();
    sim::TimePoint t0 = env.sim.Now();
    sim::TimePoint done = -1;
    sim::PeriodicTask watcher(&env.sim, sim::kMillisecond, [&] {
      if (done < 0 &&
          env.members[0]->last_delivered() >= static_cast<uint64_t>(kMsgs)) {
        done = env.sim.Now();
      }
    });
    watcher.Start();
    env.sim.RunUntil(60 * sim::kSecond);
    pump.Stop();
    watcher.Stop();
    double secs = done > 0 ? sim::ToSeconds(done - t0) : 60.0;
    if (n == 8) {
      // Mid-size group total-order throughput is the headline.
      report->Set("ordered_msgs_per_sec", kMsgs / secs);
      report->Set("delivery_p50_ms", delivery_ms.Percentile(50));
    }
    table.AddRow({TablePrinter::Int(n),
                  TablePrinter::Num(kMsgs / secs, 0),
                  TablePrinter::Num(delivery_ms.Percentile(50), 3)});
  }
  table.Print("total-order throughput vs group size (sequencer-based)");
}

void LanVsWan() {
  TablePrinter table({"topology", "p50_ordered_delivery_ms", "p99_ms"});
  for (bool wan : {false, true}) {
    GroupEnv env(6, wan);
    Histogram delivery_ms;
    std::vector<sim::TimePoint> sent(1001);
    env.members[5]->OnDeliver([&](net::NodeId, uint64_t seq, const std::any&) {
      if (seq <= 1000 && sent[seq] > 0) {
        delivery_ms.Add(sim::ToMillis(env.sim.Now() - sent[seq]));
      }
    });
    int issued = 0;
    sim::PeriodicTask pump(&env.sim, 5 * sim::kMillisecond, [&] {
      if (issued < 1000) {
        sent[static_cast<size_t>(issued) + 1] = env.sim.Now();
        env.members[static_cast<size_t>(issued) % 6]->Multicast(
            std::string("m"), 512);
        ++issued;
      }
    });
    pump.Start();
    env.sim.RunUntil(30 * sim::kSecond);
    pump.Stop();
    table.AddRow({wan ? "WAN (3 sites, 50ms one-way)" : "LAN (0.2ms one-way)",
                  TablePrinter::Num(delivery_ms.Percentile(50), 2),
                  TablePrinter::Num(delivery_ms.Percentile(99), 2)});
  }
  table.Print("ordered delivery latency, 6 members, light load");
  std::printf(
      "\nEvery totally-ordered write eats at least two WAN hops before it\n"
      "can commit anywhere — the physics behind \"asynchronous replication\n"
      "is preferred over long distance links\" (§4.3.4.1).\n");
}

void Run() {
  metrics::Banner("C11 / §4.3.4.1: group communication limits");
  BenchReport report("c11_group_comm");
  Throughput(&report);
  LanVsWan();
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
