// F8 — Figure 8 (§4): the layering of practical challenges.
//
// A hazard matrix: one replication-breaking construct per row (RDBMS-,
// SQL-, and middleware-level hazards from §4.1-§4.3), one replication
// strategy per column. Each cell runs the scenario on a fresh 3-replica
// cluster and reports what actually happened:
//   CONVERGED  — handled; all replicas hold identical data
//   DIVERGED   — replicas ended up with different data (silent corruption)
//   SEQ-DRIFT  — data identical but sequence/auto-increment state differs
//   REFUSED    — middleware rejected the transaction up front
//   ERROR      — transaction failed with an engine error

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::Cluster;
using middleware::NonDeterminismPolicy;
using middleware::ReplicationMode;
using middleware::TxnRequest;
using middleware::TxnResult;

struct Hazard {
  std::string name;
  std::vector<std::string> setup;
  std::vector<std::string> txn;
  bool naive_broadcast = false;  ///< Disable the determinism guard.
  bool check_sequences = false;  ///< Also compare sequence state.
  bool trigger_on_first_replica = false;
  int64_t clock_skew = 0;
};

TxnResult RunOne(Cluster* c, TxnRequest req) {
  TxnResult out;
  bool done = false;
  c->driver()->Submit(std::move(req), [&](const TxnResult& r) {
    out = r;
    done = true;
  });
  for (int i = 0; i < 200 && !done; ++i) c->sim.RunFor(250 * sim::kMillisecond);
  return out;
}

std::string RunCell(const Hazard& hazard, ReplicationMode mode) {
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = mode;
  opts.controller.nondeterminism = hazard.naive_broadcast
                                       ? NonDeterminismPolicy::kBroadcastAnyway
                                       : NonDeterminismPolicy::kRefuse;
  opts.clock_skew_per_replica = hazard.clock_skew;
  opts.driver.max_retries = 1;
  Cluster c(std::move(opts));
  c.Setup(hazard.setup);
  if (hazard.trigger_on_first_replica) {
    // §4.1.5: the operator forgot to recreate the trigger on the clones.
    c.replica(0)->AdminExec(
        "CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, note TEXT)");
    for (int i = 1; i < 3; ++i) {
      c.replica(i)->AdminExec(
          "CREATE TABLE audit (id INT PRIMARY KEY AUTO_INCREMENT, note TEXT)");
    }
    engine::TriggerDef t;
    t.name = "audit_orders";
    t.database = "main";
    t.table = "orders";
    t.event = engine::WriteOpKind::kInsert;
    t.action = [](engine::Rdbms* db, engine::SessionId sid,
                  const engine::WriteOp& op) {
      return db
          ->Execute(sid, "INSERT INTO audit (note) VALUES ('" +
                             op.primary_key.ToString() + "')")
          .status;
    };
    c.replica(0)->engine()->RegisterTrigger(std::move(t));
  }
  c.Start();
  c.sim.RunFor(sim::kSecond);

  TxnRequest req;
  req.read_only = false;
  req.statements = hazard.txn;
  TxnResult r = RunOne(&c, req);
  c.sim.RunFor(5 * sim::kSecond);  // Drain replication.

  if (!r.status.ok()) {
    if (r.status.code() == StatusCode::kInvalidArgument ||
        r.status.code() == StatusCode::kNotSupported) {
      return "REFUSED";
    }
    return "ERROR(" + std::string(StatusCodeName(r.status.code())) + ")";
  }
  if (!c.Converged()) return "DIVERGED";
  if (hazard.check_sequences) {
    std::set<uint64_t> hashes;
    for (int i = 0; i < 3; ++i) {
      hashes.insert(c.replica(i)->engine()->ContentHashWithSequences());
    }
    if (hashes.size() > 1) return "SEQ-DRIFT";
  }
  return "CONVERGED";
}

void Run() {
  metrics::Banner(
      "F8 / Figure 8: hazard x strategy matrix (RDBMS/SQL/middleware layers)");

  std::vector<std::string> accounts = {
      "CREATE TABLE accounts (id INT PRIMARY KEY, balance DOUBLE)",
      "INSERT INTO accounts VALUES (1, 10), (2, 10), (3, 10), (4, 10)"};
  std::vector<std::string> foo40 = {
      "CREATE TABLE foo (id INT PRIMARY KEY, keyvalue TEXT)"};
  {
    std::string batch = "INSERT INTO foo VALUES ";
    for (int i = 0; i < 40; ++i) {
      if (i) batch += ", ";
      batch += "(" + std::to_string(i) + ", NULL)";
    }
    foo40.push_back(batch);
  }

  std::vector<Hazard> hazards;
  hazards.push_back({"NOW() w/ 1s clock skew (rewritten)",
                     {"CREATE TABLE ev (id INT PRIMARY KEY, ts INT)"},
                     {"INSERT INTO ev VALUES (1, NOW())"},
                     false, false, false, 1000000});
  hazards.push_back({"UPDATE SET x=RAND(), guarded",
                     accounts,
                     {"UPDATE accounts SET balance = RAND()"},
                     false});
  hazards.push_back({"UPDATE SET x=RAND(), naive broadcast",
                     accounts,
                     {"UPDATE accounts SET balance = RAND()"},
                     true});
  hazards.push_back({"IN(SELECT..LIMIT) w/o ORDER BY, naive",
                     foo40,
                     {"UPDATE foo SET keyvalue = 'x' WHERE id IN "
                      "(SELECT id FROM foo WHERE keyvalue = NULL LIMIT 10)"},
                     true});
  hazards.push_back({"IN(SELECT..LIMIT) with ORDER BY",
                     foo40,
                     {"UPDATE foo SET keyvalue = 'x' WHERE id IN "
                      "(SELECT id FROM foo WHERE keyvalue = NULL "
                      "ORDER BY id LIMIT 10)"},
                     false});
  {
    Hazard h;
    h.name = "sequence NEXTVAL (§4.2.3)";
    h.setup = {"CREATE SEQUENCE s START 100",
               "CREATE TABLE keyed (id INT PRIMARY KEY, v INT)"};
    h.txn = {"INSERT INTO keyed VALUES (NEXTVAL('s'), 1)"};
    h.check_sequences = true;
    hazards.push_back(std::move(h));
  }
  hazards.push_back({"write to PK-less table",
                     {"CREATE TABLE nopk (a INT, b INT)"},
                     {"INSERT INTO nopk VALUES (1, 2)"},
                     false});
  {
    Hazard h;
    h.name = "trigger present on one replica only (§4.1.5)";
    h.setup = {"CREATE TABLE orders (id INT PRIMARY KEY, v INT)"};
    h.txn = {"INSERT INTO orders VALUES (1, 5)"};
    h.trigger_on_first_replica = true;
    hazards.push_back(std::move(h));
  }

  const ReplicationMode modes[] = {ReplicationMode::kMasterSlaveAsync,
                                   ReplicationMode::kMultiMasterStatement,
                                   ReplicationMode::kMultiMasterCertification};
  BenchReport report("f8_challenge_matrix");
  int converged = 0, diverged = 0, refused = 0, seq_drift = 0, error = 0;
  TablePrinter table({"hazard", "master-slave(ws)", "mm-statement", "mm-cert"});
  for (const Hazard& h : hazards) {
    std::vector<std::string> row = {h.name};
    for (ReplicationMode m : modes) {
      std::string cell = RunCell(h, m);
      if (cell == "CONVERGED") ++converged;
      else if (cell == "DIVERGED") ++diverged;
      else if (cell == "REFUSED") ++refused;
      else if (cell == "SEQ-DRIFT") ++seq_drift;
      else ++error;
      row.push_back(std::move(cell));
    }
    table.AddRow(std::move(row));
  }
  table.Print("what each strategy survives");
  // The matrix outcome counts are the regression signal: any cell changing
  // class (e.g. a hazard starting to diverge) shifts these.
  report.Set("converged_cells", converged);
  report.Set("diverged_cells", diverged);
  report.Set("refused_cells", refused);
  report.Set("seq_drift_cells", seq_drift);
  report.Set("error_cells", error);
  report.Write();
  std::printf(
      "\nReading: statement replication is the one that diverges on\n"
      "non-deterministic SQL but the only one that tolerates PK-less\n"
      "tables; writeset shipping hides per-replica triggers only when the\n"
      "origin has them; sequences drift everywhere except full statement\n"
      "re-execution (§4.2.3, §4.3.2).\n");
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
