// C7 — §4.3.4.2: failure detection — TCP keep-alive vs application
// heartbeats.
//
// Table 1: time to detect a crashed peer under OS keep-alive settings
// (nobody tunes them; defaults mean "30 seconds to 2 hours") vs
// application-level heartbeats.
// Table 2: the flip side — aggressive heartbeat timeouts misclassify
// slow-but-alive nodes under load ("a shorter TCP KeepAlive value
// generates false positives under heavy load").
// Table 3: what detection latency does to MTTR in an actual failover.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "net/failure_detector.h"

namespace replidb::bench {
namespace {

using net::HeartbeatOptions;
using net::TcpKeepAliveOptions;
using sim::kHour;
using sim::kMillisecond;
using sim::kMinute;
using sim::kSecond;

struct DetectEnv {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<net::Dispatcher> monitor;
  std::unique_ptr<net::Dispatcher> target;
  std::unique_ptr<net::HeartbeatResponder> hb_responder;
  std::unique_ptr<net::TcpKeepAliveResponder> ka_responder;

  DetectEnv() {
    net::NetworkOptions nopts;
    nopts.lan_jitter = 0;
    network = std::make_unique<net::Network>(&sim, nopts);
    monitor = std::make_unique<net::Dispatcher>(network.get(), 1);
    target = std::make_unique<net::Dispatcher>(network.get(), 2);
    hb_responder = std::make_unique<net::HeartbeatResponder>(&sim, target.get());
    ka_responder = std::make_unique<net::TcpKeepAliveResponder>(target.get());
  }
};

std::string Dur(sim::Duration d) {
  if (d >= kHour) return TablePrinter::Num(static_cast<double>(d) / kHour, 2) + " h";
  if (d >= kMinute) return TablePrinter::Num(static_cast<double>(d) / kMinute, 1) + " min";
  if (d >= kSecond) return TablePrinter::Num(sim::ToSeconds(d), 1) + " s";
  return TablePrinter::Num(sim::ToMillis(d), 0) + " ms";
}

void DetectionLatency() {
  TablePrinter table({"detector", "settings", "detection_time"});
  struct KaCfg {
    const char* label;
    TcpKeepAliveOptions opts;
  };
  TcpKeepAliveOptions linux_default;  // 2h / 75s / 9.
  TcpKeepAliveOptions tuned;
  tuned.idle = 30 * kSecond;
  tuned.probe_interval = 10 * kSecond;
  tuned.probe_count = 3;
  const KaCfg ka_cfgs[] = {
      {"TCP keep-alive (Linux defaults)", linux_default},
      {"TCP keep-alive (tuned 30s/10s/3)", tuned},
  };
  for (const KaCfg& cfg : ka_cfgs) {
    DetectEnv env;
    net::TcpKeepAliveDetector det(&env.sim, env.monitor.get(), cfg.opts);
    det.Watch(2);
    sim::TimePoint detected = -1;
    det.OnSuspicionChange([&](net::NodeId, bool s) {
      if (s && detected < 0) detected = env.sim.Now();
    });
    env.network->CrashNode(2);
    env.sim.RunUntil(5 * kHour);
    table.AddRow({cfg.label,
                  Dur(cfg.opts.idle) + "/" + Dur(cfg.opts.probe_interval) +
                      "x" + std::to_string(cfg.opts.probe_count),
                  detected < 0 ? "never" : Dur(detected)});
  }
  struct HbCfg {
    const char* label;
    sim::Duration period;
    int misses;
  };
  const HbCfg hb_cfgs[] = {
      {"heartbeat 1s x 3 misses", kSecond, 3},
      {"heartbeat 200ms x 3 misses", 200 * kMillisecond, 3},
      {"heartbeat 50ms x 2 misses", 50 * kMillisecond, 2},
  };
  for (const HbCfg& cfg : hb_cfgs) {
    DetectEnv env;
    HeartbeatOptions opts;
    opts.period = cfg.period;
    opts.timeout = cfg.period;
    opts.miss_threshold = cfg.misses;
    net::HeartbeatDetector det(&env.sim, env.monitor.get(), opts);
    det.Watch(2);
    sim::TimePoint detected = -1;
    det.OnSuspicionChange([&](net::NodeId, bool s) {
      if (s && detected < 0) detected = env.sim.Now();
    });
    env.sim.RunUntil(5 * kSecond);  // Steady state first.
    sim::TimePoint crash = env.sim.Now();
    env.network->CrashNode(2);
    env.sim.RunUntil(crash + kMinute);
    table.AddRow({cfg.label, Dur(cfg.period) + " x" + std::to_string(cfg.misses),
                  detected < 0 ? "never" : Dur(detected - crash)});
  }
  table.Print("time to detect a crashed peer");
}

void FalsePositives() {
  TablePrinter table({"heartbeat config", "node_response_delay",
                      "false_positives_per_min"});
  for (sim::Duration period : {50 * kMillisecond, 200 * kMillisecond, kSecond}) {
    for (sim::Duration delay : {20 * kMillisecond, 150 * kMillisecond,
                                600 * kMillisecond}) {
      DetectEnv env;
      env.hb_responder->set_response_delay(delay);  // Loaded node answers late.
      HeartbeatOptions opts;
      opts.period = period;
      opts.timeout = period;
      opts.miss_threshold = 3;
      net::HeartbeatDetector det(&env.sim, env.monitor.get(), opts);
      det.Watch(2);
      env.sim.RunUntil(2 * kMinute);
      table.AddRow({Dur(period) + " x3",
                    Dur(delay),
                    TablePrinter::Num(
                        static_cast<double>(det.false_positives()) / 2.0, 1)});
    }
  }
  table.Print("false positives: aggressive timeouts vs loaded nodes");
}

void MttrImpact(BenchReport* report) {
  TablePrinter table({"heartbeat", "failover_outage", "suspicions",
                      "failovers"});
  auto& registry = obs::MetricsRegistry::Global();
  for (sim::Duration period : {2 * kSecond, 500 * kMillisecond,
                               100 * kMillisecond}) {
    registry.Reset();
    workload::TicketBrokerWorkload w;
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 2;
    opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
    opts.controller.heartbeat.period = period;
    opts.controller.heartbeat.timeout = period;
    opts.controller.heartbeat.miss_threshold = 3;
    opts.driver.max_retries = 30;
    opts.driver.request_timeout = 500 * kMillisecond;
    auto c = MakeCluster(std::move(opts), &w);
    Rng rng(5);
    sim::TimePoint last_commit = 0;
    sim::Duration max_gap = 0;
    sim::TimePoint crash_at = c->sim.Now() + 5 * kSecond;
    sim::TimePoint stop = crash_at + (BenchShortMode() ? 10 : 30) * kSecond;
    std::function<void()> arrivals = [&] {
      if (c->sim.Now() >= stop) return;
      middleware::TxnRequest req = w.Next(&rng);
      bool read_only = req.read_only;
      c->driver()->Submit(std::move(req),
                          [&, read_only](const middleware::TxnResult& r) {
                            if (r.status.ok() && !read_only &&
                                c->sim.Now() > crash_at) {
                              if (last_commit == 0) last_commit = crash_at;
                              max_gap = std::max(max_gap,
                                                 c->sim.Now() - last_commit);
                              last_commit = c->sim.Now();
                            }
                          });
      c->sim.Schedule(static_cast<sim::Duration>(rng.Exponential(3000)),
                      arrivals);
    };
    arrivals();
    c->sim.ScheduleAt(crash_at, [&] { c->replica(0)->Crash(); });
    c->sim.RunUntil(stop);
    uint64_t suspicions = 0, failovers = 0;
    if (const obs::Counter* ctr =
            registry.FindCounter("middleware.detector.suspicions_raised")) {
      suspicions = ctr->value();
    }
    if (const obs::Counter* ctr =
            registry.FindCounter("middleware.controller.failovers")) {
      failovers = ctr->value();
    }
    if (period == 500 * kMillisecond) {
      // The middle-of-the-road heartbeat is the headline configuration.
      report->Set("failover_outage_ms", sim::ToMillis(max_gap));
      report->Set("suspicions", static_cast<double>(suspicions));
      report->CaptureCluster(*c, /*committed_txns=*/0);
    }
    table.AddRow({Dur(period) + " x3", Dur(max_gap),
                  TablePrinter::Int(static_cast<int64_t>(suspicions)),
                  TablePrinter::Int(static_cast<int64_t>(failovers))});
    PrintStageBreakdown("per-stage breakdown, heartbeat=" + Dur(period),
                        DefaultStages());
  }
  table.Print("client-visible write outage after a master crash");
}

void Run() {
  metrics::Banner("C7 / §4.3.4.2: failure detection latency and its costs");
  BenchReport report("c7_failure_detection");
  DetectionLatency();
  FalsePositives();
  MttrImpact(&report);
  report.Write();
  std::printf(
      "\nTCP keep-alive defaults take hours; tuning system-wide knobs is\n"
      "\"usually undesirable\". Application heartbeats detect in O(period),\n"
      "but too-aggressive settings declare loaded nodes dead — the paper's\n"
      "black art of tuning timeouts (§4.3.4, §5.1).\n");
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::InitTracingFromEnv();
  replidb::bench::Run();
  replidb::bench::WriteTraceIfEnabled();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
