#ifndef REPLIDB_BENCH_BENCH_UTIL_H_
#define REPLIDB_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/report.h"
#include "middleware/cluster.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::bench {

using metrics::TablePrinter;
using middleware::Cluster;
using middleware::ClusterOptions;
using workload::RunStats;

/// Engine/replica cost calibration shared by the scenario benches:
/// ~1 ms point queries and ~2 ms durable commits on 4-worker replicas —
/// OLTP numbers of the paper's era, so saturation appears at realistic
/// scales without burning wall-clock time.
inline ClusterOptions BenchDefaults() {
  ClusterOptions o;
  o.engine.cost_model.base_us = 800;
  o.engine.cost_model.per_row_scanned_us = 2.0;
  o.engine.cost_model.per_row_written_us = 40.0;
  o.engine.cost_model.commit_us = 1500;
  o.replica.capacity = 4;
  o.replica.apply_workers = 2;
  o.replica.ship_interval = 10 * sim::kMillisecond;
  o.replica.apply_base_us = 400;
  o.replica.apply_per_op_us = 60;
  return o;
}

/// True when REPLIDB_BENCH_SHORT is set (non-empty): scenario benches
/// shrink their run times so CI can smoke-test them in seconds.
inline bool BenchShortMode() {
  const char* v = std::getenv("REPLIDB_BENCH_SHORT");
  return v != nullptr && *v != '\0';
}

/// Builds a cluster, loads the workload's schema, starts it.
inline std::unique_ptr<Cluster> MakeCluster(ClusterOptions opts,
                                            workload::Workload* workload) {
  auto c = std::make_unique<Cluster>(std::move(opts));
  c->Setup(workload->SetupStatements());
  c->Start();
  // Let heartbeats settle before traffic.
  c->sim.RunFor(sim::kSecond);
  return c;
}

/// Runs an open-loop load against driver 0 and returns the stats.
inline RunStats RunOpenLoop(Cluster* c, workload::Workload* workload,
                            double rate_tps, sim::Duration duration,
                            uint64_t seed = 7) {
  workload::OpenLoopGenerator gen(&c->sim, c->driver(), workload, rate_tps,
                                  seed);
  gen.Run(duration);
  return gen.stats();
}

/// Runs a closed loop of `clients` against driver 0.
inline RunStats RunClosedLoop(Cluster* c, workload::Workload* workload,
                              int clients, sim::Duration duration,
                              sim::Duration think = 0, uint64_t seed = 7) {
  workload::ClosedLoopGenerator gen(&c->sim, c->driver(), workload, clients,
                                    think, seed);
  gen.Run(duration);
  return gen.stats();
}

/// \brief Baseline client that talks to a single replica directly, with no
/// replication middleware in the path (the "single database" baseline the
/// paper compares against in §4.4.5). One outstanding transaction at a
/// time (synchronous, like a driver on a dedicated connection).
class DirectClient {
 public:
  DirectClient(sim::Simulator* sim, net::Network* network, net::NodeId node,
               net::NodeId replica)
      : sim_(sim), replica_(replica) {
    dispatcher_ = std::make_unique<net::Dispatcher>(network, node);
    dispatcher_->On(middleware::kMsgExecReply, [this](const net::Message& m) {
      auto reply = std::any_cast<middleware::ExecTxnReply>(m.body);
      auto it = callbacks_.find(reply.req_id);
      if (it == callbacks_.end()) return;
      auto cb = std::move(it->second);
      callbacks_.erase(it);
      cb(reply);
    });
  }

  void Execute(const middleware::TxnRequest& req,
               std::function<void(const middleware::ExecTxnReply&)> cb) {
    middleware::ExecTxnMsg msg;
    msg.req_id = next_req_++;
    msg.statements = req.statements;
    msg.read_only = req.read_only;
    callbacks_[msg.req_id] = std::move(cb);
    dispatcher_->Send(replica_, middleware::kMsgExec, msg,
                      middleware::ExecMsgWireSize(msg));
  }

 private:
  sim::Simulator* sim_;
  net::NodeId replica_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::unordered_map<uint64_t, std::function<void(const middleware::ExecTxnReply&)>>
      callbacks_;
  uint64_t next_req_ = 1;
};

/// Pretty throughput/latency row cells.
inline std::vector<std::string> StatsCells(const RunStats& s) {
  return {TablePrinter::Num(s.ThroughputTps(), 0),
          TablePrinter::Num(s.latency_ms.Mean(), 2),
          TablePrinter::Num(s.latency_ms.Percentile(99), 2),
          TablePrinter::Num(100.0 * s.AbortRate(), 2)};
}

/// \brief Prints a per-stage latency breakdown from the global metrics
/// registry: one row per named histogram (count/mean/p50/p95/p99/max).
/// Histograms with no samples are skipped so mode-specific stages don't
/// clutter unrelated benches.
inline void PrintStageBreakdown(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& stages) {
  auto& registry = obs::MetricsRegistry::Global();
  TablePrinter table({"stage", "n", "mean_ms", "p50", "p95", "p99", "max"});
  bool any = false;
  for (const auto& [label, metric] : stages) {
    Histogram h = registry.HistogramCopy(metric);
    if (h.count() == 0) continue;
    any = true;
    table.AddRow({label, TablePrinter::Int(static_cast<int64_t>(h.count())),
                  TablePrinter::Num(h.Mean(), 3),
                  TablePrinter::Num(h.Median(), 3),
                  TablePrinter::Num(h.P95(), 3),
                  TablePrinter::Num(h.P99(), 3),
                  TablePrinter::Num(h.Max(), 3)});
  }
  if (any) table.Print(title);
}

/// The replication-stack stages every scenario bench reports.
inline std::vector<std::pair<std::string, std::string>> DefaultStages() {
  return {
      {"mw.process", "middleware.controller.process_ms"},
      {"exec.queue_wait", "replica.exec.queue_wait_ms"},
      {"exec.service", "replica.exec.service_ms"},
      {"apply.queue_wait", "replica.apply.queue_wait_ms"},
      {"apply.service", "replica.apply.service_ms"},
      {"apply.commit_wait", "replica.apply.commit_wait_ms"},
      {"apply.lag", "replica.apply.lag_ms"},
      {"gcs.order", "gcs.order.latency_ms"},
      {"mw.txn_total", "middleware.txn.total_ms"},
      {"client.txn_total", "client.txn.total_ms"},
  };
}

/// \brief Enables span tracing when REPLIDB_TRACE=<path> is set. Call once
/// at the top of main(); pair with WriteTraceIfEnabled() before exit.
inline void InitTracingFromEnv() { obs::Tracer::InitFromEnv(); }

/// Writes the chrome://tracing JSON to the REPLIDB_TRACE path (if tracing
/// was enabled) and prints a short text timeline. Load the file in
/// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
inline void WriteTraceIfEnabled() {
  const char* path = obs::Tracer::InitFromEnv();
  if (path == nullptr || !obs::Tracer::Global().enabled()) return;
  if (obs::Tracer::Global().WriteChromeTrace(path)) {
    std::printf("\ntrace: %zu events -> %s (open in Perfetto)\n",
                obs::Tracer::Global().event_count(), path);
  } else {
    std::printf("\ntrace: FAILED to write %s\n", path);
  }
}

/// \brief Dumps the whole MetricsRegistry at bench exit when
/// REPLIDB_METRICS_DUMP is set: "-" prints Prometheus text to stdout, a
/// path ending in ".json" writes the JSON dump, any other path writes the
/// Prometheus text exposition. Call last in main().
inline void DumpMetricsIfEnabled() {
  const char* path = std::getenv("REPLIDB_METRICS_DUMP");
  if (path == nullptr || *path == '\0') return;
  auto& registry = obs::MetricsRegistry::Global();
  if (std::strcmp(path, "-") == 0) {
    std::printf("\n-- metrics (prometheus exposition) --\n%s",
                registry.DumpPrometheus().c_str());
    return;
  }
  size_t len = std::strlen(path);
  bool json = len > 5 && std::strcmp(path + len - 5, ".json") == 0;
  std::string body = json ? registry.DumpJson() : registry.DumpPrometheus();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("\nmetrics: FAILED to write %s\n", path);
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nmetrics: %zu metrics -> %s (%s)\n", registry.size(), path,
              json ? "json" : "prometheus");
}

/// \brief Prints the SHOW REPLICA STATUS console for a cluster when
/// REPLIDB_STATUS is set (any non-empty value; "json" selects the JSON
/// rendering). Benches demonstrating the console call the renderers
/// directly; this hook adds it to any bench for free.
inline void PrintStatusIfEnabled(const Cluster& c) {
  const char* v = std::getenv("REPLIDB_STATUS");
  if (v == nullptr || *v == '\0') return;
  audit::StatusSnapshot snap = c.StatusReport();
  if (std::strcmp(v, "json") == 0) {
    std::printf("\n%s\n", audit::RenderStatusJson(snap).c_str());
  } else {
    std::printf("\n%s", audit::RenderReplicaStatus(snap).c_str());
  }
}

}  // namespace replidb::bench

#endif  // REPLIDB_BENCH_BENCH_UTIL_H_
