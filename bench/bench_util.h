#ifndef REPLIDB_BENCH_BENCH_UTIL_H_
#define REPLIDB_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "metrics/report.h"
#include "middleware/cluster.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::bench {

using metrics::TablePrinter;
using middleware::Cluster;
using middleware::ClusterOptions;
using workload::RunStats;

/// Engine/replica cost calibration shared by the scenario benches:
/// ~1 ms point queries and ~2 ms durable commits on 4-worker replicas —
/// OLTP numbers of the paper's era, so saturation appears at realistic
/// scales without burning wall-clock time.
inline ClusterOptions BenchDefaults() {
  ClusterOptions o;
  o.engine.cost_model.base_us = 800;
  o.engine.cost_model.per_row_scanned_us = 2.0;
  o.engine.cost_model.per_row_written_us = 40.0;
  o.engine.cost_model.commit_us = 1500;
  o.replica.capacity = 4;
  o.replica.apply_workers = 2;
  o.replica.ship_interval = 10 * sim::kMillisecond;
  o.replica.apply_base_us = 400;
  o.replica.apply_per_op_us = 60;
  return o;
}

/// True when REPLIDB_BENCH_SHORT is set (non-empty): scenario benches
/// shrink their run times so CI can smoke-test them in seconds.
inline bool BenchShortMode() {
  const char* v = std::getenv("REPLIDB_BENCH_SHORT");
  return v != nullptr && *v != '\0';
}

/// Builds a cluster, loads the workload's schema, starts it.
inline std::unique_ptr<Cluster> MakeCluster(ClusterOptions opts,
                                            workload::Workload* workload) {
  auto c = std::make_unique<Cluster>(std::move(opts));
  c->Setup(workload->SetupStatements());
  c->Start();
  // Let heartbeats settle before traffic.
  c->sim.RunFor(sim::kSecond);
  return c;
}

/// Runs an open-loop load against driver 0 and returns the stats.
inline RunStats RunOpenLoop(Cluster* c, workload::Workload* workload,
                            double rate_tps, sim::Duration duration,
                            uint64_t seed = 7) {
  workload::OpenLoopGenerator gen(&c->sim, c->driver(), workload, rate_tps,
                                  seed);
  gen.Run(duration);
  return gen.stats();
}

/// Runs a closed loop of `clients` against driver 0.
inline RunStats RunClosedLoop(Cluster* c, workload::Workload* workload,
                              int clients, sim::Duration duration,
                              sim::Duration think = 0, uint64_t seed = 7) {
  workload::ClosedLoopGenerator gen(&c->sim, c->driver(), workload, clients,
                                    think, seed);
  gen.Run(duration);
  return gen.stats();
}

/// \brief Baseline client that talks to a single replica directly, with no
/// replication middleware in the path (the "single database" baseline the
/// paper compares against in §4.4.5). One outstanding transaction at a
/// time (synchronous, like a driver on a dedicated connection).
class DirectClient {
 public:
  DirectClient(sim::Simulator* sim, net::Network* network, net::NodeId node,
               net::NodeId replica)
      : sim_(sim), replica_(replica) {
    dispatcher_ = std::make_unique<net::Dispatcher>(network, node);
    dispatcher_->On(middleware::kMsgExecReply, [this](const net::Message& m) {
      auto reply = std::any_cast<middleware::ExecTxnReply>(m.body);
      auto it = callbacks_.find(reply.req_id);
      if (it == callbacks_.end()) return;
      auto cb = std::move(it->second);
      callbacks_.erase(it);
      cb(reply);
    });
  }

  void Execute(const middleware::TxnRequest& req,
               std::function<void(const middleware::ExecTxnReply&)> cb) {
    middleware::ExecTxnMsg msg;
    msg.req_id = next_req_++;
    msg.statements = req.statements;
    msg.read_only = req.read_only;
    callbacks_[msg.req_id] = std::move(cb);
    dispatcher_->Send(replica_, middleware::kMsgExec, msg,
                      middleware::ExecMsgWireSize(msg));
  }

 private:
  sim::Simulator* sim_;
  net::NodeId replica_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::unordered_map<uint64_t, std::function<void(const middleware::ExecTxnReply&)>>
      callbacks_;
  uint64_t next_req_ = 1;
};

/// Pretty throughput/latency row cells.
inline std::vector<std::string> StatsCells(const RunStats& s) {
  return {TablePrinter::Num(s.ThroughputTps(), 0),
          TablePrinter::Num(s.latency_ms.Mean(), 2),
          TablePrinter::Num(s.latency_ms.Percentile(99), 2),
          TablePrinter::Num(100.0 * s.AbortRate(), 2)};
}

/// \brief Prints a per-stage latency breakdown from the global metrics
/// registry: one row per named histogram (count/mean/p50/p95/p99/max).
/// Histograms with no samples are skipped so mode-specific stages don't
/// clutter unrelated benches.
inline void PrintStageBreakdown(
    const std::string& title,
    const std::vector<std::pair<std::string, std::string>>& stages) {
  auto& registry = obs::MetricsRegistry::Global();
  TablePrinter table({"stage", "n", "mean_ms", "p50", "p95", "p99", "max"});
  bool any = false;
  for (const auto& [label, metric] : stages) {
    Histogram h = registry.HistogramCopy(metric);
    if (h.count() == 0) continue;
    any = true;
    table.AddRow({label, TablePrinter::Int(static_cast<int64_t>(h.count())),
                  TablePrinter::Num(h.Mean(), 3),
                  TablePrinter::Num(h.Median(), 3),
                  TablePrinter::Num(h.P95(), 3),
                  TablePrinter::Num(h.P99(), 3),
                  TablePrinter::Num(h.Max(), 3)});
  }
  if (any) table.Print(title);
}

/// The replication-stack stages every scenario bench reports.
inline std::vector<std::pair<std::string, std::string>> DefaultStages() {
  return {
      {"mw.process", "middleware.controller.process_ms"},
      {"exec.queue_wait", "replica.exec.queue_wait_ms"},
      {"exec.service", "replica.exec.service_ms"},
      {"apply.queue_wait", "replica.apply.queue_wait_ms"},
      {"apply.service", "replica.apply.service_ms"},
      {"apply.commit_wait", "replica.apply.commit_wait_ms"},
      {"apply.lag", "replica.apply.lag_ms"},
      {"gcs.order", "gcs.order.latency_ms"},
      {"mw.txn_total", "middleware.txn.total_ms"},
      {"client.txn_total", "client.txn.total_ms"},
  };
}

/// \brief Enables span tracing when REPLIDB_TRACE=<path> is set. Call once
/// at the top of main(); pair with WriteTraceIfEnabled() before exit.
inline void InitTracingFromEnv() { obs::Tracer::InitFromEnv(); }

/// Writes the chrome://tracing JSON to the REPLIDB_TRACE path (if tracing
/// was enabled) and prints a short text timeline. Load the file in
/// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
inline void WriteTraceIfEnabled() {
  const char* path = obs::Tracer::InitFromEnv();
  if (path == nullptr || !obs::Tracer::Global().enabled()) return;
  if (obs::Tracer::Global().WriteChromeTrace(path)) {
    std::printf("\ntrace: %zu events -> %s (open in Perfetto)\n",
                obs::Tracer::Global().event_count(), path);
  } else {
    std::printf("\ntrace: FAILED to write %s\n", path);
  }
}

/// \brief Dumps the whole MetricsRegistry at bench exit when
/// REPLIDB_METRICS_DUMP is set: "-" prints Prometheus text to stdout, a
/// path ending in ".json" writes the JSON dump, any other path writes the
/// Prometheus text exposition. Call last in main().
inline void DumpMetricsIfEnabled() {
  const char* path = std::getenv("REPLIDB_METRICS_DUMP");
  if (path == nullptr || *path == '\0') return;
  auto& registry = obs::MetricsRegistry::Global();
  if (std::strcmp(path, "-") == 0) {
    std::printf("\n-- metrics (prometheus exposition) --\n%s",
                registry.DumpPrometheus().c_str());
    return;
  }
  size_t len = std::strlen(path);
  bool json = len > 5 && std::strcmp(path + len - 5, ".json") == 0;
  std::string body = json ? registry.DumpJson() : registry.DumpPrometheus();
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("\nmetrics: FAILED to write %s\n", path);
    return;
  }
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("\nmetrics: %zu metrics -> %s (%s)\n", registry.size(), path,
              json ? "json" : "prometheus");
}

/// \brief Dumps the flight recorder's event tail to stderr at bench exit
/// when REPLIDB_FLIGHT_DUMP is set (non-empty). Call last in main().
inline void DumpFlightIfEnabled() {
  const char* v = std::getenv("REPLIDB_FLIGHT_DUMP");
  if (v == nullptr || *v == '\0') return;
  obs::FlightRecorder::Global().Dump(stderr);
}

/// \brief Machine-readable bench trajectory: every scenario bench fills
/// one BenchReport (ops/s, p50/p99 latency, bytes per txn, events/s, peak
/// and final replica lag) and writes it as `BENCH_<scenario>.json` next to
/// the binary (or into $REPLIDB_BENCH_JSON_DIR). tools/benchdiff compares
/// two trajectories with per-metric tolerance bands, which is what lets CI
/// fail on a throughput/latency/amplification regression instead of a
/// human eyeballing bench stdout.
///
/// Everything except `events_per_sec` derives from the deterministic
/// simulator, so reruns at the same seed produce bit-identical metrics;
/// events_per_sec is wall-clock-derived and informational only (benchdiff
/// skips it).
class BenchReport {
 public:
  explicit BenchReport(std::string scenario) : scenario_(std::move(scenario)) {}

  void Set(const std::string& metric, double value) {
    metrics_[metric] = value;
  }
  double Get(const std::string& metric) const {
    auto it = metrics_.find(metric);
    return it == metrics_.end() ? 0.0 : it->second;
  }

  /// Headline throughput/latency, optionally under a prefix (multi-phase
  /// benches record e.g. "steady.ops_per_sec" and "failover.p99_ms").
  void FromStats(const RunStats& s, const std::string& prefix = "") {
    Set(prefix + "ops_per_sec", s.ThroughputTps());
    Set(prefix + "p50_ms", s.latency_ms.Percentile(50));
    Set(prefix + "p99_ms", s.latency_ms.Percentile(99));
    Set(prefix + "abort_pct", 100.0 * s.AbortRate());
  }

  /// Cluster-level wire/efficiency metrics: bytes per committed txn,
  /// simulator event count, wall-clock events/s, and the sampled
  /// replica-lag envelope from the cluster's time-series hub.
  void CaptureCluster(const Cluster& c, uint64_t committed_txns) {
    Set("bytes_per_txn",
        committed_txns > 0
            ? static_cast<double>(c.network->bytes_delivered()) /
                  static_cast<double>(committed_txns)
            : 0.0);
    Set("sim_events", static_cast<double>(c.sim.events_executed()));
    // CPU seconds since process start — the only wall-dependent metric in
    // the report; benchdiff treats events_per_sec as informational.
    double cpu_sec =
        static_cast<double>(std::clock()) / static_cast<double>(CLOCKS_PER_SEC);
    Set("events_per_sec",
        cpu_sec > 0 ? static_cast<double>(c.sim.events_executed()) / cpu_sec
                    : 0.0);
    double peak = 0.0, final_lag = 0.0;
    for (const std::string& name : c.timeseries().SeriesNames()) {
      if (name.find(".lag_versions") == std::string::npos) continue;
      const obs::Series* s = c.timeseries().FindSeries(name);
      if (s == nullptr || s->size() == 0) continue;
      peak = std::max(peak, s->MaxValue());
      final_lag = std::max(final_lag, s->Last());
    }
    Set("peak_lag", peak);
    Set("final_lag", final_lag);
  }

  /// Explicit lag envelope for benches that compute it themselves.
  void Lag(double peak, double final_lag) {
    Set("peak_lag", peak);
    Set("final_lag", final_lag);
  }

  /// {"schema":1,"scenario":"...","metrics":{...}} with name-sorted keys.
  std::string Json() const {
    std::string out = "{\"schema\":1,\"scenario\":\"" + scenario_ +
                      "\",\"metrics\":{";
    bool first = true;
    char buf[64];
    for (const auto& [name, value] : metrics_) {
      if (!first) out += ",";
      first = false;
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      out += "\"" + name + "\":" + buf;
    }
    out += "}}";
    return out;
  }

  /// Writes BENCH_<scenario>.json into $REPLIDB_BENCH_JSON_DIR (or the
  /// working directory) and prints the destination.
  bool Write() const {
    std::string path;
    const char* dir = std::getenv("REPLIDB_BENCH_JSON_DIR");
    if (dir != nullptr && *dir != '\0') {
      path = std::string(dir);
      if (path.back() != '/') path += '/';
    }
    path += "BENCH_" + scenario_ + ".json";
    std::string body = Json();
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::printf("bench-report: FAILED to write %s\n", path.c_str());
      return false;
    }
    size_t written = std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
    std::printf("bench-report: %zu metrics -> %s\n", metrics_.size(),
                path.c_str());
    return written == body.size();
  }

  const std::string& scenario() const { return scenario_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

 private:
  std::string scenario_;
  std::map<std::string, double> metrics_;
};

/// One-call trajectory hook for the common single-phase bench: headline
/// stats + cluster capture + write. Benches with several phases build a
/// BenchReport directly and call FromStats per phase instead.
inline void WriteBenchReport(const std::string& scenario, const Cluster& c,
                             const RunStats& stats) {
  BenchReport report(scenario);
  report.FromStats(stats);
  report.CaptureCluster(c, stats.committed);
  report.Write();
}

/// \brief Prints a sampled series from a cluster's TimeSeriesHub as a
/// text curve: one row per virtual-time bucket with an asterisk bar, so a
/// lag timeline (growth, knee, recovery) is readable straight from bench
/// stdout. `buckets` rows; each bucket shows the max sample inside it.
inline void PrintSeriesCurve(const Cluster& c, const std::string& series,
                             const std::string& title, size_t buckets = 20,
                             size_t bar_width = 50) {
  const obs::Series* s = c.timeseries().FindSeries(series);
  if (s == nullptr || s->size() == 0) return;
  std::vector<obs::SeriesPoint> pts = s->Points();
  int64_t t0 = pts.front().ts_us;
  int64_t t1 = pts.back().ts_us;
  int64_t span = std::max<int64_t>(1, t1 - t0);
  buckets = std::max<size_t>(1, std::min(buckets, pts.size()));
  std::vector<double> maxima(buckets, 0.0);
  double overall = 0.0;
  for (const obs::SeriesPoint& p : pts) {
    size_t b = static_cast<size_t>((p.ts_us - t0) * static_cast<int64_t>(buckets) / (span + 1));
    b = std::min(b, buckets - 1);
    maxima[b] = std::max(maxima[b], p.value);
    overall = std::max(overall, p.value);
  }
  std::printf("\n-- %s (%s, %zu samples) --\n", title.c_str(), series.c_str(),
              pts.size());
  for (size_t b = 0; b < buckets; ++b) {
    double t_sec =
        static_cast<double>(t0 + span * static_cast<int64_t>(b) /
                                     static_cast<int64_t>(buckets)) /
        1e6;
    size_t bar = overall > 0 ? static_cast<size_t>(
                                   maxima[b] / overall *
                                   static_cast<double>(bar_width))
                             : 0;
    std::printf("t=%8.2fs %10.0f |%s\n", t_sec, maxima[b],
                std::string(bar, '*').c_str());
  }
}

/// \brief Prints the SHOW REPLICA STATUS console for a cluster when
/// REPLIDB_STATUS is set (any non-empty value; "json" selects the JSON
/// rendering). Benches demonstrating the console call the renderers
/// directly; this hook adds it to any bench for free.
inline void PrintStatusIfEnabled(const Cluster& c) {
  const char* v = std::getenv("REPLIDB_STATUS");
  if (v == nullptr || *v == '\0') return;
  audit::StatusSnapshot snap = c.StatusReport();
  if (std::strcmp(v, "json") == 0) {
    std::printf("\n%s\n", audit::RenderStatusJson(snap).c_str());
  } else {
    std::printf("\n%s", audit::RenderReplicaStatus(snap).c_str());
  }
}

}  // namespace replidb::bench

#endif  // REPLIDB_BENCH_BENCH_UTIL_H_
