// C4 — §3.2: load balancing policies, including Tashkent+-style
// memory-aware routing.
//
// Twelve table working sets, three replicas whose buffer pools hold only
// four tables each. Policies that ignore memory (round-robin, LPRF)
// bounce working sets between replicas and run disk-bound; memory-aware
// routing partitions the working sets so every transaction runs in memory
// — the paper quotes >50 % throughput improvement for Tashkent+.
// A second table shows weighted balancing on heterogeneous hardware
// (§4.1.3).

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::LoadBalancePolicy;

RunStats RunPolicy(LoadBalancePolicy policy, BenchReport* report = nullptr) {
  workload::MultiTableWorkload::Options wo;
  wo.tables = 12;
  wo.rows_per_table = 200;
  wo.write_fraction = 0.05;
  workload::MultiTableWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.controller.consistency = middleware::ConsistencyLevel::kEventual;
  opts.controller.load_balance = policy;
  opts.replica.hot_table_capacity = 4;
  opts.replica.cache_miss_penalty = 4.0;
  auto c = MakeCluster(std::move(opts), &w);
  RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/48,
                                 (BenchShortMode() ? 4 : 12) * sim::kSecond);
  if (report != nullptr) {
    report->FromStats(stats);
    report->CaptureCluster(*c, stats.committed);
  }
  return stats;
}

void Run() {
  metrics::Banner("C4 / §3.2: load balancing (12 working sets, 4 fit per node)");
  BenchReport report("c4_load_balancing");
  TablePrinter table({"policy", "tps", "mean_ms", "p95_ms", "vs_round_robin"});
  double base = 0;
  for (LoadBalancePolicy policy :
       {LoadBalancePolicy::kRoundRobin, LoadBalancePolicy::kLeastPending,
        LoadBalancePolicy::kMemoryAware}) {
    // Memory-aware routing is this scenario's headline configuration.
    RunStats stats = RunPolicy(
        policy,
        policy == LoadBalancePolicy::kMemoryAware ? &report : nullptr);
    double tps = stats.ThroughputTps();
    if (base == 0) base = tps;
    table.AddRow({LoadBalancePolicyName(policy), TablePrinter::Num(tps, 0),
                  TablePrinter::Num(stats.latency_ms.Mean(), 2),
                  TablePrinter::Num(stats.latency_ms.Percentile(95), 2),
                  (tps >= base ? "+" : "") +
                      TablePrinter::Num(100.0 * (tps - base) / base, 0) + "%"});
  }
  table.Print("memory-aware routing vs memory-oblivious policies");
  std::printf(
      "\nTashkent+ reported >50%% improvement from memory-aware balancing;\n"
      "the same working-set effect reproduces here (§3.2).\n");

  // Heterogeneous cluster: replica 3 has half the workers (aged hardware,
  // failed write-back cache, crimped cable... §4.1.3). Weighted balancing
  // knows; round-robin does not.
  TablePrinter het({"policy", "tps", "mean_ms", "p95_ms"});
  for (LoadBalancePolicy policy :
       {LoadBalancePolicy::kRoundRobin, LoadBalancePolicy::kLeastPending,
        LoadBalancePolicy::kWeighted}) {
    workload::MicroWorkload::Options wo;
    wo.rows = 500;
    wo.write_fraction = 0.02;
    workload::MicroWorkload w(wo);
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.load_balance = policy;
    opts.controller.consistency = middleware::ConsistencyLevel::kEventual;
    opts.per_replica_capacity = {4, 4, 1};
    auto c = MakeCluster(std::move(opts), &w);
    c->controller->SetReplicaWeight(3, 0.25);
    RunStats stats = RunClosedLoop(c.get(), &w, 48, 10 * sim::kSecond);
    het.AddRow({LoadBalancePolicyName(policy),
                TablePrinter::Num(stats.ThroughputTps(), 0),
                TablePrinter::Num(stats.latency_ms.Mean(), 2),
                TablePrinter::Num(stats.latency_ms.Percentile(95), 2)});
  }
  het.Print("heterogeneous cluster (replica 3 has 1 of 4 workers, weight 0.25)");

  // Granularity (§3.2): connection-level pins each client connection to a
  // replica; with few fat client connections (application servers with
  // pools) that "offers poor balancing".
  TablePrinter gran({"granularity", "tps", "mean_ms", "p95_ms"});
  for (middleware::LoadBalanceGranularity g :
       {middleware::LoadBalanceGranularity::kConnection,
        middleware::LoadBalanceGranularity::kTransaction}) {
    workload::MicroWorkload::Options wo;
    wo.rows = 500;
    wo.write_fraction = 0.02;
    workload::MicroWorkload w(wo);
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.drivers = 3;  // Three app servers...
    opts.controller.load_balance = LoadBalancePolicy::kRoundRobin;
    opts.controller.granularity = g;
    opts.controller.consistency = middleware::ConsistencyLevel::kEventual;
    opts.replica.capacity = 2;
    auto c = MakeCluster(std::move(opts), &w);
    // ...with very skewed offered load: one app server sends 3500 tps —
    // more than any single replica can serve (2 workers ~= 2200 tps) but
    // comfortably within the cluster's 6600.
    std::vector<std::unique_ptr<workload::OpenLoopGenerator>> gens;
    double rates[] = {3500, 500, 500};
    for (int d = 0; d < 3; ++d) {
      gens.push_back(std::make_unique<workload::OpenLoopGenerator>(
          &c->sim, c->driver(d), &w, rates[d],
          static_cast<uint64_t>(50 + d)));
    }
    // Drive all three generators over the same window.
    sim::TimePoint stop = c->sim.Now() + 10 * sim::kSecond;
    for (auto& gen : gens) gen->Arm(stop);
    c->sim.RunUntil(stop);
    c->sim.RunFor(5 * sim::kSecond);
    RunStats stats;
    for (auto& gen : gens) stats.Merge(gen->stats());
    gran.AddRow({g == middleware::LoadBalanceGranularity::kConnection
                     ? "connection-level (sticky)"
                     : "transaction-level",
                 TablePrinter::Num(stats.ThroughputTps(), 0),
                 TablePrinter::Num(stats.latency_ms.Mean(), 2),
                 TablePrinter::Num(stats.latency_ms.Percentile(95), 2)});
  }
  gran.Print("granularity: 3 app servers, one carrying 70% of the clients");
  std::printf(
      "\nConnection-level balancing rides whole connections: the busy app\n"
      "server's replica becomes a hotspot (§3.2). Transaction-level\n"
      "balancing spreads the skew.\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
