// F2 — Figure 2 (§2.1): data partitioning for write scalability.
//
// Write-heavy orders workload split across P partitions, each served by its
// own 2-replica master-slave group; the client driver routes by partition
// key. The paper's RAID-0 analogy: updates proceed in parallel on
// partitioned segments, so write throughput scales with partitions — unlike
// full replication, where every replica repeats every write.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::Controller;
using middleware::ControllerOptions;
using middleware::ReplicaNode;
using middleware::ReplicationMode;

struct PartitionedDeployment {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::vector<std::unique_ptr<Controller>> controllers;
  std::unique_ptr<client::Driver> driver;
};

std::unique_ptr<PartitionedDeployment> Build(int partitions,
                                             int replicas_per_partition,
                                             workload::Workload* w) {
  auto d = std::make_unique<PartitionedDeployment>();
  d->network = std::make_unique<net::Network>(&d->sim, net::NetworkOptions{});
  ClusterOptions defaults = BenchDefaults();
  std::vector<net::NodeId> controller_ids;
  for (int p = 0; p < partitions; ++p) {
    std::vector<ReplicaNode*> members;
    for (int r = 0; r < replicas_per_partition; ++r) {
      engine::RdbmsOptions eopts = defaults.engine;
      eopts.name = "p" + std::to_string(p) + "-r" + std::to_string(r);
      eopts.physical_seed = static_cast<uint64_t>(p * 100 + r + 1);
      auto node = std::make_unique<ReplicaNode>(
          &d->sim, d->network.get(), p * 10 + r + 1, eopts, defaults.replica);
      for (const std::string& stmt : w->SetupStatements()) {
        node->AdminExec(stmt);
      }
      members.push_back(node.get());
      d->replicas.push_back(std::move(node));
    }
    ControllerOptions copts = defaults.controller;
    copts.mode = ReplicationMode::kMasterSlaveAsync;
    copts.consistency = middleware::ConsistencyLevel::kSessionPCSI;
    auto controller = std::make_unique<Controller>(
        &d->sim, d->network.get(), 100 + p, members, copts);
    controller->Start();
    controller_ids.push_back(controller->id());
    d->controllers.push_back(std::move(controller));
  }
  d->driver = std::make_unique<client::Driver>(&d->sim, d->network.get(), 200,
                                               controller_ids);
  d->sim.RunFor(sim::kSecond);
  return d;
}

void Run() {
  metrics::Banner(
      "F2 / Figure 2: partitioning for write throughput (50% writes)");
  BenchReport report("f2_partitioning");
  TablePrinter table({"partitions", "total_replicas", "tps", "write_tps",
                      "mean_ms", "speedup"});
  double base_tps = 0;
  for (int partitions : {1, 2, 3, 4}) {
    workload::PartitionedOrdersWorkload w;
    auto d = Build(partitions, /*replicas_per_partition=*/2, &w);
    workload::ClosedLoopGenerator gen(&d->sim, d->driver.get(), &w,
                                      /*clients=*/96, 0, /*seed=*/3);
    gen.Run((BenchShortMode() ? 4 : 12) * sim::kSecond);
    const RunStats& stats = gen.stats();
    double tps = stats.ThroughputTps();
    if (base_tps == 0) base_tps = tps;
    if (partitions == 4) {
      // Widest partitioned deployment is the headline configuration.
      report.FromStats(stats);
      report.Set("speedup_vs_1", tps / base_tps);
      report.Set("sim_events", static_cast<double>(d->sim.events_executed()));
    }
    double write_tps = static_cast<double>(stats.write_latency_ms.count()) /
                       sim::ToSeconds(stats.elapsed);
    table.AddRow({TablePrinter::Int(partitions),
                  TablePrinter::Int(partitions * 2), TablePrinter::Num(tps, 0),
                  TablePrinter::Num(write_tps, 0),
                  TablePrinter::Num(stats.latency_ms.Mean(), 2),
                  TablePrinter::Num(tps / base_tps, 2)});
  }
  table.Print("write throughput vs partition count");

  // Contrast: the same hardware as one fully-replicated statement-mode
  // cluster — every replica repeats every write (no write scaling).
  workload::PartitionedOrdersWorkload w;
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 8;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  auto c = MakeCluster(std::move(opts), &w);
  RunStats stats = RunClosedLoop(c.get(), &w, 96,
                                 (BenchShortMode() ? 4 : 12) * sim::kSecond);
  report.Set("full_replication_tps", stats.ThroughputTps());
  std::printf(
      "\nContrast: 8 fully-replicated statement-mode replicas reach %.0f tps\n"
      "on the same workload — partitioning, not replication, buys write\n"
      "scalability (Figure 2's point).\n",
      stats.ThroughputTps());
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
