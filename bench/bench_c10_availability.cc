// C10 — §2.2 / §5.1: availability under the paper's field failure rate.
//
// "On average, one fatal failure occurs per day per 200 processors."
// We run accelerated fault injection (node MTTF scaled down) for hours of
// simulated time, probe the service continuously, and report the metrics
// the paper says evaluations should use: MTTF, MTTR, availability, nines —
// against the 5-nines-is-5.26-minutes-per-year yardstick. The last row
// crashes the (unreplicated) middleware controller: the SPOF of §3.2.

#include <cstdio>

#include "bench/bench_util.h"
#include "client/driver.h"
#include "middleware/controller.h"
#include "faults/fault_injector.h"
#include "metrics/availability.h"

namespace replidb::bench {
namespace {

struct AvailabilityRow {
  std::string label;
  double availability = 0;
  double nines = 0;
  int outages = 0;
  double mttr_s = 0;
  double downtime_s = 0;
};

AvailabilityRow RunConfig(int replicas, bool crash_controller,
                          sim::Duration horizon,
                          BenchReport* report = nullptr) {
  workload::MicroWorkload::Options wo;
  wo.rows = 200;
  wo.write_fraction = 0.3;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = replicas;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * sim::kMillisecond;
  opts.controller.heartbeat.timeout = 200 * sim::kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.request_timeout = 500 * sim::kMillisecond;
  opts.driver.max_retries = 0;  // Expose the failover window to the probe.
  auto c = MakeCluster(std::move(opts), &w);

  // Accelerated failures: 8-CPU nodes at 1 fatal failure / 200 CPU-days
  // gives MTTF = 25 days; we compress to minutes so hours of simulation
  // show many failure cycles. The MTTF:MTTR ratio (25 days : 10 min) is
  // preserved => per-node availability ~99.97%.
  faults::FaultInjector::Options fo;
  fo.node_mttf = 10 * sim::kMinute;  // 25 days, ~3600x accelerated.
  fo.node_mttr = 20 * sim::kSecond;  // Node restart floor (not accelerated:
                                     // reboot mechanics don't compress).
  fo.seed = 77;
  faults::FaultInjector injector(&c->sim, fo);
  std::vector<middleware::ReplicaNode*> nodes;
  for (auto& r : c->replicas) nodes.push_back(r.get());
  injector.ScheduleCrashLoop(nodes, c->sim.Now() + horizon);

  if (crash_controller) {
    // One controller outage mid-run, repaired after 10 minutes — the
    // operator has to notice and restart it by hand (§3.2).
    c->sim.Schedule(horizon / 2, [&c] { c->controller->Crash(); });
    c->sim.Schedule(horizon / 2 + 10 * sim::kMinute,
                    [&c] { c->controller->Restart(); });
  }

  // Service probe: a write every 100 ms; two consecutive failures = down.
  metrics::AvailabilityTracker tracker(c->sim.Now());
  Rng rng(9);
  int consecutive_failures = 0;
  int ok_probes = 0, failed_probes = 0;
  sim::PeriodicTask prober(&c->sim, 100 * sim::kMillisecond, [&] {
    middleware::TxnRequest req = w.Next(&rng);
    req.read_only = false;
    req.statements = {"UPDATE accounts SET balance = balance + 1 WHERE id = " +
                      std::to_string(rng.UniformRange(0, 199))};
    c->driver()->Submit(std::move(req), [&](const middleware::TxnResult& r) {
      if (r.status.ok()) {
        ++ok_probes;
        consecutive_failures = 0;
        tracker.MarkUp(c->sim.Now());
      } else {
        ++failed_probes;
        if (++consecutive_failures >= 2) tracker.MarkDown(c->sim.Now());
      }
    });
  });
  prober.Start();
  c->sim.RunFor(horizon);
  prober.Stop();
  (void)ok_probes;
  (void)failed_probes;

  AvailabilityRow row;
  row.availability = tracker.Availability(c->sim.Now());
  row.nines = tracker.Nines(c->sim.Now());
  row.outages = tracker.outages();
  row.mttr_s = tracker.MttrMicros() / sim::kSecond;
  row.downtime_s = sim::ToSeconds(tracker.Downtime(c->sim.Now()));
  if (report != nullptr) {
    report->Set("availability_pct", 100 * row.availability);
    report->Set("mttr_s", row.mttr_s);
    report->Set("downtime_s", row.downtime_s);
    report->CaptureCluster(*c, /*committed_txns=*/0);
  }
  return row;
}

/// The §3.2 answer: the same controller-outage scenario, but with a warm
/// standby controller fed by (a)synchronous state mirroring.
AvailabilityRow RunReplicatedController(bool mirror_sync,
                                        sim::Duration horizon,
                                        double* write_mean_ms) {
  using middleware::Controller;
  using middleware::ControllerOptions;
  using middleware::ReplicaNode;
  sim::Simulator sim;
  net::Network network(&sim, net::NetworkOptions{});
  ClusterOptions defaults = BenchDefaults();
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::vector<ReplicaNode*> ptrs;
  workload::MicroWorkload::Options wo;
  wo.rows = 200;
  wo.write_fraction = 0.3;
  workload::MicroWorkload w(wo);
  for (int i = 0; i < 3; ++i) {
    engine::RdbmsOptions eopts = defaults.engine;
    eopts.name = "r" + std::to_string(i + 1);
    eopts.physical_seed = static_cast<uint64_t>(i + 1);
    auto node = std::make_unique<ReplicaNode>(&sim, &network, i + 1, eopts,
                                              defaults.replica);
    for (const std::string& stmt : w.SetupStatements()) node->AdminExec(stmt);
    ptrs.push_back(node.get());
    replicas.push_back(std::move(node));
  }
  ControllerOptions ao = defaults.controller;
  ao.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  ao.mirror_to = 101;
  ao.mirror_sync = mirror_sync;
  ao.heartbeat.period = 200 * sim::kMillisecond;
  ao.heartbeat.timeout = 200 * sim::kMillisecond;
  ao.heartbeat.miss_threshold = 2;
  Controller active(&sim, &network, 100, ptrs, ao);
  ControllerOptions so = ao;
  so.mirror_to = -1;
  so.standby_of = 100;
  Controller standby(&sim, &network, 101, ptrs, so);
  active.Start();
  standby.Start();
  client::DriverOptions dopts = defaults.driver;
  dopts.controllers_are_replicas = true;
  dopts.request_timeout = 500 * sim::kMillisecond;
  dopts.max_retries = 3;
  client::Driver driver(&sim, &network, 200, {100, 101}, dopts);
  sim.RunFor(sim::kSecond);

  // The same mid-run controller outage as the SPOF row.
  sim.Schedule(horizon / 2, [&] { active.Crash(); });

  metrics::AvailabilityTracker tracker(sim.Now());
  Rng rng(9);
  int consecutive_failures = 0;
  Histogram write_ms;
  sim::PeriodicTask prober(&sim, 100 * sim::kMillisecond, [&] {
    middleware::TxnRequest req;
    req.statements = {"UPDATE accounts SET balance = balance + 1 WHERE id = " +
                      std::to_string(rng.UniformRange(0, 199))};
    driver.Submit(std::move(req), [&](const middleware::TxnResult& r) {
      if (r.status.ok()) {
        consecutive_failures = 0;
        tracker.MarkUp(sim.Now());
        write_ms.Add(sim::ToMillis(r.latency));
      } else if (++consecutive_failures >= 2) {
        tracker.MarkDown(sim.Now());
      }
    });
  });
  prober.Start();
  sim.RunFor(horizon);
  prober.Stop();
  AvailabilityRow row;
  row.availability = tracker.Availability(sim.Now());
  row.nines = tracker.Nines(sim.Now());
  row.outages = tracker.outages();
  row.mttr_s = tracker.MttrMicros() / sim::kSecond;
  row.downtime_s = sim::ToSeconds(tracker.Downtime(sim.Now()));
  if (write_mean_ms != nullptr) *write_mean_ms = write_ms.Mean();
  return row;
}

void Run() {
  metrics::Banner(
      "C10 / §2.2: availability under field failure rates (accelerated)");
  BenchReport report("c10_availability");
  sim::Duration horizon = (BenchShortMode() ? 20 : 120) * sim::kMinute;
  TablePrinter table({"configuration", "availability", "nines", "outages",
                      "mttr_s", "downtime_s"});
  struct Cfg {
    const char* label;
    int replicas;
    bool controller_crash;
  };
  const Cfg cfgs[] = {
      {"1 replica (no replication)", 1, false},
      {"2 replicas, hot standby", 2, false},
      {"3 replicas", 3, false},
      {"3 replicas + controller SPOF outage", 3, true},
  };
  for (const Cfg& cfg : cfgs) {
    // The plain 3-replica cluster is the headline configuration.
    AvailabilityRow r = RunConfig(
        cfg.replicas, cfg.controller_crash, horizon,
        cfg.replicas == 3 && !cfg.controller_crash ? &report : nullptr);
    table.AddRow({cfg.label, TablePrinter::Num(100 * r.availability, 4) + "%",
                  TablePrinter::Num(r.nines, 2),
                  TablePrinter::Int(r.outages),
                  TablePrinter::Num(r.mttr_s, 1),
                  TablePrinter::Num(r.downtime_s, 1)});
  }
  // §3.2 answered: replicate the controller and re-run the SPOF scenario.
  double async_ms = 0, sync_ms = 0;
  sim::Duration ha_horizon = (BenchShortMode() ? 5 : 20) * sim::kMinute;
  AvailabilityRow ha_async =
      RunReplicatedController(/*mirror_sync=*/false, ha_horizon, &async_ms);
  AvailabilityRow ha_sync =
      RunReplicatedController(/*mirror_sync=*/true, ha_horizon, &sync_ms);
  TablePrinter ha({"controller deployment", "availability", "outages",
                   "downtime_s", "write_mean_ms"});
  ha.AddRow({"active + warm standby, async mirror",
             TablePrinter::Num(100 * ha_async.availability, 4) + "%",
             TablePrinter::Int(ha_async.outages),
             TablePrinter::Num(ha_async.downtime_s, 1),
             TablePrinter::Num(async_ms, 2)});
  ha.AddRow({"active + warm standby, sync mirror",
             TablePrinter::Num(100 * ha_sync.availability, 4) + "%",
             TablePrinter::Int(ha_sync.outages),
             TablePrinter::Num(ha_sync.downtime_s, 1),
             TablePrinter::Num(sync_ms, 2)});
  ha.Print(
      "replicating the controller itself (20 min, controller crash at 10): "
      "the cost §3.2 says is never measured");

  table.Print("2 simulated hours, node MTTF 10min / node MTTR 20s");
  std::printf(
      "\nYardstick: five nines allows 5.26 minutes of downtime per YEAR\n"
      "(§4.4, §5.1). Replication cuts downtime to detection+failover\n"
      "windows — until the unreplicated middleware itself fails (§3.2),\n"
      "which single-handedly wipes out the availability budget.\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
