// C9 — §4.4.5: the latency overhead of replication at LOW load.
//
// "Replicated databases usually perform poorly when load is low, because
// low latency is critical to the performance of sequential (non-parallel)
// queries. A sequential batch update script will usually run much slower
// on a replicated database. OLTP-style sub-millisecond queries suffer the
// most, more so than heavyweight queries."
//
// We run one single-threaded client against (a) a direct database and
// (b) replicated clusters, for three query classes, and report overhead.
// Engine costs use the default (sub-millisecond) model here.

#include <cstdio>
#include <functional>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::ReplicationMode;

std::vector<std::string> Setup() {
  std::vector<std::string> out = {
      "CREATE TABLE t (id INT PRIMARY KEY, v INT)"};
  std::string batch;
  for (int i = 0; i < 5000; ++i) {
    batch += batch.empty() ? "INSERT INTO t VALUES " : ", ";
    batch += "(" + std::to_string(i) + ", 1)";
    if ((i + 1) % 250 == 0) {
      out.push_back(batch);
      batch.clear();
    }
  }
  return out;
}

middleware::TxnRequest PointRead(int64_t id) {
  middleware::TxnRequest r;
  r.read_only = true;
  r.statements = {"SELECT v FROM t WHERE id = " + std::to_string(id)};
  return r;
}
middleware::TxnRequest PointWrite(int64_t id) {
  middleware::TxnRequest r;
  r.statements = {"UPDATE t SET v = v + 1 WHERE id = " + std::to_string(id)};
  return r;
}
middleware::TxnRequest Scan() {
  middleware::TxnRequest r;
  r.read_only = true;
  r.statements = {"SELECT SUM(v) FROM t"};
  return r;
}

/// Runs `n` sequential transactions through the middleware; returns mean ms.
double SequentialViaMiddleware(Cluster* c, int n,
                               std::function<middleware::TxnRequest(int)> gen) {
  Histogram lat;
  int remaining = n;
  int i = 0;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    c->driver()->Submit(gen(i++), [&](const middleware::TxnResult& r) {
      lat.Add(sim::ToMillis(r.latency));
      next();
    });
  };
  next();
  c->sim.RunFor(120 * sim::kSecond);
  return lat.Mean();
}

/// Same, against a bare replica (no middleware).
double SequentialDirect(Cluster* c, int n,
                        std::function<middleware::TxnRequest(int)> gen) {
  DirectClient direct(&c->sim, c->network.get(), 300, 1);
  Histogram lat;
  int remaining = n;
  int i = 0;
  std::function<void()> next = [&] {
    if (remaining-- <= 0) return;
    sim::TimePoint start = c->sim.Now();
    direct.Execute(gen(i++), [&, start](const middleware::ExecTxnReply&) {
      lat.Add(sim::ToMillis(c->sim.Now() - start));
      next();
    });
  };
  next();
  c->sim.RunFor(120 * sim::kSecond);
  return lat.Mean();
}

void Run() {
  metrics::Banner("C9 / §4.4.5: replication overhead at low load");
  BenchReport report("c9_low_load_overhead");

  struct QueryClass {
    const char* label;
    std::function<middleware::TxnRequest(int)> gen;
    int n;
  };
  const QueryClass classes[] = {
      {"sub-ms point read", [](int i) { return PointRead(i % 5000); }, 400},
      {"sub-ms point write", [](int i) { return PointWrite(i % 5000); }, 400},
      {"heavyweight scan (5k rows)", [](int) { return Scan(); }, 120},
  };

  TablePrinter table({"query class", "direct_ms", "1-replica_mw_ms",
                      "3-replica cert_ms", "mw_overhead", "cert_overhead"});
  for (const QueryClass& qc : classes) {
    // Direct single database.
    ClusterOptions base;  // Default (sub-ms) engine cost model.
    base.replicas = 1;
    class Raw : public workload::Workload {
     public:
      explicit Raw(std::vector<std::string> s) : s_(std::move(s)) {}
      std::vector<std::string> SetupStatements() const override { return s_; }
      middleware::TxnRequest Next(Rng*) override { return {}; }
      std::vector<std::string> s_;
    } raw(Setup());
    auto c_direct = MakeCluster(std::move(base), &raw);
    double direct = SequentialDirect(c_direct.get(), qc.n, qc.gen);

    ClusterOptions mw1;
    mw1.replicas = 1;
    auto c1 = MakeCluster(std::move(mw1), &raw);
    double one = SequentialViaMiddleware(c1.get(), qc.n, qc.gen);

    ClusterOptions mw3;
    mw3.replicas = 3;
    mw3.controller.mode = ReplicationMode::kMultiMasterCertification;
    auto c3 = MakeCluster(std::move(mw3), &raw);
    double three = SequentialViaMiddleware(c3.get(), qc.n, qc.gen);

    if (std::strcmp(qc.label, "sub-ms point write") == 0) {
      // The worst-hit query class is the headline: fixed middleware cost
      // vs a sub-millisecond statement.
      report.Set("point_write_direct_ms", direct);
      report.Set("point_write_mw1_ms", one);
      report.Set("point_write_cert3_ms", three);
      report.CaptureCluster(*c3, /*committed_txns=*/0);
    }

    table.AddRow({qc.label, TablePrinter::Num(direct, 3),
                  TablePrinter::Num(one, 3), TablePrinter::Num(three, 3),
                  "+" + TablePrinter::Num(100 * (one - direct) / direct, 0) + "%",
                  "+" + TablePrinter::Num(100 * (three - direct) / direct, 0) +
                      "%"});
  }
  table.Print("single-threaded sequential latency (no concurrency to hide it)");

  // The batch script: N dependent updates back to back.
  TablePrinter batch({"configuration", "500-update script wall time (s)"});
  {
    class Raw : public workload::Workload {
     public:
      explicit Raw(std::vector<std::string> s) : s_(std::move(s)) {}
      std::vector<std::string> SetupStatements() const override { return s_; }
      middleware::TxnRequest Next(Rng*) override { return {}; }
      std::vector<std::string> s_;
    } raw(Setup());
    {
      ClusterOptions base;
      base.replicas = 1;
      auto c = MakeCluster(std::move(base), &raw);
      sim::TimePoint t0 = c->sim.Now();
      SequentialDirect(c.get(), 500, [](int i) { return PointWrite(i); });
      // Recompute actual span: last completion is when sim queue drained
      // of our chain; measure via a final probe.
      (void)t0;
    }
    auto time_script = [&](bool direct, int replicas,
                           ReplicationMode mode) -> double {
      ClusterOptions o;
      o.replicas = replicas;
      o.controller.mode = mode;
      auto c = MakeCluster(std::move(o), &raw);
      sim::TimePoint start = c->sim.Now();
      sim::TimePoint end = start;
      int remaining = 500;
      int i = 0;
      DirectClient dc(&c->sim, c->network.get(), 300, 1);
      std::function<void()> next = [&] {
        if (remaining-- <= 0) {
          end = c->sim.Now();
          return;
        }
        if (direct) {
          dc.Execute(PointWrite(i++), [&](const middleware::ExecTxnReply&) {
            next();
          });
        } else {
          c->driver()->Submit(PointWrite(i++),
                              [&](const middleware::TxnResult&) { next(); });
        }
      };
      next();
      c->sim.RunFor(300 * sim::kSecond);
      return sim::ToSeconds(end - start);
    };
    batch.AddRow({"direct single DB",
                  TablePrinter::Num(
                      time_script(true, 1, ReplicationMode::kMasterSlaveAsync), 2)});
    batch.AddRow({"middleware, 1 replica",
                  TablePrinter::Num(
                      time_script(false, 1, ReplicationMode::kMasterSlaveAsync), 2)});
    double cert_script_s =
        time_script(false, 3, ReplicationMode::kMultiMasterCertification);
    report.Set("batch_script_cert3_s", cert_script_s);
    batch.AddRow({"middleware, 3 replicas (cert)",
                  TablePrinter::Num(cert_script_s, 2)});
    batch.AddRow({"middleware, 3 replicas (statement)",
                  TablePrinter::Num(
                      time_script(false, 3,
                                  ReplicationMode::kMultiMasterStatement), 2)});
  }
  batch.Print("the sequential batch update script (§4.4.5)");
  std::printf(
      "\nExpected shape: fixed middleware hops and processing dominate\n"
      "sub-millisecond queries (largest %% overhead); the heavyweight scan\n"
      "barely notices. The sequential script multiplies the per-statement\n"
      "overhead by its length — \"much slower on a replicated database\".\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
