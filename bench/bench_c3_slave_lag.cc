// C3 — §2.2: hot-standby lag from serial apply.
//
// "The trailing updates are applied serially at the slave, whereas the
// master processes them in parallel. [...] the lag between the master and
// slave node can become significant" — customers report hours of failover
// delay. We drive a parallel master (many client connections) and vary the
// slave's apply parallelism, sampling the replication lag over time, then
// measure how long the slave needs to drain once traffic stops.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

struct LagResult {
  uint64_t peak_lag = 0;
  uint64_t end_lag = 0;       ///< Lag when traffic stops.
  double drain_seconds = 0;   ///< Time to catch up afterwards.
  double master_tps = 0;
};

LagResult RunOnce(int apply_workers) {
  // Per-config metrics: each run starts from a clean registry so the
  // per-stage breakdown below describes exactly this configuration.
  obs::MetricsRegistry::Global().Reset();
  workload::MicroWorkload::Options wo;
  wo.rows = 2000;
  wo.write_fraction = 1.0;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.replica.apply_workers = apply_workers;
  opts.replica.ship_interval = 20 * sim::kMillisecond;
  // Slave apply of a row-image writeset is deliberately not cheaper than
  // the original execution (fsync-bound), so a 1-worker slave cannot keep
  // up with a 4-worker master at full write load.
  opts.replica.apply_base_us = 1800;
  opts.replica.apply_per_op_us = 100;
  auto c = MakeCluster(std::move(opts), &w);

  LagResult out;
  sim::PeriodicTask sampler(&c->sim, 250 * sim::kMillisecond, [&] {
    uint64_t m = c->replica(0)->applied_version();
    uint64_t s = c->replica(1)->applied_version();
    if (m > s) out.peak_lag = std::max(out.peak_lag, m - s);
  });
  sampler.Start();
  RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/32,
                                 15 * sim::kSecond);
  sampler.Stop();
  out.master_tps = stats.ThroughputTps();
  uint64_t m = c->replica(0)->applied_version();
  uint64_t s = c->replica(1)->applied_version();
  out.end_lag = m > s ? m - s : 0;

  // Drain: no new traffic; how long until the slave catches up?
  sim::TimePoint drain_start = c->sim.Now();
  sim::TimePoint caught_up = -1;
  for (int i = 0; i < 1200 && caught_up < 0; ++i) {
    c->sim.RunFor(250 * sim::kMillisecond);
    if (c->replica(1)->applied_version() >=
        c->replica(0)->applied_version()) {
      caught_up = c->sim.Now();
    }
  }
  out.drain_seconds =
      caught_up < 0 ? -1 : sim::ToSeconds(caught_up - drain_start);
  return out;
}

void Run() {
  metrics::Banner("C3 / §2.2: slave lag vs apply parallelism");
  TablePrinter table({"apply_workers", "master_tps", "peak_lag_txns",
                      "lag_after_10s_idle", "extra_drain_s"});
  for (int workers : {1, 2, 4, 8}) {
    LagResult r = RunOnce(workers);
    table.AddRow({TablePrinter::Int(workers),
                  TablePrinter::Num(r.master_tps, 0),
                  TablePrinter::Int(static_cast<int64_t>(r.peak_lag)),
                  TablePrinter::Int(static_cast<int64_t>(r.end_lag)),
                  r.drain_seconds < 0 ? "never (>300s)"
                                      : TablePrinter::Num(r.drain_seconds, 1)});
    PrintStageBreakdown(
        "per-stage breakdown, apply_workers=" + std::to_string(workers),
        DefaultStages());
  }
  table.Print("15s of full-write load on a 4-worker master (+10s idle)");
  std::printf(
      "\nExpected shape: a serial (1-worker) slave falls further and\n"
      "further behind a parallel master and needs a long drain — the\n"
      "\"solution\" in the field is slowing down the master (§2.2).\n"
      "Parallel apply (the research ask of §4.4.2) bounds the lag.\n");
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::InitTracingFromEnv();
  replidb::bench::Run();
  replidb::bench::WriteTraceIfEnabled();
  return 0;
}
