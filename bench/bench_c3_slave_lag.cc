// C3 — §2.2: hot-standby lag from serial apply.
//
// "The trailing updates are applied serially at the slave, whereas the
// master processes them in parallel. [...] the lag between the master and
// slave node can become significant" — customers report hours of failover
// delay. We drive a parallel master (many client connections) and vary the
// slave's apply parallelism, sampling the replication lag over time, then
// measure how long the slave needs to drain once traffic stops.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

struct LagResult {
  uint64_t peak_lag = 0;
  uint64_t end_lag = 0;       ///< Lag when traffic stops.
  double drain_seconds = 0;   ///< Time to catch up afterwards.
  double master_tps = 0;
};

sim::Duration LoadDuration() {
  return (BenchShortMode() ? 4 : 15) * sim::kSecond;
}

LagResult RunOnce(int apply_workers, BenchReport* report = nullptr) {
  // Per-config metrics: each run starts from a clean registry so the
  // per-stage breakdown below describes exactly this configuration.
  obs::MetricsRegistry::Global().Reset();
  workload::MicroWorkload::Options wo;
  wo.rows = 2000;
  wo.write_fraction = 1.0;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.replica.apply_workers = apply_workers;
  opts.replica.ship_interval = 20 * sim::kMillisecond;
  // Slave apply of a row-image writeset is deliberately not cheaper than
  // the original execution (fsync-bound), so a 1-worker slave cannot keep
  // up with a 4-worker master at full write load.
  opts.replica.apply_base_us = 1800;
  opts.replica.apply_per_op_us = 100;
  auto c = MakeCluster(std::move(opts), &w);

  LagResult out;
  sim::PeriodicTask sampler(&c->sim, 250 * sim::kMillisecond, [&] {
    uint64_t m = c->replica(0)->applied_version();
    uint64_t s = c->replica(1)->applied_version();
    if (m > s) out.peak_lag = std::max(out.peak_lag, m - s);
  });
  sampler.Start();
  RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/32, LoadDuration());
  sampler.Stop();
  out.master_tps = stats.ThroughputTps();
  uint64_t m = c->replica(0)->applied_version();
  uint64_t s = c->replica(1)->applied_version();
  out.end_lag = m > s ? m - s : 0;

  // Drain: no new traffic; how long until the slave catches up?
  sim::TimePoint drain_start = c->sim.Now();
  sim::TimePoint caught_up = -1;
  int drain_rounds = BenchShortMode() ? 120 : 1200;
  for (int i = 0; i < drain_rounds && caught_up < 0; ++i) {
    c->sim.RunFor(250 * sim::kMillisecond);
    if (c->replica(1)->applied_version() >=
        c->replica(0)->applied_version()) {
      caught_up = c->sim.Now();
    }
  }
  out.drain_seconds =
      caught_up < 0 ? -1 : sim::ToSeconds(caught_up - drain_start);
  if (report != nullptr) {
    report->FromStats(stats);
    report->CaptureCluster(*c, stats.committed);
    // Envelope from the bench's own sampler (pre-drain peak, post-drain
    // end), which is the lag story this scenario is about.
    report->Lag(static_cast<double>(out.peak_lag),
                static_cast<double>(out.end_lag));
    // Lag timeline: the slave's sampled apply lag in virtual-time buckets,
    // as a curve — growth under load and the drain tail are both visible.
    PrintSeriesCurve(*c, "replica.2.lag_versions",
                     "slave lag timeline, apply_workers=" +
                         std::to_string(apply_workers));
  }
  return out;
}

// --- C3(d): shipping-pipeline ablation --------------------------------------

struct ShipConfig {
  const char* label;
  int apply_workers;
  bool batching;
  bool flow_control;
  bool backpressure;
  /// Group-fsync amortization for batch followers. 1.0 disables it — used
  /// for the "slow slave" rows so the slave genuinely cannot keep up.
  double group_factor;
};

struct ShipResult {
  double master_tps = 0;
  double slave_apply_tps = 0;
  uint64_t peak_lag = 0;
  uint64_t end_lag = 0;
  uint64_t window_stalls = 0;
  uint64_t admission_defers = 0;
};

ShipResult RunShipMode(const ShipConfig& cfg) {
  obs::MetricsRegistry::Global().Reset();
  workload::MicroWorkload::Options wo;
  wo.rows = 2000;
  wo.write_fraction = 1.0;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.replica.apply_workers = cfg.apply_workers;
  opts.replica.ship_interval = 20 * sim::kMillisecond;
  opts.replica.apply_base_us = 1800;
  opts.replica.apply_per_op_us = 100;
  // Group shipping amortizes the batch's group fsync: followers in one
  // shipped batch pay a fraction of the per-entry base cost.
  opts.replica.apply_group_factor = cfg.group_factor;
  opts.replica.ship.batching = cfg.batching;
  opts.replica.ship.flow_control = cfg.flow_control;
  // Small window so a slow slave exhausts it within seconds.
  opts.replica.ship.window_bytes = 64 * 1024;
  opts.replica.ship.backpressure_admission = cfg.backpressure;
  opts.controller.ship.backpressure_admission = cfg.backpressure;
  auto c = MakeCluster(std::move(opts), &w);

  ShipResult out;
  sim::PeriodicTask sampler(&c->sim, 250 * sim::kMillisecond, [&] {
    uint64_t m = c->replica(0)->applied_version();
    uint64_t s = c->replica(1)->applied_version();
    if (m > s) out.peak_lag = std::max(out.peak_lag, m - s);
  });
  sampler.Start();
  uint64_t slave_before = c->replica(1)->applied_version();
  RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/32, LoadDuration());
  sampler.Stop();
  out.master_tps = stats.ThroughputTps();
  out.slave_apply_tps =
      static_cast<double>(c->replica(1)->applied_version() - slave_before) /
      sim::ToSeconds(LoadDuration());
  uint64_t m = c->replica(0)->applied_version();
  uint64_t s = c->replica(1)->applied_version();
  out.end_lag = m > s ? m - s : 0;
  auto& reg = obs::MetricsRegistry::Global();
  // The slave is node 2 (cluster replica ids are 1..N).
  if (const auto* stalls = reg.FindCounter("ship.replica.2.window_stall")) {
    out.window_stalls = stalls->value();
  }
  if (const auto* defers =
          reg.FindCounter("ship.admission.backpressure_defers")) {
    out.admission_defers = defers->value();
  }
  return out;
}

void RunShipAblation() {
  metrics::Banner("C3(d): writeset shipping — batching + flow control");
  const ShipConfig configs[] = {
      {"per-txn ship, 2 workers", 2, false, false, false, 0.25},
      {"batched ship, 2 workers", 2, true, false, false, 0.25},
      {"batched, slow slave, no flow ctl", 1, true, false, false, 1.0},
      {"batched+flow+backpressure, slow slave", 1, true, true, true, 1.0},
  };
  TablePrinter table({"config", "master_tps", "slave_apply_tps",
                      "peak_lag_txns", "end_lag_txns", "window_stalls",
                      "admission_defers"});
  for (const ShipConfig& cfg : configs) {
    ShipResult r = RunShipMode(cfg);
    table.AddRow({cfg.label, TablePrinter::Num(r.master_tps, 0),
                  TablePrinter::Num(r.slave_apply_tps, 0),
                  TablePrinter::Int(static_cast<int64_t>(r.peak_lag)),
                  TablePrinter::Int(static_cast<int64_t>(r.end_lag)),
                  TablePrinter::Int(static_cast<int64_t>(r.window_stalls)),
                  TablePrinter::Int(static_cast<int64_t>(r.admission_defers))});
  }
  table.Print("group shipping amortizes the slave's per-entry fsync "
              "(apply_group_factor=0.25); credit flow control turns "
              "unbounded lag into admission backpressure");
  std::printf(
      "\nExpected shape: batching raises the slave's sustainable apply\n"
      "rate over per-txn shipping. A deliberately slow slave still lags\n"
      "monotonically without flow control; with credits + admission\n"
      "backpressure the master is paced (window_stalls > 0) and the lag\n"
      "stays bounded instead of growing for the whole run.\n");
}

void Run() {
  metrics::Banner("C3 / §2.2: slave lag vs apply parallelism");
  BenchReport report("c3_slave_lag");
  TablePrinter table({"apply_workers", "master_tps", "peak_lag_txns",
                      "lag_after_10s_idle", "extra_drain_s"});
  for (int workers : {1, 2, 4, 8}) {
    // The serial-apply (1-worker) slave is the paper's headline case;
    // that configuration feeds the trajectory report and the curve.
    LagResult r = RunOnce(workers, workers == 1 ? &report : nullptr);
    table.AddRow({TablePrinter::Int(workers),
                  TablePrinter::Num(r.master_tps, 0),
                  TablePrinter::Int(static_cast<int64_t>(r.peak_lag)),
                  TablePrinter::Int(static_cast<int64_t>(r.end_lag)),
                  r.drain_seconds < 0 ? "never (>300s)"
                                      : TablePrinter::Num(r.drain_seconds, 1)});
    PrintStageBreakdown(
        "per-stage breakdown, apply_workers=" + std::to_string(workers),
        DefaultStages());
  }
  table.Print("15s of full-write load on a 4-worker master (+10s idle)");
  std::printf(
      "\nExpected shape: a serial (1-worker) slave falls further and\n"
      "further behind a parallel master and needs a long drain — the\n"
      "\"solution\" in the field is slowing down the master (§2.2).\n"
      "Parallel apply (the research ask of §4.4.2) bounds the lag.\n");

  RunShipAblation();
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::InitTracingFromEnv();
  replidb::bench::Run();
  replidb::bench::WriteTraceIfEnabled();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
