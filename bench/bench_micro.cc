// Micro-benchmarks (google-benchmark): per-component costs that back the
// scenario benches — SQL parsing/rewriting (the middleware's per-statement
// tax), engine transaction primitives, writeset capture/apply, and
// certification throughput. These are wall-clock benchmarks of the actual
// implementation (no simulated time).

#include <benchmark/benchmark.h>

#include "engine/rdbms.h"
#include "middleware/recovery_log.h"
#include "ship/codec.h"
#include "sql/determinism.h"
#include "sql/parser.h"

namespace replidb {
namespace {

// --- SQL layer --------------------------------------------------------------

void BM_ParsePointSelect(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::Parse("SELECT balance, owner FROM accounts WHERE id = 12345");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParsePointSelect);

void BM_ParseComplexUpdate(benchmark::State& state) {
  for (auto _ : state) {
    auto r = sql::Parse(
        "UPDATE foo SET keyvalue = 'x', ts = NOW(), n = n + 1 WHERE id IN "
        "(SELECT id FROM foo WHERE keyvalue = NULL ORDER BY id LIMIT 10) "
        "AND n < 100");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ParseComplexUpdate);

void BM_AnalyzeDeterminism(benchmark::State& state) {
  sql::Statement stmt =
      sql::Parse("UPDATE t SET x = RAND(), ts = NOW() WHERE id = 5").TakeValue();
  for (auto _ : state) {
    auto report = sql::Analyze(stmt);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_AnalyzeDeterminism);

void BM_RewriteAndSerialize(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    sql::Statement stmt =
        sql::Parse("INSERT INTO t (a, b, c) VALUES (NOW(), RAND(), 7)")
            .TakeValue();
    sql::RewriteForStatementReplication(&stmt, sql::Value::Int(123), &rng);
    std::string text = sql::ToSql(stmt);
    benchmark::DoNotOptimize(text);
  }
}
BENCHMARK(BM_RewriteAndSerialize);

// --- Engine -----------------------------------------------------------------

struct EngineFixture {
  engine::Rdbms db;
  engine::SessionId session;

  explicit EngineFixture(int rows) : db(engine::RdbmsOptions{}) {
    session = db.Connect().value();
    db.Execute(session, "CREATE TABLE accounts (id INT PRIMARY KEY, v INT)");
    std::string batch;
    for (int i = 0; i < rows; ++i) {
      batch += batch.empty() ? "INSERT INTO accounts VALUES " : ", ";
      batch += "(" + std::to_string(i) + ", 0)";
      if ((i + 1) % 500 == 0 || i + 1 == rows) {
        db.Execute(session, batch);
        batch.clear();
      }
    }
  }
};

void BM_EnginePointRead(benchmark::State& state) {
  EngineFixture f(10000);
  int64_t i = 0;
  for (auto _ : state) {
    auto r = f.db.Execute(f.session, "SELECT v FROM accounts WHERE id = " +
                                         std::to_string(i++ % 10000));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EnginePointRead);

void BM_EnginePointUpdate(benchmark::State& state) {
  EngineFixture f(10000);
  int64_t i = 0;
  for (auto _ : state) {
    auto r = f.db.Execute(
        f.session, "UPDATE accounts SET v = v + 1 WHERE id = " +
                       std::to_string(i++ % 10000));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EnginePointUpdate);

void BM_EngineInsert(benchmark::State& state) {
  EngineFixture f(0);
  int64_t i = 0;
  for (auto _ : state) {
    auto r = f.db.Execute(f.session, "INSERT INTO accounts VALUES (" +
                                         std::to_string(i++) + ", 0)");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineInsert);

void BM_EngineScan1k(benchmark::State& state) {
  EngineFixture f(1000);
  for (auto _ : state) {
    auto r = f.db.Execute(f.session, "SELECT SUM(v) FROM accounts");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_EngineScan1k);

void BM_EngineTransaction3Stmts(benchmark::State& state) {
  EngineFixture f(10000);
  int64_t i = 0;
  for (auto _ : state) {
    f.db.Execute(f.session, "BEGIN");
    f.db.Execute(f.session, "SELECT v FROM accounts WHERE id = " +
                                std::to_string(i % 10000));
    f.db.Execute(f.session, "UPDATE accounts SET v = v + 1 WHERE id = " +
                                std::to_string(i % 10000));
    auto r = f.db.Execute(f.session, "COMMIT");
    benchmark::DoNotOptimize(r);
    ++i;
  }
}
BENCHMARK(BM_EngineTransaction3Stmts);

// --- Writeset capture and apply ------------------------------------------------

void BM_WritesetApply(benchmark::State& state) {
  EngineFixture source(1000);
  EngineFixture target(1000);
  // Capture one writeset of `ops` row updates.
  int ops = static_cast<int>(state.range(0));
  source.db.Execute(source.session, "BEGIN");
  source.db.Execute(source.session,
                    "UPDATE accounts SET v = v + 1 WHERE id < " +
                        std::to_string(ops));
  engine::Writeset ws = *source.db.CurrentWriteset(source.session);
  source.db.Execute(source.session, "COMMIT");
  for (auto _ : state) {
    auto r = target.db.ApplyWriteset(ws);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations() * ops);
}
BENCHMARK(BM_WritesetApply)->Arg(1)->Arg(10)->Arg(100);

// --- Certification ----------------------------------------------------------------

void BM_CertifierThroughput(benchmark::State& state) {
  // Certification = key lookups in the last-writer map, the certifier's
  // hot loop (§3.2's centralized certifier).
  std::unordered_map<std::string, uint64_t> last_writer;
  for (int i = 0; i < 100000; ++i) {
    last_writer["main.accounts/" + std::to_string(i)] = i;
  }
  uint64_t version = 100000;
  int64_t i = 0;
  std::vector<std::string> keys = {"main.accounts/42", "main.accounts/77",
                                   "main.accounts/99999"};
  for (auto _ : state) {
    bool ok = true;
    uint64_t begin = version - 5;
    for (const std::string& k : keys) {
      auto it = last_writer.find(k);
      if (it != last_writer.end() && it->second > begin) ok = false;
    }
    benchmark::DoNotOptimize(ok);
    last_writer[keys[static_cast<size_t>(i++) % keys.size()]] = ++version;
  }
}
BENCHMARK(BM_CertifierThroughput);

void BM_RecoveryLogAppendAndRange(benchmark::State& state) {
  middleware::RecoveryLog log;
  middleware::GlobalVersion v = 0;
  for (auto _ : state) {
    middleware::ReplicationEntry entry;
    entry.version = ++v;
    entry.statements = {"UPDATE accounts SET v = v + 1 WHERE id = 1"};
    entry.use_statements = true;
    log.Append(std::move(entry));
    if (v % 1024 == 0) {
      auto range = log.Range(v - 1024, v);
      benchmark::DoNotOptimize(range);
    }
  }
}
BENCHMARK(BM_RecoveryLogAppendAndRange);

void BM_ContentHash(benchmark::State& state) {
  EngineFixture f(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    uint64_t h = f.db.ContentHash();
    benchmark::DoNotOptimize(h);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ContentHash)->Arg(1000)->Arg(10000);

// --- Ship wire codec --------------------------------------------------------

std::vector<middleware::ReplicationEntry> ShipBenchBatch(int n) {
  std::vector<middleware::ReplicationEntry> batch;
  for (int i = 0; i < n; ++i) {
    middleware::ReplicationEntry e;
    e.version = static_cast<uint64_t>(i + 1);
    e.origin_commit_us = 1000000 + i * 137;
    engine::WriteOp op;
    op.kind = engine::WriteOpKind::kUpdate;
    op.database = "bank";
    op.table = "accounts";
    op.primary_key = sql::Value::Int(i);
    op.after = {sql::Value::Int(i), sql::Value::Int(1000 + i),
                sql::Value::String("account holder " + std::to_string(i % 7))};
    e.writeset.ops.push_back(std::move(op));
    batch.push_back(std::move(e));
  }
  return batch;
}

void BM_ShipEncodeBatch(benchmark::State& state) {
  auto batch = ShipBenchBatch(static_cast<int>(state.range(0)));
  int64_t raw = 0, wire = 0;
  for (auto _ : state) {
    ship::EncodedBatch enc = ship::EncodeBatch(batch, ship::CodecOptions{});
    raw = enc.raw_size_bytes;
    wire = enc.encoded_size_bytes;
    benchmark::DoNotOptimize(enc);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.counters["compression"] =
      wire > 0 ? static_cast<double>(raw) / static_cast<double>(wire) : 0;
}
BENCHMARK(BM_ShipEncodeBatch)->Arg(1)->Arg(16)->Arg(256);

void BM_ShipDecodeBatch(benchmark::State& state) {
  auto batch = ShipBenchBatch(static_cast<int>(state.range(0)));
  ship::EncodedBatch enc = ship::EncodeBatch(batch, ship::CodecOptions{});
  for (auto _ : state) {
    auto dec = ship::DecodeBatch(enc.payload);
    benchmark::DoNotOptimize(dec);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ShipDecodeBatch)->Arg(1)->Arg(16)->Arg(256);

}  // namespace
}  // namespace replidb

BENCHMARK_MAIN();
