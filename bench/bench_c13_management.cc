// C13 — §4.4.1 / §4.4.2: management operations under load.
//
// (a) Online (hot) backup: what it does to query latency on the donor and
//     on the cluster while it runs.
// (b) Adding a replica online: clone from a donor, replay the recovery-log
//     tail, go live — service continues, at a measurable cost.
// (c) The metadata trap: a data-only backup restores a replica that
//     rejects every application user (§4.1.5).

#include <cstdio>

#include "bench/bench_util.h"
#include "client/connection_pool.h"

namespace replidb::bench {
namespace {

using middleware::ReplicationMode;

void OnlineBackup() {
  workload::TicketBrokerWorkload::Options wo;
  wo.items = 4000;  // Big enough that the dump takes a while.
  workload::TicketBrokerWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.replica.capacity = 2;                   // Small box.
  opts.replica.backup_bytes_per_sec = 0.04e6;  // Slow dump device.
  // Round-robin: an adaptive balancer (LPRF) would quietly steer load off
  // the busy donor and mask the degradation we want to measure.
  opts.controller.load_balance = middleware::LoadBalancePolicy::kRoundRobin;
  auto c = MakeCluster(std::move(opts), &w);

  Histogram before, during, after;
  Rng rng(23);
  bool backup_running = false, backup_done = false;
  std::function<void()> arrivals = [&] {
    middleware::TxnRequest req = w.Next(&rng);
    c->driver()->Submit(std::move(req), [&](const middleware::TxnResult& r) {
      if (!r.status.ok()) return;
      (backup_done ? after : (backup_running ? during : before))
          .Add(sim::ToMillis(r.latency));
    });
    c->sim.Schedule(static_cast<sim::Duration>(rng.Exponential(500)),
                    arrivals);  // ~2000 tps: the donor runs hot.
  };
  arrivals();
  c->sim.RunFor(5 * sim::kSecond);
  sim::TimePoint backup_started = c->sim.Now();
  sim::TimePoint backup_finished = 0;
  backup_running = true;
  c->controller->StartBackup(2, engine::BackupOptions{},
                             [&](Result<engine::BackupImage> image) {
                               (void)image;
                               backup_running = false;
                               backup_done = true;
                               backup_finished = c->sim.Now();
                             });
  c->sim.RunFor(20 * sim::kSecond);
  c->sim.RunFor(5 * sim::kSecond);

  TablePrinter table({"phase", "mean_ms", "p99_ms"});
  table.AddRow({"before backup", TablePrinter::Num(before.Mean(), 2),
                TablePrinter::Num(before.Percentile(99), 2)});
  table.AddRow({"during backup", TablePrinter::Num(during.Mean(), 2),
                TablePrinter::Num(during.Percentile(99), 2)});
  table.AddRow({"after backup", TablePrinter::Num(after.Mean(), 2),
                TablePrinter::Num(after.Percentile(99), 2)});
  table.Print("(a) hot backup on a live replica: latency impact");
  if (backup_finished > 0) {
    std::printf("backup duration: %.1fs (service stayed up throughout)\n",
                sim::ToSeconds(backup_finished - backup_started));
  }
}

void AddReplicaOnline(BenchReport* report) {
  workload::TicketBrokerWorkload::Options wo;
  wo.items = 2000;
  workload::TicketBrokerWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 2;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.replica.backup_bytes_per_sec = 0.2e6;  // Clone over a modest link.
  auto c = MakeCluster(std::move(opts), &w);

  workload::OpenLoopGenerator gen(&c->sim, c->driver(), &w, 800, 29);
  // Kick off the load, then add the replica mid-run.
  engine::RdbmsOptions eopts = c->options.engine;
  eopts.name = "replica-new";
  eopts.physical_seed = 4242;
  middleware::ReplicaNode fresh(&c->sim, c->network.get(), 50, eopts,
                                c->options.replica);
  sim::TimePoint added_at = 0, online_at = 0;
  c->sim.Schedule(4 * sim::kSecond, [&] {
    added_at = c->sim.Now();
    c->controller->AddReplica(&fresh, /*donor=*/2, [&](Status s) {
      if (s.ok()) online_at = c->sim.Now();
    });
  });
  gen.Run(20 * sim::kSecond);

  // Online replica addition is this scenario's headline operation.
  report->FromStats(gen.stats());
  report->CaptureCluster(*c, gen.stats().committed);
  if (online_at > 0) {
    report->Set("time_to_online_s", sim::ToSeconds(online_at - added_at));
  }

  TablePrinter table({"metric", "value"});
  table.AddRow({"cluster tps during the operation",
                TablePrinter::Num(gen.stats().ThroughputTps(), 0)});
  table.AddRow({"failed txns during the operation",
                TablePrinter::Int(static_cast<int64_t>(gen.stats().failed))});
  table.AddRow({"time to online (clone+restore+replay)",
                online_at > 0
                    ? TablePrinter::Num(sim::ToSeconds(online_at - added_at), 2) + " s"
                    : "did not finish"});
  table.AddRow({"new replica converged",
                fresh.engine()->ContentHash() ==
                        c->replica(0)->engine()->ContentHash()
                    ? "yes"
                    : "no"});
  table.Print("(b) adding a replica online (no downtime)");
}

void MetadataTrap() {
  // A replica cloned from a data-only backup loses the user catalog.
  engine::RdbmsOptions source_opts;
  source_opts.name = "prod";
  source_opts.enforce_authentication = true;
  engine::Rdbms prod(source_opts);
  prod.CreateUser("app_user");
  engine::SessionId s = prod.Connect("app_user").value();
  prod.Execute(s, "CREATE TABLE t (id INT PRIMARY KEY)");
  prod.Execute(s, "INSERT INTO t VALUES (1)");
  prod.Disconnect(s);

  TablePrinter table({"backup options", "clone rows", "app_user can connect"});
  for (bool with_metadata : {false, true}) {
    engine::BackupOptions bo;
    bo.include_metadata = with_metadata;
    engine::BackupImage image = prod.Backup(bo).value();
    engine::RdbmsOptions clone_opts;
    clone_opts.name = "clone";
    clone_opts.enforce_authentication = true;
    engine::Rdbms clone(clone_opts);
    Status restored = clone.Restore(image);
    (void)restored;
    bool can_connect = clone.Connect("app_user").ok();
    table.AddRow({with_metadata ? "data + users/triggers (rare)"
                                : "data only (typical tool)",
                  TablePrinter::Int(
                      static_cast<int64_t>(clone.TableRowCount("main", "t"))),
                  can_connect ? "yes" : "NO - clone is unusable"});
  }
  table.Print("(c) the §4.1.5 trap: backups without user metadata");
}

void RollingUpgradeRun() {
  // §4.4.3: upgrade every replica's software one node at a time while
  // writes keep flowing.
  workload::MicroWorkload::Options wo;
  wo.rows = 300;
  wo.write_fraction = 0.5;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * sim::kMillisecond;
  opts.controller.heartbeat.timeout = 200 * sim::kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.max_retries = 10;
  opts.driver.request_timeout = 500 * sim::kMillisecond;
  auto c = MakeCluster(std::move(opts), &w);
  workload::OpenLoopGenerator gen(&c->sim, c->driver(), &w, 600, 31);
  sim::TimePoint started = 0, finished = 0;
  c->sim.Schedule(2 * sim::kSecond, [&] {
    started = c->sim.Now();
    c->controller->RollingUpgrade(/*target_version=*/2,
                                  /*upgrade_duration=*/3 * sim::kSecond,
                                  [&](Status s) {
                                    if (s.ok()) finished = c->sim.Now();
                                  });
  });
  gen.Run(40 * sim::kSecond);
  TablePrinter table({"metric", "value"});
  table.AddRow({"upgrade duration (3 nodes, 3s each + resync)",
                finished > 0
                    ? TablePrinter::Num(sim::ToSeconds(finished - started), 1) + " s"
                    : "did not finish"});
  table.AddRow({"failed txns during upgrade",
                TablePrinter::Int(static_cast<int64_t>(gen.stats().failed))});
  table.AddRow({"tps during upgrade",
                TablePrinter::Num(gen.stats().ThroughputTps(), 0)});
  bool all_v2 = true;
  for (int i = 0; i < 3; ++i) all_v2 = all_v2 && c->replica(i)->software_version() == 2;
  table.AddRow({"all replicas on v2", all_v2 ? "yes" : "no"});
  table.Print("(d) rolling software upgrade (§4.4.3): no service interruption");
}

void ConnectionPoolFailback() {
  // §4.3.3: the connection-pool failback pathology.
  sim::Simulator sim;
  TablePrinter table({"pool policy", "pins on recovered node",
                      "imbalance (max/ideal)", "reconnects"});
  for (sim::Duration recycle : {sim::Duration{0}, 2 * sim::kSecond}) {
    client::ConnectionPool::Options po;
    po.size = 30;
    po.recycle_after = recycle;
    client::ConnectionPool pool(&sim, {1, 2, 3}, po);
    pool.MarkFailed(2);
    sim.RunUntil(sim.Now() + 5 * sim::kSecond);
    pool.MarkRecovered(2);
    for (int t = 0; t < 10; ++t) {
      sim.RunUntil(sim.Now() + sim::kSecond);
      for (int i = 0; i < 30; ++i) pool.Acquire();
    }
    auto dist = pool.Distribution();
    table.AddRow({recycle == 0 ? "persistent connections (typical)"
                               : "recycle every 2s (aggressive)",
                  TablePrinter::Int(dist[2]),
                  TablePrinter::Num(pool.Imbalance(), 2),
                  TablePrinter::Int(static_cast<int64_t>(pool.reconnects()))});
  }
  table.Print("(e) connection-pool failback after a replica recovers (§4.3.3)");
}

void StatusConsole() {
  // (f) The operator console: run a master-slave cluster with the online
  // auditor enabled, then print the SHOW-REPLICA-STATUS table and the
  // Prometheus exposition of the whole metrics registry — the two views a
  // monitoring stack would scrape.
  workload::MicroWorkload::Options wo;
  wo.rows = 500;
  wo.write_fraction = 0.3;
  workload::MicroWorkload w(wo);
  ClusterOptions opts = BenchDefaults();
  opts.replicas = 3;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.audit_interval = 500 * sim::kMillisecond;
  auto c = MakeCluster(std::move(opts), &w);
  RunOpenLoop(c.get(), &w, /*rate_tps=*/400, 8 * sim::kSecond);
  c->sim.RunFor(2 * sim::kSecond);  // Drain so slaves reach the head.

  std::printf("\n%s", c->ShowReplicaStatus().c_str());
  std::printf("\n(f) machine-readable: Cluster::StatusReport() / JSON via\n"
              "audit::RenderStatusJson(); REPLIDB_STATUS=1 prints this\n"
              "console at the end of any bench.\n");
  std::printf("\n-- metrics registry (prometheus exposition) --\n%s",
              obs::MetricsRegistry::Global().DumpPrometheus().c_str());
}

void Run() {
  metrics::Banner("C13 / §4.4: management operations");
  BenchReport report("c13_management");
  OnlineBackup();
  AddReplicaOnline(&report);
  MetadataTrap();
  RollingUpgradeRun();
  ConnectionPoolFailback();
  StatusConsole();
  std::printf(
      "\nBackups degrade their donor; bringing a replica online is a\n"
      "clone + recovery-log replay with no service interruption (the\n"
      "Sequoia design, §4.4.2); and a typical data-only dump produces a\n"
      "clone that no application user can log into (§4.1.5).\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpMetricsIfEnabled();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
