// C12 — §4.3.4.3: network partitions and the CAP choice.
//
// (a) Quorum enforcement: with require_majority, the minority side refuses
//     writes (consistency preserved, availability sacrificed); the paper
//     notes that when "the remaining quorum does not constitute a
//     majority, the system must shut down and make the customer unhappy".
// (b) Split brain: two controllers, each surviving on one side of a
//     partition without quorum checks, both keep accepting writes — after
//     healing, the replicas hold divergent data that only manual
//     reconciliation can fix.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

using middleware::Controller;
using middleware::ControllerOptions;
using middleware::ReplicaNode;
using middleware::ReplicationMode;
using middleware::TxnRequest;
using middleware::TxnResult;

void QuorumBehaviour(BenchReport* report) {
  TablePrinter table({"enforce_majority", "side", "writes_ok", "writes_refused",
                      "diverged_after_heal"});
  for (bool majority : {true, false}) {
    workload::MicroWorkload::Options wo;
    wo.rows = 100;
    wo.write_fraction = 1.0;
    workload::MicroWorkload w(wo);
    ClusterOptions opts = BenchDefaults();
    opts.replicas = 3;
    opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
    opts.controller.require_majority_for_writes = majority;
    opts.controller.heartbeat.period = 200 * sim::kMillisecond;
    opts.controller.heartbeat.timeout = 200 * sim::kMillisecond;
    opts.controller.heartbeat.miss_threshold = 2;
    opts.driver.max_retries = 0;
    opts.driver.request_timeout = sim::kSecond;
    auto c = MakeCluster(std::move(opts), &w);

    // Partition: controller + master on one side; both slaves on the other.
    c->network->Partition({{100, 200, 1}, {2, 3}});
    c->sim.RunFor(2 * sim::kSecond);  // Let the detector notice.

    int ok = 0, refused = 0;
    Rng rng(31);
    for (int i = 0; i < 50; ++i) {
      TxnRequest req = w.Next(&rng);
      req.read_only = false;
      bool done = false;
      TxnResult result;
      c->driver()->Submit(std::move(req), [&](const TxnResult& r) {
        result = r;
        done = true;
      });
      while (!done) c->sim.RunFor(100 * sim::kMillisecond);
      if (result.status.ok()) {
        ++ok;
      } else {
        ++refused;
      }
    }
    c->network->HealPartition();
    c->sim.RunFor(10 * sim::kSecond);
    if (majority) {
      // Quorum-enforcing configuration is the headline: every minority
      // write must be refused and the cluster must re-converge.
      report->Set("quorum_writes_ok", ok);
      report->Set("quorum_writes_refused", refused);
      report->Set("diverged_after_heal", c->Converged() ? 0.0 : 1.0);
      report->CaptureCluster(*c, /*committed_txns=*/0);
    }
    table.AddRow({majority ? "yes (favor C over A)" : "no (favor A over C)",
                  "controller+master minority", TablePrinter::Int(ok),
                  TablePrinter::Int(refused),
                  c->Converged() ? "no" : "yes"});
  }
  table.Print("(a) writes on the minority side of a partition");
}

void SplitBrain() {
  // Two controllers over the same two replicas, as deployed by an operator
  // who wanted "no single point of failure" without a quorum protocol.
  workload::MicroWorkload::Options wo;
  wo.rows = 100;
  wo.write_fraction = 1.0;
  workload::MicroWorkload w(wo);
  sim::Simulator sim;
  net::Network network(&sim, net::NetworkOptions{});
  ClusterOptions defaults = BenchDefaults();
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::vector<ReplicaNode*> ptrs;
  for (int i = 0; i < 2; ++i) {
    engine::RdbmsOptions eopts = defaults.engine;
    eopts.name = "r" + std::to_string(i + 1);
    eopts.physical_seed = static_cast<uint64_t>(i + 1);
    auto node = std::make_unique<ReplicaNode>(&sim, &network, i + 1, eopts,
                                              defaults.replica);
    for (const std::string& stmt : w.SetupStatements()) node->AdminExec(stmt);
    ptrs.push_back(node.get());
    replicas.push_back(std::move(node));
  }
  ControllerOptions copts = defaults.controller;
  copts.mode = ReplicationMode::kMasterSlaveAsync;
  copts.heartbeat.period = 200 * sim::kMillisecond;
  copts.heartbeat.timeout = 200 * sim::kMillisecond;
  copts.heartbeat.miss_threshold = 2;
  Controller a(&sim, &network, 100, ptrs, copts);
  Controller b(&sim, &network, 101, ptrs, copts);
  a.Start();
  b.Start();
  client::Driver da(&sim, &network, 200, {100});
  client::Driver db(&sim, &network, 201, {101});
  sim.RunFor(2 * sim::kSecond);

  // The split: {controller A, replica 1, its clients} vs {B, replica 2,...}.
  network.Partition({{100, 200, 1}, {101, 201, 2}});
  sim.RunFor(3 * sim::kSecond);  // Both sides fail over to "their" replica.

  int ok_a = 0, ok_b = 0;
  Rng rng(17);
  auto write_side = [&](client::Driver* d, int* ok) {
    TxnRequest req = w.Next(&rng);
    req.read_only = false;
    d->Submit(std::move(req), [ok](const TxnResult& r) {
      if (r.status.ok()) ++*ok;
    });
  };
  for (int i = 0; i < 40; ++i) {
    write_side(&da, &ok_a);
    write_side(&db, &ok_b);
    sim.RunFor(100 * sim::kMillisecond);
  }
  sim.RunFor(2 * sim::kSecond);
  network.HealPartition();
  sim.RunFor(10 * sim::kSecond);

  bool diverged = ptrs[0]->engine()->ContentHash() !=
                  ptrs[1]->engine()->ContentHash();
  TablePrinter table({"metric", "value"});
  table.AddRow({"side A committed writes", TablePrinter::Int(ok_a)});
  table.AddRow({"side B committed writes", TablePrinter::Int(ok_b)});
  table.AddRow({"replicas diverged after heal", diverged ? "YES" : "no"});
  table.Print("(b) split brain: both sides promoted their own master");
  std::printf(
      "\nBoth sides accepted updates during the partition; after healing,\n"
      "the copies disagree and \"the process remains largely manual;\n"
      "reconciliation policies are typically ad-hoc\" (§4.3.4.3).\n");
}

void Run() {
  metrics::Banner("C12 / §4.3.4.3: partitions, quorums, split brain");
  BenchReport report("c12_partitions");
  QuorumBehaviour(&report);
  SplitBrain();
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
