// F1 — Figure 1 (§2.1): master-slave scale-out.
//
// Read-mostly workload (ticket broker, 95 % reads) against 1..8 replicas
// under asynchronous master-slave replication. The paper's claim: "as long
// as the master node can handle all updates, the system can scale linearly
// by merely adding more slave nodes."

#include <cstdio>

#include "bench/bench_util.h"

namespace replidb::bench {
namespace {

void Run() {
  metrics::Banner(
      "F1 / Figure 1: master-slave read scale-out (95% read ticket broker)");
  BenchReport report("f1_scaleout");
  TablePrinter table({"replicas", "tps", "read_tps", "mean_ms", "p99_ms",
                      "speedup", "efficiency_pct"});
  double base_tps = 0;
  for (int replicas : {1, 2, 3, 4, 6, 8}) {
    workload::TicketBrokerWorkload::Options wo;
    wo.items = 500;
    workload::TicketBrokerWorkload w(wo);
    ClusterOptions opts = BenchDefaults();
    opts.replicas = replicas;
    opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
    opts.controller.consistency = middleware::ConsistencyLevel::kEventual;
    auto c = MakeCluster(std::move(opts), &w);
    RunStats stats = RunClosedLoop(c.get(), &w, /*clients=*/192,
                                   (BenchShortMode() ? 3 : 10) * sim::kSecond);
    double tps = stats.ThroughputTps();
    if (base_tps == 0) base_tps = tps;
    if (replicas == 4) {
      // The mid-curve scale-out point is the headline configuration.
      report.FromStats(stats);
      report.CaptureCluster(*c, stats.committed);
      report.Set("speedup_vs_1", tps / base_tps);
    }
    double read_tps =
        static_cast<double>(stats.read_latency_ms.count()) /
        sim::ToSeconds(stats.elapsed);
    table.AddRow({TablePrinter::Int(replicas), TablePrinter::Num(tps, 0),
                  TablePrinter::Num(read_tps, 0),
                  TablePrinter::Num(stats.latency_ms.Mean(), 2),
                  TablePrinter::Num(stats.latency_ms.Percentile(99), 2),
                  TablePrinter::Num(tps / base_tps, 2),
                  TablePrinter::Num(100.0 * tps / base_tps / replicas, 0)});
  }
  table.Print("throughput vs replica count (closed loop, 192 clients)");
  std::printf(
      "\nExpected shape: linear read scaling UNTIL the single master\n"
      "saturates on the 5%% write stream (~1000 write txns/s on its 4\n"
      "workers) — beyond that point extra slaves stop helping, exactly\n"
      "Figure 1's caveat: \"as long as the master node can handle all\n"
      "updates\".\n");
  report.Write();
}

}  // namespace
}  // namespace replidb::bench

int main() {
  replidb::bench::Run();
  replidb::bench::DumpFlightIfEnabled();
  return 0;
}
