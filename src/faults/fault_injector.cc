#include "faults/fault_injector.h"

namespace replidb::faults {

FaultInjector::FaultInjector(sim::Simulator* sim, Options options)
    : sim_(sim), options_(options), rng_(options.seed) {}

void FaultInjector::ScheduleCrashLoop(
    std::vector<middleware::ReplicaNode*> replicas, sim::TimePoint horizon) {
  for (middleware::ReplicaNode* r : replicas) ArmNext(r, horizon);
}

void FaultInjector::ArmNext(middleware::ReplicaNode* replica,
                            sim::TimePoint horizon) {
  sim::Duration to_failure = static_cast<sim::Duration>(
      rng_.Exponential(static_cast<double>(options_.node_mttf)));
  sim::TimePoint fail_at = sim_->Now() + to_failure;
  if (fail_at >= horizon) return;
  sim_->ScheduleAt(fail_at, [this, replica, horizon] {
    if (replica->crashed()) {
      ArmNext(replica, horizon);
      return;
    }
    ++crashes_;
    replica->Crash();
    sim::Duration repair = static_cast<sim::Duration>(
        rng_.Exponential(static_cast<double>(options_.node_mttr)));
    if (repair < sim::kSecond) repair = sim::kSecond;
    sim_->Schedule(repair, [this, replica, horizon] {
      replica->Restart();
      ArmNext(replica, horizon);
    });
  });
}

void FaultInjector::CrashAt(middleware::ReplicaNode* replica,
                            sim::TimePoint when, sim::Duration repair) {
  sim_->ScheduleAt(when, [this, replica, repair] {
    ++crashes_;
    replica->Crash();
    if (repair >= 0) {
      sim_->Schedule(repair, [replica] { replica->Restart(); });
    }
  });
}

void FaultInjector::DiskFullAt(middleware::ReplicaNode* replica,
                               sim::TimePoint when, sim::Duration duration) {
  sim_->ScheduleAt(when, [this, replica, duration] {
    replica->engine()->set_disk_full(true);
    sim_->Schedule(duration,
                   [replica] { replica->engine()->set_disk_full(false); });
  });
}

void FaultInjector::PartitionAt(net::Network* network,
                                std::vector<std::vector<net::NodeId>> groups,
                                sim::TimePoint when, sim::Duration duration) {
  sim_->ScheduleAt(when, [this, network, groups, duration] {
    network->Partition(groups);
    sim_->Schedule(duration, [network] { network->HealPartition(); });
  });
}

}  // namespace replidb::faults
