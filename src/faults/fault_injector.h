#ifndef REPLIDB_FAULTS_FAULT_INJECTOR_H_
#define REPLIDB_FAULTS_FAULT_INJECTOR_H_

#include <vector>

#include "common/rng.h"
#include "middleware/replica_node.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::faults {

/// \brief Schedules faults against a cluster, calibrated to the paper's
/// field observation: "on average, one fatal failure (software or
/// hardware) occurs per day per 200 processors" (§2.2).
class FaultInjector {
 public:
  struct Options {
    /// Mean time to failure per node. The paper's rate, scaled to a node
    /// of `cpus_per_node` CPUs: MTTF = 200 days / cpus. Defaults model
    /// 8-CPU nodes => one fatal failure per node every 25 days.
    sim::Duration node_mttf = 25 * sim::kDay;
    /// Mean repair time once a node fails (restart + operator response).
    sim::Duration node_mttr = 10 * sim::kMinute;
    uint64_t seed = 99;
  };

  explicit FaultInjector(sim::Simulator* sim) : FaultInjector(sim, Options{}) {}
  FaultInjector(sim::Simulator* sim, Options options);

  /// Starts a crash/repair process on each replica until `horizon`. Each
  /// node independently fails with exponential inter-failure times and is
  /// restarted after an exponential repair time.
  void ScheduleCrashLoop(std::vector<middleware::ReplicaNode*> replicas,
                         sim::TimePoint horizon);

  /// One-shot crash of a replica at time `when`, repaired after `repair`
  /// (no repair if repair < 0).
  void CrashAt(middleware::ReplicaNode* replica, sim::TimePoint when,
               sim::Duration repair = -1);

  /// Marks a replica's disk full at `when`, cleared after `duration`.
  void DiskFullAt(middleware::ReplicaNode* replica, sim::TimePoint when,
                  sim::Duration duration);

  /// Partitions the network into the given groups at `when`, healed after
  /// `duration`.
  void PartitionAt(net::Network* network,
                   std::vector<std::vector<net::NodeId>> groups,
                   sim::TimePoint when, sim::Duration duration);

  int crashes_injected() const { return crashes_; }

 private:
  void ArmNext(middleware::ReplicaNode* replica, sim::TimePoint horizon);

  sim::Simulator* sim_;
  Options options_;
  Rng rng_;
  int crashes_ = 0;
};

}  // namespace replidb::faults

#endif  // REPLIDB_FAULTS_FAULT_INJECTOR_H_
