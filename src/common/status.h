#ifndef REPLIDB_COMMON_STATUS_H_
#define REPLIDB_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace replidb {

/// \brief Error/result code carried by Status and Result<T>.
///
/// Codes mirror the failure classes the paper discusses: SQL errors,
/// transactional aborts (certification conflicts, deadlocks), availability
/// failures (node down, timeout, no quorum) and management errors.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed request or SQL.
  kNotFound,          ///< Missing table/database/row/replica.
  kAlreadyExists,     ///< Duplicate name or key.
  kConstraintViolation,  ///< Integrity constraint (unique/PK) violated.
  kAborted,           ///< Transaction aborted (certification, error policy).
  kDeadlock,          ///< Lock-manager deadlock victim.
  kConflict,          ///< Write-write conflict under snapshot isolation.
  kUnavailable,       ///< Replica/middleware down or failed over mid-call.
  kTimeout,           ///< Network or detection timeout expired.
  kNoQuorum,          ///< Partition left this side without a majority.
  kDiskFull,          ///< Injected resource-exhaustion failure.
  kNotSupported,      ///< Feature missing in this engine dialect.
  kInternal,          ///< Invariant violation inside the stack.
};

/// \brief Human-readable name of a status code (e.g. "Aborted").
const char* StatusCodeName(StatusCode code);

/// \brief RocksDB-style status object returned by fallible operations.
///
/// The library does not throw on hot paths; every operation that can fail
/// returns a Status (or a Result<T>, which wraps one).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status NoQuorum(std::string msg) {
    return Status(StatusCode::kNoQuorum, std::move(msg));
  }
  static Status DiskFull(std::string msg) {
    return Status(StatusCode::kDiskFull, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True if the failure is a transaction-level abort that the client may
  /// retry (certification conflict, deadlock, explicit abort).
  bool IsRetryableAbort() const {
    return code_ == StatusCode::kAborted || code_ == StatusCode::kDeadlock ||
           code_ == StatusCode::kConflict;
  }

  /// Formats as "CodeName: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace replidb

#endif  // REPLIDB_COMMON_STATUS_H_
