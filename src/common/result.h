#ifndef REPLIDB_COMMON_RESULT_H_
#define REPLIDB_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace replidb {

/// \brief Value-or-Status result, the return type of fallible producers.
///
/// Usage:
/// \code
///   Result<Row> r = table.Get(key);
///   if (!r.ok()) return r.status();
///   Use(r.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from a non-OK status: allows `return Status::NotFound(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires a non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }

  /// Moves the held value out; the Result must be OK.
  T TakeValue() {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the value or a fallback when the result is an error.
  T ValueOr(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression, RocksDB-macro style.
#define REPLIDB_RETURN_NOT_OK(expr)                \
  do {                                             \
    ::replidb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                     \
  } while (false)

}  // namespace replidb

#endif  // REPLIDB_COMMON_RESULT_H_
