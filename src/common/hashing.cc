#include "common/hashing.h"

#include <cstdlib>

namespace replidb {
namespace {

std::atomic<uint64_t>& SeedCell() {
  static std::atomic<uint64_t> seed{[] {
    const char* env = std::getenv("REPLIDB_HASH_SEED");
    return env ? static_cast<uint64_t>(std::strtoull(env, nullptr, 0))
               : uint64_t{0};
  }()};
  return seed;
}

}  // namespace

uint64_t HashSeed() { return SeedCell().load(std::memory_order_relaxed); }

void SetHashSeed(uint64_t seed) {
  SeedCell().store(seed, std::memory_order_relaxed);
}

}  // namespace replidb
