#ifndef REPLIDB_COMMON_RNG_H_
#define REPLIDB_COMMON_RNG_H_

#include <cstdint>
#include <cmath>

namespace replidb {

/// \brief Deterministic splitmix64/xorshift RNG used everywhere randomness
/// is needed, so that every experiment is reproducible from its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Bernoulli trial with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of Poisson processes: request arrivals, failures).
  double Exponential(double mean) {
    double u = NextDouble();
    if (u <= 0.0) u = 1e-12;
    return -mean * std::log(u);
  }

  /// Zipf-like skewed pick in [0, n): rank r chosen with weight 1/(r+1)^theta.
  /// Uses a cheap inverse-power approximation adequate for workload skew.
  uint64_t Zipf(uint64_t n, double theta) {
    if (n <= 1) return 0;
    double u = NextDouble();
    double r = std::pow(u, 1.0 / (1.0 - theta));  // theta in (0,1)
    uint64_t idx = static_cast<uint64_t>(r * static_cast<double>(n));
    return idx >= n ? n - 1 : idx;
  }

  /// Forks a new independent generator (for per-component streams).
  Rng Fork() { return Rng(Next()); }

 private:
  uint64_t state_;
};

}  // namespace replidb

#endif  // REPLIDB_COMMON_RNG_H_
