#include "common/status.h"

namespace replidb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kConflict:
      return "Conflict";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kNoQuorum:
      return "NoQuorum";
    case StatusCode::kDiskFull:
      return "DiskFull";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace replidb
