#ifndef REPLIDB_COMMON_LOCKS_H_
#define REPLIDB_COMMON_LOCKS_H_

#include <mutex>

namespace replidb::common {

/// \brief Declared lock-order table and the ordered mutex that enforces it.
///
/// The paper's middleware-state hazards (§3.2) extend to our own process:
/// once real parallelism lands, an undeclared lock ordering is a latent
/// deadlock and an unsynchronized one is silent divergence. Every mutex in
/// the tree is therefore an `OrderedMutex` carrying a rank from the table
/// below, and a thread may only acquire a mutex whose rank is *strictly
/// greater* than every mutex it already holds. replicheck statically
/// verifies (a) no raw `std::mutex` is declared outside this file, and
/// (b) every `OrderedMutex` construction names a rank declared here; the
/// runtime recorder turns an out-of-order acquisition into an abort.
///
/// To add a lock: pick the widest-scope point it can be held across, give
/// it a rank between its outer-most and inner-most neighbours (gaps of 10
/// leave room), document the guarded state, and construct the mutex with
/// the new rank.
enum class LockRank : int {
  /// common/logging.cc — process log-clock registration. Leaf: log lines
  /// may be emitted while any other lock is held.
  kLogClock = 10,
  /// obs/metrics.cc — MetricsRegistry name -> entry map. May be taken
  /// while no other replidb lock is held (registration is cold-path).
  kMetricsRegistry = 20,
  /// obs/metrics.h — per-HistogramMetric sample buffer. Inner to the
  /// registry lock (Snapshot() walks entries while holding it).
  kMetricHistogram = 30,
  /// obs/trace.cc — Tracer span/event buffer. Leaf.
  kTracer = 40,
  /// obs/timeseries.cc — TimeSeriesHub series/probe maps. Held while
  /// probes run, so probes must not take any replidb lock.
  kTimeSeriesHub = 50,
  /// obs/timeseries.h — per-Series sample ring. Inner to the hub lock
  /// (SampleProbes appends while holding it).
  kTimeSeriesData = 60,
  /// obs/recorder.cc — FlightRecorder event ring. Taken from control-path
  /// call sites that hold no other replidb lock.
  kFlightRecorder = 70,
  /// obs/slo.cc — SloTracker window state. Leaf.
  kSlo = 80,
};

const char* LockRankName(LockRank rank);

/// Runtime lock-order checking. On by default in debug builds (!NDEBUG)
/// or when REPLIDB_LOCK_CHECK is set in the environment; tests can force
/// it regardless of build type. Checking costs a thread-local vector
/// push/pop per acquisition.
bool LockCheckEnabled();
void SetLockCheckEnabled(bool enabled);

/// A mutex with a declared position in the global lock order. Satisfies
/// BasicLockable, so `std::lock_guard<common::OrderedMutex>` works.
class OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  /// Aborts (after printing both ranks) if this thread already holds a
  /// mutex of equal or greater rank and checking is enabled.
  void lock();
  void unlock();

  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  LockRank rank_;
};

/// Ranks currently held by the calling thread (test introspection).
int HeldLockCount();

}  // namespace replidb::common

#endif  // REPLIDB_COMMON_LOCKS_H_
