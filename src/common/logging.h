#ifndef REPLIDB_COMMON_LOGGING_H_
#define REPLIDB_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace replidb {

/// \brief Minimal leveled logger. Experiments run quiet by default; tests
/// and examples can raise verbosity with SetLogLevel.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a line to stderr if `level` is at or above the global threshold.
void LogLine(LogLevel level, const std::string& msg);

namespace log_internal {
struct Emitter {
  explicit Emitter(LogLevel level) : level(level) {}
  ~Emitter() { LogLine(level, stream.str()); }
  LogLevel level;
  std::ostringstream stream;
};
}  // namespace log_internal

#define REPLIDB_LOG(level_suffix)                                        \
  if (::replidb::GetLogLevel() > ::replidb::LogLevel::k##level_suffix) { \
  } else                                                                 \
    ::replidb::log_internal::Emitter(::replidb::LogLevel::k##level_suffix).stream

/// Fatal invariant check: always on, aborts with a message.
#define REPLIDB_CHECK(cond, msg)                                          \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,  \
                   __LINE__, #cond, msg);                                 \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

}  // namespace replidb

#endif  // REPLIDB_COMMON_LOGGING_H_
