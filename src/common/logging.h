#ifndef REPLIDB_COMMON_LOGGING_H_
#define REPLIDB_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <string>

namespace replidb {

/// \brief Minimal leveled logger. Experiments run quiet by default; tests
/// and examples can raise verbosity with SetLogLevel.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a line to stderr if `level` is at or above the global threshold.
/// The whole line is formatted first and written with a single fwrite, so
/// concurrent callers never interleave mid-line. When a simulator clock is
/// registered (see SetLogClock), the line is prefixed with virtual time so
/// log output correlates with trace spans.
void LogLine(LogLevel level, const std::string& msg);

/// Registers a virtual-time source (microseconds) used to prefix log
/// lines. `owner` identifies the registrant: a later ClearLogClock from a
/// different owner is a no-op, so nested/sequential simulators behave
/// (the live simulator registers itself on construction).
void SetLogClock(const void* owner, std::function<int64_t()> now_us);
void ClearLogClock(const void* owner);

namespace log_internal {
struct Emitter {
  explicit Emitter(LogLevel level) : level(level) {}
  ~Emitter() { LogLine(level, stream.str()); }
  LogLevel level;
  std::ostringstream stream;
};
}  // namespace log_internal

#define REPLIDB_LOG(level_suffix)                                        \
  if (::replidb::GetLogLevel() > ::replidb::LogLevel::k##level_suffix) { \
  } else                                                                 \
    ::replidb::log_internal::Emitter(::replidb::LogLevel::k##level_suffix).stream

/// Hook invoked after a REPLIDB_CHECK failure message is printed, before
/// the process aborts. The flight recorder (obs/recorder.h) installs one
/// so the last N structured events land next to the assertion message —
/// post-mortem context for nondeterministic-looking failures. At most one
/// hook; nullptr clears it.
using CheckFailureHook = void (*)();
void SetCheckFailureHook(CheckFailureHook hook);

/// Out-of-line failure path for REPLIDB_CHECK: prints the message, runs
/// the registered CheckFailureHook, then aborts.
[[noreturn]] void CheckFailed(const char* file, int line, const char* cond,
                              const char* msg);

/// Fatal invariant check: always on, aborts with a message (plus whatever
/// the registered CheckFailureHook dumps — see SetCheckFailureHook).
#define REPLIDB_CHECK(cond, msg)                                 \
  do {                                                           \
    if (!(cond)) {                                               \
      ::replidb::CheckFailed(__FILE__, __LINE__, #cond, (msg));  \
    }                                                            \
  } while (false)

}  // namespace replidb

#endif  // REPLIDB_COMMON_LOGGING_H_
