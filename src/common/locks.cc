#include "common/locks.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace replidb::common {
namespace {

std::atomic<bool>& CheckCell() {
  static std::atomic<bool> enabled{[] {
#ifndef NDEBUG
    return true;
#else
    return std::getenv("REPLIDB_LOCK_CHECK") != nullptr;
#endif
  }()};
  return enabled;
}

/// Ranks held by this thread, outermost first.
thread_local std::vector<LockRank> t_held;

}  // namespace

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kLogClock: return "LogClock";
    case LockRank::kMetricsRegistry: return "MetricsRegistry";
    case LockRank::kMetricHistogram: return "MetricHistogram";
    case LockRank::kTracer: return "Tracer";
    case LockRank::kTimeSeriesHub: return "TimeSeriesHub";
    case LockRank::kTimeSeriesData: return "TimeSeriesData";
    case LockRank::kFlightRecorder: return "FlightRecorder";
    case LockRank::kSlo: return "Slo";
  }
  return "?";
}

bool LockCheckEnabled() {
  return CheckCell().load(std::memory_order_relaxed);
}

void SetLockCheckEnabled(bool enabled) {
  CheckCell().store(enabled, std::memory_order_relaxed);
}

void OrderedMutex::lock() {
  if (LockCheckEnabled()) {
    for (LockRank held : t_held) {
      if (static_cast<int>(held) >= static_cast<int>(rank_)) {
        std::fprintf(
            stderr,
            "replidb lock-order violation: acquiring %s(%d) while holding "
            "%s(%d); see the LockRank table in src/common/locks.h\n",
            LockRankName(rank_), static_cast<int>(rank_), LockRankName(held),
            static_cast<int>(held));
        std::abort();
      }
    }
  }
  mu_.lock();
  if (LockCheckEnabled()) t_held.push_back(rank_);
}

void OrderedMutex::unlock() {
  // Erase the most recent record of this rank. Tolerates lock() having
  // run with checking disabled (no record) and non-LIFO unlock orders.
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (*it == rank_) {
      t_held.erase(std::next(it).base());
      break;
    }
  }
  mu_.unlock();
}

int HeldLockCount() { return static_cast<int>(t_held.size()); }

}  // namespace replidb::common
