#ifndef REPLIDB_COMMON_HASHING_H_
#define REPLIDB_COMMON_HASHING_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace replidb {

/// \brief Seed-perturbed hashing for every unordered container in the tree.
///
/// Silent replica divergence (Cecchet et al., §4) hides wherever hash-table
/// iteration order leaks into replication-visible state: the order is
/// deterministic per build, so all 418 tests can stay green while replicas
/// would drift the day the hash function changes. Routing every
/// unordered container through `SeededHash` makes that order a function of
/// `REPLIDB_HASH_SEED`: the sim-determinism harness runs each scenario
/// under two seeds and fails loudly if any iteration order reached a
/// commit sequence or table digest. Lookup-only containers are unaffected.

/// Process-wide hash perturbation seed. Initialised once from the
/// REPLIDB_HASH_SEED environment variable (0 when unset).
uint64_t HashSeed();

/// Overrides the seed (determinism harness). Containers constructed after
/// the call use the new seed; existing containers keep the seed they
/// captured at construction, so they stay internally consistent.
void SetHashSeed(uint64_t seed);

/// splitmix64 finalizer: full-avalanche mix of a 64-bit value.
inline uint64_t MixHash(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Hasher that folds the process seed into std::hash. The seed is captured
/// at construction (i.e. at container construction), so a container's
/// bucket assignment never changes under it mid-lifetime.
template <typename K>
struct SeededHash {
  SeededHash() : seed(HashSeed()) {}
  size_t operator()(const K& k) const {
    return static_cast<size_t>(
        MixHash(static_cast<uint64_t>(std::hash<K>{}(k)) ^
                (seed * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL)));
  }
  uint64_t seed;
};

/// Drop-in aliases. Use these instead of raw std::unordered_map/set
/// everywhere in src/ (replicheck's `unordered-iter` rule treats both
/// spellings as unordered; the seeded variants are what make the
/// determinism harness able to shake order-dependence out).
template <typename K, typename V>
using HashMap = std::unordered_map<K, V, SeededHash<K>>;

template <typename K>
using HashSet = std::unordered_set<K, SeededHash<K>>;

}  // namespace replidb

#endif  // REPLIDB_COMMON_HASHING_H_
