#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace replidb {

void Histogram::Sort() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Min() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.front();
}

double Histogram::Max() const {
  if (samples_.empty()) return 0.0;
  Sort();
  return samples_.back();
}

double Histogram::Percentile(double p) const {
  // Every input maps to a defined value: the empty histogram answers 0,
  // out-of-range and NaN ranks clamp to the extremes, and the computed
  // indices are clamped so no p can read past the sample array.
  if (samples_.empty()) return 0.0;
  Sort();
  if (std::isnan(p) || p <= 0.0) return samples_.front();
  if (p >= 100.0) return samples_.back();
  double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  lo = std::min(lo, samples_.size() - 1);
  hi = std::min(hi, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string Histogram::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%zu mean=%.3f p50=%.3f p95=%.3f p99=%.3f max=%.3f",
                count(), Mean(), Percentile(50), Percentile(95),
                Percentile(99), Max());
  return buf;
}

}  // namespace replidb
