#include "common/logging.h"

#include <atomic>
#include <mutex>

#include "common/locks.h"

namespace replidb {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Virtual-clock registration. Guarded by a mutex: registration happens at
// simulator construction, reads happen per emitted log line.
common::OrderedMutex g_clock_mu{common::LockRank::kLogClock};
const void* g_clock_owner = nullptr;
std::function<int64_t()> g_clock;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

void SetLogClock(const void* owner, std::function<int64_t()> now_us) {
  std::lock_guard<common::OrderedMutex> lock(g_clock_mu);
  g_clock_owner = owner;
  g_clock = std::move(now_us);
}

void ClearLogClock(const void* owner) {
  std::lock_guard<common::OrderedMutex> lock(g_clock_mu);
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock = nullptr;
}

namespace {
std::atomic<CheckFailureHook> g_check_hook{nullptr};
}  // namespace

void SetCheckFailureHook(CheckFailureHook hook) {
  g_check_hook.store(hook, std::memory_order_relaxed);
}

void CheckFailed(const char* file, int line, const char* cond,
                 const char* msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", file, line, cond,
               msg);
  if (CheckFailureHook hook = g_check_hook.load(std::memory_order_relaxed)) {
    hook();
  }
  std::abort();
}

void LogLine(LogLevel level, const std::string& msg) {
  if (level < GetLogLevel()) return;
  // Format the entire line up front and emit it with one fwrite: partial
  // lines from concurrent callers can then never interleave.
  std::string line;
  line.reserve(msg.size() + 32);
  line += '[';
  line += LevelName(level);
  line += ']';
  {
    std::lock_guard<common::OrderedMutex> lock(g_clock_mu);
    if (g_clock) {
      char ts[32];
      std::snprintf(ts, sizeof(ts), "[t=%.3fs]",
                    static_cast<double>(g_clock()) / 1e6);
      line += ts;
    }
  }
  line += ' ';
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace replidb
