#ifndef REPLIDB_COMMON_HISTOGRAM_H_
#define REPLIDB_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace replidb {

/// \brief Latency/size histogram with percentile queries.
///
/// Stores raw samples (experiments here are small enough) so percentiles are
/// exact; used by the metrics layer for latency reporting in all benches.
class Histogram {
 public:
  Histogram() = default;

  void Add(double v) {
    samples_.push_back(v);
    sum_ += v;
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double Mean() const { return samples_.empty() ? 0.0 : sum_ / samples_.size(); }
  double Min() const;
  double Max() const;

  /// Exact percentile in [0, 100]; 0 if empty.
  double Percentile(double p) const;

  double Median() const { return Percentile(50.0); }
  double P95() const { return Percentile(95.0); }
  double P99() const { return Percentile(99.0); }

  /// Appends all samples from `other`.
  void Merge(const Histogram& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sum_ += other.sum_;
    sorted_ = false;
  }

  void Clear() {
    samples_.clear();
    sum_ = 0.0;
    sorted_ = false;
  }

  /// One-line summary: "n=... mean=... p50=... p95=... p99=... max=...".
  std::string Summary() const;

 private:
  void Sort() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  double sum_ = 0.0;
};

}  // namespace replidb

#endif  // REPLIDB_COMMON_HISTOGRAM_H_
