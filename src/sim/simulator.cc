#include "sim/simulator.h"

#include <utility>

#include "common/logging.h"

namespace replidb::sim {

Simulator::Simulator() {
  // Most recently constructed simulator wins the log clock; benches that
  // stand up clusters sequentially always stamp with the live one.
  SetLogClock(this, [this] { return now_; });
}

Simulator::~Simulator() { ClearLogClock(this); }

EventId Simulator::Schedule(Duration delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return ScheduleAt(now_ + delay, std::move(fn));
}

EventId Simulator::ScheduleAt(TimePoint when, std::function<void()> fn) {
  if (when < now_) when = now_;
  EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::Cancel(EventId id) {
  if (id != 0) cancelled_.insert(id);
}

bool Simulator::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    now_ = ev.when;
    ++events_executed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulator::Run() {
  stop_requested_ = false;
  while (!stop_requested_ && Step()) {
  }
}

void Simulator::RunUntil(TimePoint deadline) {
  stop_requested_ = false;
  while (!stop_requested_) {
    // Peek: skip cancelled heads without executing.
    bool executed = false;
    while (!queue_.empty()) {
      const Event& head = queue_.top();
      if (cancelled_.count(head.id)) {
        cancelled_.erase(head.id);
        queue_.pop();
        continue;
      }
      if (head.when > deadline) break;
      Event ev = queue_.top();
      queue_.pop();
      now_ = ev.when;
      ++events_executed_;
      ev.fn();
      executed = true;
      break;
    }
    if (!executed) break;
  }
  if (now_ < deadline) now_ = deadline;
}

void PeriodicTask::Start() { StartAfter(period_); }

void PeriodicTask::StartAfter(Duration initial_delay) {
  if (running_) return;
  running_ = true;
  pending_ = sim_->Schedule(initial_delay, [this] { Fire(); });
}

void PeriodicTask::Stop() {
  if (!running_) return;
  running_ = false;
  sim_->Cancel(pending_);
  pending_ = 0;
}

void PeriodicTask::Fire() {
  if (!running_) return;
  pending_ = sim_->Schedule(period_, [this] { Fire(); });
  fn_();
}

}  // namespace replidb::sim
