#ifndef REPLIDB_SIM_SIMULATOR_H_
#define REPLIDB_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/hashing.h"

namespace replidb::sim {

/// Simulated time in microseconds since experiment start.
using TimePoint = int64_t;
/// Simulated duration in microseconds.
using Duration = int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * 1000;
constexpr Duration kMinute = 60 * kSecond;
constexpr Duration kHour = 60 * kMinute;
constexpr Duration kDay = 24 * kHour;

/// Converts simulated time to seconds as a double (for reporting).
inline double ToSeconds(Duration d) { return static_cast<double>(d) / kSecond; }
/// Converts simulated time to milliseconds as a double (for reporting).
inline double ToMillis(Duration d) { return static_cast<double>(d) / kMillisecond; }

/// Handle for cancelling a scheduled event. 0 is never a valid id.
using EventId = uint64_t;

/// \brief Deterministic discrete-event simulator.
///
/// All components of the testbed (network, engines, middleware, workload
/// generators, fault injectors) run on a single Simulator: they schedule
/// callbacks at future virtual times and the simulator executes them in
/// (time, insertion-order) order. Experiments are thus fully deterministic —
/// the same seed always produces the same trace — and simulate hours of
/// cluster time in milliseconds of wall time.
class Simulator {
 public:
  /// Construction registers this simulator as the process log clock (log
  /// lines get a virtual-time prefix); destruction unregisters it.
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  TimePoint Now() const { return now_; }

  /// Schedules `fn` to run `delay` after Now(). Negative delays clamp to 0.
  EventId Schedule(Duration delay, std::function<void()> fn);

  /// Schedules `fn` at absolute virtual time `when` (clamped to Now()).
  EventId ScheduleAt(TimePoint when, std::function<void()> fn);

  /// Cancels a pending event; no-op if already fired or cancelled.
  void Cancel(EventId id);

  /// Runs events until the queue is empty or `StopRequested`.
  void Run();

  /// Runs events with time <= `deadline`, then sets Now() to `deadline`
  /// (if the queue drained earlier). Pending later events remain queued.
  void RunUntil(TimePoint deadline);

  /// Convenience: RunUntil(Now() + d).
  void RunFor(Duration d) { RunUntil(now_ + d); }

  /// Executes the single next event. Returns false if the queue is empty.
  bool Step();

  /// Requests Run()/RunUntil() to return after the current event.
  void RequestStop() { stop_requested_ = true; }

  /// Number of events executed so far (for sanity checks in tests).
  uint64_t events_executed() const { return events_executed_; }

  /// Number of events currently pending.
  size_t pending_events() const { return queue_.size() - cancelled_.size(); }

 private:
  struct Event {
    TimePoint when;
    uint64_t seq;  // Tie-breaker: FIFO among same-time events.
    EventId id;
    std::function<void()> fn;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  TimePoint now_ = 0;
  uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  uint64_t events_executed_ = 0;
  bool stop_requested_ = false;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  HashSet<EventId> cancelled_;
};

/// \brief Repeating task helper (heartbeats, pollers, batch shippers).
///
/// Reschedules itself every `period` until Stop() is called or the owning
/// simulator drains. The callback may call Stop() on its own task.
class PeriodicTask {
 public:
  PeriodicTask(Simulator* sim, Duration period, std::function<void()> fn)
      : sim_(sim), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTask() { Stop(); }
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Schedules the first firing `period` from now (or `initial_delay`).
  void Start();
  void StartAfter(Duration initial_delay);

  /// Cancels any pending firing.
  void Stop();

  bool running() const { return running_; }

 private:
  void Fire();

  Simulator* sim_;
  Duration period_;
  std::function<void()> fn_;
  bool running_ = false;
  EventId pending_ = 0;
};

}  // namespace replidb::sim

#endif  // REPLIDB_SIM_SIMULATOR_H_
