#include "metrics/availability.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace replidb::metrics {

void AvailabilityTracker::MarkDown(sim::TimePoint t) {
  if (!up_) return;
  up_ = false;
  last_transition_ = t;
  ++outages_;
}

void AvailabilityTracker::MarkUp(sim::TimePoint t) {
  if (up_) return;
  up_ = true;
  sim::Duration down = t - last_transition_;
  total_down_ += down;
  completed_down_ += down;
  ++completed_outages_;
  last_transition_ = t;
}

sim::Duration AvailabilityTracker::Downtime(sim::TimePoint end) const {
  sim::Duration down = total_down_;
  if (!up_ && end > last_transition_) down += end - last_transition_;
  return down;
}

sim::Duration AvailabilityTracker::Uptime(sim::TimePoint end) const {
  return (end - period_start_) - Downtime(end);
}

double AvailabilityTracker::Availability(sim::TimePoint end) const {
  sim::Duration total = end - period_start_;
  if (total <= 0) return 1.0;
  return static_cast<double>(Uptime(end)) / static_cast<double>(total);
}

double AvailabilityTracker::Nines(sim::TimePoint end) const {
  double a = Availability(end);
  if (a >= 1.0) return 9.0;
  if (a <= 0.0) return 0.0;
  return std::min(9.0, -std::log10(1.0 - a));
}

double AvailabilityTracker::MttrMicros() const {
  if (completed_outages_ == 0) return 0.0;
  return static_cast<double>(completed_down_) / completed_outages_;
}

double AvailabilityTracker::MttfMicros(sim::TimePoint end) const {
  if (outages_ == 0) return static_cast<double>(end - period_start_);
  return static_cast<double>(Uptime(end)) / outages_;
}

std::string AvailabilityTracker::Summary(sim::TimePoint end) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "availability=%.6f (%.2f nines) outages=%d mttr=%.1fs "
                "mttf=%.1fs downtime=%.1fs",
                Availability(end), Nines(end), outages_,
                MttrMicros() / sim::kSecond,
                MttfMicros(end) / sim::kSecond,
                sim::ToSeconds(Downtime(end)));
  return buf;
}

}  // namespace replidb::metrics
