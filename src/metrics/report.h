#ifndef REPLIDB_METRICS_REPORT_H_
#define REPLIDB_METRICS_REPORT_H_

#include <string>
#include <vector>

namespace replidb::metrics {

/// \brief Fixed-width table printer used by every bench binary so that
/// experiment outputs all read alike (paper-style rows and series).
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double v, int precision = 1);
  static std::string Int(int64_t v);

  /// Prints "== title ==", the header, a rule, and all rows to stdout.
  void Print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a one-line section banner to stdout.
void Banner(const std::string& text);

}  // namespace replidb::metrics

#endif  // REPLIDB_METRICS_REPORT_H_
