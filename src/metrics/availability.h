#ifndef REPLIDB_METRICS_AVAILABILITY_H_
#define REPLIDB_METRICS_AVAILABILITY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace replidb::metrics {

/// \brief Tracks service up/down intervals and derives the availability
/// metrics the paper says evaluations should report (§3.4, §5.1):
/// MTTF, MTTR, availability = MTTF / (MTTF + MTTR), and "nines".
class AvailabilityTracker {
 public:
  /// The service starts up at t = start.
  explicit AvailabilityTracker(sim::TimePoint start = 0) : period_start_(start) {}

  /// Marks the service down at `t` (no-op if already down).
  void MarkDown(sim::TimePoint t);
  /// Marks the service back up at `t` (no-op if already up).
  void MarkUp(sim::TimePoint t);

  bool IsUp() const { return up_; }

  /// Total downtime accumulated in [start, end].
  sim::Duration Downtime(sim::TimePoint end) const;
  /// Uptime in [start, end].
  sim::Duration Uptime(sim::TimePoint end) const;
  /// Availability ratio in [0, 1].
  double Availability(sim::TimePoint end) const;
  /// Number of nines, e.g. 0.99999 -> 5.0 (capped at 9).
  double Nines(sim::TimePoint end) const;

  /// Number of distinct outages so far.
  int outages() const { return outages_; }
  /// Mean time to repair: mean length of completed outages (µs); 0 if none.
  double MttrMicros() const;
  /// Mean time to failure: mean up-interval before each outage (µs).
  double MttfMicros(sim::TimePoint end) const;

  /// One-line report.
  std::string Summary(sim::TimePoint end) const;

 private:
  sim::TimePoint period_start_;
  bool up_ = true;
  sim::TimePoint last_transition_ = 0;
  sim::Duration total_down_ = 0;
  sim::Duration completed_down_ = 0;
  int outages_ = 0;
  int completed_outages_ = 0;
};

}  // namespace replidb::metrics

#endif  // REPLIDB_METRICS_AVAILABILITY_H_
