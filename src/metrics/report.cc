#include "metrics/report.h"

#include <algorithm>
#include <cstdio>

namespace replidb::metrics {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Int(int64_t v) { return std::to_string(v); }

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", static_cast<int>(widths[i] + 2), cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string rule(total, '-');
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows_) print_row(row);
}

void Banner(const std::string& text) {
  std::printf("\n##### %s #####\n", text.c_str());
}

}  // namespace replidb::metrics
