#include "middleware/cluster.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "obs/recorder.h"

namespace replidb::middleware {

Cluster::Cluster(ClusterOptions opts) : options(std::move(opts)) {
  // Any REPLIDB_CHECK failure from here on dumps the flight recorder's
  // event tail next to the assertion message.
  obs::FlightRecorder::InstallCheckHook();
  network = std::make_unique<net::Network>(&sim, options.network);

  std::vector<ReplicaNode*> replica_ptrs;
  for (int i = 0; i < options.replicas; ++i) {
    engine::RdbmsOptions eopts = options.engine;
    eopts.name = "replica-" + std::to_string(i + 1);
    eopts.physical_seed = 1000 + static_cast<uint64_t>(i);
    eopts.rand_seed = 2000 + static_cast<uint64_t>(i);
    int64_t skew = options.clock_skew_per_replica * i;
    sim::Simulator* s = &sim;
    eopts.clock = [s, skew] { return s->Now() + skew; };
    ReplicaOptions ropts = options.replica;
    if (static_cast<size_t>(i) < options.per_replica_capacity.size()) {
      ropts.capacity = options.per_replica_capacity[static_cast<size_t>(i)];
    }
    auto node = std::make_unique<ReplicaNode>(&sim, network.get(), i + 1,
                                              eopts, ropts);
    replica_ptrs.push_back(node.get());
    replicas.push_back(std::move(node));
  }

  controller = std::make_unique<Controller>(&sim, network.get(), 100,
                                            replica_ptrs, options.controller);

  for (int i = 0; i < options.drivers; ++i) {
    drivers.push_back(std::make_unique<client::Driver>(
        &sim, network.get(), 200 + i,
        std::vector<net::NodeId>{controller->id()}, options.driver));
  }
}

Cluster::~Cluster() = default;

void Cluster::Start() {
  controller->Start();
  RegisterProbes();
  if (options.sample_interval > 0) {
    sampler_ = std::make_unique<sim::PeriodicTask>(
        &sim, options.sample_interval,
        [this] { hub_.SampleProbes(sim.Now()); });
    sampler_->Start();
  }
}

void Cluster::RegisterProbes() {
  Controller* ctrl = controller.get();
  for (const auto& replica_ptr : replicas) {
    ReplicaNode* node = replica_ptr.get();
    std::string prefix = "replica." + std::to_string(node->id());
    hub_.RegisterProbe(prefix + ".lag_versions", [ctrl, node] {
      GlobalVersion head = ctrl->global_version();
      GlobalVersion applied = node->applied_version();
      return static_cast<double>(head > applied ? head - applied : 0);
    });
    hub_.RegisterProbe(prefix + ".backlog", [node] {
      return static_cast<double>(node->apply_backlog());
    });
    hub_.RegisterProbe(prefix + ".queue_depth", [node] {
      return static_cast<double>(node->QueueDepth());
    });
    // Tightest remaining credit window any pusher holds toward this
    // replica (master binlog stream and/or controller push paths).
    net::NodeId id = node->id();
    hub_.RegisterProbe(prefix + ".ship_window_bytes", [this, ctrl, id] {
      int64_t window = ctrl->ship_pipeline().WindowBytes(id);
      for (const auto& other : replicas) {
        if (other->id() == id || other->crashed()) continue;
        window = std::min(window, other->ship_pipeline().WindowBytes(id));
      }
      return static_cast<double>(window);
    });
  }
  hub_.RegisterProbe("controller.pending_txns", [ctrl] {
    return static_cast<double>(ctrl->PendingCount());
  });
  hub_.RegisterProbe("controller.head_version", [ctrl] {
    return static_cast<double>(ctrl->global_version());
  });
}

void Cluster::Setup(const std::vector<std::string>& statements) {
  for (auto& r : replicas) {
    for (const std::string& stmt : statements) {
      engine::ExecResult res = r->AdminExec(stmt);
      REPLIDB_CHECK(res.ok(), ("setup failed: " + res.status.ToString() +
                               " for " + stmt).c_str());
    }
  }
}

bool Cluster::Converged() const { return DistinctContents() <= 1; }

int Cluster::DistinctContents() const {
  std::set<uint64_t> hashes;
  for (const auto& r : replicas) {
    if (!r->crashed()) hashes.insert(r->engine()->ContentHash());
  }
  return static_cast<int>(hashes.size());
}

uint64_t Cluster::TotalApplyErrors() const {
  uint64_t n = 0;
  for (const auto& r : replicas) n += r->apply_errors();
  return n;
}

}  // namespace replidb::middleware
