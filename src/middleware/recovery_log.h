#ifndef REPLIDB_MIDDLEWARE_RECOVERY_LOG_H_
#define REPLIDB_MIDDLEWARE_RECOVERY_LOG_H_

#include <map>
#include <vector>

#include "middleware/common.h"
#include "net/network.h"

namespace replidb::middleware {

/// \brief Sequoia-style recovery log (§4.4.2): the controller records every
/// replicated transaction, indexed by global version, plus per-replica
/// checkpoints. A replica that leaves the cluster (failure or maintenance)
/// is resynchronized by replaying the log from its checkpoint; a replica
/// initialized from a backup replays from the backup's version watermark.
class RecoveryLog {
 public:
  /// Appends an entry (versions must be recorded in increasing order;
  /// gaps are allowed after failovers and are skipped at replay).
  void Append(ReplicationEntry entry);

  /// Entries with version in (after, up_to].
  std::vector<ReplicationEntry> Range(GlobalVersion after,
                                      GlobalVersion up_to) const;

  /// Records that `replica` is known to have applied everything up to
  /// `version` (checkpoint inserted when a node leaves, §4.4.2).
  void SetCheckpoint(net::NodeId replica, GlobalVersion version);
  GlobalVersion Checkpoint(net::NodeId replica) const;

  /// Discards entries at or below `version` that every checkpoint has
  /// passed (log truncation). Returns how many entries were dropped.
  size_t TruncateThrough(GlobalVersion version);

  size_t size() const { return entries_.size(); }
  GlobalVersion last_version() const {
    return entries_.empty() ? 0 : entries_.rbegin()->first;
  }
  int64_t SizeBytes() const;

 private:
  std::map<GlobalVersion, ReplicationEntry> entries_;
  std::map<net::NodeId, GlobalVersion> checkpoints_;
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_RECOVERY_LOG_H_
