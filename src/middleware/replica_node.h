#ifndef REPLIDB_MIDDLEWARE_REPLICA_NODE_H_
#define REPLIDB_MIDDLEWARE_REPLICA_NODE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "engine/rdbms.h"
#include "middleware/messages.h"
#include "net/dispatcher.h"
#include "net/failure_detector.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "ship/pipeline.h"
#include "sim/simulator.h"

namespace replidb::middleware {

/// \brief Options for a replica node.
struct ReplicaOptions {
  /// Concurrent query workers (connections the engine serves in parallel).
  int capacity = 8;
  /// Workers for applying the replication stream. 1 = strictly serial
  /// apply (the paper's lagging hot standby, §2.2); more workers overlap
  /// non-conflicting entries while preserving commit order.
  int apply_workers = 1;
  /// How often committed-but-unshipped binlog entries are pushed to
  /// subscribers (the 1-safe loss window, §2.2).
  sim::Duration ship_interval = 50 * sim::kMillisecond;
  /// Apply cost model: per-writeset-op and fixed costs (µs) when applying
  /// row images (statement re-execution uses the real engine cost).
  double apply_base_us = 60;
  double apply_per_op_us = 8;
  /// Backup/restore throughput in bytes per second of simulated time.
  double backup_bytes_per_sec = 40e6;
  /// Memory model for the Tashkent+-style load-balancing experiment: how
  /// many tables fit in this replica's buffer pool (0 disables the model).
  /// Transactions whose tables are all hot run at full speed; a miss
  /// multiplies the service cost (disk-bound execution).
  int hot_table_capacity = 0;
  double cache_miss_penalty = 3.0;
  /// If true, a crash also destroys local data (disk loss): the replica
  /// must be re-cloned rather than merely resynchronized.
  bool lose_data_on_crash = false;
  /// Shipping-pipeline knobs for the master role's binlog stream (wire
  /// codec, batching, credit-based flow control).
  ship::ShipOptions ship;
  /// Group-apply amortization: entries arriving after the first of one
  /// shipped batch pay apply_base_us * this factor (they share the
  /// batch's group fsync). 1.0 = no amortization.
  double apply_group_factor = 1.0;
};

/// \brief A database replica: one Rdbms engine attached to a simulated
/// cluster node, with a worker-pool queueing model, an ordered replication
/// stream, master-side log shipping, and backup/restore endpoints.
///
/// All state changes happen through messages (see messages.h); the
/// controller never touches the engine directly. Service times come from
/// the engine's CostModel and are charged against `capacity` workers, so
/// saturation, queueing delay, and apply lag all emerge from the model.
class ReplicaNode {
 public:
  ReplicaNode(sim::Simulator* sim, net::Network* network, net::NodeId node,
              engine::RdbmsOptions engine_options, ReplicaOptions options = {},
              net::SiteId site = 0);
  ~ReplicaNode();
  ReplicaNode(const ReplicaNode&) = delete;
  ReplicaNode& operator=(const ReplicaNode&) = delete;

  net::NodeId id() const { return dispatcher_->node(); }
  engine::Rdbms* engine() { return engine_.get(); }
  const engine::Rdbms* engine() const { return engine_.get(); }

  /// Highest global version incorporated into this replica's state.
  GlobalVersion applied_version() const { return applied_version_; }
  /// Used when seeding a replica out-of-band (initial load, restore).
  void set_applied_version(GlobalVersion v) { applied_version_ = v; }

  /// Nodes that receive this replica's committed entries (master role).
  void SetSubscribers(std::vector<net::NodeId> subscribers);

  /// Crash the node: network presence drops, queued work is lost. Local
  /// data survives unless options.lose_data_on_crash.
  void Crash();
  /// Restart after a crash: empty queues, data as per crash semantics.
  void Restart();
  bool crashed() const { return crashed_; }

  /// Direct (non-message) administrative access for test/bench setup —
  /// e.g. loading the initial schema identically on every replica.
  engine::ExecResult AdminExec(const std::string& sql);

  /// Number of entries shipped to subscribers so far.
  GlobalVersion shipped_version() const { return last_shipped_; }
  /// Entries committed locally but not yet shipped (loss window size).
  uint64_t unshipped_entries() const;

  /// Versions queued in the ordered stream but not yet applied (lag in
  /// entries; the paper's master/slave lag, §2.2).
  uint64_t apply_backlog() const { return ordered_buffer_.size(); }

  const ReplicaOptions& options() const { return options_; }

  /// Number of currently busy workers (load probe for load balancers).
  int64_t QueueDepth() const;

  /// Snapshots the engine's post-setup state as the replication baseline:
  /// call once on every replica after loading the identical initial
  /// schema/data, before traffic starts.
  void MarkSetupComplete();

  /// Registers the controller that receives progress beacons.
  void SetController(net::NodeId controller);

  /// Apply-path errors observed (divergence indicator).
  uint64_t apply_errors() const { return apply_errors_; }

  /// Software version of this replica's stack (§4.4.3 rolling upgrades).
  int software_version() const { return software_version_; }
  void set_software_version(int v) { software_version_ = v; }

  /// True while the master role's ship window to any subscriber is
  /// exhausted (credit flow control) — the admission backpressure signal.
  bool ShipBackpressured() const { return ship_pipeline_->AnyStalled(); }

  /// Forgets queued entries and restores a full ship window for one peer
  /// (it restarted or is being resynced, so its credit state is void).
  void ResetShipPeer(net::NodeId peer) { ship_pipeline_->ResetPeer(peer); }

  const ship::ShipPipeline& ship_pipeline() const { return *ship_pipeline_; }

 private:
  struct HeldTxn {
    engine::SessionId session = 0;
    engine::Writeset writeset;
    std::vector<std::string> statements;
    net::NodeId from = -1;
  };

  void HandleExec(const net::Message& m);
  void StartUnorderedExec(const ExecTxnMsg& msg, net::NodeId from);
  void DrainWaitingReads();
  /// Applies the hot-table cache model; returns the adjusted cost.
  int64_t TouchCache(const std::vector<std::string>& tables, int64_t cost);
  void HandleFinish(const net::Message& m);
  void HandleApply(const net::Message& m);
  void HandleShipBatch(const net::Message& m);
  /// Queues one ingested entry into the ordered stream (shared by the
  /// legacy kMsgApply path and the batch ingest path). Returns false for
  /// duplicates.
  bool EnqueueOrdered(ApplyMsg msg, net::NodeId from);
  /// Grants matured byte credits (entries applied up to applied_version_)
  /// back to their senders.
  void ReleaseCredits();
  void HandleBackup(const net::Message& m);
  void HandleRestore(const net::Message& m);

  /// Runs statements in one engine transaction; fills reply fields.
  /// If hold_commit, leaves the transaction open in held_.
  void RunTransaction(const ExecTxnMsg& msg, net::NodeId from,
                      ExecTxnReply* reply);

  /// Applies contiguous buffered versions to the engine and schedules
  /// their timed completions.
  void DrainOrderedBuffer();

  /// Charges `cost` against the unordered worker pool; returns completion
  /// time. `start_out`, when given, receives the service start time (the
  /// queue-wait boundary for the per-stage breakdown).
  sim::TimePoint ChargeWorker(int64_t cost_us,
                              sim::TimePoint* start_out = nullptr);

  /// Ships binlog-derived entries committed after last_shipped_.
  void ShipCommitted(int sync_acks_for_version = 0,
                     GlobalVersion sync_version = 0);

  /// Fires pending audit barriers the engine has reached. Called at every
  /// point engine_applied_ advances, so digests are captured synchronously
  /// at the exact stream position the barrier names (the engine may hold
  /// later versions by the time the timed completion runs).
  void CheckAuditBarriers();
  void SendAuditReport(uint64_t audit_epoch, net::NodeId to);

  void SendProgress();

  int64_t ApplyCost(const ReplicationEntry& entry,
                    bool group_follower = false) const;

  sim::Simulator* sim_;
  net::Network* network_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::unique_ptr<engine::Rdbms> engine_;
  ReplicaOptions options_;
  engine::RdbmsOptions engine_options_;

  std::unique_ptr<net::HeartbeatResponder> hb_responder_;
  std::unique_ptr<net::TcpKeepAliveResponder> ka_responder_;

  bool crashed_ = false;
  uint64_t epoch_ = 0;  ///< Bumped on crash; stale timers no-op.

  // Unordered worker pool (reads + master writes).
  std::vector<sim::TimePoint> workers_free_;

  // Ordered replication stream. `engine_applied_` advances synchronously
  // as entries reach the engine; `applied_version_` advances at the timed
  // completion (what the outside world observes).
  GlobalVersion applied_version_ = 0;
  GlobalVersion engine_applied_ = 0;
  std::map<GlobalVersion, ApplyMsg> ordered_buffer_;
  /// When each buffered version entered this node (queue-wait stage start).
  std::map<GlobalVersion, sim::TimePoint> ordered_arrival_;
  std::map<GlobalVersion, std::pair<ExecTxnMsg, net::NodeId>> ordered_exec_;
  std::map<GlobalVersion, std::pair<FinishTxnMsg, net::NodeId>> ordered_finish_;
  sim::TimePoint last_ordered_completion_ = 0;
  std::vector<sim::TimePoint> apply_workers_free_;
  std::map<std::string, sim::TimePoint> conflict_key_completion_;
  uint64_t apply_errors_ = 0;

  // Master shipping.
  std::vector<net::NodeId> subscribers_;
  GlobalVersion last_shipped_ = 0;
  size_t binlog_shipped_index_ = 0;
  std::unique_ptr<sim::PeriodicTask> ship_task_;
  // 2-safe bookkeeping: version -> (acks outstanding, reply closure).
  struct PendingSync {
    int acks_needed = 0;
    std::function<void()> on_acked;
  };
  std::map<GlobalVersion, PendingSync> pending_sync_;
  /// Outgoing ship pipeline (master role): batches + flow control.
  std::unique_ptr<ship::ShipPipeline> ship_pipeline_;
  /// Credits owed per ingested-but-not-yet-applied entry: version ->
  /// (sender, bytes). Granted back when applied_version_ passes them.
  std::multimap<GlobalVersion, std::pair<net::NodeId, int64_t>>
      pending_credits_;

  // Held (uncommitted) transactions for certification mode. Ordered:
  // Crash() and conflict kills iterate it, and the resulting ROLLBACK /
  // Disconnect order feeds the engine's commit sequence.
  std::map<uint64_t, HeldTxn> held_;

  // Freshness-gated reads waiting for applied_version_ >= min_version.
  std::vector<std::pair<ExecTxnMsg, net::NodeId>> waiting_reads_;

  // Audit barriers not yet reached: barrier version -> (epoch, reply-to).
  std::multimap<GlobalVersion, std::pair<uint64_t, net::NodeId>>
      pending_audits_;

  // Hot-table LRU (memory-aware LB experiment). Front = most recent.
  std::vector<std::string> hot_tables_;

  net::NodeId controller_ = -1;  ///< Set by the controller at registration.
  int software_version_ = 1;

  // Observability: per-node gauges + the trace track name, resolved once.
  obs::Gauge* backlog_gauge_ = nullptr;  ///< replica.<id>.apply_backlog.
  obs::Gauge* lag_ms_gauge_ = nullptr;   ///< replica.<id>.lag_ms.
  std::string track_;                    ///< Trace track, "replica.<id>".
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_REPLICA_NODE_H_
