#ifndef REPLIDB_MIDDLEWARE_CLUSTER_H_
#define REPLIDB_MIDDLEWARE_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "client/driver.h"
#include "middleware/controller.h"
#include "middleware/replica_node.h"
#include "net/network.h"
#include "obs/timeseries.h"
#include "sim/simulator.h"

namespace replidb::middleware {

/// \brief Everything needed to stand up one replicated-database deployment:
/// simulator, network, N replicas, one controller, M client drivers.
/// Shared by tests, benches, and examples. Node ids: replicas are 1..N,
/// the controller is 100, drivers are 200, 201, ...
struct ClusterOptions {
  int replicas = 3;
  int drivers = 1;
  ReplicaOptions replica;
  ControllerOptions controller;
  net::NetworkOptions network;
  client::DriverOptions driver;
  /// Engine template; per-replica name/physical_seed/rand_seed derive from
  /// the replica index so replicas are realistically non-identical.
  engine::RdbmsOptions engine;
  /// Clock skew injected per replica (µs, multiplied by index) — feeds the
  /// NOW() divergence experiments.
  int64_t clock_skew_per_replica = 0;
  /// Optional per-replica worker-capacity override (heterogeneous
  /// clusters, §4.1.3). Empty = uniform `replica.capacity`.
  std::vector<int> per_replica_capacity;
  /// Virtual-time telemetry sampling period for the cluster's
  /// TimeSeriesHub (per-replica lag/backlog/queue depth, ship windows,
  /// in-flight transactions). 0 disables the sampler; the hub still
  /// exists for event-driven series.
  sim::Duration sample_interval = 250 * sim::kMillisecond;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  ~Cluster();

  /// Runs the setup statements identically on every replica (initial
  /// load), then baselines replication state. Call before traffic.
  void Setup(const std::vector<std::string>& statements);

  /// Finishes wiring (Controller::Start), registers the telemetry probes,
  /// and starts the virtual-time sampler (options.sample_interval).
  void Start();

  /// Per-deployment time-series telemetry: sampled probes per replica
  /// (`replica.<id>.lag_versions` / `.backlog` / `.queue_depth` /
  /// `.ship_window_bytes`) plus `controller.pending_txns` and
  /// `controller.head_version`. Timestamps are virtual microseconds.
  obs::TimeSeriesHub& timeseries() { return hub_; }
  const obs::TimeSeriesHub& timeseries() const { return hub_; }

  /// True if all *up* replicas hold identical committed data.
  bool Converged() const;
  /// Number of distinct content hashes among up replicas (1 = converged).
  int DistinctContents() const;

  /// Total apply-path errors across replicas (divergence indicator).
  uint64_t TotalApplyErrors() const;

  /// Cluster introspection snapshot (controller view).
  audit::StatusSnapshot StatusReport() const { return controller->StatusReport(); }
  /// The snapshot rendered as a SHOW-REPLICA-STATUS-style text table.
  std::string ShowReplicaStatus() const {
    return audit::RenderReplicaStatus(StatusReport());
  }

  ReplicaNode* replica(int index) { return replicas[static_cast<size_t>(index)].get(); }
  client::Driver* driver(int index = 0) { return drivers[static_cast<size_t>(index)].get(); }

  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::unique_ptr<Controller> controller;
  std::vector<std::unique_ptr<client::Driver>> drivers;
  ClusterOptions options;

 private:
  void RegisterProbes();

  obs::TimeSeriesHub hub_;
  /// Declared after the probed objects: destroyed first, so no sampler
  /// tick can ever run against dead replicas/controller.
  std::unique_ptr<sim::PeriodicTask> sampler_;
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_CLUSTER_H_
