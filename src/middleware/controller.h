#ifndef REPLIDB_MIDDLEWARE_CONTROLLER_H_
#define REPLIDB_MIDDLEWARE_CONTROLLER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include "common/hashing.h"
#include <vector>

#include "audit/auditor.h"
#include "audit/status.h"
#include "common/rng.h"
#include "middleware/messages.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "middleware/recovery_log.h"
#include "middleware/replica_node.h"
#include "net/dispatcher.h"
#include "net/failure_detector.h"
#include "net/network.h"
#include "ship/pipeline.h"
#include "sim/simulator.h"
#include "sql/determinism.h"

namespace replidb::middleware {

/// Load-balancing policies (§3.2, §4.1.3).
enum class LoadBalancePolicy {
  kRoundRobin,
  /// Least Pending Requests First (C-JDBC's LPRF).
  kLeastPending,
  /// Weighted least-pending: outstanding divided by a per-replica weight,
  /// for heterogeneous clusters (§4.1.3).
  kWeighted,
  /// Tashkent+-style memory-aware routing: transactions are routed by
  /// table affinity so each replica's working set stays in memory (§3.2).
  kMemoryAware,
};

const char* LoadBalancePolicyName(LoadBalancePolicy policy);

/// Load-balancing granularity (§3.2): connection-level pins each client
/// connection to one replica ("simple, but offers poor balancing when
/// clients use connection pools or persistent connections");
/// transaction-level rebalances every transaction.
enum class LoadBalanceGranularity { kConnection, kTransaction };

/// \brief Controller configuration.
struct ControllerOptions {
  ReplicationMode mode = ReplicationMode::kMasterSlaveAsync;
  ConsistencyLevel consistency = ConsistencyLevel::kSessionPCSI;
  LoadBalancePolicy load_balance = LoadBalancePolicy::kLeastPending;
  LoadBalanceGranularity granularity = LoadBalanceGranularity::kTransaction;
  NonDeterminismPolicy nondeterminism = NonDeterminismPolicy::kRefuse;

  /// 2-safe mode: slaves that must confirm receipt before a commit acks.
  int sync_ack_count = 1;
  /// Statement mode: replica replies required before acking the client
  /// (1 = first success; replicas.size() = fully eager).
  int statement_quorum = 1;

  /// Per-request timeout at the controller; expired requests fail with
  /// kUnavailable and the client driver retries.
  sim::Duration request_timeout = 2 * sim::kSecond;

  /// Middleware processing model: per-statement parse/route cost and the
  /// controller's worker parallelism. These move with the interception
  /// design (Figures 5-7): an engine-integrated design has ~0 extra cost,
  /// a protocol proxy parses wire formats (higher), a driver-level JDBC
  /// middleware sits in between.
  double per_statement_us = 25;
  int capacity = 32;

  /// Refuse writes when fewer than a majority of replicas are reachable
  /// (quorum behaviour under partitions, §4.3.4.3). Off by default: the
  /// paper notes replicated DBs favour C+A and "try to avoid" partitions.
  bool require_majority_for_writes = false;

  /// Heartbeat failure-detection settings for replica monitoring.
  net::HeartbeatOptions heartbeat;

  /// Shipping-pipeline knobs for the controller's own push paths
  /// (certification distribution, resync replay, anti-entropy). The
  /// master-slave binlog stream uses ReplicaOptions::ship instead.
  /// `ship.backpressure_admission` additionally defers routing new
  /// master-slave writes while the master's ship window is exhausted.
  ship::ShipOptions ship;

  /// Online content auditing (0 = disabled). Every interval the controller
  /// opens an audit epoch: it injects an audit barrier at the current head
  /// version, each online replica reports its per-table digests when its
  /// replication stream passes the barrier, and the DivergenceAuditor
  /// compares them — catching statement-replication divergence while the
  /// cluster serves traffic (the C5-style continuous validation the paper
  /// era lacked).
  sim::Duration audit_interval = 0;

  /// Whether reads may run on the master too (usually true; false models
  /// a dedicated-master configuration).
  bool reads_on_master = true;

  /// Windowed SLO tracking (obs/slo.h): commit latency and replica
  /// staleness are bucketed into `slo_window`-sized virtual-time windows;
  /// each closed window's p99 is checked against the target and breaches
  /// are counted in SHOW REPLICA STATUS. 0 disables tracking.
  sim::Duration slo_window = 5 * sim::kSecond;
  /// Commit-latency SLO: p99 of client-observed write latency (ms).
  double slo_commit_p99_ms = 50.0;
  /// Staleness SLO: p99 of versions-behind-head served to reads.
  double slo_staleness_p99 = 100.0;

  /// Controller replication (§3.2's missing piece). `mirror_to` names a
  /// standby controller that receives this controller's durable state
  /// (recovery-log entries, version counter, exactly-once outcomes).
  /// With `mirror_sync`, every write waits for the standby's ack — the
  /// "extra communication and synchronization that significantly impacts
  /// performance" the paper warns about, now measurable.
  net::NodeId mirror_to = -1;
  bool mirror_sync = false;
  /// This controller is a passive standby for `standby_of`: it absorbs
  /// mirror traffic, watches the active with its own heartbeats, and
  /// refuses client transactions until the active is declared dead.
  net::NodeId standby_of = -1;

  uint64_t seed = 1234;
};

/// \brief Aggregate controller statistics for benches and tests.
struct ControllerStats {
  uint64_t txns_total = 0;
  uint64_t reads_total = 0;
  uint64_t writes_total = 0;
  uint64_t commits = 0;
  uint64_t aborts_certification = 0;  ///< First-committer-wins kills.
  uint64_t aborts_execution = 0;      ///< Engine-level errors/conflicts.
  uint64_t rejected_nondeterministic = 0;
  uint64_t unsafe_broadcasts = 0;  ///< Unsafe stmts shipped anyway.
  uint64_t timeouts = 0;
  uint64_t unavailable = 0;
  uint64_t failovers = 0;
  uint64_t lost_transactions = 0;  ///< Acked commits missing after failover.
  uint64_t resyncs_completed = 0;
};

/// \brief The replication middleware controller ("database replication
/// middleware" box in Figures 1-3): accepts client transactions, routes
/// reads through the load balancer under the configured consistency
/// level, replicates writes per the configured strategy, detects replica
/// failures, fails over masters, resynchronizes rejoining replicas from
/// its Sequoia-style recovery log, and runs management operations
/// (backup, add replica).
///
/// The controller itself is a single process on one node — deliberately a
/// single point of failure, as §3.2 observes of academic prototypes; the
/// availability benches crash it to quantify that.
class Controller {
 public:
  Controller(sim::Simulator* sim, net::Network* network, net::NodeId node,
             std::vector<ReplicaNode*> replicas, ControllerOptions options = {},
             net::SiteId site = 0);
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  net::NodeId id() const { return dispatcher_->node(); }
  const ControllerOptions& options() const { return options_; }
  const ControllerStats& stats() const { return stats_; }

  /// Completes wiring: baselines every replica (MarkSetupComplete), sets
  /// shipping subscriptions, starts failure detection. Call after the
  /// initial schema/data was loaded identically on all replicas.
  void Start();

  /// Current cluster head version.
  GlobalVersion global_version() const { return global_version_; }

  net::NodeId master() const { return master_; }

  /// Per-replica weight for LoadBalancePolicy::kWeighted.
  void SetReplicaWeight(net::NodeId replica, double weight);

  /// Replica lifecycle --------------------------------------------------------

  enum class ReplicaState { kOnline, kDown, kResyncing };
  ReplicaState replica_state(net::NodeId replica) const;
  /// Online replicas right now (reads are balanced over these).
  std::vector<net::NodeId> OnlineReplicas() const;

  /// Administratively removes a replica from rotation (maintenance). A
  /// checkpoint is recorded so it can later resync from the recovery log.
  void RemoveReplica(net::NodeId replica);

  /// Re-admits a removed/recovered replica: replays the recovery log from
  /// its checkpoint; the replica serves traffic again once caught up.
  void RejoinReplica(net::NodeId replica);

  /// Adds a brand-new empty replica online: clone from `donor` (hot
  /// backup), restore, replay the tail of the recovery log, then serve.
  /// `on_done(status)` fires when the replica is online.
  void AddReplica(ReplicaNode* node,
                  net::NodeId donor,
                  std::function<void(Status)> on_done);

  /// Requests a backup from a replica (online operation; degrades that
  /// replica while it runs).
  void StartBackup(net::NodeId replica, engine::BackupOptions opts,
                   std::function<void(Result<engine::BackupImage>)> on_done);

  /// §4.4.3: rolling software upgrade to `target_version` — one replica
  /// at a time: remove, restart under the new binary (`upgrade_duration`
  /// of downtime per node), replay the recovery log, wait until online,
  /// move on. With >= 2 replicas the service never stops. `on_done` fires
  /// when every replica runs the new version (or with an error).
  void RollingUpgrade(int target_version, sim::Duration upgrade_duration,
                      std::function<void(Status)> on_done);

  /// Crash/restart the controller process itself (SPOF experiments).
  void Crash();
  void Restart();
  bool crashed() const { return crashed_; }

  /// True while this controller is a passive standby.
  bool passive() const { return passive_; }
  /// Mirror messages acknowledged by the standby (active side).
  uint64_t mirror_acks() const { return mirror_acks_; }

  const RecoveryLog& recovery_log() const { return recovery_log_; }

  /// Highest staleness (versions behind head) served to any read so far.
  uint64_t max_read_staleness() const { return max_read_staleness_; }

  /// Client transactions currently in flight at the controller (telemetry
  /// probe for the cluster's time-series sampler).
  size_t PendingCount() const { return pending_.size(); }

  /// The controller's own push pipeline (cert distribution, resync,
  /// anti-entropy) — exposed read-only for telemetry probes.
  const ship::ShipPipeline& ship_pipeline() const { return *ship_pipeline_; }

  /// Windowed SLO trackers (null when options.slo_window == 0).
  const obs::SloTracker* commit_slo() const { return commit_slo_.get(); }
  const obs::SloTracker* staleness_slo() const { return staleness_slo_.get(); }

  /// The online divergence auditor (populated when audit_interval > 0).
  const audit::DivergenceAuditor& auditor() const { return auditor_; }

  /// Builds a point-in-time introspection snapshot: per-replica role,
  /// health, applied version, lag, backlog, and audit state. Render with
  /// audit::RenderReplicaStatus / RenderStatusJson.
  audit::StatusSnapshot StatusReport() const;

 private:
  struct ReplicaInfo {
    ReplicaNode* node = nullptr;
    ReplicaState state = ReplicaState::kOnline;
    GlobalVersion applied = 0;   ///< Last progress beacon.
    int64_t outstanding = 0;     ///< Requests in flight to this replica.
    double weight = 1.0;
    GlobalVersion resync_target = 0;
    GlobalVersion swept_at = 0;  ///< Anti-entropy: applied at last sweep.
    std::vector<std::string> affinity_tables;  ///< Memory-aware LB.
    obs::Gauge* lag_gauge = nullptr;  ///< middleware.replica.N.lag_txns.
  };

  /// One client transaction in flight.
  struct Pending {
    uint64_t req_id = 0;
    net::NodeId client = -1;
    uint64_t client_req_id = 0;
    sim::TimePoint arrived = 0;  ///< When the controller received it.
    sim::TimePoint routed = 0;   ///< When parse/route finished.
    TxnRequest request;
    GlobalVersion min_version = 0;
    bool is_write = false;
    net::NodeId target = -1;          ///< Replica executing it.
    sim::EventId timer = 0;
    // Certification mode state.
    bool held = false;
    GlobalVersion begin_version = 0;
    engine::Writeset writeset;
    std::vector<std::string> statements;
    // Statement mode state.
    GlobalVersion order = 0;
    uint64_t mirror_seq_after = 0;  ///< Mirror seq covering this write.
    int replies_needed = 0;
    bool replied_to_client = false;
    ExecTxnReply first_reply;
    std::vector<std::string> tables;
  };

  void HandleClientTxn(const net::Message& m);
  void HandleExecReply(const net::Message& m);
  void HandleFinishReply(const net::Message& m);
  void HandleProgress(const net::Message& m);

  void RouteRead(Pending* p);
  void RouteWrite(Pending* p);
  void RouteWriteMasterSlave(Pending* p);
  void RouteWriteStatement(Pending* p);
  void RouteWriteCertification(Pending* p);

  /// Parses/analyzes/rewrites statements for statement replication.
  /// Returns non-OK when policy forbids broadcasting.
  Status PrepareStatements(Pending* p);
  /// Extracts the set of table names a transaction touches (best effort).
  std::vector<std::string> ExtractTables(const TxnRequest& request);

  /// Picks a read replica per LB policy and consistency constraints.
  net::NodeId PickReadReplica(const Pending& p);

  /// Delay to charge at the controller for a request of n statements.
  sim::TimePoint ChargeProcessing(size_t statements);

  void FinishRequest(Pending* p, TxnResult result);
  void ArmTimeout(Pending* p);
  void OnTimeout(uint64_t req_id);

  void OnReplicaSuspicion(net::NodeId replica, bool suspect);
  /// Opens one audit epoch: barrier broadcast to every online replica.
  void RunAuditEpoch();
  void StartAuditTask();
  void HandleAuditReport(const net::Message& m);
  /// Standby: the active controller stopped answering — take over.
  void TakeOver();
  /// Active: push durable state to the standby; returns the mirror seq.
  void MirrorAppend(const ReplicationEntry& entry);
  /// Anti-entropy: a replica whose applied version stalls behind the head
  /// (e.g. after a crash flap too fast for the detector) gets the missing
  /// recovery-log range pushed again.
  void AntiEntropySweep();
  void PromoteNewMaster();
  void StartResync(net::NodeId replica);
  /// Full recovery for a diverged replica: hot backup from `donor`,
  /// restore, then log replay (§4.4.2's "hours of dump/restore").
  void CloneInto(net::NodeId target, net::NodeId donor);
  void CheckResyncDone(net::NodeId replica);
  void UpdateSubscriptions();
  bool HaveWriteQuorum() const;

  /// Certification (first-committer-wins over writeset keys).
  bool Certify(GlobalVersion begin_version,
               const std::vector<std::string>& keys) const;
  void RecordCertified(GlobalVersion version,
                       const std::vector<std::string>& keys);

  ReplicaInfo* Info(net::NodeId replica);
  const ReplicaInfo* Info(net::NodeId replica) const;

  sim::Simulator* sim_;
  net::Network* network_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  ControllerOptions options_;
  Rng rng_;

  std::map<net::NodeId, ReplicaInfo> replicas_;
  net::NodeId master_ = -1;
  GlobalVersion global_version_ = 0;

  std::unique_ptr<net::HeartbeatDetector> detector_;
  std::unique_ptr<net::HeartbeatResponder> hb_responder_;
  /// Outgoing ship pipeline for the controller's push paths (cert
  /// distribution, resync replay, anti-entropy re-ship).
  std::unique_ptr<ship::ShipPipeline> ship_pipeline_;
  std::unique_ptr<sim::PeriodicTask> anti_entropy_;
  std::unique_ptr<sim::PeriodicTask> audit_task_;
  audit::DivergenceAuditor auditor_;
  uint64_t audit_epoch_ = 0;

  RecoveryLog recovery_log_;
  /// writeset key -> last version that wrote it (certification window).
  HashMap<std::string, GlobalVersion> last_writer_;
  /// Failed masters whose local state may contain commits beyond the
  /// survivor's version (lost transactions living on their disk). If such
  /// a replica rejoins with applied > marker, forward replay would merge
  /// divergent history: it must be re-cloned instead.
  std::map<net::NodeId, GlobalVersion> divergence_markers_;

  /// Connection-level balancing: client node -> pinned replica.
  std::map<net::NodeId, net::NodeId> connection_affinity_;
  HashMap<uint64_t, Pending> pending_;
  /// Exactly-once support (Sequoia-style transparent failover, §4.3.3):
  /// completed write outcomes by (client, client_req_id) so a driver retry
  /// of an already-committed transaction is answered, not re-executed; and
  /// the in-flight index so duplicate submissions are dropped.
  std::map<std::pair<net::NodeId, uint64_t>, TxnResult> completed_writes_;
  std::map<std::pair<net::NodeId, uint64_t>, uint64_t> active_client_reqs_;
  HashMap<uint64_t, std::function<void(const BackupReplyMsg&)>>
      backup_waiters_;
  HashMap<uint64_t, std::function<void(const RestoreReplyMsg&)>>
      restore_waiters_;
  std::map<net::NodeId, std::function<void(Status)>> add_callbacks_;
  void UpgradeNext(std::vector<net::NodeId> remaining, int target_version,
                   sim::Duration upgrade_duration,
                   std::function<void(Status)> on_done);
  uint64_t next_req_ = 1;
  size_t round_robin_ = 0;
  sim::TimePoint busy_until_ = 0;
  std::vector<sim::TimePoint> workers_free_;

  bool crashed_ = false;
  uint64_t epoch_ = 0;
  ControllerStats stats_;
  uint64_t max_read_staleness_ = 0;

  /// Windowed SLO trackers (see ControllerOptions::slo_window).
  std::unique_ptr<obs::SloTracker> commit_slo_;
  std::unique_ptr<obs::SloTracker> staleness_slo_;

  // Controller replication (warm standby).
  bool passive_ = false;
  std::unique_ptr<net::HeartbeatDetector> active_watchdog_;
  std::unique_ptr<net::HeartbeatResponder> peer_responder_;
  uint64_t mirror_acks_ = 0;
  uint64_t mirror_seq_ = 0;
  /// Sync mirroring: requests whose client reply waits for a mirror ack.
  std::multimap<uint64_t, std::function<void()>> mirror_waiters_;
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_CONTROLLER_H_
