#include "middleware/recovery_log.h"

namespace replidb::middleware {

void RecoveryLog::Append(ReplicationEntry entry) {
  GlobalVersion v = entry.version;
  entries_[v] = std::move(entry);
}

std::vector<ReplicationEntry> RecoveryLog::Range(GlobalVersion after,
                                                 GlobalVersion up_to) const {
  std::vector<ReplicationEntry> out;
  for (auto it = entries_.upper_bound(after);
       it != entries_.end() && it->first <= up_to; ++it) {
    out.push_back(it->second);
  }
  return out;
}

void RecoveryLog::SetCheckpoint(net::NodeId replica, GlobalVersion version) {
  checkpoints_[replica] = version;
}

GlobalVersion RecoveryLog::Checkpoint(net::NodeId replica) const {
  auto it = checkpoints_.find(replica);
  return it == checkpoints_.end() ? 0 : it->second;
}

size_t RecoveryLog::TruncateThrough(GlobalVersion version) {
  GlobalVersion min_checkpoint = version;
  for (const auto& [node, cp] : checkpoints_) {
    (void)node;
    min_checkpoint = std::min(min_checkpoint, cp);
  }
  size_t dropped = 0;
  while (!entries_.empty() && entries_.begin()->first <= min_checkpoint) {
    entries_.erase(entries_.begin());
    ++dropped;
  }
  return dropped;
}

int64_t RecoveryLog::SizeBytes() const {
  int64_t bytes = 0;
  for (const auto& [v, e] : entries_) {
    (void)v;
    bytes += e.SizeBytes();
  }
  return bytes;
}

}  // namespace replidb::middleware
