#include "middleware/controller.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "sql/parser.h"

namespace replidb::middleware {

namespace {

/// Controller-side registry handles, resolved once. Aggregated across
/// controller instances; per-replica lag gauges carry the node id.
struct ControllerMetrics {
  obs::Counter* txns;
  obs::Counter* reads;
  obs::Counter* writes;
  obs::Counter* commits;
  obs::Counter* aborts_cert;
  obs::Counter* aborts_cert_incomplete;
  obs::Counter* aborts_exec;
  obs::Counter* certified;
  obs::Counter* rejected_nondet;
  obs::Counter* unsafe_broadcast;
  obs::Counter* timeouts;
  obs::Counter* unavailable;
  obs::Counter* failovers;
  obs::Counter* lost_txns;
  obs::Counter* suspicions;
  obs::Counter* suspicion_clears;
  obs::Counter* resyncs_started;
  obs::Counter* resyncs_completed;
  obs::Counter* audit_epochs;
  obs::Counter* audit_reports;
  obs::Counter* audit_divergence;
  obs::Counter* backpressure_defers;
  obs::Gauge* pending_txns;
  obs::HistogramMetric* process_ms;
  obs::HistogramMetric* total_ms;

  static ControllerMetrics& Get() {
    static ControllerMetrics m;
    return m;
  }

 private:
  ControllerMetrics() {
    auto& r = obs::MetricsRegistry::Global();
    txns = r.GetCounter("middleware.controller.txns_total");
    reads = r.GetCounter("middleware.controller.reads_total");
    writes = r.GetCounter("middleware.controller.writes_total");
    commits = r.GetCounter("middleware.controller.commits");
    aborts_cert = r.GetCounter("middleware.certifier.abort.conflict");
    aborts_cert_incomplete =
        r.GetCounter("middleware.certifier.abort.incomplete_writeset");
    aborts_exec = r.GetCounter("middleware.controller.abort.execution");
    certified = r.GetCounter("middleware.certifier.certified");
    rejected_nondet =
        r.GetCounter("middleware.controller.abort.nondeterministic");
    unsafe_broadcast = r.GetCounter("middleware.controller.unsafe_broadcasts");
    timeouts = r.GetCounter("middleware.controller.timeouts");
    unavailable = r.GetCounter("middleware.controller.unavailable");
    failovers = r.GetCounter("middleware.controller.failovers");
    lost_txns = r.GetCounter("middleware.controller.lost_transactions");
    suspicions = r.GetCounter("middleware.detector.suspicions_raised");
    suspicion_clears = r.GetCounter("middleware.detector.suspicions_cleared");
    resyncs_started = r.GetCounter("middleware.recovery.resyncs_started");
    resyncs_completed = r.GetCounter("middleware.recovery.resyncs_completed");
    audit_epochs = r.GetCounter("audit.cluster.epochs_started");
    audit_reports = r.GetCounter("audit.cluster.reports_received");
    audit_divergence = r.GetCounter("audit.cluster.divergence_detected");
    backpressure_defers = r.GetCounter("ship.admission.backpressure_defers");
    pending_txns = r.GetGauge("middleware.controller.pending_txns");
    process_ms = r.GetHistogram("middleware.controller.process_ms");
    total_ms = r.GetHistogram("middleware.txn.total_ms");
  }
};

/// Per-replica lag gauges (txns behind head / recovery replay backlog).
obs::Gauge* ReplicaLagGauge(net::NodeId replica) {
  return obs::MetricsRegistry::Global().GetGauge(
      "middleware.replica." + std::to_string(replica) + ".lag_txns");
}

obs::Gauge* ReplayBehindGauge(net::NodeId replica) {
  return obs::MetricsRegistry::Global().GetGauge(
      "middleware.recovery." + std::to_string(replica) + ".replay_behind");
}

}  // namespace

const char* LoadBalancePolicyName(LoadBalancePolicy policy) {
  switch (policy) {
    case LoadBalancePolicy::kRoundRobin:
      return "round-robin";
    case LoadBalancePolicy::kLeastPending:
      return "least-pending(LPRF)";
    case LoadBalancePolicy::kWeighted:
      return "weighted";
    case LoadBalancePolicy::kMemoryAware:
      return "memory-aware";
  }
  return "?";
}

Controller::Controller(sim::Simulator* sim, net::Network* network,
                       net::NodeId node, std::vector<ReplicaNode*> replicas,
                       ControllerOptions options, net::SiteId site)
    : sim_(sim), network_(network), options_(options), rng_(options.seed) {
  dispatcher_ = std::make_unique<net::Dispatcher>(network, node, site);
  workers_free_.assign(static_cast<size_t>(options_.capacity), 0);

  if (options_.slo_window > 0) {
    commit_slo_ = std::make_unique<obs::SloTracker>(
        "commit_latency_ms", options_.slo_window, options_.slo_commit_p99_ms);
    staleness_slo_ = std::make_unique<obs::SloTracker>(
        "read_staleness_versions", options_.slo_window,
        options_.slo_staleness_p99);
  }

  for (ReplicaNode* r : replicas) {
    ReplicaInfo info;
    info.node = r;
    info.lag_gauge = ReplicaLagGauge(r->id());
    replicas_[r->id()] = info;
  }

  ship_pipeline_ = std::make_unique<ship::ShipPipeline>(sim_, dispatcher_.get(),
                                                        options_.ship);
  dispatcher_->On(ship::kMsgShipCredit, [this](const net::Message& m) {
    if (crashed_) return;
    auto body = std::any_cast<ship::ShipCreditMsg>(m.body);
    ship_pipeline_->OnCredit(m.from, body.bytes);
  });

  hb_responder_ = std::make_unique<net::HeartbeatResponder>(sim_, dispatcher_.get());
  detector_ = std::make_unique<net::HeartbeatDetector>(sim_, dispatcher_.get(),
                                                       options_.heartbeat);
  detector_->OnSuspicionChange([this](net::NodeId n, bool suspect) {
    OnReplicaSuspicion(n, suspect);
  });

  dispatcher_->On(kMsgClientTxn,
                  [this](const net::Message& m) { HandleClientTxn(m); });
  dispatcher_->On(kMsgExecReply,
                  [this](const net::Message& m) { HandleExecReply(m); });
  dispatcher_->On(kMsgFinishReply,
                  [this](const net::Message& m) { HandleFinishReply(m); });
  dispatcher_->On(kMsgProgress,
                  [this](const net::Message& m) { HandleProgress(m); });
  dispatcher_->On(kMsgAuditReport,
                  [this](const net::Message& m) { HandleAuditReport(m); });
  dispatcher_->On(kMsgBackupReply, [this](const net::Message& m) {
    auto body = std::any_cast<BackupReplyMsg>(m.body);
    auto it = backup_waiters_.find(body.req_id);
    if (it == backup_waiters_.end()) return;
    auto cb = std::move(it->second);
    backup_waiters_.erase(it);
    cb(body);
  });
  dispatcher_->On(kMsgRestoreReply, [this](const net::Message& m) {
    auto body = std::any_cast<RestoreReplyMsg>(m.body);
    auto it = restore_waiters_.find(body.req_id);
    if (it == restore_waiters_.end()) return;
    auto cb = std::move(it->second);
    restore_waiters_.erase(it);
    cb(body);
  });

  // Controller replication (§3.2): standby absorbs mirror traffic and
  // watches the active; the active collects mirror acks.
  dispatcher_->On(kMsgMirror, [this](const net::Message& m) {
    if (crashed_) return;
    auto body = std::any_cast<MirrorMsg>(m.body);
    if (body.entry.version > 0) recovery_log_.Append(body.entry);
    global_version_ = std::max(global_version_, body.global_version);
    dispatcher_->Send(m.from, kMsgMirrorAck, MirrorAckMsg{body.seq}, kAckWireBytes);
  });
  dispatcher_->On(kMsgMirrorAck, [this](const net::Message& m) {
    if (crashed_) return;
    auto body = std::any_cast<MirrorAckMsg>(m.body);
    ++mirror_acks_;
    // Release client replies parked on this (or any earlier) mirror seq.
    for (auto it = mirror_waiters_.begin();
         it != mirror_waiters_.end() && it->first <= body.seq;) {
      it->second();
      it = mirror_waiters_.erase(it);
    }
  });
  if (options_.standby_of >= 0) {
    passive_ = true;
    net::HeartbeatOptions watchdog = options_.heartbeat;
    active_watchdog_ = std::make_unique<net::HeartbeatDetector>(
        sim_, dispatcher_.get(), watchdog);
    active_watchdog_->Watch(options_.standby_of);
    active_watchdog_->OnSuspicionChange([this](net::NodeId n, bool suspect) {
      if (n == options_.standby_of && suspect && passive_) TakeOver();
    });
  }
}

Controller::~Controller() = default;

void Controller::Start() {
  for (auto& [id, info] : replicas_) {
    if (!passive_) {
      info.node->MarkSetupComplete();
      info.node->SetController(this->id());
    }
    info.applied = info.node->applied_version();
    global_version_ = std::max(global_version_, info.applied);
    detector_->Watch(id);
  }
  if (!replicas_.empty()) master_ = replicas_.begin()->first;
  if (passive_) return;  // A standby only observes until takeover.
  {
    // Initial view: membership + master, so every run's flight record
    // starts from a known configuration.
    std::string members;
    for (const auto& [rid, info] : replicas_) {
      (void)info;
      if (!members.empty()) members += ",";
      members += std::to_string(rid);
    }
    obs::FlightRecorder::Global().Record(
        sim_->Now(), id(), obs::FlightEventKind::kViewChange,
        "initial view: members=[" + members +
            "] master=" + std::to_string(master_));
  }
  UpdateSubscriptions();
  anti_entropy_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim::kSecond, [this] {
        if (!crashed_) AntiEntropySweep();
      });
  anti_entropy_->Start();
  StartAuditTask();
}

void Controller::TakeOver() {
  if (!passive_) return;
  passive_ = false;
  REPLIDB_LOG(Info) << "standby controller " << id() << " taking over";
  // Rebuild the soft state the mirror stream does not carry.
  for (auto& [rid, info] : replicas_) {
    info.node->SetController(this->id());
    info.outstanding = 0;
    info.applied = info.node->applied_version();
    global_version_ = std::max(global_version_, info.applied);
    info.state = detector_->IsSuspect(rid) ? ReplicaState::kDown
                                           : ReplicaState::kOnline;
  }
  PromoteNewMaster();
  UpdateSubscriptions();
  anti_entropy_ = std::make_unique<sim::PeriodicTask>(
      sim_, sim::kSecond, [this] {
        if (!crashed_) AntiEntropySweep();
      });
  anti_entropy_->Start();
  StartAuditTask();
}

void Controller::StartAuditTask() {
  if (options_.audit_interval <= 0 || audit_task_ != nullptr) return;
  audit_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, options_.audit_interval, [this] {
        if (!crashed_) RunAuditEpoch();
      });
  audit_task_->Start();
}

void Controller::RunAuditEpoch() {
  std::vector<net::NodeId> online = OnlineReplicas();
  if (online.size() < 2) return;  // Nothing to cross-check.
  uint64_t epoch = ++audit_epoch_;
  std::vector<int32_t> expected(online.begin(), online.end());
  auditor_.BeginEpoch(epoch, global_version_, expected);
  ControllerMetrics::Get().audit_epochs->Increment();
  AuditBarrierMsg barrier;
  barrier.epoch = epoch;
  barrier.version = global_version_;
  for (net::NodeId rid : online) {
    dispatcher_->Send(rid, kMsgAuditBarrier, barrier, kControlWireBytes);
  }
}

void Controller::HandleAuditReport(const net::Message& m) {
  if (crashed_) return;
  auto body = std::any_cast<AuditReportMsg>(m.body);
  ControllerMetrics::Get().audit_reports->Increment();
  audit::ReplicaAuditReport report;
  report.replica = m.from;
  report.epoch = body.epoch;
  report.captured_version = body.captured_version;
  report.last_applied_seq = body.last_applied_seq;
  report.table_digests = std::move(body.digests);
  std::vector<audit::Divergence> fresh = auditor_.AddReport(std::move(report));
  for (const audit::Divergence& d : fresh) {
    ControllerMetrics::Get().audit_divergence->Increment();
    REPLIDB_LOG(Warn) << "audit: replica " << d.replica << " diverged on "
                      << d.table << " (epoch " << d.epoch << ", version "
                      << d.version << ", digest " << d.actual_digest
                      << " != " << d.expected_digest << ")";
    if (obs::TracingEnabled()) {
      obs::Tracer::Global().Instant(
          "controller." + std::to_string(id()),
          "audit.divergence(" + d.table + "@" + std::to_string(d.replica) +
              ")",
          sim_->Now());
    }
  }
}

audit::StatusSnapshot Controller::StatusReport() const {
  audit::StatusSnapshot snap;
  snap.mode = ReplicationModeName(options_.mode);
  snap.consistency = ConsistencyLevelName(options_.consistency);
  snap.head_version = global_version_;
  snap.audit_epochs_started = auditor_.epochs_started();
  snap.audit_epochs_compared = auditor_.epochs_compared();
  snap.divergences_detected = auditor_.divergences().size();
  bool master_slave = options_.mode == ReplicationMode::kMasterSlaveAsync ||
                      options_.mode == ReplicationMode::kMasterSlaveSync;
  for (const auto& [rid, info] : replicas_) {
    audit::ReplicaStatus rs;
    rs.id = rid;
    rs.role = master_slave ? (rid == master_ ? "master" : "slave") : "replica";
    switch (info.state) {
      case ReplicaState::kOnline:
        rs.state = detector_->IsSuspect(rid) ? "suspect" : "online";
        break;
      case ReplicaState::kDown:
        rs.state = "down";
        break;
      case ReplicaState::kResyncing:
        rs.state = "resyncing";
        break;
    }
    rs.applied_version =
        std::max<GlobalVersion>(info.applied, info.node->applied_version());
    rs.lag_versions = global_version_ > rs.applied_version
                          ? global_version_ - rs.applied_version
                          : 0;
    rs.backlog = info.node->apply_backlog();
    rs.apply_errors = info.node->apply_errors();
    audit::ReplicaAuditState audit_state = auditor_.StateOf(rid);
    rs.digest_epoch = audit_state.last_epoch;
    rs.diverged = audit_state.diverged;
    rs.first_divergent_epoch = audit_state.first_divergent_epoch;
    std::vector<std::string> tables = auditor_.DivergedTables(rid);
    for (size_t i = 0; i < tables.size(); ++i) {
      if (i > 0) rs.diverged_tables += ",";
      rs.diverged_tables += tables[i];
    }
    snap.replicas.push_back(std::move(rs));
  }
  for (obs::SloTracker* slo : {commit_slo_.get(), staleness_slo_.get()}) {
    if (slo == nullptr) continue;
    // Close any windows the quiet tail left open so the report is current.
    slo->AdvanceTo(sim_->Now());
    audit::SloStatus s;
    s.name = slo->name();
    s.p50 = slo->last_p50();
    s.p99 = slo->last_p99();
    s.target_p99 = slo->target_p99();
    s.windows = slo->windows_closed();
    s.breaches = slo->breaches();
    snap.slos.push_back(std::move(s));
  }
  return snap;
}

void Controller::MirrorAppend(const ReplicationEntry& entry) {
  if (options_.mirror_to < 0) return;
  MirrorMsg msg;
  msg.seq = ++mirror_seq_;
  msg.entry = entry;
  msg.global_version = global_version_;
  dispatcher_->Send(options_.mirror_to, kMsgMirror, msg,
                    entry.SizeBytes() + 64);
}

void Controller::AntiEntropySweep() {
  for (auto& [id, info] : replicas_) {
    if (info.state == ReplicaState::kDown) continue;
    if (info.applied >= global_version_) {
      info.swept_at = info.applied;
      continue;
    }
    if (info.applied != info.swept_at) {
      // Still making progress; check again next sweep.
      info.swept_at = info.applied;
      continue;
    }
    // Stalled behind the head with no progress for a full sweep period:
    // re-push the missing recovery-log range (receivers dedup).
    GlobalVersion up_to =
        std::min<GlobalVersion>(info.applied + 5000, global_version_);
    for (ReplicationEntry& entry : recovery_log_.Range(info.applied, up_to)) {
      ship_pipeline_->Enqueue(id, std::move(entry));
    }
    ship_pipeline_->Flush(id, ship::FlushReason::kSync);
  }
}

void Controller::SetReplicaWeight(net::NodeId replica, double weight) {
  if (ReplicaInfo* info = Info(replica)) info->weight = weight;
}

Controller::ReplicaState Controller::replica_state(net::NodeId replica) const {
  const ReplicaInfo* info = Info(replica);
  return info == nullptr ? ReplicaState::kDown : info->state;
}

std::vector<net::NodeId> Controller::OnlineReplicas() const {
  std::vector<net::NodeId> out;
  for (const auto& [id, info] : replicas_) {
    if (info.state == ReplicaState::kOnline) out.push_back(id);
  }
  return out;
}

Controller::ReplicaInfo* Controller::Info(net::NodeId replica) {
  auto it = replicas_.find(replica);
  return it == replicas_.end() ? nullptr : &it->second;
}

const Controller::ReplicaInfo* Controller::Info(net::NodeId replica) const {
  auto it = replicas_.find(replica);
  return it == replicas_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Client transaction entry point

void Controller::HandleClientTxn(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<ClientTxnMsg>(m.body);
  if (passive_) {
    ClientTxnReply reply;
    reply.req_id = msg.req_id;
    reply.result.status =
        Status::Unavailable("standby controller: active still alive");
    dispatcher_->Send(m.from, kMsgClientTxnReply, reply, kAdminWireBytes);
    return;
  }

  // Exactly-once: a driver retry of a write we already finished gets the
  // stored outcome; a retry of one still in flight is dropped (the
  // original reply will reach the driver under the same request id).
  auto client_key = std::make_pair(m.from, msg.req_id);
  auto done = completed_writes_.find(client_key);
  if (done != completed_writes_.end()) {
    ClientTxnReply reply;
    reply.req_id = msg.req_id;
    reply.result = done->second;
    dispatcher_->Send(m.from, kMsgClientTxnReply, reply, kRowsReplyWireBytes);
    return;
  }
  if (active_client_reqs_.count(client_key)) return;

  uint64_t req = next_req_++;
  active_client_reqs_[client_key] = req;
  Pending p;
  p.req_id = req;
  p.client = m.from;
  p.client_req_id = msg.req_id;
  p.arrived = sim_->Now();
  p.request = msg.request;

  // Classify: trust read_only only if no statement parses as a write.
  p.is_write = !msg.request.read_only;
  if (!p.is_write) {
    for (const std::string& stmt : msg.request.statements) {
      Result<sql::Statement> parsed = sql::Parse(stmt);
      if (!parsed.ok() || parsed.value().IsWrite()) {
        p.is_write = true;
        break;
      }
    }
  }

  ++stats_.txns_total;
  ControllerMetrics::Get().txns->Increment();
  if (p.is_write) {
    ++stats_.writes_total;
    ControllerMetrics::Get().writes->Increment();
  } else {
    ++stats_.reads_total;
    ControllerMetrics::Get().reads->Increment();
  }

  switch (options_.consistency) {
    case ConsistencyLevel::kEventual:
      p.min_version = 0;
      break;
    case ConsistencyLevel::kSessionPCSI:
      p.min_version = msg.last_seen_version;
      break;
    case ConsistencyLevel::kStrongSI:
    case ConsistencyLevel::kOneCopySerializability:
      p.min_version = global_version_;
      break;
  }
  p.tables = ExtractTables(msg.request);

  auto [it, inserted] = pending_.emplace(req, std::move(p));
  (void)inserted;
  ArmTimeout(&it->second);
  ControllerMetrics::Get().pending_txns->Set(
      static_cast<int64_t>(pending_.size()));

  // Middleware processing cost (parse + route) before dispatch.
  sim::TimePoint ready = ChargeProcessing(msg.request.statements.size());
  uint64_t epoch = epoch_;
  sim_->ScheduleAt(ready, [this, epoch, req] {
    if (epoch != epoch_ || crashed_) return;
    auto pit = pending_.find(req);
    if (pit == pending_.end()) return;
    Pending* p = &pit->second;
    p->routed = sim_->Now();
    ControllerMetrics::Get().process_ms->Observe(
        sim::ToMillis(p->routed - p->arrived));
    if (obs::TracingEnabled()) {
      obs::Tracer::Global().Span("controller." + std::to_string(id()),
                                 "mw.process", p->arrived, p->routed,
                                 p->request.trace.id);
    }
    if (p->is_write) {
      RouteWrite(p);
    } else {
      RouteRead(p);
    }
  });
}

sim::TimePoint Controller::ChargeProcessing(size_t statements) {
  int64_t cost = static_cast<int64_t>(
      10 + options_.per_statement_us * static_cast<double>(statements));
  auto worker = std::min_element(workers_free_.begin(), workers_free_.end());
  sim::TimePoint start = std::max(sim_->Now(), *worker);
  *worker = start + cost;
  return *worker;
}

std::vector<std::string> Controller::ExtractTables(const TxnRequest& request) {
  std::vector<std::string> tables;
  for (const std::string& stmt : request.statements) {
    Result<sql::Statement> parsed = sql::Parse(stmt);
    if (!parsed.ok()) continue;
    const sql::TableRef* ref = parsed.value().TargetTable();
    if (ref == nullptr) continue;
    std::string key = ref->ToString();
    if (std::find(tables.begin(), tables.end(), key) == tables.end()) {
      tables.push_back(key);
    }
  }
  return tables;
}

// ---------------------------------------------------------------------------
// Read routing

net::NodeId Controller::PickReadReplica(const Pending& p) {
  std::vector<net::NodeId> candidates;
  for (const auto& [id, info] : replicas_) {
    if (info.state != ReplicaState::kOnline) continue;
    if (!options_.reads_on_master && id == master_ && replicas_.size() > 1) {
      continue;
    }
    candidates.push_back(id);
  }
  if (candidates.empty()) return -1;

  if (options_.granularity == LoadBalanceGranularity::kConnection) {
    // Sticky per client connection until its replica leaves rotation.
    auto it = connection_affinity_.find(p.client);
    if (it != connection_affinity_.end()) {
      for (net::NodeId cand : candidates) {
        if (cand == it->second) return cand;
      }
      connection_affinity_.erase(it);  // Pinned replica is gone: re-pin.
    }
    net::NodeId pick = candidates[round_robin_++ % candidates.size()];
    connection_affinity_[p.client] = pick;
    return pick;
  }

  switch (options_.load_balance) {
    case LoadBalancePolicy::kRoundRobin:
      return candidates[round_robin_++ % candidates.size()];
    case LoadBalancePolicy::kLeastPending: {
      net::NodeId best = candidates[0];
      int64_t best_load = Info(best)->outstanding;
      for (net::NodeId c : candidates) {
        if (Info(c)->outstanding < best_load) {
          best = c;
          best_load = Info(c)->outstanding;
        }
      }
      return best;
    }
    case LoadBalancePolicy::kWeighted: {
      net::NodeId best = candidates[0];
      double best_score =
          static_cast<double>(Info(best)->outstanding + 1) / Info(best)->weight;
      for (net::NodeId c : candidates) {
        double score =
            static_cast<double>(Info(c)->outstanding + 1) / Info(c)->weight;
        if (score < best_score) {
          best = c;
          best_score = score;
        }
      }
      return best;
    }
    case LoadBalancePolicy::kMemoryAware: {
      // Route to the replica already "owning" the transaction's tables so
      // working sets stay in memory (Tashkent+, §3.2).
      net::NodeId best = -1;
      int best_hits = -1;
      for (net::NodeId c : candidates) {
        const auto& affinity = Info(c)->affinity_tables;
        int hits = 0;
        for (const std::string& t : p.tables) {
          if (std::find(affinity.begin(), affinity.end(), t) != affinity.end()) {
            ++hits;
          }
        }
        if (hits > best_hits ||
            (hits == best_hits && best >= 0 &&
             Info(c)->outstanding < Info(best)->outstanding)) {
          best = c;
          best_hits = hits;
        }
      }
      if (best_hits <= 0) {
        // Unowned working set: assign it to the replica with the fewest
        // owned tables to spread memory footprints.
        net::NodeId target = candidates[0];
        for (net::NodeId c : candidates) {
          if (Info(c)->affinity_tables.size() <
              Info(target)->affinity_tables.size()) {
            target = c;
          }
        }
        best = target;
      }
      auto& affinity = Info(best)->affinity_tables;
      for (const std::string& t : p.tables) {
        if (std::find(affinity.begin(), affinity.end(), t) == affinity.end()) {
          affinity.push_back(t);
        }
      }
      return best;
    }
  }
  return candidates[0];
}

void Controller::RouteRead(Pending* p) {
  net::NodeId target = PickReadReplica(*p);
  if (target < 0) {
    ++stats_.unavailable;
    ControllerMetrics::Get().unavailable->Increment();
    TxnResult result;
    result.status = Status::Unavailable("no online replica for reads");
    FinishRequest(p, std::move(result));
    return;
  }
  p->target = target;
  Info(target)->outstanding++;
  ExecTxnMsg msg;
  msg.req_id = p->req_id;
  msg.statements = p->request.statements;
  msg.read_only = true;
  msg.min_version = p->min_version;
  msg.tables = p->tables;
  msg.trace_id = p->request.trace.id;
  dispatcher_->Send(target, kMsgExec, msg, ExecMsgWireSize(msg));
}

// ---------------------------------------------------------------------------
// Write routing

void Controller::RouteWrite(Pending* p) {
  if (options_.require_majority_for_writes && !HaveWriteQuorum()) {
    ++stats_.unavailable;
    ControllerMetrics::Get().unavailable->Increment();
    TxnResult result;
    result.status = Status::NoQuorum(
        "fewer than a majority of replicas reachable; writes refused");
    FinishRequest(p, std::move(result));
    return;
  }
  switch (options_.mode) {
    case ReplicationMode::kMasterSlaveAsync:
    case ReplicationMode::kMasterSlaveSync:
      RouteWriteMasterSlave(p);
      return;
    case ReplicationMode::kMultiMasterStatement:
      RouteWriteStatement(p);
      return;
    case ReplicationMode::kMultiMasterCertification:
      RouteWriteCertification(p);
      return;
  }
}

void Controller::RouteWriteMasterSlave(Pending* p) {
  ReplicaInfo* m = Info(master_);
  if (master_ < 0 || m == nullptr || m->state != ReplicaState::kOnline) {
    ++stats_.unavailable;
    ControllerMetrics::Get().unavailable->Increment();
    TxnResult result;
    result.status = Status::Unavailable("no master available");
    FinishRequest(p, std::move(result));
    return;
  }
  if (options_.ship.backpressure_admission && m->node->ShipBackpressured()) {
    // The master's ship window to some slave is exhausted: admitting more
    // writes would only grow the lag. Defer and re-route shortly; the
    // client-side request timeout bounds how long this can go on.
    ControllerMetrics::Get().backpressure_defers->Increment();
    uint64_t req_id = p->req_id;
    uint64_t epoch = epoch_;
    sim_->Schedule(2 * sim::kMillisecond, [this, req_id, epoch] {
      if (crashed_ || epoch_ != epoch) return;
      auto it = pending_.find(req_id);
      if (it == pending_.end()) return;
      RouteWrite(&it->second);
    });
    return;
  }
  p->target = master_;
  m->outstanding++;
  ExecTxnMsg msg;
  msg.req_id = p->req_id;
  msg.statements = p->request.statements;
  msg.read_only = false;
  msg.tables = p->tables;
  msg.trace_id = p->request.trace.id;
  if (options_.mode == ReplicationMode::kMasterSlaveSync) {
    // Semi-sync degradation: only count slaves that can actually ack.
    // With no live slave, commit 1-safe rather than block forever (the
    // availability/consistency trade the paper discusses in §2.2).
    int online_slaves = 0;
    for (const auto& [id, info] : replicas_) {
      if (id != master_ && info.state == ReplicaState::kOnline) {
        ++online_slaves;
      }
    }
    msg.sync_ack_count = std::min(options_.sync_ack_count, online_slaves);
  }
  dispatcher_->Send(master_, kMsgExec, msg, ExecMsgWireSize(msg));
}

Status Controller::PrepareStatements(Pending* p) {
  p->statements.clear();
  sql::Value now_value = sql::Value::Int(sim_->Now());
  bool unsafe = false;
  std::vector<std::string> reasons;
  for (const std::string& text : p->request.statements) {
    Result<sql::Statement> parsed = sql::Parse(text);
    if (!parsed.ok()) {
      // Opaque statement: cannot rewrite; broadcast raw.
      p->statements.push_back(text);
      continue;
    }
    sql::Statement stmt = parsed.TakeValue();
    sql::DeterminismReport report =
        sql::RewriteForStatementReplication(&stmt, now_value, &rng_);
    if (!report.SafeForStatementReplication()) {
      unsafe = true;
      for (const std::string& r : report.issues) reasons.push_back(r);
    }
    p->statements.push_back(sql::ToSql(stmt));
  }
  if (unsafe) {
    if (options_.nondeterminism == NonDeterminismPolicy::kRefuse) {
      ++stats_.rejected_nondeterministic;
      ControllerMetrics::Get().rejected_nondet->Increment();
      std::string why = "non-deterministic statement refused";
      if (!reasons.empty()) why += ": " + reasons.front();
      return Status::InvalidArgument(why);
    }
    ++stats_.unsafe_broadcasts;  // Divergence risk accepted.
    ControllerMetrics::Get().unsafe_broadcast->Increment();
  }
  return Status::OK();
}

void Controller::RouteWriteStatement(Pending* p) {
  Status prepared = PrepareStatements(p);
  if (!prepared.ok()) {
    TxnResult result;
    result.status = prepared;
    FinishRequest(p, std::move(result));
    return;
  }
  std::vector<net::NodeId> targets;
  for (const auto& [id, info] : replicas_) {
    if (info.state != ReplicaState::kDown) targets.push_back(id);
  }
  int online = 0;
  for (net::NodeId t : targets) {
    if (Info(t)->state == ReplicaState::kOnline) ++online;
  }
  if (online == 0) {
    ++stats_.unavailable;
    ControllerMetrics::Get().unavailable->Increment();
    TxnResult result;
    result.status = Status::Unavailable("no online replica for writes");
    FinishRequest(p, std::move(result));
    return;
  }

  p->order = ++global_version_;
  ReplicationEntry entry;
  entry.version = p->order;
  entry.statements = p->statements;
  entry.use_statements = true;
  entry.origin_commit_us = sim_->Now();
  recovery_log_.Append(entry);
  MirrorAppend(entry);
  p->mirror_seq_after = mirror_seq_;

  p->replies_needed = std::min(options_.statement_quorum, online);
  if (p->replies_needed < 1) p->replies_needed = 1;
  for (net::NodeId t : targets) {
    ExecTxnMsg msg;
    msg.req_id = p->req_id;
    msg.statements = p->statements;
    msg.read_only = false;
    msg.order = p->order;
    msg.tables = p->tables;
    msg.trace_id = p->request.trace.id;
    dispatcher_->Send(t, kMsgExec, msg, ExecMsgWireSize(msg));
  }
}

void Controller::RouteWriteCertification(Pending* p) {
  net::NodeId target = PickReadReplica(*p);  // Balance writes too.
  if (target < 0) {
    ++stats_.unavailable;
    ControllerMetrics::Get().unavailable->Increment();
    TxnResult result;
    result.status = Status::Unavailable("no online replica for writes");
    FinishRequest(p, std::move(result));
    return;
  }
  p->target = target;
  p->begin_version = global_version_;
  Info(target)->outstanding++;
  ExecTxnMsg msg;
  msg.req_id = p->req_id;
  msg.statements = p->request.statements;
  msg.read_only = false;
  msg.hold_commit = true;
  msg.tables = p->tables;
  msg.trace_id = p->request.trace.id;
  dispatcher_->Send(target, kMsgExec, msg, ExecMsgWireSize(msg));
}

// ---------------------------------------------------------------------------
// Replies

void Controller::HandleExecReply(const net::Message& m) {
  if (crashed_) return;
  auto reply = std::any_cast<ExecTxnReply>(m.body);
  auto it = pending_.find(reply.req_id);
  if (it == pending_.end()) return;  // Timed out earlier.
  Pending* p = &it->second;
  if (ReplicaInfo* info = Info(m.from)) {
    if (info->outstanding > 0 && p->target == m.from) info->outstanding--;
    info->applied = std::max(info->applied, reply.replica_applied_version);
  }

  if (!p->is_write) {
    TxnResult result;
    result.status = reply.status;
    result.rows = std::move(reply.rows);
    uint64_t staleness =
        global_version_ > reply.replica_applied_version
            ? global_version_ - reply.replica_applied_version
            : 0;
    result.staleness = staleness;
    max_read_staleness_ = std::max(max_read_staleness_, staleness);
    if (staleness_slo_ != nullptr) {
      staleness_slo_->Observe(sim_->Now(), static_cast<double>(staleness));
    }
    FinishRequest(p, std::move(result));
    return;
  }

  switch (options_.mode) {
    case ReplicationMode::kMasterSlaveAsync:
    case ReplicationMode::kMasterSlaveSync: {
      TxnResult result;
      result.status = reply.status;
      if (reply.status.ok() && reply.committed_version > 0) {
        global_version_ = std::max(global_version_, reply.committed_version);
        ReplicationEntry entry;
        entry.version = reply.committed_version;
        entry.writeset = reply.writeset;
        entry.statements = reply.statements;
        entry.use_statements =
            reply.writeset.empty() || reply.writeset.incomplete;
        entry.origin_commit_us = sim_->Now();
        recovery_log_.Append(entry);
        p->mirror_seq_after = 0;
        MirrorAppend(entry);
        p->mirror_seq_after = mirror_seq_;
        result.version = reply.committed_version;
      } else if (!reply.status.ok()) {
        ++stats_.aborts_execution;
        ControllerMetrics::Get().aborts_exec->Increment();
      }
      FinishRequest(p, std::move(result));
      return;
    }
    case ReplicationMode::kMultiMasterStatement: {
      --p->replies_needed;
      if (p->first_reply.req_id == 0) p->first_reply = reply;
      if (p->replies_needed > 0) return;
      TxnResult result;
      result.status = p->first_reply.status;
      if (result.status.ok()) {
        result.version = p->order;
      } else {
        ++stats_.aborts_execution;
        ControllerMetrics::Get().aborts_exec->Increment();
      }
      FinishRequest(p, std::move(result));
      return;
    }
    case ReplicationMode::kMultiMasterCertification: {
      if (!reply.status.ok()) {
        ++stats_.aborts_execution;
        ControllerMetrics::Get().aborts_exec->Increment();
        TxnResult result;
        result.status = reply.status;
        FinishRequest(p, std::move(result));
        return;
      }
      p->writeset = reply.writeset;
      p->statements = reply.statements;
      // The transaction's snapshot is exactly what the replica had applied
      // when it executed. Not the controller's (possibly newer) global
      // version: in-flight versions the replica had not yet applied are
      // genuine conflicts, and not the arrival-time version either:
      // queueing delay would masquerade as conflicts.
      p->begin_version = reply.replica_applied_version;
      std::vector<std::string> keys = p->writeset.ConflictKeys();
      if (p->writeset.incomplete) {
        ControllerMetrics::Get().aborts_cert_incomplete->Increment();
        FinishTxnMsg abort_msg;
        abort_msg.req_id = p->req_id;
        abort_msg.commit = false;
        dispatcher_->Send(p->target, kMsgFinish, abort_msg, kControlWireBytes);
        TxnResult result;
        result.status = Status::NotSupported(
            "writeset replication needs primary keys on all written tables");
        FinishRequest(p, std::move(result));
        return;
      }
      if (!Certify(p->begin_version, keys)) {
        ++stats_.aborts_certification;
        ControllerMetrics::Get().aborts_cert->Increment();
        obs::FlightRecorder::Global().Record(
            sim_->Now(), id(), obs::FlightEventKind::kCertAbort,
            "origin=" + std::to_string(p->target) +
                " begin_version=" + std::to_string(p->begin_version));
        FinishTxnMsg abort_msg;
        abort_msg.req_id = p->req_id;
        abort_msg.commit = false;
        dispatcher_->Send(p->target, kMsgFinish, abort_msg, kControlWireBytes);
        TxnResult result;
        result.status =
            Status::Conflict("certification failed (first-committer-wins)");
        FinishRequest(p, std::move(result));
        return;
      }
      // Certified: assign the version, distribute, and commit at origin.
      GlobalVersion v = ++global_version_;
      RecordCertified(v, keys);
      ControllerMetrics::Get().certified->Increment();
      ReplicationEntry entry;
      entry.version = v;
      entry.writeset = p->writeset;
      entry.statements = p->statements;
      entry.use_statements = false;
      entry.origin_commit_us = sim_->Now();
      recovery_log_.Append(entry);
      MirrorAppend(entry);
      p->mirror_seq_after = mirror_seq_;
      for (const auto& [id, info] : replicas_) {
        if (id == p->target || info.state == ReplicaState::kDown) continue;
        ship_pipeline_->Enqueue(id, entry);
      }
      p->held = true;
      p->order = v;
      FinishTxnMsg commit_msg;
      commit_msg.req_id = p->req_id;
      commit_msg.commit = true;
      commit_msg.version = v;
      commit_msg.entry = entry;
      dispatcher_->Send(p->target, kMsgFinish, commit_msg,
                        entry.SizeBytes() + 64);
      return;
    }
  }
}

void Controller::HandleFinishReply(const net::Message& m) {
  if (crashed_) return;
  auto reply = std::any_cast<FinishTxnReply>(m.body);
  auto it = pending_.find(reply.req_id);
  if (it == pending_.end()) return;
  Pending* p = &it->second;
  TxnResult result;
  result.status = reply.status;
  if (reply.status.ok()) result.version = p->order;
  FinishRequest(p, std::move(result));
}

bool Controller::Certify(GlobalVersion begin_version,
                         const std::vector<std::string>& keys) const {
  for (const std::string& key : keys) {
    auto it = last_writer_.find(key);
    if (it != last_writer_.end() && it->second > begin_version) return false;
  }
  return true;
}

void Controller::RecordCertified(GlobalVersion version,
                                 const std::vector<std::string>& keys) {
  for (const std::string& key : keys) last_writer_[key] = version;
}

void Controller::HandleProgress(const net::Message& m) {
  if (crashed_) return;
  auto body = std::any_cast<ProgressMsg>(m.body);
  ReplicaInfo* info = Info(m.from);
  if (info == nullptr) return;
  info->applied = std::max(info->applied, body.applied_version);
  if (info->lag_gauge != nullptr) {
    info->lag_gauge->Set(static_cast<int64_t>(
        global_version_ > info->applied ? global_version_ - info->applied
                                        : 0));
  }
  if (info->state == ReplicaState::kResyncing) {
    ReplayBehindGauge(m.from)->Set(static_cast<int64_t>(
        info->resync_target > info->applied
            ? info->resync_target - info->applied
            : 0));
    CheckResyncDone(m.from);
  }
}

// ---------------------------------------------------------------------------
// Completion / timeout

void Controller::FinishRequest(Pending* p, TxnResult result) {
  if (result.status.ok()) {
    if (p->is_write) {
      ++stats_.commits;
      ControllerMetrics::Get().commits->Increment();
      if (commit_slo_ != nullptr) {
        commit_slo_->Observe(sim_->Now(),
                             sim::ToMillis(sim_->Now() - p->arrived));
      }
    }
  }
  ControllerMetrics::Get().total_ms->Observe(
      sim::ToMillis(sim_->Now() - p->arrived));
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Span(
        "controller." + std::to_string(id()),
        result.status.ok() ? "mw.txn" : "mw.txn.failed", p->arrived,
        sim_->Now(), p->request.trace.id);
  }
  sim_->Cancel(p->timer);
  auto client_key = std::make_pair(p->client, p->client_req_id);
  active_client_reqs_.erase(client_key);
  // Remember definitive write outcomes so retries are not re-executed.
  // Retryable aborts (certification conflicts, deadlocks) and
  // availability failures are NOT definitive: the driver's retry is a
  // genuinely new attempt and must re-execute.
  bool retryable = result.status.IsRetryableAbort() ||
                   result.status.code() == StatusCode::kTimeout ||
                   result.status.code() == StatusCode::kUnavailable ||
                   result.status.code() == StatusCode::kNoQuorum;
  if (p->is_write && !retryable) {
    completed_writes_[client_key] = result;
  }
  ClientTxnReply reply;
  reply.req_id = p->client_req_id;
  reply.result = std::move(result);
  net::NodeId client = p->client;
  uint64_t mirror_seq = p->mirror_seq_after;
  pending_.erase(p->req_id);
  ControllerMetrics::Get().pending_txns->Set(
      static_cast<int64_t>(pending_.size()));
  auto send = [this, client, reply]() {
    dispatcher_->Send(client, kMsgClientTxnReply, reply, kRowsReplyWireBytes);
  };
  if (options_.mirror_to >= 0 && options_.mirror_sync && mirror_seq > 0 &&
      mirror_seq > mirror_acks_) {
    // Synchronous controller replication: the commit is not acknowledged
    // until the standby holds it (the measurable §3.2 overhead).
    mirror_waiters_.emplace(mirror_seq, std::move(send));
    return;
  }
  send();
}

void Controller::ArmTimeout(Pending* p) {
  uint64_t req = p->req_id;
  p->timer = sim_->Schedule(options_.request_timeout,
                            [this, req] { OnTimeout(req); });
}

void Controller::OnTimeout(uint64_t req_id) {
  auto it = pending_.find(req_id);
  if (it == pending_.end()) return;
  Pending* p = &it->second;
  ++stats_.timeouts;
  ControllerMetrics::Get().timeouts->Increment();
  if (p->target >= 0) {
    if (ReplicaInfo* info = Info(p->target)) {
      if (info->outstanding > 0) info->outstanding--;
    }
  }
  if (p->order > 0) {
    // The write already owns a slot in the global order and sits in the
    // recovery log: it is durably committed no matter how slowly the
    // replicas answer. Report success instead of an ambiguous timeout.
    TxnResult result;
    result.version = p->order;
    FinishRequest(p, std::move(result));
    return;
  }
  if (p->held) {
    FinishTxnMsg abort_msg;
    abort_msg.req_id = p->req_id;
    abort_msg.commit = false;
    dispatcher_->Send(p->target, kMsgFinish, abort_msg, kControlWireBytes);
  }
  TxnResult result;
  result.status = Status::Timeout("request timed out in middleware");
  FinishRequest(p, std::move(result));
}

// ---------------------------------------------------------------------------
// Failure handling

void Controller::OnReplicaSuspicion(net::NodeId replica, bool suspect) {
  ReplicaInfo* info = Info(replica);
  if (info == nullptr) return;
  if (passive_) {
    // Observe only; actions happen at takeover.
    info->state = suspect ? ReplicaState::kDown : ReplicaState::kOnline;
    return;
  }
  if (suspect) {
    if (info->state == ReplicaState::kDown) return;
    REPLIDB_LOG(Info) << "controller: replica " << replica << " suspected";
    ControllerMetrics::Get().suspicions->Increment();
    obs::FlightRecorder::Global().Record(
        sim_->Now(), id(), obs::FlightEventKind::kSuspicion,
        "replica=" + std::to_string(replica) +
            " applied=" + std::to_string(info->applied));
    if (obs::TracingEnabled()) {
      obs::Tracer::Global().Instant("controller." + std::to_string(id()),
                                    "suspect." + std::to_string(replica),
                                    sim_->Now());
    }
    info->state = ReplicaState::kDown;
    info->outstanding = 0;
    recovery_log_.SetCheckpoint(replica, info->applied);
    if (replica == master_) PromoteNewMaster();
  } else {
    if (info->state != ReplicaState::kDown) return;
    REPLIDB_LOG(Info) << "controller: replica " << replica << " back";
    ControllerMetrics::Get().suspicion_clears->Increment();
    if (obs::TracingEnabled()) {
      obs::Tracer::Global().Instant("controller." + std::to_string(id()),
                                    "unsuspect." + std::to_string(replica),
                                    sim_->Now());
    }
    StartResync(replica);
  }
}

void Controller::PromoteNewMaster() {
  bool master_slave = options_.mode == ReplicationMode::kMasterSlaveAsync ||
                      options_.mode == ReplicationMode::kMasterSlaveSync;
  net::NodeId best = -1;
  GlobalVersion best_applied = 0;
  for (const auto& [id, info] : replicas_) {
    if (info.state != ReplicaState::kOnline) continue;
    if (info.applied >= best_applied) {
      best = id;
      best_applied = info.applied;
    }
  }
  net::NodeId old_master = master_;
  master_ = best;
  if (best < 0) {
    REPLIDB_LOG(Warn) << "controller: no master candidate; writes unavailable";
    return;
  }
  ++stats_.failovers;
  ControllerMetrics::Get().failovers->Increment();
  obs::FlightRecorder::Global().Record(
      sim_->Now(), id(), obs::FlightEventKind::kFailover,
      "promoted=" + std::to_string(best) +
          " was=" + std::to_string(old_master) +
          " applied=" + std::to_string(best_applied));
  obs::FlightRecorder::Global().Record(
      sim_->Now(), id(), obs::FlightEventKind::kViewChange,
      "master change: " + std::to_string(old_master) + " -> " +
          std::to_string(best));
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Instant("controller." + std::to_string(id()),
                                  "failover." + std::to_string(best),
                                  sim_->Now());
  }
  // 1-safe loss accounting: acked versions beyond the most caught-up
  // survivor are gone (§2.2). The failed master still holds them on its
  // disk, so if it ever rejoins it must be re-cloned, not replayed.
  // Only master-slave modes lose the unshipped tail: there the failed
  // master WAS the version authority. In multi-master modes the
  // controller assigns versions and the recovery log holds every one of
  // them, so nothing is lost and the version counter must not regress.
  GlobalVersion survivor = Info(best)->applied;
  if (master_slave && global_version_ > survivor) {
    stats_.lost_transactions += global_version_ - survivor;
    ControllerMetrics::Get().lost_txns->Increment(global_version_ - survivor);
    global_version_ = survivor;
    if (old_master >= 0) divergence_markers_[old_master] = survivor;
  }
  REPLIDB_LOG(Info) << "controller: promoted " << best << " to master (was "
                    << old_master << "), lost "
                    << stats_.lost_transactions << " txns total";
  UpdateSubscriptions();
}

void Controller::UpdateSubscriptions() {
  if (options_.mode == ReplicationMode::kMasterSlaveAsync ||
      options_.mode == ReplicationMode::kMasterSlaveSync) {
    for (auto& [id, info] : replicas_) {
      if (id == master_) {
        std::vector<net::NodeId> subs;
        for (const auto& [other, oinfo] : replicas_) {
          (void)oinfo;
          if (other != id) subs.push_back(other);
        }
        info.node->SetSubscribers(std::move(subs));
      } else {
        info.node->SetSubscribers({});
      }
    }
  }
}

void Controller::StartResync(net::NodeId replica) {
  ReplicaInfo* info = Info(replica);
  if (info == nullptr) return;
  info->state = ReplicaState::kResyncing;
  // Honest checkpoint: what the replica durably applied (its disk), not
  // what the controller believed.
  GlobalVersion from = info->node->applied_version();
  auto marker = divergence_markers_.find(replica);
  if (marker != divergence_markers_.end()) {
    GlobalVersion floor = marker->second;
    divergence_markers_.erase(marker);
    if (from > floor && master_ >= 0) {
      // The rejoiner's disk carries commits the cluster never saw (the
      // 1-safe lost transactions). Forward replay would merge divergent
      // histories under reused version numbers; the only safe recovery is
      // a full re-clone — the "hours of dump/restore" of §4.4.2.
      REPLIDB_LOG(Info) << "controller: replica " << replica
                        << " diverged (applied " << from << " > survivor "
                        << floor << "); full re-clone from " << master_;
      CloneInto(replica, master_);
      return;
    }
  }
  info->applied = from;
  info->resync_target = global_version_;
  ControllerMetrics::Get().resyncs_started->Increment();
  obs::FlightRecorder::Global().Record(
      sim_->Now(), id(), obs::FlightEventKind::kResyncPhase,
      "replay start: replica=" + std::to_string(replica) +
          " from=" + std::to_string(from) +
          " target=" + std::to_string(global_version_));
  ReplayBehindGauge(replica)->Set(static_cast<int64_t>(
      info->resync_target > from ? info->resync_target - from : 0));
  // The rejoiner's credit/window state is void (it restarted): reset the
  // per-peer ship state on every sender that pushes to it.
  ship_pipeline_->ResetPeer(replica);
  if (master_ >= 0 && master_ != replica &&
      (options_.mode == ReplicationMode::kMasterSlaveAsync ||
       options_.mode == ReplicationMode::kMasterSlaveSync)) {
    if (ReplicaInfo* m = Info(master_)) m->node->ResetShipPeer(replica);
  }
  std::vector<ReplicationEntry> entries =
      recovery_log_.Range(from, global_version_);
  for (ReplicationEntry& entry : entries) {
    ship_pipeline_->Enqueue(replica, std::move(entry));
  }
  ship_pipeline_->Flush(replica, ship::FlushReason::kSync);
  CheckResyncDone(replica);
}

void Controller::CheckResyncDone(net::NodeId replica) {
  ReplicaInfo* info = Info(replica);
  if (info == nullptr || info->state != ReplicaState::kResyncing) return;
  if (info->applied < info->resync_target) return;
  info->state = ReplicaState::kOnline;
  ++stats_.resyncs_completed;
  ControllerMetrics::Get().resyncs_completed->Increment();
  obs::FlightRecorder::Global().Record(
      sim_->Now(), id(), obs::FlightEventKind::kResyncPhase,
      "online: replica=" + std::to_string(replica) +
          " applied=" + std::to_string(info->applied));
  ReplayBehindGauge(replica)->Set(0);
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Instant("controller." + std::to_string(id()),
                                  "resynced." + std::to_string(replica),
                                  sim_->Now());
  }
  REPLIDB_LOG(Info) << "controller: replica " << replica << " resynced to v"
                    << info->applied;
  if (master_ < 0) PromoteNewMaster();
  auto cb = add_callbacks_.find(replica);
  if (cb != add_callbacks_.end()) {
    auto fn = std::move(cb->second);
    add_callbacks_.erase(cb);
    fn(Status::OK());
  }
}

bool Controller::HaveWriteQuorum() const {
  size_t up = 0;
  for (const auto& [id, info] : replicas_) {
    (void)id;
    if (info.state != ReplicaState::kDown) ++up;
  }
  return up * 2 > replicas_.size();
}

// ---------------------------------------------------------------------------
// Management operations

void Controller::StartBackup(
    net::NodeId replica, engine::BackupOptions opts,
    std::function<void(Result<engine::BackupImage>)> on_done) {
  uint64_t req = next_req_++;
  backup_waiters_[req] = [on_done = std::move(on_done)](
                             const BackupReplyMsg& reply) {
    if (!reply.status.ok()) {
      on_done(reply.status);
    } else {
      on_done(reply.image);
    }
  };
  BackupMsg msg;
  msg.req_id = req;
  msg.options = opts;
  dispatcher_->Send(replica, kMsgBackup, msg, kAdminWireBytes);
}

void Controller::AddReplica(ReplicaNode* node, net::NodeId donor,
                            std::function<void(Status)> on_done) {
  net::NodeId new_id = node->id();
  ReplicaInfo info;
  info.node = node;
  info.state = ReplicaState::kResyncing;
  replicas_[new_id] = info;
  node->SetController(id());
  detector_->Watch(new_id);
  add_callbacks_[new_id] = std::move(on_done);

  // 1) Hot backup from the donor (with metadata + sequences: a proper
  //    clone; see the C13 bench for what data-only backups break).
  engine::BackupOptions opts;
  opts.include_metadata = true;
  opts.include_sequences = true;
  uint64_t req = next_req_++;
  backup_waiters_[req] = [this, new_id](const BackupReplyMsg& reply) {
    auto fail = [this, new_id](Status status) {
      auto cb = add_callbacks_.find(new_id);
      if (cb != add_callbacks_.end()) {
        auto fn = std::move(cb->second);
        add_callbacks_.erase(cb);
        replicas_.erase(new_id);
        fn(status);
      }
    };
    if (!reply.status.ok()) {
      fail(reply.status);
      return;
    }
    // 2) Restore onto the new replica.
    uint64_t rreq = next_req_++;
    restore_waiters_[rreq] = [this, new_id,
                              fail](const RestoreReplyMsg& rreply) {
      if (!rreply.status.ok()) {
        fail(rreply.status);
        return;
      }
      // 3) Replay the recovery-log tail, then the replica goes online via
      //    the normal resync completion path.
      UpdateSubscriptions();
      StartResync(new_id);
    };
    RestoreMsg rmsg;
    rmsg.req_id = rreq;
    rmsg.image = reply.image;
    rmsg.as_of_version = reply.as_of_version;
    dispatcher_->Send(new_id, kMsgRestore, rmsg, rmsg.image.SizeBytes() + 128);
  };
  BackupMsg msg;
  msg.req_id = req;
  msg.options = opts;
  dispatcher_->Send(donor, kMsgBackup, msg, kAdminWireBytes);
}

void Controller::RollingUpgrade(int target_version,
                                sim::Duration upgrade_duration,
                                std::function<void(Status)> on_done) {
  std::vector<net::NodeId> ids;
  for (const auto& [id, info] : replicas_) {
    (void)info;
    ids.push_back(id);
  }
  UpgradeNext(std::move(ids), target_version, upgrade_duration,
              std::move(on_done));
}

void Controller::UpgradeNext(std::vector<net::NodeId> remaining,
                             int target_version,
                             sim::Duration upgrade_duration,
                             std::function<void(Status)> on_done) {
  // Skip replicas already on the target version.
  while (!remaining.empty()) {
    ReplicaInfo* info = Info(remaining.back());
    if (info == nullptr ||
        info->node->software_version() >= target_version) {
      remaining.pop_back();
      continue;
    }
    break;
  }
  if (remaining.empty()) {
    if (on_done) on_done(Status::OK());
    return;
  }
  net::NodeId target = remaining.back();
  remaining.pop_back();
  ReplicaInfo* info = Info(target);
  REPLIDB_LOG(Info) << "controller: upgrading replica " << target << " to v"
                    << target_version;
  // Planned maintenance: checkpoint + take the node down.
  RemoveReplica(target);
  info->node->Crash();
  sim_->Schedule(upgrade_duration, [this, target, remaining, target_version,
                                    upgrade_duration, on_done] {
    ReplicaInfo* info2 = Info(target);
    if (info2 == nullptr) {
      if (on_done) on_done(Status::NotFound("replica vanished mid-upgrade"));
      return;
    }
    info2->node->set_software_version(target_version);
    info2->node->Restart();
    StartResync(target);
    // Wait for the rejoin to finish, then move to the next node.
    auto poll = std::make_shared<std::function<void()>>();
    *poll = [this, target, remaining, target_version, upgrade_duration,
             on_done, poll] {
      ReplicaInfo* info3 = Info(target);
      if (info3 == nullptr) {
        if (on_done) on_done(Status::NotFound("replica vanished mid-upgrade"));
        return;
      }
      if (info3->state != ReplicaState::kOnline) {
        sim_->Schedule(200 * sim::kMillisecond, *poll);
        return;
      }
      UpgradeNext(remaining, target_version, upgrade_duration, on_done);
    };
    sim_->Schedule(200 * sim::kMillisecond, *poll);
  });
}

void Controller::RemoveReplica(net::NodeId replica) {
  ReplicaInfo* info = Info(replica);
  if (info == nullptr) return;
  info->state = ReplicaState::kDown;
  recovery_log_.SetCheckpoint(replica, info->applied);
  if (replica == master_) PromoteNewMaster();
}

void Controller::RejoinReplica(net::NodeId replica) { StartResync(replica); }

void Controller::CloneInto(net::NodeId target, net::NodeId donor) {
  obs::FlightRecorder::Global().Record(
      sim_->Now(), id(), obs::FlightEventKind::kResyncPhase,
      "clone start: replica=" + std::to_string(target) +
          " donor=" + std::to_string(donor));
  engine::BackupOptions opts;
  opts.include_metadata = true;
  opts.include_sequences = true;
  uint64_t req = next_req_++;
  backup_waiters_[req] = [this, target](const BackupReplyMsg& reply) {
    ReplicaInfo* info = Info(target);
    if (info == nullptr) return;
    if (!reply.status.ok()) {
      info->state = ReplicaState::kDown;  // Retry on the next rejoin.
      return;
    }
    uint64_t rreq = next_req_++;
    restore_waiters_[rreq] = [this, target](const RestoreReplyMsg& rreply) {
      ReplicaInfo* info2 = Info(target);
      if (info2 == nullptr) return;
      if (!rreply.status.ok()) {
        info2->state = ReplicaState::kDown;
        return;
      }
      StartResync(target);
    };
    RestoreMsg rmsg;
    rmsg.req_id = rreq;
    rmsg.image = reply.image;
    rmsg.as_of_version = reply.as_of_version;
    dispatcher_->Send(target, kMsgRestore, rmsg, rmsg.image.SizeBytes() + 128);
  };
  BackupMsg msg;
  msg.req_id = req;
  msg.options = opts;
  dispatcher_->Send(donor, kMsgBackup, msg, kAdminWireBytes);
}

// ---------------------------------------------------------------------------
// Controller SPOF

void Controller::Crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  network_->CrashNode(id());
  ship_pipeline_->Clear();  // Queued pushes and granted credits are void.
  pending_.clear();  // In-flight client txns die; drivers time out.
  active_client_reqs_.clear();
  completed_writes_.clear();  // Soft state: exactly-once dies with it (§3.2).
}

void Controller::Restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  network_->RestartNode(id());
  std::fill(workers_free_.begin(), workers_free_.end(), sim_->Now());
  // Rebuild soft state from the replicas (the costly part the paper notes
  // is "rarely described and almost never evaluated", §3.2).
  global_version_ = 0;
  for (auto& [id2, info] : replicas_) {
    (void)id2;
    info.outstanding = 0;
    info.applied = info.node->applied_version();
    global_version_ = std::max(global_version_, info.applied);
  }
}

}  // namespace replidb::middleware
