#include "middleware/replica_node.h"

#include <algorithm>
#include <set>
#include <string>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace replidb::middleware {

namespace {

/// Replica-side registry handles, resolved once. Histograms aggregate
/// across replicas (per-node state lives in the `replica.<id>.*` gauges).
struct ReplicaMetrics {
  obs::Counter* apply_entries;
  obs::Counter* apply_errors;
  obs::HistogramMetric* apply_queue_wait_ms;
  obs::HistogramMetric* apply_service_ms;
  obs::HistogramMetric* apply_commit_wait_ms;
  obs::HistogramMetric* apply_lag_ms;
  obs::HistogramMetric* exec_queue_wait_ms;
  obs::HistogramMetric* exec_service_ms;

  static ReplicaMetrics& Get() {
    static ReplicaMetrics m;
    return m;
  }

 private:
  ReplicaMetrics() {
    auto& r = obs::MetricsRegistry::Global();
    apply_entries = r.GetCounter("replica.apply.entries");
    apply_errors = r.GetCounter("replica.apply.errors");
    apply_queue_wait_ms = r.GetHistogram("replica.apply.queue_wait_ms");
    apply_service_ms = r.GetHistogram("replica.apply.service_ms");
    apply_commit_wait_ms = r.GetHistogram("replica.apply.commit_wait_ms");
    apply_lag_ms = r.GetHistogram("replica.apply.lag_ms");
    exec_queue_wait_ms = r.GetHistogram("replica.exec.queue_wait_ms");
    exec_service_ms = r.GetHistogram("replica.exec.service_ms");
  }
};

}  // namespace

const char* ReplicationModeName(ReplicationMode mode) {
  switch (mode) {
    case ReplicationMode::kMasterSlaveAsync:
      return "master-slave-async(1-safe)";
    case ReplicationMode::kMasterSlaveSync:
      return "master-slave-sync(2-safe)";
    case ReplicationMode::kMultiMasterStatement:
      return "multi-master-statement";
    case ReplicationMode::kMultiMasterCertification:
      return "multi-master-certification";
  }
  return "?";
}

const char* ConsistencyLevelName(ConsistencyLevel level) {
  switch (level) {
    case ConsistencyLevel::kEventual:
      return "eventual";
    case ConsistencyLevel::kSessionPCSI:
      return "session-pcsi";
    case ConsistencyLevel::kStrongSI:
      return "strong-si";
    case ConsistencyLevel::kOneCopySerializability:
      return "1sr";
  }
  return "?";
}

ReplicaNode::ReplicaNode(sim::Simulator* sim, net::Network* network,
                         net::NodeId node, engine::RdbmsOptions engine_options,
                         ReplicaOptions options, net::SiteId site)
    : sim_(sim),
      network_(network),
      options_(options),
      engine_options_(engine_options) {
  dispatcher_ = std::make_unique<net::Dispatcher>(network, node, site);
  engine_ = std::make_unique<engine::Rdbms>(engine_options_);
  hb_responder_ = std::make_unique<net::HeartbeatResponder>(sim_, dispatcher_.get());
  ka_responder_ = std::make_unique<net::TcpKeepAliveResponder>(dispatcher_.get());

  workers_free_.assign(static_cast<size_t>(options_.capacity), 0);
  apply_workers_free_.assign(static_cast<size_t>(options_.apply_workers), 0);

  track_ = "replica." + std::to_string(node);
  auto& registry = obs::MetricsRegistry::Global();
  backlog_gauge_ = registry.GetGauge("replica." + std::to_string(node) +
                                     ".apply_backlog");
  lag_ms_gauge_ =
      registry.GetGauge("replica." + std::to_string(node) + ".lag_ms");

  dispatcher_->On(kMsgExec, [this](const net::Message& m) { HandleExec(m); });
  dispatcher_->On(kMsgFinish, [this](const net::Message& m) { HandleFinish(m); });
  dispatcher_->On(kMsgApply, [this](const net::Message& m) { HandleApply(m); });
  dispatcher_->On(kMsgShipAck, [this](const net::Message& m) {
    auto body = std::any_cast<ShipAckMsg>(m.body);
    auto it = pending_sync_.find(body.version);
    if (it == pending_sync_.end()) return;
    if (--it->second.acks_needed <= 0) {
      auto on_acked = std::move(it->second.on_acked);
      pending_sync_.erase(it);
      if (on_acked) on_acked();
    }
  });
  dispatcher_->On(kMsgBackup, [this](const net::Message& m) { HandleBackup(m); });
  dispatcher_->On(kMsgRestore, [this](const net::Message& m) { HandleRestore(m); });
  dispatcher_->On(kMsgAuditBarrier, [this](const net::Message& m) {
    if (crashed_) return;
    auto msg = std::any_cast<AuditBarrierMsg>(m.body);
    if (engine_applied_ >= msg.version) {
      SendAuditReport(msg.epoch, m.from);
    } else {
      pending_audits_.emplace(msg.version,
                              std::make_pair(msg.epoch, m.from));
    }
  });

  ship_pipeline_ = std::make_unique<ship::ShipPipeline>(sim_, dispatcher_.get(),
                                                        options_.ship);
  dispatcher_->On(ship::kMsgShipBatch,
                  [this](const net::Message& m) { HandleShipBatch(m); });
  dispatcher_->On(ship::kMsgShipCredit, [this](const net::Message& m) {
    if (crashed_) return;
    auto body = std::any_cast<ship::ShipCreditMsg>(m.body);
    ship_pipeline_->OnCredit(m.from, body.bytes);
  });

  ship_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, options_.ship_interval, [this] {
        if (!crashed_) ShipCommitted();
      });
  ship_task_->Start();
}

ReplicaNode::~ReplicaNode() { ship_task_->Stop(); }

void ReplicaNode::SetSubscribers(std::vector<net::NodeId> subscribers) {
  subscribers_ = std::move(subscribers);
  ship_pipeline_->SetPeers(subscribers_);
}

engine::ExecResult ReplicaNode::AdminExec(const std::string& sql) {
  Result<engine::SessionId> s = engine_->Connect();
  REPLIDB_CHECK(s.ok(), "admin connect failed");
  engine::ExecResult r = engine_->Execute(s.value(), sql);
  engine_->Disconnect(s.value());
  return r;
}

int64_t ReplicaNode::QueueDepth() const {
  int64_t busy = 0;
  for (sim::TimePoint t : workers_free_) {
    if (t > sim_->Now()) ++busy;
  }
  return busy;
}

uint64_t ReplicaNode::unshipped_entries() const {
  return engine_->binlog().size() - binlog_shipped_index_;
}

void ReplicaNode::Crash() {
  if (crashed_) return;
  crashed_ = true;
  ++epoch_;
  network_->CrashNode(id());
  // In-flight and queued work is gone; held transactions die with their
  // sessions; sync-commit waits never resolve (controller times out).
  for (auto& [req, held] : held_) {
    (void)req;
    if (engine_->HasSession(held.session)) engine_->Disconnect(held.session);
  }
  held_.clear();
  pending_sync_.clear();
  // Queued ship batches and unmatured credits die with the process; the
  // senders restore full windows when this node is resubscribed/resynced.
  ship_pipeline_->Clear();
  pending_credits_.clear();
  ordered_buffer_.clear();
  ordered_arrival_.clear();
  ordered_exec_.clear();
  ordered_finish_.clear();
  waiting_reads_.clear();
  pending_audits_.clear();
  backlog_gauge_->Set(0);
  // The durable position after a crash is the larger of:
  //  - engine_applied_: the replication-stream slot reached (slots consumed
  //    by failed/aborted items advance it without an engine commit), and
  //  - the engine's commit_seq: a master's own commits never flow through
  //    the ordered stream but share the same numbering.
  // Using either alone makes the controller replay entries the replica
  // already incorporated — double-applying non-idempotent statements.
  engine_applied_ = std::max(engine_applied_, engine_->last_commit_seq());
  applied_version_ = engine_applied_;
  if (options_.lose_data_on_crash) {
    engine_ = std::make_unique<engine::Rdbms>(engine_options_);
    applied_version_ = 0;
    engine_applied_ = 0;
    binlog_shipped_index_ = 0;
    last_shipped_ = 0;
  }
}

void ReplicaNode::Restart() {
  if (!crashed_) return;
  crashed_ = false;
  ++epoch_;
  network_->RestartNode(id());
  sim::TimePoint now = sim_->Now();
  std::fill(workers_free_.begin(), workers_free_.end(), now);
  std::fill(apply_workers_free_.begin(), apply_workers_free_.end(), now);
  conflict_key_completion_.clear();
  last_ordered_completion_ = now;
}

// ---------------------------------------------------------------------------
// Exec path

void ReplicaNode::HandleExec(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<ExecTxnMsg>(m.body);
  if (msg.order > 0) {
    // Ordered write (statement-mode): enters the replication stream.
    if (msg.order <= applied_version_ || ordered_buffer_.count(msg.order)) {
      return;  // Duplicate.
    }
    ApplyMsg as_apply;
    as_apply.entry.version = msg.order;
    as_apply.entry.statements = msg.statements;
    as_apply.entry.use_statements = true;
    ordered_buffer_[msg.order] = std::move(as_apply);
    ordered_arrival_[msg.order] = sim_->Now();
    ordered_exec_[msg.order] = std::make_pair(msg, m.from);
    DrainOrderedBuffer();
    return;
  }

  if (msg.min_version > applied_version_) {
    // Freshness-gated read: wait until the replication stream catches up
    // to the client's required version (session PCSI / strong SI).
    waiting_reads_.emplace_back(msg, m.from);
    return;
  }
  StartUnorderedExec(msg, m.from);
}

void ReplicaNode::StartUnorderedExec(const ExecTxnMsg& msg, net::NodeId from) {
  ExecTxnReply reply;
  reply.req_id = msg.req_id;
  sim::TimePoint arrival = sim_->Now();
  RunTransaction(msg, from, &reply);
  // A master commit advances engine_applied_ without the ordered stream.
  if (!pending_audits_.empty()) CheckAuditBarriers();
  int64_t cost = TouchCache(msg.tables, reply.cost_us);
  sim::TimePoint start = arrival;
  sim::TimePoint done = ChargeWorker(cost, &start);
  ReplicaMetrics::Get().exec_queue_wait_ms->Observe(
      sim::ToMillis(start - arrival));
  ReplicaMetrics::Get().exec_service_ms->Observe(sim::ToMillis(cost));
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Span(track_,
                               msg.read_only ? "exec.read" : "exec.write",
                               arrival, done, msg.trace_id);
  }
  uint64_t epoch = epoch_;
  bool success_write =
      reply.status.ok() && !msg.read_only && reply.committed_version > 0;
  int sync_count = msg.sync_ack_count;

  auto send_reply = [this, from, reply]() {
    dispatcher_->Send(from, kMsgExecReply, reply,
                      reply.writeset.SizeBytes() + 256);
  };

  sim_->ScheduleAt(done, [this, epoch, send_reply, success_write, sync_count,
                          reply] {
    if (epoch != epoch_ || crashed_) return;
    if (success_write && reply.committed_version > applied_version_) {
      applied_version_ = reply.committed_version;
      SendProgress();
      DrainWaitingReads();
    }
    if (success_write && sync_count > 0 && !subscribers_.empty()) {
      // 2-safe: ship now and withhold the reply until enough slaves acked.
      PendingSync ps;
      ps.acks_needed = std::min<int>(sync_count,
                                     static_cast<int>(subscribers_.size()));
      ps.on_acked = send_reply;
      pending_sync_[reply.committed_version] = std::move(ps);
      ShipCommitted(/*sync_acks_for_version=*/1, reply.committed_version);
      return;
    }
    send_reply();
  });
}

void ReplicaNode::RunTransaction(const ExecTxnMsg& msg, net::NodeId from,
                                 ExecTxnReply* reply) {
  Result<engine::SessionId> sid = engine_->Connect();
  if (!sid.ok()) {
    reply->status = sid.status();
    return;
  }
  engine::SessionId session = sid.value();
  int64_t cost = 0;
  size_t binlog_before = engine_->binlog().size();

  engine::ExecResult begin = engine_->Execute(session, "BEGIN");
  cost += begin.cost_us;
  Status status = begin.status;
  std::vector<sql::Row> last_rows;
  if (status.ok()) {
    for (const std::string& stmt : msg.statements) {
      engine::ExecResult r = engine_->Execute(session, stmt);
      cost += r.cost_us;
      if (!r.ok()) {
        status = r.status;
        break;
      }
      if (!r.rows.empty() && msg.collect_rows) last_rows = std::move(r.rows);
    }
  }

  reply->replica_applied_version = applied_version_;
  reply->rows = std::move(last_rows);

  if (!status.ok()) {
    engine_->Execute(session, "ROLLBACK");
    engine_->Disconnect(session);
    reply->status = status;
    reply->cost_us = cost;
    return;
  }

  if (msg.hold_commit) {
    // Certification mode: expose the writeset, keep the txn open.
    const engine::Writeset* ws = engine_->CurrentWriteset(session);
    HeldTxn held;
    held.session = session;
    if (ws != nullptr) held.writeset = *ws;
    held.from = from;
    reply->writeset = held.writeset;
    reply->cost_us = cost;
    held_[msg.req_id] = std::move(held);
    return;
  }

  const engine::Writeset* ws = engine_->CurrentWriteset(session);
  if (ws != nullptr) reply->writeset = *ws;
  engine::ExecResult commit = engine_->Execute(session, "COMMIT");
  cost += commit.cost_us;
  engine_->Disconnect(session);
  reply->status = commit.status;
  reply->cost_us = cost;
  if (commit.status.ok() && engine_->binlog().size() > binlog_before) {
    reply->committed_version = engine_->last_commit_seq();
    // A master's own commits share the global numbering: keep the ordered
    // stream position in sync so a later demotion (e.g. a controller
    // failover electing a different master) leaves no phantom gap.
    engine_applied_ = std::max(engine_applied_, reply->committed_version);
    for (size_t i = binlog_before; i < engine_->binlog().size(); ++i) {
      for (const std::string& s : engine_->binlog()[i].statements) {
        reply->statements.push_back(s);
      }
    }
  }
}

void ReplicaNode::HandleFinish(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<FinishTxnMsg>(m.body);
  auto it = held_.find(msg.req_id);
  if (it == held_.end()) {
    if (msg.commit) {
      // The held transaction died (killed by a conflicting apply or lost
      // in a crash), but the transaction is certified: it must commit
      // everywhere. Consume the version slot by applying the row images.
      ApplyMsg fallback;
      fallback.entry = msg.entry;
      if (msg.version > engine_applied_ &&
          !ordered_buffer_.count(msg.version)) {
        ordered_buffer_[msg.version] = std::move(fallback);
        ordered_arrival_[msg.version] = sim_->Now();
        DrainOrderedBuffer();
      }
      FinishTxnReply reply;
      reply.req_id = msg.req_id;
      reply.version = msg.version;
      dispatcher_->Send(m.from, kMsgFinishReply, reply, kControlWireBytes);
      return;
    }
    FinishTxnReply reply;
    reply.req_id = msg.req_id;
    reply.status =
        Status::Aborted("held transaction was killed (apply conflict or crash)");
    dispatcher_->Send(m.from, kMsgFinishReply, reply, kControlWireBytes);
    return;
  }
  if (!msg.commit) {
    engine_->Execute(it->second.session, "ROLLBACK");
    engine_->Disconnect(it->second.session);
    held_.erase(it);
    FinishTxnReply reply;
    reply.req_id = msg.req_id;
    dispatcher_->Send(m.from, kMsgFinishReply, reply, kControlWireBytes);
    return;
  }
  // Commit consumes the transaction's slot in the global order.
  ApplyMsg slot;
  slot.entry.version = msg.version;
  slot.skip = true;  // Engine work happens via the held session.
  ordered_buffer_[msg.version] = std::move(slot);
  ordered_arrival_[msg.version] = sim_->Now();
  ordered_finish_[msg.version] = std::make_pair(msg, m.from);
  DrainOrderedBuffer();
}

// ---------------------------------------------------------------------------
// Ordered replication stream

void ReplicaNode::HandleApply(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<ApplyMsg>(m.body);
  EnqueueOrdered(std::move(msg), m.from);
  DrainOrderedBuffer();
}

bool ReplicaNode::EnqueueOrdered(ApplyMsg msg, net::NodeId from) {
  GlobalVersion v = msg.entry.version;
  if (v <= applied_version_ || v <= engine_applied_ ||
      ordered_buffer_.count(v)) {
    // Duplicate (e.g. resync replay overlapping the master's own ship).
    if (msg.ack_requested) {
      dispatcher_->Send(from, kMsgShipAck, ShipAckMsg{v}, kAckWireBytes);
    }
    return false;
  }
  if (msg.ack_requested) {
    // Receipt ack (2-safe is about receipt, not application).
    dispatcher_->Send(from, kMsgShipAck, ShipAckMsg{v}, kAckWireBytes);
    msg.ack_requested = false;
  }
  ordered_buffer_[v] = std::move(msg);
  ordered_arrival_[v] = sim_->Now();
  return true;
}

void ReplicaNode::HandleShipBatch(const net::Message& m) {
  if (crashed_) return;
  Result<std::vector<ship::IngestedEntry>> ingested = ship::IngestBatch(m);
  if (!ingested.ok()) return;  // Corrupt batch: counted, sender re-ships.
  for (ship::IngestedEntry& ie : ingested.value()) {
    ApplyMsg msg;
    msg.entry = std::move(ie.entry);
    msg.ack_requested = ie.ack_requested;
    msg.group_follower = ie.group_follower;
    GlobalVersion v = msg.entry.version;
    if (EnqueueOrdered(std::move(msg), m.from)) {
      // Credit matures when this entry is durably applied.
      pending_credits_.emplace(v, std::make_pair(m.from, ie.credit_bytes));
    } else {
      // Duplicate: the bytes are already accounted for — refund now so
      // the sender's window is not leaked away.
      dispatcher_->Send(m.from, ship::kMsgShipCredit,
                        ship::ShipCreditMsg{ie.credit_bytes},
                        ship::kCreditMsgBytes);
    }
  }
  DrainOrderedBuffer();
}

void ReplicaNode::ReleaseCredits() {
  if (pending_credits_.empty()) return;
  std::map<net::NodeId, int64_t> grants;
  while (!pending_credits_.empty() &&
         pending_credits_.begin()->first <= applied_version_) {
    auto it = pending_credits_.begin();
    grants[it->second.first] += it->second.second;
    pending_credits_.erase(it);
  }
  for (const auto& [to, bytes] : grants) {
    dispatcher_->Send(to, ship::kMsgShipCredit, ship::ShipCreditMsg{bytes},
                      ship::kCreditMsgBytes);
  }
}

void ReplicaNode::DrainOrderedBuffer() {
  while (true) {
    auto it = ordered_buffer_.find(engine_applied_ + 1);
    if (it == ordered_buffer_.end()) break;
    GlobalVersion v = it->first;
    ApplyMsg item = std::move(it->second);
    ordered_buffer_.erase(it);
    engine_applied_ = v;

    int64_t cost = 0;
    std::vector<std::string> conflict_keys;
    ExecTxnReply exec_reply;
    FinishTxnReply finish_reply;
    net::NodeId reply_to = -1;
    bool is_exec = false, is_finish = false;

    auto exec_it = ordered_exec_.find(v);
    auto fin_it = ordered_finish_.find(v);
    if (exec_it != ordered_exec_.end()) {
      // Ordered statement-mode transaction: re-execute here.
      is_exec = true;
      reply_to = exec_it->second.second;
      ExecTxnMsg exec_msg = exec_it->second.first;
      ordered_exec_.erase(exec_it);
      exec_msg.hold_commit = false;
      exec_msg.order = 0;
      RunTransaction(exec_msg, reply_to, &exec_reply);
      exec_reply.req_id = exec_msg.req_id;
      cost = exec_reply.cost_us;
      for (const std::string& k : exec_reply.writeset.ConflictKeys()) {
        conflict_keys.push_back(k);
      }
    } else if (fin_it != ordered_finish_.end()) {
      // Certification commit of a held transaction.
      is_finish = true;
      FinishTxnMsg fmsg = fin_it->second.first;
      reply_to = fin_it->second.second;
      ordered_finish_.erase(fin_it);
      finish_reply.req_id = fmsg.req_id;
      finish_reply.version = v;
      auto hit = held_.find(fmsg.req_id);
      if (hit == held_.end()) {
        // Held txn died after the slot was reserved: apply the certified
        // row images so the data still commits here.
        Result<engine::CommitSeq> applied =
            engine_->ApplyWriteset(fmsg.entry.writeset);
        if (!applied.ok()) {
          ++apply_errors_;
          ReplicaMetrics::Get().apply_errors->Increment();
        }
        cost = ApplyCost(fmsg.entry);
        for (const std::string& k : fmsg.entry.writeset.ConflictKeys()) {
          conflict_keys.push_back(k);
        }
      } else {
        engine::ExecResult commit =
            engine_->Execute(hit->second.session, "COMMIT");
        finish_reply.status = commit.status;
        cost = commit.cost_us;
        for (const std::string& k : hit->second.writeset.ConflictKeys()) {
          conflict_keys.push_back(k);
        }
        engine_->Disconnect(hit->second.session);
        held_.erase(hit);
      }
    } else if (!item.skip) {
      // Replication-stream apply.
      const ReplicationEntry& entry = item.entry;
      if (entry.use_statements || entry.writeset.empty() ||
          entry.writeset.incomplete) {
        Result<engine::SessionId> sid = engine_->Connect();
        if (sid.ok()) {
          engine_->Execute(sid.value(), "BEGIN");
          bool entry_ok = true;
          for (const std::string& stmt : entry.statements) {
            engine::ExecResult r = engine_->Execute(sid.value(), stmt);
            cost += r.cost_us;
            if (!r.ok()) {
              entry_ok = false;
              break;
            }
          }
          if (entry_ok) {
            engine::ExecResult commit = engine_->Execute(sid.value(), "COMMIT");
            cost += commit.cost_us;
          } else {
            // Mirror live execution: a failing transaction rolls back in
            // full everywhere, so deterministic aborts stay convergent.
            engine_->Execute(sid.value(), "ROLLBACK");
            ++apply_errors_;
            ReplicaMetrics::Get().apply_errors->Increment();
          }
          engine_->Disconnect(sid.value());
        }
        // Coarse conflict granularity for statement apply: whole stream.
        conflict_keys.push_back("*");
      } else {
        Result<engine::CommitSeq> applied =
            engine_->ApplyWriteset(entry.writeset);
        if (!applied.ok() && applied.status().IsRetryableAbort() &&
            !held_.empty()) {
          // A local uncommitted (held) transaction blocks the certified
          // apply. The replication stream wins: kill the held transactions
          // whose writesets intersect this entry and retry. The victims
          // would have failed certification against this entry anyway;
          // their clients see a retryable abort.
          std::set<std::string> entry_keys;
          for (const std::string& k : entry.writeset.ConflictKeys()) {
            entry_keys.insert(k);
          }
          for (auto hit = held_.begin(); hit != held_.end();) {
            bool overlaps = false;
            for (const std::string& k : hit->second.writeset.ConflictKeys()) {
              if (entry_keys.count(k)) {
                overlaps = true;
                break;
              }
            }
            if (overlaps) {
              if (engine_->HasSession(hit->second.session)) {
                engine_->Execute(hit->second.session, "ROLLBACK");
                engine_->Disconnect(hit->second.session);
              }
              hit = held_.erase(hit);
            } else {
              ++hit;
            }
          }
          applied = engine_->ApplyWriteset(entry.writeset);
        }
        if (!applied.ok()) {
          ++apply_errors_;
          ReplicaMetrics::Get().apply_errors->Increment();
        }
        cost = ApplyCost(entry, item.group_follower);
        for (const std::string& k : entry.writeset.ConflictKeys()) {
          conflict_keys.push_back(k);
        }
      }
    }

    // The engine now holds exactly the effects of versions <= v: fire any
    // audit barrier this version satisfies before draining further.
    if (!pending_audits_.empty()) CheckAuditBarriers();

    // --- Timing model ---
    sim::TimePoint now = sim_->Now();
    sim::TimePoint arrival = now;
    auto arr_it = ordered_arrival_.find(v);
    if (arr_it != ordered_arrival_.end()) {
      arrival = arr_it->second;
      ordered_arrival_.erase(arr_it);
    }
    auto worker = std::min_element(apply_workers_free_.begin(),
                                   apply_workers_free_.end());
    sim::TimePoint start = std::max(now, *worker);
    for (const std::string& k : conflict_keys) {
      auto cit = conflict_key_completion_.find(k);
      if (cit != conflict_key_completion_.end()) {
        start = std::max(start, cit->second);
      }
      auto star = conflict_key_completion_.find("*");
      if (star != conflict_key_completion_.end()) {
        start = std::max(start, star->second);
      }
    }
    sim::TimePoint finish = start + cost;
    *worker = finish;
    for (const std::string& k : conflict_keys) {
      conflict_key_completion_[k] = finish;
    }
    sim::TimePoint completion = std::max(finish, last_ordered_completion_);
    last_ordered_completion_ = completion;

    // Per-stage breakdown: queue wait (buffered + worker/conflict wait),
    // service (engine/apply cost), commit wait (in-order release).
    ReplicaMetrics& rm = ReplicaMetrics::Get();
    rm.apply_entries->Increment();
    rm.apply_queue_wait_ms->Observe(sim::ToMillis(start - arrival));
    rm.apply_service_ms->Observe(sim::ToMillis(cost));
    rm.apply_commit_wait_ms->Observe(sim::ToMillis(completion - finish));
    if (obs::TracingEnabled()) {
      obs::Tracer& tracer = obs::Tracer::Global();
      if (start > arrival) tracer.Span(track_, "apply.wait", arrival, start, v);
      tracer.Span(track_, "apply.exec", start, finish, v);
      if (completion > finish) {
        tracer.Span(track_, "apply.commit", finish, completion, v);
      }
    }

    int64_t origin_us = item.entry.origin_commit_us;
    uint64_t epoch = epoch_;
    sim_->ScheduleAt(
        completion, [this, epoch, v, origin_us, is_exec, is_finish, exec_reply,
                     finish_reply, reply_to] {
          if (epoch != epoch_ || crashed_) return;
          if (v > applied_version_) {
            applied_version_ = v;
            SendProgress();
            ReleaseCredits();
            DrainWaitingReads();
          }
          if (origin_us > 0 && sim_->Now() >= origin_us) {
            double lag_ms = sim::ToMillis(sim_->Now() - origin_us);
            ReplicaMetrics::Get().apply_lag_ms->Observe(lag_ms);
            lag_ms_gauge_->Set(static_cast<int64_t>(lag_ms));
          }
          if (is_exec && reply_to >= 0) {
            dispatcher_->Send(reply_to, kMsgExecReply, exec_reply,
                              exec_reply.writeset.SizeBytes() + 256);
          }
          if (is_finish && reply_to >= 0) {
            dispatcher_->Send(reply_to, kMsgFinishReply, finish_reply, kControlWireBytes);
          }
        });
  }
  backlog_gauge_->Set(static_cast<int64_t>(ordered_buffer_.size()));
}

// ---------------------------------------------------------------------------
// Shipping (master role)

void ReplicaNode::ShipCommitted(int sync_acks_for_version,
                                GlobalVersion sync_version) {
  (void)sync_acks_for_version;
  const auto& binlog = engine_->binlog();
  bool sync_version_covered = false;
  while (binlog_shipped_index_ < binlog.size()) {
    const engine::BinlogEntry& be = binlog[binlog_shipped_index_];
    ++binlog_shipped_index_;
    ReplicationEntry entry;
    entry.version = be.commit_seq;
    entry.writeset = be.writeset;
    entry.statements = be.statements;
    // Prefer row images when they are complete; fall back to statements
    // (DDL, PK-less tables).
    entry.use_statements =
        be.writeset.empty() || be.writeset.incomplete;
    entry.origin_commit_us =
        be.commit_time_micros > 0 ? be.commit_time_micros : sim_->Now();
    last_shipped_ = std::max<GlobalVersion>(last_shipped_, entry.version);
    if (entry.version == sync_version) sync_version_covered = true;
    bool ack = entry.version == sync_version;
    for (net::NodeId sub : subscribers_) {
      ship_pipeline_->Enqueue(sub, entry, ack);
    }
  }
  // 2-safe commit whose entry already left with the periodic shipper:
  // re-send it with an ack request (receivers dedup but still ack).
  if (sync_version > 0 && !sync_version_covered) {
    for (size_t i = binlog.size(); i-- > 0;) {
      const engine::BinlogEntry& be = binlog[i];
      if (be.commit_seq != sync_version) continue;
      ReplicationEntry entry;
      entry.version = be.commit_seq;
      entry.writeset = be.writeset;
      entry.statements = be.statements;
      entry.use_statements = be.writeset.empty() || be.writeset.incomplete;
      entry.origin_commit_us =
          be.commit_time_micros > 0 ? be.commit_time_micros : sim_->Now();
      for (net::NodeId sub : subscribers_) {
        ship_pipeline_->Enqueue(sub, entry, /*ack_requested=*/true);
      }
      break;
    }
  }
  // A 2-safe commit must not sit behind the batching latency cap: the
  // client is waiting on the receipt acks.
  if (sync_version > 0) ship_pipeline_->FlushAll(ship::FlushReason::kSync);
}

void ReplicaNode::CheckAuditBarriers() {
  while (!pending_audits_.empty() &&
         pending_audits_.begin()->first <= engine_applied_) {
    auto it = pending_audits_.begin();
    SendAuditReport(it->second.first, it->second.second);
    pending_audits_.erase(it);
  }
}

void ReplicaNode::SendAuditReport(uint64_t audit_epoch, net::NodeId to) {
  AuditReportMsg report;
  report.epoch = audit_epoch;
  report.captured_version = engine_applied_;
  report.last_applied_seq = engine_->last_commit_seq();
  report.digests = engine_->TableDigests();
  dispatcher_->Send(to, kMsgAuditReport, report,
                    static_cast<int64_t>(64 + 24 * report.digests.size()));
}

void ReplicaNode::SendProgress() {
  if (controller_ >= 0) {
    dispatcher_->Send(controller_, kMsgProgress,
                      ProgressMsg{applied_version_}, kAckWireBytes);
  }
}

void ReplicaNode::DrainWaitingReads() {
  if (waiting_reads_.empty()) return;
  std::vector<std::pair<ExecTxnMsg, net::NodeId>> still_waiting;
  std::vector<std::pair<ExecTxnMsg, net::NodeId>> ready;
  for (auto& [msg, from] : waiting_reads_) {
    if (msg.min_version <= applied_version_) {
      ready.emplace_back(std::move(msg), from);
    } else {
      still_waiting.emplace_back(std::move(msg), from);
    }
  }
  waiting_reads_ = std::move(still_waiting);
  for (auto& [msg, from] : ready) StartUnorderedExec(msg, from);
}

int64_t ReplicaNode::TouchCache(const std::vector<std::string>& tables,
                                int64_t cost) {
  if (options_.hot_table_capacity <= 0 || tables.empty()) return cost;
  bool all_hot = true;
  for (const std::string& t : tables) {
    auto it = std::find(hot_tables_.begin(), hot_tables_.end(), t);
    if (it == hot_tables_.end()) {
      all_hot = false;
      hot_tables_.insert(hot_tables_.begin(), t);
      if (hot_tables_.size() >
          static_cast<size_t>(options_.hot_table_capacity)) {
        hot_tables_.pop_back();  // Evict the coldest table.
      }
    } else {
      // Move to front (most recently used).
      hot_tables_.erase(it);
      hot_tables_.insert(hot_tables_.begin(), t);
    }
  }
  return all_hot
             ? cost
             : static_cast<int64_t>(static_cast<double>(cost) *
                                    options_.cache_miss_penalty);
}

sim::TimePoint ReplicaNode::ChargeWorker(int64_t cost_us,
                                         sim::TimePoint* start_out) {
  auto worker = std::min_element(workers_free_.begin(), workers_free_.end());
  sim::TimePoint start = std::max(sim_->Now(), *worker);
  if (start_out != nullptr) *start_out = start;
  *worker = start + cost_us;
  return *worker;
}

int64_t ReplicaNode::ApplyCost(const ReplicationEntry& entry,
                               bool group_follower) const {
  // Followers of a shipped batch share one group fsync: only the fixed
  // per-commit cost is amortized, the per-op work is not.
  double base = options_.apply_base_us *
                (group_follower ? options_.apply_group_factor : 1.0);
  return static_cast<int64_t>(
      base +
      options_.apply_per_op_us * static_cast<double>(entry.writeset.ops.size()));
}

// ---------------------------------------------------------------------------
// Backup / restore endpoints

void ReplicaNode::HandleBackup(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<BackupMsg>(m.body);
  Result<engine::BackupImage> image = engine_->Backup(msg.options);
  BackupReplyMsg reply;
  reply.req_id = msg.req_id;
  reply.as_of_version = applied_version_;
  if (!image.ok()) {
    reply.status = image.status();
  } else {
    reply.image = image.TakeValue();
  }
  // A backup occupies a worker for size/throughput — degrading concurrent
  // queries on this replica (§4.4.1).
  int64_t cost = static_cast<int64_t>(
      static_cast<double>(reply.image.SizeBytes()) /
      options_.backup_bytes_per_sec * sim::kSecond);
  sim::TimePoint done = ChargeWorker(cost);
  uint64_t epoch = epoch_;
  net::NodeId from = m.from;
  sim_->ScheduleAt(done, [this, epoch, from, reply] {
    if (epoch != epoch_ || crashed_) return;
    dispatcher_->Send(from, kMsgBackupReply, reply,
                      reply.image.SizeBytes() + 128);
  });
}

void ReplicaNode::HandleRestore(const net::Message& m) {
  if (crashed_) return;
  auto msg = std::any_cast<RestoreMsg>(m.body);
  RestoreReplyMsg reply;
  reply.req_id = msg.req_id;
  reply.status = engine_->Restore(msg.image);
  if (reply.status.ok()) {
    applied_version_ = msg.as_of_version;
    engine_applied_ = msg.as_of_version;
    binlog_shipped_index_ = 0;
    last_shipped_ = msg.as_of_version;
    if (!pending_audits_.empty()) CheckAuditBarriers();
  }
  int64_t cost = static_cast<int64_t>(
      static_cast<double>(msg.image.SizeBytes()) /
      options_.backup_bytes_per_sec * sim::kSecond);
  sim::TimePoint done = ChargeWorker(cost);
  uint64_t epoch = epoch_;
  net::NodeId from = m.from;
  sim_->ScheduleAt(done, [this, epoch, from, reply] {
    if (epoch != epoch_ || crashed_) return;
    dispatcher_->Send(from, kMsgRestoreReply, reply, kAdminWireBytes);
  });
}

void ReplicaNode::MarkSetupComplete() {
  GlobalVersion v = engine_->last_commit_seq();
  applied_version_ = v;
  engine_applied_ = v;
  last_shipped_ = v;
  binlog_shipped_index_ = engine_->binlog().size();
}

void ReplicaNode::SetController(net::NodeId controller) {
  controller_ = controller;
}

}  // namespace replidb::middleware
