#ifndef REPLIDB_MIDDLEWARE_WIRE_REGISTRY_H_
#define REPLIDB_MIDDLEWARE_WIRE_REGISTRY_H_

#include <string>
#include <utility>
#include <vector>

#include "middleware/messages.h"

namespace replidb::middleware {

/// \brief Central inventory of every wire-message struct in messages.h.
///
/// Statement-vs-writeset experiments live or die on every message being
/// accounted for in the wire model; a struct that ships without a registry
/// entry is a message whose size/codec treatment silently drifts from the
/// rest. replicheck's `codec-registry` rule parses messages.h for struct
/// declarations and fails if any is missing from this list, so adding a
/// message forces a conscious decision about its tag and size model here.
///
/// X(StructType, type_tag) — the macro references both the type and the
/// tag, so a renamed struct or tag breaks the build, not just the lint.
#define REPLIDB_WIRE_MESSAGES(X)            \
  X(ExecTxnMsg, kMsgExec)                   \
  X(ExecTxnReply, kMsgExecReply)            \
  X(ClientTxnMsg, kMsgClientTxn)            \
  X(ClientTxnReply, kMsgClientTxnReply)     \
  X(MirrorMsg, kMsgMirror)                  \
  X(MirrorAckMsg, kMsgMirrorAck)            \
  X(FinishTxnMsg, kMsgFinish)               \
  X(FinishTxnReply, kMsgFinishReply)        \
  X(ApplyMsg, kMsgApply)                    \
  X(ShipAckMsg, kMsgShipAck)                \
  X(ProgressMsg, kMsgProgress)              \
  X(BackupMsg, kMsgBackup)                  \
  X(BackupReplyMsg, kMsgBackupReply)        \
  X(RestoreMsg, kMsgRestore)                \
  X(RestoreReplyMsg, kMsgRestoreReply)      \
  X(AuditBarrierMsg, kMsgAuditBarrier)      \
  X(AuditReportMsg, kMsgAuditReport)

/// (struct name, wire tag) for every registered message, in registry order.
inline std::vector<std::pair<std::string, std::string>> WireMessageRegistry() {
  std::vector<std::pair<std::string, std::string>> out;
#define REPLIDB_WIRE_ENTRY(type, tag) \
  out.emplace_back(#type, tag);       \
  static_assert(sizeof(type) > 0, "registered message must be a complete type");
  REPLIDB_WIRE_MESSAGES(REPLIDB_WIRE_ENTRY)
#undef REPLIDB_WIRE_ENTRY
  return out;
}

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_WIRE_REGISTRY_H_
