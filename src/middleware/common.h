#ifndef REPLIDB_MIDDLEWARE_COMMON_H_
#define REPLIDB_MIDDLEWARE_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/types.h"
#include "obs/trace.h"
#include "sim/simulator.h"

namespace replidb::middleware {

/// Monotonic cluster-wide commit version assigned by the controller.
/// Version k is the k-th replicated write transaction in global order.
using GlobalVersion = uint64_t;

/// \brief A client transaction: the unit of work submitted to the
/// middleware. Statements execute in order inside one database transaction
/// on whichever replica(s) the replication strategy selects.
struct TxnRequest {
  std::vector<std::string> statements;
  /// Client's declared intent (JDBC setReadOnly analogue). The controller
  /// additionally parses statements, so a mislabeled read is still routed
  /// as a write.
  bool read_only = false;
  /// Data-partition hint for partitioned deployments (Figure 2): workload
  /// generators set it from the partition key; drivers pick the partition
  /// controller with it.
  int64_t partition_hint = 0;
  /// Observability identity: assigned by the client driver when tracing is
  /// enabled and carried through every layer the transaction touches.
  obs::TraceContext trace;
};

/// \brief Outcome returned to the client driver.
struct TxnResult {
  Status status;
  /// Global version this write committed at (0 for reads/aborts).
  GlobalVersion version = 0;
  /// How stale the replica serving a read was, in versions behind the
  /// cluster head (0 = fully fresh). Reads only.
  uint64_t staleness = 0;
  /// Rows returned by the last SELECT in the transaction, if any.
  std::vector<sql::Row> rows;
  /// End-to-end latency, filled by the client driver.
  sim::Duration latency = 0;
  /// Retries the driver performed before this outcome.
  int retries = 0;
};

/// Replication strategies (paper §2 and §4.3.2).
enum class ReplicationMode {
  /// Figure 1/3: one master executes writes; binlog ships to slaves
  /// asynchronously after the client is acked (1-safe).
  kMasterSlaveAsync,
  /// 2-safe: the master's commit ack is withheld until `sync_ack_count`
  /// slaves confirmed receipt of the log entries.
  kMasterSlaveSync,
  /// Multi-master statement replication: every write transaction's
  /// statements are broadcast in total order and re-executed on every
  /// replica (§4.3.2 "statement replication").
  kMultiMasterStatement,
  /// Multi-master transaction (writeset) replication: execute once,
  /// certify against concurrent writesets (SI, first-committer-wins),
  /// apply row images on the other replicas.
  kMultiMasterCertification,
};

const char* ReplicationModeName(ReplicationMode mode);

/// Cluster-level consistency guarantees offered to clients (§3.3).
enum class ConsistencyLevel {
  /// Read any replica regardless of lag (loose/eventual freshness).
  kEventual,
  /// Prefix-consistent session SI: a session never reads a state older
  /// than its own last observed version (read-your-writes).
  kSessionPCSI,
  /// 1-copy strong SI: reads only on fully caught-up replicas.
  kStrongSI,
  /// 1-copy serializability: strong routing + serializable execution.
  kOneCopySerializability,
};

const char* ConsistencyLevelName(ConsistencyLevel level);

/// Policy for write statements that are unsafe to broadcast (§4.3.2).
enum class NonDeterminismPolicy {
  /// Refuse the transaction with an error.
  kRefuse,
  /// Broadcast anyway — replicas may diverge (what naive middleware does;
  /// the divergence is measurable via content hashes).
  kBroadcastAnyway,
};

/// \brief One entry of the cluster-wide replication stream: everything
/// needed to re-apply a transaction on a replica, in global order.
struct ReplicationEntry {
  GlobalVersion version = 0;
  /// Writeset (row images) — empty or incomplete for some transactions.
  engine::Writeset writeset;
  /// Statement texts (for statement-mode apply and for the recovery log).
  std::vector<std::string> statements;
  bool use_statements = false;  ///< Apply by re-execution vs row images.
  /// Virtual time the entry was committed/ordered at its origin. Replica
  /// apply lag in virtual milliseconds is measured against this.
  int64_t origin_commit_us = 0;

  int64_t SizeBytes() const {
    int64_t bytes = 64 + writeset.SizeBytes();
    for (const std::string& s : statements) {
      bytes += static_cast<int64_t>(s.size());
    }
    return bytes;
  }
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_COMMON_H_
