#ifndef REPLIDB_MIDDLEWARE_MESSAGES_H_
#define REPLIDB_MIDDLEWARE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/rdbms.h"
#include "engine/types.h"
#include "middleware/common.h"

namespace replidb::middleware {

/// Wire messages between controller and replica nodes. Bodies travel in
/// net::Message::body as std::any (everything is in-process); sizes are
/// modelled explicitly for the bandwidth cost.

/// Message type tags.
inline constexpr char kMsgExec[] = "rep.exec";
inline constexpr char kMsgExecReply[] = "rep.exec.r";
inline constexpr char kMsgFinish[] = "rep.finish";
inline constexpr char kMsgFinishReply[] = "rep.finish.r";
inline constexpr char kMsgApply[] = "rep.apply";
inline constexpr char kMsgShipAck[] = "rep.ship.ack";
inline constexpr char kMsgProgress[] = "rep.progress";
inline constexpr char kMsgBackup[] = "rep.backup";
inline constexpr char kMsgBackupReply[] = "rep.backup.r";
inline constexpr char kMsgRestore[] = "rep.restore";
inline constexpr char kMsgRestoreReply[] = "rep.restore.r";
inline constexpr char kMsgAuditBarrier[] = "audit.barrier";
inline constexpr char kMsgAuditReport[] = "audit.report";

/// Modeled wire sizes of the fixed-shape frames below. replicheck's
/// send-size rule rejects a bare integer literal as a Send size (a
/// literal is how a size silently stops tracking its message); fixed-size
/// frames pass one of these named constants, variable-size ones compute
/// their size from the payload.
inline constexpr int64_t kAckWireBytes = 48;        ///< Bare version/seq acks.
inline constexpr int64_t kControlWireBytes = 64;    ///< Finish/abort/barrier frames.
inline constexpr int64_t kAdminWireBytes = 128;     ///< Backup/restore admin + error replies.
inline constexpr int64_t kRowsReplyWireBytes = 256; ///< Client replies carrying rows.

/// Controller -> replica: execute a transaction.
struct ExecTxnMsg {
  uint64_t req_id = 0;
  std::vector<std::string> statements;
  bool read_only = false;
  /// Ordered execution slot for statement-mode writes; 0 = unordered.
  GlobalVersion order = 0;
  /// Keep the transaction open and return its writeset without committing
  /// (certification mode). A later FinishTxnMsg decides the outcome.
  bool hold_commit = false;
  /// 2-safe support: how many ship-acks the replica must collect before
  /// replying success for this write (0 = reply at local commit, 1-safe).
  int sync_ack_count = 0;
  /// Collect rows from the last SELECT into the reply.
  bool collect_rows = true;
  /// Freshness gate: the replica defers execution until its applied
  /// version reaches this (session PCSI / strong SI routing).
  GlobalVersion min_version = 0;
  /// Tables this transaction touches (memory-aware cache model).
  std::vector<std::string> tables;
  /// Trace identity of the originating client transaction (0 = untraced).
  uint64_t trace_id = 0;
};

/// Wire size of a statement-carrying request: per-statement SQL text plus
/// a fixed header. Used by every exec/client-txn sender so request sizes
/// track the actual SQL instead of a hard-coded constant.
inline int64_t StatementsWireSize(const std::vector<std::string>& statements) {
  int64_t bytes = 64;
  for (const std::string& s : statements) {
    bytes += static_cast<int64_t>(s.size()) + 4;
  }
  return bytes;
}

inline int64_t ExecMsgWireSize(const ExecTxnMsg& m) {
  int64_t bytes = StatementsWireSize(m.statements);
  for (const std::string& t : m.tables) {
    bytes += static_cast<int64_t>(t.size()) + 4;
  }
  return bytes;
}

/// Client driver -> controller: run a transaction.
struct ClientTxnMsg {
  uint64_t req_id = 0;
  TxnRequest request;
  /// The session's last observed version (read-your-writes).
  GlobalVersion last_seen_version = 0;
};

/// Controller -> client driver.
struct ClientTxnReply {
  uint64_t req_id = 0;
  TxnResult result;
};

inline constexpr char kMsgClientTxn[] = "mw.txn";
inline constexpr char kMsgClientTxnReply[] = "mw.txn.r";

/// Active controller -> standby controller: durable-state mirroring
/// (recovery-log entry + version counter). §3.2: replicating the
/// stateful middleware costs "extra communication and synchronization".
struct MirrorMsg {
  uint64_t seq = 0;
  ReplicationEntry entry;
  GlobalVersion global_version = 0;
};

struct MirrorAckMsg {
  uint64_t seq = 0;
};

inline constexpr char kMsgMirror[] = "mw.mirror";
inline constexpr char kMsgMirrorAck[] = "mw.mirror.ack";

/// Replica -> controller: transaction outcome.
struct ExecTxnReply {
  uint64_t req_id = 0;
  Status status;
  engine::Writeset writeset;          ///< Captured writes (hold or commit).
  std::vector<std::string> statements; ///< Binlogged statement texts.
  /// Versions this replica assigned while committing (master-slave mode:
  /// the master is the version authority). 0 when hold_commit or read.
  GlobalVersion committed_version = 0;
  uint64_t replica_applied_version = 0;  ///< Freshness at execution time.
  std::vector<sql::Row> rows;            ///< Last SELECT's rows.
  int64_t cost_us = 0;
};

/// Controller -> replica: resolve a held transaction (certification).
struct FinishTxnMsg {
  uint64_t req_id = 0;   ///< Matches the ExecTxnMsg that held the txn.
  bool commit = false;
  GlobalVersion version = 0;  ///< Slot in the global order when committing.
  /// The certified entry (commit only): if the origin's held transaction
  /// died meanwhile (killed by a conflicting apply, crash recovery), the
  /// origin applies these row images instead — a certified transaction
  /// must commit everywhere.
  ReplicationEntry entry;
};

struct FinishTxnReply {
  uint64_t req_id = 0;
  Status status;
  GlobalVersion version = 0;
};

/// Replication stream item (master ship, certified apply, or resync
/// replay). `skip` marks the origin replica's own slot.
struct ApplyMsg {
  ReplicationEntry entry;
  bool skip = false;
  /// If >0, the receiver acks receipt to the sender (2-safe shipping).
  bool ack_requested = false;
  /// Entry arrived after the first of a shipped batch: its durable apply
  /// shares the batch's group fsync (ReplicaOptions::apply_group_factor).
  bool group_follower = false;
};

struct ShipAckMsg {
  GlobalVersion version = 0;
};

/// Replica -> controller freshness beacon.
struct ProgressMsg {
  GlobalVersion applied_version = 0;
};

struct BackupMsg {
  uint64_t req_id = 0;
  engine::BackupOptions options;
};

struct BackupReplyMsg {
  uint64_t req_id = 0;
  Status status;
  engine::BackupImage image;
  GlobalVersion as_of_version = 0;
};

struct RestoreMsg {
  uint64_t req_id = 0;
  engine::BackupImage image;
  GlobalVersion as_of_version = 0;
};

struct RestoreReplyMsg {
  uint64_t req_id = 0;
  Status status;
};

/// Controller -> replica: content-audit barrier for `epoch`. The replica
/// answers once its replication stream reaches `version`.
struct AuditBarrierMsg {
  uint64_t epoch = 0;
  GlobalVersion version = 0;
};

/// Replica -> controller: per-table incremental digests captured when the
/// barrier passed. `captured_version` is the replica's actual stream
/// position at capture — it can exceed the barrier version if the replica
/// was already ahead, and the auditor only compares equal positions.
struct AuditReportMsg {
  uint64_t epoch = 0;
  GlobalVersion captured_version = 0;
  engine::CommitSeq last_applied_seq = 0;
  /// "database.table" -> digest.
  std::vector<std::pair<std::string, uint64_t>> digests;
};

}  // namespace replidb::middleware

#endif  // REPLIDB_MIDDLEWARE_MESSAGES_H_
