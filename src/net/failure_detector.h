#ifndef REPLIDB_NET_FAILURE_DETECTOR_H_
#define REPLIDB_NET_FAILURE_DETECTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/dispatcher.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::net {

/// Invoked when a watched node's suspicion state changes.
/// `suspect == true` means the detector now believes the node failed.
using SuspicionCallback = std::function<void(NodeId node, bool suspect)>;

/// \brief Abstract failure detector interface (paper §4.3.4).
class FailureDetector {
 public:
  virtual ~FailureDetector() = default;

  /// Starts monitoring `target`.
  virtual void Watch(NodeId target) = 0;
  /// Stops monitoring `target`.
  virtual void Unwatch(NodeId target) = 0;
  /// Current belief about `target`.
  virtual bool IsSuspect(NodeId target) const = 0;
  /// Registers the state-change callback (single subscriber).
  virtual void OnSuspicionChange(SuspicionCallback cb) = 0;
};

/// \brief Echoes heartbeat pings so a node can be monitored.
///
/// `response_delay` models server load: a busy node answers late, which a
/// too-aggressive heartbeat detector misreads as a failure — the
/// false-positive phenomenon the paper warns about for short timeouts.
class HeartbeatResponder {
 public:
  HeartbeatResponder(sim::Simulator* sim, Dispatcher* dispatcher);

  void set_response_delay(sim::Duration d) { response_delay_ = d; }
  sim::Duration response_delay() const { return response_delay_; }

 private:
  sim::Simulator* sim_;
  Dispatcher* dispatcher_;
  sim::Duration response_delay_ = 0;
};

/// \brief Options for the application-level heartbeat detector.
struct HeartbeatOptions {
  sim::Duration period = 500 * sim::kMillisecond;  ///< Ping interval.
  sim::Duration timeout = 500 * sim::kMillisecond; ///< Per-ping reply deadline.
  int miss_threshold = 3;  ///< Consecutive misses before declaring failure.
};

/// \brief Application-level heartbeat failure detector (paper's recommended
/// mechanism: "built-in heartbeat for reliable and timely detection").
///
/// Pings every watched node each period; a node missing `miss_threshold`
/// consecutive replies is declared suspect. A later reply clears the
/// suspicion (failback detection). Detection latency is roughly
/// `period * miss_threshold + timeout`, versus minutes-to-hours for TCP
/// keep-alive defaults.
class HeartbeatDetector : public FailureDetector {
 public:
  HeartbeatDetector(sim::Simulator* sim, Dispatcher* dispatcher,
                    HeartbeatOptions options = {});
  ~HeartbeatDetector() override;

  void Watch(NodeId target) override;
  void Unwatch(NodeId target) override;
  bool IsSuspect(NodeId target) const override;
  void OnSuspicionChange(SuspicionCallback cb) override { callback_ = std::move(cb); }

  /// Count of suspicions raised against nodes that were actually up
  /// (needs the omniscient network view; used by benches/tests).
  uint64_t false_positives() const { return false_positives_; }

 private:
  struct Watched {
    int consecutive_misses = 0;
    bool suspect = false;
    uint64_t ping_seq = 0;
    uint64_t acked_seq = 0;
  };

  void Tick();
  void HandleAck(const Message& m);
  void SetSuspect(NodeId target, bool suspect);

  sim::Simulator* sim_;
  Dispatcher* dispatcher_;
  HeartbeatOptions options_;
  SuspicionCallback callback_;
  // Iterated to emit pings: must be ordered, or probe order (and thus
  // the whole simulated message schedule) would depend on hash order.
  std::map<NodeId, Watched> watched_;
  std::unique_ptr<sim::PeriodicTask> ticker_;
  uint64_t false_positives_ = 0;
};

/// \brief Options mirroring the OS TCP keep-alive knobs the paper calls
/// "system-wide settings" nobody tunes. Defaults follow Linux:
/// 2 h idle, 75 s probe interval, 9 probes.
struct TcpKeepAliveOptions {
  sim::Duration idle = 2 * sim::kHour;
  sim::Duration probe_interval = 75 * sim::kSecond;
  int probe_count = 9;
};

/// \brief TCP keep-alive style detector (paper §4.3.4.2).
///
/// Models a driver that relies on the kernel: silence from the peer is only
/// investigated after `idle`, then `probe_count` probes at `probe_interval`
/// must all fail. Application traffic acked by the peer resets the idle
/// clock. With defaults, detecting a crashed peer takes
/// 2 h + 9 * 75 s — the "unacceptably long failure detection (30 seconds to
/// 2 hours)" range from the paper when the knobs are swept.
class TcpKeepAliveDetector : public FailureDetector {
 public:
  TcpKeepAliveDetector(sim::Simulator* sim, Dispatcher* dispatcher,
                       TcpKeepAliveOptions options = {});
  ~TcpKeepAliveDetector() override;

  void Watch(NodeId target) override;
  void Unwatch(NodeId target) override;
  bool IsSuspect(NodeId target) const override;
  void OnSuspicionChange(SuspicionCallback cb) override { callback_ = std::move(cb); }

  /// Informs the detector that application traffic from `target` arrived
  /// (resets the idle clock, as real TCP does).
  void NoteActivity(NodeId target);

 private:
  struct ConnState {
    sim::TimePoint last_activity = 0;
    int probes_outstanding = 0;
    bool probing = false;
    bool suspect = false;
    uint64_t probe_seq = 0;
    sim::EventId timer = 0;
  };

  void ArmIdleTimer(NodeId target);
  void StartProbing(NodeId target);
  void SendProbe(NodeId target);
  void HandleAck(const Message& m);
  void SetSuspect(NodeId target, bool suspect);

  sim::Simulator* sim_;
  Dispatcher* dispatcher_;
  TcpKeepAliveOptions options_;
  SuspicionCallback callback_;
  // Iterated to emit keepalive probes: ordered for the same reason as
  // watched_ above.
  std::map<NodeId, ConnState> conns_;
};

/// \brief Responder half of the TCP keep-alive model: the peer's kernel
/// answers probes as long as the host is up (no application involvement).
class TcpKeepAliveResponder {
 public:
  explicit TcpKeepAliveResponder(Dispatcher* dispatcher);

 private:
  Dispatcher* dispatcher_;
};

}  // namespace replidb::net

#endif  // REPLIDB_NET_FAILURE_DETECTOR_H_
