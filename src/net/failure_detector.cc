#include "net/failure_detector.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace replidb::net {
namespace {
/// Modeled size of a heartbeat/keepalive probe or ack frame.
constexpr int64_t kProbeWireBytes = 64;
}  // namespace

namespace {
struct PingBody {
  uint64_t seq = 0;
};
struct AckBody {
  uint64_t seq = 0;
};

constexpr char kHbPing[] = "hb.ping";
constexpr char kHbAck[] = "hb.ack";
constexpr char kKaProbe[] = "ka.probe";
constexpr char kKaAck[] = "ka.ack";

/// Shared suspicion bookkeeping for both detector flavors: counters plus a
/// trace instant so Perfetto shows the suspicion timeline per watcher.
void RecordSuspicion(const char* detector, NodeId watcher, NodeId target,
                     bool suspect, sim::Simulator* sim) {
  auto& r = obs::MetricsRegistry::Global();
  static obs::Counter* raised = r.GetCounter("net.detector.suspicions_raised");
  static obs::Counter* cleared =
      r.GetCounter("net.detector.suspicions_cleared");
  (suspect ? raised : cleared)->Increment();
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Instant(
        "detector." + std::to_string(watcher),
        std::string(detector) + (suspect ? ".suspect." : ".clear.") +
            std::to_string(target),
        sim->Now());
  }
}
}  // namespace

// ---------------------------------------------------------------------------
// HeartbeatResponder

HeartbeatResponder::HeartbeatResponder(sim::Simulator* sim,
                                       Dispatcher* dispatcher)
    : sim_(sim), dispatcher_(dispatcher) {
  dispatcher_->On(kHbPing, [this](const Message& m) {
    auto body = std::any_cast<PingBody>(m.body);
    NodeId from = m.from;
    uint64_t seq = body.seq;
    if (response_delay_ > 0) {
      sim_->Schedule(response_delay_, [this, from, seq] {
        dispatcher_->Send(from, kHbAck, AckBody{seq}, kProbeWireBytes);
      });
    } else {
      dispatcher_->Send(from, kHbAck, AckBody{seq}, kProbeWireBytes);
    }
  });
}

// ---------------------------------------------------------------------------
// HeartbeatDetector

HeartbeatDetector::HeartbeatDetector(sim::Simulator* sim,
                                     Dispatcher* dispatcher,
                                     HeartbeatOptions options)
    : sim_(sim), dispatcher_(dispatcher), options_(options) {
  dispatcher_->On(kHbAck, [this](const Message& m) { HandleAck(m); });
  ticker_ = std::make_unique<sim::PeriodicTask>(sim_, options_.period,
                                                [this] { Tick(); });
  ticker_->StartAfter(0);
}

HeartbeatDetector::~HeartbeatDetector() { ticker_->Stop(); }

void HeartbeatDetector::Watch(NodeId target) { watched_.emplace(target, Watched{}); }

void HeartbeatDetector::Unwatch(NodeId target) { watched_.erase(target); }

bool HeartbeatDetector::IsSuspect(NodeId target) const {
  auto it = watched_.find(target);
  return it != watched_.end() && it->second.suspect;
}

void HeartbeatDetector::Tick() {
  for (auto& [target, st] : watched_) {
    uint64_t seq = ++st.ping_seq;
    dispatcher_->Send(target, kHbPing, PingBody{seq}, kProbeWireBytes);
    NodeId t = target;
    sim_->Schedule(options_.timeout, [this, t, seq] {
      auto it = watched_.find(t);
      if (it == watched_.end()) return;
      Watched& w = it->second;
      if (w.acked_seq >= seq) return;  // Answered in time.
      ++w.consecutive_misses;
      if (w.consecutive_misses >= options_.miss_threshold && !w.suspect) {
        SetSuspect(t, true);
      }
    });
  }
}

void HeartbeatDetector::HandleAck(const Message& m) {
  auto it = watched_.find(m.from);
  if (it == watched_.end()) return;
  auto body = std::any_cast<AckBody>(m.body);
  Watched& w = it->second;
  if (body.seq > w.acked_seq) w.acked_seq = body.seq;
  w.consecutive_misses = 0;
  if (w.suspect) SetSuspect(m.from, false);
}

void HeartbeatDetector::SetSuspect(NodeId target, bool suspect) {
  auto it = watched_.find(target);
  if (it == watched_.end()) return;
  it->second.suspect = suspect;
  if (suspect &&
      dispatcher_->network()->Reachable(dispatcher_->node(), target)) {
    ++false_positives_;  // Target was actually reachable: load misread.
    obs::MetricsRegistry::Global()
        .GetCounter("net.detector.false_positives")
        ->Increment();
  }
  RecordSuspicion("hb", dispatcher_->node(), target, suspect, sim_);
  if (callback_) callback_(target, suspect);
}

// ---------------------------------------------------------------------------
// TcpKeepAliveResponder

TcpKeepAliveResponder::TcpKeepAliveResponder(Dispatcher* dispatcher)
    : dispatcher_(dispatcher) {
  // The kernel answers instantly regardless of application load.
  dispatcher_->On(kKaProbe, [this](const Message& m) {
    auto body = std::any_cast<PingBody>(m.body);
    dispatcher_->Send(m.from, kKaAck, AckBody{body.seq}, kProbeWireBytes);
  });
}

// ---------------------------------------------------------------------------
// TcpKeepAliveDetector

TcpKeepAliveDetector::TcpKeepAliveDetector(sim::Simulator* sim,
                                           Dispatcher* dispatcher,
                                           TcpKeepAliveOptions options)
    : sim_(sim), dispatcher_(dispatcher), options_(options) {
  dispatcher_->On(kKaAck, [this](const Message& m) { HandleAck(m); });
}

TcpKeepAliveDetector::~TcpKeepAliveDetector() {
  for (auto& [id, st] : conns_) {
    (void)id;
    if (st.timer) sim_->Cancel(st.timer);
  }
}

void TcpKeepAliveDetector::Watch(NodeId target) {
  ConnState st;
  st.last_activity = sim_->Now();
  conns_[target] = st;
  ArmIdleTimer(target);
}

void TcpKeepAliveDetector::Unwatch(NodeId target) {
  auto it = conns_.find(target);
  if (it != conns_.end()) {
    if (it->second.timer) sim_->Cancel(it->second.timer);
    conns_.erase(it);
  }
}

bool TcpKeepAliveDetector::IsSuspect(NodeId target) const {
  auto it = conns_.find(target);
  return it != conns_.end() && it->second.suspect;
}

void TcpKeepAliveDetector::NoteActivity(NodeId target) {
  auto it = conns_.find(target);
  if (it == conns_.end()) return;
  ConnState& st = it->second;
  st.last_activity = sim_->Now();
  if (st.probing) {
    st.probing = false;
    st.probes_outstanding = 0;
    if (st.timer) sim_->Cancel(st.timer);
    ArmIdleTimer(target);
  }
  if (st.suspect) SetSuspect(target, false);
}

void TcpKeepAliveDetector::ArmIdleTimer(NodeId target) {
  auto it = conns_.find(target);
  if (it == conns_.end()) return;
  ConnState& st = it->second;
  sim::TimePoint deadline = st.last_activity + options_.idle;
  st.timer = sim_->ScheduleAt(deadline, [this, target] {
    auto it2 = conns_.find(target);
    if (it2 == conns_.end()) return;
    ConnState& s = it2->second;
    if (sim_->Now() - s.last_activity >= options_.idle) {
      StartProbing(target);
    } else {
      ArmIdleTimer(target);  // Activity happened meanwhile; re-arm.
    }
  });
}

void TcpKeepAliveDetector::StartProbing(NodeId target) {
  auto it = conns_.find(target);
  if (it == conns_.end()) return;
  it->second.probing = true;
  it->second.probes_outstanding = 0;
  SendProbe(target);
}

void TcpKeepAliveDetector::SendProbe(NodeId target) {
  auto it = conns_.find(target);
  if (it == conns_.end()) return;
  ConnState& st = it->second;
  if (!st.probing) return;
  ++st.probes_outstanding;
  uint64_t seq = ++st.probe_seq;
  dispatcher_->Send(target, kKaProbe, PingBody{seq}, kProbeWireBytes);
  st.timer = sim_->Schedule(options_.probe_interval, [this, target] {
    auto it2 = conns_.find(target);
    if (it2 == conns_.end()) return;
    ConnState& s = it2->second;
    if (!s.probing) return;  // An ack arrived and reset us.
    if (s.probes_outstanding >= options_.probe_count) {
      s.probing = false;
      if (!s.suspect) SetSuspect(target, true);
    } else {
      SendProbe(target);
    }
  });
}

void TcpKeepAliveDetector::HandleAck(const Message& m) { NoteActivity(m.from); }

void TcpKeepAliveDetector::SetSuspect(NodeId target, bool suspect) {
  auto it = conns_.find(target);
  if (it == conns_.end()) return;
  it->second.suspect = suspect;
  if (!suspect) {
    it->second.last_activity = sim_->Now();
    ArmIdleTimer(target);
  }
  RecordSuspicion("ka", dispatcher_->node(), target, suspect, sim_);
  if (callback_) callback_(target, suspect);
}

}  // namespace replidb::net
