#include "net/network.h"

#include <utility>

#include "common/logging.h"

namespace replidb::net {

Network::Network(sim::Simulator* sim, NetworkOptions options)
    : sim_(sim), options_(options), rng_(options.seed) {}

void Network::RegisterNode(NodeId node, MessageHandler handler, SiteId site) {
  NodeState st;
  st.handler = std::move(handler);
  st.site = site;
  st.up = true;
  nodes_[node] = std::move(st);
}

void Network::SetHandler(NodeId node, MessageHandler handler) {
  auto it = nodes_.find(node);
  REPLIDB_CHECK(it != nodes_.end(), "SetHandler on unknown node");
  it->second.handler = std::move(handler);
}

void Network::CrashNode(NodeId node) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.up = false;
}

void Network::RestartNode(NodeId node) {
  auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.up = true;
}

bool Network::IsUp(NodeId node) const {
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.up;
}

SiteId Network::SiteOf(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? -1 : it->second.site;
}

void Network::Partition(const std::vector<std::vector<NodeId>>& groups) {
  partition_group_.clear();
  int g = 0;
  for (const auto& group : groups) {
    for (NodeId n : group) partition_group_[n] = g;
    ++g;
  }
  // Unlisted nodes land in one extra implicit group.
  for (const auto& [id, st] : nodes_) {
    (void)st;
    if (!partition_group_.count(id)) partition_group_[id] = g;
  }
}

void Network::HealPartition() { partition_group_.clear(); }

bool Network::SamePartitionSide(NodeId a, NodeId b) const {
  if (partition_group_.empty()) return true;
  auto ia = partition_group_.find(a);
  auto ib = partition_group_.find(b);
  int ga = ia == partition_group_.end() ? -1 : ia->second;
  int gb = ib == partition_group_.end() ? -1 : ib->second;
  return ga == gb;
}

bool Network::Reachable(NodeId a, NodeId b) const {
  return IsUp(a) && IsUp(b) && SamePartitionSide(a, b);
}

sim::Duration Network::BaseDelay(NodeId a, NodeId b, int64_t size_bytes) const {
  bool wan = SiteOf(a) != SiteOf(b);
  sim::Duration latency = wan ? options_.wan_latency : options_.lan_latency;
  double bw = wan ? options_.wan_bandwidth_bps : options_.lan_bandwidth_bps;
  sim::Duration transmission = static_cast<sim::Duration>(
      static_cast<double>(size_bytes) / bw * sim::kSecond);
  return latency + transmission;
}

bool Network::Send(NodeId from, NodeId to, std::string type, std::any body,
                   int64_t size_bytes) {
  REPLIDB_CHECK(size_bytes > 0,
                "Network::Send requires a positive payload size");
  ++messages_sent_;
  auto from_it = nodes_.find(from);
  if (from_it == nodes_.end() || !from_it->second.up) return false;
  auto to_it = nodes_.find(to);
  if (to_it == nodes_.end()) return false;

  bool wan = from_it->second.site != to_it->second.site;
  double loss = wan ? options_.wan_loss_probability : options_.lan_loss_probability;
  if (loss > 0.0 && rng_.Chance(loss)) return true;  // Silently lost.
  if (!SamePartitionSide(from, to)) return true;     // Dropped at the cut.

  sim::Duration jitter_range = wan ? options_.wan_jitter : options_.lan_jitter;
  sim::Duration jitter =
      jitter_range > 0
          ? static_cast<sim::Duration>(rng_.Uniform(
                static_cast<uint64_t>(jitter_range) + 1))
          : 0;
  sim::Duration delay = BaseDelay(from, to, size_bytes) + jitter;

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.type = std::move(type);
  msg.body = std::move(body);
  msg.size_bytes = size_bytes;

  sim_->Schedule(delay, [this, msg = std::move(msg)]() mutable {
    auto it = nodes_.find(msg.to);
    // Crash or partition that happened while in flight drops the message.
    if (it == nodes_.end() || !it->second.up) return;
    if (!SamePartitionSide(msg.from, msg.to)) return;
    ++messages_delivered_;
    bytes_delivered_ += static_cast<uint64_t>(msg.size_bytes);
    it->second.handler(msg);
  });
  return true;
}

}  // namespace replidb::net
