#ifndef REPLIDB_NET_NETWORK_H_
#define REPLIDB_NET_NETWORK_H_

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include "common/hashing.h"
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace replidb::net {

/// Identifies a process (client, middleware node, database replica).
using NodeId = int32_t;
/// Identifies a datacenter/site for WAN topologies.
using SiteId = int32_t;

/// \brief A message in flight. `body` is a std::any holding the
/// protocol-specific struct; `type` is a tag for dispatch and tracing.
/// `size_bytes` is the payload's wire size and must be positive: every
/// sender states what it puts on the wire (codec-derived for the data
/// plane, small explicit sizes for the control plane) so bandwidth
/// modelling is meaningful.
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  std::string type;
  std::any body;
  int64_t size_bytes = 0;
};

/// Per-message delivery handler installed by each node.
using MessageHandler = std::function<void(const Message&)>;

/// \brief Options controlling link behaviour.
struct NetworkOptions {
  /// One-way latency between nodes in the same site.
  sim::Duration lan_latency = 200 * sim::kMicrosecond;
  /// One-way latency between nodes in different sites (WAN).
  sim::Duration wan_latency = 50 * sim::kMillisecond;
  /// Uniform jitter added to each delivery, in [0, jitter].
  sim::Duration lan_jitter = 50 * sim::kMicrosecond;
  sim::Duration wan_jitter = 10 * sim::kMillisecond;
  /// Link bandwidth in bytes/second; adds size/bandwidth transmission time.
  double lan_bandwidth_bps = 125e6;  // ~1 Gbps
  double wan_bandwidth_bps = 12.5e6; // ~100 Mbps
  /// Probability a message is silently dropped (reliable protocols retry).
  double lan_loss_probability = 0.0;
  double wan_loss_probability = 0.0;
  uint64_t seed = 42;
};

/// \brief Simulated shared-nothing cluster network.
///
/// Provides unreliable datagram delivery with topology-aware latency,
/// bandwidth, loss, node crash semantics, and administratively injected
/// partitions. Reliable channels and failure detectors are layered on top
/// (see channel.h / failure_detector.h).
class Network {
 public:
  Network(sim::Simulator* sim, NetworkOptions options = {});
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  sim::Simulator* simulator() { return sim_; }
  const NetworkOptions& options() const { return options_; }

  /// Registers a node at a site with its delivery handler. A node must be
  /// registered before it can send or receive.
  void RegisterNode(NodeId node, MessageHandler handler, SiteId site = 0);

  /// Replaces a node's handler (e.g. after a software upgrade/restart).
  void SetHandler(NodeId node, MessageHandler handler);

  /// Marks a node crashed: it neither receives nor (if it tries) sends.
  void CrashNode(NodeId node);

  /// Brings a crashed node back; its handler starts receiving again.
  void RestartNode(NodeId node);

  bool IsUp(NodeId node) const;
  SiteId SiteOf(NodeId node) const;

  /// Sends a datagram. `size_bytes` must be positive (checked): callers
  /// state the true wire size of the payload. Returns false if the sender
  /// itself is down or unknown; delivery failures (crash, loss, partition)
  /// are silent, as on a real network.
  bool Send(NodeId from, NodeId to, std::string type, std::any body,
            int64_t size_bytes);

  /// Splits the network into groups; messages across groups are dropped.
  /// Nodes not listed fall into an implicit final group.
  void Partition(const std::vector<std::vector<NodeId>>& groups);

  /// Removes any partition: full connectivity restored.
  void HealPartition();

  bool HasPartition() const { return !partition_group_.empty(); }

  /// True if a datagram from `a` could currently reach `b` (both up, same
  /// partition side). Used by tests and by omniscient oracles in benches.
  bool Reachable(NodeId a, NodeId b) const;

  /// One-way delivery delay that would be charged right now for a message
  /// of `size_bytes` from `a` to `b` (before jitter). Exposed for models.
  sim::Duration BaseDelay(NodeId a, NodeId b, int64_t size_bytes) const;

  /// Total messages handed to Send (including dropped ones).
  uint64_t messages_sent() const { return messages_sent_; }
  /// Total messages actually delivered to a handler.
  uint64_t messages_delivered() const { return messages_delivered_; }
  /// Total bytes actually delivered.
  uint64_t bytes_delivered() const { return bytes_delivered_; }

 private:
  struct NodeState {
    MessageHandler handler;
    SiteId site = 0;
    bool up = true;
  };

  bool SamePartitionSide(NodeId a, NodeId b) const;

  sim::Simulator* sim_;
  NetworkOptions options_;
  Rng rng_;
  // Iterated when computing partition groups: ordered so group
  // assignment of unlisted nodes never depends on hash order.
  std::map<NodeId, NodeState> nodes_;
  HashMap<NodeId, int> partition_group_;  // empty = no partition
  uint64_t messages_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  uint64_t bytes_delivered_ = 0;
};

}  // namespace replidb::net

#endif  // REPLIDB_NET_NETWORK_H_
