#ifndef REPLIDB_NET_DISPATCHER_H_
#define REPLIDB_NET_DISPATCHER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/hashing.h"
#include "net/network.h"

namespace replidb::net {

/// \brief Per-node message dispatcher.
///
/// A node usually hosts several protocol participants (heartbeat responder,
/// replication endpoint, group-communication member...). Dispatcher is
/// installed as the node's single Network handler and routes messages by
/// their `type` prefix. Unmatched messages are dropped (counted).
class Dispatcher {
 public:
  /// Creates and registers the dispatcher as `node`'s handler.
  Dispatcher(Network* network, NodeId node, SiteId site = 0)
      : network_(network), node_(node) {
    network_->RegisterNode(
        node, [this](const Message& m) { Dispatch(m); }, site);
  }
  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  NodeId node() const { return node_; }
  Network* network() { return network_; }

  /// Subscribes a handler to messages of `type`. Multiple components may
  /// subscribe to the same type (e.g. two failure detectors sharing one
  /// node); each receives every matching message and filters what it
  /// does not own.
  void On(const std::string& type, MessageHandler handler) {
    handlers_[type].push_back(std::move(handler));
  }

  /// Removes all handlers for a type (e.g. component being upgraded).
  void Off(const std::string& type) { handlers_.erase(type); }

  /// Sends from this node. `size_bytes` is the payload's wire size and
  /// must be positive (see Network::Send).
  bool Send(NodeId to, std::string type, std::any body,
            int64_t size_bytes) {
    return network_->Send(node_, to, std::move(type), std::move(body),
                          size_bytes);
  }

  uint64_t unmatched_messages() const { return unmatched_; }

 private:
  void Dispatch(const Message& m) {
    auto it = handlers_.find(m.type);
    if (it == handlers_.end() || it->second.empty()) {
      ++unmatched_;
      return;
    }
    // Copy: a handler may (un)subscribe while running.
    std::vector<MessageHandler> handlers = it->second;
    for (MessageHandler& h : handlers) h(m);
  }

  Network* network_;
  NodeId node_;
  HashMap<std::string, std::vector<MessageHandler>> handlers_;
  uint64_t unmatched_ = 0;
};

}  // namespace replidb::net

#endif  // REPLIDB_NET_DISPATCHER_H_
