#ifndef REPLIDB_CLIENT_CONNECTION_POOL_H_
#define REPLIDB_CLIENT_CONNECTION_POOL_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::client {

/// \brief Application-server connection pool model (paper §4.3.3).
///
/// The paper: "Connection pools are usually a major issue for failback. At
/// failure time, all connections to a bad replica will be reassigned to
/// another replica [...] When the replica recovers, it requires the
/// application to reconnect explicitly; this can only happen if the client
/// connection pool recycles aggressively its connections, but this defeats
/// the advantages of a connection pool."
///
/// This class models exactly that: a fixed-size pool of logical
/// connections, each pinned to an endpoint (replica). On endpoint failure
/// the pool reassigns its connections to the survivors; on failback the
/// pinned connections stay where they are unless `recycle_after` forces
/// churn. `Imbalance()` quantifies the §4.3.3 pathology — and why the
/// paper asks for endpoint information in standard database APIs.
class ConnectionPool {
 public:
  struct Options {
    int size = 20;
    /// Lifetime after which a connection is closed and re-opened against
    /// the (possibly rebalanced) endpoint set. 0 = never recycle: the
    /// default pool behaviour the paper describes.
    sim::Duration recycle_after = 0;
    uint64_t seed = 5;
  };

  ConnectionPool(sim::Simulator* sim, std::vector<net::NodeId> endpoints,
                 Options options);

  /// Borrows a connection (round-robin over the pool); returns the
  /// endpoint it is pinned to. Checked-out accounting is not modelled —
  /// the interesting state is the pinning.
  net::NodeId Acquire();

  /// Marks `endpoint` failed: every connection pinned to it immediately
  /// re-opens against a surviving endpoint (failover works fine).
  void MarkFailed(net::NodeId endpoint);

  /// Marks `endpoint` recovered. NOTE: with recycle_after == 0 nothing
  /// rebalances — existing connections keep their pins. This no-op is the
  /// point (§4.3.3).
  void MarkRecovered(net::NodeId endpoint);

  /// Connections currently pinned to each live endpoint.
  std::map<net::NodeId, int> Distribution() const;

  /// Max/ideal pin ratio across live endpoints (1.0 = perfectly even;
  /// after a failback without recycling this stays ~N/(N-1) forever).
  double Imbalance() const;

  /// Total reconnects performed (the cost of aggressive recycling).
  uint64_t reconnects() const { return reconnects_; }

  const std::vector<net::NodeId>& live_endpoints() const { return live_; }

 private:
  struct Connection {
    net::NodeId endpoint = -1;
    sim::TimePoint opened_at = 0;
  };

  net::NodeId PickEndpoint();
  void Reopen(Connection* conn);

  sim::Simulator* sim_;
  Options options_;
  Rng rng_;
  std::vector<net::NodeId> all_;
  std::vector<net::NodeId> live_;
  std::vector<Connection> connections_;
  size_t next_ = 0;
  size_t rr_ = 0;
  uint64_t reconnects_ = 0;
};

}  // namespace replidb::client

#endif  // REPLIDB_CLIENT_CONNECTION_POOL_H_
