#include "client/driver.h"

#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace replidb::client {

using middleware::ClientTxnMsg;
using middleware::ClientTxnReply;
using middleware::kMsgClientTxn;
using middleware::kMsgClientTxnReply;
using middleware::TxnResult;

namespace {

/// Registry handles resolved once; updates after that are atomic bumps.
struct DriverMetrics {
  obs::Counter* submitted;
  obs::Counter* completed;
  obs::Counter* retries;
  obs::Counter* gave_up;
  obs::HistogramMetric* txn_ms;

  static DriverMetrics& Get() {
    static DriverMetrics m;
    return m;
  }

 private:
  DriverMetrics() {
    auto& r = obs::MetricsRegistry::Global();
    submitted = r.GetCounter("client.driver.submitted");
    completed = r.GetCounter("client.driver.completed");
    retries = r.GetCounter("client.driver.retries");
    gave_up = r.GetCounter("client.driver.gave_up");
    txn_ms = r.GetHistogram("client.txn.total_ms");
  }
};

}  // namespace

Driver::Driver(sim::Simulator* sim, net::Network* network, net::NodeId node,
               std::vector<net::NodeId> controllers, DriverOptions options,
               net::SiteId site)
    : sim_(sim), controllers_(std::move(controllers)), options_(options) {
  last_seen_.assign(controllers_.size(), 0);
  dispatcher_ = std::make_unique<net::Dispatcher>(network, node, site);
  dispatcher_->On(kMsgClientTxnReply,
                  [this](const net::Message& m) { HandleReply(m); });
}

void Driver::Submit(middleware::TxnRequest request, Callback cb) {
  ++submitted_;
  DriverMetrics::Get().submitted->Increment();
  if (obs::TracingEnabled() && request.trace.id == 0) {
    request.trace.id = obs::NextTraceId();
  }
  uint64_t req_id = next_req_++;
  Outstanding out;
  out.request = std::move(request);
  out.cb = std::move(cb);
  out.started = sim_->Now();
  outstanding_.emplace(req_id, std::move(out));
  Send(req_id);
}

void Driver::Send(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;
  ++out.attempts;

  // Partitioned deployments: pick the partition's controller. On retry
  // after unavailability, rotate (multipool failover, §4.3.3).
  size_t base = controllers_.size() > 1
                    ? static_cast<size_t>(out.request.partition_hint) %
                          controllers_.size()
                    : 0;
  if (options_.controllers_are_replicas) base = preferred_controller_;
  size_t pick = (base + static_cast<size_t>(out.attempts - 1)) %
                controllers_.size();
  if (controllers_.size() > 1 && out.request.partition_hint >= 0 &&
      !options_.controllers_are_replicas) {
    // Partition routing is sticky: the hint owns the data. Only rotate
    // for hint-free requests or replicated controllers.
    pick = base;
  }

  out.controller_index = pick;
  ClientTxnMsg msg;
  msg.req_id = req_id;
  msg.request = out.request;
  msg.last_seen_version = last_seen_[pick];
  dispatcher_->Send(controllers_[pick], kMsgClientTxn, msg,
                    middleware::StatementsWireSize(msg.request.statements));

  out.timer = sim_->Schedule(options_.request_timeout,
                             [this, req_id] { OnTimeout(req_id); });
}

void Driver::HandleReply(const net::Message& m) {
  auto reply = std::any_cast<ClientTxnReply>(m.body);
  auto it = outstanding_.find(reply.req_id);
  if (it == outstanding_.end()) return;  // Timed-out request, late reply.
  Outstanding& out = it->second;
  sim_->Cancel(out.timer);

  const TxnResult& r = reply.result;
  bool retryable = r.status.IsRetryableAbort() ||
                   r.status.code() == StatusCode::kUnavailable ||
                   r.status.code() == StatusCode::kTimeout ||
                   r.status.code() == StatusCode::kNoQuorum;
  if (!r.status.ok() && retryable && out.attempts <= options_.max_retries) {
    Retry(reply.req_id, &out);
    return;
  }

  TxnResult final_result = r;
  final_result.latency = sim_->Now() - out.started;
  final_result.retries = out.attempts - 1;
  if (r.status.ok() && r.version > last_seen_[out.controller_index]) {
    last_seen_[out.controller_index] = r.version;
  }
  if (r.status.ok()) preferred_controller_ = out.controller_index;
  ++completed_;
  if (!r.status.ok()) ++gave_up_;
  DriverMetrics::Get().completed->Increment();
  if (!r.status.ok()) DriverMetrics::Get().gave_up->Increment();
  DriverMetrics::Get().txn_ms->Observe(sim::ToMillis(final_result.latency));
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Span(
        "client." + std::to_string(id()),
        out.request.read_only ? "txn.read" : "txn.write", out.started,
        sim_->Now(), out.request.trace.id);
  }
  Callback cb = std::move(out.cb);
  outstanding_.erase(it);
  cb(final_result);
}

void Driver::OnTimeout(uint64_t req_id) {
  auto it = outstanding_.find(req_id);
  if (it == outstanding_.end()) return;
  Outstanding& out = it->second;
  if (out.attempts <= options_.max_retries) {
    Retry(req_id, &out);
    return;
  }
  TxnResult result;
  result.status = Status::Timeout("driver gave up after retries");
  result.latency = sim_->Now() - out.started;
  result.retries = out.attempts - 1;
  ++completed_;
  ++gave_up_;
  DriverMetrics::Get().completed->Increment();
  DriverMetrics::Get().gave_up->Increment();
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Span("client." + std::to_string(id()),
                               "txn.gave_up", out.started, sim_->Now(),
                               out.request.trace.id);
  }
  Callback cb = std::move(out.cb);
  outstanding_.erase(it);
  cb(result);
}

void Driver::Retry(uint64_t req_id, Outstanding* out) {
  (void)out;
  DriverMetrics::Get().retries->Increment();
  sim_->Schedule(options_.retry_backoff, [this, req_id] { Send(req_id); });
}

}  // namespace replidb::client
