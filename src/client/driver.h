#ifndef REPLIDB_CLIENT_DRIVER_H_
#define REPLIDB_CLIENT_DRIVER_H_

#include <functional>
#include <memory>
#include "common/hashing.h"
#include <vector>

#include "middleware/messages.h"
#include "net/dispatcher.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::client {

/// \brief Options for the client-side driver (the replacement JDBC/ODBC
/// driver of Figure 7).
struct DriverOptions {
  /// Driver-level timeout before a request is considered lost. Drivers in
  /// practice inherit much worse OS defaults (§4.3.4.2); this one is sane.
  sim::Duration request_timeout = 5 * sim::kSecond;
  /// Automatic retries on retryable outcomes (certification conflicts,
  /// deadlock victims, failover-window unavailability). Retries are what
  /// make failover "transparent" to the application.
  int max_retries = 5;
  /// Backoff before each retry.
  sim::Duration retry_backoff = 50 * sim::kMillisecond;
  /// When the listed controllers are replicas of ONE cluster (e.g. an
  /// active + a warm standby), retries rotate between them regardless of
  /// any partition hint. When they are partition owners (Figure 2), the
  /// hint stays sticky — a retry must not land on the wrong partition.
  bool controllers_are_replicas = false;
};

/// \brief The application-side driver: submits transactions to one or more
/// middleware controllers (multiple = Figure 2 partitioned deployment; the
/// driver routes by TxnRequest::partition_hint), tracks the session's last
/// observed version (read-your-writes under session consistency), retries
/// retryable failures, and fails over between controllers.
class Driver {
 public:
  using Callback = std::function<void(const middleware::TxnResult&)>;

  Driver(sim::Simulator* sim, net::Network* network, net::NodeId node,
         std::vector<net::NodeId> controllers, DriverOptions options = {},
         net::SiteId site = 0);
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  net::NodeId id() const { return dispatcher_->node(); }

  /// Submits a transaction; `cb` fires exactly once with the final result
  /// (after internal retries). Latency covers the whole affair, retries
  /// included.
  void Submit(middleware::TxnRequest request, Callback cb);

  /// Session version watermark for a controller (read-your-writes state).
  /// Tracked per controller: partitioned deployments have independent
  /// version domains, and mixing them would stall freshness-gated reads.
  middleware::GlobalVersion last_seen_version(size_t controller_index = 0) const {
    return controller_index < last_seen_.size() ? last_seen_[controller_index]
                                                : 0;
  }

  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t gave_up() const { return gave_up_; }

 private:
  struct Outstanding {
    middleware::TxnRequest request;
    Callback cb;
    sim::TimePoint started = 0;
    int attempts = 0;
    sim::EventId timer = 0;
    size_t controller_index = 0;  ///< Which controller got the last send.
  };

  void Send(uint64_t req_id);
  void HandleReply(const net::Message& m);
  void OnTimeout(uint64_t req_id);
  void Retry(uint64_t req_id, Outstanding* out);

  sim::Simulator* sim_;
  std::unique_ptr<net::Dispatcher> dispatcher_;
  std::vector<net::NodeId> controllers_;
  DriverOptions options_;

  HashMap<uint64_t, Outstanding> outstanding_;
  uint64_t next_req_ = 1;
  std::vector<middleware::GlobalVersion> last_seen_;
  /// Replicated-controller mode: the last controller that answered
  /// successfully; first attempts go there (multipool stickiness).
  size_t preferred_controller_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t gave_up_ = 0;
};

}  // namespace replidb::client

#endif  // REPLIDB_CLIENT_DRIVER_H_
