#include "client/connection_pool.h"

#include <algorithm>

namespace replidb::client {

ConnectionPool::ConnectionPool(sim::Simulator* sim,
                               std::vector<net::NodeId> endpoints,
                               Options options)
    : sim_(sim), options_(options), rng_(options.seed),
      all_(endpoints), live_(std::move(endpoints)) {
  connections_.resize(static_cast<size_t>(options_.size));
  for (Connection& c : connections_) Reopen(&c);
  reconnects_ = 0;  // Initial opens are not "reconnects".
}

net::NodeId ConnectionPool::PickEndpoint() {
  if (live_.empty()) return -1;
  return live_[rr_++ % live_.size()];
}

void ConnectionPool::Reopen(Connection* conn) {
  conn->endpoint = PickEndpoint();
  conn->opened_at = sim_->Now();
  ++reconnects_;
}

net::NodeId ConnectionPool::Acquire() {
  Connection& conn = connections_[next_++ % connections_.size()];
  if (conn.endpoint < 0 ||
      std::find(live_.begin(), live_.end(), conn.endpoint) == live_.end()) {
    Reopen(&conn);
  } else if (options_.recycle_after > 0 &&
             sim_->Now() - conn.opened_at >= options_.recycle_after) {
    // Aggressive recycling: pay a reconnect to pick up topology changes.
    Reopen(&conn);
  }
  return conn.endpoint;
}

void ConnectionPool::MarkFailed(net::NodeId endpoint) {
  live_.erase(std::remove(live_.begin(), live_.end(), endpoint), live_.end());
  for (Connection& c : connections_) {
    if (c.endpoint == endpoint) Reopen(&c);
  }
}

void ConnectionPool::MarkRecovered(net::NodeId endpoint) {
  if (std::find(all_.begin(), all_.end(), endpoint) == all_.end()) return;
  if (std::find(live_.begin(), live_.end(), endpoint) == live_.end()) {
    live_.push_back(endpoint);
    std::sort(live_.begin(), live_.end());
  }
  // Deliberately nothing else: existing pins stay (§4.3.3). Only
  // recycling or new connections will ever use the recovered endpoint.
}

std::map<net::NodeId, int> ConnectionPool::Distribution() const {
  std::map<net::NodeId, int> dist;
  for (net::NodeId e : live_) dist[e] = 0;
  for (const Connection& c : connections_) {
    if (dist.count(c.endpoint)) dist[c.endpoint]++;
  }
  return dist;
}

double ConnectionPool::Imbalance() const {
  std::map<net::NodeId, int> dist = Distribution();
  if (dist.empty()) return 0.0;
  int max_pins = 0;
  for (const auto& [e, n] : dist) {
    (void)e;
    max_pins = std::max(max_pins, n);
  }
  double ideal = static_cast<double>(connections_.size()) /
                 static_cast<double>(dist.size());
  return ideal > 0 ? static_cast<double>(max_pins) / ideal : 0.0;
}

}  // namespace replidb::client
