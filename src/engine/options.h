#ifndef REPLIDB_ENGINE_OPTIONS_H_
#define REPLIDB_ENGINE_OPTIONS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "engine/types.h"

namespace replidb::engine {

/// \brief Per-engine behaviour profile modelling the RDBMS differences the
/// paper catalogues in §4.1–§4.2. Two canned profiles (PostgresLike,
/// MysqlLike) reproduce the divergent behaviours called out in the text.
struct DialectProfile {
  std::string name = "generic";

  /// §4.1.2: "PostgreSQL aborts a transaction as soon as an error occurs,
  /// whereas MySQL continues the transaction."
  bool abort_txn_on_error = true;

  /// §4.1.2: Sybase/MySQL do not provide snapshot isolation. Requests for
  /// kSnapshot fall back to kReadCommitted when false.
  bool supports_snapshot_isolation = true;

  /// §4.1.4: Sybase "does not authorize the use of temporary tables within
  /// transactions."
  bool temp_tables_in_transactions = true;

  /// §4.1.4: some engines drop temporary tables at COMMIT instead of at
  /// disconnect.
  bool temp_tables_dropped_on_commit = false;

  /// §4.1.1: MySQL "does not support the notion of schema"; we model the
  /// analogous limitation as refusing CREATE DATABASE beyond the default.
  bool supports_multiple_databases = true;

  static DialectProfile PostgresLike() {
    DialectProfile p;
    p.name = "postgres-like";
    p.abort_txn_on_error = true;
    p.supports_snapshot_isolation = true;
    p.temp_tables_in_transactions = true;
    p.supports_multiple_databases = true;
    return p;
  }

  static DialectProfile MysqlLike() {
    DialectProfile p;
    p.name = "mysql-like";
    p.abort_txn_on_error = false;
    p.supports_snapshot_isolation = false;
    p.temp_tables_in_transactions = true;
    p.supports_multiple_databases = false;
    return p;
  }

  static DialectProfile SybaseLike() {
    DialectProfile p;
    p.name = "sybase-like";
    p.abort_txn_on_error = false;
    p.supports_snapshot_isolation = false;
    p.temp_tables_in_transactions = false;
    return p;
  }
};

/// \brief Service-time model: converts ExecStats into simulated
/// microseconds of database work. The replica wrapper in the middleware
/// charges this against the replica's worker capacity, which is where
/// saturation and queueing delays come from.
struct CostModel {
  double base_us = 80;            ///< Fixed per-statement cost.
  double per_row_scanned_us = 0.4;
  double per_row_written_us = 6.0;
  double commit_us = 120;         ///< Durable commit (log flush).
  double begin_us = 5;
  /// §4.3.2: trigger-based writeset extraction overhead per written row.
  double writeset_trigger_us_per_row = 10.0;

  /// Cost of one statement's execution.
  int64_t StatementCost(const ExecStats& stats,
                        bool writeset_extraction_enabled) const {
    double us = base_us + per_row_scanned_us * stats.rows_scanned +
                per_row_written_us * stats.rows_written;
    if (writeset_extraction_enabled) {
      us += writeset_trigger_us_per_row * stats.rows_written;
    }
    return static_cast<int64_t>(us);
  }
};

/// \brief Options for constructing an Rdbms instance.
struct RdbmsOptions {
  std::string name = "db";
  DialectProfile dialect;
  CostModel cost_model;

  /// Seed that decides the "physical" row order of unordered scans. Giving
  /// replicas different seeds reproduces the paper's LIMIT-without-ORDER-BY
  /// divergence (different page layout on each replica).
  uint64_t physical_seed = 1;

  /// Seed for this engine's RAND() implementation (deliberately local to
  /// the replica — the whole point of §4.3.2).
  uint64_t rand_seed = 1;

  /// Wall-clock source for NOW(); typically bound to the simulator clock.
  /// Each replica can be skewed to model unsynchronized clocks.
  std::function<int64_t()> clock = [] { return int64_t{0}; };

  /// Default isolation level for new sessions.
  IsolationLevel default_isolation = IsolationLevel::kReadCommitted;

  /// Whether to also record statement texts in the binlog (needed for
  /// statement-based replication and the Sequoia-style recovery log).
  bool binlog_statements = true;

  /// Whether to capture row writesets (transaction replication). When
  /// modelled as trigger-based, extraction adds per-row cost.
  bool capture_writesets = true;
  bool writesets_via_triggers = false;

  /// If true, the engine requires authentication against its user catalog
  /// (§4.1.5); a restored backup without metadata loses the catalog.
  bool enforce_authentication = false;
};

}  // namespace replidb::engine

#endif  // REPLIDB_ENGINE_OPTIONS_H_
