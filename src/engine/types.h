#ifndef REPLIDB_ENGINE_TYPES_H_
#define REPLIDB_ENGINE_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace replidb::engine {

/// Physical row identifier inside one table (insertion order counter).
using RowId = uint64_t;
/// Transaction identifier, unique per Rdbms instance.
using TxnId = uint64_t;
/// Session (connection) identifier.
using SessionId = uint64_t;
/// Commit sequence number: the engine's logical commit clock.
using CommitSeq = uint64_t;

/// Transaction isolation levels the engine dialect supports (§4.1.2).
enum class IsolationLevel {
  kReadCommitted,   ///< Default everywhere in production, per the paper.
  kSnapshot,        ///< SI: per-transaction snapshot, first-updater-wins.
  kSerializable,    ///< 1SR via no-wait table-granularity 2PL (the coarse
                    ///< locking the paper says middleware is stuck with).
};

const char* IsolationLevelName(IsolationLevel level);

/// \brief Execution counters used by the cost model and by benches.
struct ExecStats {
  uint64_t rows_scanned = 0;
  uint64_t rows_returned = 0;
  uint64_t rows_written = 0;   // Inserts + updates + deletes.
  uint64_t bytes_processed = 0;
  bool used_index = false;

  void Merge(const ExecStats& o) {
    rows_scanned += o.rows_scanned;
    rows_returned += o.rows_returned;
    rows_written += o.rows_written;
    bytes_processed += o.bytes_processed;
    used_index = used_index || o.used_index;
  }
};

/// \brief Result of executing one statement.
struct ExecResult {
  Status status;
  std::vector<std::string> columns;  ///< SELECT column labels.
  std::vector<sql::Row> rows;        ///< SELECT result rows.
  int64_t affected = 0;              ///< Rows written by DML.
  ExecStats stats;
  int64_t cost_us = 0;  ///< Simulated service time per the engine CostModel.

  bool ok() const { return status.ok(); }
};

/// Kind of a single writeset operation.
enum class WriteOpKind { kInsert, kUpdate, kDelete };

/// \brief One row-level change captured for transaction (writeset-based)
/// replication. Identified by primary key so it can be applied on any
/// replica regardless of physical row ids.
struct WriteOp {
  WriteOpKind kind = WriteOpKind::kInsert;
  std::string database;
  std::string table;
  sql::Value primary_key;      ///< PK value of the affected row (post-image
                               ///< for inserts, pre-image for delete/update).
  sql::Row after;              ///< Full row after the change; empty for delete.
};

/// \brief The writeset of a transaction: the set of data W updated by T such
/// that applying W to a replica is equivalent to executing T on it
/// (paper footnote 2) — *except* for what trigger-based extraction misses:
/// auto-increment counters and sequence values (§4.3.2), which is exactly
/// the divergence the benches demonstrate.
struct Writeset {
  std::vector<WriteOp> ops;

  /// True when some change could not be keyed (table without a primary
  /// key): the writeset cannot faithfully be applied elsewhere, so
  /// transaction replication must degrade or refuse.
  bool incomplete = false;

  bool empty() const { return ops.empty(); }

  /// Conflict keys for SI certification: "db.table/pk" strings.
  std::vector<std::string> ConflictKeys() const;

  /// Approximate wire size in bytes (for network cost).
  int64_t SizeBytes() const;
};

/// \brief One committed transaction in the binlog / recovery log.
struct BinlogEntry {
  CommitSeq commit_seq = 0;
  TxnId txn = 0;
  std::vector<std::string> statements;  ///< SQL texts (statement replication).
  Writeset writeset;                    ///< Row images (transaction replication).
  std::string session_user;             ///< Who ran it (§4.1.5 replay identity).
  int64_t commit_time_micros = 0;
};

}  // namespace replidb::engine

#endif  // REPLIDB_ENGINE_TYPES_H_
