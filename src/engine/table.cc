#include "engine/table.h"

#include <algorithm>

namespace replidb::engine {

namespace {
uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Result<TableSchema> TableSchema::FromCreate(const sql::CreateTableStmt& stmt) {
  if (stmt.columns.empty()) {
    return Status::InvalidArgument("table needs at least one column");
  }
  TableSchema s;
  s.name = stmt.table.table;
  s.columns = stmt.columns;
  s.temporary = stmt.temporary;
  for (size_t i = 0; i < s.columns.size(); ++i) {
    const sql::ColumnDef& c = s.columns[i];
    for (size_t j = 0; j < i; ++j) {
      if (s.columns[j].name == c.name) {
        return Status::InvalidArgument("duplicate column " + c.name);
      }
    }
    if (c.primary_key) {
      if (s.primary_key_index >= 0) {
        return Status::InvalidArgument("multiple primary keys");
      }
      s.primary_key_index = static_cast<int>(i);
    }
    if (c.auto_increment && c.type != sql::ValueType::kInt) {
      return Status::InvalidArgument("AUTO_INCREMENT requires INT column");
    }
  }
  return s;
}

int TableSchema::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

VersionedTable::VersionedTable(TableSchema schema, uint64_t physical_seed)
    : schema_(std::move(schema)), physical_seed_(physical_seed) {}

bool VersionedTable::Visible(const TxnView& txn, const Version& v) const {
  bool created_visible = (v.created != 0 && v.created <= txn.snapshot) ||
                         (txn.id != 0 && v.creator == txn.id);
  if (!created_visible) return false;
  if (v.deleter != 0 && v.deleter == txn.id) return false;  // Deleted by self.
  if (v.deleted != 0 && v.deleted <= txn.snapshot) return false;
  return true;
}

int VersionedTable::VisibleIndex(const TxnView& txn, const Chain& chain) const {
  for (int i = static_cast<int>(chain.versions.size()) - 1; i >= 0; --i) {
    if (Visible(txn, chain.versions[i])) return i;
  }
  return -1;
}

int VersionedTable::NewestActive(const Chain& chain) const {
  return chain.versions.empty() ? -1
                                : static_cast<int>(chain.versions.size()) - 1;
}

Status VersionedTable::CheckUnique(const TxnView& txn, const sql::Row& row,
                                   std::optional<RowId> exclude_row) {
  // Columns that must be unique: PK + UNIQUE.
  for (size_t ci = 0; ci < schema_.columns.size(); ++ci) {
    const sql::ColumnDef& col = schema_.columns[ci];
    bool must_be_unique =
        col.unique || static_cast<int>(ci) == schema_.primary_key_index;
    if (!must_be_unique) continue;
    const sql::Value& candidate = row[ci];
    if (candidate.is_null()) continue;

    // Checks one chain for a conflicting version; returns non-OK on clash.
    auto check_chain = [&](RowId rid, const Chain& chain) -> Status {
      if (exclude_row && *exclude_row == rid) return Status::OK();
      for (const Version& v : chain.versions) {
        if (v.data[ci].Compare(candidate) != 0) continue;
        // A version this transaction itself is deleting frees the value.
        if (v.deleter == txn.id && v.deleted == 0) continue;
        bool create_pending = (v.created == 0);
        bool committed_live =
            (v.created != 0 && v.deleted == 0 && v.deleter == 0);
        bool delete_pending = (v.deleter != 0 && v.deleted == 0);
        if (create_pending && v.creator != txn.id) {
          return Status::Deadlock("uncommitted row with duplicate " +
                                  col.name);
        }
        if (create_pending && v.creator == txn.id) {
          return Status::ConstraintViolation("duplicate value for " +
                                             col.name);
        }
        if (committed_live) {
          return Status::ConstraintViolation("duplicate value for " +
                                             col.name);
        }
        if (delete_pending && v.deleter != txn.id) {
          // Another transaction is deleting the conflicting row; a real
          // engine would block on its outcome.
          return Status::Deadlock("conflicting row being deleted");
        }
        // Deleted-and-committed, or being deleted by us: no conflict.
      }
      return Status::OK();
    };

    // The PK column has an index; other UNIQUE columns fall back to a scan.
    if (static_cast<int>(ci) == schema_.primary_key_index) {
      auto iit = pk_index_.find(candidate);
      if (iit == pk_index_.end()) continue;
      for (RowId rid : iit->second) {
        auto rit = rows_.find(rid);
        if (rit == rows_.end()) continue;  // Stale index entry.
        REPLIDB_RETURN_NOT_OK(check_chain(rid, rit->second));
      }
    } else {
      for (const auto& [rid, chain] : rows_) {
        REPLIDB_RETURN_NOT_OK(check_chain(rid, chain));
      }
    }
  }
  return Status::OK();
}

Result<RowId> VersionedTable::Insert(const TxnView& txn, sql::Row row,
                                     ExecStats* stats) {
  if (row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch for " + schema_.name);
  }
  for (size_t i = 0; i < row.size(); ++i) {
    const sql::ColumnDef& col = schema_.columns[i];
    if (row[i].is_null() && col.not_null) {
      return Status::ConstraintViolation("NULL in NOT NULL column " +
                                         col.name);
    }
    // Numeric coercion into DOUBLE columns.
    if (col.type == sql::ValueType::kDouble &&
        row[i].type() == sql::ValueType::kInt) {
      row[i] = sql::Value::Double(static_cast<double>(row[i].AsInt()));
    }
  }
  REPLIDB_RETURN_NOT_OK(CheckUnique(txn, row, std::nullopt));

  if (schema_.primary_key_index >= 0) {
    const sql::Value& pk = row[schema_.primary_key_index];
    if (pk.type() == sql::ValueType::kInt &&
        schema_.columns[schema_.primary_key_index].auto_increment) {
      BumpAutoIncrement(pk.AsInt());
    }
  }

  RowId rid = next_row_id_++;
  if (schema_.primary_key_index >= 0) {
    pk_index_[row[schema_.primary_key_index]].insert(rid);
  }
  Version v;
  v.data = std::move(row);
  v.creator = txn.id;
  rows_[rid].versions.push_back(std::move(v));
  pending_[txn.id].insert(rid);
  if (stats) {
    stats->rows_written += 1;
    stats->bytes_processed += 64;
  }
  return rid;
}

Status VersionedTable::Update(const TxnView& txn, RowId row_id,
                              sql::Row new_row, ExecStats* stats) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) return Status::NotFound("row");
  Chain& chain = it->second;
  int idx = VisibleIndex(txn, chain);
  if (idx < 0) return Status::NotFound("row not visible");
  Version& cur = chain.versions[idx];

  // Conflict checks (no-wait).
  const Version& newest = chain.versions.back();
  if (newest.created == 0 && newest.creator != txn.id) {
    return Status::Deadlock("row locked by uncommitted writer");
  }
  if (cur.deleter != 0 && cur.deleter != txn.id && cur.deleted == 0) {
    return Status::Deadlock("row locked by uncommitted deleter");
  }
  if (txn.level == IsolationLevel::kSnapshot) {
    // First-updater-wins: the visible version must still be the newest.
    if (idx != static_cast<int>(chain.versions.size()) - 1 ||
        (cur.deleted != 0 && cur.deleted > txn.snapshot)) {
      return Status::Conflict("row updated by concurrent transaction");
    }
  }

  if (new_row.size() != schema_.columns.size()) {
    return Status::InvalidArgument("row width mismatch");
  }
  for (size_t i = 0; i < new_row.size(); ++i) {
    const sql::ColumnDef& col = schema_.columns[i];
    if (new_row[i].is_null() && col.not_null) {
      return Status::ConstraintViolation("NULL in NOT NULL column " +
                                         col.name);
    }
    if (col.type == sql::ValueType::kDouble &&
        new_row[i].type() == sql::ValueType::kInt) {
      new_row[i] = sql::Value::Double(static_cast<double>(new_row[i].AsInt()));
    }
  }
  // Uniqueness only needs rechecking for changed unique values.
  for (size_t ci = 0; ci < schema_.columns.size(); ++ci) {
    bool uniq = schema_.columns[ci].unique ||
                static_cast<int>(ci) == schema_.primary_key_index;
    if (uniq && cur.data[ci].Compare(new_row[ci]) != 0) {
      REPLIDB_RETURN_NOT_OK(CheckUnique(txn, new_row, row_id));
      break;
    }
  }

  if (schema_.primary_key_index >= 0) {
    int pki = schema_.primary_key_index;
    if (cur.data[pki].Compare(new_row[pki]) != 0) {
      pk_index_[new_row[pki]].insert(row_id);  // Old entry stays, tolerated.
    }
  }

  // If this txn already created the visible version, rewrite in place.
  if (cur.creator == txn.id && cur.created == 0) {
    cur.data = std::move(new_row);
  } else {
    cur.deleter = txn.id;
    Version nv;
    nv.data = std::move(new_row);
    nv.creator = txn.id;
    chain.versions.push_back(std::move(nv));
  }
  pending_[txn.id].insert(row_id);
  if (stats) {
    stats->rows_written += 1;
    stats->bytes_processed += 64;
  }
  return Status::OK();
}

Status VersionedTable::Delete(const TxnView& txn, RowId row_id,
                              ExecStats* stats) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) return Status::NotFound("row");
  Chain& chain = it->second;
  int idx = VisibleIndex(txn, chain);
  if (idx < 0) return Status::NotFound("row not visible");
  Version& cur = chain.versions[idx];

  const Version& newest = chain.versions.back();
  if (newest.created == 0 && newest.creator != txn.id) {
    return Status::Deadlock("row locked by uncommitted writer");
  }
  if (cur.deleter != 0 && cur.deleter != txn.id && cur.deleted == 0) {
    return Status::Deadlock("row locked by uncommitted deleter");
  }
  if (txn.level == IsolationLevel::kSnapshot) {
    if (idx != static_cast<int>(chain.versions.size()) - 1 ||
        (cur.deleted != 0 && cur.deleted > txn.snapshot)) {
      return Status::Conflict("row updated by concurrent transaction");
    }
  }

  // Mark rather than erase, even for rows this txn inserted: commit stamps
  // created == deleted (never visible) and rollback removes the version;
  // marking keeps deletes undoable for statement-level atomicity.
  cur.deleter = txn.id;
  pending_[txn.id].insert(row_id);
  if (stats) stats->rows_written += 1;
  return Status::OK();
}

void VersionedTable::UndoDelete(TxnId txn, RowId row_id) {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) return;
  auto& versions = it->second.versions;
  // Clear only the newest pending delete mark owned by txn: older marks
  // belong to earlier statements of the same transaction and must stand.
  for (int i = static_cast<int>(versions.size()) - 1; i >= 0; --i) {
    if (versions[i].deleter == txn && versions[i].deleted == 0) {
      versions[i].deleter = 0;
      return;
    }
  }
}

void VersionedTable::Scan(const TxnView& txn,
                          std::vector<std::pair<RowId, sql::Row>>* out,
                          ExecStats* stats) const {
  std::vector<std::pair<uint64_t, std::pair<RowId, const sql::Row*>>> hits;
  for (const auto& [rid, chain] : rows_) {
    if (stats) stats->rows_scanned += chain.versions.size();
    int idx = VisibleIndex(txn, chain);
    if (idx >= 0) {
      hits.emplace_back(Mix64(rid ^ physical_seed_),
                        std::make_pair(rid, &chain.versions[idx].data));
    }
  }
  // "Physical" order: a seeded shuffle standing in for page layout. Two
  // replicas with different seeds return unordered scans differently —
  // which is legal SQL, and the root of the LIMIT divergence of §4.3.2.
  std::sort(hits.begin(), hits.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  out->reserve(out->size() + hits.size());
  for (auto& h : hits) {
    out->emplace_back(h.second.first, *h.second.second);
    if (stats) stats->rows_returned += 1;
  }
}

Result<sql::Row> VersionedTable::Get(const TxnView& txn, RowId row_id) const {
  auto it = rows_.find(row_id);
  if (it == rows_.end()) return Status::NotFound("row");
  int idx = VisibleIndex(txn, it->second);
  if (idx < 0) return Status::NotFound("row not visible");
  return it->second.versions[idx].data;
}

std::optional<RowId> VersionedTable::LookupPk(const TxnView& txn,
                                              const sql::Value& pk,
                                              ExecStats* stats) const {
  if (schema_.primary_key_index < 0) return std::nullopt;
  int pki = schema_.primary_key_index;
  auto iit = pk_index_.find(pk);
  if (iit == pk_index_.end()) return std::nullopt;
  for (RowId rid : iit->second) {
    auto rit = rows_.find(rid);
    if (rit == rows_.end()) continue;  // Stale index entry.
    if (stats) stats->rows_scanned += 1;
    int idx = VisibleIndex(txn, rit->second);
    if (idx >= 0 && rit->second.versions[idx].data[pki].Compare(pk) == 0) {
      if (stats) stats->used_index = true;
      return rid;
    }
  }
  return std::nullopt;
}

void VersionedTable::CommitTxn(TxnId txn, CommitSeq commit_seq,
                               CommitSeq gc_horizon) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  for (RowId rid : it->second) {
    auto rit = rows_.find(rid);
    if (rit == rows_.end()) continue;
    auto& versions = rit->second.versions;
    for (Version& v : versions) {
      // Digest maintenance: a version enters the committed live set when
      // its pending create commits without a pending delete, and leaves it
      // when a pending delete on a previously committed version commits.
      // Insert-then-delete inside one transaction nets to no change.
      bool create_pending = (v.creator == txn && v.created == 0);
      bool delete_pending = (v.deleter == txn && v.deleted == 0);
      if (create_pending != delete_pending &&
          (create_pending || v.created != 0)) {
        digest_ ^= Mix64(sql::HashRow(v.data));
      }
      if (create_pending) v.created = commit_seq;
      if (delete_pending) v.deleted = commit_seq;
    }
    // Inline vacuum: committed-dead versions below the horizon are
    // invisible to every live and future snapshot.
    if (gc_horizon > 0) {
      for (auto vit = versions.begin(); vit != versions.end();) {
        if (vit->created != 0 && vit->deleted != 0 &&
            vit->deleted <= gc_horizon) {
          vit = versions.erase(vit);
        } else {
          ++vit;
        }
      }
      if (versions.empty()) rows_.erase(rit);
    }
  }
  pending_.erase(it);
}

void VersionedTable::RollbackTxn(TxnId txn) {
  auto it = pending_.find(txn);
  if (it == pending_.end()) return;
  for (RowId rid : it->second) {
    auto rit = rows_.find(rid);
    if (rit == rows_.end()) continue;
    auto& versions = rit->second.versions;
    for (auto vit = versions.begin(); vit != versions.end();) {
      if (vit->creator == txn && vit->created == 0) {
        vit = versions.erase(vit);
        continue;
      }
      if (vit->deleter == txn && vit->deleted == 0) {
        vit->deleter = 0;  // Undo the delete intent.
      }
      ++vit;
    }
    if (versions.empty()) rows_.erase(rit);
  }
  pending_.erase(it);
}

uint64_t VersionedTable::CountVisible(const TxnView& txn) const {
  uint64_t n = 0;
  for (const auto& [rid, chain] : rows_) {
    (void)rid;
    if (VisibleIndex(txn, chain) >= 0) ++n;
  }
  return n;
}

uint64_t VersionedTable::ContentHash(const TxnView& txn) const {
  // Order-insensitive: XOR of row hashes, so physical order differences do
  // not register as divergence — only actual data differences do.
  uint64_t h = 0;
  for (const auto& [rid, chain] : rows_) {
    (void)rid;
    int idx = VisibleIndex(txn, chain);
    if (idx >= 0) h ^= Mix64(sql::HashRow(chain.versions[idx].data));
  }
  return h;
}

const char* IsolationLevelName(IsolationLevel level) {
  switch (level) {
    case IsolationLevel::kReadCommitted:
      return "read-committed";
    case IsolationLevel::kSnapshot:
      return "snapshot";
    case IsolationLevel::kSerializable:
      return "serializable";
  }
  return "?";
}

}  // namespace replidb::engine
