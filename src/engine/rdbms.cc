#include "engine/rdbms.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "sql/parser.h"

namespace replidb::engine {

namespace {

/// Engine-level registry handles, resolved once, aggregated across every
/// Rdbms instance (per-replica detail lives in the middleware layer).
struct EngineMetrics {
  obs::Counter* statements;
  obs::Counter* commits;
  obs::Counter* aborts;

  static EngineMetrics& Get() {
    static EngineMetrics m;
    return m;
  }

 private:
  EngineMetrics() {
    auto& r = obs::MetricsRegistry::Global();
    statements = r.GetCounter("engine.txn.statements");
    commits = r.GetCounter("engine.txn.commits");
    aborts = r.GetCounter("engine.txn.aborts");
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// Writeset / BinlogEntry helpers

std::vector<std::string> Writeset::ConflictKeys() const {
  std::vector<std::string> keys;
  keys.reserve(ops.size());
  for (const WriteOp& op : ops) {
    keys.push_back(op.database + "." + op.table + "/" +
                   op.primary_key.ToString());
  }
  return keys;
}

int64_t Writeset::SizeBytes() const {
  int64_t bytes = 32;
  for (const WriteOp& op : ops) {
    bytes += 48 + static_cast<int64_t>(op.table.size());
    for (const sql::Value& v : op.after) {
      bytes += 8 + static_cast<int64_t>(
                       v.type() == sql::ValueType::kString ? v.AsString().size()
                                                           : 8);
    }
  }
  return bytes;
}

int64_t BackupImage::SizeBytes() const {
  int64_t bytes = 128;
  for (const auto& db : databases) {
    for (const auto& t : db.tables) {
      bytes += 256;
      bytes += static_cast<int64_t>(t.rows.size()) * 64;
    }
  }
  return bytes;
}

// ---------------------------------------------------------------------------
// StatementExecutor: executes one parsed statement inside a session's txn.

class StatementExecutor {
 public:
  StatementExecutor(Rdbms* db, Rdbms::Session* session)
      : db_(db),
        session_(session),
        view_(db->ViewFor(session)),
        ws_mark_(session->txn ? session->txn->writeset.ops.size() : 0) {}

  ExecResult Run(const sql::Statement& stmt) {
    switch (stmt.type()) {
      case sql::StmtType::kCreateDatabase:
        return RunCreateDatabase(stmt.As<sql::CreateDatabaseStmt>());
      case sql::StmtType::kCreateTable:
        return RunCreateTable(stmt.As<sql::CreateTableStmt>());
      case sql::StmtType::kDropTable:
        return RunDropTable(stmt.As<sql::DropTableStmt>());
      case sql::StmtType::kCreateSequence:
        return RunCreateSequence(stmt.As<sql::CreateSequenceStmt>());
      case sql::StmtType::kInsert:
        return RunInsert(stmt.As<sql::InsertStmt>());
      case sql::StmtType::kUpdate:
        return RunUpdate(stmt.As<sql::UpdateStmt>());
      case sql::StmtType::kDelete:
        return RunDelete(stmt.As<sql::DeleteStmt>());
      case sql::StmtType::kSelect:
        return RunSelect(stmt.As<sql::SelectStmt>());
      case sql::StmtType::kCall:
        return RunCall(stmt.As<sql::CallStmt>());
      default: {
        ExecResult r;
        r.status = Status::Internal("transaction control reached executor");
        return r;
      }
    }
  }

 private:
  using Row = sql::Row;
  using Value = sql::Value;

  // --- Expression evaluation ------------------------------------------------

  Result<Value> Eval(const sql::Expr& e, const TableSchema* schema,
                     const Row* row) {
    switch (e.kind) {
      case sql::Expr::Kind::kLiteral:
        return e.literal;
      case sql::Expr::Kind::kColumn: {
        if (schema == nullptr || row == nullptr) {
          return Status::InvalidArgument("column '" + e.column +
                                         "' used without a row context");
        }
        int idx = schema->ColumnIndex(e.column);
        if (idx < 0) {
          return Status::InvalidArgument("unknown column '" + e.column + "'");
        }
        return (*row)[static_cast<size_t>(idx)];
      }
      case sql::Expr::Kind::kBinary:
        return EvalBinary(e, schema, row);
      case sql::Expr::Kind::kUnary: {
        Result<Value> arg = Eval(*e.children[0], schema, row);
        if (!arg.ok()) return arg;
        if (e.un_op == sql::UnaryOp::kNot) {
          return Value::Bool(!arg.value().Truthy());
        }
        if (arg.value().type() == sql::ValueType::kInt) {
          return Value::Int(-arg.value().AsInt());
        }
        return Value::Double(-arg.value().NumericValue());
      }
      case sql::Expr::Kind::kFunc:
        return EvalFunc(e, schema, row);
      case sql::Expr::Kind::kInSubquery: {
        Result<Value> lhs = Eval(*e.children[0], schema, row);
        if (!lhs.ok()) return lhs;
        Result<const std::vector<Value>*> sub = SubqueryValues(&e);
        if (!sub.ok()) return sub.status();
        for (const Value& v : *sub.value()) {
          if (v.Compare(lhs.value()) == 0) return Value::Bool(true);
        }
        return Value::Bool(false);
      }
    }
    return Status::Internal("unreachable expression kind");
  }

  Result<Value> EvalBinary(const sql::Expr& e, const TableSchema* schema,
                           const Row* row) {
    // Short-circuit logical operators.
    if (e.bin_op == sql::BinaryOp::kAnd || e.bin_op == sql::BinaryOp::kOr) {
      Result<Value> lhs = Eval(*e.children[0], schema, row);
      if (!lhs.ok()) return lhs;
      bool l = lhs.value().Truthy();
      if (e.bin_op == sql::BinaryOp::kAnd && !l) return Value::Bool(false);
      if (e.bin_op == sql::BinaryOp::kOr && l) return Value::Bool(true);
      Result<Value> rhs = Eval(*e.children[1], schema, row);
      if (!rhs.ok()) return rhs;
      return Value::Bool(rhs.value().Truthy());
    }
    Result<Value> lhs = Eval(*e.children[0], schema, row);
    if (!lhs.ok()) return lhs;
    Result<Value> rhs = Eval(*e.children[1], schema, row);
    if (!rhs.ok()) return rhs;
    const Value& a = lhs.value();
    const Value& b = rhs.value();
    switch (e.bin_op) {
      case sql::BinaryOp::kEq:
        return Value::Bool(a.Compare(b) == 0);
      case sql::BinaryOp::kNe:
        return Value::Bool(a.Compare(b) != 0);
      case sql::BinaryOp::kLt:
        return Value::Bool(a.Compare(b) < 0);
      case sql::BinaryOp::kLe:
        return Value::Bool(a.Compare(b) <= 0);
      case sql::BinaryOp::kGt:
        return Value::Bool(a.Compare(b) > 0);
      case sql::BinaryOp::kGe:
        return Value::Bool(a.Compare(b) >= 0);
      case sql::BinaryOp::kAdd:
      case sql::BinaryOp::kSub:
      case sql::BinaryOp::kMul:
      case sql::BinaryOp::kDiv:
      case sql::BinaryOp::kMod: {
        if (a.is_null() || b.is_null()) return Value::Null();
        bool both_int = a.type() == sql::ValueType::kInt &&
                        b.type() == sql::ValueType::kInt;
        if (both_int) {
          int64_t x = a.AsInt(), y = b.AsInt();
          switch (e.bin_op) {
            case sql::BinaryOp::kAdd: return Value::Int(x + y);
            case sql::BinaryOp::kSub: return Value::Int(x - y);
            case sql::BinaryOp::kMul: return Value::Int(x * y);
            case sql::BinaryOp::kDiv:
              if (y == 0) return Status::InvalidArgument("division by zero");
              return Value::Int(x / y);
            case sql::BinaryOp::kMod:
              if (y == 0) return Status::InvalidArgument("division by zero");
              return Value::Int(x % y);
            default: break;
          }
        }
        double x = a.NumericValue(), y = b.NumericValue();
        switch (e.bin_op) {
          case sql::BinaryOp::kAdd: return Value::Double(x + y);
          case sql::BinaryOp::kSub: return Value::Double(x - y);
          case sql::BinaryOp::kMul: return Value::Double(x * y);
          case sql::BinaryOp::kDiv:
            if (y == 0) return Status::InvalidArgument("division by zero");
            return Value::Double(x / y);
          case sql::BinaryOp::kMod:
            if (y == 0) return Status::InvalidArgument("division by zero");
            return Value::Double(std::fmod(x, y));
          default: break;
        }
        break;
      }
      default:
        break;
    }
    return Status::Internal("unreachable binary op");
  }

  Result<Value> EvalFunc(const sql::Expr& e, const TableSchema* schema,
                         const Row* row) {
    switch (e.func) {
      case sql::FuncKind::kNow:
        // Replica-local clock: the non-determinism of §4.3.2.
        return Value::Int(db_->options_.clock());
      case sql::FuncKind::kRand:
        // Replica-local RNG: ditto.
        return Value::Double(db_->rand_rng_.NextDouble());
      case sql::FuncKind::kNextval: {
        // Sequences are non-transactional: the draw survives rollback.
        Rdbms::Database* database = db_->FindDatabase(session_->database);
        if (database == nullptr) {
          return Status::NotFound("database " + session_->database);
        }
        auto it = database->sequences.find(e.sequence_name);
        if (it == database->sequences.end()) {
          return Status::NotFound("sequence " + e.sequence_name);
        }
        return Value::Int(it->second++);
      }
      case sql::FuncKind::kAbs: {
        if (e.children.size() != 1) {
          return Status::InvalidArgument("ABS takes one argument");
        }
        Result<Value> arg = Eval(*e.children[0], schema, row);
        if (!arg.ok()) return arg;
        if (arg.value().type() == sql::ValueType::kInt) {
          return Value::Int(std::llabs(arg.value().AsInt()));
        }
        return Value::Double(std::fabs(arg.value().NumericValue()));
      }
      case sql::FuncKind::kLower:
      case sql::FuncKind::kUpper: {
        if (e.children.size() != 1) {
          return Status::InvalidArgument("string function takes one argument");
        }
        Result<Value> arg = Eval(*e.children[0], schema, row);
        if (!arg.ok()) return arg;
        if (arg.value().type() != sql::ValueType::kString) {
          return Status::InvalidArgument("expected string argument");
        }
        std::string s = arg.value().AsString();
        for (char& c : s) {
          c = e.func == sql::FuncKind::kLower
                  ? static_cast<char>(std::tolower(c))
                  : static_cast<char>(std::toupper(c));
        }
        return Value::String(std::move(s));
      }
    }
    return Status::Internal("unreachable function kind");
  }

  /// Uncorrelated subqueries are evaluated once per statement and cached —
  /// matching how real engines execute `IN (SELECT ... LIMIT n)`.
  Result<const std::vector<Value>*> SubqueryValues(const sql::Expr* e) {
    auto it = subquery_cache_.find(e);
    if (it != subquery_cache_.end()) return &it->second;
    ExecResult sub = RunSelect(*e->subquery);
    if (!sub.ok()) return sub.status;
    if (!sub.columns.empty() && sub.columns.size() != 1) {
      return Status::InvalidArgument("IN subquery must return one column");
    }
    std::vector<Value> values;
    values.reserve(sub.rows.size());
    for (const Row& r : sub.rows) {
      if (!r.empty()) values.push_back(r[0]);
    }
    auto [ins, unused] = subquery_cache_.emplace(e, std::move(values));
    (void)unused;
    return &ins->second;
  }

  // --- Helpers ----------------------------------------------------------------

  Status CheckDiskFull() {
    if (db_->disk_full_) {
      return Status::DiskFull("data partition out of space on " +
                              db_->name());
    }
    return Status::OK();
  }

  std::string TableKey(const sql::TableRef& ref) const {
    std::string database = ref.database.empty() ? session_->database
                                                : ref.database;
    return database + "." + ref.table;
  }

  /// Detects `pk = <literal>` (possibly conjoined) for the fast path.
  const sql::Expr* FindPkEquality(const sql::Expr* where,
                                  const TableSchema& schema) const {
    if (where == nullptr || schema.primary_key_index < 0) return nullptr;
    if (where->kind == sql::Expr::Kind::kBinary &&
        where->bin_op == sql::BinaryOp::kEq) {
      const sql::Expr* l = where->children[0].get();
      const sql::Expr* r = where->children[1].get();
      const std::string& pk_name =
          schema.columns[static_cast<size_t>(schema.primary_key_index)].name;
      if (l->kind == sql::Expr::Kind::kColumn && l->column == pk_name &&
          r->kind == sql::Expr::Kind::kLiteral) {
        return r;
      }
      if (r->kind == sql::Expr::Kind::kColumn && r->column == pk_name &&
          l->kind == sql::Expr::Kind::kLiteral) {
        return l;
      }
    }
    if (where->kind == sql::Expr::Kind::kBinary &&
        where->bin_op == sql::BinaryOp::kAnd) {
      if (const sql::Expr* hit =
              FindPkEquality(where->children[0].get(), schema)) {
        return hit;
      }
      return FindPkEquality(where->children[1].get(), schema);
    }
    return nullptr;
  }

  /// Collects (rowid, row) pairs matching `where` in physical order.
  Status MatchRows(VersionedTable* table, const sql::Expr* where,
                   std::vector<std::pair<RowId, Row>>* out, ExecStats* stats) {
    // PK point lookup fast path.
    if (const sql::Expr* pk_lit = FindPkEquality(where, table->schema())) {
      std::optional<RowId> rid =
          table->LookupPk(view_, pk_lit->literal, stats);
      if (!rid) return Status::OK();
      Result<Row> row = table->Get(view_, *rid);
      if (!row.ok()) return Status::OK();
      Result<Value> match = Eval(*where, &table->schema(), &row.value());
      if (!match.ok()) return match.status();
      if (match.value().Truthy()) out->emplace_back(*rid, row.TakeValue());
      return Status::OK();
    }
    std::vector<std::pair<RowId, Row>> all;
    table->Scan(view_, &all, stats);
    for (auto& [rid, row] : all) {
      if (where != nullptr) {
        Result<Value> match = Eval(*where, &table->schema(), &row);
        if (!match.ok()) return match.status();
        if (!match.value().Truthy()) continue;
      }
      out->emplace_back(rid, std::move(row));
    }
    return Status::OK();
  }

  void CaptureWrite(VersionedTable* table, const sql::TableRef& ref,
                    WriteOpKind kind, const Value& pk, Row after) {
    if (!db_->options_.capture_writesets) return;
    if (table->schema().temporary) return;  // §4.1.4: invisible to repl.
    Rdbms::Txn& txn = *session_->txn;
    if (table->schema().primary_key_index < 0) {
      txn.writeset.incomplete = true;
      return;
    }
    WriteOp op;
    op.kind = kind;
    op.database = ref.database.empty() ? session_->database : ref.database;
    op.table = ref.table;
    op.primary_key = pk;
    op.after = std::move(after);
    txn.writeset.ops.push_back(std::move(op));
  }

  // --- Statement implementations ----------------------------------------------

  ExecResult RunCreateDatabase(const sql::CreateDatabaseStmt& s) {
    ExecResult r;
    if (!db_->options_.dialect.supports_multiple_databases &&
        !db_->databases_.empty()) {
      r.status = Status::NotSupported(db_->options_.dialect.name +
                                      " does not support multiple databases");
      return r;
    }
    if (db_->databases_.count(s.name)) {
      if (s.if_not_exists) return r;
      r.status = Status::AlreadyExists("database " + s.name);
      return r;
    }
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Rdbms::Database database;
    database.name = s.name;
    db_->databases_.emplace(s.name, std::move(database));
    return r;
  }

  ExecResult RunCreateTable(const sql::CreateTableStmt& s) {
    ExecResult r;
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Result<TableSchema> schema = TableSchema::FromCreate(s);
    if (!schema.ok()) {
      r.status = schema.status();
      return r;
    }
    if (s.temporary) {
      // §4.1.4: connection-scoped, and some dialects refuse them inside
      // transactions entirely.
      if (!db_->options_.dialect.temp_tables_in_transactions &&
          session_->txn && session_->txn->explicit_txn) {
        r.status = Status::NotSupported(
            db_->options_.dialect.name +
            " does not allow temporary tables within transactions");
        return r;
      }
      if (session_->temp_tables.count(s.table.table)) {
        if (s.if_not_exists) return r;
        r.status = Status::AlreadyExists("temporary table " + s.table.table);
        return r;
      }
      session_->temp_tables.emplace(
          s.table.table, std::make_unique<VersionedTable>(
                             schema.TakeValue(), db_->options_.physical_seed));
      return r;
    }
    std::string database_name =
        s.table.database.empty() ? session_->database : s.table.database;
    Rdbms::Database* database = db_->FindDatabase(database_name);
    if (database == nullptr) {
      r.status = Status::NotFound("database " + database_name);
      return r;
    }
    if (database->tables.count(s.table.table)) {
      if (s.if_not_exists) return r;
      r.status = Status::AlreadyExists("table " + s.table.table);
      return r;
    }
    database->tables.emplace(
        s.table.table, std::make_unique<VersionedTable>(
                           schema.TakeValue(), db_->options_.physical_seed));
    return r;
  }

  ExecResult RunDropTable(const sql::DropTableStmt& s) {
    ExecResult r;
    if (s.table.database.empty() &&
        session_->temp_tables.erase(s.table.table) > 0) {
      return r;
    }
    std::string database_name =
        s.table.database.empty() ? session_->database : s.table.database;
    Rdbms::Database* database = db_->FindDatabase(database_name);
    if (database == nullptr || database->tables.erase(s.table.table) == 0) {
      if (!s.if_exists) {
        r.status = Status::NotFound("table " + s.table.ToString());
      }
    }
    return r;
  }

  ExecResult RunCreateSequence(const sql::CreateSequenceStmt& s) {
    ExecResult r;
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Rdbms::Database* database = db_->FindDatabase(session_->database);
    if (database == nullptr) {
      r.status = Status::NotFound("database " + session_->database);
      return r;
    }
    if (database->sequences.count(s.name)) {
      r.status = Status::AlreadyExists("sequence " + s.name);
      return r;
    }
    database->sequences[s.name] = s.start;
    return r;
  }

  ExecResult RunInsert(const sql::InsertStmt& s) {
    ExecResult r;
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Result<VersionedTable*> table_r = db_->ResolveTable(session_, s.table);
    if (!table_r.ok()) {
      r.status = table_r.status();
      return r;
    }
    VersionedTable* table = table_r.value();
    const TableSchema& schema = table->schema();
    if (view_.level == IsolationLevel::kSerializable &&
        !schema.temporary) {
      r.status = db_->AcquireWrite(&*session_->txn, TableKey(s.table));
      if (!r.ok()) return r;
    }

    // Map column list.
    std::vector<int> targets;
    if (s.columns.empty()) {
      if (!s.rows.empty() && s.rows[0].size() != schema.columns.size()) {
        r.status = Status::InvalidArgument("value count mismatch");
        return r;
      }
      for (size_t i = 0; i < schema.columns.size(); ++i) {
        targets.push_back(static_cast<int>(i));
      }
    } else {
      for (const std::string& col : s.columns) {
        int idx = schema.ColumnIndex(col);
        if (idx < 0) {
          r.status = Status::InvalidArgument("unknown column " + col);
          return r;
        }
        targets.push_back(idx);
      }
    }

    // Insert row by row; undo on mid-statement failure (statement-level
    // atomicity even for dialects that keep the transaction open).
    std::vector<RowId> inserted;
    for (const auto& value_exprs : s.rows) {
      if (value_exprs.size() != targets.size()) {
        r.status = Status::InvalidArgument("value count mismatch");
        break;
      }
      Row row(schema.columns.size(), Value::Null());
      for (size_t i = 0; i < targets.size(); ++i) {
        Result<Value> v = Eval(*value_exprs[i], nullptr, nullptr);
        if (!v.ok()) {
          r.status = v.status();
          break;
        }
        row[static_cast<size_t>(targets[i])] = v.TakeValue();
      }
      if (!r.ok()) break;
      // Auto-increment assignment for missing/NULL PK.
      if (schema.primary_key_index >= 0) {
        size_t pki = static_cast<size_t>(schema.primary_key_index);
        if (schema.columns[pki].auto_increment && row[pki].is_null()) {
          row[pki] = Value::Int(table->NextAutoIncrement());
        }
      }
      Result<RowId> rid = table->Insert(view_, row, &r.stats);
      if (!rid.ok()) {
        r.status = rid.status();
        break;
      }
      inserted.push_back(rid.value());
      ++r.affected;
      if (schema.primary_key_index >= 0) {
        const Value& pk = row[static_cast<size_t>(schema.primary_key_index)];
        CaptureWrite(table, s.table, WriteOpKind::kInsert, pk, row);
        QueueTrigger(WriteOpKind::kInsert, s.table, pk, row);
      } else {
        CaptureWrite(table, s.table, WriteOpKind::kInsert, Value::Null(), row);
      }
    }
    if (!r.ok()) {
      // Undo this statement's inserts (auto-increment draws are NOT undone
      // — the §4.3.2 "holes" behaviour).
      for (RowId rid : inserted) table->Delete(view_, rid, nullptr);
      UndoCapturedWrites();
      r.affected = 0;
      return r;
    }
    FlushTriggers();
    return r;
  }

  ExecResult RunUpdate(const sql::UpdateStmt& s) {
    ExecResult r;
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Result<VersionedTable*> table_r = db_->ResolveTable(session_, s.table);
    if (!table_r.ok()) {
      r.status = table_r.status();
      return r;
    }
    VersionedTable* table = table_r.value();
    const TableSchema& schema = table->schema();
    if (view_.level == IsolationLevel::kSerializable && !schema.temporary) {
      r.status = db_->AcquireWrite(&*session_->txn, TableKey(s.table));
      if (!r.ok()) return r;
    }

    std::vector<int> set_cols;
    for (const auto& [col, expr] : s.sets) {
      (void)expr;
      int idx = schema.ColumnIndex(col);
      if (idx < 0) {
        r.status = Status::InvalidArgument("unknown column " + col);
        return r;
      }
      set_cols.push_back(idx);
    }

    std::vector<std::pair<RowId, Row>> targets;
    r.status = MatchRows(table, s.where.get(), &targets, &r.stats);
    if (!r.ok()) return r;

    struct Applied {
      RowId rid;
      Row before;
    };
    std::vector<Applied> applied;
    for (auto& [rid, before] : targets) {
      Row after = before;
      for (size_t i = 0; i < s.sets.size(); ++i) {
        // SET expressions see the row: per-row RAND() genuinely differs per
        // row here, which is why rewriting it is impossible (§4.3.2).
        Result<Value> v = Eval(*s.sets[i].second, &schema, &before);
        if (!v.ok()) {
          r.status = v.status();
          break;
        }
        after[static_cast<size_t>(set_cols[i])] = v.TakeValue();
      }
      if (!r.ok()) break;
      Status st = table->Update(view_, rid, after, &r.stats);
      if (!st.ok()) {
        r.status = st;
        break;
      }
      applied.push_back({rid, before});
      ++r.affected;
      if (schema.primary_key_index >= 0) {
        size_t pki = static_cast<size_t>(schema.primary_key_index);
        if (before[pki].Compare(after[pki]) != 0) {
          CaptureWrite(table, s.table, WriteOpKind::kDelete, before[pki], {});
          CaptureWrite(table, s.table, WriteOpKind::kInsert, after[pki], after);
        } else {
          CaptureWrite(table, s.table, WriteOpKind::kUpdate, after[pki], after);
        }
        QueueTrigger(WriteOpKind::kUpdate, s.table, after[pki], after);
      } else {
        CaptureWrite(table, s.table, WriteOpKind::kUpdate, Value::Null(),
                     after);
      }
    }
    if (!r.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        table->Update(view_, it->rid, it->before, nullptr);
      }
      UndoCapturedWrites();
      r.affected = 0;
      return r;
    }
    FlushTriggers();
    return r;
  }

  ExecResult RunDelete(const sql::DeleteStmt& s) {
    ExecResult r;
    r.status = CheckDiskFull();
    if (!r.ok()) return r;
    Result<VersionedTable*> table_r = db_->ResolveTable(session_, s.table);
    if (!table_r.ok()) {
      r.status = table_r.status();
      return r;
    }
    VersionedTable* table = table_r.value();
    const TableSchema& schema = table->schema();
    if (view_.level == IsolationLevel::kSerializable && !schema.temporary) {
      r.status = db_->AcquireWrite(&*session_->txn, TableKey(s.table));
      if (!r.ok()) return r;
    }

    std::vector<std::pair<RowId, Row>> targets;
    r.status = MatchRows(table, s.where.get(), &targets, &r.stats);
    if (!r.ok()) return r;

    std::vector<RowId> applied;
    for (auto& [rid, before] : targets) {
      Status st = table->Delete(view_, rid, &r.stats);
      if (!st.ok()) {
        r.status = st;
        break;
      }
      applied.push_back(rid);
      ++r.affected;
      if (schema.primary_key_index >= 0) {
        size_t pki = static_cast<size_t>(schema.primary_key_index);
        CaptureWrite(table, s.table, WriteOpKind::kDelete, before[pki], {});
        QueueTrigger(WriteOpKind::kDelete, s.table, before[pki], {});
      } else {
        CaptureWrite(table, s.table, WriteOpKind::kDelete, Value::Null(), {});
      }
    }
    if (!r.ok()) {
      for (auto it = applied.rbegin(); it != applied.rend(); ++it) {
        table->UndoDelete(view_.id, *it);
      }
      UndoCapturedWrites();
      r.affected = 0;
      return r;
    }
    FlushTriggers();
    return r;
  }

  ExecResult RunSelect(const sql::SelectStmt& s) {
    ExecResult r;
    Result<VersionedTable*> table_r = db_->ResolveTable(session_, s.table);
    if (!table_r.ok()) {
      r.status = table_r.status();
      return r;
    }
    VersionedTable* table = table_r.value();
    const TableSchema& schema = table->schema();
    if (view_.level == IsolationLevel::kSerializable && !schema.temporary) {
      r.status = s.for_update
                     ? db_->AcquireWrite(&*session_->txn, TableKey(s.table))
                     : db_->AcquireRead(&*session_->txn, TableKey(s.table));
      if (!r.ok()) return r;
    }

    std::vector<std::pair<RowId, Row>> matched;
    r.status = MatchRows(table, s.where.get(), &matched, &r.stats);
    if (!r.ok()) return r;

    // ORDER BY.
    if (!s.order_by.empty()) {
      std::vector<int> keys;
      for (const sql::OrderKey& k : s.order_by) {
        int idx = schema.ColumnIndex(k.column);
        if (idx < 0) {
          r.status = Status::InvalidArgument("unknown column " + k.column);
          return r;
        }
        keys.push_back(idx);
      }
      std::stable_sort(matched.begin(), matched.end(),
                       [&](const auto& a, const auto& b) {
                         for (size_t i = 0; i < keys.size(); ++i) {
                           int c = a.second[static_cast<size_t>(keys[i])]
                                       .Compare(
                                           b.second[static_cast<size_t>(
                                               keys[i])]);
                           if (c != 0) {
                             return s.order_by[i].descending ? c > 0 : c < 0;
                           }
                         }
                         return false;
                       });
    }
    if (s.limit >= 0 && matched.size() > static_cast<size_t>(s.limit)) {
      matched.resize(static_cast<size_t>(s.limit));
    }

    // Projection.
    if (s.star) {
      for (const sql::ColumnDef& c : schema.columns) r.columns.push_back(c.name);
      for (auto& [rid, row] : matched) {
        (void)rid;
        r.rows.push_back(std::move(row));
      }
    } else {
      bool has_agg = false;
      for (const sql::SelectItem& item : s.items) {
        has_agg = has_agg || item.agg != sql::AggFunc::kNone;
      }
      if (has_agg) {
        Row out;
        for (const sql::SelectItem& item : s.items) {
          if (item.agg == sql::AggFunc::kNone) {
            r.status = Status::NotSupported(
                "mixing aggregates and plain columns requires GROUP BY, "
                "which this dialect does not provide");
            return r;
          }
          Result<Value> agg = EvalAggregate(item, schema, matched);
          if (!agg.ok()) {
            r.status = agg.status();
            return r;
          }
          out.push_back(agg.TakeValue());
          r.columns.push_back(AggLabel(item));
        }
        r.rows.push_back(std::move(out));
      } else {
        for (const sql::SelectItem& item : s.items) {
          r.columns.push_back(sql::ExprToSql(*item.expr));
        }
        for (auto& [rid, row] : matched) {
          (void)rid;
          Row out;
          for (const sql::SelectItem& item : s.items) {
            Result<Value> v = Eval(*item.expr, &schema, &row);
            if (!v.ok()) {
              r.status = v.status();
              return r;
            }
            out.push_back(v.TakeValue());
          }
          r.rows.push_back(std::move(out));
        }
      }
    }
    r.stats.rows_returned = r.rows.size();
    return r;
  }

  static std::string AggLabel(const sql::SelectItem& item) {
    std::string inner = item.expr ? sql::ExprToSql(*item.expr) : "*";
    switch (item.agg) {
      case sql::AggFunc::kCount: return "COUNT(" + inner + ")";
      case sql::AggFunc::kSum: return "SUM(" + inner + ")";
      case sql::AggFunc::kMin: return "MIN(" + inner + ")";
      case sql::AggFunc::kMax: return "MAX(" + inner + ")";
      case sql::AggFunc::kAvg: return "AVG(" + inner + ")";
      default: return inner;
    }
  }

  Result<Value> EvalAggregate(
      const sql::SelectItem& item, const TableSchema& schema,
      const std::vector<std::pair<RowId, Row>>& rows) {
    if (item.agg == sql::AggFunc::kCount && item.expr == nullptr) {
      return Value::Int(static_cast<int64_t>(rows.size()));
    }
    int64_t count = 0;
    double sum = 0;
    bool all_int = true;
    std::optional<Value> min, max;
    for (const auto& [rid, row] : rows) {
      (void)rid;
      Result<Value> v = Eval(*item.expr, &schema, &row);
      if (!v.ok()) return v;
      if (v.value().is_null()) continue;
      ++count;
      sum += v.value().NumericValue();
      all_int = all_int && v.value().type() == sql::ValueType::kInt;
      if (!min || v.value().Compare(*min) < 0) min = v.value();
      if (!max || v.value().Compare(*max) > 0) max = v.value();
    }
    switch (item.agg) {
      case sql::AggFunc::kCount:
        return Value::Int(count);
      case sql::AggFunc::kSum:
        if (count == 0) return Value::Null();
        return all_int ? Value::Int(static_cast<int64_t>(sum))
                       : Value::Double(sum);
      case sql::AggFunc::kMin:
        return min ? *min : Value::Null();
      case sql::AggFunc::kMax:
        return max ? *max : Value::Null();
      case sql::AggFunc::kAvg:
        return count == 0 ? Value::Null() : Value::Double(sum / count);
      default:
        return Status::Internal("bad aggregate");
    }
  }

  ExecResult RunCall(const sql::CallStmt& s) {
    ExecResult r;
    auto it = db_->procedures_.find(s.procedure);
    if (it == db_->procedures_.end()) {
      r.status = Status::NotFound("procedure " + s.procedure);
      return r;
    }
    std::vector<Value> args;
    for (const auto& e : s.args) {
      Result<Value> v = Eval(*e, nullptr, nullptr);
      if (!v.ok()) {
        r.status = v.status();
        return r;
      }
      args.push_back(v.TakeValue());
    }
    ProcedureContext ctx(db_, session_->id, std::move(args));
    // NOTE: a procedure is a black box — its inner statements apply as they
    // run, and a late failure does not undo the earlier ones (only the
    // surrounding transaction can). This mirrors real engines.
    r.status = it->second(&ctx);
    return r;
  }

  /// Rolls the transaction writeset back to its size at statement start
  /// (statement-level atomicity for the capture stream too).
  void UndoCapturedWrites() {
    if (!db_->options_.capture_writesets || !session_->txn) return;
    auto& ops = session_->txn->writeset.ops;
    if (ops.size() > ws_mark_) ops.resize(ws_mark_);
    pending_trigger_ops_.clear();
  }

  /// Triggers fire only once the statement as a whole succeeded, so that a
  /// failed statement leaves no trigger side effects behind.
  void FlushTriggers() {
    std::vector<WriteOp> ops;
    ops.swap(pending_trigger_ops_);
    for (const WriteOp& op : ops) db_->FireTriggers(session_, op, 0);
  }

  void QueueTrigger(WriteOpKind kind, const sql::TableRef& ref,
                    const Value& pk, Row after) {
    WriteOp op;
    op.kind = kind;
    op.database = ref.database.empty() ? session_->database : ref.database;
    op.table = ref.table;
    op.primary_key = pk;
    op.after = std::move(after);
    pending_trigger_ops_.push_back(std::move(op));
  }

  Rdbms* db_;
  Rdbms::Session* session_;
  TxnView view_;
  size_t ws_mark_;
  std::vector<WriteOp> pending_trigger_ops_;
  // Lookup-only memo keyed by AST node; hashed (never ordered) so that
  // address order cannot become iteration order.
  HashMap<const sql::Expr*, std::vector<Value>> subquery_cache_;
};

// ---------------------------------------------------------------------------
// ProcedureContext

ExecResult ProcedureContext::Exec(const std::string& sql) {
  return rdbms_->Execute(session_, sql);
}

// ---------------------------------------------------------------------------
// Rdbms

Rdbms::Rdbms(RdbmsOptions options)
    : options_(std::move(options)), rand_rng_(options_.rand_seed) {
  Database main;
  main.name = "main";
  databases_.emplace("main", std::move(main));
  users_.insert("admin");
}

Result<SessionId> Rdbms::Connect(const std::string& user,
                                 const std::string& database) {
  if (options_.enforce_authentication && !users_.count(user)) {
    return Status::Unavailable("authentication failed for user '" + user +
                               "' on " + name());
  }
  if (!databases_.count(database)) {
    return Status::NotFound("database " + database);
  }
  Session s;
  s.id = next_session_++;
  s.user = user;
  s.database = database;
  s.isolation = options_.default_isolation;
  SessionId id = s.id;
  sessions_.emplace(id, std::move(s));
  return id;
}

void Rdbms::Disconnect(SessionId session) {
  Session* s = FindSession(session);
  if (s == nullptr) return;
  if (s->txn) RollbackTxn(s);
  // §4.1.4: the engine frees temporary tables when the connection drops.
  sessions_.erase(session);
}

bool Rdbms::HasSession(SessionId session) const {
  return sessions_.count(session) > 0;
}

Status Rdbms::SetIsolation(SessionId session, IsolationLevel level) {
  Session* s = FindSession(session);
  if (s == nullptr) return Status::NotFound("session");
  if (s->txn) {
    return Status::InvalidArgument("cannot change isolation mid-transaction");
  }
  if (level == IsolationLevel::kSnapshot &&
      !options_.dialect.supports_snapshot_isolation) {
    // §4.1.2: engines without SI silently fall back (documented downgrade).
    s->isolation = IsolationLevel::kReadCommitted;
    return Status::OK();
  }
  s->isolation = level;
  return Status::OK();
}

IsolationLevel Rdbms::EffectiveIsolation(SessionId session) const {
  const Session* s = FindSession(session);
  return s == nullptr ? options_.default_isolation : s->isolation;
}

bool Rdbms::InTransaction(SessionId session) const {
  const Session* s = FindSession(session);
  return s != nullptr && s->txn.has_value() && s->txn->explicit_txn;
}

const Writeset* Rdbms::CurrentWriteset(SessionId session) const {
  const Session* s = FindSession(session);
  if (s == nullptr || !s->txn) return nullptr;
  return &s->txn->writeset;
}

ExecResult Rdbms::Execute(SessionId session, const std::string& sql_text) {
  Result<sql::Statement> parsed = sql::Parse(sql_text);
  if (!parsed.ok()) {
    ExecResult r;
    r.status = parsed.status();
    ++stats_.statement_errors;
    return r;
  }
  return ExecuteStmt(session, parsed.value());
}

ExecResult Rdbms::ExecuteStmt(SessionId session, const sql::Statement& stmt) {
  ExecResult r;
  Session* s = FindSession(session);
  if (s == nullptr) {
    r.status = Status::NotFound("no such session");
    return r;
  }
  ++stats_.statements_executed;
  EngineMetrics::Get().statements->Increment();

  // Transaction control.
  switch (stmt.type()) {
    case sql::StmtType::kBegin: {
      if (s->txn && s->txn->explicit_txn) {
        r.status = Status::InvalidArgument("transaction already open");
      } else {
        r.status = BeginTxn(s, /*explicit_txn=*/true);
        r.cost_us = static_cast<int64_t>(options_.cost_model.begin_us);
      }
      return r;
    }
    case sql::StmtType::kCommit: {
      if (!s->txn) return r;  // COMMIT outside txn is a no-op.
      bool has_writes =
          !s->txn->writeset.empty() || !s->txn->statements.empty();
      r.status = CommitTxn(s);
      // Only commits that wrote pay the durable log flush; read-only
      // commits are a no-op at the storage layer.
      r.cost_us = static_cast<int64_t>(has_writes ? options_.cost_model.commit_us
                                                  : options_.cost_model.begin_us);
      return r;
    }
    case sql::StmtType::kRollback: {
      if (s->txn) RollbackTxn(s);
      r.cost_us = static_cast<int64_t>(options_.cost_model.begin_us);
      return r;
    }
    default:
      break;
  }

  // PostgreSQL-style poisoned transactions reject everything until
  // ROLLBACK (§4.1.2).
  if (s->txn && s->txn->failed) {
    r.status = Status::Aborted(
        "current transaction is aborted, commands ignored until ROLLBACK");
    return r;
  }

  bool implicit = !s->txn;
  if (implicit) {
    r.status = BeginTxn(s, /*explicit_txn=*/false);
    if (!r.ok()) return r;
  } else if (s->txn->level == IsolationLevel::kReadCommitted) {
    // Read-committed re-snapshots every statement.
    s->txn->snapshot = commit_seq_;
  }

  StatementExecutor exec(this, s);
  ExecResult result = exec.Run(stmt);
  stats_.rows_scanned += result.stats.rows_scanned;
  stats_.rows_written += result.stats.rows_written;
  result.cost_us = options_.cost_model.StatementCost(
      result.stats, options_.capture_writesets && options_.writesets_via_triggers);

  if (!result.ok()) {
    ++stats_.statement_errors;
    if (result.status.code() == StatusCode::kConflict) ++stats_.conflicts;
    if (result.status.code() == StatusCode::kDeadlock) ++stats_.deadlocks;
    if (implicit) {
      RollbackTxn(s);
    } else if (options_.dialect.abort_txn_on_error) {
      s->txn->failed = true;  // Poison; MySQL-like dialects keep going.
    }
    return result;
  }

  // Record write statements for the binlog / recovery log. CALL is not
  // recorded itself: the procedure's inner write statements were already
  // captured as they ran (replicating both would double-apply).
  if (stmt.IsWrite() && stmt.type() != sql::StmtType::kCall) {
    s->txn->statements.push_back(sql::ToSql(stmt));
  }

  if (implicit) {
    Status commit = CommitTxn(s);
    if (!commit.ok()) {
      result.status = commit;
      return result;
    }
    result.cost_us += static_cast<int64_t>(options_.cost_model.commit_us);
  }
  return result;
}

Status Rdbms::BeginTxn(Session* session, bool explicit_txn) {
  Txn txn;
  txn.id = next_txn_++;
  txn.snapshot = commit_seq_;
  txn.level = session->isolation;
  if (txn.level == IsolationLevel::kSnapshot &&
      !options_.dialect.supports_snapshot_isolation) {
    txn.level = IsolationLevel::kReadCommitted;
  }
  txn.explicit_txn = explicit_txn;
  session->txn = std::move(txn);
  return Status::OK();
}

Status Rdbms::CommitTxn(Session* session) {
  Txn& txn = *session->txn;
  if (txn.failed) {
    RollbackTxn(session);
    return Status::Aborted("transaction was aborted; rolled back at COMMIT");
  }
  bool has_writes = !txn.writeset.empty() || !txn.statements.empty();
  CommitSeq cs = 0;
  if (has_writes) {
    cs = ++commit_seq_;
  }
  // Vacuum horizon: the oldest snapshot a live transaction might read.
  CommitSeq horizon = commit_seq_;
  // replicheck:allow(unordered-iter) commutative min over snapshots; no order escapes
  for (const auto& [sid2, sess2] : sessions_) {
    (void)sid2;
    if (sess2.txn && sess2.id != session->id) {
      horizon = std::min(horizon, sess2.txn->snapshot);
    }
  }
  for (auto& [db_name, database] : databases_) {
    (void)db_name;
    for (auto& [tname, table] : database.tables) {
      (void)tname;
      table->CommitTxn(txn.id, cs == 0 ? commit_seq_ : cs, horizon);
    }
  }
  for (auto& [tname, table] : session->temp_tables) {
    (void)tname;
    table->CommitTxn(txn.id, cs == 0 ? commit_seq_ : cs, horizon);
  }
  if (options_.dialect.temp_tables_dropped_on_commit) {
    session->temp_tables.clear();
  }
  ReleaseLocks(txn.id);
  if (has_writes) {
    BinlogEntry entry;
    entry.commit_seq = cs;
    entry.txn = txn.id;
    if (options_.binlog_statements) entry.statements = txn.statements;
    if (options_.capture_writesets) entry.writeset = txn.writeset;
    entry.session_user = session->user;
    entry.commit_time_micros = options_.clock();
    binlog_.push_back(std::move(entry));
  }
  ++stats_.transactions_committed;
  EngineMetrics::Get().commits->Increment();
  session->txn.reset();
  return Status::OK();
}

void Rdbms::RollbackTxn(Session* session) {
  Txn& txn = *session->txn;
  for (auto& [db_name, database] : databases_) {
    (void)db_name;
    for (auto& [tname, table] : database.tables) {
      (void)tname;
      table->RollbackTxn(txn.id);
    }
  }
  for (auto& [tname, table] : session->temp_tables) {
    (void)tname;
    table->RollbackTxn(txn.id);
  }
  ReleaseLocks(txn.id);
  ++stats_.transactions_aborted;
  EngineMetrics::Get().aborts->Increment();
  session->txn.reset();
}

TxnView Rdbms::ViewFor(Session* session) {
  TxnView v;
  if (session->txn) {
    v.id = session->txn->id;
    v.snapshot = session->txn->snapshot;
    v.level = session->txn->level;
  } else {
    v.snapshot = commit_seq_;
    v.level = session->isolation;
  }
  return v;
}

Status Rdbms::AcquireRead(Txn* txn, const std::string& table_key) {
  TableLocks& locks = locks_[table_key];
  for (TxnId w : locks.writers) {
    if (w != txn->id) {
      return Status::Deadlock("table " + table_key +
                              " write-locked by another transaction");
    }
  }
  locks.readers.insert(txn->id);
  txn->touched_tables.insert(table_key);
  return Status::OK();
}

Status Rdbms::AcquireWrite(Txn* txn, const std::string& table_key) {
  TableLocks& locks = locks_[table_key];
  for (TxnId r : locks.readers) {
    if (r != txn->id) {
      return Status::Deadlock("table " + table_key +
                              " read-locked by another transaction");
    }
  }
  for (TxnId w : locks.writers) {
    if (w != txn->id) {
      return Status::Deadlock("table " + table_key +
                              " write-locked by another transaction");
    }
  }
  locks.writers.insert(txn->id);
  txn->touched_tables.insert(table_key);
  return Status::OK();
}

void Rdbms::ReleaseLocks(TxnId txn) {
  for (auto& [key, locks] : locks_) {
    (void)key;
    locks.readers.erase(txn);
    locks.writers.erase(txn);
  }
}

Rdbms::Database* Rdbms::FindDatabase(const std::string& name) {
  auto it = databases_.find(name);
  return it == databases_.end() ? nullptr : &it->second;
}

const Rdbms::Database* Rdbms::FindDatabase(const std::string& name) const {
  auto it = databases_.find(name);
  return it == databases_.end() ? nullptr : &it->second;
}

Rdbms::Session* Rdbms::FindSession(SessionId id) {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

const Rdbms::Session* Rdbms::FindSession(SessionId id) const {
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : &it->second;
}

Result<VersionedTable*> Rdbms::ResolveTable(Session* session,
                                            const sql::TableRef& ref) {
  if (ref.database.empty()) {
    auto tit = session->temp_tables.find(ref.table);
    if (tit != session->temp_tables.end()) {
      // §4.1.4 (Sybase): no temp tables inside transactions.
      if (!options_.dialect.temp_tables_in_transactions && session->txn &&
          session->txn->explicit_txn) {
        return Status::NotSupported(
            options_.dialect.name +
            " does not allow temporary tables within transactions");
      }
      return tit->second.get();
    }
  }
  std::string db_name = ref.database.empty() ? session->database : ref.database;
  Database* database = FindDatabase(db_name);
  if (database == nullptr) return Status::NotFound("database " + db_name);
  auto it = database->tables.find(ref.table);
  if (it == database->tables.end()) {
    return Status::NotFound("table " + ref.ToString());
  }
  return it->second.get();
}

void Rdbms::FireTriggers(Session* session, const WriteOp& op, int depth) {
  (void)depth;
  if (trigger_depth_ > 4) {
    REPLIDB_LOG(Warn) << "trigger recursion limit hit on " << op.table;
    return;
  }
  ++trigger_depth_;
  struct DepthGuard {
    int* d;
    ~DepthGuard() { --*d; }
  } guard{&trigger_depth_};
  for (const TriggerDef& t : triggers_) {
    if (t.database != op.database || t.table != op.table) continue;
    if (t.event != op.kind) continue;
    // §4.1.5: per-user triggers — same SQL, different effect per user.
    if (!t.only_for_user.empty() && t.only_for_user != session->user) continue;
    Status st = t.action(this, session->id, op);
    if (!st.ok()) {
      REPLIDB_LOG(Warn) << "trigger " << t.name << " failed: " << st.ToString();
    }
  }
}

Result<CommitSeq> Rdbms::ApplyWriteset(const Writeset& ws) {
  if (disk_full_) return Status::DiskFull("cannot apply writeset");
  if (ws.incomplete) {
    return Status::NotSupported(
        "writeset is incomplete (table without primary key)");
  }
  Result<SessionId> sid = Connect("admin", "main");
  if (!sid.ok()) return sid.status();
  Session* s = FindSession(sid.value());
  Status st = BeginTxn(s, /*explicit_txn=*/true);
  if (!st.ok()) {
    Disconnect(sid.value());
    return st;
  }
  TxnView view = ViewFor(s);
  for (const WriteOp& op : ws.ops) {
    Database* database = FindDatabase(op.database);
    if (database == nullptr) {
      st = Status::NotFound("database " + op.database);
      break;
    }
    auto tit = database->tables.find(op.table);
    if (tit == database->tables.end()) {
      st = Status::NotFound("table " + op.table);
      break;
    }
    VersionedTable* table = tit->second.get();
    std::optional<RowId> rid = table->LookupPk(view, op.primary_key, nullptr);
    switch (op.kind) {
      case WriteOpKind::kInsert: {
        if (rid) {
          st = Status::ConstraintViolation("apply: duplicate primary key " +
                                           op.primary_key.ToString());
          break;
        }
        Result<RowId> ins = table->Insert(view, op.after, nullptr);
        st = ins.ok() ? Status::OK() : ins.status();
        break;
      }
      case WriteOpKind::kUpdate: {
        // Upsert semantics: a slave that missed the insert still converges.
        if (rid) {
          st = table->Update(view, *rid, op.after, nullptr);
        } else {
          Result<RowId> ins = table->Insert(view, op.after, nullptr);
          st = ins.ok() ? Status::OK() : ins.status();
        }
        break;
      }
      case WriteOpKind::kDelete: {
        if (rid) st = table->Delete(view, *rid, nullptr);
        break;
      }
    }
    if (!st.ok()) break;
  }
  if (!st.ok()) {
    RollbackTxn(s);
    Disconnect(sid.value());
    return st;
  }
  s->txn->writeset = ws;  // Propagate onward in this replica's binlog.
  Status commit = CommitTxn(s);
  CommitSeq cs = commit_seq_;
  Disconnect(sid.value());
  if (!commit.ok()) return commit;
  return cs;
}

uint64_t Rdbms::ContentHash() const {
  TxnView view;
  view.snapshot = commit_seq_;
  view.level = IsolationLevel::kSnapshot;
  uint64_t h = 0;
  for (const auto& [db_name, database] : databases_) {
    for (const auto& [tname, table] : database.tables) {
      uint64_t th = table->ContentHash(view);
      // Bind table identity into the hash.
      for (char c : db_name) th = th * 131 + static_cast<unsigned char>(c);
      for (char c : tname) th = th * 131 + static_cast<unsigned char>(c);
      h ^= th;
    }
  }
  return h;
}

std::vector<std::pair<std::string, uint64_t>> Rdbms::TableDigests() const {
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [db_name, database] : databases_) {
    for (const auto& [tname, table] : database.tables) {
      out.emplace_back(db_name + "." + tname, table->digest());
    }
  }
  return out;
}

uint64_t Rdbms::ContentHashWithSequences() const {
  uint64_t h = ContentHash();
  for (const auto& [db_name, database] : databases_) {
    (void)db_name;
    for (const auto& [sname, next] : database.sequences) {
      for (char c : sname) h = h * 131 + static_cast<unsigned char>(c);
      h ^= static_cast<uint64_t>(next) * 0x9e3779b97f4a7c15ULL;
    }
    for (const auto& [tname, table] : database.tables) {
      (void)tname;
      h ^= static_cast<uint64_t>(table->auto_increment_counter()) *
           0xbf58476d1ce4e5b9ULL;
    }
  }
  return h;
}

void Rdbms::CreateUser(const std::string& user) { users_.insert(user); }

bool Rdbms::HasUser(const std::string& user) const {
  return users_.count(user) > 0;
}

void Rdbms::RegisterProcedure(const std::string& name, Procedure body) {
  procedures_[name] = std::move(body);
}

bool Rdbms::HasProcedure(const std::string& name) const {
  return procedures_.count(name) > 0;
}

void Rdbms::RegisterTrigger(TriggerDef trigger) {
  triggers_.push_back(std::move(trigger));
}

Result<BackupImage> Rdbms::Backup(const BackupOptions& opts) const {
  BackupImage image;
  image.source_name = name();
  image.as_of = commit_seq_;
  image.has_metadata = opts.include_metadata;
  image.has_sequences = opts.include_sequences;
  TxnView view;
  view.snapshot = commit_seq_;
  view.level = IsolationLevel::kSnapshot;
  for (const auto& [db_name, database] : databases_) {
    BackupImage::DatabaseImage di;
    di.name = db_name;
    for (const auto& [tname, table] : database.tables) {
      (void)tname;
      BackupImage::TableImage ti;
      ti.schema = table->schema();
      std::vector<std::pair<RowId, sql::Row>> rows;
      table->Scan(view, &rows, nullptr);
      for (auto& [rid, row] : rows) {
        (void)rid;
        ti.rows.push_back(std::move(row));
      }
      if (opts.include_sequences) {
        ti.auto_increment = table->auto_increment_counter();
      }
      di.tables.push_back(std::move(ti));
    }
    if (opts.include_sequences) di.sequences = database.sequences;
    image.databases.push_back(std::move(di));
  }
  if (opts.include_metadata) {
    image.users.assign(users_.begin(), users_.end());
    for (const TriggerDef& t : triggers_) image.trigger_names.push_back(t.name);
  }
  return image;
}

Status Rdbms::Restore(const BackupImage& image) {
  if (!sessions_.empty()) {
    return Status::InvalidArgument("close sessions before restore");
  }
  databases_.clear();
  locks_.clear();
  binlog_.clear();
  commit_seq_ = image.as_of;
  for (const auto& di : image.databases) {
    Database database;
    database.name = di.name;
    for (const auto& ti : di.tables) {
      auto table = std::make_unique<VersionedTable>(ti.schema,
                                                    options_.physical_seed);
      TxnView load_view;
      load_view.id = next_txn_++;
      load_view.level = IsolationLevel::kReadCommitted;
      for (const sql::Row& row : ti.rows) {
        Result<RowId> rid = table->Insert(load_view, row, nullptr);
        if (!rid.ok()) return rid.status();
      }
      table->CommitTxn(load_view.id, commit_seq_ == 0 ? 1 : commit_seq_);
      if (image.has_sequences) {
        table->BumpAutoIncrement(ti.auto_increment - 1);
      }
      database.tables.emplace(ti.schema.name, std::move(table));
    }
    if (image.has_sequences) database.sequences = di.sequences;
    databases_.emplace(di.name, std::move(database));
  }
  if (commit_seq_ == 0) commit_seq_ = 1;
  if (image.has_metadata) {
    users_.clear();
    users_.insert(image.users.begin(), image.users.end());
  } else {
    // §4.1.5: a data-only clone loses the user catalog (and triggers);
    // only the bootstrap admin remains.
    users_.clear();
    users_.insert("admin");
    triggers_.clear();
  }
  if (!databases_.count("main")) {
    Database main;
    main.name = "main";
    databases_.emplace("main", std::move(main));
  }
  return Status::OK();
}

int64_t Rdbms::SequenceValue(const std::string& database,
                             const std::string& sequence) const {
  const Database* db = FindDatabase(database);
  if (db == nullptr) return 0;
  auto it = db->sequences.find(sequence);
  return it == db->sequences.end() ? 0 : it->second;
}

uint64_t Rdbms::TableRowCount(const std::string& database,
                              const std::string& table) const {
  const Database* db = FindDatabase(database);
  if (db == nullptr) return 0;
  auto it = db->tables.find(table);
  if (it == db->tables.end()) return 0;
  TxnView view;
  view.snapshot = commit_seq_;
  view.level = IsolationLevel::kSnapshot;
  return it->second->CountVisible(view);
}

}  // namespace replidb::engine
