#ifndef REPLIDB_ENGINE_TABLE_H_
#define REPLIDB_ENGINE_TABLE_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include "common/hashing.h"
#include <vector>

#include "common/result.h"
#include "engine/types.h"
#include "sql/ast.h"
#include "sql/value.h"

namespace replidb::engine {

/// \brief Resolved table schema.
struct TableSchema {
  std::string name;
  std::vector<sql::ColumnDef> columns;
  int primary_key_index = -1;  ///< -1 if no PK.
  bool temporary = false;

  /// Builds from a parsed CREATE TABLE.
  static Result<TableSchema> FromCreate(const sql::CreateTableStmt& stmt);

  /// Index of a column by name, -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// \brief The transaction's view used for visibility and conflict checks.
struct TxnView {
  TxnId id = 0;
  CommitSeq snapshot = 0;  ///< Committed-as-of horizon for reads.
  IsolationLevel level = IsolationLevel::kReadCommitted;
};

/// \brief MVCC storage for one table.
///
/// Each logical row (RowId) carries a version chain. Versions created by a
/// transaction become visible to others only after CommitTxn stamps them
/// with a commit sequence number. Conflict detection is eager and no-wait:
///  - under SI, writing a row whose newest version committed after the
///    writer's snapshot, or is uncommitted by another transaction, aborts
///    the writer (first-updater-wins, like PostgreSQL);
///  - under read-committed, only uncommitted-by-other conflicts abort (a
///    real engine would block on the row lock; no-wait models the lock
///    timeout and keeps the simulator synchronous);
///  - serializable-mode table locks live in the Rdbms lock manager, not
///    here.
class VersionedTable {
 public:
  VersionedTable(TableSchema schema, uint64_t physical_seed);

  const TableSchema& schema() const { return schema_; }

  /// Inserts a row (must match schema width). Enforces PK/unique
  /// constraints against all live or pending rows.
  Result<RowId> Insert(const TxnView& txn, sql::Row row, ExecStats* stats);

  /// Replaces the visible version of `row_id` with `new_row`.
  Status Update(const TxnView& txn, RowId row_id, sql::Row new_row,
                ExecStats* stats);

  /// Deletes the visible version of `row_id`.
  Status Delete(const TxnView& txn, RowId row_id, ExecStats* stats);

  /// Reverts the newest pending delete mark `txn` holds on `row_id`
  /// (statement-level atomicity support; see executor undo path).
  void UndoDelete(TxnId txn, RowId row_id);

  /// Appends every row visible to `txn` to `out`, in this replica's
  /// physical order (seeded hash of RowId — deliberately not the same on
  /// every replica; see RdbmsOptions::physical_seed).
  void Scan(const TxnView& txn,
            std::vector<std::pair<RowId, sql::Row>>* out,
            ExecStats* stats) const;

  /// Fetches the version of `row_id` visible to `txn`.
  Result<sql::Row> Get(const TxnView& txn, RowId row_id) const;

  /// Point lookup by primary key over rows visible to `txn`.
  /// Returns nullopt if not found. Requires a PK.
  std::optional<RowId> LookupPk(const TxnView& txn, const sql::Value& pk,
                                ExecStats* stats) const;

  /// Makes txn's pending changes durable at `commit_seq`. `gc_horizon` is
  /// the oldest snapshot any live transaction can read (vacuum): committed
  /// versions deleted at or before it are unreachable and are pruned from
  /// the touched chains.
  void CommitTxn(TxnId txn, CommitSeq commit_seq, CommitSeq gc_horizon = 0);

  /// Discards txn's pending changes.
  void RollbackTxn(TxnId txn);

  /// True if `txn` has pending (uncommitted) changes here.
  bool HasPending(TxnId txn) const { return pending_.count(txn) > 0; }

  /// Next auto-increment value; non-transactional, never rolled back
  /// (§4.3.2: holes are expected).
  int64_t NextAutoIncrement() { return auto_increment_++; }
  int64_t auto_increment_counter() const { return auto_increment_; }
  /// Raises the counter to at least `v` (used when inserts provide
  /// explicit values, like MySQL does).
  void BumpAutoIncrement(int64_t v) {
    if (v >= auto_increment_) auto_increment_ = v + 1;
  }

  /// Number of committed live rows as of `snapshot` (diagnostics).
  uint64_t CountVisible(const TxnView& txn) const;

  /// Order-insensitive content hash of the rows visible to `txn`
  /// (replica divergence detection).
  uint64_t ContentHash(const TxnView& txn) const;

  /// Incremental digest of the committed live row set: the XOR fold of
  /// per-row hashes, updated in CommitTxn as versions become (in)visible,
  /// so reading it is O(1) instead of an O(table) scan. Always equals
  /// ContentHash at a snapshot of the latest commit (audit subsystem).
  uint64_t digest() const { return digest_; }

 private:
  struct Version {
    sql::Row data;
    TxnId creator = 0;
    CommitSeq created = 0;               ///< 0 while uncommitted.
    TxnId deleter = 0;                   ///< 0 if not deleted.
    CommitSeq deleted = 0;               ///< 0 while delete uncommitted.
  };
  struct Chain {
    std::vector<Version> versions;  ///< Oldest first.
  };

  /// Visibility of one version for `txn`.
  bool Visible(const TxnView& txn, const Version& v) const;
  /// Returns the visible version index in the chain, or -1.
  int VisibleIndex(const TxnView& txn, const Chain& chain) const;
  /// Newest version that is committed or pending (conflict anchor), or -1.
  int NewestActive(const Chain& chain) const;

  Status CheckUnique(const TxnView& txn, const sql::Row& row,
                     std::optional<RowId> exclude_row);

  TableSchema schema_;
  uint64_t physical_seed_;
  std::map<RowId, Chain> rows_;
  /// PK value -> candidate chains. Entries may be stale (old PK values,
  /// rolled-back inserts); lookups verify against the chain.
  std::map<sql::Value, std::set<RowId>> pk_index_;
  RowId next_row_id_ = 1;
  int64_t auto_increment_ = 1;
  /// Running XOR fold over committed live rows; see digest().
  uint64_t digest_ = 0;
  /// txn -> row ids with pending versions (for commit/rollback).
  HashMap<TxnId, std::set<RowId>> pending_;
};

}  // namespace replidb::engine

#endif  // REPLIDB_ENGINE_TABLE_H_
