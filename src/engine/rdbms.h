#ifndef REPLIDB_ENGINE_RDBMS_H_
#define REPLIDB_ENGINE_RDBMS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include "common/hashing.h"
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "engine/options.h"
#include "engine/table.h"
#include "engine/types.h"
#include "sql/ast.h"

namespace replidb::engine {

class Rdbms;

/// \brief Context handed to native stored procedures. A procedure can run
/// further SQL inside the caller's session and transaction — and, true to
/// the paper (§4.2.1), there is no schema describing which tables it will
/// touch or whether it is deterministic.
class ProcedureContext {
 public:
  ProcedureContext(Rdbms* rdbms, SessionId session,
                   std::vector<sql::Value> args)
      : rdbms_(rdbms), session_(session), args_(std::move(args)) {}

  Rdbms* rdbms() { return rdbms_; }
  SessionId session() const { return session_; }
  const std::vector<sql::Value>& args() const { return args_; }

  /// Executes SQL inside the caller's transaction.
  ExecResult Exec(const std::string& sql);

 private:
  Rdbms* rdbms_;
  SessionId session_;
  std::vector<sql::Value> args_;
};

/// Stored procedure body.
using Procedure = std::function<Status(ProcedureContext*)>;

/// \brief Trigger definition: fires after a row event on a table and may
/// run more SQL in the same transaction (e.g. updating a reporting
/// database instance — the paper's §4.1.1 example). `only_for_user`
/// reproduces §4.1.5: the same statement can behave differently depending
/// on who executes it.
struct TriggerDef {
  std::string name;
  std::string database;
  std::string table;
  WriteOpKind event = WriteOpKind::kInsert;
  std::string only_for_user;  ///< Empty = fires for every user.
  std::function<Status(Rdbms*, SessionId, const WriteOp&)> action;
};

/// \brief Options for Backup (§4.4.1 / §4.1.5).
struct BackupOptions {
  /// Capture users, triggers and stored-procedure registrations. Typical
  /// backup tools do not ("capture only data, without user-related
  /// information"), which breaks replica cloning.
  bool include_metadata = false;
  /// Capture sequence positions and auto-increment counters — these live
  /// outside the transactional log (§4.2.3), so default tools miss them.
  bool include_sequences = false;
};

/// \brief A point-in-time backup image of an Rdbms.
struct BackupImage {
  std::string source_name;
  CommitSeq as_of = 0;
  bool has_metadata = false;
  bool has_sequences = false;

  struct TableImage {
    TableSchema schema;
    std::vector<sql::Row> rows;
    int64_t auto_increment = 1;  ///< Only meaningful if has_sequences.
  };
  struct DatabaseImage {
    std::string name;
    std::vector<TableImage> tables;
    std::map<std::string, int64_t> sequences;  ///< Only if has_sequences.
  };
  std::vector<DatabaseImage> databases;
  std::vector<std::string> users;          ///< Only if has_metadata.
  std::vector<std::string> trigger_names;  ///< Only if has_metadata.

  /// Approximate size in bytes (drives transfer/restore cost models).
  int64_t SizeBytes() const;
};

/// \brief Aggregate engine counters exposed for benches and tests.
struct RdbmsStats {
  uint64_t transactions_committed = 0;
  uint64_t transactions_aborted = 0;
  uint64_t statements_executed = 0;
  uint64_t statement_errors = 0;
  uint64_t conflicts = 0;   ///< SI first-updater-wins aborts.
  uint64_t deadlocks = 0;   ///< No-wait lock conflicts.
  uint64_t rows_scanned = 0;  ///< Row-version visits across all statements.
  uint64_t rows_written = 0;
};

/// \brief An in-memory multi-database SQL engine with MVCC.
///
/// One Rdbms models one database server process (a replica). It hosts
/// multiple named database instances, sequences, users, triggers, and
/// stored procedures, executes the replidb SQL dialect under three
/// isolation levels, captures per-transaction writesets, writes a binlog,
/// and supports hot backup/restore — everything the replication middleware
/// in `src/middleware` needs from a backend, built from scratch.
///
/// The engine is synchronous and single-threaded: callers (the simulated
/// cluster) charge its CostModel-derived service times against simulated
/// replica capacity instead of wall-clock time.
class Rdbms {
 public:
  explicit Rdbms(RdbmsOptions options);
  Rdbms(const Rdbms&) = delete;
  Rdbms& operator=(const Rdbms&) = delete;

  const RdbmsOptions& options() const { return options_; }
  const std::string& name() const { return options_.name; }

  // --- Connections --------------------------------------------------------

  /// Opens a session as `user` against database `database` (created
  /// implicitly if it is the default "main"). Fails when authentication is
  /// enforced and the user is unknown — which happens to cloned replicas
  /// restored from metadata-less backups (§4.1.5).
  Result<SessionId> Connect(const std::string& user = "admin",
                            const std::string& database = "main");
  /// Closes the session; rolls back any open transaction and drops the
  /// session's temporary tables (§4.1.4).
  void Disconnect(SessionId session);

  bool HasSession(SessionId session) const;

  // --- Execution ----------------------------------------------------------

  /// Parses and executes one statement. The result carries status, rows,
  /// affected count, execution stats, and `cost_us` of simulated service
  /// time.
  ExecResult Execute(SessionId session, const std::string& sql);

  /// Executes a pre-parsed statement (the text is re-serialized for the
  /// binlog when needed).
  ExecResult ExecuteStmt(SessionId session, const sql::Statement& stmt);

  /// Session isolation control.
  Status SetIsolation(SessionId session, IsolationLevel level);
  IsolationLevel EffectiveIsolation(SessionId session) const;

  bool InTransaction(SessionId session) const;

  /// Writeset accumulated by the session's open transaction so far
  /// (transaction replication reads this before COMMIT). Null if no
  /// transaction is open.
  const Writeset* CurrentWriteset(SessionId session) const;

  // --- Replication hooks ----------------------------------------------------

  /// Committed-transaction log. Entries carry statement texts and/or
  /// writesets per RdbmsOptions.
  const std::vector<BinlogEntry>& binlog() const { return binlog_; }
  CommitSeq last_commit_seq() const { return commit_seq_; }

  /// Applies a writeset as one transaction (slave apply / certified
  /// commit). Bypasses triggers like real log apply; does NOT advance
  /// sequences (§4.3.2 — the divergence the paper warns about).
  Result<CommitSeq> ApplyWriteset(const Writeset& ws);

  /// Order-insensitive hash of all committed user data across databases.
  /// Two replicas with equal hashes hold the same logical content.
  uint64_t ContentHash() const;

  /// Hash that also covers sequences and auto-increment counters —
  /// diverges between replicas even when data matches (§4.2.3).
  uint64_t ContentHashWithSequences() const;

  /// Incremental per-table digests of committed content, keyed
  /// "database.table". O(#tables): the engine maintains each digest at
  /// commit time, so the audit subsystem never scans (temp tables are
  /// session-scoped and excluded by construction — they live on sessions,
  /// not databases).
  std::vector<std::pair<std::string, uint64_t>> TableDigests() const;

  // --- Administration --------------------------------------------------------

  void CreateUser(const std::string& user);
  bool HasUser(const std::string& user) const;

  void RegisterProcedure(const std::string& name, Procedure body);
  bool HasProcedure(const std::string& name) const;

  void RegisterTrigger(TriggerDef trigger);
  size_t trigger_count() const { return triggers_.size(); }

  Result<BackupImage> Backup(const BackupOptions& opts) const;

  /// Replaces this engine's entire contents with the image (replica
  /// cloning / restore). Sessions must be closed first.
  Status Restore(const BackupImage& image);

  /// Injected resource exhaustion: all writes fail with kDiskFull until
  /// cleared (§4.4.2: "a replica might stop working because its log is
  /// full or its data partition ran out of space").
  void set_disk_full(bool full) { disk_full_ = full; }
  bool disk_full() const { return disk_full_; }

  /// Current sequence position (tests/benches); 0 if missing.
  int64_t SequenceValue(const std::string& database,
                        const std::string& sequence) const;

  /// Number of committed live rows in a table; 0 if missing.
  uint64_t TableRowCount(const std::string& database,
                         const std::string& table) const;

  const RdbmsStats& stats() const { return stats_; }

 private:
  friend class StatementExecutor;

  struct Txn {
    TxnId id = 0;
    CommitSeq snapshot = 0;
    IsolationLevel level = IsolationLevel::kReadCommitted;
    bool failed = false;  ///< PostgreSQL-style poisoned transaction state.
    bool explicit_txn = false;
    Writeset writeset;
    std::vector<std::string> statements;  ///< Write-statement texts.
    std::set<std::string> touched_tables;  ///< "db.table" keys for locks.
    std::set<std::string> temp_tables_used;
  };

  struct Session {
    SessionId id = 0;
    std::string user;
    std::string database;
    IsolationLevel isolation;
    std::optional<Txn> txn;
    /// §4.1.4: temporary tables are connection-scoped.
    std::map<std::string, std::unique_ptr<VersionedTable>> temp_tables;
  };

  struct Database {
    std::string name;
    std::map<std::string, std::unique_ptr<VersionedTable>> tables;
    std::map<std::string, int64_t> sequences;
  };

  struct TableLocks {
    std::set<TxnId> readers;
    std::set<TxnId> writers;
  };

  // Transaction plumbing (used by the executor).
  Status BeginTxn(Session* session, bool explicit_txn);
  Status CommitTxn(Session* session);
  void RollbackTxn(Session* session);
  TxnView ViewFor(Session* session);

  // Lock manager for serializable mode (no-wait, table granularity).
  Status AcquireRead(Txn* txn, const std::string& table_key);
  Status AcquireWrite(Txn* txn, const std::string& table_key);
  void ReleaseLocks(TxnId txn);

  Database* FindDatabase(const std::string& name);
  const Database* FindDatabase(const std::string& name) const;
  Session* FindSession(SessionId id);
  const Session* FindSession(SessionId id) const;

  /// Resolves a table reference for a session: temporary tables shadow
  /// database tables; qualified names select the database instance.
  Result<VersionedTable*> ResolveTable(Session* session,
                                       const sql::TableRef& ref);

  void FireTriggers(Session* session, const WriteOp& op, int depth);

  RdbmsOptions options_;
  Rng rand_rng_;

  std::map<std::string, Database> databases_;
  std::set<std::string> users_;
  std::map<std::string, Procedure> procedures_;
  std::vector<TriggerDef> triggers_;

  HashMap<SessionId, Session> sessions_;
  SessionId next_session_ = 1;
  TxnId next_txn_ = 1;
  CommitSeq commit_seq_ = 0;

  std::map<std::string, TableLocks> locks_;

  std::vector<BinlogEntry> binlog_;
  bool disk_full_ = false;
  int trigger_depth_ = 0;
  RdbmsStats stats_;
};

}  // namespace replidb::engine

#endif  // REPLIDB_ENGINE_RDBMS_H_
