#ifndef REPLIDB_SHIP_PIPELINE_H_
#define REPLIDB_SHIP_PIPELINE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "middleware/common.h"
#include "net/dispatcher.h"
#include "obs/metrics.h"
#include "ship/codec.h"
#include "sim/simulator.h"

namespace replidb::ship {

/// Data-plane message tags.
inline constexpr char kMsgShipBatch[] = "rep.ship.batch";
inline constexpr char kMsgShipCredit[] = "rep.ship.credit";

/// Fixed per-batch framing overhead charged on the wire (message header,
/// batch envelope) on top of the encoded payload.
inline constexpr int64_t kBatchOverheadBytes = 32;

/// Wire size charged for a credit grant (small control-plane message).
inline constexpr int64_t kCreditMsgBytes = 48;

/// One shipped batch. With the codec enabled, `payload` carries the
/// binary-encoded entries; with it disabled, `entries` carries the plain
/// structs (and the wire size is the raw struct estimate).
struct ShipBatchMsg {
  std::string payload;
  std::vector<middleware::ReplicationEntry> entries;
  /// Versions for which the sender wants an explicit receipt ack
  /// (2-safe sync commits).
  std::vector<middleware::GlobalVersion> ack_versions;
};

/// Byte credits granted by a receiver as it durably applies entries.
struct ShipCreditMsg {
  int64_t bytes = 0;
};

/// Why a batch left the sender. kSize: the size cap filled; kTimer: the
/// latency cap expired; kSync: an explicit flush (2-safe commit, resync);
/// kDirect: batching disabled, per-entry shipping; kResume: credits
/// arrived and drained a stalled queue.
enum class FlushReason { kSize, kTimer, kSync, kDirect, kResume };

/// Shipping-pipeline knobs (see README "Shipping pipeline").
struct ShipOptions {
  /// Binary wire codec on the ship path. Off = plain struct shipping with
  /// the raw struct-size estimate charged on the wire.
  bool use_codec = true;
  CodecOptions codec;

  /// Coalesce entries per peer until batch_max_bytes accumulate or
  /// batch_max_delay passes (group shipping). Off = one entry per message.
  bool batching = true;
  int64_t batch_max_bytes = 32 * 1024;
  sim::Duration batch_max_delay = 2 * sim::kMillisecond;

  /// Credit-based flow control: each peer starts with window_bytes of
  /// credit, spends it per shipped byte, and earns it back as the peer
  /// applies. An exhausted window stalls shipping to that peer.
  bool flow_control = true;
  int64_t window_bytes = 256 * 1024;
  /// Bound on bytes queued for one stalled peer; beyond it the newest
  /// entries are dropped (anti-entropy re-ships them later).
  int64_t max_peer_queue_bytes = 8 * 1024 * 1024;

  /// When true the controller defers routing new writes while the master's
  /// ship window to any subscriber is exhausted (backpressure reaches
  /// admission instead of only the queue).
  bool backpressure_admission = false;
};

/// \brief Per-peer shipping pipeline: batches replication entries under a
/// size cap + latency cap, encodes them with the wire codec, and stops
/// shipping to a peer whose credit window is exhausted.
///
/// Owned by whoever pushes the replication stream (the master replica for
/// binlog shipping, the controller for certification distribution and
/// resync). All scheduling runs on the deterministic simulator.
class ShipPipeline {
 public:
  ShipPipeline(sim::Simulator* sim, net::Dispatcher* dispatcher,
               ShipOptions options);
  ~ShipPipeline();

  /// Declares the active peer set. Existing peers keep queue and window;
  /// new peers start with a full window; removed peers are dropped.
  void SetPeers(const std::vector<net::NodeId>& peers);

  /// Drops a peer's queued entries and restores a full window (peer
  /// restarted/resynced, so its unapplied credit state is void).
  void ResetPeer(net::NodeId peer);

  /// Drops all queues and timers (owner crashed).
  void Clear();

  /// Queues one entry for a peer; ships immediately when a full batch is
  /// ready, otherwise arms the latency-cap timer. Unknown peers are
  /// created with a full window.
  void Enqueue(net::NodeId peer, const middleware::ReplicationEntry& entry,
               bool ack_requested = false);

  /// Ships everything queued for the peer now (subject to flow control).
  void Flush(net::NodeId peer, FlushReason reason);
  void FlushAll(FlushReason reason);

  /// Credit grant from a peer; resumes a stalled queue.
  void OnCredit(net::NodeId peer, int64_t bytes);

  bool Stalled(net::NodeId peer) const;
  bool AnyStalled() const;
  int64_t QueuedBytes(net::NodeId peer) const;
  /// Remaining credit window to one peer (full window when unknown).
  int64_t WindowBytes(net::NodeId peer) const;
  /// Smallest remaining window across peers — the pipeline's tightest
  /// flow-control constraint (full window when no peers). Telemetry probe.
  int64_t MinWindowBytes() const;
  uint64_t stall_events() const { return stall_events_; }
  const ShipOptions& options() const { return options_; }

 private:
  struct QueuedEntry {
    middleware::ReplicationEntry entry;
    bool ack = false;
    int64_t est_bytes = 0;
  };
  struct Peer {
    std::deque<QueuedEntry> queue;
    int64_t queued_bytes = 0;
    int64_t window = 0;
    bool stalled = false;
    sim::EventId timer = 0;
    uint64_t generation = 0;
    obs::Counter* stalls = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Gauge* window_gauge = nullptr;
    obs::Gauge* queue_gauge = nullptr;
  };

  Peer* FindOrCreatePeer(net::NodeId peer);
  void InitPeer(net::NodeId id, Peer* p);
  void Pump(net::NodeId id, Peer* p, bool force, FlushReason reason);
  void SendBatch(net::NodeId id, Peer* p, size_t n_entries, FlushReason reason);
  void ArmTimer(net::NodeId id, Peer* p);
  void CancelTimer(Peer* p);
  void UpdateGauges(Peer* p);

  sim::Simulator* sim_;
  net::Dispatcher* dispatcher_;
  ShipOptions options_;
  std::map<net::NodeId, Peer> peers_;
  uint64_t stall_events_ = 0;
};

/// One entry handed to the receiver by IngestBatch.
struct IngestedEntry {
  middleware::ReplicationEntry entry;
  bool ack_requested = false;
  /// True for every entry after the first in its batch: the receiver's
  /// group-apply amortization (one fsync per batch) keys off this.
  bool group_follower = false;
  /// This entry's share of the batch's wire bytes — the credit to grant
  /// back once the entry is durably applied.
  int64_t credit_bytes = 0;
};

/// Receiver-side helper: decodes a kMsgShipBatch message (codec payload or
/// plain structs) and splits the wire bytes into per-entry credit shares.
/// Malformed payloads return an error (and count ship.codec.decode_errors).
Result<std::vector<IngestedEntry>> IngestBatch(const net::Message& m);

}  // namespace replidb::ship

#endif  // REPLIDB_SHIP_PIPELINE_H_
