#include "ship/codec.h"

#include "common/hashing.h"

#include "engine/types.h"
#include "ship/wire.h"
#include "sql/value.h"

namespace replidb::ship {
namespace {

// Frame header: two magic bytes, a format version, and a flags byte the
// decoder uses to mirror the encoder's dictionary / delta state machines.
constexpr uint8_t kMagic0 = 0xD5;
constexpr uint8_t kMagic1 = 0x5B;
constexpr uint8_t kFormatVersion = 1;
constexpr uint8_t kFlagDictionary = 0x01;
constexpr uint8_t kFlagXorDelta = 0x02;

// Per-entry flags.
constexpr uint8_t kEntryUseStatements = 0x01;
constexpr uint8_t kEntryIncomplete = 0x02;

// Value tags.
constexpr uint8_t kValNull = 0;
constexpr uint8_t kValInt = 1;
constexpr uint8_t kValDouble = 2;
constexpr uint8_t kValString = 3;
constexpr uint8_t kValTrue = 4;
constexpr uint8_t kValFalse = 5;
// Integer XOR'd against the same column of the previously shipped row of
// the same table (tiny varints for counters and mostly-unchanged rows).
constexpr uint8_t kValIntXor = 6;

// The dictionary is self-describing: a string is either a back-reference
// varint(index*2+1) to a previously seen string, or an inline literal
// varint(len*2)+bytes that both sides append to their tables in lockstep.
class StringDict {
 public:
  explicit StringDict(bool enabled) : enabled_(enabled) {}

  void Encode(WireWriter* w, const std::string& s) {
    if (enabled_) {
      auto it = index_.find(s);
      if (it != index_.end()) {
        w->PutVarint(it->second * 2 + 1);
        return;
      }
      index_.emplace(s, index_.size());
    }
    w->PutVarint(static_cast<uint64_t>(s.size()) * 2);
    w->PutRaw(s);
  }

 private:
  bool enabled_;
  HashMap<std::string, uint64_t> index_;
};

class StringUndict {
 public:
  explicit StringUndict(bool enabled) : enabled_(enabled) {}

  bool Decode(WireReader* r, std::string* out) {
    uint64_t head;
    if (!r->GetVarint(&head)) return false;
    if (head & 1) {
      uint64_t idx = head >> 1;
      if (!enabled_ || idx >= table_.size()) return false;
      *out = table_[idx];
      return true;
    }
    uint64_t len = head >> 1;
    std::string_view raw;
    if (!r->GetRaw(len, &raw)) return false;
    out->assign(raw);
    if (enabled_) table_.emplace_back(*out);
    return true;
  }

 private:
  bool enabled_;
  std::vector<std::string> table_;
};

void EncodeValue(WireWriter* w, StringDict* dict, const sql::Value& v,
                 const sql::Value* prev) {
  switch (v.type()) {
    case sql::ValueType::kNull:
      w->PutByte(kValNull);
      break;
    case sql::ValueType::kInt:
      if (prev != nullptr && prev->type() == sql::ValueType::kInt) {
        w->PutByte(kValIntXor);
        w->PutVarint(static_cast<uint64_t>(v.AsInt()) ^
                     static_cast<uint64_t>(prev->AsInt()));
      } else {
        w->PutByte(kValInt);
        w->PutZigzag(v.AsInt());
      }
      break;
    case sql::ValueType::kDouble:
      w->PutByte(kValDouble);
      w->PutDouble(v.AsDouble());
      break;
    case sql::ValueType::kString:
      w->PutByte(kValString);
      dict->Encode(w, v.AsString());
      break;
    case sql::ValueType::kBool:
      w->PutByte(v.AsBool() ? kValTrue : kValFalse);
      break;
  }
}

bool DecodeValue(WireReader* r, StringUndict* dict, const sql::Value* prev,
                 sql::Value* out) {
  uint8_t tag;
  if (!r->GetByte(&tag)) return false;
  switch (tag) {
    case kValNull:
      *out = sql::Value::Null();
      return true;
    case kValInt: {
      int64_t i;
      if (!r->GetZigzag(&i)) return false;
      *out = sql::Value::Int(i);
      return true;
    }
    case kValIntXor: {
      uint64_t x;
      if (!r->GetVarint(&x)) return false;
      if (prev == nullptr || prev->type() != sql::ValueType::kInt) return false;
      *out = sql::Value::Int(
          static_cast<int64_t>(x ^ static_cast<uint64_t>(prev->AsInt())));
      return true;
    }
    case kValDouble: {
      double d;
      if (!r->GetDouble(&d)) return false;
      *out = sql::Value::Double(d);
      return true;
    }
    case kValString: {
      std::string s;
      if (!dict->Decode(r, &s)) return false;
      *out = sql::Value::String(std::move(s));
      return true;
    }
    case kValTrue:
      *out = sql::Value::Bool(true);
      return true;
    case kValFalse:
      *out = sql::Value::Bool(false);
      return true;
    default:
      return false;
  }
}

}  // namespace

EncodedBatch EncodeBatch(
    const std::vector<middleware::ReplicationEntry>& entries,
    const CodecOptions& options) {
  EncodedBatch out;
  WireWriter w;
  w.PutByte(kMagic0);
  w.PutByte(kMagic1);
  w.PutByte(kFormatVersion);
  uint8_t flags = (options.dictionary ? kFlagDictionary : 0) |
                  (options.xor_delta ? kFlagXorDelta : 0);
  w.PutByte(flags);
  w.PutVarint(entries.size());

  StringDict dict(options.dictionary);
  // Last shipped row per "db.table", the XOR-delta reference.
  HashMap<std::string, sql::Row> last_rows;
  uint64_t prev_version = 0;
  int64_t prev_commit_us = 0;

  for (const middleware::ReplicationEntry& entry : entries) {
    out.raw_size_bytes += entry.SizeBytes();
    w.PutZigzag(static_cast<int64_t>(entry.version) -
                static_cast<int64_t>(prev_version));
    prev_version = entry.version;
    w.PutZigzag(entry.origin_commit_us - prev_commit_us);
    prev_commit_us = entry.origin_commit_us;
    uint8_t eflags = (entry.use_statements ? kEntryUseStatements : 0) |
                     (entry.writeset.incomplete ? kEntryIncomplete : 0);
    w.PutByte(eflags);

    w.PutVarint(entry.statements.size());
    for (const std::string& s : entry.statements) dict.Encode(&w, s);

    w.PutVarint(entry.writeset.ops.size());
    for (const engine::WriteOp& op : entry.writeset.ops) {
      w.PutByte(static_cast<uint8_t>(op.kind));
      dict.Encode(&w, op.database);
      dict.Encode(&w, op.table);
      // Primary keys are unique by construction, so never delta-encoded.
      EncodeValue(&w, &dict, op.primary_key, nullptr);

      std::string table_key = op.database + "." + op.table;
      const sql::Row* prev_row = nullptr;
      if (options.xor_delta) {
        auto it = last_rows.find(table_key);
        if (it != last_rows.end()) prev_row = &it->second;
      }
      w.PutVarint(op.after.size());
      for (size_t i = 0; i < op.after.size(); ++i) {
        const sql::Value* prev =
            (prev_row != nullptr && i < prev_row->size()) ? &(*prev_row)[i]
                                                          : nullptr;
        EncodeValue(&w, &dict, op.after[i], prev);
      }
      if (options.xor_delta && !op.after.empty()) last_rows[table_key] = op.after;
    }
  }

  out.payload = w.Take();
  out.encoded_size_bytes = static_cast<int64_t>(out.payload.size());
  return out;
}

Result<std::vector<middleware::ReplicationEntry>> DecodeBatch(
    std::string_view payload) {
  WireReader r(payload);
  uint8_t m0, m1, fmt, flags;
  if (!r.GetByte(&m0) || !r.GetByte(&m1) || m0 != kMagic0 || m1 != kMagic1) {
    return Status::InvalidArgument("ship codec: bad magic");
  }
  if (!r.GetByte(&fmt) || fmt != kFormatVersion) {
    return Status::InvalidArgument("ship codec: unsupported format version");
  }
  if (!r.GetByte(&flags)) {
    return Status::InvalidArgument("ship codec: truncated header");
  }
  bool use_dict = (flags & kFlagDictionary) != 0;
  bool use_xor = (flags & kFlagXorDelta) != 0;

  uint64_t count;
  if (!r.GetVarint(&count) || count > r.remaining()) {
    // Each entry takes >= 1 byte, so count can never exceed the bytes left.
    return Status::InvalidArgument("ship codec: bad entry count");
  }

  StringUndict dict(use_dict);
  HashMap<std::string, sql::Row> last_rows;
  std::vector<middleware::ReplicationEntry> entries;
  entries.reserve(count);
  uint64_t prev_version = 0;
  int64_t prev_commit_us = 0;

  for (uint64_t e = 0; e < count; ++e) {
    middleware::ReplicationEntry entry;
    int64_t version_delta, commit_delta;
    uint8_t eflags;
    if (!r.GetZigzag(&version_delta) || !r.GetZigzag(&commit_delta) ||
        !r.GetByte(&eflags)) {
      return Status::InvalidArgument("ship codec: truncated entry header");
    }
    prev_version = prev_version + static_cast<uint64_t>(version_delta);
    entry.version = prev_version;
    prev_commit_us += commit_delta;
    entry.origin_commit_us = prev_commit_us;
    entry.use_statements = (eflags & kEntryUseStatements) != 0;
    entry.writeset.incomplete = (eflags & kEntryIncomplete) != 0;

    uint64_t n_stmts;
    if (!r.GetVarint(&n_stmts) || n_stmts > r.remaining()) {
      return Status::InvalidArgument("ship codec: bad statement count");
    }
    entry.statements.reserve(n_stmts);
    for (uint64_t i = 0; i < n_stmts; ++i) {
      std::string s;
      if (!dict.Decode(&r, &s)) {
        return Status::InvalidArgument("ship codec: bad statement string");
      }
      entry.statements.push_back(std::move(s));
    }

    uint64_t n_ops;
    if (!r.GetVarint(&n_ops) || n_ops > r.remaining()) {
      return Status::InvalidArgument("ship codec: bad op count");
    }
    entry.writeset.ops.reserve(n_ops);
    for (uint64_t i = 0; i < n_ops; ++i) {
      engine::WriteOp op;
      uint8_t kind;
      if (!r.GetByte(&kind) ||
          kind > static_cast<uint8_t>(engine::WriteOpKind::kDelete)) {
        return Status::InvalidArgument("ship codec: bad op kind");
      }
      op.kind = static_cast<engine::WriteOpKind>(kind);
      if (!dict.Decode(&r, &op.database) || !dict.Decode(&r, &op.table)) {
        return Status::InvalidArgument("ship codec: bad op table name");
      }
      if (!DecodeValue(&r, &dict, nullptr, &op.primary_key)) {
        return Status::InvalidArgument("ship codec: bad primary key");
      }

      std::string table_key = op.database + "." + op.table;
      const sql::Row* prev_row = nullptr;
      if (use_xor) {
        auto it = last_rows.find(table_key);
        if (it != last_rows.end()) prev_row = &it->second;
      }
      uint64_t n_vals;
      if (!r.GetVarint(&n_vals) || n_vals > r.remaining()) {
        return Status::InvalidArgument("ship codec: bad row width");
      }
      op.after.reserve(n_vals);
      for (uint64_t c = 0; c < n_vals; ++c) {
        const sql::Value* prev =
            (prev_row != nullptr && c < prev_row->size()) ? &(*prev_row)[c]
                                                          : nullptr;
        sql::Value v;
        if (!DecodeValue(&r, &dict, prev, &v)) {
          return Status::InvalidArgument("ship codec: bad row value");
        }
        op.after.push_back(std::move(v));
      }
      if (use_xor && !op.after.empty()) last_rows[table_key] = op.after;
      entry.writeset.ops.push_back(std::move(op));
    }
    entries.push_back(std::move(entry));
  }

  if (!r.done()) {
    return Status::InvalidArgument("ship codec: trailing bytes");
  }
  return entries;
}

}  // namespace replidb::ship
