#include "ship/pipeline.h"

#include <algorithm>
#include <any>
#include <utility>

#include "common/logging.h"
#include "obs/recorder.h"

namespace replidb::ship {
namespace {

/// Process-wide ship metric handles (counter/histogram lookups are by
/// name, so resolve once).
struct ShipMetrics {
  obs::Counter* flush_size;
  obs::Counter* flush_timer;
  obs::Counter* flush_sync;
  obs::Counter* flush_direct;
  obs::Counter* flush_resume;
  obs::Counter* batches;
  obs::Counter* wire_bytes;
  obs::Counter* raw_bytes;
  obs::Counter* decode_errors;
  obs::Counter* credit_grants;
  obs::Counter* credit_bytes;
  obs::HistogramMetric* batch_entries;
  obs::HistogramMetric* batch_bytes;

  static ShipMetrics& Get() {
    static ShipMetrics* m = [] {
      auto& r = obs::MetricsRegistry::Global();
      auto* s = new ShipMetrics();
      s->flush_size = r.GetCounter("ship.flush.size");
      s->flush_timer = r.GetCounter("ship.flush.timer");
      s->flush_sync = r.GetCounter("ship.flush.sync");
      s->flush_direct = r.GetCounter("ship.flush.direct");
      s->flush_resume = r.GetCounter("ship.flush.resume");
      s->batches = r.GetCounter("ship.wire.batches_total");
      s->wire_bytes = r.GetCounter("ship.wire.bytes_total");
      s->raw_bytes = r.GetCounter("ship.wire.raw_bytes_total");
      s->decode_errors = r.GetCounter("ship.codec.decode_errors");
      s->credit_grants = r.GetCounter("ship.credit.grants_total");
      s->credit_bytes = r.GetCounter("ship.credit.bytes_total");
      s->batch_entries = r.GetHistogram("ship.batch.entries");
      s->batch_bytes = r.GetHistogram("ship.batch.bytes");
      return s;
    }();
    return *m;
  }
};

obs::Counter* FlushCounter(FlushReason reason) {
  auto& m = ShipMetrics::Get();
  switch (reason) {
    case FlushReason::kSize:
      return m.flush_size;
    case FlushReason::kTimer:
      return m.flush_timer;
    case FlushReason::kSync:
      return m.flush_sync;
    case FlushReason::kDirect:
      return m.flush_direct;
    case FlushReason::kResume:
      return m.flush_resume;
  }
  return m.flush_size;
}

}  // namespace

ShipPipeline::ShipPipeline(sim::Simulator* sim, net::Dispatcher* dispatcher,
                           ShipOptions options)
    : sim_(sim), dispatcher_(dispatcher), options_(std::move(options)) {}

ShipPipeline::~ShipPipeline() {
  for (auto& [id, p] : peers_) CancelTimer(&p);
}

void ShipPipeline::InitPeer(net::NodeId id, Peer* p) {
  auto& r = obs::MetricsRegistry::Global();
  std::string prefix = "ship.replica." + std::to_string(id);
  p->stalls = r.GetCounter(prefix + ".window_stall");
  p->dropped = r.GetCounter(prefix + ".dropped_entries");
  p->window_gauge = r.GetGauge(prefix + ".window_bytes");
  p->queue_gauge = r.GetGauge(prefix + ".queue_bytes");
  p->window = options_.window_bytes;
  UpdateGauges(p);
}

ShipPipeline::Peer* ShipPipeline::FindOrCreatePeer(net::NodeId peer) {
  auto it = peers_.find(peer);
  if (it != peers_.end()) return &it->second;
  Peer* p = &peers_[peer];
  InitPeer(peer, p);
  return p;
}

void ShipPipeline::SetPeers(const std::vector<net::NodeId>& peers) {
  // Drop peers no longer subscribed; keep live state for the rest.
  for (auto it = peers_.begin(); it != peers_.end();) {
    if (std::find(peers.begin(), peers.end(), it->first) == peers.end()) {
      CancelTimer(&it->second);
      it->second.generation++;
      it = peers_.erase(it);
    } else {
      ++it;
    }
  }
  for (net::NodeId id : peers) FindOrCreatePeer(id);
}

void ShipPipeline::ResetPeer(net::NodeId peer) {
  Peer* p = FindOrCreatePeer(peer);
  CancelTimer(p);
  p->generation++;
  p->queue.clear();
  p->queued_bytes = 0;
  p->window = options_.window_bytes;
  p->stalled = false;
  UpdateGauges(p);
}

void ShipPipeline::Clear() {
  for (auto& [id, p] : peers_) {
    CancelTimer(&p);
    p.generation++;
    p.queue.clear();
    p.queued_bytes = 0;
    p.window = options_.window_bytes;
    p.stalled = false;
    UpdateGauges(&p);
  }
}

void ShipPipeline::Enqueue(net::NodeId peer,
                           const middleware::ReplicationEntry& entry,
                           bool ack_requested) {
  Peer* p = FindOrCreatePeer(peer);
  QueuedEntry qe;
  qe.entry = entry;
  qe.ack = ack_requested;
  qe.est_bytes = entry.SizeBytes();
  // Bound the queue to a stalled/slow peer: tail-drop plain entries (the
  // controller's anti-entropy sweep re-ships the gap later). Ack-bearing
  // entries are never dropped — a lost 2-safe receipt would stall commits.
  if (options_.flow_control && !ack_requested &&
      p->queued_bytes + qe.est_bytes > options_.max_peer_queue_bytes) {
    p->dropped->Increment();
    return;
  }
  p->queued_bytes += qe.est_bytes;
  p->queue.push_back(std::move(qe));
  Pump(peer, p, /*force=*/false,
       options_.batching ? FlushReason::kSize : FlushReason::kDirect);
  UpdateGauges(p);
}

void ShipPipeline::Flush(net::NodeId peer, FlushReason reason) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  Pump(peer, &it->second, /*force=*/true, reason);
  UpdateGauges(&it->second);
}

void ShipPipeline::FlushAll(FlushReason reason) {
  for (auto& [id, p] : peers_) {
    Pump(id, &p, /*force=*/true, reason);
    UpdateGauges(&p);
  }
}

void ShipPipeline::OnCredit(net::NodeId peer, int64_t bytes) {
  auto it = peers_.find(peer);
  if (it == peers_.end()) return;
  auto& m = ShipMetrics::Get();
  m.credit_grants->Increment();
  m.credit_bytes->Increment(bytes);
  Peer* p = &it->second;
  p->window = std::min(p->window + bytes, options_.window_bytes);
  if (p->stalled && p->window > 0) {
    p->stalled = false;
    obs::FlightRecorder::Global().Record(
        sim_->Now(), dispatcher_->node(), obs::FlightEventKind::kCreditResume,
        "peer=" + std::to_string(peer) +
            " window_bytes=" + std::to_string(p->window));
    Pump(peer, p, /*force=*/true, FlushReason::kResume);
  }
  UpdateGauges(p);
}

bool ShipPipeline::Stalled(net::NodeId peer) const {
  auto it = peers_.find(peer);
  return it != peers_.end() && it->second.stalled;
}

bool ShipPipeline::AnyStalled() const {
  for (const auto& [id, p] : peers_) {
    if (p.stalled) return true;
  }
  return false;
}

int64_t ShipPipeline::QueuedBytes(net::NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.queued_bytes;
}

int64_t ShipPipeline::WindowBytes(net::NodeId peer) const {
  auto it = peers_.find(peer);
  return it == peers_.end() ? options_.window_bytes : it->second.window;
}

int64_t ShipPipeline::MinWindowBytes() const {
  int64_t min_window = options_.window_bytes;
  for (const auto& [id, p] : peers_) {
    (void)id;
    min_window = std::min(min_window, p.window);
  }
  return min_window;
}

void ShipPipeline::Pump(net::NodeId id, Peer* p, bool force,
                        FlushReason reason) {
  while (!p->queue.empty()) {
    if (options_.flow_control && p->window <= 0) {
      // Window exhausted: stall until the peer grants credit. The queue
      // keeps absorbing entries (bounded by max_peer_queue_bytes).
      if (!p->stalled) {
        p->stalled = true;
        ++stall_events_;
        p->stalls->Increment();
        obs::FlightRecorder::Global().Record(
            sim_->Now(), dispatcher_->node(),
            obs::FlightEventKind::kCreditStall,
            "peer=" + std::to_string(id) +
                " queued_bytes=" + std::to_string(p->queued_bytes));
      }
      CancelTimer(p);
      return;
    }
    size_t n = 0;
    int64_t bytes = 0;
    if (!options_.batching) {
      n = 1;
    } else {
      while (n < p->queue.size() &&
             (n == 0 || bytes < options_.batch_max_bytes)) {
        bytes += p->queue[n].est_bytes;
        ++n;
      }
      if (!force && bytes < options_.batch_max_bytes) {
        // Partial batch: wait for more entries or the latency cap.
        ArmTimer(id, p);
        return;
      }
    }
    SendBatch(id, p, n, reason);
  }
  CancelTimer(p);
}

void ShipPipeline::SendBatch(net::NodeId id, Peer* p, size_t n_entries,
                             FlushReason reason) {
  ShipBatchMsg msg;
  std::vector<middleware::ReplicationEntry> entries;
  entries.reserve(n_entries);
  for (size_t i = 0; i < n_entries; ++i) {
    QueuedEntry& qe = p->queue.front();
    if (qe.ack) msg.ack_versions.push_back(qe.entry.version);
    p->queued_bytes -= qe.est_bytes;
    entries.push_back(std::move(qe.entry));
    p->queue.pop_front();
  }

  int64_t raw = 0;
  int64_t wire = 0;
  if (options_.use_codec) {
    EncodedBatch enc = EncodeBatch(entries, options_.codec);
    raw = enc.raw_size_bytes;
    wire = enc.encoded_size_bytes + kBatchOverheadBytes;
    msg.payload = std::move(enc.payload);
  } else {
    for (const auto& e : entries) raw += e.SizeBytes();
    wire = raw + kBatchOverheadBytes;
    msg.entries = std::move(entries);
  }

  // Spend window even with flow control off so the gauges stay honest;
  // only the stall check above is gated on the option.
  p->window -= wire;

  auto& m = ShipMetrics::Get();
  m.batches->Increment();
  m.wire_bytes->Increment(wire);
  m.raw_bytes->Increment(raw);
  m.batch_entries->Observe(static_cast<double>(n_entries));
  m.batch_bytes->Observe(static_cast<double>(wire));
  FlushCounter(reason)->Increment();

  dispatcher_->Send(id, kMsgShipBatch, std::move(msg), wire);
}

void ShipPipeline::ArmTimer(net::NodeId id, Peer* p) {
  if (p->timer != 0) return;
  uint64_t gen = p->generation;
  p->timer = sim_->Schedule(options_.batch_max_delay, [this, id, gen] {
    auto it = peers_.find(id);
    if (it == peers_.end() || it->second.generation != gen) return;
    it->second.timer = 0;
    Pump(id, &it->second, /*force=*/true, FlushReason::kTimer);
    UpdateGauges(&it->second);
  });
}

void ShipPipeline::CancelTimer(Peer* p) {
  if (p->timer == 0) return;
  sim_->Cancel(p->timer);
  p->timer = 0;
}

void ShipPipeline::UpdateGauges(Peer* p) {
  p->window_gauge->Set(static_cast<double>(p->window));
  p->queue_gauge->Set(static_cast<double>(p->queued_bytes));
}

Result<std::vector<IngestedEntry>> IngestBatch(const net::Message& m) {
  const auto* batch = std::any_cast<ShipBatchMsg>(&m.body);
  if (batch == nullptr) {
    return Status::InvalidArgument("ship: message body is not a ShipBatchMsg");
  }
  std::vector<middleware::ReplicationEntry> entries;
  if (!batch->payload.empty()) {
    auto decoded = DecodeBatch(batch->payload);
    if (!decoded.ok()) {
      ShipMetrics::Get().decode_errors->Increment();
      return decoded.status();
    }
    entries = decoded.TakeValue();
  } else {
    entries = batch->entries;
  }

  std::vector<IngestedEntry> out;
  out.reserve(entries.size());
  if (entries.empty()) return out;
  int64_t n = static_cast<int64_t>(entries.size());
  int64_t share = m.size_bytes / n;
  for (size_t i = 0; i < entries.size(); ++i) {
    IngestedEntry ie;
    ie.ack_requested =
        std::find(batch->ack_versions.begin(), batch->ack_versions.end(),
                  entries[i].version) != batch->ack_versions.end();
    ie.group_follower = i > 0;
    // First entry also carries the rounding remainder so credits conserve
    // the full wire size.
    ie.credit_bytes = share + (i == 0 ? m.size_bytes - share * n : 0);
    ie.entry = std::move(entries[i]);
    out.push_back(std::move(ie));
  }
  return out;
}

}  // namespace replidb::ship
