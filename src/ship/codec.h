#ifndef REPLIDB_SHIP_CODEC_H_
#define REPLIDB_SHIP_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "middleware/common.h"

namespace replidb::ship {

/// Codec knobs. Both transforms are lossless; they only trade CPU for
/// bytes-on-wire (the paper's WAN links are the scarce resource, §2.2).
struct CodecOptions {
  /// Shared string dictionary: repeated strings (table names, SQL text,
  /// hot values) within one batch encode as a small back-reference.
  bool dictionary = true;
  /// XOR-delta row encoding: integer columns encode as the XOR against
  /// the previous shipped row of the same table, which is tiny for
  /// monotonic counters and mostly-unchanged rows.
  bool xor_delta = true;
};

/// Result of encoding a batch of replication entries.
struct EncodedBatch {
  std::string payload;
  /// Size of the in-memory structs (ReplicationEntry::SizeBytes sum) —
  /// the bytes a naive struct-shipping transport would put on the wire.
  int64_t raw_size_bytes = 0;
  /// True encoded wire size (== payload.size()).
  int64_t encoded_size_bytes = 0;
};

/// Binary-serializes a batch of replication entries (writesets and/or
/// statement batches). Versions and commit timestamps are delta-encoded
/// across the batch; strings go through the optional dictionary; integer
/// row values optionally XOR-delta against the previous row of the same
/// table.
EncodedBatch EncodeBatch(const std::vector<middleware::ReplicationEntry>& entries,
                         const CodecOptions& options);

/// Decodes a batch produced by EncodeBatch. Never crashes on malformed
/// input: any truncation, bad tag or bound violation yields an error
/// status instead.
Result<std::vector<middleware::ReplicationEntry>> DecodeBatch(
    std::string_view payload);

}  // namespace replidb::ship

#endif  // REPLIDB_SHIP_CODEC_H_
