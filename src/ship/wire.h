#ifndef REPLIDB_SHIP_WIRE_H_
#define REPLIDB_SHIP_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace replidb::ship {

/// Zigzag mapping folds signed integers into unsigned ones so small
/// magnitudes (positive or negative) encode as short varints.
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Appends primitives to a byte buffer in the ship wire format: LEB128
/// varints, zigzag-mapped signed ints, raw little-endian doubles, and
/// length-prefixed byte strings.
class WireWriter {
 public:
  void PutByte(uint8_t b) { out_.push_back(static_cast<char>(b)); }

  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      PutByte(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    PutByte(static_cast<uint8_t>(v));
  }

  void PutZigzag(int64_t v) { PutVarint(ZigzagEncode(v)); }

  void PutDouble(double v) {
    char buf[sizeof(double)];
    std::memcpy(buf, &v, sizeof(double));
    out_.append(buf, sizeof(double));
  }

  void PutRaw(std::string_view bytes) { out_.append(bytes); }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over an encoded buffer. Every Get* returns false
/// on truncation or malformed input instead of reading out of range, so
/// arbitrary (fuzzed) bytes can never crash the decoder.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetByte(uint8_t* out) {
    if (pos_ >= data_.size()) return false;
    *out = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool GetVarint(uint64_t* out) {
    uint64_t result = 0;
    for (int shift = 0; shift < 64; shift += 7) {
      uint8_t b;
      if (!GetByte(&b)) return false;
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *out = result;
        return true;
      }
    }
    return false;  // > 10 bytes: malformed
  }

  bool GetZigzag(int64_t* out) {
    uint64_t raw;
    if (!GetVarint(&raw)) return false;
    *out = ZigzagDecode(raw);
    return true;
  }

  bool GetDouble(double* out) {
    if (remaining() < sizeof(double)) return false;
    std::memcpy(out, data_.data() + pos_, sizeof(double));
    pos_ += sizeof(double);
    return true;
  }

  bool GetRaw(size_t len, std::string_view* out) {
    if (len > remaining()) return false;
    *out = data_.substr(pos_, len);
    pos_ += len;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace replidb::ship

#endif  // REPLIDB_SHIP_WIRE_H_
