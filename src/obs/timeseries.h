#ifndef REPLIDB_OBS_TIMESERIES_H_
#define REPLIDB_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/locks.h"

namespace replidb::obs {

/// \brief Bounded time-series layer over simulator virtual time.
///
/// The paper's practice gaps are temporal — replica lag that grows for
/// hours, saturation knees, failover windows — so point-in-time gauges and
/// end-of-run tables are not enough. A TimeSeriesHub periodically snapshots
/// registered probes (per-replica apply lag, backlog depth, credit-window
/// bytes, queue depths, in-flight transactions) into bounded ring-buffer
/// series, exportable as JSON/CSV and printable as lag-over-time curves in
/// the benches.
///
/// All timestamps are *virtual* microseconds supplied by the caller (the
/// discrete-event simulator's clock), so series are deterministic: the same
/// seed produces identical curves. The hub is owned by whoever owns the
/// sampled objects (middleware::Cluster owns one per deployment), so probe
/// closures never outlive their targets.

/// One sample of one series.
struct SeriesPoint {
  int64_t ts_us = 0;
  double value = 0;
};

/// \brief Fixed-capacity ring of (virtual time, value) samples. Appends
/// beyond the capacity evict the oldest sample and are counted.
class Series {
 public:
  explicit Series(std::string name, size_t capacity);

  const std::string& name() const { return name_; }
  size_t capacity() const { return capacity_; }

  void Add(int64_t ts_us, double value);

  size_t size() const;
  /// Samples evicted from the ring so far (total appends = size + evicted).
  uint64_t evicted() const;

  /// Samples oldest to newest (a consistent copy).
  std::vector<SeriesPoint> Points() const;

  /// Most recent value (0 when empty).
  double Last() const;
  /// Largest / smallest value currently held in the ring (0 when empty).
  double MaxValue() const;
  double MinValue() const;

 private:
  const std::string name_;
  const size_t capacity_;
  mutable common::OrderedMutex mu_{common::LockRank::kTimeSeriesData};
  std::vector<SeriesPoint> ring_;  ///< Ring storage, capacity_ slots.
  size_t head_ = 0;                ///< Next write slot once full.
  size_t count_ = 0;
  uint64_t evicted_ = 0;
};

/// A probe reads one instantaneous value (a gauge level) when sampled.
using ProbeFn = std::function<double()>;

/// \brief Registry of named series plus the probes that feed them.
///
/// `RegisterProbe(name, fn)` binds a probe to the series `name`;
/// `SampleProbes(now_us)` appends one sample per registered probe — drive
/// it from a sim::PeriodicTask for a fixed virtual-time sampling interval.
/// Series can also be fed directly via `GetSeries(name)->Add(...)` for
/// event-driven values.
class TimeSeriesHub {
 public:
  explicit TimeSeriesHub(size_t default_capacity = kDefaultCapacity);
  TimeSeriesHub(const TimeSeriesHub&) = delete;
  TimeSeriesHub& operator=(const TimeSeriesHub&) = delete;

  /// Finds or creates a series. Pointers stay valid for the hub's
  /// lifetime. `capacity` applies only on creation (0 = hub default).
  Series* GetSeries(const std::string& name, size_t capacity = 0);

  /// Lookup without creating; nullptr when never registered.
  const Series* FindSeries(const std::string& name) const;

  /// Binds `probe` to series `name` (replacing any previous probe).
  void RegisterProbe(const std::string& name, ProbeFn probe);
  void UnregisterProbe(const std::string& name);

  /// Convenience: probes a gauge in the global MetricsRegistry by name
  /// (samples 0 until the gauge is first registered there).
  void WatchGauge(const std::string& series, const std::string& gauge_name);

  /// Appends one sample per registered probe at virtual time `now_us`.
  void SampleProbes(int64_t now_us);

  /// Number of SampleProbes calls so far.
  uint64_t samples_taken() const;

  std::vector<std::string> SeriesNames() const;
  size_t series_count() const;

  /// Machine-readable dump:
  /// {"series":[{"name":...,"evicted":N,"points":[[ts_us,value],...]},...]}
  std::string DumpJson() const;

  /// CSV dump, one row per sample: series,ts_us,value.
  std::string DumpCsv() const;

  /// Drops every series and probe (per-configuration bench isolation).
  void Reset();

  static constexpr size_t kDefaultCapacity = 4096;

 private:
  const size_t default_capacity_;
  mutable common::OrderedMutex mu_{common::LockRank::kTimeSeriesHub};
  std::map<std::string, std::unique_ptr<Series>> series_;
  std::map<std::string, ProbeFn> probes_;
  uint64_t samples_taken_ = 0;
};

}  // namespace replidb::obs

#endif  // REPLIDB_OBS_TIMESERIES_H_
