#ifndef REPLIDB_OBS_METRICS_H_
#define REPLIDB_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/locks.h"

namespace replidb::obs {

/// \brief Process-wide registry of named counters, gauges, and histograms.
///
/// Naming convention: `subsystem.object.metric`, e.g.
/// `replica.apply.queue_wait_ms`, `middleware.certifier.abort.conflict`,
/// `gcs.sequencer.backlog_us`. Per-node instances put the node id in the
/// object segment (`middleware.replica.3.lag_txns`); plain names aggregate
/// across instances.
///
/// Counters and gauges are relaxed atomics — cheap enough for hot paths —
/// and the pointers returned by Get*() stay valid for the registry's
/// lifetime (Reset() zeroes values but never drops registrations), so call
/// sites can look a metric up once and update it forever after.

/// Monotonic event count.
class Counter {
 public:
  void Increment(uint64_t by = 1) { v_.fetch_add(by, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Point-in-time level (queue depth, lag, backlog).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Mutex-guarded sample distribution with percentile queries.
class HistogramMetric {
 public:
  void Observe(double v) {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    h_.Add(v);
  }
  /// Copy of the underlying histogram (consistent snapshot).
  Histogram Snapshot() const {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    return h_;
  }
  size_t count() const {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    return h_.count();
  }
  void Reset() {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    h_.Clear();
  }

 private:
  mutable common::OrderedMutex mu_{common::LockRank::kMetricHistogram};
  Histogram h_;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

/// One metric's value at Snapshot() time.
struct MetricSample {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  uint64_t counter = 0;
  int64_t gauge = 0;
  Histogram histogram;  ///< Kind kHistogram only.
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry used by the instrumented subsystems.
  static MetricsRegistry& Global();

  /// Finds or creates a metric. A name is bound to one kind for the
  /// registry's lifetime; asking for the same name as a different kind
  /// aborts (it is a programming error, not an input error).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  /// Lookup without creating. nullptr / empty when never registered.
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  Histogram HistogramCopy(const std::string& name) const;

  /// All metrics, sorted by name.
  std::vector<MetricSample> Snapshot() const;

  /// Human-readable dump of every metric (one per line).
  std::string DumpText() const;

  /// Prometheus text-exposition dump: names sanitized to
  /// [a-zA-Z0-9_:] with a `replidb_` prefix, `# TYPE` comments, and
  /// histograms rendered as summaries (quantiles + _sum + _count).
  std::string DumpPrometheus() const;

  /// Machine-readable JSON dump: an array of
  /// {"name", "kind", "value"|"histogram"} objects.
  std::string DumpJson() const;

  /// Zeroes all values. Registrations (and handed-out pointers) survive.
  void Reset();

  size_t size() const;

 private:
  struct Entry {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* FindOrCreate(const std::string& name, MetricKind kind);

  mutable common::OrderedMutex mu_{common::LockRank::kMetricsRegistry};
  std::map<std::string, Entry> metrics_;
};

}  // namespace replidb::obs

#endif  // REPLIDB_OBS_METRICS_H_
