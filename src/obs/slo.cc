#include "obs/slo.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace replidb::obs {

namespace {
// Nearest-rank-with-interpolation percentile over a scratch copy; `v` is
// sorted in place. Callers guarantee non-empty.
double PercentileOf(std::vector<double>& v, double p) {
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  size_t lo = static_cast<size_t>(std::floor(rank));
  size_t hi = static_cast<size_t>(std::ceil(rank));
  lo = std::min(lo, v.size() - 1);
  hi = std::min(hi, v.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}
}  // namespace

SloTracker::SloTracker(std::string name, int64_t window_us, double target_p99)
    : name_(std::move(name)),
      window_us_(window_us),
      target_p99_(target_p99) {
  REPLIDB_CHECK(window_us > 0, "SLO window must be positive");
}

void SloTracker::RotateLocked(int64_t ts_us) {
  if (!started_) {
    // Align the first window to a multiple of the window size, so window
    // boundaries are stable regardless of when the first event lands.
    window_start_us_ = ts_us / window_us_ * window_us_;
    started_ = true;
    return;
  }
  while (ts_us >= window_start_us_ + window_us_) {
    if (!current_.empty()) {
      SloWindow w;
      w.start_us = window_start_us_;
      w.end_us = window_start_us_ + window_us_;
      w.count = current_.size();
      w.p50 = PercentileOf(current_, 50);
      w.p99 = PercentileOf(current_, 99);
      w.breached = w.p99 > target_p99_;
      last_p50_ = w.p50;
      last_p99_ = w.p99;
      ++windows_closed_;
      if (w.breached) ++breaches_;
      if (recent_.size() >= kRetainedWindows) {
        recent_.erase(recent_.begin());
      }
      recent_.push_back(w);
      current_.clear();
    }
    window_start_us_ += window_us_;
  }
}

void SloTracker::Observe(int64_t ts_us, double value) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  RotateLocked(ts_us);
  current_.push_back(value);
}

void SloTracker::AdvanceTo(int64_t ts_us) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  RotateLocked(ts_us);
}

uint64_t SloTracker::windows_closed() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return windows_closed_;
}

uint64_t SloTracker::breaches() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return breaches_;
}

uint64_t SloTracker::current_count() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return current_.size();
}

double SloTracker::last_p50() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return last_p50_;
}

double SloTracker::last_p99() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return last_p99_;
}

std::vector<SloWindow> SloTracker::RecentWindows() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return recent_;
}

std::string SloTracker::StatusLine() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s p50=%.3f p99=%.3f target_p99=%.3f windows=%llu "
                "breaches=%llu",
                name_.c_str(), last_p50_, last_p99_, target_p99_,
                static_cast<unsigned long long>(windows_closed_),
                static_cast<unsigned long long>(breaches_));
  return buf;
}

void SloTracker::Reset() {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  started_ = false;
  window_start_us_ = 0;
  current_.clear();
  recent_.clear();
  windows_closed_ = 0;
  breaches_ = 0;
  last_p50_ = 0;
  last_p99_ = 0;
}

}  // namespace replidb::obs
