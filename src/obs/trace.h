#ifndef REPLIDB_OBS_TRACE_H_
#define REPLIDB_OBS_TRACE_H_

#include <cstdint>
#include <cstdio>

#include "common/locks.h"
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace replidb::obs {

/// \brief Per-transaction trace identity, carried on a TxnRequest from the
/// client driver through the controller and down to replica apply. All
/// spans recorded for one transaction share the id, so a trace viewer can
/// follow a transaction across subsystems.
struct TraceContext {
  uint64_t id = 0;  ///< 0 = not traced.
};

/// Allocates a fresh process-unique trace id (never 0).
uint64_t NextTraceId();

/// \brief Collector of timestamped spans and instants over simulator
/// virtual time, exportable as chrome://tracing / Perfetto JSON.
///
/// All timestamps are *virtual* microseconds supplied by the caller (the
/// discrete-event simulator's clock), so traces are deterministic: the
/// same seed produces byte-identical trace files.
///
/// Recording is off by default; the hot path pays a single branch on
/// `enabled()`. Enable programmatically or by setting the REPLIDB_TRACE
/// environment variable to an output path (see InitFromEnv).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  /// Reads REPLIDB_TRACE once: when set (non-empty), enables the global
  /// tracer. Returns the configured output path, or nullptr when unset.
  /// Benches call this at startup and WriteChromeTrace(path) at exit.
  static const char* InitFromEnv();

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  /// Drops all recorded events (keeps enabled state and track names).
  void Clear();

  /// Records a completed span [start_us, end_us] on `track` (a virtual
  /// thread lane, e.g. "replica.2" or "controller.100"). `txn` tags the
  /// transaction (0 = none). No-op while disabled.
  void Span(const std::string& track, const std::string& name,
            int64_t start_us, int64_t end_us, uint64_t txn = 0);

  /// Records a point-in-time event (suspicion raised, view change, ...).
  void Instant(const std::string& track, const std::string& name,
               int64_t ts_us, uint64_t txn = 0);

  /// Records a counter-series sample rendered as a stacked area chart in
  /// the trace viewer (queue depth, lag, backlog over time).
  void CounterSample(const std::string& series, int64_t ts_us, double value);

  size_t event_count() const;
  /// Events discarded after the in-memory cap was reached.
  uint64_t dropped() const { return dropped_; }

  /// Serializes everything as a chrome://tracing "traceEvents" JSON
  /// document (also loads in Perfetto).
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`. Returns false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

  /// Plain-text timeline of the first `limit` events in time order, for
  /// quick terminal inspection without a trace viewer.
  void DumpTimeline(std::FILE* out, size_t limit = 60) const;

 private:
  struct Event {
    char phase;       // 'X' span, 'i' instant, 'C' counter sample.
    int32_t tid;      // Track id ('X'/'i') — index into track name table.
    int64_t ts_us;
    int64_t dur_us;   // 'X' only.
    uint64_t txn;     // 0 = untagged.
    double value;     // 'C' only.
    std::string name;
  };

  /// In-memory cap: beyond this, events are counted as dropped instead of
  /// stored, so a forgotten enabled tracer cannot eat the heap.
  static constexpr size_t kMaxEvents = 4u << 20;

  int32_t TrackIdLocked(const std::string& track);
  bool PushLocked(Event e);

  bool enabled_ = false;
  mutable common::OrderedMutex mu_{common::LockRank::kTracer};
  std::vector<Event> events_;
  std::map<std::string, int32_t> track_ids_;
  std::vector<std::string> track_names_;
  uint64_t dropped_ = 0;
};

/// One-branch check used by instrumentation call sites.
inline bool TracingEnabled() { return Tracer::Global().enabled(); }

}  // namespace replidb::obs

#endif  // REPLIDB_OBS_TRACE_H_
