#ifndef REPLIDB_OBS_RECORDER_H_
#define REPLIDB_OBS_RECORDER_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/locks.h"

namespace replidb::obs {

/// \brief Flight recorder: the last N structured control-plane events per
/// node, dumped on assertion failure or on demand.
///
/// The failures worth debugging in a replicated middleware are rarely about
/// the instruction that tripped the assert — they are about the view change
/// three virtual seconds earlier, the credit stall that backed up the
/// writeset pipe, the resync that never finished. The recorder keeps a
/// bounded ring of such events per node (so one chatty replica cannot evict
/// everyone else's history) and renders them merged in virtual-time order.
///
/// It is a process-global singleton: recording sites in the controller and
/// ship pipeline call `FlightRecorder::Global().Record(...)` and a
/// REPLIDB_CHECK failure hook dumps the tail automatically (see
/// InstallCheckHook). Benches honor REPLIDB_FLIGHT_DUMP=1 to dump at exit.

/// Kinds of control-plane events worth replaying post-mortem.
enum class FlightEventKind {
  kViewChange,    ///< Membership/epoch change (incl. initial view).
  kSuspicion,     ///< Failure detector suspected a replica.
  kCreditStall,   ///< Writeset shipping blocked on the credit window.
  kCreditResume,  ///< Shipping resumed after a stall.
  kCertAbort,     ///< Certification aborted a transaction.
  kResyncPhase,   ///< Recovering replica entered a resync phase.
  kFailover,      ///< Master promotion.
  kOther,         ///< Anything else a subsystem finds noteworthy.
};

const char* FlightEventKindName(FlightEventKind kind);

struct FlightEvent {
  int64_t ts_us = 0;  ///< Virtual time of the event.
  int node = 0;       ///< Node id (replica/controller/driver).
  FlightEventKind kind = FlightEventKind::kOther;
  std::string detail;
  uint64_t seq = 0;  ///< Global record order; ties broken by this in dumps.
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultPerNodeCapacity = 256;

  explicit FlightRecorder(size_t per_node_capacity = kDefaultPerNodeCapacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Process-wide instance used by the recording sites and the check hook.
  static FlightRecorder& Global();

  /// Registers the REPLIDB_CHECK failure hook that dumps Global() to
  /// stderr before abort. Idempotent; called by middleware::Cluster.
  static void InstallCheckHook();

  void Record(int64_t ts_us, int node, FlightEventKind kind,
              std::string detail);

  /// Total events ever recorded (including since-evicted ones).
  uint64_t recorded() const;
  /// Events currently retained across all nodes.
  size_t size() const;
  /// Retained events for one node, oldest first.
  std::vector<FlightEvent> NodeEvents(int node) const;
  /// All retained events merged in (ts_us, seq) order.
  std::vector<FlightEvent> MergedEvents() const;

  /// Renders the merged tail, one line per event:
  ///   t=12.345s node=3 kind=credit_stall detail...
  std::string Render() const;

  /// Writes a banner plus Render() to `out` (stderr by default).
  void Dump(std::FILE* out = nullptr) const;

  /// Drops all events (per-configuration bench isolation).
  void Reset();

 private:
  const size_t per_node_capacity_;
  mutable common::OrderedMutex mu_{common::LockRank::kFlightRecorder};
  std::map<int, std::deque<FlightEvent>> rings_;
  uint64_t recorded_ = 0;
  uint64_t seq_ = 0;
};

}  // namespace replidb::obs

#endif  // REPLIDB_OBS_RECORDER_H_
