#include "obs/metrics.h"

#include <cstdio>
#include <set>

#include "common/logging.h"

namespace replidb::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      MetricKind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    REPLIDB_CHECK(it->second.kind == kind,
                  "metric re-registered with a different kind");
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &metrics_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kGauge)->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return FindOrCreate(name, MetricKind::kHistogram)->histogram.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kCounter) return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kGauge) return nullptr;
  return it->second.gauge.get();
}

Histogram MetricsRegistry::HistogramCopy(const std::string& name) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != MetricKind::kHistogram) return {};
  return it->second.histogram->Snapshot();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample s;
    s.name = name;
    s.kind = entry.kind;
    switch (entry.kind) {
      case MetricKind::kCounter:
        s.counter = entry.counter->value();
        break;
      case MetricKind::kGauge:
        s.gauge = entry.gauge->value();
        break;
      case MetricKind::kHistogram:
        s.histogram = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted.
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char line[256];
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "%-48s counter %llu\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.counter));
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "%-48s gauge   %lld\n",
                      s.name.c_str(), static_cast<long long>(s.gauge));
        break;
      case MetricKind::kHistogram:
        std::snprintf(line, sizeof(line), "%-48s histo   %s\n",
                      s.name.c_str(), s.histogram.Summary().c_str());
        break;
    }
    out += line;
  }
  return out;
}

namespace {

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string PromName(const std::string& name) {
  std::string out = "replidb_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  std::string out;
  // Distinct internal names can sanitize to the same Prometheus name
  // (e.g. "a.b" and "a-b"); the exposition format allows one # TYPE line
  // per family, so dedupe on the sanitized name.
  std::set<std::string> typed;
  auto type_line = [&](const std::string& name, const char* kind) {
    if (typed.insert(name).second) {
      out += "# TYPE " + name + " " + kind + "\n";
    }
  };
  for (const MetricSample& s : Snapshot()) {
    std::string name = PromName(s.name);
    switch (s.kind) {
      case MetricKind::kCounter:
        type_line(name, "counter");
        out += name + " " + std::to_string(s.counter) + "\n";
        break;
      case MetricKind::kGauge:
        type_line(name, "gauge");
        out += name + " " + std::to_string(s.gauge) + "\n";
        break;
      case MetricKind::kHistogram:
        type_line(name, "summary");
        out += name + "{quantile=\"0.5\"} " + Num(s.histogram.Median()) + "\n";
        out += name + "{quantile=\"0.95\"} " + Num(s.histogram.P95()) + "\n";
        out += name + "{quantile=\"0.99\"} " + Num(s.histogram.P99()) + "\n";
        out += name + "_sum " + Num(s.histogram.sum()) + "\n";
        out += name + "_count " + std::to_string(s.histogram.count()) + "\n";
        break;
    }
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  std::string out = "[";
  bool first = true;
  for (const MetricSample& s : Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + s.name + "\",";
    switch (s.kind) {
      case MetricKind::kCounter:
        out += "\"kind\":\"counter\",\"value\":" + std::to_string(s.counter);
        break;
      case MetricKind::kGauge:
        out += "\"kind\":\"gauge\",\"value\":" + std::to_string(s.gauge);
        break;
      case MetricKind::kHistogram:
        out += "\"kind\":\"histogram\",\"count\":" +
               std::to_string(s.histogram.count()) +
               ",\"mean\":" + Num(s.histogram.Mean()) +
               ",\"p50\":" + Num(s.histogram.Median()) +
               ",\"p95\":" + Num(s.histogram.P95()) +
               ",\"p99\":" + Num(s.histogram.P99()) +
               ",\"max\":" + Num(s.histogram.Max());
        break;
    }
    out += "}";
  }
  out += "]";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    switch (entry.kind) {
      case MetricKind::kCounter:
        entry.counter->Reset();
        break;
      case MetricKind::kGauge:
        entry.gauge->Reset();
        break;
      case MetricKind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return metrics_.size();
}

}  // namespace replidb::obs
