#include "obs/metrics.h"

#include <cstdio>

#include "common/logging.h"

namespace replidb::obs {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(const std::string& name,
                                                      Kind kind) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    REPLIDB_CHECK(it->second.kind == kind,
                  "metric re-registered with a different kind");
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &metrics_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, Kind::kCounter)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, Kind::kGauge)->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, Kind::kHistogram)->histogram.get();
}

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kCounter) return nullptr;
  return it->second.counter.get();
}

const Gauge* MetricsRegistry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kGauge) return nullptr;
  return it->second.gauge.get();
}

Histogram MetricsRegistry::HistogramCopy(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end() || it->second.kind != Kind::kHistogram) return {};
  return it->second.histogram->Snapshot();
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  out.reserve(metrics_.size());
  for (const auto& [name, entry] : metrics_) {
    MetricSample s;
    s.name = name;
    switch (entry.kind) {
      case Kind::kCounter:
        s.kind = MetricKind::kCounter;
        s.counter = entry.counter->value();
        break;
      case Kind::kGauge:
        s.kind = MetricKind::kGauge;
        s.gauge = entry.gauge->value();
        break;
      case Kind::kHistogram:
        s.kind = MetricKind::kHistogram;
        s.histogram = entry.histogram->Snapshot();
        break;
    }
    out.push_back(std::move(s));
  }
  return out;  // std::map iteration is already name-sorted.
}

std::string MetricsRegistry::DumpText() const {
  std::string out;
  char line[256];
  for (const MetricSample& s : Snapshot()) {
    switch (s.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof(line), "%-48s counter %llu\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.counter));
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof(line), "%-48s gauge   %lld\n",
                      s.name.c_str(), static_cast<long long>(s.gauge));
        break;
      case MetricKind::kHistogram:
        std::snprintf(line, sizeof(line), "%-48s histo   %s\n",
                      s.name.c_str(), s.histogram.Summary().c_str());
        break;
    }
    out += line;
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : metrics_) {
    (void)name;
    switch (entry.kind) {
      case Kind::kCounter:
        entry.counter->Reset();
        break;
      case Kind::kGauge:
        entry.gauge->Reset();
        break;
      case Kind::kHistogram:
        entry.histogram->Reset();
        break;
    }
  }
}

size_t MetricsRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

}  // namespace replidb::obs
