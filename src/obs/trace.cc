#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace replidb::obs {

uint64_t NextTraceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

const char* Tracer::InitFromEnv() {
  static const char* path = [] {
    const char* p = std::getenv("REPLIDB_TRACE");
    if (p == nullptr || p[0] == '\0') return static_cast<const char*>(nullptr);
    Global().Enable();
    return p;
  }();
  return path;
}

void Tracer::Clear() {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

int32_t Tracer::TrackIdLocked(const std::string& track) {
  auto it = track_ids_.find(track);
  if (it != track_ids_.end()) return it->second;
  int32_t id = static_cast<int32_t>(track_names_.size());
  track_ids_[track] = id;
  track_names_.push_back(track);
  return id;
}

bool Tracer::PushLocked(Event e) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

void Tracer::Span(const std::string& track, const std::string& name,
                  int64_t start_us, int64_t end_us, uint64_t txn) {
  if (!enabled_) return;
  std::lock_guard<common::OrderedMutex> lock(mu_);
  Event e;
  e.phase = 'X';
  e.tid = TrackIdLocked(track);
  e.ts_us = start_us;
  e.dur_us = std::max<int64_t>(0, end_us - start_us);
  e.txn = txn;
  e.value = 0;
  e.name = name;
  PushLocked(std::move(e));
}

void Tracer::Instant(const std::string& track, const std::string& name,
                     int64_t ts_us, uint64_t txn) {
  if (!enabled_) return;
  std::lock_guard<common::OrderedMutex> lock(mu_);
  Event e;
  e.phase = 'i';
  e.tid = TrackIdLocked(track);
  e.ts_us = ts_us;
  e.dur_us = 0;
  e.txn = txn;
  e.value = 0;
  e.name = name;
  PushLocked(std::move(e));
}

void Tracer::CounterSample(const std::string& series, int64_t ts_us,
                           double value) {
  if (!enabled_) return;
  std::lock_guard<common::OrderedMutex> lock(mu_);
  Event e;
  e.phase = 'C';
  e.tid = 0;
  e.ts_us = ts_us;
  e.dur_us = 0;
  e.txn = 0;
  e.value = value;
  e.name = series;
  PushLocked(std::move(e));
}

size_t Tracer::event_count() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return events_.size();
}

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

std::string Tracer::ChromeTraceJson() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::string out;
  out.reserve(events_.size() * 96 + 1024);
  out += "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  // Thread-name metadata so the viewer shows subsystem lanes by name.
  for (size_t i = 0; i < track_names_.size(); ++i) {
    if (!first) out += ',';
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                  "\"tid\":%zu,\"args\":{\"name\":\"",
                  i);
    out += buf;
    AppendJsonEscaped(&out, track_names_[i]);
    out += "\"}}";
  }
  // Emit in virtual-time order (stable on ties) so consumers can rely on
  // per-thread timestamps being monotonically non-decreasing; recording
  // order interleaves retroactively-closed spans out of order.
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_us < b->ts_us;
                   });
  for (const Event* ep : ordered) {
    const Event& e = *ep;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, e.name);
    out += "\",";
    switch (e.phase) {
      case 'X':
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%lld,"
                      "\"dur\":%lld",
                      e.tid, static_cast<long long>(e.ts_us),
                      static_cast<long long>(e.dur_us));
        out += buf;
        break;
      case 'i':
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,"
                      "\"ts\":%lld",
                      e.tid, static_cast<long long>(e.ts_us));
        out += buf;
        break;
      case 'C':
        std::snprintf(buf, sizeof(buf),
                      "\"ph\":\"C\",\"pid\":1,\"ts\":%lld,\"args\":{"
                      "\"value\":%.3f}",
                      static_cast<long long>(e.ts_us), e.value);
        out += buf;
        break;
    }
    if (e.txn != 0) {
      std::snprintf(buf, sizeof(buf),
                    ",\"args\":{\"txn\":%llu}",
                    static_cast<unsigned long long>(e.txn));
      out += buf;
    }
    out += '}';
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  return written == json.size();
}

void Tracer::DumpTimeline(std::FILE* out, size_t limit) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::vector<const Event*> ordered;
  ordered.reserve(events_.size());
  for (const Event& e : events_) ordered.push_back(&e);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Event* a, const Event* b) {
                     return a->ts_us < b->ts_us;
                   });
  std::fprintf(out, "-- trace timeline (%zu events%s) --\n", events_.size(),
               dropped_ > 0 ? ", capped" : "");
  size_t n = std::min(limit, ordered.size());
  for (size_t i = 0; i < n; ++i) {
    const Event& e = *ordered[i];
    const char* track =
        e.phase == 'C' ? "-" : track_names_[static_cast<size_t>(e.tid)].c_str();
    if (e.phase == 'X') {
      std::fprintf(out, "[%12.3f ms] %-16s %-28s dur=%.3f ms",
                   static_cast<double>(e.ts_us) / 1000.0, track,
                   e.name.c_str(), static_cast<double>(e.dur_us) / 1000.0);
    } else if (e.phase == 'i') {
      std::fprintf(out, "[%12.3f ms] %-16s %-28s (instant)",
                   static_cast<double>(e.ts_us) / 1000.0, track,
                   e.name.c_str());
    } else {
      std::fprintf(out, "[%12.3f ms] %-16s %-28s value=%.3f",
                   static_cast<double>(e.ts_us) / 1000.0, track,
                   e.name.c_str(), e.value);
    }
    if (e.txn != 0) {
      std::fprintf(out, " txn=%llu", static_cast<unsigned long long>(e.txn));
    }
    std::fprintf(out, "\n");
  }
  if (ordered.size() > n) {
    std::fprintf(out, "... %zu more events\n", ordered.size() - n);
  }
}

}  // namespace replidb::obs
