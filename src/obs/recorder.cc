#include "obs/recorder.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace replidb::obs {

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kViewChange:
      return "view_change";
    case FlightEventKind::kSuspicion:
      return "suspicion";
    case FlightEventKind::kCreditStall:
      return "credit_stall";
    case FlightEventKind::kCreditResume:
      return "credit_resume";
    case FlightEventKind::kCertAbort:
      return "cert_abort";
    case FlightEventKind::kResyncPhase:
      return "resync_phase";
    case FlightEventKind::kFailover:
      return "failover";
    case FlightEventKind::kOther:
      return "other";
  }
  return "?";
}

FlightRecorder::FlightRecorder(size_t per_node_capacity)
    : per_node_capacity_(per_node_capacity == 0 ? 1 : per_node_capacity) {}

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

namespace {
void DumpGlobalOnCheckFailure() { FlightRecorder::Global().Dump(stderr); }
}  // namespace

void FlightRecorder::InstallCheckHook() {
  SetCheckFailureHook(&DumpGlobalOnCheckFailure);
}

void FlightRecorder::Record(int64_t ts_us, int node, FlightEventKind kind,
                            std::string detail) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::deque<FlightEvent>& ring = rings_[node];
  if (ring.size() >= per_node_capacity_) ring.pop_front();
  FlightEvent ev;
  ev.ts_us = ts_us;
  ev.node = node;
  ev.kind = kind;
  ev.detail = std::move(detail);
  ev.seq = seq_++;
  ring.push_back(std::move(ev));
  ++recorded_;
}

uint64_t FlightRecorder::recorded() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return recorded_;
}

size_t FlightRecorder::size() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  size_t n = 0;
  for (const auto& [node, ring] : rings_) {
    (void)node;
    n += ring.size();
  }
  return n;
}

std::vector<FlightEvent> FlightRecorder::NodeEvents(int node) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = rings_.find(node);
  if (it == rings_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<FlightEvent> FlightRecorder::MergedEvents() const {
  std::vector<FlightEvent> out;
  {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    for (const auto& [node, ring] : rings_) {
      (void)node;
      out.insert(out.end(), ring.begin(), ring.end());
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.seq < b.seq;
            });
  return out;
}

std::string FlightRecorder::Render() const {
  std::string out;
  char buf[64];
  for (const FlightEvent& ev : MergedEvents()) {
    std::snprintf(buf, sizeof(buf), "t=%.6fs node=%d kind=%s",
                  static_cast<double>(ev.ts_us) / 1e6, ev.node,
                  FlightEventKindName(ev.kind));
    out += buf;
    if (!ev.detail.empty()) {
      out += ' ';
      out += ev.detail;
    }
    out += '\n';
  }
  return out;
}

void FlightRecorder::Dump(std::FILE* out) const {
  if (out == nullptr) out = stderr;
  std::string body = Render();
  char head[128];
  std::snprintf(head, sizeof(head),
                "--- flight recorder (%llu events recorded, %zu retained) "
                "---\n",
                static_cast<unsigned long long>(recorded()), size());
  std::fwrite(head, 1, std::strlen(head), out);
  std::fwrite(body.data(), 1, body.size(), out);
  const char tail[] = "--- end flight recorder ---\n";
  std::fwrite(tail, 1, sizeof(tail) - 1, out);
  std::fflush(out);
}

void FlightRecorder::Reset() {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  rings_.clear();
  recorded_ = 0;
  seq_ = 0;
}

}  // namespace replidb::obs
