#include "obs/timeseries.h"

#include <cstdio>

#include "obs/metrics.h"

namespace replidb::obs {

Series::Series(std::string name, size_t capacity)
    : name_(std::move(name)), capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void Series::Add(int64_t ts_us, double value) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  if (count_ < capacity_) {
    ring_.push_back({ts_us, value});
    ++count_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.
  ring_[head_] = {ts_us, value};
  head_ = (head_ + 1) % capacity_;
  ++evicted_;
}

size_t Series::size() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return count_;
}

uint64_t Series::evicted() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return evicted_;
}

std::vector<SeriesPoint> Series::Points() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::vector<SeriesPoint> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) {
    out.push_back(ring_[(head_ + i) % capacity_]);
  }
  return out;
}

double Series::Last() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  if (count_ == 0) return 0;
  return ring_[(head_ + count_ - 1) % capacity_].value;
}

double Series::MaxValue() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  double best = 0;
  for (size_t i = 0; i < count_; ++i) {
    double v = ring_[i].value;
    if (i == 0 || v > best) best = v;
  }
  return best;
}

double Series::MinValue() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  double best = 0;
  for (size_t i = 0; i < count_; ++i) {
    double v = ring_[i].value;
    if (i == 0 || v < best) best = v;
  }
  return best;
}

TimeSeriesHub::TimeSeriesHub(size_t default_capacity)
    : default_capacity_(default_capacity == 0 ? 1 : default_capacity) {}

Series* TimeSeriesHub::GetSeries(const std::string& name, size_t capacity) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = series_.find(name);
  if (it != series_.end()) return it->second.get();
  auto s = std::make_unique<Series>(
      name, capacity == 0 ? default_capacity_ : capacity);
  return series_.emplace(name, std::move(s)).first->second.get();
}

const Series* TimeSeriesHub::FindSeries(const std::string& name) const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void TimeSeriesHub::RegisterProbe(const std::string& name, ProbeFn probe) {
  GetSeries(name);  // Series exists even before the first sample.
  std::lock_guard<common::OrderedMutex> lock(mu_);
  probes_[name] = std::move(probe);
}

void TimeSeriesHub::UnregisterProbe(const std::string& name) {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  probes_.erase(name);
}

void TimeSeriesHub::WatchGauge(const std::string& series,
                               const std::string& gauge_name) {
  RegisterProbe(series, [gauge_name] {
    const Gauge* g = MetricsRegistry::Global().FindGauge(gauge_name);
    return g == nullptr ? 0.0 : static_cast<double>(g->value());
  });
}

void TimeSeriesHub::SampleProbes(int64_t now_us) {
  // Probe under the hub lock: registration is cold-path and probes read
  // plain simulator-thread state (they must not take replidb locks).
  std::lock_guard<common::OrderedMutex> lock(mu_);
  ++samples_taken_;
  for (const auto& [name, probe] : probes_) {
    series_[name]->Add(now_us, probe());
  }
}

uint64_t TimeSeriesHub::samples_taken() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return samples_taken_;
}

std::vector<std::string> TimeSeriesHub::SeriesNames() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) {
    (void)s;
    out.push_back(name);
  }
  return out;
}

size_t TimeSeriesHub::series_count() const {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  return series_.size();
}

std::string TimeSeriesHub::DumpJson() const {
  // Copy the series table, then render outside the hub lock (Points()
  // takes each series' inner lock).
  std::vector<const Series*> all;
  {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    all.reserve(series_.size());
    for (const auto& [name, s] : series_) {
      (void)name;
      all.push_back(s.get());
    }
  }
  std::string out = "{\"series\":[";
  char buf[64];
  for (size_t i = 0; i < all.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"name\":\"" + all[i]->name() + "\",";
    std::snprintf(buf, sizeof(buf), "\"evicted\":%llu,\"points\":[",
                  static_cast<unsigned long long>(all[i]->evicted()));
    out += buf;
    std::vector<SeriesPoint> pts = all[i]->Points();
    for (size_t j = 0; j < pts.size(); ++j) {
      if (j > 0) out += ",";
      std::snprintf(buf, sizeof(buf), "[%lld,%.6g]",
                    static_cast<long long>(pts[j].ts_us), pts[j].value);
      out += buf;
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

std::string TimeSeriesHub::DumpCsv() const {
  std::vector<const Series*> all;
  {
    std::lock_guard<common::OrderedMutex> lock(mu_);
    all.reserve(series_.size());
    for (const auto& [name, s] : series_) {
      (void)name;
      all.push_back(s.get());
    }
  }
  std::string out = "series,ts_us,value\n";
  char buf[64];
  for (const Series* s : all) {
    for (const SeriesPoint& p : s->Points()) {
      out += s->name();
      std::snprintf(buf, sizeof(buf), ",%lld,%.6g\n",
                    static_cast<long long>(p.ts_us), p.value);
      out += buf;
    }
  }
  return out;
}

void TimeSeriesHub::Reset() {
  std::lock_guard<common::OrderedMutex> lock(mu_);
  series_.clear();
  probes_.clear();
  samples_taken_ = 0;
}

}  // namespace replidb::obs
