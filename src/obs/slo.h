#ifndef REPLIDB_OBS_SLO_H_
#define REPLIDB_OBS_SLO_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/locks.h"

namespace replidb::obs {

/// \brief Windowed SLO tracking over virtual time.
///
/// The paper's operators care about promises, not averages: "commits finish
/// under X ms at p99", "replicas stay within Y versions of the master". An
/// SloTracker buckets observations into fixed virtual-time windows, closes
/// each window with its p50/p99, and counts windows whose p99 exceeded the
/// target. The controller owns one tracker for commit latency and one for
/// replica staleness and surfaces both through SHOW REPLICA STATUS.
///
/// Windows rotate lazily: an observation (or AdvanceTo) at or past the end
/// of the current window closes it first. Windows with no observations are
/// skipped entirely — they carry no percentile and count no breach.

/// Summary of one closed window.
struct SloWindow {
  int64_t start_us = 0;
  int64_t end_us = 0;
  uint64_t count = 0;
  double p50 = 0;
  double p99 = 0;
  bool breached = false;
};

class SloTracker {
 public:
  /// `target_p99`: the SLO threshold; a closed window with p99 > target
  /// counts one breach. `window_us` must be > 0.
  SloTracker(std::string name, int64_t window_us, double target_p99);
  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  const std::string& name() const { return name_; }
  int64_t window_us() const { return window_us_; }
  double target_p99() const { return target_p99_; }

  /// Records one observation at virtual time `ts_us`, rotating the window
  /// first when `ts_us` is at or past its end.
  void Observe(int64_t ts_us, double value);

  /// Rotates windows up to `ts_us` without recording a value (call from
  /// the periodic sampler so quiet periods still close windows).
  void AdvanceTo(int64_t ts_us);

  uint64_t windows_closed() const;
  uint64_t breaches() const;
  /// Observations recorded in the (still open) current window.
  uint64_t current_count() const;
  /// p50/p99 of the most recently *closed* non-empty window (0 if none).
  double last_p50() const;
  double last_p99() const;

  /// The most recently closed non-empty windows, newest last (bounded
  /// retention; kRetainedWindows).
  std::vector<SloWindow> RecentWindows() const;

  /// One status line, e.g.
  ///   commit_latency_ms p50=1.2 p99=8.7 target_p99=10 windows=42 breaches=3
  std::string StatusLine() const;

  void Reset();

  static constexpr size_t kRetainedWindows = 64;

 private:
  void RotateLocked(int64_t ts_us);  ///< mu_ held.

  const std::string name_;
  const int64_t window_us_;
  const double target_p99_;
  mutable common::OrderedMutex mu_{common::LockRank::kSlo};
  int64_t window_start_us_ = 0;
  bool started_ = false;
  std::vector<double> current_;  ///< Observations in the open window.
  std::vector<SloWindow> recent_;
  uint64_t windows_closed_ = 0;
  uint64_t breaches_ = 0;
  double last_p50_ = 0;
  double last_p99_ = 0;
};

}  // namespace replidb::obs

#endif  // REPLIDB_OBS_SLO_H_
