#ifndef REPLIDB_WORKLOAD_WORKLOADS_H_
#define REPLIDB_WORKLOAD_WORKLOADS_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "middleware/common.h"

namespace replidb::workload {

/// \brief A workload produces the initial database population and an
/// endless stream of transactions.
class Workload {
 public:
  virtual ~Workload() = default;

  /// Statements that create the schema and seed data. Run identically on
  /// every replica before traffic starts.
  virtual std::vector<std::string> SetupStatements() const = 0;

  /// Next transaction to submit.
  virtual middleware::TxnRequest Next(Rng* rng) = 0;
};

/// \brief The paper's §1 Fortune-500 travel-broker workload: 95 %
/// read-only availability lookups, 5 % booking writes, Zipf-skewed items.
class TicketBrokerWorkload : public Workload {
 public:
  struct Options {
    int items = 2000;          ///< Inventory size.
    int agents = 500;          ///< Travel agencies.
    double write_fraction = 0.05;
    double zipf_theta = 0.6;   ///< Item popularity skew.
  };

  TicketBrokerWorkload() : TicketBrokerWorkload(Options{}) {}
  explicit TicketBrokerWorkload(Options options) : options_(options) {}

  std::vector<std::string> SetupStatements() const override;
  middleware::TxnRequest Next(Rng* rng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// \brief Micro update/read mix on one accounts table: the knobs that
/// matter are write fraction (multi-master saturation, C2) and hot-row
/// skew (certification conflicts, C5).
class MicroWorkload : public Workload {
 public:
  struct Options {
    int rows = 1000;
    double write_fraction = 0.2;
    /// Fraction of writes that hit the hot set (first `hot_rows` rows).
    double hot_fraction = 0.0;
    int hot_rows = 10;
    /// Statements per write transaction.
    int statements_per_write = 1;
  };

  MicroWorkload() : MicroWorkload(Options{}) {}
  explicit MicroWorkload(Options options) : options_(options) {}

  std::vector<std::string> SetupStatements() const override;
  middleware::TxnRequest Next(Rng* rng) override;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// \brief Sequential batch script (§4.4.5): single-row updates issued one
/// after another by one client — the workload that suffers most from
/// middleware latency overhead.
class BatchScriptWorkload : public Workload {
 public:
  explicit BatchScriptWorkload(int rows = 1000) : rows_(rows) {}

  std::vector<std::string> SetupStatements() const override;
  middleware::TxnRequest Next(Rng* rng) override;

 private:
  int rows_;
  int cursor_ = 0;
};

/// \brief Many-table workload for the memory-aware load-balancing
/// experiment (C4): each transaction works within one of `tables` table
/// working sets; a replica whose buffer pool holds the table runs it much
/// faster.
class MultiTableWorkload : public Workload {
 public:
  struct Options {
    int tables = 12;
    int rows_per_table = 300;
    double write_fraction = 0.1;
  };

  MultiTableWorkload() : MultiTableWorkload(Options{}) {}
  explicit MultiTableWorkload(Options options) : options_(options) {}

  std::vector<std::string> SetupStatements() const override;
  middleware::TxnRequest Next(Rng* rng) override;

 private:
  Options options_;
};

/// \brief Partitioned workload (Figure 2): orders keyed by customer;
/// `partition_hint` carries the partition key so drivers route to the
/// owning partition's controller.
class PartitionedOrdersWorkload : public Workload {
 public:
  struct Options {
    int customers = 3000;
    double write_fraction = 0.5;  ///< Write-heavy: partitioning's use case.
  };

  PartitionedOrdersWorkload() : PartitionedOrdersWorkload(Options{}) {}
  explicit PartitionedOrdersWorkload(Options options) : options_(options) {}

  std::vector<std::string> SetupStatements() const override;
  middleware::TxnRequest Next(Rng* rng) override;

 private:
  Options options_;
};

}  // namespace replidb::workload

#endif  // REPLIDB_WORKLOAD_WORKLOADS_H_
