#include "workload/workloads.h"

namespace replidb::workload {

using middleware::TxnRequest;

// ---------------------------------------------------------------------------
// TicketBrokerWorkload

std::vector<std::string> TicketBrokerWorkload::SetupStatements() const {
  std::vector<std::string> out;
  out.push_back(
      "CREATE TABLE inventory (item INT PRIMARY KEY, stock INT, price DOUBLE)");
  out.push_back(
      "CREATE TABLE bookings (id INT PRIMARY KEY AUTO_INCREMENT, agent INT, "
      "item INT, qty INT)");
  std::string batch;
  for (int i = 0; i < options_.items; ++i) {
    if (batch.empty()) {
      batch = "INSERT INTO inventory VALUES ";
    } else {
      batch += ", ";
    }
    batch += "(" + std::to_string(i) + ", 1000, " +
             std::to_string(50 + (i % 400)) + ".0)";
    if ((i + 1) % 200 == 0 || i + 1 == options_.items) {
      out.push_back(batch);
      batch.clear();
    }
  }
  return out;
}

TxnRequest TicketBrokerWorkload::Next(Rng* rng) {
  TxnRequest req;
  int64_t item =
      static_cast<int64_t>(rng->Zipf(static_cast<uint64_t>(options_.items),
                                     options_.zipf_theta));
  if (rng->Chance(options_.write_fraction)) {
    // Booking: check stock, record booking, decrement inventory.
    int64_t agent = rng->UniformRange(0, options_.agents - 1);
    int64_t qty = rng->UniformRange(1, 4);
    req.read_only = false;
    req.statements.push_back("SELECT stock FROM inventory WHERE item = " +
                             std::to_string(item));
    req.statements.push_back("INSERT INTO bookings (agent, item, qty) VALUES (" +
                             std::to_string(agent) + ", " +
                             std::to_string(item) + ", " +
                             std::to_string(qty) + ")");
    req.statements.push_back("UPDATE inventory SET stock = stock - " +
                             std::to_string(qty) + " WHERE item = " +
                             std::to_string(item));
  } else {
    req.read_only = true;
    if (rng->Chance(0.7)) {
      req.statements.push_back(
          "SELECT stock, price FROM inventory WHERE item = " +
          std::to_string(item));
    } else {
      // Booking status lookup by key (agents re-check recent bookings).
      int64_t booking = rng->UniformRange(1, 2000);
      req.statements.push_back("SELECT * FROM bookings WHERE id = " +
                               std::to_string(booking));
    }
  }
  req.partition_hint = item;
  return req;
}

// ---------------------------------------------------------------------------
// MicroWorkload

std::vector<std::string> MicroWorkload::SetupStatements() const {
  std::vector<std::string> out;
  out.push_back("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
  std::string batch;
  for (int i = 0; i < options_.rows; ++i) {
    if (batch.empty()) {
      batch = "INSERT INTO accounts VALUES ";
    } else {
      batch += ", ";
    }
    batch += "(" + std::to_string(i) + ", 1000)";
    if ((i + 1) % 200 == 0 || i + 1 == options_.rows) {
      out.push_back(batch);
      batch.clear();
    }
  }
  return out;
}

TxnRequest MicroWorkload::Next(Rng* rng) {
  TxnRequest req;
  auto pick_row = [this, rng]() -> int64_t {
    if (options_.hot_fraction > 0 && rng->Chance(options_.hot_fraction)) {
      return rng->UniformRange(0, options_.hot_rows - 1);
    }
    return rng->UniformRange(0, options_.rows - 1);
  };
  if (rng->Chance(options_.write_fraction)) {
    req.read_only = false;
    for (int i = 0; i < options_.statements_per_write; ++i) {
      int64_t row = pick_row();
      req.statements.push_back(
          "UPDATE accounts SET balance = balance + 1 WHERE id = " +
          std::to_string(row));
      req.partition_hint = row;
    }
  } else {
    int64_t row = pick_row();
    req.read_only = true;
    req.statements.push_back("SELECT balance FROM accounts WHERE id = " +
                             std::to_string(row));
    req.partition_hint = row;
  }
  return req;
}

// ---------------------------------------------------------------------------
// BatchScriptWorkload

std::vector<std::string> BatchScriptWorkload::SetupStatements() const {
  std::vector<std::string> out;
  out.push_back("CREATE TABLE batch_rows (id INT PRIMARY KEY, v INT)");
  std::string batch;
  for (int i = 0; i < rows_; ++i) {
    if (batch.empty()) {
      batch = "INSERT INTO batch_rows VALUES ";
    } else {
      batch += ", ";
    }
    batch += "(" + std::to_string(i) + ", 0)";
    if ((i + 1) % 200 == 0 || i + 1 == rows_) {
      out.push_back(batch);
      batch.clear();
    }
  }
  return out;
}

TxnRequest BatchScriptWorkload::Next(Rng* rng) {
  (void)rng;
  TxnRequest req;
  req.read_only = false;
  int64_t row = cursor_++ % rows_;
  req.statements.push_back("UPDATE batch_rows SET v = v + 1 WHERE id = " +
                           std::to_string(row));
  req.partition_hint = row;
  return req;
}

// ---------------------------------------------------------------------------
// MultiTableWorkload

std::vector<std::string> MultiTableWorkload::SetupStatements() const {
  std::vector<std::string> out;
  for (int t = 0; t < options_.tables; ++t) {
    std::string name = "ws_" + std::to_string(t);
    out.push_back("CREATE TABLE " + name + " (id INT PRIMARY KEY, v INT)");
    std::string batch;
    for (int i = 0; i < options_.rows_per_table; ++i) {
      if (batch.empty()) {
        batch = "INSERT INTO " + name + " VALUES ";
      } else {
        batch += ", ";
      }
      batch += "(" + std::to_string(i) + ", 0)";
      if ((i + 1) % 200 == 0 || i + 1 == options_.rows_per_table) {
        out.push_back(batch);
        batch.clear();
      }
    }
  }
  return out;
}

TxnRequest MultiTableWorkload::Next(Rng* rng) {
  TxnRequest req;
  int64_t t = rng->UniformRange(0, options_.tables - 1);
  std::string name = "ws_" + std::to_string(t);
  if (rng->Chance(options_.write_fraction)) {
    int64_t row = rng->UniformRange(0, options_.rows_per_table - 1);
    req.read_only = false;
    req.statements.push_back("UPDATE " + name + " SET v = v + 1 WHERE id = " +
                             std::to_string(row));
  } else {
    // Working-set scan: touches the whole table (memory-resident or not).
    req.read_only = true;
    req.statements.push_back("SELECT SUM(v) FROM " + name);
  }
  req.partition_hint = t;
  return req;
}

// ---------------------------------------------------------------------------
// PartitionedOrdersWorkload

std::vector<std::string> PartitionedOrdersWorkload::SetupStatements() const {
  std::vector<std::string> out;
  out.push_back(
      "CREATE TABLE orders (id INT PRIMARY KEY AUTO_INCREMENT, customer INT, "
      "amount DOUBLE)");
  out.push_back(
      "CREATE TABLE customers (id INT PRIMARY KEY, order_count INT)");
  std::string batch;
  for (int i = 0; i < options_.customers; ++i) {
    if (batch.empty()) {
      batch = "INSERT INTO customers VALUES ";
    } else {
      batch += ", ";
    }
    batch += "(" + std::to_string(i) + ", 0)";
    if ((i + 1) % 200 == 0 || i + 1 == options_.customers) {
      out.push_back(batch);
      batch.clear();
    }
  }
  return out;
}

TxnRequest PartitionedOrdersWorkload::Next(Rng* rng) {
  TxnRequest req;
  int64_t customer = rng->UniformRange(0, options_.customers - 1);
  req.partition_hint = customer;
  if (rng->Chance(options_.write_fraction)) {
    req.read_only = false;
    req.statements.push_back(
        "INSERT INTO orders (customer, amount) VALUES (" +
        std::to_string(customer) + ", " +
        std::to_string(10 + customer % 90) + ".5)");
    req.statements.push_back(
        "UPDATE customers SET order_count = order_count + 1 WHERE id = " +
        std::to_string(customer));
  } else {
    req.read_only = true;
    req.statements.push_back(
        "SELECT order_count FROM customers WHERE id = " +
        std::to_string(customer));
  }
  return req;
}

}  // namespace replidb::workload
