#ifndef REPLIDB_WORKLOAD_LOAD_GENERATOR_H_
#define REPLIDB_WORKLOAD_LOAD_GENERATOR_H_

#include <algorithm>
#include <map>
#include <memory>

#include "client/driver.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "sim/simulator.h"
#include "workload/workloads.h"

namespace replidb::workload {

/// \brief Results of one load run.
struct RunStats {
  uint64_t submitted = 0;
  uint64_t committed = 0;
  uint64_t failed = 0;              ///< Final non-OK outcomes after retries.
  uint64_t retries = 0;             ///< Total driver retries.
  Histogram latency_ms;             ///< Committed-transaction latency (ms).
  Histogram read_latency_ms;
  Histogram write_latency_ms;
  Histogram staleness;              ///< Versions behind head, reads.
  std::map<StatusCode, uint64_t> failures_by_code;
  sim::Duration elapsed = 0;

  double ThroughputTps() const {
    double secs = sim::ToSeconds(elapsed);
    return secs > 0 ? static_cast<double>(committed) / secs : 0;
  }
  double AbortRate() const {
    uint64_t total = committed + failed;
    return total > 0 ? static_cast<double>(failed) / total : 0;
  }

  /// Merges another run's counters and samples (multi-generator runs).
  void Merge(const RunStats& o) {
    submitted += o.submitted;
    committed += o.committed;
    failed += o.failed;
    retries += o.retries;
    latency_ms.Merge(o.latency_ms);
    read_latency_ms.Merge(o.read_latency_ms);
    write_latency_ms.Merge(o.write_latency_ms);
    staleness.Merge(o.staleness);
    for (const auto& [code, n] : o.failures_by_code) {
      failures_by_code[code] += n;
    }
    elapsed = std::max(elapsed, o.elapsed);
  }
};

/// \brief Open-loop load: transactions arrive as a Poisson process at
/// `rate_tps` regardless of completions — the paper's point that
/// closed-loop-only evaluation hides behaviour under fixed offered load
/// (§3.4, §5.1).
class OpenLoopGenerator {
 public:
  OpenLoopGenerator(sim::Simulator* sim, client::Driver* driver,
                    Workload* workload, double rate_tps, uint64_t seed = 1);

  /// Starts generating at Now() and stops issuing at Now() + duration.
  /// Completions after the cut-off still count.
  void Run(sim::Duration duration);

  /// Schedules arrivals up to `stop_at` without driving the simulator —
  /// for multi-generator runs where the caller advances time itself.
  void Arm(sim::TimePoint stop_at);

  RunStats& stats() { return stats_; }

 private:
  void ScheduleNext();
  void Fire();

  sim::Simulator* sim_;
  client::Driver* driver_;
  Workload* workload_;
  double rate_tps_;
  Rng rng_;
  sim::TimePoint stop_at_ = 0;
  RunStats stats_;
};

/// \brief Closed loop: `clients` outstanding transactions, each client
/// submits the next one `think_time` after its previous completes.
class ClosedLoopGenerator {
 public:
  ClosedLoopGenerator(sim::Simulator* sim, client::Driver* driver,
                      Workload* workload, int clients,
                      sim::Duration think_time = 0, uint64_t seed = 1);

  void Run(sim::Duration duration);

  /// Launches the client loops without driving the simulator — for runs
  /// that arm several generators (e.g. one per session) and then advance
  /// the shared simulator themselves. Sets stats().elapsed.
  void Arm(sim::TimePoint stop_at);

  RunStats& stats() { return stats_; }

 private:
  void ClientLoop();

  sim::Simulator* sim_;
  client::Driver* driver_;
  Workload* workload_;
  int clients_;
  sim::Duration think_time_;
  Rng rng_;
  sim::TimePoint stop_at_ = 0;
  RunStats stats_;
};

/// Records one completed transaction into `stats`.
void Record(RunStats* stats, const middleware::TxnRequest& req,
            const middleware::TxnResult& result);

}  // namespace replidb::workload

#endif  // REPLIDB_WORKLOAD_LOAD_GENERATOR_H_
