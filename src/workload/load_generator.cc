#include "workload/load_generator.h"

namespace replidb::workload {

void Record(RunStats* stats, const middleware::TxnRequest& req,
            const middleware::TxnResult& result) {
  stats->retries += static_cast<uint64_t>(result.retries);
  if (result.status.ok()) {
    ++stats->committed;
    double ms = sim::ToMillis(result.latency);
    stats->latency_ms.Add(ms);
    if (req.read_only) {
      stats->read_latency_ms.Add(ms);
      stats->staleness.Add(static_cast<double>(result.staleness));
    } else {
      stats->write_latency_ms.Add(ms);
    }
  } else {
    ++stats->failed;
    ++stats->failures_by_code[result.status.code()];
  }
}

// ---------------------------------------------------------------------------
// OpenLoopGenerator

OpenLoopGenerator::OpenLoopGenerator(sim::Simulator* sim,
                                     client::Driver* driver,
                                     Workload* workload, double rate_tps,
                                     uint64_t seed)
    : sim_(sim),
      driver_(driver),
      workload_(workload),
      rate_tps_(rate_tps),
      rng_(seed) {}

void OpenLoopGenerator::Run(sim::Duration duration) {
  Arm(sim_->Now() + duration);
  sim_->RunUntil(stop_at_);
  // Let in-flight transactions drain.
  sim_->RunFor(10 * sim::kSecond);
}

void OpenLoopGenerator::Arm(sim::TimePoint stop_at) {
  stop_at_ = stop_at;
  stats_.elapsed = stop_at - sim_->Now();
  ScheduleNext();
}

void OpenLoopGenerator::ScheduleNext() {
  double mean_gap_us = 1e6 / rate_tps_;
  sim::Duration gap =
      static_cast<sim::Duration>(rng_.Exponential(mean_gap_us));
  if (gap < 1) gap = 1;
  sim_->Schedule(gap, [this] {
    if (sim_->Now() >= stop_at_) return;
    Fire();
    ScheduleNext();
  });
}

void OpenLoopGenerator::Fire() {
  middleware::TxnRequest req = workload_->Next(&rng_);
  ++stats_.submitted;
  middleware::TxnRequest copy = req;
  driver_->Submit(std::move(req),
                  [this, copy](const middleware::TxnResult& result) {
                    Record(&stats_, copy, result);
                  });
}

// ---------------------------------------------------------------------------
// ClosedLoopGenerator

ClosedLoopGenerator::ClosedLoopGenerator(sim::Simulator* sim,
                                         client::Driver* driver,
                                         Workload* workload, int clients,
                                         sim::Duration think_time,
                                         uint64_t seed)
    : sim_(sim),
      driver_(driver),
      workload_(workload),
      clients_(clients),
      think_time_(think_time),
      rng_(seed) {}

void ClosedLoopGenerator::Run(sim::Duration duration) {
  Arm(sim_->Now() + duration);
  sim_->RunUntil(stop_at_);
  sim_->RunFor(10 * sim::kSecond);
}

void ClosedLoopGenerator::Arm(sim::TimePoint stop_at) {
  stop_at_ = stop_at;
  stats_.elapsed = stop_at - sim_->Now();
  for (int i = 0; i < clients_; ++i) ClientLoop();
}

void ClosedLoopGenerator::ClientLoop() {
  if (sim_->Now() >= stop_at_) return;
  middleware::TxnRequest req = workload_->Next(&rng_);
  ++stats_.submitted;
  middleware::TxnRequest copy = req;
  driver_->Submit(std::move(req),
                  [this, copy](const middleware::TxnResult& result) {
                    Record(&stats_, copy, result);
                    sim::Duration think =
                        think_time_ > 0
                            ? static_cast<sim::Duration>(rng_.Exponential(
                                  static_cast<double>(think_time_)))
                            : 0;
                    sim_->Schedule(think, [this] { ClientLoop(); });
                  });
}

}  // namespace replidb::workload
