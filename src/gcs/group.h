#ifndef REPLIDB_GCS_GROUP_H_
#define REPLIDB_GCS_GROUP_H_

#include <any>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/dispatcher.h"
#include "net/failure_detector.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::gcs {

/// \brief A membership view: the members this node currently believes are
/// alive, plus the sequencer among them.
struct View {
  uint64_t view_id = 0;
  std::vector<net::NodeId> members;  ///< Sorted, suspected nodes excluded.
  net::NodeId sequencer = -1;        ///< Lowest-id live member.
};

/// \brief Options for the group communication layer.
struct GroupOptions {
  /// Sequencer processing cost per multicast: ordering + fan-out. This is
  /// the intrinsic scalability limit the paper attributes to group
  /// communication (§4.3.4.1): cost grows with group size.
  sim::Duration sequencer_process = 20 * sim::kMicrosecond;
  sim::Duration per_member_send = 10 * sim::kMicrosecond;

  /// Sender-side retransmission to the sequencer if no ordered copy of an
  /// own message arrives in time (covers message loss / sequencer change).
  sim::Duration resend_interval = 200 * sim::kMillisecond;

  /// Receiver-side gap repair: ask the sequencer for missing sequence
  /// numbers after this long.
  sim::Duration nack_interval = 100 * sim::kMillisecond;

  /// Heartbeat settings used for membership/failure detection.
  net::HeartbeatOptions heartbeat;
};

/// \brief One member of a reliable totally-ordered multicast group
/// (sequencer-based, in the style the paper's systems layer on Spread).
///
/// Guarantees (within the model): every message multicast by a live member
/// is eventually delivered exactly once, in the same total order, at every
/// member that stays live and connected to the sequencer's partition side.
/// On sequencer failure the next-lowest live member takes over; members
/// re-send unordered messages to the new sequencer.
class GroupMember {
 public:
  /// Delivery callback: ordered messages arrive exactly once, in sequence.
  using DeliverFn = std::function<void(net::NodeId origin, uint64_t seq,
                                       const std::any& payload)>;
  using ViewFn = std::function<void(const View&)>;

  GroupMember(sim::Simulator* sim, net::Dispatcher* dispatcher,
              std::vector<net::NodeId> members, GroupOptions options = {});
  ~GroupMember();
  GroupMember(const GroupMember&) = delete;
  GroupMember& operator=(const GroupMember&) = delete;

  net::NodeId id() const { return dispatcher_->node(); }
  const View& view() const { return view_; }
  bool IsSequencer() const { return view_.sequencer == id(); }

  void OnDeliver(DeliverFn fn) { deliver_ = std::move(fn); }
  void OnViewChange(ViewFn fn) { view_change_ = std::move(fn); }

  /// Reliably multicasts `payload` to the group in total order (the sender
  /// also delivers its own message, when ordered).
  void Multicast(std::any payload, int64_t size_bytes = 512);

  /// Highest sequence number delivered so far (0 = none).
  uint64_t last_delivered() const { return next_expected_ - 1; }

  /// Messages this member originated that are not yet ordered.
  size_t unordered_backlog() const { return pending_own_.size(); }

  /// Total multicasts this member originated.
  uint64_t multicasts_sent() const { return multicasts_sent_; }
  /// Total ordered messages delivered here.
  uint64_t delivered_count() const { return delivered_count_; }

 private:
  struct PendingOwn {
    uint64_t msg_id;
    std::any payload;
    int64_t size_bytes;
    sim::TimePoint last_sent;
    /// When Multicast() was called (ordering-latency measurement).
    sim::TimePoint submitted = 0;
  };
  struct OrderedMsg {
    net::NodeId origin;
    uint64_t msg_id;
    std::any payload;
    int64_t size_bytes;
  };

  void HandleForward(const net::Message& m);
  void HandleOrdered(const net::Message& m);
  void HandleNack(const net::Message& m);
  void MaybeDeliver();
  void RecomputeView();
  void Tick();

  sim::Simulator* sim_;
  net::Dispatcher* dispatcher_;
  GroupOptions options_;
  std::vector<net::NodeId> all_members_;
  View view_;

  DeliverFn deliver_;
  ViewFn view_change_;

  std::unique_ptr<net::HeartbeatResponder> hb_responder_;
  std::unique_ptr<net::HeartbeatDetector> hb_detector_;
  std::set<net::NodeId> suspected_;

  // Sender state.
  uint64_t next_msg_id_ = 1;
  std::map<uint64_t, PendingOwn> pending_own_;  // msg_id -> message.
  uint64_t multicasts_sent_ = 0;

  // Sequencer state.
  uint64_t next_seq_to_assign_ = 1;
  sim::TimePoint sequencer_busy_until_ = 0;
  std::map<std::pair<net::NodeId, uint64_t>, uint64_t> assigned_;  // dedup.
  std::map<uint64_t, OrderedMsg> history_;  // For gap repair.

  // Receiver state.
  uint64_t next_expected_ = 1;
  std::map<uint64_t, OrderedMsg> out_of_order_;
  uint64_t delivered_count_ = 0;
  sim::TimePoint last_gap_nack_ = 0;

  std::unique_ptr<sim::PeriodicTask> ticker_;
};

}  // namespace replidb::gcs

#endif  // REPLIDB_GCS_GROUP_H_
