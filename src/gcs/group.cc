#include "gcs/group.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace replidb::gcs {

namespace {

/// Modeled size of a gap-repair NACK frame.
constexpr int64_t kNackWireBytes = 64;

/// Group-communication registry handles, resolved once (aggregated across
/// members; the sequencer backlog gauge tracks whoever currently holds the
/// sequencer role).
struct GcsMetrics {
  obs::Counter* multicasts;
  obs::Counter* ordered;
  obs::Counter* delivered;
  obs::Counter* view_changes;
  obs::Counter* nacks;
  obs::Gauge* sequencer_backlog_us;
  obs::HistogramMetric* order_latency_ms;

  static GcsMetrics& Get() {
    static GcsMetrics m;
    return m;
  }

 private:
  GcsMetrics() {
    auto& r = obs::MetricsRegistry::Global();
    multicasts = r.GetCounter("gcs.member.multicasts");
    ordered = r.GetCounter("gcs.sequencer.ordered");
    delivered = r.GetCounter("gcs.member.delivered");
    view_changes = r.GetCounter("gcs.member.view_changes");
    nacks = r.GetCounter("gcs.member.nacks");
    sequencer_backlog_us = r.GetGauge("gcs.sequencer.backlog_us");
    order_latency_ms = r.GetHistogram("gcs.order.latency_ms");
  }
};

struct FwdBody {
  uint64_t msg_id;
  std::any payload;
  int64_t size_bytes;
};
struct OrdBody {
  uint64_t seq;
  net::NodeId origin;
  uint64_t msg_id;
  std::any payload;
  int64_t size_bytes;
};
struct NackBody {
  uint64_t from_seq;
  uint64_t to_seq;
};

constexpr char kFwd[] = "gcs.fwd";
constexpr char kOrd[] = "gcs.ord";
constexpr char kNack[] = "gcs.nack";

}  // namespace

GroupMember::GroupMember(sim::Simulator* sim, net::Dispatcher* dispatcher,
                         std::vector<net::NodeId> members, GroupOptions options)
    : sim_(sim),
      dispatcher_(dispatcher),
      options_(options),
      all_members_(std::move(members)) {
  std::sort(all_members_.begin(), all_members_.end());

  dispatcher_->On(kFwd, [this](const net::Message& m) { HandleForward(m); });
  dispatcher_->On(kOrd, [this](const net::Message& m) { HandleOrdered(m); });
  dispatcher_->On(kNack, [this](const net::Message& m) { HandleNack(m); });

  hb_responder_ =
      std::make_unique<net::HeartbeatResponder>(sim_, dispatcher_);
  hb_detector_ = std::make_unique<net::HeartbeatDetector>(sim_, dispatcher_,
                                                          options_.heartbeat);
  for (net::NodeId m : all_members_) {
    if (m != id()) hb_detector_->Watch(m);
  }
  hb_detector_->OnSuspicionChange([this](net::NodeId node, bool suspect) {
    if (suspect) {
      suspected_.insert(node);
    } else {
      suspected_.erase(node);
    }
    RecomputeView();
  });

  RecomputeView();

  ticker_ = std::make_unique<sim::PeriodicTask>(
      sim_, options_.nack_interval, [this] { Tick(); });
  ticker_->StartAfter(options_.nack_interval);
}

GroupMember::~GroupMember() {
  if (ticker_) ticker_->Stop();
}

void GroupMember::RecomputeView() {
  View next;
  next.view_id = view_.view_id;
  for (net::NodeId m : all_members_) {
    if (!suspected_.count(m)) next.members.push_back(m);
  }
  next.sequencer = next.members.empty() ? -1 : next.members.front();
  if (next.members == view_.members && next.sequencer == view_.sequencer) {
    return;
  }
  bool sequencer_changed = next.sequencer != view_.sequencer;
  next.view_id = view_.view_id + 1;
  view_ = next;
  GcsMetrics::Get().view_changes->Increment();
  if (obs::TracingEnabled()) {
    obs::Tracer::Global().Instant("gcs." + std::to_string(id()),
                                  "view." + std::to_string(view_.view_id),
                                  sim_->Now());
  }

  if (sequencer_changed) {
    // Receivers drop buffered out-of-order messages: the old sequencer's
    // assignments beyond our delivery point may be reassigned. Origins
    // resend; the nack path repairs any gap from the new sequencer's
    // history. (A member that delivered a seq the new sequencer never saw
    // is a documented rare double-fault window, as in real sequencer
    // protocols without full view synchrony.)
    out_of_order_.clear();
    if (IsSequencer()) {
      uint64_t max_seen = next_expected_ - 1;
      if (!history_.empty()) {
        max_seen = std::max(max_seen, history_.rbegin()->first);
      }
      next_seq_to_assign_ = std::max(next_seq_to_assign_, max_seen + 1);
      sequencer_busy_until_ = sim_->Now();
    }
    // Re-send unordered own messages to the new sequencer immediately.
    for (auto& [msg_id, pending] : pending_own_) {
      (void)msg_id;
      pending.last_sent = 0;
    }
    Tick();
  }
  if (view_change_) view_change_(view_);
}

void GroupMember::Multicast(std::any payload, int64_t size_bytes) {
  ++multicasts_sent_;
  GcsMetrics::Get().multicasts->Increment();
  PendingOwn pending;
  pending.msg_id = next_msg_id_++;
  pending.payload = payload;
  pending.size_bytes = size_bytes;
  pending.last_sent = sim_->Now();
  pending.submitted = sim_->Now();
  uint64_t msg_id = pending.msg_id;
  pending_own_.emplace(msg_id, std::move(pending));
  if (view_.sequencer >= 0) {
    dispatcher_->Send(view_.sequencer, kFwd,
                      FwdBody{msg_id, std::move(payload), size_bytes},
                      size_bytes + 32);
  }
}

void GroupMember::HandleForward(const net::Message& m) {
  if (!IsSequencer()) return;  // Stale view at the origin; it will resend.
  auto body = std::any_cast<FwdBody>(m.body);
  auto key = std::make_pair(m.from, body.msg_id);
  auto it = assigned_.find(key);
  uint64_t seq;
  if (it != assigned_.end()) {
    seq = it->second;  // Duplicate forward: re-announce the assignment.
    auto hit = history_.find(seq);
    if (hit != history_.end()) {
      dispatcher_->Send(m.from, kOrd,
                        OrdBody{seq, hit->second.origin, hit->second.msg_id,
                                hit->second.payload, hit->second.size_bytes},
                        hit->second.size_bytes + 48);
    }
    return;
  }
  seq = next_seq_to_assign_++;
  assigned_[key] = seq;
  GcsMetrics::Get().ordered->Increment();
  OrderedMsg om{m.from, body.msg_id, body.payload, body.size_bytes};
  history_[seq] = om;

  // Queueing at the sequencer: ordering + fan-out take CPU, which is the
  // total-order throughput ceiling (§4.3.4.1).
  sim::Duration cost =
      options_.sequencer_process +
      options_.per_member_send *
          static_cast<sim::Duration>(view_.members.size());
  sequencer_busy_until_ = std::max(sequencer_busy_until_, sim_->Now()) + cost;
  GcsMetrics::Get().sequencer_backlog_us->Set(
      sequencer_busy_until_ > sim_->Now() ? sequencer_busy_until_ - sim_->Now()
                                          : 0);
  std::vector<net::NodeId> targets = all_members_;
  sim_->ScheduleAt(sequencer_busy_until_, [this, seq, om, targets] {
    for (net::NodeId member : targets) {
      dispatcher_->Send(member, kOrd,
                        OrdBody{seq, om.origin, om.msg_id, om.payload,
                                om.size_bytes},
                        om.size_bytes + 48);
    }
  });
}

void GroupMember::HandleOrdered(const net::Message& m) {
  auto body = std::any_cast<OrdBody>(m.body);
  if (body.seq < next_expected_) return;  // Duplicate.
  if (!out_of_order_.count(body.seq)) {
    out_of_order_[body.seq] =
        OrderedMsg{body.origin, body.msg_id, body.payload, body.size_bytes};
  }
  MaybeDeliver();
}

void GroupMember::MaybeDeliver() {
  while (true) {
    auto it = out_of_order_.find(next_expected_);
    if (it == out_of_order_.end()) break;
    OrderedMsg msg = std::move(it->second);
    out_of_order_.erase(it);
    history_[next_expected_] = msg;
    if (msg.origin == id()) {
      auto own = pending_own_.find(msg.msg_id);
      if (own != pending_own_.end()) {
        GcsMetrics::Get().order_latency_ms->Observe(
            sim::ToMillis(sim_->Now() - own->second.submitted));
        pending_own_.erase(own);
      }
    }
    ++delivered_count_;
    GcsMetrics::Get().delivered->Increment();
    uint64_t seq = next_expected_++;
    if (deliver_) deliver_(msg.origin, seq, msg.payload);
  }
}

void GroupMember::HandleNack(const net::Message& m) {
  auto body = std::any_cast<NackBody>(m.body);
  for (uint64_t seq = body.from_seq; seq <= body.to_seq; ++seq) {
    auto it = history_.find(seq);
    if (it == history_.end()) continue;
    dispatcher_->Send(m.from, kOrd,
                      OrdBody{seq, it->second.origin, it->second.msg_id,
                              it->second.payload, it->second.size_bytes},
                      it->second.size_bytes + 48);
  }
}

void GroupMember::Tick() {
  // Resend unordered own messages to the current sequencer.
  if (view_.sequencer >= 0) {
    for (auto& [msg_id, pending] : pending_own_) {
      if (sim_->Now() - pending.last_sent >= options_.resend_interval ||
          pending.last_sent == 0) {
        pending.last_sent = sim_->Now();
        dispatcher_->Send(view_.sequencer, kFwd,
                          FwdBody{msg_id, pending.payload, pending.size_bytes},
                          pending.size_bytes + 32);
      }
    }
    // Gap repair.
    if (!out_of_order_.empty() &&
        out_of_order_.begin()->first > next_expected_ &&
        sim_->Now() - last_gap_nack_ >= options_.nack_interval) {
      last_gap_nack_ = sim_->Now();
      GcsMetrics::Get().nacks->Increment();
      dispatcher_->Send(view_.sequencer, kNack,
                        NackBody{next_expected_,
                                 out_of_order_.begin()->first - 1},
                        kNackWireBytes);
    }
  }
}

}  // namespace replidb::gcs
