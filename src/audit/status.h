#ifndef REPLIDB_AUDIT_STATUS_H_
#define REPLIDB_AUDIT_STATUS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace replidb::audit {

/// \brief One row of the operator console: everything an operator would
/// ask about a replica ("SHOW REPLICA STATUS").
struct ReplicaStatus {
  int32_t id = -1;
  std::string role;   ///< "master" / "slave" / "replica" / "standby".
  std::string state;  ///< "online" / "suspect" / "down" / "resyncing".
  uint64_t applied_version = 0;  ///< Last applied global version.
  uint64_t lag_versions = 0;     ///< Versions behind the cluster head.
  uint64_t backlog = 0;          ///< Replication entries queued, unapplied.
  uint64_t apply_errors = 0;
  uint64_t digest_epoch = 0;  ///< Newest audit epoch this replica answered.
  bool diverged = false;
  uint64_t first_divergent_epoch = 0;  ///< 0 = clean.
  std::string diverged_tables;         ///< Comma-joined, empty if clean.
};

/// \brief One windowed SLO tracker's current state (commit latency,
/// replica staleness; see obs/slo.h). Plain values so audit stays free of
/// an obs dependency.
struct SloStatus {
  std::string name;        ///< e.g. "commit_latency_ms".
  double p50 = 0;          ///< Last closed non-empty window.
  double p99 = 0;
  double target_p99 = 0;
  uint64_t windows = 0;    ///< Windows closed so far.
  uint64_t breaches = 0;   ///< Closed windows whose p99 exceeded target.
};

/// \brief Point-in-time cluster introspection snapshot, built by the
/// controller on demand (programmatic API for benches/tests; rendered as
/// text for operators).
struct StatusSnapshot {
  std::string mode;         ///< Replication mode name.
  std::string consistency;  ///< Consistency level name.
  uint64_t head_version = 0;
  uint64_t audit_epochs_started = 0;
  uint64_t audit_epochs_compared = 0;
  uint64_t divergences_detected = 0;
  std::vector<ReplicaStatus> replicas;
  std::vector<SloStatus> slos;  ///< Empty when SLO tracking is disabled.
};

/// Renders the snapshot as a MySQL-`SHOW REPLICA STATUS`-style aligned
/// text table, one replica per row, with an audit summary line.
std::string RenderReplicaStatus(const StatusSnapshot& snapshot);

/// Renders the snapshot as a machine-readable JSON document.
std::string RenderStatusJson(const StatusSnapshot& snapshot);

/// Renders the snapshot in Prometheus exposition format: per-replica
/// metrics labelled {replica="id",role="...",state="..."}, one `# TYPE`
/// line per metric family, and label values escaped per the exposition
/// rules (backslash, double quote, newline).
std::string RenderStatusPrometheus(const StatusSnapshot& snapshot);

}  // namespace replidb::audit

#endif  // REPLIDB_AUDIT_STATUS_H_
