#include "audit/auditor.h"

#include <algorithm>
#include <set>

namespace replidb::audit {

void DivergenceAuditor::BeginEpoch(uint64_t epoch, uint64_t version,
                                   std::vector<int32_t> expected) {
  PendingEpoch pe;
  pe.version = version;
  pe.expected = std::move(expected);
  pending_[epoch] = std::move(pe);
  ++epochs_started_;
  // A replica that crashed mid-epoch never reports; cap the backlog so
  // abandoned epochs cannot accumulate forever.
  while (pending_.size() > 64) pending_.erase(pending_.begin());
}

std::vector<Divergence> DivergenceAuditor::AddReport(
    ReplicaAuditReport report) {
  ++reports_received_;
  ReplicaAuditState& st = replica_state_[report.replica];
  if (report.epoch >= st.last_epoch) {
    st.last_epoch = report.epoch;
    st.last_version = report.captured_version;
    st.last_applied_seq = report.last_applied_seq;
  }

  auto it = pending_.find(report.epoch);
  if (it == pending_.end()) return {};  // Stale or evicted epoch.
  PendingEpoch& pe = it->second;
  bool expected = std::find(pe.expected.begin(), pe.expected.end(),
                            report.replica) != pe.expected.end();
  if (!expected) return {};
  for (const ReplicaAuditReport& r : pe.reports) {
    if (r.replica == report.replica) return {};  // Duplicate.
  }
  pe.reports.push_back(std::move(report));
  if (pe.reports.size() < pe.expected.size()) return {};

  uint64_t epoch = it->first;
  PendingEpoch done = std::move(pe);
  pending_.erase(it);
  return CompleteEpoch(epoch, std::move(done));
}

std::vector<Divergence> DivergenceAuditor::CompleteEpoch(uint64_t epoch,
                                                         PendingEpoch pe) {
  // Group reports by capture position: only replicas at the same stream
  // position hold comparable content.
  std::map<uint64_t, std::vector<const ReplicaAuditReport*>> groups;
  for (const ReplicaAuditReport& r : pe.reports) {
    groups[r.captured_version].push_back(&r);
  }

  std::vector<Divergence> fresh;
  bool any_compared = false;
  for (auto& [version, group] : groups) {
    if (group.size() < 2) continue;
    any_compared = true;
    // Deterministic order so majority ties break toward the lowest id.
    std::sort(group.begin(), group.end(),
              [](const ReplicaAuditReport* a, const ReplicaAuditReport* b) {
                return a->replica < b->replica;
              });

    // Union of table names across the group: a table missing from one
    // replica (e.g. a CREATE TABLE that failed there) counts as digest 0.
    std::set<std::string> tables;
    for (const ReplicaAuditReport* r : group) {
      for (const auto& [name, digest] : r->table_digests) {
        (void)digest;
        tables.insert(name);
      }
    }

    for (const std::string& table : tables) {
      auto digest_of = [&](const ReplicaAuditReport* r) -> uint64_t {
        for (const auto& [name, digest] : r->table_digests) {
          if (name == table) return digest;
        }
        return 0;
      };
      // Majority digest is canonical; first-seen wins ties, which after
      // the sort above means the lowest replica id.
      std::map<uint64_t, int> votes;
      uint64_t canonical = digest_of(group.front());
      int best = 0;
      for (const ReplicaAuditReport* r : group) {
        uint64_t d = digest_of(r);
        int v = ++votes[d];
        if (v > best) {
          best = v;
          canonical = d;
        }
      }
      for (const ReplicaAuditReport* r : group) {
        uint64_t d = digest_of(r);
        if (d == canonical) continue;
        ReplicaAuditState& st = replica_state_[r->replica];
        st.diverged = true;
        if (st.first_divergent_epoch == 0) st.first_divergent_epoch = epoch;
        auto key = std::make_pair(r->replica, table);
        if (known_.count(key)) continue;  // Already reported.
        known_[key] = epoch;
        Divergence dv;
        dv.epoch = epoch;
        dv.version = version;
        dv.table = table;
        dv.replica = r->replica;
        dv.expected_digest = canonical;
        dv.actual_digest = d;
        divergences_.push_back(dv);
        fresh.push_back(dv);
      }
    }
  }
  if (any_compared) {
    ++epochs_compared_;
  } else {
    ++epochs_unaligned_;
  }
  return fresh;
}

bool DivergenceAuditor::IsDiverged(int32_t replica) const {
  auto it = replica_state_.find(replica);
  return it != replica_state_.end() && it->second.diverged;
}

uint64_t DivergenceAuditor::FirstDivergentEpoch(int32_t replica) const {
  auto it = replica_state_.find(replica);
  return it == replica_state_.end() ? 0 : it->second.first_divergent_epoch;
}

std::vector<std::string> DivergenceAuditor::DivergedTables(
    int32_t replica) const {
  std::vector<std::string> out;
  for (const auto& [key, epoch] : known_) {
    (void)epoch;
    if (key.first == replica) out.push_back(key.second);
  }
  return out;  // std::map iteration order is already sorted.
}

ReplicaAuditState DivergenceAuditor::StateOf(int32_t replica) const {
  auto it = replica_state_.find(replica);
  return it == replica_state_.end() ? ReplicaAuditState{} : it->second;
}

}  // namespace replidb::audit
