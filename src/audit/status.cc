#include "audit/status.h"

#include <algorithm>
#include <cstdio>

namespace replidb::audit {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string RenderReplicaStatus(const StatusSnapshot& snapshot) {
  const std::vector<std::string> headers = {
      "replica", "role",         "state",    "applied", "lag",
      "backlog", "apply_errors", "digest_epoch", "diverged"};
  std::vector<std::vector<std::string>> rows;
  for (const ReplicaStatus& r : snapshot.replicas) {
    std::string diverged = "no";
    if (r.diverged) {
      diverged = "YES [" + r.diverged_tables + " @ epoch " +
                 U64(r.first_divergent_epoch) + "]";
    }
    rows.push_back({U64(static_cast<uint64_t>(r.id)), r.role, r.state,
                    U64(r.applied_version), U64(r.lag_versions),
                    U64(r.backlog), U64(r.apply_errors), U64(r.digest_epoch),
                    diverged});
  }

  std::vector<size_t> widths(headers.size());
  for (size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out;
  out += "== SHOW REPLICA STATUS ==\n";
  out += "mode: " + snapshot.mode + "   consistency: " + snapshot.consistency +
         "   head version: " + U64(snapshot.head_version) + "\n";
  out += emit_row(headers);
  for (size_t i = 0; i < headers.size(); ++i) {
    out.append(widths[i], '-');
    if (i + 1 < headers.size()) out.append(2, ' ');
  }
  out += '\n';
  for (const auto& row : rows) out += emit_row(row);
  out += "audit: " + U64(snapshot.audit_epochs_compared) + "/" +
         U64(snapshot.audit_epochs_started) + " epochs compared, " +
         U64(snapshot.divergences_detected) + " divergence(s) detected\n";
  return out;
}

std::string RenderStatusJson(const StatusSnapshot& snapshot) {
  std::string out = "{";
  out += "\"mode\":\"" + JsonEscape(snapshot.mode) + "\",";
  out += "\"consistency\":\"" + JsonEscape(snapshot.consistency) + "\",";
  out += "\"head_version\":" + U64(snapshot.head_version) + ",";
  out += "\"audit\":{";
  out += "\"epochs_started\":" + U64(snapshot.audit_epochs_started) + ",";
  out += "\"epochs_compared\":" + U64(snapshot.audit_epochs_compared) + ",";
  out += "\"divergences_detected\":" + U64(snapshot.divergences_detected);
  out += "},\"replicas\":[";
  for (size_t i = 0; i < snapshot.replicas.size(); ++i) {
    const ReplicaStatus& r = snapshot.replicas[i];
    if (i > 0) out += ",";
    out += "{";
    out += "\"id\":" + std::to_string(r.id) + ",";
    out += "\"role\":\"" + JsonEscape(r.role) + "\",";
    out += "\"state\":\"" + JsonEscape(r.state) + "\",";
    out += "\"applied_version\":" + U64(r.applied_version) + ",";
    out += "\"lag_versions\":" + U64(r.lag_versions) + ",";
    out += "\"backlog\":" + U64(r.backlog) + ",";
    out += "\"apply_errors\":" + U64(r.apply_errors) + ",";
    out += "\"digest_epoch\":" + U64(r.digest_epoch) + ",";
    out += std::string("\"diverged\":") + (r.diverged ? "true" : "false") +
           ",";
    out += "\"first_divergent_epoch\":" + U64(r.first_divergent_epoch) + ",";
    out += "\"diverged_tables\":\"" + JsonEscape(r.diverged_tables) + "\"";
    out += "}";
  }
  out += "]}";
  return out;
}

}  // namespace replidb::audit
