#include "audit/status.h"

#include <algorithm>
#include <cstdio>

namespace replidb::audit {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

std::string RenderReplicaStatus(const StatusSnapshot& snapshot) {
  const std::vector<std::string> headers = {
      "replica", "role",         "state",    "applied", "lag",
      "backlog", "apply_errors", "digest_epoch", "diverged"};
  std::vector<std::vector<std::string>> rows;
  for (const ReplicaStatus& r : snapshot.replicas) {
    std::string diverged = "no";
    if (r.diverged) {
      diverged = "YES [" + r.diverged_tables + " @ epoch " +
                 U64(r.first_divergent_epoch) + "]";
    }
    rows.push_back({U64(static_cast<uint64_t>(r.id)), r.role, r.state,
                    U64(r.applied_version), U64(r.lag_versions),
                    U64(r.backlog), U64(r.apply_errors), U64(r.digest_epoch),
                    diverged});
  }

  std::vector<size_t> widths(headers.size());
  for (size_t i = 0; i < headers.size(); ++i) widths[i] = headers[i].size();
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < row.size(); ++i) {
      line += row[i];
      if (i + 1 < row.size()) {
        line.append(widths[i] - row[i].size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out;
  out += "== SHOW REPLICA STATUS ==\n";
  out += "mode: " + snapshot.mode + "   consistency: " + snapshot.consistency +
         "   head version: " + U64(snapshot.head_version) + "\n";
  out += emit_row(headers);
  for (size_t i = 0; i < headers.size(); ++i) {
    out.append(widths[i], '-');
    if (i + 1 < headers.size()) out.append(2, ' ');
  }
  out += '\n';
  for (const auto& row : rows) out += emit_row(row);
  out += "audit: " + U64(snapshot.audit_epochs_compared) + "/" +
         U64(snapshot.audit_epochs_started) + " epochs compared, " +
         U64(snapshot.divergences_detected) + " divergence(s) detected\n";
  for (const SloStatus& slo : snapshot.slos) {
    out += "slo: " + slo.name + " p50=" + Num(slo.p50) +
           " p99=" + Num(slo.p99) + " target_p99=" + Num(slo.target_p99) +
           " windows=" + U64(slo.windows) +
           " breaches=" + U64(slo.breaches) + "\n";
  }
  return out;
}

std::string RenderStatusJson(const StatusSnapshot& snapshot) {
  std::string out = "{";
  out += "\"mode\":\"" + JsonEscape(snapshot.mode) + "\",";
  out += "\"consistency\":\"" + JsonEscape(snapshot.consistency) + "\",";
  out += "\"head_version\":" + U64(snapshot.head_version) + ",";
  out += "\"audit\":{";
  out += "\"epochs_started\":" + U64(snapshot.audit_epochs_started) + ",";
  out += "\"epochs_compared\":" + U64(snapshot.audit_epochs_compared) + ",";
  out += "\"divergences_detected\":" + U64(snapshot.divergences_detected);
  out += "},\"replicas\":[";
  for (size_t i = 0; i < snapshot.replicas.size(); ++i) {
    const ReplicaStatus& r = snapshot.replicas[i];
    if (i > 0) out += ",";
    out += "{";
    out += "\"id\":" + std::to_string(r.id) + ",";
    out += "\"role\":\"" + JsonEscape(r.role) + "\",";
    out += "\"state\":\"" + JsonEscape(r.state) + "\",";
    out += "\"applied_version\":" + U64(r.applied_version) + ",";
    out += "\"lag_versions\":" + U64(r.lag_versions) + ",";
    out += "\"backlog\":" + U64(r.backlog) + ",";
    out += "\"apply_errors\":" + U64(r.apply_errors) + ",";
    out += "\"digest_epoch\":" + U64(r.digest_epoch) + ",";
    out += std::string("\"diverged\":") + (r.diverged ? "true" : "false") +
           ",";
    out += "\"first_divergent_epoch\":" + U64(r.first_divergent_epoch) + ",";
    out += "\"diverged_tables\":\"" + JsonEscape(r.diverged_tables) + "\"";
    out += "}";
  }
  out += "],\"slos\":[";
  for (size_t i = 0; i < snapshot.slos.size(); ++i) {
    const SloStatus& s = snapshot.slos[i];
    if (i > 0) out += ",";
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",";
    out += "\"p50\":" + std::string(Num(s.p50)) + ",";
    out += "\"p99\":" + std::string(Num(s.p99)) + ",";
    out += "\"target_p99\":" + std::string(Num(s.target_p99)) + ",";
    out += "\"windows\":" + U64(s.windows) + ",";
    out += "\"breaches\":" + U64(s.breaches);
    out += "}";
  }
  out += "]}";
  return out;
}

namespace {

/// Prometheus label values: escape backslash, double quote, and newline
/// (the exposition format's three escapes) — an unescaped newline or
/// quote in a role/state/table string would corrupt the whole scrape.
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RenderStatusPrometheus(const StatusSnapshot& snapshot) {
  std::string out;
  // One # TYPE line per family, before its first sample, regardless of
  // how many replicas (= samples of the same family) follow.
  auto family = [&out](const char* name, const char* kind) {
    out += "# TYPE replidb_status_";
    out += name;
    out += ' ';
    out += kind;
    out += '\n';
  };
  auto labels = [](const ReplicaStatus& r) {
    return "{replica=\"" + std::to_string(r.id) + "\",role=\"" +
           PromLabelEscape(r.role) + "\",state=\"" + PromLabelEscape(r.state) +
           "\"}";
  };

  family("head_version", "gauge");
  out += "replidb_status_head_version " + U64(snapshot.head_version) + "\n";

  family("replica_applied_version", "gauge");
  for (const ReplicaStatus& r : snapshot.replicas) {
    out += "replidb_status_replica_applied_version" + labels(r) + " " +
           U64(r.applied_version) + "\n";
  }
  family("replica_lag_versions", "gauge");
  for (const ReplicaStatus& r : snapshot.replicas) {
    out += "replidb_status_replica_lag_versions" + labels(r) + " " +
           U64(r.lag_versions) + "\n";
  }
  family("replica_backlog", "gauge");
  for (const ReplicaStatus& r : snapshot.replicas) {
    out += "replidb_status_replica_backlog" + labels(r) + " " +
           U64(r.backlog) + "\n";
  }
  family("replica_apply_errors", "counter");
  for (const ReplicaStatus& r : snapshot.replicas) {
    out += "replidb_status_replica_apply_errors" + labels(r) + " " +
           U64(r.apply_errors) + "\n";
  }
  family("replica_diverged", "gauge");
  for (const ReplicaStatus& r : snapshot.replicas) {
    std::string l = "{replica=\"" + std::to_string(r.id) + "\",tables=\"" +
                    PromLabelEscape(r.diverged_tables) + "\"}";
    out += "replidb_status_replica_diverged" + l + " " +
           (r.diverged ? "1" : "0") + "\n";
  }

  if (!snapshot.slos.empty()) {
    family("slo_p99", "gauge");
    for (const SloStatus& s : snapshot.slos) {
      out += "replidb_status_slo_p99{slo=\"" + PromLabelEscape(s.name) +
             "\"} " + Num(s.p99) + "\n";
    }
    family("slo_breaches", "counter");
    for (const SloStatus& s : snapshot.slos) {
      out += "replidb_status_slo_breaches{slo=\"" + PromLabelEscape(s.name) +
             "\"} " + U64(s.breaches) + "\n";
    }
  }
  return out;
}

}  // namespace replidb::audit
