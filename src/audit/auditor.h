#ifndef REPLIDB_AUDIT_AUDITOR_H_
#define REPLIDB_AUDIT_AUDITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace replidb::audit {

/// \brief One replica's answer to an audit barrier: where it was in the
/// replication stream when the barrier passed, and the incremental digest
/// of every table at that point.
struct ReplicaAuditReport {
  int32_t replica = -1;
  uint64_t epoch = 0;
  /// Stream position (global version / commit seq) the replica had applied
  /// when it captured the digests. May exceed the barrier's version if the
  /// replica was already ahead when the barrier arrived.
  uint64_t captured_version = 0;
  /// Engine commit sequence at capture (introspection only).
  uint64_t last_applied_seq = 0;
  /// "database.table" -> incremental content digest.
  std::vector<std::pair<std::string, uint64_t>> table_digests;
};

/// \brief A localized divergence: which replica, which table, and the
/// first audit epoch that exposed it.
struct Divergence {
  uint64_t epoch = 0;    ///< First epoch the mismatch was observed.
  uint64_t version = 0;  ///< Aligned stream position compared at.
  std::string table;     ///< "database.table".
  int32_t replica = -1;  ///< The minority (diverged) replica.
  uint64_t expected_digest = 0;  ///< Majority digest at that version.
  uint64_t actual_digest = 0;    ///< What the replica reported.
};

/// \brief Per-replica audit state for the status console.
struct ReplicaAuditState {
  uint64_t last_epoch = 0;    ///< Newest epoch this replica reported for.
  uint64_t last_version = 0;  ///< Stream position of that report.
  uint64_t last_applied_seq = 0;
  bool diverged = false;
  uint64_t first_divergent_epoch = 0;  ///< 0 = never diverged.
};

/// \brief Epoch-based cross-replica content auditor (pure logic).
///
/// The controller starts an epoch, broadcasts a barrier through the
/// replication stream, and feeds every replica's report back here. When an
/// epoch is complete the auditor compares digests between replicas that
/// captured at the same stream position: equal positions on a
/// deterministic stream imply equal content, so any mismatch is real
/// divergence (statement replication of nondeterministic SQL, lost
/// writes, botched recovery). The majority digest is taken as canonical
/// and minority replicas are flagged, once per (replica, table).
///
/// Replicas that captured at a position nobody else reached cannot be
/// compared that epoch; such singleton groups are counted as unaligned
/// rather than risking a false positive.
class DivergenceAuditor {
 public:
  /// Opens epoch `epoch` at barrier position `version`, expecting a report
  /// from each replica in `expected`.
  void BeginEpoch(uint64_t epoch, uint64_t version,
                  std::vector<int32_t> expected);

  /// Records one replica's report. Returns the divergences this report
  /// newly confirmed (empty for repeat confirmations of known ones).
  std::vector<Divergence> AddReport(ReplicaAuditReport report);

  /// All divergences ever confirmed, in discovery order.
  const std::vector<Divergence>& divergences() const { return divergences_; }

  bool IsDiverged(int32_t replica) const;
  /// First epoch at which `replica` was seen diverged; 0 if clean.
  uint64_t FirstDivergentEpoch(int32_t replica) const;
  /// Tables on which `replica` diverged, sorted.
  std::vector<std::string> DivergedTables(int32_t replica) const;

  /// Last-known audit state of `replica` (default-constructed if the
  /// replica never reported).
  ReplicaAuditState StateOf(int32_t replica) const;

  uint64_t epochs_started() const { return epochs_started_; }
  /// Epochs where at least two replicas captured at the same position.
  uint64_t epochs_compared() const { return epochs_compared_; }
  /// Completed epochs with no comparable pair (all capture positions
  /// distinct) — skipped, never reported as divergence.
  uint64_t epochs_unaligned() const { return epochs_unaligned_; }
  uint64_t reports_received() const { return reports_received_; }

 private:
  struct PendingEpoch {
    uint64_t version = 0;
    std::vector<int32_t> expected;
    std::vector<ReplicaAuditReport> reports;
  };

  /// Compares a completed epoch; returns newly confirmed divergences.
  std::vector<Divergence> CompleteEpoch(uint64_t epoch, PendingEpoch pe);

  std::map<uint64_t, PendingEpoch> pending_;
  std::map<int32_t, ReplicaAuditState> replica_state_;
  /// (replica, table) pairs already reported, for dedup.
  std::map<std::pair<int32_t, std::string>, uint64_t> known_;
  std::vector<Divergence> divergences_;
  uint64_t epochs_started_ = 0;
  uint64_t epochs_compared_ = 0;
  uint64_t epochs_unaligned_ = 0;
  uint64_t reports_received_ = 0;
};

}  // namespace replidb::audit

#endif  // REPLIDB_AUDIT_AUDITOR_H_
