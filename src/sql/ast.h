#ifndef REPLIDB_SQL_AST_H_
#define REPLIDB_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sql/value.h"

namespace replidb::sql {

struct SelectStmt;

/// Binary operators in expressions.
enum class BinaryOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
  kAdd, kSub, kMul, kDiv, kMod,
};

/// Unary operators.
enum class UnaryOp { kNot, kNeg };

/// Built-in (potentially non-deterministic) SQL functions.
/// kNow/kRand are the paper's §4.3.2 troublemakers; kNextval draws from a
/// non-transactional sequence (§4.2.3).
enum class FuncKind { kNow, kRand, kNextval, kAbs, kLower, kUpper };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// \brief Expression tree node.
struct Expr {
  enum class Kind { kLiteral, kColumn, kBinary, kUnary, kFunc, kInSubquery };

  Kind kind = Kind::kLiteral;

  // kLiteral:
  Value literal;
  // kColumn:
  std::string column;
  // kBinary / kUnary:
  BinaryOp bin_op = BinaryOp::kEq;
  UnaryOp un_op = UnaryOp::kNot;
  // kFunc:
  FuncKind func = FuncKind::kNow;
  std::string sequence_name;  // kNextval only.
  // Children: binary => {lhs, rhs}; unary/func => {arg...};
  // kInSubquery => {lhs}.
  std::vector<ExprPtr> children;
  // kInSubquery:
  std::unique_ptr<SelectStmt> subquery;

  static ExprPtr Lit(Value v);
  static ExprPtr Col(std::string name);
  static ExprPtr Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
  static ExprPtr Unary(UnaryOp op, ExprPtr arg);
  static ExprPtr Func0(FuncKind f);
  static ExprPtr Nextval(std::string sequence);
  static ExprPtr InSubquery(ExprPtr lhs, std::unique_ptr<SelectStmt> sub);

  ExprPtr Clone() const;
};

/// \brief Table reference, optionally qualified by database instance
/// (`db.table`, the paper's §4.1.1 multi-database case).
struct TableRef {
  std::string database;  ///< Empty means the session's current database.
  std::string table;

  std::string ToString() const {
    return database.empty() ? table : database + "." + table;
  }
  bool operator==(const TableRef& o) const {
    return database == o.database && table == o.table;
  }
};

/// Aggregate functions in a select list.
enum class AggFunc { kNone, kCount, kSum, kMin, kMax, kAvg };

/// One select-list item: `expr`, `COUNT(*)` (expr == nullptr), or
/// `AGG(expr)`.
struct SelectItem {
  AggFunc agg = AggFunc::kNone;
  ExprPtr expr;  // nullptr only for COUNT(*).
};

/// ORDER BY key.
struct OrderKey {
  std::string column;
  bool descending = false;
};

/// \brief SELECT statement.
struct SelectStmt {
  bool star = false;             ///< SELECT *
  std::vector<SelectItem> items; ///< Used when !star.
  TableRef table;
  ExprPtr where;                 ///< May be null.
  std::vector<OrderKey> order_by;
  int64_t limit = -1;            ///< -1 = no LIMIT.
  bool for_update = false;

  std::unique_ptr<SelectStmt> Clone() const;
};

/// Column definition in CREATE TABLE.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt;
  bool primary_key = false;
  bool auto_increment = false;
  bool unique = false;
  bool not_null = false;
};

struct CreateDatabaseStmt {
  std::string name;
  bool if_not_exists = false;
};

struct CreateTableStmt {
  TableRef table;
  std::vector<ColumnDef> columns;
  bool temporary = false;  ///< CREATE TEMPORARY TABLE (§4.1.4).
  bool if_not_exists = false;
};

struct DropTableStmt {
  TableRef table;
  bool if_exists = false;
};

struct CreateSequenceStmt {
  std::string name;
  int64_t start = 1;
};

struct InsertStmt {
  TableRef table;
  std::vector<std::string> columns;        ///< Empty = positional.
  std::vector<std::vector<ExprPtr>> rows;  ///< VALUES (...), (...).
};

struct UpdateStmt {
  TableRef table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;  ///< May be null (full-table update).
};

struct DeleteStmt {
  TableRef table;
  ExprPtr where;  ///< May be null (full-table delete).
};

struct BeginStmt {};
struct CommitStmt {};
struct RollbackStmt {};

/// CALL procedure(args...) — stored procedures are registered natively with
/// the engine; there is no schema describing what they touch (§4.2.1).
struct CallStmt {
  std::string procedure;
  std::vector<ExprPtr> args;
};

/// Statement type tag, aligned with the variant order in Statement::node.
enum class StmtType {
  kCreateDatabase,
  kCreateTable,
  kDropTable,
  kCreateSequence,
  kInsert,
  kUpdate,
  kDelete,
  kSelect,
  kBegin,
  kCommit,
  kRollback,
  kCall,
};

/// \brief A parsed SQL statement.
struct Statement {
  std::variant<CreateDatabaseStmt, CreateTableStmt, DropTableStmt,
               CreateSequenceStmt, InsertStmt, UpdateStmt, DeleteStmt,
               SelectStmt, BeginStmt, CommitStmt, RollbackStmt, CallStmt>
      node;

  StmtType type() const { return static_cast<StmtType>(node.index()); }

  template <typename T>
  T& As() { return std::get<T>(node); }
  template <typename T>
  const T& As() const { return std::get<T>(node); }

  /// True for statements that modify data or schema (must be replicated).
  bool IsWrite() const;

  /// True for transaction-control statements.
  bool IsTransactionControl() const {
    StmtType t = type();
    return t == StmtType::kBegin || t == StmtType::kCommit ||
           t == StmtType::kRollback;
  }

  /// The table this statement targets, if any (CALL and control return
  /// nullptr — the paper's point: procedure table-sets are unknown).
  const TableRef* TargetTable() const;
};

/// Serializes an expression back to SQL text.
std::string ExprToSql(const Expr& e);

/// Serializes a statement back to canonical SQL text. Statement-based
/// replication ships this text to the replicas after rewriting.
std::string ToSql(const Statement& stmt);
std::string ToSql(const SelectStmt& stmt);

}  // namespace replidb::sql

#endif  // REPLIDB_SQL_AST_H_
