#ifndef REPLIDB_SQL_VALUE_H_
#define REPLIDB_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace replidb::sql {

/// Column types supported by the engine dialect.
enum class ValueType { kNull, kInt, kDouble, kString, kBool };

const char* ValueTypeName(ValueType t);

/// \brief A typed SQL value (NULL, INT, DOUBLE, STRING, BOOL).
///
/// Values are small, copyable, and totally ordered (NULL sorts first,
/// cross-type numeric comparisons promote int to double).
class Value {
 public:
  /// NULL value.
  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t i) { return Value(i); }
  static Value Double(double d) { return Value(d); }
  static Value String(std::string s) { return Value(std::move(s)); }
  static Value Bool(bool b) { return Value(b); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Accessors; behaviour is undefined if the type does not match
  /// (call type() or the As* coercions first).
  int64_t AsInt() const;
  double AsDouble() const;
  const std::string& AsString() const;
  bool AsBool() const;

  /// Numeric coercion: int/double/bool -> double; others -> 0.
  double NumericValue() const;

  /// True if the value is "truthy" (non-null, non-zero, non-empty).
  bool Truthy() const;

  /// SQL literal rendering ('quoted' strings, NULL keyword).
  std::string ToSqlLiteral() const;
  /// Plain rendering for result display.
  std::string ToString() const;

  /// Total order used by ORDER BY and index keys.
  /// Returns <0, 0, >0. NULL < everything; numerics compare numerically.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

  /// Stable 64-bit hash (used for replica content checksums).
  uint64_t Hash() const;

 private:
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(bool b) : v_(b) {}

  std::variant<std::monostate, int64_t, double, std::string, bool> v_;
};

/// A tuple of values: one table row or one result row.
using Row = std::vector<Value>;

/// Stable hash of a whole row (order-sensitive).
uint64_t HashRow(const Row& row);

}  // namespace replidb::sql

#endif  // REPLIDB_SQL_VALUE_H_
