#include "sql/parser.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace replidb::sql {

namespace {

// ---------------------------------------------------------------------------
// Lexer

enum class TokKind { kEof, kIdent, kInt, kDouble, kString, kSym };

struct Token {
  TokKind kind = TokKind::kEof;
  std::string text;   // Ident (upper-cased copy in `upper`), symbol, string body.
  std::string upper;  // Upper-cased ident for keyword checks.
  int64_t int_val = 0;
  double dbl_val = 0.0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : in_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= in_.size()) break;
      char c = in_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c))) {
        out.push_back(LexNumber());
      } else if (c == '\'') {
        Result<Token> t = LexString();
        if (!t.ok()) return t.status();
        out.push_back(t.TakeValue());
      } else {
        Result<Token> t = LexSymbol();
        if (!t.ok()) return t.status();
        out.push_back(t.TakeValue());
      }
    }
    out.push_back(Token{});  // EOF.
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '-' && pos_ + 1 < in_.size() && in_[pos_ + 1] == '-') {
        while (pos_ < in_.size() && in_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < in_.size() &&
           (std::isalnum(static_cast<unsigned char>(in_[pos_])) ||
            in_[pos_] == '_')) {
      ++pos_;
    }
    Token t;
    t.kind = TokKind::kIdent;
    t.text = in_.substr(start, pos_ - start);
    t.upper = t.text;
    for (char& ch : t.upper) ch = static_cast<char>(std::toupper(ch));
    return t;
  }

  Token LexNumber() {
    size_t start = pos_;
    bool is_double = false;
    while (pos_ < in_.size() &&
           std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
      ++pos_;
    }
    if (pos_ < in_.size() && in_[pos_] == '.') {
      is_double = true;
      ++pos_;
      while (pos_ < in_.size() &&
             std::isdigit(static_cast<unsigned char>(in_[pos_]))) {
        ++pos_;
      }
    }
    Token t;
    std::string text = in_.substr(start, pos_ - start);
    if (is_double) {
      t.kind = TokKind::kDouble;
      t.dbl_val = std::strtod(text.c_str(), nullptr);
    } else {
      t.kind = TokKind::kInt;
      t.int_val = std::strtoll(text.c_str(), nullptr, 10);
    }
    t.text = std::move(text);
    return t;
  }

  Result<Token> LexString() {
    ++pos_;  // Skip opening quote.
    std::string body;
    while (pos_ < in_.size()) {
      char c = in_[pos_];
      if (c == '\'') {
        if (pos_ + 1 < in_.size() && in_[pos_ + 1] == '\'') {
          body += '\'';
          pos_ += 2;
          continue;
        }
        ++pos_;
        Token t;
        t.kind = TokKind::kString;
        t.text = std::move(body);
        return t;
      }
      body += c;
      ++pos_;
    }
    return Status::InvalidArgument("unterminated string literal");
  }

  Result<Token> LexSymbol() {
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!="};
    for (const char* s : kTwoChar) {
      if (in_.compare(pos_, 2, s) == 0) {
        Token t;
        t.kind = TokKind::kSym;
        t.text = (std::string(s) == "!=") ? "<>" : s;
        pos_ += 2;
        return t;
      }
    }
    char c = in_[pos_];
    static const std::string kSingles = "(),.=<>+-*/%;";
    if (kSingles.find(c) == std::string::npos) {
      return Status::InvalidArgument(std::string("unexpected character '") + c +
                                     "' in SQL");
    }
    ++pos_;
    Token t;
    t.kind = TokKind::kSym;
    t.text = std::string(1, c);
    return t;
  }

  const std::string& in_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Parser

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Result<Statement> r = ParseStatementInner();
    if (!r.ok()) return r;
    // Optional trailing semicolon, then EOF.
    if (PeekSym(";")) Advance();
    if (!AtEof()) {
      return Status::InvalidArgument("trailing input after statement: '" +
                                     Peek().text + "'");
    }
    return r;
  }

 private:
  Result<Statement> ParseStatementInner() {
    if (AtEof()) return Status::InvalidArgument("empty statement");
    if (PeekKeyword("CREATE")) return ParseCreate();
    if (PeekKeyword("DROP")) return ParseDrop();
    if (PeekKeyword("INSERT")) return ParseInsert();
    if (PeekKeyword("UPDATE")) return ParseUpdate();
    if (PeekKeyword("DELETE")) return ParseDelete();
    if (PeekKeyword("SELECT")) {
      Result<SelectStmt> s = ParseSelect();
      if (!s.ok()) return s.status();
      Statement st;
      st.node = std::move(s.value());
      return st;
    }
    if (PeekKeyword("BEGIN") || PeekKeyword("START")) {
      if (PeekKeyword("START")) {
        Advance();
        if (!ConsumeKeyword("TRANSACTION")) {
          return Status::InvalidArgument("expected TRANSACTION after START");
        }
      } else {
        Advance();
      }
      Statement st;
      st.node = BeginStmt{};
      return st;
    }
    if (PeekKeyword("COMMIT")) {
      Advance();
      Statement st;
      st.node = CommitStmt{};
      return st;
    }
    if (PeekKeyword("ROLLBACK") || PeekKeyword("ABORT")) {
      Advance();
      Statement st;
      st.node = RollbackStmt{};
      return st;
    }
    if (PeekKeyword("CALL")) return ParseCall();
    return Status::InvalidArgument("unrecognized statement start: '" +
                                   Peek().text + "'");
  }

  Result<Statement> ParseCreate() {
    Advance();  // CREATE
    bool temporary = false;
    if (PeekKeyword("TEMPORARY") || PeekKeyword("TEMP")) {
      temporary = true;
      Advance();
    }
    if (PeekKeyword("DATABASE")) {
      Advance();
      CreateDatabaseStmt s;
      s.if_not_exists = ConsumeIfNotExists();
      Result<std::string> name = ExpectIdent();
      if (!name.ok()) return name.status();
      s.name = name.TakeValue();
      Statement st;
      st.node = std::move(s);
      return st;
    }
    if (PeekKeyword("SEQUENCE")) {
      Advance();
      CreateSequenceStmt s;
      Result<std::string> name = ExpectIdent();
      if (!name.ok()) return name.status();
      s.name = name.TakeValue();
      if (PeekKeyword("START")) {
        Advance();
        if (PeekKeyword("WITH")) Advance();
        if (Peek().kind != TokKind::kInt) {
          return Status::InvalidArgument("expected integer after START");
        }
        s.start = Peek().int_val;
        Advance();
      }
      Statement st;
      st.node = std::move(s);
      return st;
    }
    if (!ConsumeKeyword("TABLE")) {
      return Status::InvalidArgument("expected DATABASE, SEQUENCE or TABLE");
    }
    CreateTableStmt s;
    s.temporary = temporary;
    s.if_not_exists = ConsumeIfNotExists();
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    if (!ConsumeSym("(")) return Status::InvalidArgument("expected (");
    while (true) {
      ColumnDef col;
      Result<std::string> name = ExpectIdent();
      if (!name.ok()) return name.status();
      col.name = name.TakeValue();
      Result<ValueType> ty = ExpectType();
      if (!ty.ok()) return ty.status();
      col.type = ty.TakeValue();
      while (true) {
        if (PeekKeyword("PRIMARY")) {
          Advance();
          if (!ConsumeKeyword("KEY")) {
            return Status::InvalidArgument("expected KEY after PRIMARY");
          }
          col.primary_key = true;
        } else if (PeekKeyword("AUTO_INCREMENT") || PeekKeyword("AUTOINCREMENT")) {
          Advance();
          col.auto_increment = true;
        } else if (PeekKeyword("UNIQUE")) {
          Advance();
          col.unique = true;
        } else if (PeekKeyword("NOT")) {
          Advance();
          if (!ConsumeKeyword("NULL")) {
            return Status::InvalidArgument("expected NULL after NOT");
          }
          col.not_null = true;
        } else {
          break;
        }
      }
      s.columns.push_back(std::move(col));
      if (ConsumeSym(",")) continue;
      break;
    }
    if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
    Statement st;
    st.node = std::move(s);
    return st;
  }

  Result<Statement> ParseDrop() {
    Advance();  // DROP
    if (!ConsumeKeyword("TABLE")) {
      return Status::InvalidArgument("only DROP TABLE is supported");
    }
    DropTableStmt s;
    if (PeekKeyword("IF")) {
      Advance();
      if (!ConsumeKeyword("EXISTS")) {
        return Status::InvalidArgument("expected EXISTS after IF");
      }
      s.if_exists = true;
    }
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    Statement st;
    st.node = std::move(s);
    return st;
  }

  Result<Statement> ParseInsert() {
    Advance();  // INSERT
    if (!ConsumeKeyword("INTO")) return Status::InvalidArgument("expected INTO");
    InsertStmt s;
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    if (PeekSym("(")) {
      Advance();
      while (true) {
        Result<std::string> c = ExpectIdent();
        if (!c.ok()) return c.status();
        s.columns.push_back(c.TakeValue());
        if (ConsumeSym(",")) continue;
        break;
      }
      if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
    }
    if (!ConsumeKeyword("VALUES")) {
      return Status::InvalidArgument("expected VALUES");
    }
    while (true) {
      if (!ConsumeSym("(")) return Status::InvalidArgument("expected (");
      std::vector<ExprPtr> row;
      while (true) {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) return e.status();
        row.push_back(e.TakeValue());
        if (ConsumeSym(",")) continue;
        break;
      }
      if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
      s.rows.push_back(std::move(row));
      if (ConsumeSym(",")) continue;
      break;
    }
    Statement st;
    st.node = std::move(s);
    return st;
  }

  Result<Statement> ParseUpdate() {
    Advance();  // UPDATE
    UpdateStmt s;
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    if (!ConsumeKeyword("SET")) return Status::InvalidArgument("expected SET");
    while (true) {
      Result<std::string> col = ExpectIdent();
      if (!col.ok()) return col.status();
      if (!ConsumeSym("=")) return Status::InvalidArgument("expected =");
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.status();
      s.sets.emplace_back(col.TakeValue(), e.TakeValue());
      if (ConsumeSym(",")) continue;
      break;
    }
    if (PeekKeyword("WHERE")) {
      Advance();
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.status();
      s.where = e.TakeValue();
    }
    Statement st;
    st.node = std::move(s);
    return st;
  }

  Result<Statement> ParseDelete() {
    Advance();  // DELETE
    if (!ConsumeKeyword("FROM")) return Status::InvalidArgument("expected FROM");
    DeleteStmt s;
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    if (PeekKeyword("WHERE")) {
      Advance();
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.status();
      s.where = e.TakeValue();
    }
    Statement st;
    st.node = std::move(s);
    return st;
  }

  Result<SelectStmt> ParseSelect() {
    Advance();  // SELECT
    SelectStmt s;
    if (PeekSym("*")) {
      Advance();
      s.star = true;
    } else {
      while (true) {
        SelectItem item;
        if (PeekAgg(&item.agg)) {
          Advance();
          if (!ConsumeSym("(")) return Status::InvalidArgument("expected (");
          if (item.agg == AggFunc::kCount && PeekSym("*")) {
            Advance();
          } else {
            Result<ExprPtr> e = ParseExpr();
            if (!e.ok()) return e.status();
            item.expr = e.TakeValue();
          }
          if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
        } else {
          Result<ExprPtr> e = ParseExpr();
          if (!e.ok()) return e.status();
          item.expr = e.TakeValue();
        }
        s.items.push_back(std::move(item));
        if (ConsumeSym(",")) continue;
        break;
      }
    }
    if (!ConsumeKeyword("FROM")) return Status::InvalidArgument("expected FROM");
    Result<TableRef> tr = ExpectTableRef();
    if (!tr.ok()) return tr.status();
    s.table = tr.TakeValue();
    if (PeekKeyword("WHERE")) {
      Advance();
      Result<ExprPtr> e = ParseExpr();
      if (!e.ok()) return e.status();
      s.where = e.TakeValue();
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      if (!ConsumeKeyword("BY")) return Status::InvalidArgument("expected BY");
      while (true) {
        OrderKey key;
        Result<std::string> c = ExpectIdent();
        if (!c.ok()) return c.status();
        key.column = c.TakeValue();
        if (PeekKeyword("DESC")) {
          Advance();
          key.descending = true;
        } else if (PeekKeyword("ASC")) {
          Advance();
        }
        s.order_by.push_back(std::move(key));
        if (ConsumeSym(",")) continue;
        break;
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      if (Peek().kind != TokKind::kInt) {
        return Status::InvalidArgument("expected integer after LIMIT");
      }
      s.limit = Peek().int_val;
      Advance();
    }
    if (PeekKeyword("FOR")) {
      Advance();
      if (!ConsumeKeyword("UPDATE")) {
        return Status::InvalidArgument("expected UPDATE after FOR");
      }
      s.for_update = true;
    }
    return s;
  }

  Result<Statement> ParseCall() {
    Advance();  // CALL
    CallStmt s;
    Result<std::string> name = ExpectIdent();
    if (!name.ok()) return name.status();
    s.procedure = name.TakeValue();
    if (!ConsumeSym("(")) return Status::InvalidArgument("expected (");
    if (!PeekSym(")")) {
      while (true) {
        Result<ExprPtr> e = ParseExpr();
        if (!e.ok()) return e.status();
        s.args.push_back(e.TakeValue());
        if (ConsumeSym(",")) continue;
        break;
      }
    }
    if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
    Statement st;
    st.node = std::move(s);
    return st;
  }

  // --- Expressions (precedence climbing) ---------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    Result<ExprPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.TakeValue();
    while (PeekKeyword("OR")) {
      Advance();
      Result<ExprPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(BinaryOp::kOr, std::move(e), rhs.TakeValue());
    }
    return e;
  }

  Result<ExprPtr> ParseAnd() {
    Result<ExprPtr> lhs = ParseNot();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.TakeValue();
    while (PeekKeyword("AND")) {
      Advance();
      Result<ExprPtr> rhs = ParseNot();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(BinaryOp::kAnd, std::move(e), rhs.TakeValue());
    }
    return e;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("NOT")) {
      Advance();
      Result<ExprPtr> arg = ParseNot();
      if (!arg.ok()) return arg;
      return Expr::Unary(UnaryOp::kNot, arg.TakeValue());
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    Result<ExprPtr> lhs = ParseAdditive();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.TakeValue();
    if (PeekKeyword("IS")) {
      Advance();
      bool negate = false;
      if (PeekKeyword("NOT")) {
        Advance();
        negate = true;
      }
      if (!ConsumeKeyword("NULL")) {
        return Status::InvalidArgument("expected NULL after IS");
      }
      // col IS NULL  ==>  col = NULL (engine compares NULL equal to NULL
      // here, a documented dialect simplification).
      ExprPtr cmp =
          Expr::Binary(BinaryOp::kEq, std::move(e), Expr::Lit(Value::Null()));
      if (negate) cmp = Expr::Unary(UnaryOp::kNot, std::move(cmp));
      return cmp;
    }
    if (PeekKeyword("IN")) {
      Advance();
      if (!ConsumeSym("(")) return Status::InvalidArgument("expected ( after IN");
      if (PeekKeyword("SELECT")) {
        Result<SelectStmt> sub = ParseSelect();
        if (!sub.ok()) return sub.status();
        if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
        auto subp = std::make_unique<SelectStmt>(std::move(sub.value()));
        return Expr::InSubquery(std::move(e), std::move(subp));
      }
      // Value list: expand to an OR chain over equality tests.
      ExprPtr chain;
      while (true) {
        Result<ExprPtr> v = ParseExpr();
        if (!v.ok()) return v.status();
        ExprPtr cmp = Expr::Binary(BinaryOp::kEq, e->Clone(), v.TakeValue());
        chain = chain ? Expr::Binary(BinaryOp::kOr, std::move(chain),
                                     std::move(cmp))
                      : std::move(cmp);
        if (ConsumeSym(",")) continue;
        break;
      }
      if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
      return chain;
    }
    static const std::pair<const char*, BinaryOp> kCmps[] = {
        {"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
        {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& [sym, op] : kCmps) {
      if (PeekSym(sym)) {
        Advance();
        Result<ExprPtr> rhs = ParseAdditive();
        if (!rhs.ok()) return rhs;
        return Expr::Binary(op, std::move(e), rhs.TakeValue());
      }
    }
    return e;
  }

  Result<ExprPtr> ParseAdditive() {
    Result<ExprPtr> lhs = ParseMultiplicative();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.TakeValue();
    while (PeekSym("+") || PeekSym("-")) {
      BinaryOp op = PeekSym("+") ? BinaryOp::kAdd : BinaryOp::kSub;
      Advance();
      Result<ExprPtr> rhs = ParseMultiplicative();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(op, std::move(e), rhs.TakeValue());
    }
    return e;
  }

  Result<ExprPtr> ParseMultiplicative() {
    Result<ExprPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    ExprPtr e = lhs.TakeValue();
    while (PeekSym("*") || PeekSym("/") || PeekSym("%")) {
      BinaryOp op = PeekSym("*") ? BinaryOp::kMul
                                 : (PeekSym("/") ? BinaryOp::kDiv : BinaryOp::kMod);
      Advance();
      Result<ExprPtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      e = Expr::Binary(op, std::move(e), rhs.TakeValue());
    }
    return e;
  }

  Result<ExprPtr> ParseUnary() {
    if (PeekSym("-")) {
      Advance();
      Result<ExprPtr> arg = ParseUnary();
      if (!arg.ok()) return arg;
      return Expr::Unary(UnaryOp::kNeg, arg.TakeValue());
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokKind::kInt: {
        int64_t v = t.int_val;
        Advance();
        return Expr::Lit(Value::Int(v));
      }
      case TokKind::kDouble: {
        double v = t.dbl_val;
        Advance();
        return Expr::Lit(Value::Double(v));
      }
      case TokKind::kString: {
        std::string v = t.text;
        Advance();
        return Expr::Lit(Value::String(std::move(v)));
      }
      case TokKind::kSym:
        if (t.text == "(") {
          Advance();
          Result<ExprPtr> e = ParseExpr();
          if (!e.ok()) return e;
          if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
          return e;
        }
        return Status::InvalidArgument("unexpected symbol '" + t.text + "'");
      case TokKind::kIdent:
        return ParseIdentExpr();
      case TokKind::kEof:
        return Status::InvalidArgument("unexpected end of input in expression");
    }
    return Status::InvalidArgument("unexpected token");
  }

  Result<ExprPtr> ParseIdentExpr() {
    Token t = Peek();
    if (t.upper == "NULL") {
      Advance();
      return Expr::Lit(Value::Null());
    }
    if (t.upper == "TRUE") {
      Advance();
      return Expr::Lit(Value::Bool(true));
    }
    if (t.upper == "FALSE") {
      Advance();
      return Expr::Lit(Value::Bool(false));
    }
    if (t.upper == "CURRENT_TIMESTAMP") {
      Advance();
      // Parenless form allowed, like in standard SQL.
      if (PeekSym("(")) {
        Advance();
        if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
      }
      return Expr::Func0(FuncKind::kNow);
    }
    static const std::pair<const char*, FuncKind> kFuncs[] = {
        {"NOW", FuncKind::kNow},     {"RAND", FuncKind::kRand},
        {"RANDOM", FuncKind::kRand}, {"ABS", FuncKind::kAbs},
        {"LOWER", FuncKind::kLower}, {"UPPER", FuncKind::kUpper},
    };
    for (const auto& [name, fk] : kFuncs) {
      if (t.upper == name && PeekSymAt(1, "(")) {
        Advance();  // name
        Advance();  // (
        auto e = Expr::Func0(fk);
        if (!PeekSym(")")) {
          while (true) {
            Result<ExprPtr> arg = ParseExpr();
            if (!arg.ok()) return arg;
            e->children.push_back(arg.TakeValue());
            if (ConsumeSym(",")) continue;
            break;
          }
        }
        if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
        return e;
      }
    }
    if (t.upper == "NEXTVAL" && PeekSymAt(1, "(")) {
      Advance();
      Advance();
      std::string seq;
      if (Peek().kind == TokKind::kString) {
        seq = Peek().text;
        Advance();
      } else if (Peek().kind == TokKind::kIdent) {
        seq = Peek().text;
        Advance();
      } else {
        return Status::InvalidArgument("expected sequence name in NEXTVAL");
      }
      if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
      return Expr::Nextval(std::move(seq));
    }
    // Plain column reference.
    Advance();
    return Expr::Col(t.text);
  }

  // --- Token helpers ------------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  void Advance() {
    if (pos_ < toks_.size() - 1) ++pos_;
  }
  bool AtEof() const { return Peek().kind == TokKind::kEof; }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Peek().upper == kw;
  }
  bool PeekSym(const char* s) const {
    return Peek().kind == TokKind::kSym && Peek().text == s;
  }
  bool PeekSymAt(size_t ahead, const char* s) const {
    return Peek(ahead).kind == TokKind::kSym && Peek(ahead).text == s;
  }
  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeSym(const char* s) {
    if (PeekSym(s)) {
      Advance();
      return true;
    }
    return false;
  }
  bool ConsumeIfNotExists() {
    if (PeekKeyword("IF")) {
      Advance();
      ConsumeKeyword("NOT");
      ConsumeKeyword("EXISTS");
      return true;
    }
    return false;
  }
  bool PeekAgg(AggFunc* out) const {
    if (Peek().kind != TokKind::kIdent || !PeekSymAt(1, "(")) return false;
    const std::string& u = Peek().upper;
    if (u == "COUNT") *out = AggFunc::kCount;
    else if (u == "SUM") *out = AggFunc::kSum;
    else if (u == "MIN") *out = AggFunc::kMin;
    else if (u == "MAX") *out = AggFunc::kMax;
    else if (u == "AVG") *out = AggFunc::kAvg;
    else return false;
    return true;
  }

  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected identifier, got '" +
                                     Peek().text + "'");
    }
    std::string s = Peek().text;
    Advance();
    return s;
  }

  Result<TableRef> ExpectTableRef() {
    Result<std::string> first = ExpectIdent();
    if (!first.ok()) return first.status();
    TableRef tr;
    if (PeekSym(".")) {
      Advance();
      Result<std::string> second = ExpectIdent();
      if (!second.ok()) return second.status();
      tr.database = first.TakeValue();
      tr.table = second.TakeValue();
    } else {
      tr.table = first.TakeValue();
    }
    return tr;
  }

  Result<ValueType> ExpectType() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("expected type name");
    }
    const std::string& u = Peek().upper;
    ValueType t;
    if (u == "INT" || u == "INTEGER" || u == "BIGINT") {
      t = ValueType::kInt;
    } else if (u == "DOUBLE" || u == "FLOAT" || u == "REAL" || u == "DECIMAL") {
      t = ValueType::kDouble;
    } else if (u == "TEXT" || u == "VARCHAR" || u == "CHAR" || u == "STRING" ||
               u == "CLOB" || u == "BLOB") {
      t = ValueType::kString;
    } else if (u == "BOOL" || u == "BOOLEAN") {
      t = ValueType::kBool;
    } else {
      return Status::InvalidArgument("unknown type '" + Peek().text + "'");
    }
    Advance();
    // Optional (n) length suffix, ignored (VARCHAR(255)).
    if (PeekSym("(")) {
      Advance();
      if (Peek().kind == TokKind::kInt) Advance();
      if (!ConsumeSym(")")) return Status::InvalidArgument("expected )");
    }
    return t;
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> Parse(const std::string& sql) {
  Lexer lexer(sql);
  Result<std::vector<Token>> toks = lexer.Tokenize();
  if (!toks.ok()) return toks.status();
  Parser parser(toks.TakeValue());
  return parser.ParseStatement();
}

}  // namespace replidb::sql
