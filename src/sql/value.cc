#include "sql/value.h"

#include <cmath>
#include <cstdio>

namespace replidb::sql {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return "INT";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

ValueType Value::type() const {
  switch (v_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt;
    case 2:
      return ValueType::kDouble;
    case 3:
      return ValueType::kString;
    case 4:
      return ValueType::kBool;
  }
  return ValueType::kNull;
}

int64_t Value::AsInt() const { return std::get<int64_t>(v_); }
double Value::AsDouble() const { return std::get<double>(v_); }
const std::string& Value::AsString() const { return std::get<std::string>(v_); }
bool Value::AsBool() const { return std::get<bool>(v_); }

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kInt:
      return static_cast<double>(AsInt());
    case ValueType::kDouble:
      return AsDouble();
    case ValueType::kBool:
      return AsBool() ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

bool Value::Truthy() const {
  switch (type()) {
    case ValueType::kNull:
      return false;
    case ValueType::kInt:
      return AsInt() != 0;
    case ValueType::kDouble:
      return AsDouble() != 0.0;
    case ValueType::kString:
      return !AsString().empty();
    case ValueType::kBool:
      return AsBool();
  }
  return false;
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kString: {
      std::string out = "'";
      for (char c : AsString()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
    default:
      return ToString();
  }
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

namespace {
bool IsNumeric(ValueType t) {
  return t == ValueType::kInt || t == ValueType::kDouble ||
         t == ValueType::kBool;
}
}  // namespace

int Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  if (a == ValueType::kNull || b == ValueType::kNull) {
    if (a == b) return 0;
    return a == ValueType::kNull ? -1 : 1;
  }
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a == ValueType::kInt && b == ValueType::kInt) {
      int64_t x = AsInt(), y = other.AsInt();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = NumericValue(), y = other.NumericValue();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a == ValueType::kString && b == ValueType::kString) {
    return AsString().compare(other.AsString()) < 0
               ? -1
               : (AsString() == other.AsString() ? 0 : 1);
  }
  // Cross-type non-numeric: order by type id for a stable total order.
  int ta = static_cast<int>(a), tb = static_cast<int>(b);
  return ta < tb ? -1 : (ta > tb ? 1 : 0);
}

uint64_t Value::Hash() const {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(type());
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  switch (type()) {
    case ValueType::kNull:
      mix(0);
      break;
    case ValueType::kInt:
      mix(static_cast<uint64_t>(AsInt()));
      break;
    case ValueType::kDouble: {
      double d = AsDouble();
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      mix(bits);
      break;
    }
    case ValueType::kString:
      for (char c : AsString()) mix(static_cast<uint64_t>(static_cast<unsigned char>(c)));
      break;
    case ValueType::kBool:
      mix(AsBool() ? 1 : 2);
      break;
  }
  return h;
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace replidb::sql
