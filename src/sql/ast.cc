#include "sql/ast.h"

#include <utility>

namespace replidb::sql {

ExprPtr Expr::Lit(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::Col(std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kColumn;
  e->column = std::move(name);
  return e;
}

ExprPtr Expr::Binary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kBinary;
  e->bin_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr Expr::Unary(UnaryOp op, ExprPtr arg) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kUnary;
  e->un_op = op;
  e->children.push_back(std::move(arg));
  return e;
}

ExprPtr Expr::Func0(FuncKind f) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunc;
  e->func = f;
  return e;
}

ExprPtr Expr::Nextval(std::string sequence) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kFunc;
  e->func = FuncKind::kNextval;
  e->sequence_name = std::move(sequence);
  return e;
}

ExprPtr Expr::InSubquery(ExprPtr lhs, std::unique_ptr<SelectStmt> sub) {
  auto e = std::make_unique<Expr>();
  e->kind = Kind::kInSubquery;
  e->children.push_back(std::move(lhs));
  e->subquery = std::move(sub);
  return e;
}

ExprPtr Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->column = column;
  e->bin_op = bin_op;
  e->un_op = un_op;
  e->func = func;
  e->sequence_name = sequence_name;
  for (const auto& c : children) e->children.push_back(c->Clone());
  if (subquery) e->subquery = subquery->Clone();
  return e;
}

std::unique_ptr<SelectStmt> SelectStmt::Clone() const {
  auto s = std::make_unique<SelectStmt>();
  s->star = star;
  for (const auto& item : items) {
    SelectItem si;
    si.agg = item.agg;
    si.expr = item.expr ? item.expr->Clone() : nullptr;
    s->items.push_back(std::move(si));
  }
  s->table = table;
  s->where = where ? where->Clone() : nullptr;
  s->order_by = order_by;
  s->limit = limit;
  s->for_update = for_update;
  return s;
}

bool Statement::IsWrite() const {
  switch (type()) {
    case StmtType::kCreateDatabase:
    case StmtType::kCreateTable:
    case StmtType::kDropTable:
    case StmtType::kCreateSequence:
    case StmtType::kInsert:
    case StmtType::kUpdate:
    case StmtType::kDelete:
    case StmtType::kCall:  // Procedures may write; nobody can tell (§4.2.1).
      return true;
    default:
      return false;
  }
}

const TableRef* Statement::TargetTable() const {
  switch (type()) {
    case StmtType::kCreateTable:
      return &As<CreateTableStmt>().table;
    case StmtType::kDropTable:
      return &As<DropTableStmt>().table;
    case StmtType::kInsert:
      return &As<InsertStmt>().table;
    case StmtType::kUpdate:
      return &As<UpdateStmt>().table;
    case StmtType::kDelete:
      return &As<DeleteStmt>().table;
    case StmtType::kSelect:
      return &As<SelectStmt>().table;
    default:
      return nullptr;
  }
}

namespace {

const char* BinOpText(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
  }
  return "?";
}

const char* FuncText(FuncKind f) {
  switch (f) {
    case FuncKind::kNow: return "NOW";
    case FuncKind::kRand: return "RAND";
    case FuncKind::kNextval: return "NEXTVAL";
    case FuncKind::kAbs: return "ABS";
    case FuncKind::kLower: return "LOWER";
    case FuncKind::kUpper: return "UPPER";
  }
  return "?";
}

const char* TypeText(ValueType t) {
  switch (t) {
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "TEXT";
    case ValueType::kBool: return "BOOL";
    case ValueType::kNull: return "NULL";
  }
  return "?";
}

}  // namespace

std::string ExprToSql(const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal.ToSqlLiteral();
    case Expr::Kind::kColumn:
      return e.column;
    case Expr::Kind::kBinary:
      return "(" + ExprToSql(*e.children[0]) + " " + BinOpText(e.bin_op) +
             " " + ExprToSql(*e.children[1]) + ")";
    case Expr::Kind::kUnary:
      return e.un_op == UnaryOp::kNot ? "(NOT " + ExprToSql(*e.children[0]) + ")"
                                      : "(-" + ExprToSql(*e.children[0]) + ")";
    case Expr::Kind::kFunc: {
      if (e.func == FuncKind::kNextval) {
        return std::string("NEXTVAL('") + e.sequence_name + "')";
      }
      std::string out = FuncText(e.func);
      out += "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i) out += ", ";
        out += ExprToSql(*e.children[i]);
      }
      out += ")";
      return out;
    }
    case Expr::Kind::kInSubquery:
      return ExprToSql(*e.children[0]) + " IN (" + ToSql(*e.subquery) + ")";
  }
  return "?";
}

std::string ToSql(const SelectStmt& s) {
  std::string out = "SELECT ";
  if (s.star) {
    out += "*";
  } else {
    for (size_t i = 0; i < s.items.size(); ++i) {
      if (i) out += ", ";
      const SelectItem& item = s.items[i];
      switch (item.agg) {
        case AggFunc::kNone:
          out += ExprToSql(*item.expr);
          break;
        case AggFunc::kCount:
          out += item.expr ? "COUNT(" + ExprToSql(*item.expr) + ")" : "COUNT(*)";
          break;
        case AggFunc::kSum:
          out += "SUM(" + ExprToSql(*item.expr) + ")";
          break;
        case AggFunc::kMin:
          out += "MIN(" + ExprToSql(*item.expr) + ")";
          break;
        case AggFunc::kMax:
          out += "MAX(" + ExprToSql(*item.expr) + ")";
          break;
        case AggFunc::kAvg:
          out += "AVG(" + ExprToSql(*item.expr) + ")";
          break;
      }
    }
  }
  out += " FROM " + s.table.ToString();
  if (s.where) out += " WHERE " + ExprToSql(*s.where);
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i) out += ", ";
      out += s.order_by[i].column;
      if (s.order_by[i].descending) out += " DESC";
    }
  }
  if (s.limit >= 0) out += " LIMIT " + std::to_string(s.limit);
  if (s.for_update) out += " FOR UPDATE";
  return out;
}

std::string ToSql(const Statement& stmt) {
  switch (stmt.type()) {
    case StmtType::kCreateDatabase: {
      const auto& s = stmt.As<CreateDatabaseStmt>();
      std::string out = "CREATE DATABASE ";
      if (s.if_not_exists) out += "IF NOT EXISTS ";
      return out + s.name;
    }
    case StmtType::kCreateTable: {
      const auto& s = stmt.As<CreateTableStmt>();
      std::string out = "CREATE ";
      if (s.temporary) out += "TEMPORARY ";
      out += "TABLE ";
      if (s.if_not_exists) out += "IF NOT EXISTS ";
      out += s.table.ToString() + " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i) out += ", ";
        const ColumnDef& c = s.columns[i];
        out += c.name;
        out += " ";
        out += TypeText(c.type);
        if (c.primary_key) out += " PRIMARY KEY";
        if (c.auto_increment) out += " AUTO_INCREMENT";
        if (c.unique) out += " UNIQUE";
        if (c.not_null) out += " NOT NULL";
      }
      return out + ")";
    }
    case StmtType::kDropTable: {
      const auto& s = stmt.As<DropTableStmt>();
      std::string out = "DROP TABLE ";
      if (s.if_exists) out += "IF EXISTS ";
      return out + s.table.ToString();
    }
    case StmtType::kCreateSequence: {
      const auto& s = stmt.As<CreateSequenceStmt>();
      return "CREATE SEQUENCE " + s.name + " START " + std::to_string(s.start);
    }
    case StmtType::kInsert: {
      const auto& s = stmt.As<InsertStmt>();
      std::string out = "INSERT INTO " + s.table.ToString();
      if (!s.columns.empty()) {
        out += " (";
        for (size_t i = 0; i < s.columns.size(); ++i) {
          if (i) out += ", ";
          out += s.columns[i];
        }
        out += ")";
      }
      out += " VALUES ";
      for (size_t r = 0; r < s.rows.size(); ++r) {
        if (r) out += ", ";
        out += "(";
        for (size_t i = 0; i < s.rows[r].size(); ++i) {
          if (i) out += ", ";
          out += ExprToSql(*s.rows[r][i]);
        }
        out += ")";
      }
      return out;
    }
    case StmtType::kUpdate: {
      const auto& s = stmt.As<UpdateStmt>();
      std::string out = "UPDATE " + s.table.ToString() + " SET ";
      for (size_t i = 0; i < s.sets.size(); ++i) {
        if (i) out += ", ";
        out += s.sets[i].first + " = " + ExprToSql(*s.sets[i].second);
      }
      if (s.where) out += " WHERE " + ExprToSql(*s.where);
      return out;
    }
    case StmtType::kDelete: {
      const auto& s = stmt.As<DeleteStmt>();
      std::string out = "DELETE FROM " + s.table.ToString();
      if (s.where) out += " WHERE " + ExprToSql(*s.where);
      return out;
    }
    case StmtType::kSelect:
      return ToSql(stmt.As<SelectStmt>());
    case StmtType::kBegin:
      return "BEGIN";
    case StmtType::kCommit:
      return "COMMIT";
    case StmtType::kRollback:
      return "ROLLBACK";
    case StmtType::kCall: {
      const auto& s = stmt.As<CallStmt>();
      std::string out = "CALL " + s.procedure + "(";
      for (size_t i = 0; i < s.args.size(); ++i) {
        if (i) out += ", ";
        out += ExprToSql(*s.args[i]);
      }
      return out + ")";
    }
  }
  return "?";
}

}  // namespace replidb::sql
