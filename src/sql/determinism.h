#ifndef REPLIDB_SQL_DETERMINISM_H_
#define REPLIDB_SQL_DETERMINISM_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "sql/ast.h"

namespace replidb::sql {

/// \brief What a statement-replication middleware needs to know before
/// broadcasting a write statement (paper §4.3.2).
struct DeterminismReport {
  /// Statement calls NOW()/CURRENT_TIMESTAMP: replicas with different
  /// clocks produce different values. Fixable by literal substitution.
  bool uses_now = false;

  /// Statement calls RAND() in a context where a single pre-computed value
  /// preserves semantics (e.g. INSERT ... VALUES (RAND())).
  bool uses_rand_rewritable = false;

  /// Statement calls RAND() per-row (UPDATE t SET x = RAND()): hardcoding
  /// one value changes the meaning — the paper's canonical example of a
  /// statement that statement replication cannot fix.
  bool uses_rand_per_row = false;

  /// Statement draws from a sequence (NEXTVAL): deterministic only if all
  /// replicas execute all sequence-touching statements in the same total
  /// order; invisible to trigger-based writeset extraction (§4.2.3).
  bool uses_sequence = false;

  /// A write statement depends on `IN (SELECT ... LIMIT n)` without an
  /// ORDER BY: each replica may pick a different row set (§4.3.2).
  bool unordered_limit_subquery = false;

  /// Human-readable explanations, one per issue found.
  std::vector<std::string> issues;

  /// No non-deterministic construct at all.
  bool IsDeterministic() const {
    return !uses_now && !uses_rand_rewritable && !uses_rand_per_row &&
           !uses_sequence && !unordered_limit_subquery;
  }

  /// Deterministic after middleware rewriting (NOW/insert-RAND replaced by
  /// literals), *assuming total-order execution* for sequences.
  bool SafeForStatementReplication() const {
    return !uses_rand_per_row && !unordered_limit_subquery;
  }
};

/// Analyzes a statement without modifying it.
DeterminismReport Analyze(const Statement& stmt);

/// \brief Rewrites a statement in place for statement-based replication:
/// every NOW()/CURRENT_TIMESTAMP becomes the literal `now_value`, and each
/// RAND() in an INSERT VALUES context becomes a literal drawn from `rng`.
///
/// Per-row RAND() and unordered LIMIT subqueries are left untouched — the
/// returned report still flags them so the middleware can refuse, warn, or
/// fall back to writeset replication.
DeterminismReport RewriteForStatementReplication(Statement* stmt,
                                                 const Value& now_value,
                                                 Rng* rng);

}  // namespace replidb::sql

#endif  // REPLIDB_SQL_DETERMINISM_H_
