#ifndef REPLIDB_SQL_PARSER_H_
#define REPLIDB_SQL_PARSER_H_

#include <string>

#include "common/result.h"
#include "sql/ast.h"

namespace replidb::sql {

/// \brief Parses one SQL statement of the replidb dialect.
///
/// Dialect summary (case-insensitive keywords):
///   CREATE DATABASE [IF NOT EXISTS] name
///   CREATE [TEMPORARY] TABLE [IF NOT EXISTS] [db.]name (col TYPE
///       [PRIMARY KEY] [AUTO_INCREMENT] [UNIQUE] [NOT NULL], ...)
///   DROP TABLE [IF EXISTS] [db.]name
///   CREATE SEQUENCE name [START n]
///   INSERT INTO [db.]t [(cols)] VALUES (exprs), ...
///   UPDATE [db.]t SET col = expr, ... [WHERE expr]
///   DELETE FROM [db.]t [WHERE expr]
///   SELECT *|items FROM [db.]t [WHERE expr] [ORDER BY col [DESC], ...]
///       [LIMIT n] [FOR UPDATE]
///   BEGIN | COMMIT | ROLLBACK
///   CALL proc(args)
///
/// Expressions: literals, columns, arithmetic, comparisons, AND/OR/NOT,
/// NOW(), RAND(), NEXTVAL('seq'), ABS/LOWER/UPPER, `col IN (SELECT ...)`,
/// `col IN (v1, v2, ...)`.
Result<Statement> Parse(const std::string& sql);

}  // namespace replidb::sql

#endif  // REPLIDB_SQL_PARSER_H_
