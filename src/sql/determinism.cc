#include "sql/determinism.h"

namespace replidb::sql {

namespace {

/// Where an expression appears; decides whether RAND() is fixable.
enum class Context { kInsertValue, kUpdateSet, kWhere, kReadOnly };

struct Walker {
  DeterminismReport* report;
  bool in_write_statement;
  // When non-null we are rewriting; otherwise only analyzing.
  const Value* now_value = nullptr;
  Rng* rng = nullptr;

  void Visit(Expr* e, Context ctx) {
    switch (e->kind) {
      case Expr::Kind::kLiteral:
      case Expr::Kind::kColumn:
        return;
      case Expr::Kind::kBinary:
      case Expr::Kind::kUnary:
        for (auto& c : e->children) Visit(c.get(), ctx);
        return;
      case Expr::Kind::kFunc:
        VisitFunc(e, ctx);
        return;
      case Expr::Kind::kInSubquery:
        Visit(e->children[0].get(), ctx);
        VisitSubquery(e->subquery.get(), ctx);
        return;
    }
  }

  void VisitFunc(Expr* e, Context ctx) {
    for (auto& c : e->children) Visit(c.get(), ctx);
    switch (e->func) {
      case FuncKind::kNow:
        report->uses_now = true;
        report->issues.push_back(
            "NOW()/CURRENT_TIMESTAMP differs across replicas; rewritable");
        if (now_value != nullptr) {
          e->kind = Expr::Kind::kLiteral;
          e->literal = *now_value;
          e->children.clear();
        }
        return;
      case FuncKind::kRand:
        if (ctx == Context::kInsertValue || ctx == Context::kReadOnly) {
          report->uses_rand_rewritable = true;
          report->issues.push_back(
              "RAND() evaluated once; rewritable to a literal");
          if (rng != nullptr && ctx == Context::kInsertValue) {
            e->kind = Expr::Kind::kLiteral;
            e->literal = Value::Double(rng->NextDouble());
            e->children.clear();
          }
        } else {
          report->uses_rand_per_row = true;
          report->issues.push_back(
              "RAND() evaluated per row in " +
              std::string(ctx == Context::kUpdateSet ? "UPDATE SET"
                                                     : "WHERE") +
              "; hardcoding a value changes semantics");
        }
        return;
      case FuncKind::kNextval:
        report->uses_sequence = true;
        report->issues.push_back("NEXTVAL('" + e->sequence_name +
                                 "') is order-sensitive and non-transactional");
        return;
      default:
        return;  // ABS/LOWER/UPPER are pure.
    }
  }

  void VisitSubquery(SelectStmt* s, Context ctx) {
    if (s->where) Visit(s->where.get(), ctx);
    for (auto& item : s->items) {
      if (item.expr) Visit(item.expr.get(), ctx);
    }
    if (in_write_statement && s->limit >= 0 && s->order_by.empty()) {
      report->unordered_limit_subquery = true;
      report->issues.push_back(
          "LIMIT without ORDER BY in a subquery of a write statement: "
          "replicas may select different rows");
    }
  }
};

void WalkStatement(Statement* stmt, Walker* w) {
  switch (stmt->type()) {
    case StmtType::kInsert: {
      auto& s = stmt->As<InsertStmt>();
      for (auto& row : s.rows) {
        for (auto& e : row) w->Visit(e.get(), Context::kInsertValue);
      }
      return;
    }
    case StmtType::kUpdate: {
      auto& s = stmt->As<UpdateStmt>();
      for (auto& [col, e] : s.sets) {
        (void)col;
        w->Visit(e.get(), Context::kUpdateSet);
      }
      if (s.where) w->Visit(s.where.get(), Context::kWhere);
      return;
    }
    case StmtType::kDelete: {
      auto& s = stmt->As<DeleteStmt>();
      if (s.where) w->Visit(s.where.get(), Context::kWhere);
      return;
    }
    case StmtType::kSelect: {
      auto& s = stmt->As<SelectStmt>();
      if (s.where) w->Visit(s.where.get(), Context::kReadOnly);
      for (auto& item : s.items) {
        if (item.expr) w->Visit(item.expr.get(), Context::kReadOnly);
      }
      return;
    }
    case StmtType::kCall: {
      auto& s = stmt->As<CallStmt>();
      // Arguments are evaluated once at the caller — rewritable context.
      for (auto& e : s.args) w->Visit(e.get(), Context::kInsertValue);
      return;
    }
    default:
      return;  // DDL and transaction control are deterministic.
  }
}

}  // namespace

DeterminismReport Analyze(const Statement& stmt) {
  DeterminismReport report;
  Walker w{&report, stmt.IsWrite()};
  // Analysis never mutates; the const_cast is confined here.
  WalkStatement(const_cast<Statement*>(&stmt), &w);
  return report;
}

DeterminismReport RewriteForStatementReplication(Statement* stmt,
                                                 const Value& now_value,
                                                 Rng* rng) {
  DeterminismReport report;
  Walker w{&report, stmt->IsWrite()};
  w.now_value = &now_value;
  w.rng = rng;
  WalkStatement(stmt, &w);
  return report;
}

}  // namespace replidb::sql
