// The paper's §1 case study: a travel ticket broker at a Fortune-500
// company. 95 % of transactions are read-only, yet the 5 % write stream is
// thousands of updates per second — and "the difference between a
// 30-second and a one-minute outage determines whether travel agents
// retry their requests or switch to another broker for the rest of the
// day".
//
// This example runs the broker workload against a 3-replica cluster,
// crashes the master mid-run, and reports what the travel agents saw:
// throughput, latency, the outage window, and how many acknowledged
// bookings were lost (1-safe replication).

#include <cstdio>

#include "middleware/cluster.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

using namespace replidb;

int main() {
  middleware::ClusterOptions options;
  options.replicas = 3;
  options.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  options.controller.heartbeat.period = 500 * sim::kMillisecond;
  options.controller.heartbeat.timeout = 400 * sim::kMillisecond;
  options.controller.heartbeat.miss_threshold = 3;
  options.replica.ship_interval = 100 * sim::kMillisecond;
  options.driver.max_retries = 10;
  options.driver.request_timeout = sim::kSecond;
  // OLTP-era costs: ~1 ms queries, 4 workers per replica.
  options.engine.cost_model.base_us = 800;
  options.engine.cost_model.commit_us = 1500;
  middleware::Cluster cluster(options);

  workload::TicketBrokerWorkload::Options wo;
  wo.items = 2000;
  wo.agents = 500;
  wo.write_fraction = 0.05;
  workload::TicketBrokerWorkload broker(wo);
  cluster.Setup(broker.SetupStatements());
  cluster.Start();

  std::printf("ticket broker: 3 replicas, 95%% reads, master crash at t=20s\n\n");

  // Open-loop arrivals at 2000 tps — the agents keep clicking regardless.
  workload::OpenLoopGenerator gen(&cluster.sim, cluster.driver(), &broker,
                                  /*rate_tps=*/2000, /*seed=*/2008);
  // Crash the master mid-run; repair it a little later.
  cluster.sim.Schedule(20 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] master replica crashes\n",
                sim::ToSeconds(cluster.sim.Now()));
    cluster.replica(0)->Crash();
  });
  cluster.sim.Schedule(35 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] old master repaired; rejoins as a slave\n",
                sim::ToSeconds(cluster.sim.Now()));
    cluster.replica(0)->Restart();
  });
  gen.Run(60 * sim::kSecond);

  const workload::RunStats& stats = gen.stats();
  const middleware::ControllerStats& cs = cluster.controller->stats();
  std::printf("\n--- what the travel agents experienced ---\n");
  std::printf("throughput          %.0f tps (%.0f offered)\n",
              stats.ThroughputTps(), 2000.0);
  std::printf("read latency        mean %.2f ms, p99 %.2f ms\n",
              stats.read_latency_ms.Mean(),
              stats.read_latency_ms.Percentile(99));
  std::printf("booking latency     mean %.2f ms, p99 %.2f ms\n",
              stats.write_latency_ms.Mean(),
              stats.write_latency_ms.Percentile(99));
  std::printf("failed transactions %llu of %llu (after driver retries)\n",
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.submitted));
  std::printf("\n--- what the operators saw ---\n");
  std::printf("failovers           %llu (new master: node %d)\n",
              static_cast<unsigned long long>(cs.failovers),
              cluster.controller->master());
  std::printf("bookings LOST       %llu acknowledged commits (1-safe window)\n",
              static_cast<unsigned long long>(cs.lost_transactions));
  std::printf("resyncs completed   %llu (old master caught back up)\n",
              static_cast<unsigned long long>(cs.resyncs_completed));
  cluster.sim.RunFor(5 * sim::kSecond);
  std::printf("replicas converged  %s\n", cluster.Converged() ? "yes" : "NO");
  std::printf(
      "\nThe lost bookings are the price of 1-safe commits (§2.2); rerun\n"
      "with ReplicationMode::kMasterSlaveSync to trade commit latency for\n"
      "zero loss.\n");
  return 0;
}
