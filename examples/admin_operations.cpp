// Management operations the paper says production needs and research
// ignores (§4.4): online backup, removing a replica for maintenance and
// resynchronizing it from the recovery log, and cloning a brand-new
// replica into a running cluster — all without stopping the service.

#include <cstdio>

#include "middleware/cluster.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

using namespace replidb;

int main() {
  middleware::ClusterOptions options;
  options.replicas = 2;
  options.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  options.engine.cost_model.base_us = 800;
  options.engine.cost_model.commit_us = 1500;
  middleware::Cluster cluster(options);

  workload::TicketBrokerWorkload::Options wo;
  wo.items = 1500;
  workload::TicketBrokerWorkload broker(wo);
  cluster.Setup(broker.SetupStatements());
  cluster.Start();

  // Background load for the whole session.
  workload::OpenLoopGenerator gen(&cluster.sim, cluster.driver(), &broker,
                                  /*rate_tps=*/500, /*seed=*/44);

  // --- 1. Online hot backup ------------------------------------------------
  bool backup_ok = false;
  engine::BackupImage image;
  cluster.sim.Schedule(3 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] starting hot backup on replica 2 (service up)\n",
                sim::ToSeconds(cluster.sim.Now()));
    engine::BackupOptions bo;
    bo.include_metadata = true;   // Users + triggers: a REAL clone (§4.1.5).
    bo.include_sequences = true;  // Sequence state too (§4.2.3).
    cluster.controller->StartBackup(
        2, bo, [&](Result<engine::BackupImage> result) {
          backup_ok = result.ok();
          if (result.ok()) image = result.TakeValue();
          std::printf("[t=%.1fs] backup %s (%lld bytes, as of version %llu)\n",
                      sim::ToSeconds(cluster.sim.Now()),
                      backup_ok ? "complete" : "FAILED",
                      static_cast<long long>(image.SizeBytes()),
                      static_cast<unsigned long long>(image.as_of));
        });
  });

  // --- 2. Remove a replica for maintenance, then rejoin it ------------------
  cluster.sim.Schedule(6 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] replica 2 removed for maintenance "
                "(checkpoint recorded)\n",
                sim::ToSeconds(cluster.sim.Now()));
    cluster.controller->RemoveReplica(2);
  });
  cluster.sim.Schedule(12 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] maintenance done; replaying recovery log tail\n",
                sim::ToSeconds(cluster.sim.Now()));
    cluster.controller->RejoinReplica(2);
  });

  // --- 3. Clone a brand-new replica into the running cluster ---------------
  engine::RdbmsOptions eopts = cluster.options.engine;
  eopts.name = "replica-3-new";
  eopts.physical_seed = 999;
  middleware::ReplicaNode fresh(&cluster.sim, cluster.network.get(), 50,
                                eopts, cluster.options.replica);
  cluster.sim.Schedule(16 * sim::kSecond, [&] {
    std::printf("[t=%.1fs] adding a brand-new empty replica (node 50)\n",
                sim::ToSeconds(cluster.sim.Now()));
    cluster.controller->AddReplica(&fresh, /*donor=*/1, [&](Status s) {
      std::printf("[t=%.1fs] new replica online: %s\n",
                  sim::ToSeconds(cluster.sim.Now()), s.ToString().c_str());
    });
  });

  gen.Run(25 * sim::kSecond);

  const workload::RunStats& stats = gen.stats();
  std::printf("\n--- service impact over the whole session ---\n");
  std::printf("throughput   %.0f tps, %llu failed of %llu submitted\n",
              stats.ThroughputTps(),
              static_cast<unsigned long long>(stats.failed),
              static_cast<unsigned long long>(stats.submitted));
  std::printf("latency      mean %.2f ms, p99 %.2f ms\n",
              stats.latency_ms.Mean(), stats.latency_ms.Percentile(99));
  std::printf("resyncs      %llu completed\n",
              static_cast<unsigned long long>(
                  cluster.controller->stats().resyncs_completed));
  cluster.sim.RunFor(3 * sim::kSecond);
  bool all_equal = cluster.Converged() &&
                   fresh.engine()->ContentHash() ==
                       cluster.replica(0)->engine()->ContentHash();
  std::printf("all three replicas identical: %s\n", all_equal ? "yes" : "NO");
  std::printf(
      "\nEvery operation ran against a live cluster: hot backup, remove +\n"
      "checkpoint + replay (the Sequoia recovery-log design, §4.4.2), and\n"
      "online cloning. No planned downtime consumed the availability\n"
      "budget (§4.4).\n");
  return 0;
}
