// A tour of the consistency spectrum (§3.3): the same two-session scenario
// under four cluster-level guarantees, showing exactly which anomalies
// each one permits.
//
// Scenario: session A updates a row; session B (a different client) then
// reads it; finally A reads its own write back. Under lazy replication the
// answers differ per guarantee.

#include <cstdio>

#include "middleware/cluster.h"

using namespace replidb;
using middleware::Cluster;
using middleware::ClusterOptions;
using middleware::ConsistencyLevel;
using middleware::TxnRequest;
using middleware::TxnResult;

namespace {

TxnResult Run(Cluster* cluster, int driver, TxnRequest req) {
  TxnResult out;
  bool done = false;
  cluster->driver(driver)->Submit(std::move(req), [&](const TxnResult& r) {
    out = r;
    done = true;
  });
  while (!done) cluster->sim.RunFor(50 * sim::kMillisecond);
  return out;
}

TxnRequest Write(const char* sql) {
  TxnRequest r;
  r.statements = {sql};
  return r;
}

TxnRequest Read(const char* sql) {
  TxnRequest r;
  r.statements = {sql};
  r.read_only = true;
  return r;
}

int64_t ReadBalance(const TxnResult& r) {
  if (!r.status.ok() || r.rows.empty()) return -1;
  return r.rows[0][0].AsInt();
}

}  // namespace

int main() {
  std::printf(
      "scenario: A writes balance=777; B reads; A reads its own write.\n"
      "lazy master-slave cluster (300 ms shipping), reads on slaves only.\n\n");
  std::printf("%-28s %-14s %-14s %-10s\n", "guarantee", "B sees", "A sees",
              "notes");
  std::printf("%s\n", std::string(70, '-').c_str());

  const struct {
    const char* label;
    ConsistencyLevel level;
    const char* note;
  } configs[] = {
      {"eventual", ConsistencyLevel::kEventual, "stale reads allowed"},
      {"session PCSI", ConsistencyLevel::kSessionPCSI, "read-your-writes"},
      {"strong SI", ConsistencyLevel::kStrongSI, "everyone fresh"},
  };

  for (const auto& cfg : configs) {
    ClusterOptions options;
    options.replicas = 3;
    options.drivers = 2;  // Session A = driver 0, session B = driver 1.
    options.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
    options.controller.consistency = cfg.level;
    options.controller.reads_on_master = false;  // Force slave reads.
    options.replica.ship_interval = 300 * sim::kMillisecond;
    Cluster cluster(options);
    cluster.Setup({"CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
                   "INSERT INTO accounts VALUES (1, 100)"});
    cluster.Start();

    TxnResult w = Run(&cluster, 0,
                      Write("UPDATE accounts SET balance = 777 WHERE id = 1"));
    (void)w;
    TxnResult rb = Run(&cluster, 1,
                       Read("SELECT balance FROM accounts WHERE id = 1"));
    TxnResult ra = Run(&cluster, 0,
                       Read("SELECT balance FROM accounts WHERE id = 1"));
    char b_cell[32], a_cell[32];
    std::snprintf(b_cell, sizeof(b_cell), "%lld%s",
                  static_cast<long long>(ReadBalance(rb)),
                  ReadBalance(rb) == 100 ? " (stale)" : "");
    std::snprintf(a_cell, sizeof(a_cell), "%lld%s",
                  static_cast<long long>(ReadBalance(ra)),
                  ReadBalance(ra) == 100 ? " (stale!)" : "");
    std::printf("%-28s %-14s %-14s %-10s\n", cfg.label, b_cell, a_cell,
                cfg.note);
  }

  // The write-skew anomaly: permitted by SI, forbidden by 1SR.
  std::printf(
      "\nwrite skew (the SI anomaly, §3.3): two txns each read both rows\n"
      "and zero the other one. SI commits both; 1SR aborts one.\n\n");
  for (bool serializable : {false, true}) {
    ClusterOptions options;
    options.replicas = 1;
    options.engine.default_isolation =
        serializable ? engine::IsolationLevel::kSerializable
                     : engine::IsolationLevel::kSnapshot;
    Cluster cluster(options);
    cluster.Setup({"CREATE TABLE oncall (id INT PRIMARY KEY, on_duty INT)",
                   "INSERT INTO oncall VALUES (1, 1), (2, 1)"});
    cluster.Start();
    engine::Rdbms* db = cluster.replica(0)->engine();
    engine::SessionId s1 = db->Connect().value();
    engine::SessionId s2 = db->Connect().value();
    db->Execute(s1, "BEGIN");
    db->Execute(s2, "BEGIN");
    db->Execute(s1, "SELECT SUM(on_duty) FROM oncall");
    db->Execute(s2, "SELECT SUM(on_duty) FROM oncall");
    auto w1 = db->Execute(s1, "UPDATE oncall SET on_duty = 0 WHERE id = 1");
    auto w2 = db->Execute(s2, "UPDATE oncall SET on_duty = 0 WHERE id = 2");
    auto c1 = db->Execute(s1, "COMMIT");
    auto c2 = db->Execute(s2, "COMMIT");
    bool both = w1.ok() && w2.ok() && c1.ok() && c2.ok();
    engine::SessionId check = db->Connect().value();
    auto sum = db->Execute(check, "SELECT SUM(on_duty) FROM oncall");
    std::printf("  %-13s both committed: %-3s  on-duty total now: %s\n",
                serializable ? "serializable:" : "snapshot SI:",
                both ? "yes" : "no",
                sum.rows.empty() ? "?" : sum.rows[0][0].ToString().c_str());
  }
  std::printf(
      "\nUnder SI nobody is on duty anymore — the write-skew anomaly. 1SR\n"
      "(table-granularity 2PL here) prevents it at the cost of aborting\n"
      "one transaction — the paper's performance/correctness trade (§3.3).\n");
  return 0;
}
