// Figure 4: worldwide multi-way master/slave replication.
//
// Three sites (EU, US, Asia). Each site's cluster is master for its own
// regional data and keeps an asynchronous disaster-recovery replica at the
// next site. A regional user books locally at LAN latency; when an entire
// site is lost, its traffic fails over to the DR copy across the ocean.

#include <cstdio>
#include <memory>
#include <vector>

#include "client/driver.h"
#include "middleware/controller.h"
#include "middleware/replica_node.h"
#include "workload/workloads.h"

using namespace replidb;
using middleware::Controller;
using middleware::ControllerOptions;
using middleware::ReplicaNode;
using middleware::TxnRequest;
using middleware::TxnResult;

namespace {

constexpr const char* kSites[] = {"EU", "US", "Asia"};

TxnResult Run(sim::Simulator* s, client::Driver* driver, TxnRequest req) {
  TxnResult out;
  bool done = false;
  driver->Submit(std::move(req), [&](const TxnResult& r) {
    out = r;
    done = true;
  });
  while (!done) s->RunFor(100 * sim::kMillisecond);
  return out;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  net::NetworkOptions nopts;  // 0.2 ms LAN, 50 ms WAN one-way.
  net::Network network(&simulator, nopts);

  workload::TicketBrokerWorkload::Options wo;
  wo.items = 500;
  workload::TicketBrokerWorkload broker(wo);

  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::vector<std::unique_ptr<Controller>> controllers;
  std::vector<std::unique_ptr<client::Driver>> drivers;

  for (int s = 0; s < 3; ++s) {
    std::vector<ReplicaNode*> members;
    for (int r = 0; r < 3; ++r) {
      engine::RdbmsOptions eopts;
      eopts.name = std::string(kSites[s]) + "-replica-" + std::to_string(r);
      eopts.physical_seed = static_cast<uint64_t>(s * 10 + r + 1);
      eopts.cost_model.base_us = 800;
      eopts.cost_model.commit_us = 1500;
      // Replica 2 of each site lives at the NEXT site: the DR copy.
      net::SiteId site = (r == 2) ? (s + 1) % 3 : s;
      auto node = std::make_unique<ReplicaNode>(&simulator, &network,
                                                s * 10 + r + 1, eopts,
                                                middleware::ReplicaOptions{},
                                                site);
      for (const std::string& stmt : broker.SetupStatements()) {
        node->AdminExec(stmt);
      }
      members.push_back(node.get());
      replicas.push_back(std::move(node));
    }
    ControllerOptions copts;
    copts.mode = middleware::ReplicationMode::kMasterSlaveAsync;
    copts.heartbeat.period = sim::kSecond;
    copts.heartbeat.timeout = 900 * sim::kMillisecond;
    copts.request_timeout = 5 * sim::kSecond;
    auto controller = std::make_unique<Controller>(&simulator, &network,
                                                   100 + s, members, copts,
                                                   /*site=*/s);
    controller->Start();
    controllers.push_back(std::move(controller));
    drivers.push_back(std::make_unique<client::Driver>(
        &simulator, &network, 200 + s, std::vector<net::NodeId>{100 + s},
        client::DriverOptions{}, /*site=*/s));
  }
  simulator.RunFor(2 * sim::kSecond);

  std::printf("three sites, each master for its region, DR copy one site over\n\n");

  // Regional bookings commit at local latency.
  for (int s = 0; s < 3; ++s) {
    TxnRequest booking;
    booking.statements = {
        "INSERT INTO bookings (agent, item, qty) VALUES (1, 10, 2)",
        "UPDATE inventory SET stock = stock - 2 WHERE item = 10"};
    TxnResult r = Run(&simulator, drivers[s].get(), booking);
    std::printf("%-5s booking: %-3s  latency %.2f ms (local commit)\n",
                kSites[s], r.status.ok() ? "ok" : "ERR",
                sim::ToMillis(r.latency));
  }

  // Disaster: the EU site floods. Both EU-local replicas are gone; the
  // EU controller survives (hosted off-site, say) and fails over to the
  // DR copy in the US.
  std::printf("\n[t=%.1fs] EU site lost (both local replicas)\n",
              sim::ToSeconds(simulator.Now()));
  replicas[0]->Crash();
  replicas[1]->Crash();
  simulator.RunFor(10 * sim::kSecond);
  std::printf("EU controller's new master: node %d (the US-hosted DR copy)\n",
              controllers[0]->master());
  std::printf("EU transactions lost in the async window: %llu\n",
              static_cast<unsigned long long>(
                  controllers[0]->stats().lost_transactions));

  TxnRequest booking;
  booking.statements = {
      "INSERT INTO bookings (agent, item, qty) VALUES (2, 20, 1)",
      "UPDATE inventory SET stock = stock - 1 WHERE item = 20"};
  TxnResult r = Run(&simulator, drivers[0].get(), booking);
  std::printf("EU booking after disaster: %-3s  latency %.2f ms "
              "(now a WAN round trip)\n",
              r.status.ok() ? "ok" : "ERR", sim::ToMillis(r.latency));
  std::printf(
      "\nRegional masters keep writes local; the DR copy turns a site\n"
      "disaster into a latency regression instead of an outage (Figure 4,\n"
      "§2.2). Synchronous WAN replication would put that 100 ms on every\n"
      "commit instead (§4.3.4.1).\n");
  return 0;
}
