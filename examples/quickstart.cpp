// Quickstart: stand up a replicated database (1 master + 2 slaves), run
// SQL through the middleware, and watch reads spread while writes
// replicate.
//
//   $ ./build/examples/quickstart
//
// Everything runs in a deterministic discrete-event simulation: "time"
// below is simulated time, so the whole demo finishes in milliseconds of
// wall clock.

#include <cstdio>

#include "middleware/cluster.h"

using namespace replidb;
using middleware::Cluster;
using middleware::ClusterOptions;
using middleware::TxnRequest;
using middleware::TxnResult;

namespace {

/// Submits one transaction and pumps the simulator until it completes.
TxnResult Run(Cluster* cluster, TxnRequest request) {
  TxnResult out;
  bool done = false;
  cluster->driver()->Submit(std::move(request), [&](const TxnResult& r) {
    out = r;
    done = true;
  });
  while (!done) cluster->sim.RunFor(100 * sim::kMillisecond);
  return out;
}

TxnRequest Sql(std::initializer_list<const char*> statements,
               bool read_only = false) {
  TxnRequest req;
  for (const char* s : statements) req.statements.emplace_back(s);
  req.read_only = read_only;
  return req;
}

}  // namespace

int main() {
  // 1. A 3-replica cluster under asynchronous master-slave replication.
  ClusterOptions options;
  options.replicas = 3;
  options.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  options.controller.consistency = middleware::ConsistencyLevel::kSessionPCSI;
  Cluster cluster(options);

  // 2. Load the same schema + data on every replica, then start the
  //    controller (failure detection, shipping subscriptions).
  cluster.Setup({
      "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name TEXT, "
      "points INT)",
      "INSERT INTO users (name, points) VALUES ('ada', 10), ('grace', 20), "
      "('edsger', 30)",
  });
  cluster.Start();

  // 3. Writes go to the master and ship to the slaves asynchronously.
  TxnResult w = Run(&cluster, Sql({
                        "UPDATE users SET points = points + 5 WHERE id = 1",
                        "INSERT INTO users (name, points) VALUES ('barbara', 40)",
                    }));
  std::printf("write txn: %s, committed at global version %llu\n",
              w.status.ToString().c_str(),
              static_cast<unsigned long long>(w.version));

  // 4. Reads are load-balanced across replicas. Session consistency
  //    guarantees this session sees its own write.
  TxnResult r = Run(&cluster,
                    Sql({"SELECT name, points FROM users ORDER BY id"},
                        /*read_only=*/true));
  std::printf("read txn: %s (%zu rows, %llu versions stale)\n",
              r.status.ToString().c_str(), r.rows.size(),
              static_cast<unsigned long long>(r.staleness));
  for (const sql::Row& row : r.rows) {
    std::printf("  %-10s %s\n", row[0].AsString().c_str(),
                row[1].ToString().c_str());
  }

  // 5. Let the shipping drain, then verify every replica holds identical
  //    data (content hashes).
  cluster.sim.RunFor(2 * sim::kSecond);
  std::printf("replicas converged: %s\n",
              cluster.Converged() ? "yes" : "NO (bug!)");
  for (int i = 0; i < 3; ++i) {
    std::printf("  replica %d applied version %llu, content hash %016llx\n",
                i + 1,
                static_cast<unsigned long long>(
                    cluster.replica(i)->applied_version()),
                static_cast<unsigned long long>(
                    cluster.replica(i)->engine()->ContentHash()));
  }
  return 0;
}
