// Load-balancing behaviours: granularity (§3.2) and policy plumbing that
// the middleware integration tests don't pin down directly.

#include <gtest/gtest.h>

#include <set>

#include "middleware/cluster.h"

namespace replidb::middleware {
namespace {

using sim::kMillisecond;
using sim::kSecond;

TxnRequest ReadReq() {
  TxnRequest r;
  r.statements = {"SELECT balance FROM accounts WHERE id = 1"};
  r.read_only = true;
  return r;
}

std::vector<std::string> AccountsSchema() {
  return {"CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)",
          "INSERT INTO accounts VALUES (1, 100)"};
}

uint64_t StatementsServed(Cluster* c, int replica) {
  return c->replica(replica)->engine()->stats().statements_executed;
}

TEST(GranularityTest, ConnectionLevelPinsEachClientToOneReplica) {
  ClusterOptions opts;
  opts.replicas = 3;
  opts.drivers = 2;
  opts.controller.granularity = LoadBalanceGranularity::kConnection;
  opts.controller.consistency = ConsistencyLevel::kEventual;
  Cluster c(std::move(opts));
  c.Setup(AccountsSchema());
  c.Start();

  uint64_t base[3];
  for (int i = 0; i < 3; ++i) base[i] = StatementsServed(&c, i);
  // 20 reads from driver 0 only.
  int done = 0;
  for (int i = 0; i < 20; ++i) {
    c.driver(0)->Submit(ReadReq(), [&](const TxnResult&) { ++done; });
  }
  c.sim.RunFor(5 * kSecond);
  ASSERT_EQ(done, 20);
  int replicas_used = 0;
  for (int i = 0; i < 3; ++i) {
    if (StatementsServed(&c, i) > base[i]) ++replicas_used;
  }
  EXPECT_EQ(replicas_used, 1) << "sticky connection must hit one replica";
}

TEST(GranularityTest, TransactionLevelSpreadsOneClient) {
  ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.granularity = LoadBalanceGranularity::kTransaction;
  opts.controller.load_balance = LoadBalancePolicy::kRoundRobin;
  opts.controller.consistency = ConsistencyLevel::kEventual;
  Cluster c(std::move(opts));
  c.Setup(AccountsSchema());
  c.Start();
  uint64_t base[3];
  for (int i = 0; i < 3; ++i) base[i] = StatementsServed(&c, i);
  int done = 0;
  for (int i = 0; i < 21; ++i) {
    c.driver(0)->Submit(ReadReq(), [&](const TxnResult&) { ++done; });
  }
  c.sim.RunFor(5 * kSecond);
  ASSERT_EQ(done, 21);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(StatementsServed(&c, i), base[i]) << "replica " << i;
  }
}

TEST(GranularityTest, ConnectionRepinsWhenItsReplicaFails) {
  ClusterOptions opts;
  opts.replicas = 2;
  opts.controller.granularity = LoadBalanceGranularity::kConnection;
  opts.controller.consistency = ConsistencyLevel::kEventual;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 200 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.max_retries = 10;
  opts.driver.request_timeout = 500 * kMillisecond;
  Cluster c(std::move(opts));
  c.Setup(AccountsSchema());
  c.Start();
  // Establish the pin.
  bool ok = false;
  c.driver(0)->Submit(ReadReq(), [&](const TxnResult& r) { ok = r.status.ok(); });
  c.sim.RunFor(2 * kSecond);
  ASSERT_TRUE(ok);
  // Find which replica got pinned, crash it, and read again.
  int pinned = StatementsServed(&c, 0) > StatementsServed(&c, 1) ? 0 : 1;
  c.replica(pinned)->Crash();
  c.sim.RunFor(3 * kSecond);
  bool ok2 = false;
  c.driver(0)->Submit(ReadReq(), [&](const TxnResult& r) { ok2 = r.status.ok(); });
  c.sim.RunFor(3 * kSecond);
  EXPECT_TRUE(ok2) << "connection must re-pin to a live replica";
}

TEST(CostModelTest, ReadOnlyCommitIsCheap) {
  engine::Rdbms db{engine::RdbmsOptions{}};
  engine::SessionId s = db.Connect().value();
  db.Execute(s, "CREATE TABLE t (id INT PRIMARY KEY)");
  db.Execute(s, "INSERT INTO t VALUES (1)");
  db.Execute(s, "BEGIN");
  db.Execute(s, "SELECT * FROM t");
  engine::ExecResult ro_commit = db.Execute(s, "COMMIT");
  db.Execute(s, "BEGIN");
  db.Execute(s, "UPDATE t SET id = 2 WHERE id = 1");
  engine::ExecResult w_commit = db.Execute(s, "COMMIT");
  EXPECT_LT(ro_commit.cost_us, w_commit.cost_us)
      << "read-only commits must not pay the durable log flush";
}

TEST(MemoryAwareTest, AffinityKeepsTablesOnTheirReplica) {
  ClusterOptions opts;
  opts.replicas = 2;
  opts.controller.load_balance = LoadBalancePolicy::kMemoryAware;
  opts.controller.consistency = ConsistencyLevel::kEventual;
  opts.replica.hot_table_capacity = 2;
  Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE ta (id INT PRIMARY KEY, v INT)",
           "CREATE TABLE tb (id INT PRIMARY KEY, v INT)",
           "INSERT INTO ta VALUES (1, 0)", "INSERT INTO tb VALUES (1, 0)"});
  c.Start();
  auto read_of = [](const char* table) {
    TxnRequest r;
    r.statements = {std::string("SELECT v FROM ") + table + " WHERE id = 1"};
    r.read_only = true;
    return r;
  };
  int done = 0;
  for (int i = 0; i < 30; ++i) {
    c.driver()->Submit(read_of(i % 2 ? "ta" : "tb"),
                       [&](const TxnResult&) { ++done; });
  }
  c.sim.RunFor(5 * kSecond);
  ASSERT_EQ(done, 30);
  // Each table's reads should concentrate on one replica (15/15 split).
  uint64_t s0 = StatementsServed(&c, 0);
  uint64_t s1 = StatementsServed(&c, 1);
  EXPECT_GT(s0, 0u);
  EXPECT_GT(s1, 0u);
}

}  // namespace
}  // namespace replidb::middleware
