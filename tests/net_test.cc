#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/dispatcher.h"
#include "net/failure_detector.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::net {
namespace {

using sim::kHour;
using sim::kMillisecond;
using sim::kSecond;

struct TestEnv {
  sim::Simulator sim;
  NetworkOptions opts;
  std::unique_ptr<Network> net;

  explicit TestEnv(NetworkOptions o = {}) : opts(o) {
    opts.lan_jitter = 0;
    opts.wan_jitter = 0;
    net = std::make_unique<Network>(&sim, opts);
  }
};

TEST(NetworkTest, DeliversWithLanLatency) {
  TestEnv env;
  std::vector<std::string> received;
  sim::TimePoint delivered_at = -1;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message& m) {
    received.push_back(m.type);
    delivered_at = env.sim.Now();
  });
  env.net->Send(1, 2, "hello", std::string("x"), 1);
  env.sim.Run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_EQ(delivered_at, env.opts.lan_latency);
}

TEST(NetworkTest, WanLatencyAppliesAcrossSites) {
  TestEnv env;
  sim::TimePoint delivered_at = -1;
  env.net->RegisterNode(1, [](const Message&) {}, /*site=*/0);
  env.net->RegisterNode(2, [&](const Message&) { delivered_at = env.sim.Now(); },
                        /*site=*/1);
  env.net->Send(1, 2, "m", 0, 1);
  env.sim.Run();
  EXPECT_EQ(delivered_at, env.opts.wan_latency);
}

TEST(NetworkTest, BandwidthAddsTransmissionDelay) {
  TestEnv env;
  sim::TimePoint delivered_at = -1;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { delivered_at = env.sim.Now(); });
  // 1 Gbps => 125e6 B/s => 1 MiB takes ~8.4ms.
  env.net->Send(1, 2, "big", 0, 1 << 20);
  env.sim.Run();
  EXPECT_GT(delivered_at, env.opts.lan_latency + 8 * kMillisecond);
  EXPECT_LT(delivered_at, env.opts.lan_latency + 10 * kMillisecond);
}

TEST(NetworkTest, BandwidthDelayScalesWithSize) {
  // Regression for the size_bytes plumbing: the same payload must take
  // measurably longer as it grows, on both LAN and WAN links, so codec
  // sizes actually bite in the bandwidth model.
  TestEnv env;
  env.net->RegisterNode(1, [](const Message&) {}, /*site=*/0);
  sim::TimePoint lan_at = -1;
  sim::TimePoint wan_at = -1;
  env.net->RegisterNode(2, [&](const Message&) { lan_at = env.sim.Now(); },
                        /*site=*/0);
  env.net->RegisterNode(3, [&](const Message&) { wan_at = env.sim.Now(); },
                        /*site=*/1);

  auto lan_delay = [&](int64_t size) {
    lan_at = -1;
    sim::TimePoint sent = env.sim.Now();
    env.net->Send(1, 2, "m", 0, size);
    env.sim.Run();
    return lan_at - sent;
  };
  auto wan_delay = [&](int64_t size) {
    wan_at = -1;
    sim::TimePoint sent = env.sim.Now();
    env.net->Send(1, 3, "m", 0, size);
    env.sim.Run();
    return wan_at - sent;
  };

  sim::Duration lan_small = lan_delay(64);
  sim::Duration lan_big = lan_delay(1 << 20);
  // 1 GbE: 1 MiB adds ~8.4ms of transmission over the tiny message.
  EXPECT_GT(lan_big - lan_small, 8 * kMillisecond);
  EXPECT_LT(lan_big - lan_small, 9 * kMillisecond);

  sim::Duration wan_small = wan_delay(64);
  sim::Duration wan_big = wan_delay(1 << 20);
  // 100 Mbps WAN: 1 MiB adds ~83.9ms. The WAN penalty is 10x the LAN one.
  EXPECT_GT(wan_big - wan_small, 80 * kMillisecond);
  EXPECT_LT(wan_big - wan_small, 90 * kMillisecond);
  EXPECT_GT(wan_big - wan_small, 5 * (lan_big - lan_small));
}

TEST(NetworkTest, SendRejectsMissingPayloadSize) {
  TestEnv env;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [](const Message&) {});
  EXPECT_DEATH(env.net->Send(1, 2, "m", 0, 0), "positive payload size");
}

TEST(NetworkTest, CrashedReceiverDropsMessage) {
  TestEnv env;
  int delivered = 0;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { ++delivered; });
  env.net->CrashNode(2);
  env.net->Send(1, 2, "m", 0, 1);
  env.sim.Run();
  EXPECT_EQ(delivered, 0);
  env.net->RestartNode(2);
  env.net->Send(1, 2, "m", 0, 1);
  env.sim.Run();
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, CrashedSenderCannotSend) {
  TestEnv env;
  int delivered = 0;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { ++delivered; });
  env.net->CrashNode(1);
  EXPECT_FALSE(env.net->Send(1, 2, "m", 0, 1));
  env.sim.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, CrashWhileInFlightDropsMessage) {
  TestEnv env;
  int delivered = 0;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { ++delivered; });
  env.net->Send(1, 2, "m", 0, 1);
  env.net->CrashNode(2);  // Crash before the delivery event fires.
  env.sim.Run();
  EXPECT_EQ(delivered, 0);
}

TEST(NetworkTest, PartitionBlocksCrossGroupTraffic) {
  TestEnv env;
  int delivered_12 = 0, delivered_13 = 0;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { ++delivered_12; });
  env.net->RegisterNode(3, [&](const Message&) { ++delivered_13; });
  env.net->Partition({{1, 2}, {3}});
  EXPECT_TRUE(env.net->Reachable(1, 2));
  EXPECT_FALSE(env.net->Reachable(1, 3));
  env.net->Send(1, 2, "m", 0, 1);
  env.net->Send(1, 3, "m", 0, 1);
  env.sim.Run();
  EXPECT_EQ(delivered_12, 1);
  EXPECT_EQ(delivered_13, 0);
  env.net->HealPartition();
  env.net->Send(1, 3, "m", 0, 1);
  env.sim.Run();
  EXPECT_EQ(delivered_13, 1);
}

TEST(NetworkTest, UnlistedNodesFallIntoImplicitGroup) {
  TestEnv env;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [](const Message&) {});
  env.net->RegisterNode(3, [](const Message&) {});
  env.net->Partition({{1}});
  EXPECT_FALSE(env.net->Reachable(1, 2));
  EXPECT_TRUE(env.net->Reachable(2, 3));
}

TEST(NetworkTest, LossProbabilityDropsSomeMessages) {
  NetworkOptions o;
  o.lan_loss_probability = 0.5;
  o.seed = 99;
  TestEnv env(o);
  int delivered = 0;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [&](const Message&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) env.net->Send(1, 2, "m", 0, 1);
  env.sim.Run();
  EXPECT_GT(delivered, 350);
  EXPECT_LT(delivered, 650);
}

TEST(NetworkTest, StatsCount) {
  TestEnv env;
  env.net->RegisterNode(1, [](const Message&) {});
  env.net->RegisterNode(2, [](const Message&) {});
  env.net->Send(1, 2, "m", 0, 100);
  env.sim.Run();
  EXPECT_EQ(env.net->messages_sent(), 1u);
  EXPECT_EQ(env.net->messages_delivered(), 1u);
  EXPECT_EQ(env.net->bytes_delivered(), 100u);
}

TEST(DispatcherTest, RoutesByType) {
  TestEnv env;
  Dispatcher d1(env.net.get(), 1);
  Dispatcher d2(env.net.get(), 2);
  int a = 0, b = 0;
  d2.On("a", [&](const Message&) { ++a; });
  d2.On("b", [&](const Message&) { ++b; });
  d1.Send(2, "a", 0, 1);
  d1.Send(2, "b", 0, 1);
  d1.Send(2, "c", 0, 1);
  env.sim.Run();
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(d2.unmatched_messages(), 1u);
}

// --- Heartbeat detector ------------------------------------------------

struct HbEnv : TestEnv {
  Dispatcher monitor{net.get(), 100};
  Dispatcher target{net.get(), 200};
  HeartbeatResponder responder{&sim, &target};
};

TEST(HeartbeatDetectorTest, DetectsCrashWithinExpectedWindow) {
  HbEnv env;
  HeartbeatOptions opts;
  opts.period = 500 * kMillisecond;
  opts.timeout = 200 * kMillisecond;
  opts.miss_threshold = 3;
  HeartbeatDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  sim::TimePoint detected_at = -1;
  det.OnSuspicionChange([&](NodeId n, bool suspect) {
    if (n == 200 && suspect) detected_at = env.sim.Now();
  });
  env.sim.RunUntil(2 * kSecond);
  EXPECT_FALSE(det.IsSuspect(200));
  sim::TimePoint crash_time = env.sim.Now();
  env.net->CrashNode(200);
  env.sim.RunUntil(crash_time + 10 * kSecond);
  ASSERT_TRUE(det.IsSuspect(200));
  // Detection latency ~ 3 missed periods + timeout.
  EXPECT_LE(detected_at - crash_time, 3 * opts.period + opts.timeout + opts.period);
  EXPECT_EQ(det.false_positives(), 0u);
}

TEST(HeartbeatDetectorTest, RecoversOnRestart) {
  HbEnv env;
  HeartbeatOptions opts;
  opts.period = 100 * kMillisecond;
  opts.timeout = 50 * kMillisecond;
  HeartbeatDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  env.sim.RunUntil(1 * kSecond);
  env.net->CrashNode(200);
  env.sim.RunUntil(3 * kSecond);
  ASSERT_TRUE(det.IsSuspect(200));
  env.net->RestartNode(200);
  env.sim.RunUntil(5 * kSecond);
  EXPECT_FALSE(det.IsSuspect(200));  // Failback detected.
}

TEST(HeartbeatDetectorTest, OverloadedNodeCausesFalsePositive) {
  HbEnv env;
  HeartbeatOptions opts;
  opts.period = 100 * kMillisecond;
  opts.timeout = 50 * kMillisecond;
  opts.miss_threshold = 2;
  HeartbeatDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  env.sim.RunUntil(1 * kSecond);
  EXPECT_FALSE(det.IsSuspect(200));
  // Node is up but answers slower than the timeout: classified failed.
  env.responder.set_response_delay(300 * kMillisecond);
  env.sim.RunUntil(3 * kSecond);
  EXPECT_GE(det.false_positives(), 1u);
}

TEST(HeartbeatDetectorTest, GenerousTimeoutToleratesLoad) {
  HbEnv env;
  HeartbeatOptions opts;
  opts.period = 1 * kSecond;
  opts.timeout = 900 * kMillisecond;
  opts.miss_threshold = 3;
  HeartbeatDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  env.responder.set_response_delay(300 * kMillisecond);
  env.sim.RunUntil(20 * kSecond);
  EXPECT_FALSE(det.IsSuspect(200));
  EXPECT_EQ(det.false_positives(), 0u);
}

// --- TCP keep-alive detector -------------------------------------------

struct KaEnv : TestEnv {
  Dispatcher monitor{net.get(), 100};
  Dispatcher target{net.get(), 200};
  TcpKeepAliveResponder responder{&target};
};

TEST(TcpKeepAliveTest, DefaultDetectionTakesOverTwoHours) {
  KaEnv env;
  TcpKeepAliveDetector det(&env.sim, &env.monitor);  // Linux defaults.
  det.Watch(200);
  sim::TimePoint detected_at = -1;
  det.OnSuspicionChange([&](NodeId n, bool s) {
    if (n == 200 && s) detected_at = env.sim.Now();
  });
  env.net->CrashNode(200);
  env.sim.RunUntil(4 * kHour);
  ASSERT_TRUE(det.IsSuspect(200));
  // idle (2h) + 9 probes * 75s ≈ 2h11m15s.
  EXPECT_GE(detected_at, 2 * kHour);
  EXPECT_LE(detected_at, 2 * kHour + 12 * sim::kMinute);
}

TEST(TcpKeepAliveTest, ActivityPostponesDetection) {
  KaEnv env;
  TcpKeepAliveOptions opts;
  opts.idle = 10 * kSecond;
  opts.probe_interval = 1 * kSecond;
  opts.probe_count = 3;
  TcpKeepAliveDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  // App-level acks arrive every 5s: idle timer never expires.
  sim::PeriodicTask traffic(&env.sim, 5 * kSecond, [&] { det.NoteActivity(200); });
  traffic.Start();
  env.sim.RunUntil(60 * kSecond);
  EXPECT_FALSE(det.IsSuspect(200));
  traffic.Stop();
  env.net->CrashNode(200);
  env.sim.RunUntil(120 * kSecond);
  EXPECT_TRUE(det.IsSuspect(200));
}

TEST(TcpKeepAliveTest, AliveTargetNeverSuspected) {
  KaEnv env;
  TcpKeepAliveOptions opts;
  opts.idle = 5 * kSecond;
  opts.probe_interval = 1 * kSecond;
  opts.probe_count = 2;
  TcpKeepAliveDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  env.sim.RunUntil(60 * kSecond);
  // Idle expires, probes go out, but the "kernel" answers them.
  EXPECT_FALSE(det.IsSuspect(200));
}

TEST(TcpKeepAliveTest, TunedSettingsDetectFaster) {
  KaEnv env;
  TcpKeepAliveOptions opts;
  opts.idle = 10 * kSecond;
  opts.probe_interval = 2 * kSecond;
  opts.probe_count = 3;
  TcpKeepAliveDetector det(&env.sim, &env.monitor, opts);
  det.Watch(200);
  sim::TimePoint detected_at = -1;
  det.OnSuspicionChange([&](NodeId n, bool s) {
    if (n == 200 && s) detected_at = env.sim.Now();
  });
  env.net->CrashNode(200);
  env.sim.RunUntil(60 * kSecond);
  ASSERT_TRUE(det.IsSuspect(200));
  EXPECT_LE(detected_at, 17 * kSecond + kSecond);
}

}  // namespace
}  // namespace replidb::net
