#include "common/locks.h"

#include <gtest/gtest.h>

#include <mutex>

#include "obs/metrics.h"

namespace replidb::common {
namespace {

/// Restores the check-enabled flag so this test can't leak state into
/// other tests in the binary (the default depends on build type).
class LockCheckGuard {
 public:
  LockCheckGuard() : prev_(LockCheckEnabled()) { SetLockCheckEnabled(true); }
  ~LockCheckGuard() { SetLockCheckEnabled(prev_); }

 private:
  bool prev_;
};

TEST(OrderedMutexTest, AscendingRankAcquisitionIsClean) {
  LockCheckGuard guard;
  OrderedMutex outer(LockRank::kMetricsRegistry);   // rank 20
  OrderedMutex inner(LockRank::kMetricHistogram);   // rank 30
  {
    std::lock_guard<OrderedMutex> a(outer);
    EXPECT_EQ(HeldLockCount(), 1);
    std::lock_guard<OrderedMutex> b(inner);
    EXPECT_EQ(HeldLockCount(), 2);
  }
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(OrderedMutexTest, ReacquiringAfterReleaseIsClean) {
  LockCheckGuard guard;
  OrderedMutex mu(LockRank::kTracer);
  for (int i = 0; i < 3; ++i) {
    std::lock_guard<OrderedMutex> lock(mu);
    EXPECT_EQ(HeldLockCount(), 1);
  }
  EXPECT_EQ(HeldLockCount(), 0);
}

TEST(OrderedMutexDeathTest, DescendingRankAcquisitionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockCheckEnabled(true);
        OrderedMutex inner(LockRank::kMetricHistogram);  // rank 30
        OrderedMutex outer(LockRank::kMetricsRegistry);  // rank 20
        std::lock_guard<OrderedMutex> a(inner);
        std::lock_guard<OrderedMutex> b(outer);  // 20 while holding 30.
      },
      "lock-order violation");
}

TEST(OrderedMutexDeathTest, EqualRankAcquisitionAborts) {
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        SetLockCheckEnabled(true);
        OrderedMutex a(LockRank::kTracer);
        OrderedMutex b(LockRank::kTracer);
        std::lock_guard<OrderedMutex> la(a);
        std::lock_guard<OrderedMutex> lb(b);  // Same rank: undeclared order.
      },
      "lock-order violation");
}

TEST(OrderedMutexTest, CheckingDisabledSkipsRecording) {
  bool prev = LockCheckEnabled();
  SetLockCheckEnabled(false);
  OrderedMutex mu(LockRank::kLogClock);
  {
    std::lock_guard<OrderedMutex> lock(mu);
    EXPECT_EQ(HeldLockCount(), 0) << "disabled checking must not record";
  }
  SetLockCheckEnabled(prev);
}

TEST(OrderedMutexTest, MetricsRegistryRespectsDeclaredOrder) {
  // The real registry nests histogram locks inside the registry lock;
  // with checking forced on, a full snapshot must not trip the recorder.
  LockCheckGuard guard;
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram("locks_test.sample.hist")->Observe(1.0);
  reg.GetCounter("locks_test.sample.count")->Increment();
  EXPECT_FALSE(reg.DumpText().empty());
  EXPECT_GE(reg.Snapshot().size(), 2u);
  EXPECT_EQ(HeldLockCount(), 0);
}

}  // namespace
}  // namespace replidb::common
