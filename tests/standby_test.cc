// Warm-standby controller tests (§3.2): replicating the stateful
// middleware itself — the thing the paper says academic prototypes never
// do and never measure.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "client/driver.h"
#include "middleware/controller.h"
#include "middleware/replica_node.h"
#include "workload/workloads.h"

namespace replidb::middleware {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct HaDeployment {
  sim::Simulator sim;
  std::unique_ptr<net::Network> network;
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  std::unique_ptr<Controller> active;
  std::unique_ptr<Controller> standby;
  std::unique_ptr<client::Driver> driver;

  explicit HaDeployment(bool mirror_sync = false) {
    network = std::make_unique<net::Network>(&sim, net::NetworkOptions{});
    std::vector<ReplicaNode*> ptrs;
    for (int i = 0; i < 2; ++i) {
      engine::RdbmsOptions eopts;
      eopts.name = "r" + std::to_string(i + 1);
      eopts.physical_seed = static_cast<uint64_t>(i + 1);
      auto node = std::make_unique<ReplicaNode>(&sim, network.get(), i + 1,
                                                eopts, ReplicaOptions{});
      node->AdminExec("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
      node->AdminExec("INSERT INTO t VALUES (1, 0)");
      ptrs.push_back(node.get());
      replicas.push_back(std::move(node));
    }
    ControllerOptions active_opts;
    active_opts.mode = ReplicationMode::kMasterSlaveAsync;
    active_opts.mirror_to = 101;
    active_opts.mirror_sync = mirror_sync;
    active_opts.heartbeat.period = 200 * kMillisecond;
    active_opts.heartbeat.timeout = 200 * kMillisecond;
    active_opts.heartbeat.miss_threshold = 2;
    active = std::make_unique<Controller>(&sim, network.get(), 100, ptrs,
                                          active_opts);
    ControllerOptions standby_opts = active_opts;
    standby_opts.mirror_to = -1;
    standby_opts.standby_of = 100;
    standby = std::make_unique<Controller>(&sim, network.get(), 101, ptrs,
                                           standby_opts);
    active->Start();
    standby->Start();
    client::DriverOptions dopts;
    dopts.controllers_are_replicas = true;
    dopts.max_retries = 10;
    dopts.request_timeout = 500 * kMillisecond;
    driver = std::make_unique<client::Driver>(
        &sim, network.get(), 200, std::vector<net::NodeId>{100, 101}, dopts);
    sim.RunFor(kSecond);
  }

  TxnResult Run(TxnRequest req) {
    TxnResult out;
    bool done = false;
    driver->Submit(std::move(req), [&](const TxnResult& r) {
      out = r;
      done = true;
    });
    for (int i = 0; i < 200 && !done; ++i) sim.RunFor(250 * kMillisecond);
    EXPECT_TRUE(done);
    return out;
  }
};

TxnRequest Bump() {
  TxnRequest r;
  r.statements = {"UPDATE t SET v = v + 1 WHERE id = 1"};
  return r;
}

TEST(StandbyControllerTest, StandbyIsPassiveWhileActiveAlive) {
  HaDeployment d;
  EXPECT_FALSE(d.active->passive());
  EXPECT_TRUE(d.standby->passive());
  TxnResult w = d.Run(Bump());
  EXPECT_TRUE(w.status.ok());
  d.sim.RunFor(2 * kSecond);
  EXPECT_TRUE(d.standby->passive()) << "healthy active: no takeover";
}

TEST(StandbyControllerTest, MirrorStreamReachesStandby) {
  HaDeployment d;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(d.Run(Bump()).status.ok());
  d.sim.RunFor(kSecond);
  EXPECT_EQ(d.standby->recovery_log().size(), d.active->recovery_log().size())
      << "standby must hold every durable entry";
  EXPECT_GE(d.standby->global_version(), d.active->global_version() - 1);
}

TEST(StandbyControllerTest, TakeoverKeepsWritesFlowing) {
  HaDeployment d;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(d.Run(Bump()).status.ok());
  d.active->Crash();
  d.sim.RunFor(3 * kSecond);
  EXPECT_FALSE(d.standby->passive()) << "watchdog must trigger takeover";
  TxnResult w = d.Run(Bump());
  EXPECT_TRUE(w.status.ok())
      << "writes must continue through the standby: " << w.status.ToString();
  // All 6 increments exist exactly once.
  TxnRequest read;
  read.statements = {"SELECT v FROM t WHERE id = 1"};
  read.read_only = true;
  TxnResult r = d.Run(read);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0][0].AsInt(), 6);
}

TEST(StandbyControllerTest, StandbyCanResyncReplicasAfterTakeover) {
  HaDeployment d;
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(d.Run(Bump()).status.ok());
  d.active->Crash();
  d.sim.RunFor(3 * kSecond);
  ASSERT_FALSE(d.standby->passive());
  // Crash a replica, write through the standby, rejoin: the standby's
  // mirrored recovery log must be able to resynchronize it.
  d.replicas[1]->Crash();
  d.sim.RunFor(2 * kSecond);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(d.Run(Bump()).status.ok());
  d.replicas[1]->Restart();
  d.sim.RunFor(10 * kSecond);
  EXPECT_EQ(d.replicas[0]->engine()->ContentHash(),
            d.replicas[1]->engine()->ContentHash())
      << "resync from the standby's mirrored log must converge";
}

TEST(StandbyControllerTest, SyncMirroringCostsCommitLatency) {
  HaDeployment async_d(/*mirror_sync=*/false);
  HaDeployment sync_d(/*mirror_sync=*/true);
  TxnResult a = async_d.Run(Bump());
  TxnResult s = sync_d.Run(Bump());
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(s.status.ok());
  EXPECT_GT(s.latency, a.latency)
      << "synchronous controller replication must cost a round trip (§3.2)";
}

TEST(StandbyControllerTest, SyncMirroringLosesNothingAtTakeover) {
  HaDeployment d(/*mirror_sync=*/true);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(d.Run(Bump()).status.ok());
  d.active->Crash();
  d.sim.RunFor(3 * kSecond);
  ASSERT_FALSE(d.standby->passive());
  EXPECT_EQ(d.standby->recovery_log().size(), 8u)
      << "every acked commit was mirrored before acknowledgement";
}

}  // namespace
}  // namespace replidb::middleware
