#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "middleware/common.h"
#include "net/dispatcher.h"
#include "net/network.h"
#include "ship/codec.h"
#include "ship/pipeline.h"
#include "sim/simulator.h"

namespace replidb::ship {
namespace {

using middleware::ReplicationEntry;
using sim::kMillisecond;

// --- Codec -------------------------------------------------------------

sql::Value RandomValue(Rng& rng) {
  switch (rng.Next() % 6) {
    case 0:
      return sql::Value::Null();
    case 1:
      return sql::Value::Int(static_cast<int64_t>(rng.Next()));
    case 2:
      return sql::Value::Double(static_cast<double>(rng.Next() % 100000) / 7.0);
    case 3: {
      std::string s(rng.Next() % 24, 'a');
      for (char& c : s) c = static_cast<char>('a' + rng.Next() % 26);
      return sql::Value::String(std::move(s));
    }
    case 4:
      return sql::Value::Bool((rng.Next() & 1) != 0);
    default:
      // Small ints: the common case XOR-delta is built for.
      return sql::Value::Int(static_cast<int64_t>(rng.Next() % 1000));
  }
}

ReplicationEntry RandomEntry(Rng& rng, uint64_t version) {
  ReplicationEntry e;
  e.version = version;
  e.origin_commit_us = static_cast<int64_t>(version * 1000 + rng.Next() % 500);
  e.use_statements = (rng.Next() % 4) == 0;
  if (e.use_statements || (rng.Next() % 3) == 0) {
    size_t n = 1 + rng.Next() % 3;
    for (size_t i = 0; i < n; ++i) {
      e.statements.push_back("UPDATE t" + std::to_string(rng.Next() % 4) +
                             " SET v = " + std::to_string(rng.Next() % 100));
    }
  }
  size_t ops = rng.Next() % 5;
  for (size_t i = 0; i < ops; ++i) {
    engine::WriteOp op;
    op.kind = static_cast<engine::WriteOpKind>(rng.Next() % 3);
    op.database = "db" + std::to_string(rng.Next() % 2);
    op.table = "table" + std::to_string(rng.Next() % 3);
    op.primary_key = sql::Value::Int(static_cast<int64_t>(rng.Next() % 10000));
    if (op.kind != engine::WriteOpKind::kDelete) {
      size_t width = 1 + rng.Next() % 5;
      for (size_t c = 0; c < width; ++c) op.after.push_back(RandomValue(rng));
    }
    e.writeset.ops.push_back(std::move(op));
  }
  e.writeset.incomplete = (rng.Next() % 16) == 0;
  return e;
}

void ExpectEntriesEqual(const std::vector<ReplicationEntry>& want,
                        const std::vector<ReplicationEntry>& got) {
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    const ReplicationEntry& a = want[i];
    const ReplicationEntry& b = got[i];
    EXPECT_EQ(a.version, b.version) << "entry " << i;
    EXPECT_EQ(a.origin_commit_us, b.origin_commit_us) << "entry " << i;
    EXPECT_EQ(a.use_statements, b.use_statements) << "entry " << i;
    EXPECT_EQ(a.statements, b.statements) << "entry " << i;
    EXPECT_EQ(a.writeset.incomplete, b.writeset.incomplete) << "entry " << i;
    ASSERT_EQ(a.writeset.ops.size(), b.writeset.ops.size()) << "entry " << i;
    for (size_t j = 0; j < a.writeset.ops.size(); ++j) {
      const engine::WriteOp& x = a.writeset.ops[j];
      const engine::WriteOp& y = b.writeset.ops[j];
      EXPECT_EQ(x.kind, y.kind);
      EXPECT_EQ(x.database, y.database);
      EXPECT_EQ(x.table, y.table);
      EXPECT_TRUE(x.primary_key == y.primary_key)
          << "entry " << i << " op " << j;
      ASSERT_EQ(x.after.size(), y.after.size());
      for (size_t c = 0; c < x.after.size(); ++c) {
        EXPECT_TRUE(x.after[c] == y.after[c])
            << "entry " << i << " op " << j << " col " << c;
        EXPECT_EQ(x.after[c].type(), y.after[c].type());
      }
    }
  }
}

TEST(ShipCodecTest, RoundTripsRandomBatchesUnderAllOptionCombos) {
  for (bool dict : {false, true}) {
    for (bool xd : {false, true}) {
      CodecOptions opts;
      opts.dictionary = dict;
      opts.xor_delta = xd;
      Rng rng(1234 + (dict ? 2 : 0) + (xd ? 1 : 0));
      for (int round = 0; round < 40; ++round) {
        std::vector<ReplicationEntry> batch;
        size_t n = rng.Next() % 8;  // Includes the empty batch.
        uint64_t version = 1 + rng.Next() % 100;
        for (size_t i = 0; i < n; ++i) {
          batch.push_back(RandomEntry(rng, version));
          version += 1 + rng.Next() % 3;
        }
        EncodedBatch enc = EncodeBatch(batch, opts);
        EXPECT_EQ(enc.encoded_size_bytes,
                  static_cast<int64_t>(enc.payload.size()));
        auto dec = DecodeBatch(enc.payload);
        ASSERT_TRUE(dec.ok()) << dec.status().ToString();
        ExpectEntriesEqual(batch, dec.value());
      }
    }
  }
}

TEST(ShipCodecTest, RoundTripsEdgeCaseValues) {
  ReplicationEntry e;
  e.version = 42;
  e.origin_commit_us = -7;  // Negative delta from the implicit 0 start.
  engine::WriteOp op;
  op.kind = engine::WriteOpKind::kUpdate;
  op.database = "d";
  op.table = "t";
  op.primary_key = sql::Value::String("");
  op.after.push_back(sql::Value::String(std::string(100 * 1024, 'z')));
  op.after.push_back(sql::Value::String("héllo wörld データベース 🚀"));
  op.after.push_back(sql::Value::String(std::string("\0\x01\xff binary", 10)));
  op.after.push_back(sql::Value::Int(INT64_MIN));
  op.after.push_back(sql::Value::Int(INT64_MAX));
  op.after.push_back(sql::Value::Double(-0.0));
  op.after.push_back(sql::Value::Null());
  e.writeset.ops.push_back(op);
  // A second row of the same table exercises the XOR-delta path against
  // a previous row of different width/types.
  engine::WriteOp op2 = op;
  op2.after.assign({sql::Value::Int(INT64_MAX), sql::Value::Int(INT64_MIN)});
  e.writeset.ops.push_back(op2);

  EncodedBatch enc = EncodeBatch({e}, CodecOptions{});
  auto dec = DecodeBatch(enc.payload);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  ExpectEntriesEqual({e}, dec.value());
}

TEST(ShipCodecTest, RepetitiveBatchesCompress) {
  // Binlog-ish traffic: same tables, same SQL shapes, adjacent int keys.
  std::vector<ReplicationEntry> batch;
  for (uint64_t v = 1; v <= 50; ++v) {
    ReplicationEntry e;
    e.version = v;
    e.origin_commit_us = static_cast<int64_t>(1000000 + v * 100);
    engine::WriteOp op;
    op.kind = engine::WriteOpKind::kUpdate;
    op.database = "bank";
    op.table = "accounts";
    op.primary_key = sql::Value::Int(static_cast<int64_t>(v));
    op.after = {sql::Value::Int(static_cast<int64_t>(v)),
                sql::Value::Int(static_cast<int64_t>(1000 + v)),
                sql::Value::String("ordinary account holder")};
    e.writeset.ops.push_back(op);
    batch.push_back(e);
  }
  EncodedBatch enc = EncodeBatch(batch, CodecOptions{});
  EXPECT_GT(enc.raw_size_bytes, 0);
  EXPECT_LT(enc.encoded_size_bytes, enc.raw_size_bytes)
      << "codec must beat the raw struct estimate on repetitive traffic";
  // The ratio should be substantial, not marginal.
  EXPECT_GT(static_cast<double>(enc.raw_size_bytes) /
                static_cast<double>(enc.encoded_size_bytes),
            2.0);
}

TEST(ShipCodecTest, FuzzedInputsNeverCrash) {
  Rng rng(999);
  // Pure garbage.
  for (int i = 0; i < 2000; ++i) {
    std::string junk(rng.Next() % 300, '\0');
    for (char& c : junk) c = static_cast<char>(rng.Next());
    auto dec = DecodeBatch(junk);
    if (dec.ok()) continue;  // Vanishingly unlikely but legal.
  }
  // Corrupted and truncated real payloads.
  std::vector<ReplicationEntry> batch;
  for (uint64_t v = 1; v <= 10; ++v) batch.push_back(RandomEntry(rng, v));
  EncodedBatch enc = EncodeBatch(batch, CodecOptions{});
  for (int i = 0; i < 500; ++i) {
    std::string mutated = enc.payload;
    mutated[rng.Next() % mutated.size()] ^= static_cast<char>(1 + rng.Next() % 255);
    auto dec = DecodeBatch(mutated);  // Must return, never crash.
  }
  for (size_t len = 0; len < enc.payload.size(); ++len) {
    auto dec = DecodeBatch(std::string_view(enc.payload.data(), len));
    EXPECT_FALSE(dec.ok()) << "truncated payload at " << len << " decoded";
  }
  // Trailing garbage after a valid payload must be rejected too.
  auto dec = DecodeBatch(enc.payload + "x");
  EXPECT_FALSE(dec.ok());
}

// --- Pipeline ----------------------------------------------------------

struct PipeEnv {
  sim::Simulator sim;
  net::NetworkOptions nopts;
  std::unique_ptr<net::Network> net;
  std::unique_ptr<net::Dispatcher> sender;
  std::unique_ptr<net::Dispatcher> receiver;
  // (arrival time, entry count, wire bytes) per received batch.
  std::vector<std::tuple<sim::TimePoint, size_t, int64_t>> batches;
  std::vector<net::Message> raw;

  PipeEnv() {
    nopts.lan_jitter = 0;
    nopts.wan_jitter = 0;
    net = std::make_unique<net::Network>(&sim, nopts);
    sender = std::make_unique<net::Dispatcher>(net.get(), 1);
    receiver = std::make_unique<net::Dispatcher>(net.get(), 2);
    receiver->On(kMsgShipBatch, [this](const net::Message& m) {
      auto ingested = IngestBatch(m);
      ASSERT_TRUE(ingested.ok());
      batches.emplace_back(sim.Now(), ingested.value().size(), m.size_bytes);
      raw.push_back(m);
    });
  }
};

ReplicationEntry SmallEntry(uint64_t version) {
  ReplicationEntry e;
  e.version = version;
  e.origin_commit_us = static_cast<int64_t>(version);
  engine::WriteOp op;
  op.kind = engine::WriteOpKind::kUpdate;
  op.database = "db";
  op.table = "t";
  op.primary_key = sql::Value::Int(static_cast<int64_t>(version));
  op.after = {sql::Value::Int(static_cast<int64_t>(version))};
  e.writeset.ops.push_back(op);
  return e;
}

TEST(ShipPipelineTest, LatencyCapFlushesPartialBatch) {
  PipeEnv env;
  ShipOptions opts;
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  pipe.Enqueue(2, SmallEntry(1));
  env.sim.RunFor(10 * kMillisecond);
  ASSERT_EQ(env.batches.size(), 1u);
  // Shipped at the latency cap, not immediately and not never.
  sim::TimePoint at = std::get<0>(env.batches[0]);
  EXPECT_GE(at, opts.batch_max_delay);
  EXPECT_LE(at, opts.batch_max_delay + 2 * env.nopts.lan_latency);
}

TEST(ShipPipelineTest, SizeCapFlushesFullBatchImmediately) {
  PipeEnv env;
  ShipOptions opts;
  opts.batch_max_bytes = 256;  // A few small entries fill it.
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  for (uint64_t v = 1; v <= 20; ++v) pipe.Enqueue(2, SmallEntry(v));
  env.sim.RunFor(10 * kMillisecond);
  ASSERT_GE(env.batches.size(), 2u);
  size_t total = 0;
  for (auto& b : env.batches) total += std::get<1>(b);
  EXPECT_EQ(total, 20u);
  // The first batch left on the size cap: well before the latency cap.
  EXPECT_LT(std::get<0>(env.batches[0]), opts.batch_max_delay);
}

TEST(ShipPipelineTest, BatchingDisabledShipsPerEntry) {
  PipeEnv env;
  ShipOptions opts;
  opts.batching = false;
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  for (uint64_t v = 1; v <= 5; ++v) pipe.Enqueue(2, SmallEntry(v));
  env.sim.RunFor(10 * kMillisecond);
  EXPECT_EQ(env.batches.size(), 5u);
  for (auto& b : env.batches) EXPECT_EQ(std::get<1>(b), 1u);
}

TEST(ShipPipelineTest, IngestSplitsCreditsAndMarksFollowers) {
  PipeEnv env;
  ShipOptions opts;
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  for (uint64_t v = 1; v <= 4; ++v) pipe.Enqueue(2, SmallEntry(v));
  pipe.Flush(2, FlushReason::kSync);
  env.sim.RunFor(10 * kMillisecond);
  ASSERT_EQ(env.raw.size(), 1u);
  auto ingested = IngestBatch(env.raw[0]);
  ASSERT_TRUE(ingested.ok());
  ASSERT_EQ(ingested.value().size(), 4u);
  int64_t credit_sum = 0;
  for (size_t i = 0; i < ingested.value().size(); ++i) {
    const IngestedEntry& ie = ingested.value()[i];
    EXPECT_EQ(ie.group_follower, i > 0);
    EXPECT_EQ(ie.entry.version, i + 1);
    credit_sum += ie.credit_bytes;
  }
  // Credits fully return the wire bytes, no leak and no inflation.
  EXPECT_EQ(credit_sum, env.raw[0].size_bytes);
}

TEST(ShipPipelineTest, ExhaustedWindowStallsUntilCredit) {
  PipeEnv env;
  ShipOptions opts;
  opts.batching = false;
  opts.window_bytes = 64;  // First small batch exhausts it.
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  for (uint64_t v = 1; v <= 6; ++v) pipe.Enqueue(2, SmallEntry(v));
  env.sim.RunFor(20 * kMillisecond);
  auto delivered = [&] {
    size_t total = 0;
    for (auto& b : env.batches) total += std::get<1>(b);
    return total;
  };
  EXPECT_LT(delivered(), 6u) << "window must stop shipping mid-stream";
  EXPECT_TRUE(pipe.Stalled(2));
  EXPECT_TRUE(pipe.AnyStalled());
  EXPECT_GE(pipe.stall_events(), 1u);
  EXPECT_GT(pipe.QueuedBytes(2), 0);

  // Credit grants are clamped to the configured window, so a slow peer
  // hands back at most window_bytes of runway per grant: keep granting
  // (as an applying replica would) until the queue drains.
  for (int i = 0; i < 10 && delivered() < 6u; ++i) {
    pipe.OnCredit(2, 1 << 20);
    env.sim.RunFor(20 * kMillisecond);
  }
  EXPECT_EQ(delivered(), 6u) << "stalled entries ship after credit grants";
  EXPECT_EQ(pipe.QueuedBytes(2), 0);
}

TEST(ShipPipelineTest, ResetPeerDropsQueueAndRestoresWindow) {
  PipeEnv env;
  ShipOptions opts;
  opts.batching = false;
  opts.window_bytes = 64;
  ShipPipeline pipe(&env.sim, env.sender.get(), opts);
  pipe.SetPeers({2});
  for (uint64_t v = 1; v <= 6; ++v) pipe.Enqueue(2, SmallEntry(v));
  env.sim.RunFor(20 * kMillisecond);
  ASSERT_TRUE(pipe.Stalled(2));
  pipe.ResetPeer(2);
  EXPECT_FALSE(pipe.Stalled(2));
  EXPECT_EQ(pipe.QueuedBytes(2), 0);
  // A fresh window ships again without any credit.
  pipe.Enqueue(2, SmallEntry(7));
  env.sim.RunFor(20 * kMillisecond);
  EXPECT_EQ(std::get<1>(env.batches.back()), 1u);
}

TEST(ShipPipelineTest, FlushScheduleIsDeterministic) {
  auto run = [](uint64_t seed) {
    PipeEnv env;
    ShipOptions opts;
    opts.batch_max_bytes = 400;
    ShipPipeline pipe(&env.sim, env.sender.get(), opts);
    pipe.SetPeers({2});
    Rng rng(seed);
    uint64_t version = 0;
    // Random arrival process: bursts at random offsets.
    for (int burst = 0; burst < 30; ++burst) {
      sim::TimePoint at = static_cast<sim::TimePoint>(rng.Next() % 50) * 100;
      size_t n = 1 + rng.Next() % 6;
      std::vector<ReplicationEntry> entries;
      for (size_t i = 0; i < n; ++i) entries.push_back(RandomEntry(rng, ++version));
      env.sim.Schedule(at, [&pipe, entries] {
        for (const ReplicationEntry& e : entries) pipe.Enqueue(2, e);
      });
    }
    env.sim.RunFor(100 * kMillisecond);
    return env.batches;
  };
  auto a = run(77);
  auto b = run(77);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "batch " << i << " diverged between runs";
  }
  // Different seed => different schedule (sanity that the test can fail).
  auto c = run(78);
  EXPECT_TRUE(a != c);
}

}  // namespace
}  // namespace replidb::ship
