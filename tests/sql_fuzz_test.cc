// Randomized property tests for the SQL layer and engine:
//
//  - serializer/parser round-trip: ToSql(Parse(ToSql(ast))) is stable;
//  - the engine never crashes on any generated statement, and statement
//    failures inside transactions never corrupt committed state;
//  - two engines fed the same deterministic statement stream end up
//    byte-identical (the foundation of statement replication).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/rdbms.h"
#include "sql/determinism.h"
#include "sql/parser.h"

namespace replidb::sql {
namespace {

/// Generates random (sometimes deliberately pathological) SQL statements
/// over a small fixed schema.
class StatementGenerator {
 public:
  explicit StatementGenerator(uint64_t seed) : rng_(seed) {}

  std::string Next() {
    switch (rng_.Uniform(10)) {
      case 0: return Insert();
      case 1: case 2: return Update();
      case 3: return Delete();
      case 4: case 5: case 6: return Select();
      case 7: return Ddl();
      case 8: return Update();  // Writes are the interesting ones.
      default: return Select();
    }
  }

  std::string Value() {
    switch (rng_.Uniform(5)) {
      case 0: return std::to_string(rng_.UniformRange(-1000, 1000));
      case 1: return std::to_string(rng_.UniformRange(0, 100)) + "." +
                     std::to_string(rng_.Uniform(100));
      case 2: return "'s" + std::to_string(rng_.Uniform(50)) + "'";
      case 3: return "NULL";
      default: return rng_.Chance(0.5) ? "TRUE" : "FALSE";
    }
  }

  std::string Expr(int depth = 0) {
    if (depth > 2 || rng_.Chance(0.4)) {
      switch (rng_.Uniform(4)) {
        case 0: return Value();
        case 1: return Column();
        case 2: return "NOW()";
        default: return "ABS(" + Column() + ")";
      }
    }
    static const char* ops[] = {"+", "-", "*", "=", "<>", "<", ">", "AND", "OR"};
    return "(" + Expr(depth + 1) + " " +
           ops[rng_.Uniform(sizeof(ops) / sizeof(ops[0]))] + " " +
           Expr(depth + 1) + ")";
  }

  std::string Column() {
    static const char* cols[] = {"id", "a", "b", "c"};
    return cols[rng_.Uniform(4)];
  }

  std::string Where() {
    switch (rng_.Uniform(4)) {
      case 0: return "";
      case 1: return " WHERE id = " + std::to_string(rng_.Uniform(200));
      case 2: return " WHERE " + Column() + " > " +
                     std::to_string(rng_.UniformRange(-50, 50));
      default:
        return " WHERE id IN (SELECT id FROM t WHERE " + Column() + " < " +
               std::to_string(rng_.Uniform(100)) + " ORDER BY id LIMIT " +
               std::to_string(1 + rng_.Uniform(5)) + ")";
    }
  }

  std::string Insert() {
    return "INSERT INTO t (id, a, b, c) VALUES (" +
           std::to_string(next_id_++) + ", " + Value() + ", " + Value() +
           ", " + std::to_string(rng_.UniformRange(0, 99)) + ")";
  }

  std::string Update() {
    return "UPDATE t SET " + std::string(rng_.Chance(0.5) ? "a" : "b") +
           " = " + Expr() + Where();
  }

  std::string Delete() { return "DELETE FROM t" + Where(); }

  std::string Select() {
    switch (rng_.Uniform(3)) {
      case 0:
        return "SELECT * FROM t" + Where() + " ORDER BY id LIMIT " +
               std::to_string(1 + rng_.Uniform(20));
      case 1:
        return "SELECT COUNT(*), SUM(c), MIN(c), MAX(c) FROM t" + Where();
      default:
        return "SELECT id, a FROM t" + Where();
    }
  }

  std::string Ddl() {
    int n = ddl_counter_++;
    switch (rng_.Uniform(3)) {
      case 0:
        return "CREATE TABLE IF NOT EXISTS extra_" + std::to_string(n % 4) +
               " (k INT PRIMARY KEY, v TEXT)";
      case 1:
        return "DROP TABLE IF EXISTS extra_" + std::to_string(n % 4);
      default:
        return "CREATE TEMPORARY TABLE IF NOT EXISTS tmp_" +
               std::to_string(n % 3) + " (x INT)";
    }
  }

 private:
  Rng rng_;
  int64_t next_id_ = 1000;
  int ddl_counter_ = 0;
};

class SqlFuzzTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SqlFuzzTest, ::testing::Values(1, 2, 3, 4, 5));

TEST_P(SqlFuzzTest, RoundTripIsStable) {
  StatementGenerator gen(GetParam());
  for (int i = 0; i < 400; ++i) {
    std::string text = gen.Next();
    Result<Statement> first = Parse(text);
    ASSERT_TRUE(first.ok()) << text << " -> " << first.status().ToString();
    std::string canon1 = ToSql(first.value());
    Result<Statement> second = Parse(canon1);
    ASSERT_TRUE(second.ok()) << "canonical form must re-parse: " << canon1;
    EXPECT_EQ(ToSql(second.value()), canon1) << "original: " << text;
  }
}

TEST_P(SqlFuzzTest, AnalyzerNeverCrashesAndRewriteRemovesNow) {
  StatementGenerator gen(GetParam() + 100);
  Rng rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    std::string text = gen.Next();
    Statement stmt = Parse(text).TakeValue();
    DeterminismReport before = Analyze(stmt);
    RewriteForStatementReplication(&stmt, Value::Int(12345), &rng);
    DeterminismReport after = Analyze(stmt);
    EXPECT_FALSE(after.uses_now) << "NOW() must be gone after rewriting: "
                                 << ToSql(stmt);
    if (before.SafeForStatementReplication()) {
      EXPECT_TRUE(after.IsDeterministic() || after.uses_sequence)
          << ToSql(stmt);
    }
  }
}

TEST_P(SqlFuzzTest, EngineSurvivesRandomStatementStream) {
  engine::Rdbms db{engine::RdbmsOptions{}};
  engine::SessionId s = db.Connect().value();
  ASSERT_TRUE(db.Execute(s, "CREATE TABLE t (id INT PRIMARY KEY, a INT, "
                            "b DOUBLE, c INT)")
                  .ok());
  for (int i = 0; i < 50; ++i) {
    db.Execute(s, "INSERT INTO t VALUES (" + std::to_string(i) + ", 1, 2.0, " +
                      std::to_string(i % 10) + ")");
  }
  StatementGenerator gen(GetParam() + 200);
  Rng rng(GetParam() + 300);
  int in_txn = 0;
  for (int i = 0; i < 600; ++i) {
    if (in_txn == 0 && rng.Chance(0.2)) {
      db.Execute(s, "BEGIN");
      in_txn = 1 + static_cast<int>(rng.Uniform(5));
    }
    // Execute anything; errors are fine, crashes/corruption are not.
    db.Execute(s, gen.Next());
    if (in_txn > 0 && --in_txn == 0) {
      db.Execute(s, rng.Chance(0.7) ? "COMMIT" : "ROLLBACK");
    }
  }
  if (in_txn > 0) db.Execute(s, "ROLLBACK");
  // The engine must still be fully functional and self-consistent.
  engine::ExecResult r = db.Execute(s, "SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.rows[0][0].AsInt(), 0);
  uint64_t h1 = db.ContentHash();
  EXPECT_EQ(h1, db.ContentHash()) << "hash must be stable at rest";
}

TEST_P(SqlFuzzTest, TwoEnginesReplayingSameStreamConverge) {
  // The core premise of statement replication: deterministic statements
  // applied in the same order produce identical state — even with
  // different physical layouts, as long as NOW() is pre-rewritten and no
  // per-row RAND()/unordered LIMIT sneaks in (the generator emits none).
  engine::RdbmsOptions o1, o2;
  o1.physical_seed = 111;
  o2.physical_seed = 222;
  engine::Rdbms db1(o1), db2(o2);
  engine::SessionId s1 = db1.Connect().value();
  engine::SessionId s2 = db2.Connect().value();
  const char* schema =
      "CREATE TABLE t (id INT PRIMARY KEY, a INT, b DOUBLE, c INT)";
  db1.Execute(s1, schema);
  db2.Execute(s2, schema);

  StatementGenerator gen(GetParam() + 400);
  Rng rng(GetParam() + 500);
  for (int i = 0; i < 400; ++i) {
    std::string text = gen.Next();
    Statement stmt = Parse(text).TakeValue();
    RewriteForStatementReplication(&stmt, Value::Int(777), &rng);
    std::string canonical = ToSql(stmt);
    engine::ExecResult r1 = db1.Execute(s1, canonical);
    engine::ExecResult r2 = db2.Execute(s2, canonical);
    EXPECT_EQ(r1.ok(), r2.ok()) << canonical << " | " << r1.status.ToString()
                                << " vs " << r2.status.ToString();
  }
  EXPECT_EQ(db1.ContentHash(), db2.ContentHash())
      << "same statement stream, different physical seeds: must converge";
}

TEST_P(SqlFuzzTest, AnalyzerFlagsEveryDivergingStatement) {
  // The audit subsystem's contract seen from the analyzer's side: any
  // statement that actually diverges two replicas under statement
  // replication must have been flagged unsafe by Analyze() — there is no
  // class of divergence the online auditor can catch that the static
  // analyzer silently calls safe. Engines differ in both physical layout
  // and RAND() seed, and the stream mixes generator output with the two
  // known-unsafe shapes (per-row RAND(), unordered LIMIT subquery).
  engine::RdbmsOptions o1, o2;
  o1.physical_seed = 111;
  o1.rand_seed = 1111;
  o2.physical_seed = 222;
  o2.rand_seed = 2222;
  engine::Rdbms db1(o1), db2(o2);
  engine::SessionId s1 = db1.Connect().value();
  engine::SessionId s2 = db2.Connect().value();
  const char* schema =
      "CREATE TABLE t (id INT PRIMARY KEY, a INT, b DOUBLE, c INT)";
  db1.Execute(s1, schema);
  db2.Execute(s2, schema);
  for (int i = 0; i < 50; ++i) {
    std::string row = "INSERT INTO t VALUES (" + std::to_string(i) +
                      ", 1, 2.0, " + std::to_string(i % 10) + ")";
    db1.Execute(s1, row);
    db2.Execute(s2, row);
  }

  StatementGenerator gen(GetParam() + 600);
  Rng rng(GetParam() + 700);
  bool diverged = false;
  for (int i = 0; i < 400 && !diverged; ++i) {
    std::string text;
    switch (rng.Uniform(10)) {
      case 0:
        text = "UPDATE t SET a = RAND() WHERE c = " +
               std::to_string(rng.Uniform(10));
        break;
      case 1:
        text = "DELETE FROM t WHERE id IN (SELECT id FROM t WHERE c >= " +
               std::to_string(rng.Uniform(10)) + " LIMIT 2)";
        break;
      default:
        text = gen.Next();
    }
    Statement stmt = Parse(text).TakeValue();
    RewriteForStatementReplication(&stmt, Value::Int(777), &rng);
    std::string canonical = ToSql(stmt);
    DeterminismReport report = Analyze(stmt);
    db1.Execute(s1, canonical);
    db2.Execute(s2, canonical);
    if (db1.ContentHash() != db2.ContentHash()) {
      diverged = true;
      EXPECT_FALSE(report.SafeForStatementReplication())
          << "replicas diverged on a statement the analyzer called safe: "
          << canonical;
    }
  }
  // Unsafe statements are frequent enough that most seeds diverge; a seed
  // that never did must leave the engines converged.
  if (!diverged) EXPECT_EQ(db1.ContentHash(), db2.ContentHash());
}

}  // namespace
}  // namespace replidb::sql
