#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"
#include "sql/ast.h"
#include "sql/determinism.h"
#include "sql/parser.h"
#include "sql/value.h"

namespace replidb::sql {
namespace {

Statement MustParse(const std::string& text) {
  Result<Statement> r = Parse(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.TakeValue();
}

// --- Value ----------------------------------------------------------------

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int(7).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("x").AsString(), "x");
  EXPECT_TRUE(Value::Bool(true).AsBool());
}

TEST(ValueTest, CompareTotalOrder) {
  EXPECT_LT(Value::Null().Compare(Value::Int(0)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("a").Compare(Value::String("b")), 0);
  EXPECT_EQ(Value::String("a").Compare(Value::String("a")), 0);
}

TEST(ValueTest, Truthy) {
  EXPECT_FALSE(Value::Null().Truthy());
  EXPECT_FALSE(Value::Int(0).Truthy());
  EXPECT_TRUE(Value::Int(1).Truthy());
  EXPECT_FALSE(Value::String("").Truthy());
  EXPECT_TRUE(Value::String("x").Truthy());
  EXPECT_TRUE(Value::Bool(true).Truthy());
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::String("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(5).ToSqlLiteral(), "5");
  EXPECT_EQ(Value::Bool(false).ToSqlLiteral(), "FALSE");
}

TEST(ValueTest, HashStability) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Int(42).Hash());
  EXPECT_NE(Value::Int(42).Hash(), Value::Int(43).Hash());
  EXPECT_NE(Value::Int(1).Hash(), Value::String("1").Hash());
  Row r1 = {Value::Int(1), Value::String("a")};
  Row r2 = {Value::Int(1), Value::String("a")};
  Row r3 = {Value::String("a"), Value::Int(1)};
  EXPECT_EQ(HashRow(r1), HashRow(r2));
  EXPECT_NE(HashRow(r1), HashRow(r3));
}

// --- Parser: DDL ------------------------------------------------------------

TEST(ParserTest, CreateDatabase) {
  Statement s = MustParse("CREATE DATABASE shop");
  ASSERT_EQ(s.type(), StmtType::kCreateDatabase);
  EXPECT_EQ(s.As<CreateDatabaseStmt>().name, "shop");
  EXPECT_FALSE(s.As<CreateDatabaseStmt>().if_not_exists);
  Statement s2 = MustParse("create database if not exists shop");
  EXPECT_TRUE(s2.As<CreateDatabaseStmt>().if_not_exists);
}

TEST(ParserTest, CreateTableWithConstraints) {
  Statement s = MustParse(
      "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, "
      "name VARCHAR(255) NOT NULL, email TEXT UNIQUE, score DOUBLE, "
      "active BOOL)");
  ASSERT_EQ(s.type(), StmtType::kCreateTable);
  const auto& ct = s.As<CreateTableStmt>();
  ASSERT_EQ(ct.columns.size(), 5u);
  EXPECT_TRUE(ct.columns[0].primary_key);
  EXPECT_TRUE(ct.columns[0].auto_increment);
  EXPECT_EQ(ct.columns[1].type, ValueType::kString);
  EXPECT_TRUE(ct.columns[1].not_null);
  EXPECT_TRUE(ct.columns[2].unique);
  EXPECT_EQ(ct.columns[3].type, ValueType::kDouble);
  EXPECT_EQ(ct.columns[4].type, ValueType::kBool);
  EXPECT_FALSE(ct.temporary);
}

TEST(ParserTest, CreateTemporaryTable) {
  Statement s = MustParse("CREATE TEMPORARY TABLE scratch (k INT, v TEXT)");
  EXPECT_TRUE(s.As<CreateTableStmt>().temporary);
}

TEST(ParserTest, QualifiedTableName) {
  Statement s = MustParse("CREATE TABLE reporting.daily (d INT)");
  EXPECT_EQ(s.As<CreateTableStmt>().table.database, "reporting");
  EXPECT_EQ(s.As<CreateTableStmt>().table.table, "daily");
}

TEST(ParserTest, DropTable) {
  Statement s = MustParse("DROP TABLE IF EXISTS t");
  EXPECT_TRUE(s.As<DropTableStmt>().if_exists);
  EXPECT_EQ(s.As<DropTableStmt>().table.table, "t");
}

TEST(ParserTest, CreateSequence) {
  Statement s = MustParse("CREATE SEQUENCE order_id START 100");
  EXPECT_EQ(s.As<CreateSequenceStmt>().name, "order_id");
  EXPECT_EQ(s.As<CreateSequenceStmt>().start, 100);
}

// --- Parser: DML ------------------------------------------------------------

TEST(ParserTest, InsertMultiRow) {
  Statement s =
      MustParse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y''z')");
  ASSERT_EQ(s.type(), StmtType::kInsert);
  const auto& ins = s.As<InsertStmt>();
  ASSERT_EQ(ins.rows.size(), 2u);
  EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(ins.rows[1][1]->literal.AsString(), "y'z");
}

TEST(ParserTest, UpdateWithWhere) {
  Statement s = MustParse("UPDATE t SET x = x + 1, y = 'v' WHERE id = 3");
  const auto& u = s.As<UpdateStmt>();
  ASSERT_EQ(u.sets.size(), 2u);
  EXPECT_EQ(u.sets[0].first, "x");
  ASSERT_NE(u.where, nullptr);
}

TEST(ParserTest, DeleteAll) {
  Statement s = MustParse("DELETE FROM t");
  EXPECT_EQ(s.As<DeleteStmt>().where, nullptr);
}

TEST(ParserTest, SelectFull) {
  Statement s = MustParse(
      "SELECT a, b FROM t WHERE a > 5 AND b <> 'x' ORDER BY a DESC, b "
      "LIMIT 10 FOR UPDATE");
  const auto& sel = s.As<SelectStmt>();
  EXPECT_FALSE(sel.star);
  ASSERT_EQ(sel.items.size(), 2u);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
  EXPECT_EQ(sel.limit, 10);
  EXPECT_TRUE(sel.for_update);
}

TEST(ParserTest, SelectAggregates) {
  Statement s = MustParse("SELECT COUNT(*), SUM(x), MIN(x), MAX(x), AVG(x) FROM t");
  const auto& sel = s.As<SelectStmt>();
  ASSERT_EQ(sel.items.size(), 5u);
  EXPECT_EQ(sel.items[0].agg, AggFunc::kCount);
  EXPECT_EQ(sel.items[0].expr, nullptr);
  EXPECT_EQ(sel.items[1].agg, AggFunc::kSum);
  EXPECT_EQ(sel.items[4].agg, AggFunc::kAvg);
}

TEST(ParserTest, TransactionControl) {
  EXPECT_EQ(MustParse("BEGIN").type(), StmtType::kBegin);
  EXPECT_EQ(MustParse("START TRANSACTION").type(), StmtType::kBegin);
  EXPECT_EQ(MustParse("COMMIT").type(), StmtType::kCommit);
  EXPECT_EQ(MustParse("ROLLBACK").type(), StmtType::kRollback);
}

TEST(ParserTest, Call) {
  Statement s = MustParse("CALL settle_orders(42, 'EU')");
  const auto& c = s.As<CallStmt>();
  EXPECT_EQ(c.procedure, "settle_orders");
  ASSERT_EQ(c.args.size(), 2u);
}

TEST(ParserTest, InSubquery) {
  Statement s = MustParse(
      "UPDATE foo SET keyvalue = 'x' WHERE id IN "
      "(SELECT id FROM foo WHERE keyvalue = NULL LIMIT 10)");
  const auto& u = s.As<UpdateStmt>();
  ASSERT_NE(u.where, nullptr);
  EXPECT_EQ(u.where->kind, Expr::Kind::kInSubquery);
  EXPECT_EQ(u.where->subquery->limit, 10);
}

TEST(ParserTest, InValueList) {
  Statement s = MustParse("SELECT * FROM t WHERE id IN (1, 2, 3)");
  const auto& sel = s.As<SelectStmt>();
  // Expanded into OR chain of equality tests.
  EXPECT_EQ(sel.where->kind, Expr::Kind::kBinary);
  EXPECT_EQ(sel.where->bin_op, BinaryOp::kOr);
}

TEST(ParserTest, Functions) {
  Statement s = MustParse(
      "INSERT INTO t (a, b, c) VALUES (NOW(), RAND(), NEXTVAL('seq'))");
  const auto& ins = s.As<InsertStmt>();
  EXPECT_EQ(ins.rows[0][0]->func, FuncKind::kNow);
  EXPECT_EQ(ins.rows[0][1]->func, FuncKind::kRand);
  EXPECT_EQ(ins.rows[0][2]->func, FuncKind::kNextval);
  EXPECT_EQ(ins.rows[0][2]->sequence_name, "seq");
}

TEST(ParserTest, CurrentTimestampNoParens) {
  Statement s = MustParse("UPDATE t SET ts = CURRENT_TIMESTAMP WHERE id = 1");
  EXPECT_EQ(s.As<UpdateStmt>().sets[0].second->func, FuncKind::kNow);
}

TEST(ParserTest, IsNull) {
  Statement s = MustParse("SELECT * FROM t WHERE x IS NULL");
  EXPECT_EQ(s.As<SelectStmt>().where->kind, Expr::Kind::kBinary);
  Statement s2 = MustParse("SELECT * FROM t WHERE x IS NOT NULL");
  EXPECT_EQ(s2.As<SelectStmt>().where->kind, Expr::Kind::kUnary);
}

TEST(ParserTest, ArithmeticPrecedence) {
  Statement s = MustParse("SELECT 1 + 2 * 3 FROM t");
  const Expr& e = *s.As<SelectStmt>().items[0].expr;
  ASSERT_EQ(e.kind, Expr::Kind::kBinary);
  EXPECT_EQ(e.bin_op, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->bin_op, BinaryOp::kMul);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELEC * FROM t").ok());
  EXPECT_FALSE(Parse("SELECT * FROM").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parse("UPDATE t SET").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t WHERE 'unterminated").ok());
  EXPECT_FALSE(Parse("SELECT * FROM t extra junk").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (x FANCYTYPE)").ok());
}

TEST(ParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(Parse("SELECT * FROM t;").ok());
}

TEST(ParserTest, LineComments) {
  EXPECT_TRUE(Parse("SELECT * FROM t -- trailing comment").ok());
}

// --- Serializer round-trip ---------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ParseSerializeParseIsStable) {
  Statement s1 = MustParse(GetParam());
  std::string text1 = ToSql(s1);
  Statement s2 = MustParse(text1);
  std::string text2 = ToSql(s2);
  EXPECT_EQ(text1, text2) << "original: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Statements, RoundTripTest,
    ::testing::Values(
        "CREATE DATABASE shop",
        "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)",
        "CREATE TEMPORARY TABLE tmp (k INT)",
        "CREATE SEQUENCE s START 7",
        "DROP TABLE IF EXISTS t",
        "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)",
        "INSERT INTO db2.t VALUES (NOW(), RAND(), NEXTVAL('s'))",
        "UPDATE t SET x = x + 1 WHERE id = 3 AND v <> 'q'",
        "UPDATE t SET x = RAND() WHERE id > 5",
        "DELETE FROM t WHERE a <= 10 OR b = TRUE",
        "SELECT * FROM t",
        "SELECT a, b + 1 FROM t WHERE NOT a = 2 ORDER BY a DESC LIMIT 5",
        "SELECT COUNT(*), AVG(x) FROM t",
        "SELECT * FROM t WHERE id IN (SELECT id FROM u WHERE x = 1 LIMIT 3)",
        "BEGIN", "COMMIT", "ROLLBACK",
        "CALL p(1, 'a')"));

// --- Determinism analysis -----------------------------------------------------

TEST(DeterminismTest, PlainStatementsAreDeterministic) {
  for (const char* text :
       {"INSERT INTO t VALUES (1)", "UPDATE t SET x = 2 WHERE id = 1",
        "DELETE FROM t WHERE x > 5", "CREATE TABLE t (x INT)"}) {
    Statement s = MustParse(text);
    EXPECT_TRUE(Analyze(s).IsDeterministic()) << text;
  }
}

TEST(DeterminismTest, NowIsRewritable) {
  Statement s = MustParse("UPDATE t SET ts = NOW() WHERE id = 1");
  DeterminismReport r = Analyze(s);
  EXPECT_TRUE(r.uses_now);
  EXPECT_FALSE(r.IsDeterministic());
  EXPECT_TRUE(r.SafeForStatementReplication());
}

TEST(DeterminismTest, RandInInsertIsRewritable) {
  Statement s = MustParse("INSERT INTO t (x) VALUES (RAND())");
  DeterminismReport r = Analyze(s);
  EXPECT_TRUE(r.uses_rand_rewritable);
  EXPECT_FALSE(r.uses_rand_per_row);
  EXPECT_TRUE(r.SafeForStatementReplication());
}

TEST(DeterminismTest, RandInUpdateSetIsNotRewritable) {
  // The paper's canonical example: UPDATE t SET x=rand().
  Statement s = MustParse("UPDATE t SET x = RAND()");
  DeterminismReport r = Analyze(s);
  EXPECT_TRUE(r.uses_rand_per_row);
  EXPECT_FALSE(r.SafeForStatementReplication());
}

TEST(DeterminismTest, UnorderedLimitSubqueryInWrite) {
  // The paper's SELECT ... LIMIT without ORDER BY example.
  Statement s = MustParse(
      "UPDATE foo SET keyvalue = 'x' WHERE id IN "
      "(SELECT id FROM foo WHERE keyvalue = NULL LIMIT 10)");
  DeterminismReport r = Analyze(s);
  EXPECT_TRUE(r.unordered_limit_subquery);
  EXPECT_FALSE(r.SafeForStatementReplication());
}

TEST(DeterminismTest, OrderedLimitSubqueryIsSafe) {
  Statement s = MustParse(
      "UPDATE foo SET keyvalue = 'x' WHERE id IN "
      "(SELECT id FROM foo WHERE keyvalue = NULL ORDER BY id LIMIT 10)");
  DeterminismReport r = Analyze(s);
  EXPECT_FALSE(r.unordered_limit_subquery);
  EXPECT_TRUE(r.SafeForStatementReplication());
}

TEST(DeterminismTest, LimitSubqueryInReadOnlySelectIsFine) {
  Statement s = MustParse(
      "SELECT * FROM t WHERE id IN (SELECT id FROM u LIMIT 5)");
  DeterminismReport r = Analyze(s);
  EXPECT_FALSE(r.unordered_limit_subquery);
}

TEST(DeterminismTest, SequencesAreFlagged) {
  Statement s = MustParse("INSERT INTO t (id) VALUES (NEXTVAL('s'))");
  DeterminismReport r = Analyze(s);
  EXPECT_TRUE(r.uses_sequence);
  EXPECT_TRUE(r.SafeForStatementReplication());  // Safe under total order.
}

TEST(DeterminismTest, RewriteReplacesNowWithLiteral) {
  Statement s = MustParse("UPDATE t SET ts = NOW() WHERE id = 1");
  Rng rng(1);
  RewriteForStatementReplication(&s, Value::Int(123456), &rng);
  std::string text = ToSql(s);
  EXPECT_EQ(text.find("NOW"), std::string::npos) << text;
  EXPECT_NE(text.find("123456"), std::string::npos) << text;
  EXPECT_TRUE(Analyze(s).IsDeterministic());
}

TEST(DeterminismTest, RewriteReplacesInsertRand) {
  Statement s = MustParse("INSERT INTO t (x) VALUES (RAND())");
  Rng rng(7);
  RewriteForStatementReplication(&s, Value::Int(0), &rng);
  EXPECT_TRUE(Analyze(s).IsDeterministic());
  EXPECT_EQ(ToSql(s).find("RAND"), std::string::npos);
}

TEST(DeterminismTest, RewriteLeavesPerRowRandAlone) {
  Statement s = MustParse("UPDATE t SET x = RAND()");
  Rng rng(7);
  DeterminismReport r = RewriteForStatementReplication(&s, Value::Int(0), &rng);
  EXPECT_TRUE(r.uses_rand_per_row);
  EXPECT_NE(ToSql(s).find("RAND"), std::string::npos);
}

TEST(DeterminismTest, CallArgumentsAreRewritable) {
  Statement s = MustParse("CALL audit(NOW())");
  Rng rng(7);
  RewriteForStatementReplication(&s, Value::Int(99), &rng);
  EXPECT_TRUE(Analyze(s).IsDeterministic());
}

TEST(ExprTest, CloneIsDeep) {
  Statement s = MustParse("SELECT * FROM t WHERE a = 1 AND b IN (SELECT c FROM u LIMIT 2)");
  ExprPtr copy = s.As<SelectStmt>().where->Clone();
  EXPECT_EQ(ExprToSql(*copy), ExprToSql(*s.As<SelectStmt>().where));
  EXPECT_NE(copy.get(), s.As<SelectStmt>().where.get());
}

TEST(StatementTest, IsWriteClassification) {
  EXPECT_TRUE(MustParse("INSERT INTO t VALUES (1)").IsWrite());
  EXPECT_TRUE(MustParse("UPDATE t SET x = 1").IsWrite());
  EXPECT_TRUE(MustParse("DELETE FROM t").IsWrite());
  EXPECT_TRUE(MustParse("CREATE TABLE t (x INT)").IsWrite());
  EXPECT_TRUE(MustParse("CALL p()").IsWrite());
  EXPECT_FALSE(MustParse("SELECT * FROM t").IsWrite());
  EXPECT_FALSE(MustParse("BEGIN").IsWrite());
  EXPECT_TRUE(MustParse("COMMIT").IsTransactionControl());
}

}  // namespace
}  // namespace replidb::sql
