#include <gtest/gtest.h>

#include "metrics/availability.h"
#include "metrics/report.h"

namespace replidb::metrics {
namespace {

using sim::kHour;
using sim::kMinute;
using sim::kSecond;

TEST(AvailabilityTest, StartsUpWithFullAvailability) {
  AvailabilityTracker t;
  EXPECT_TRUE(t.IsUp());
  EXPECT_DOUBLE_EQ(t.Availability(kHour), 1.0);
  EXPECT_EQ(t.Downtime(kHour), 0);
  EXPECT_EQ(t.outages(), 0);
}

TEST(AvailabilityTest, SingleOutageAccounting) {
  AvailabilityTracker t;
  t.MarkDown(10 * kMinute);
  EXPECT_FALSE(t.IsUp());
  t.MarkUp(15 * kMinute);
  EXPECT_TRUE(t.IsUp());
  EXPECT_EQ(t.Downtime(kHour), 5 * kMinute);
  EXPECT_EQ(t.Uptime(kHour), 55 * kMinute);
  EXPECT_NEAR(t.Availability(kHour), 55.0 / 60.0, 1e-9);
  EXPECT_EQ(t.outages(), 1);
  EXPECT_DOUBLE_EQ(t.MttrMicros(), 5.0 * kMinute);
}

TEST(AvailabilityTest, OngoingOutageCountsToEnd) {
  AvailabilityTracker t;
  t.MarkDown(50 * kMinute);
  EXPECT_EQ(t.Downtime(kHour), 10 * kMinute);
  EXPECT_EQ(t.outages(), 1);
  EXPECT_DOUBLE_EQ(t.MttrMicros(), 0.0) << "no completed outage yet";
}

TEST(AvailabilityTest, DoubleMarkIsIdempotent) {
  AvailabilityTracker t;
  t.MarkDown(10 * kMinute);
  t.MarkDown(20 * kMinute);  // Already down: no second outage.
  t.MarkUp(30 * kMinute);
  t.MarkUp(40 * kMinute);
  EXPECT_EQ(t.outages(), 1);
  EXPECT_EQ(t.Downtime(kHour), 20 * kMinute);
}

TEST(AvailabilityTest, NinesComputation) {
  AvailabilityTracker t;
  // 5.26 minutes of downtime in a year ~= five nines (the paper's bar).
  sim::Duration year = 365 * sim::kDay;
  t.MarkDown(0);
  t.MarkUp(static_cast<sim::TimePoint>(5.26 * kMinute));
  double nines = t.Nines(year);
  EXPECT_NEAR(nines, 5.0, 0.01);
}

TEST(AvailabilityTest, PerfectUptimeCapsAtNineNines) {
  AvailabilityTracker t;
  EXPECT_DOUBLE_EQ(t.Nines(kHour), 9.0);
}

TEST(AvailabilityTest, MttfTracksUptimePerOutage) {
  AvailabilityTracker t;
  t.MarkDown(30 * kMinute);
  t.MarkUp(31 * kMinute);
  t.MarkDown(59 * kMinute);
  t.MarkUp(60 * kMinute);
  // Two outages; uptime 58 min over the hour => MTTF 29 min.
  EXPECT_NEAR(t.MttfMicros(kHour), 29.0 * kMinute, 1.0);
}

TEST(AvailabilityTest, SummaryMentionsKeyNumbers) {
  AvailabilityTracker t;
  t.MarkDown(10 * kMinute);
  t.MarkUp(11 * kMinute);
  std::string s = t.Summary(kHour);
  EXPECT_NE(s.find("outages=1"), std::string::npos);
  EXPECT_NE(s.find("availability="), std::string::npos);
}

TEST(TablePrinterTest, FormatHelpers) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(10, 0), "10");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

TEST(TablePrinterTest, RowsPadToHeaderCount) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});  // Short row must not crash Print.
  t.AddRow({"1", "2", "3"});
  t.Print("test");  // Smoke: no crash, output inspected manually.
}

}  // namespace
}  // namespace replidb::metrics
