#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "gcs/group.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace replidb::gcs {
namespace {

using sim::kMillisecond;
using sim::kSecond;

struct GroupEnv {
  sim::Simulator sim;
  std::unique_ptr<net::Network> net;
  std::vector<std::unique_ptr<net::Dispatcher>> dispatchers;
  std::vector<std::unique_ptr<GroupMember>> members;
  std::vector<std::vector<std::pair<net::NodeId, std::string>>> delivered;

  explicit GroupEnv(int n, net::NetworkOptions nopts = {}) {
    nopts.lan_jitter = 0;
    net = std::make_unique<net::Network>(&sim, nopts);
    std::vector<net::NodeId> ids;
    for (int i = 0; i < n; ++i) ids.push_back(i + 1);
    delivered.resize(n);
    for (int i = 0; i < n; ++i) {
      dispatchers.push_back(
          std::make_unique<net::Dispatcher>(net.get(), ids[i]));
      GroupOptions gopts;
      gopts.heartbeat.period = 100 * kMillisecond;
      gopts.heartbeat.timeout = 80 * kMillisecond;
      gopts.heartbeat.miss_threshold = 3;
      members.push_back(std::make_unique<GroupMember>(
          &sim, dispatchers.back().get(), ids, gopts));
      size_t slot = static_cast<size_t>(i);
      members.back()->OnDeliver([this, slot](net::NodeId origin, uint64_t seq,
                                             const std::any& payload) {
        (void)seq;
        delivered[slot].emplace_back(origin,
                                     std::any_cast<std::string>(payload));
      });
    }
  }
};

TEST(GroupTest, AllMembersDeliverAllMessages) {
  GroupEnv env(3);
  env.members[0]->Multicast(std::string("a"));
  env.members[1]->Multicast(std::string("b"));
  env.members[2]->Multicast(std::string("c"));
  env.sim.RunUntil(2 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(env.delivered[i].size(), 3u) << "member " << i;
  }
}

TEST(GroupTest, TotalOrderIsIdenticalEverywhere) {
  GroupEnv env(4);
  // Interleave multicasts from all members over time.
  for (int round = 0; round < 10; ++round) {
    for (int m = 0; m < 4; ++m) {
      env.sim.Schedule((round * 4 + m) * 100, [&env, m, round] {
        env.members[m]->Multicast(std::string(1, static_cast<char>('a' + m)) +
                                  std::to_string(round));
      });
    }
  }
  env.sim.RunUntil(5 * kSecond);
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(env.delivered[i].size(), 40u) << "member " << i;
    EXPECT_EQ(env.delivered[i], env.delivered[0])
        << "delivery order differs at member " << i;
  }
}

TEST(GroupTest, SenderDeliversOwnMessages) {
  GroupEnv env(2);
  env.members[0]->Multicast(std::string("self"));
  env.sim.RunUntil(1 * kSecond);
  ASSERT_EQ(env.delivered[0].size(), 1u);
  EXPECT_EQ(env.delivered[0][0].first, 1);
  EXPECT_EQ(env.members[0]->unordered_backlog(), 0u);
}

TEST(GroupTest, InitialSequencerIsLowestId) {
  GroupEnv env(3);
  env.sim.RunUntil(100 * kMillisecond);
  EXPECT_EQ(env.members[0]->view().sequencer, 1);
  EXPECT_TRUE(env.members[0]->IsSequencer());
  EXPECT_FALSE(env.members[1]->IsSequencer());
}

TEST(GroupTest, SurvivesMessageLoss) {
  net::NetworkOptions nopts;
  nopts.lan_loss_probability = 0.2;
  nopts.seed = 7;
  GroupEnv env(3, nopts);
  for (int i = 0; i < 20; ++i) {
    env.sim.Schedule(i * 10 * kMillisecond, [&env, i] {
      env.members[i % 3]->Multicast(std::string("m") + std::to_string(i));
    });
  }
  env.sim.RunUntil(30 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(env.delivered[i].size(), 20u) << "member " << i;
    EXPECT_EQ(env.delivered[i], env.delivered[0]);
  }
}

TEST(GroupTest, SequencerFailoverContinuesOrdering) {
  GroupEnv env(3);
  env.members[1]->Multicast(std::string("before"));
  env.sim.RunUntil(1 * kSecond);
  ASSERT_EQ(env.delivered[1].size(), 1u);

  env.net->CrashNode(1);  // Kill the sequencer.
  env.sim.RunUntil(3 * kSecond);
  EXPECT_EQ(env.members[1]->view().sequencer, 2) << "next-lowest takes over";

  env.members[2]->Multicast(std::string("after"));
  env.sim.RunUntil(6 * kSecond);
  ASSERT_EQ(env.delivered[1].size(), 2u);
  ASSERT_EQ(env.delivered[2].size(), 2u);
  EXPECT_EQ(env.delivered[1][1].second, "after");
  EXPECT_EQ(env.delivered[1], env.delivered[2]);
}

TEST(GroupTest, MessageInFlightDuringSequencerCrashIsRetransmitted) {
  GroupEnv env(3);
  env.sim.RunUntil(500 * kMillisecond);
  // Multicast and immediately crash the sequencer so the forward is lost.
  env.members[2]->Multicast(std::string("limbo"));
  env.net->CrashNode(1);
  env.sim.RunUntil(10 * kSecond);
  ASSERT_GE(env.delivered[2].size(), 1u);
  EXPECT_EQ(env.delivered[2].back().second, "limbo");
  ASSERT_GE(env.delivered[1].size(), 1u);
  EXPECT_EQ(env.delivered[1].back().second, "limbo");
}

TEST(GroupTest, ViewChangeCallbackFires) {
  GroupEnv env(3);
  int view_changes = 0;
  env.members[2]->OnViewChange([&](const View& v) {
    (void)v;
    ++view_changes;
  });
  env.sim.RunUntil(500 * kMillisecond);
  env.net->CrashNode(1);
  env.sim.RunUntil(3 * kSecond);
  EXPECT_GE(view_changes, 1);
  EXPECT_EQ(env.members[2]->view().members.size(), 2u);
}

TEST(GroupTest, FailbackRestoresMembership) {
  GroupEnv env(3);
  env.sim.RunUntil(500 * kMillisecond);
  env.net->CrashNode(3);
  env.sim.RunUntil(3 * kSecond);
  EXPECT_EQ(env.members[0]->view().members.size(), 2u);
  env.net->RestartNode(3);
  env.sim.RunUntil(6 * kSecond);
  EXPECT_EQ(env.members[0]->view().members.size(), 3u);
}

TEST(GroupTest, ThroughputCountersTrack) {
  GroupEnv env(2);
  for (int i = 0; i < 5; ++i) env.members[0]->Multicast(std::string("x"));
  env.sim.RunUntil(2 * kSecond);
  EXPECT_EQ(env.members[0]->multicasts_sent(), 5u);
  EXPECT_EQ(env.members[0]->delivered_count(), 5u);
  EXPECT_EQ(env.members[1]->delivered_count(), 5u);
  EXPECT_EQ(env.members[0]->last_delivered(), 5u);
}

TEST(GroupTest, LargerGroupsOrderSlower) {
  // The sequencer fan-out cost grows with membership: the paper's
  // "intrinsic scalability limit" (§4.3.4.1).
  auto run = [](int n) {
    GroupEnv env(n);
    const int kMsgs = 200;
    for (int i = 0; i < kMsgs; ++i) {
      env.members[1 % n]->Multicast(std::string("x"));
    }
    env.sim.RunUntil(60 * kSecond);
    EXPECT_EQ(env.members[0]->delivered_count(),
              static_cast<uint64_t>(kMsgs));
    return env.sim.Now();
  };
  // We cannot compare RunUntil end times (fixed); instead compare busy
  // time via delivered-at ordering: measure with a smaller horizon.
  auto measure = [](int n) {
    GroupEnv env(n);
    const int kMsgs = 200;
    for (int i = 0; i < kMsgs; ++i) {
      env.members[0]->Multicast(std::string("x"));
    }
    sim::TimePoint done = 0;
    env.members[0]->OnDeliver([&](net::NodeId, uint64_t seq, const std::any&) {
      if (seq == kMsgs) done = env.sim.Now();
    });
    env.sim.RunUntil(60 * kSecond);
    return done;
  };
  (void)run;
  sim::TimePoint t2 = measure(2);
  sim::TimePoint t8 = measure(8);
  EXPECT_GT(t8, t2) << "ordering 200 messages must take longer in a "
                       "bigger group";
}

}  // namespace
}  // namespace replidb::gcs
