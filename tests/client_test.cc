#include <gtest/gtest.h>

#include "client/connection_pool.h"
#include "middleware/cluster.h"

namespace replidb::client {
namespace {

using sim::kMillisecond;
using sim::kSecond;

// --- ConnectionPool (§4.3.3) --------------------------------------------------

TEST(ConnectionPoolTest, InitialPinsAreBalanced) {
  sim::Simulator sim;
  ConnectionPool::Options o;
  o.size = 30;
  ConnectionPool pool(&sim, {1, 2, 3}, o);
  auto dist = pool.Distribution();
  for (const auto& [endpoint, pins] : dist) {
    (void)endpoint;
    EXPECT_EQ(pins, 10);
  }
  EXPECT_NEAR(pool.Imbalance(), 1.0, 0.01);
}

TEST(ConnectionPoolTest, FailoverReassignsPins) {
  sim::Simulator sim;
  ConnectionPool::Options o;
  o.size = 30;
  ConnectionPool pool(&sim, {1, 2, 3}, o);
  pool.MarkFailed(2);
  auto dist = pool.Distribution();
  EXPECT_EQ(dist.count(2), 0u);
  int total = 0;
  for (const auto& [e, n] : dist) {
    (void)e;
    total += n;
  }
  EXPECT_EQ(total, 30) << "every connection must be repinned";
}

TEST(ConnectionPoolTest, FailbackWithoutRecyclingLeavesRecoveredNodeIdle) {
  // The §4.3.3 pathology verbatim.
  sim::Simulator sim;
  ConnectionPool::Options o;
  o.size = 30;
  o.recycle_after = 0;  // Default pool: connections live forever.
  ConnectionPool pool(&sim, {1, 2, 3}, o);
  pool.MarkFailed(2);
  sim.RunUntil(10 * kSecond);
  pool.MarkRecovered(2);
  // Keep acquiring; nothing moves back.
  for (int i = 0; i < 300; ++i) pool.Acquire();
  auto dist = pool.Distribution();
  EXPECT_EQ(dist[2], 0) << "recovered node gets no traffic without recycling";
  EXPECT_NEAR(pool.Imbalance(), 1.5, 0.01) << "15/10 on survivors";
}

TEST(ConnectionPoolTest, AggressiveRecyclingRebalancesAtACost) {
  sim::Simulator sim;
  ConnectionPool::Options o;
  o.size = 30;
  o.recycle_after = kSecond;
  ConnectionPool pool(&sim, {1, 2, 3}, o);
  pool.MarkFailed(2);
  sim.RunUntil(10 * kSecond);
  pool.MarkRecovered(2);
  uint64_t reconnects_before = pool.reconnects();
  // Drive acquisitions past the recycle age.
  for (int t = 0; t < 5; ++t) {
    sim.RunUntil(sim.Now() + 2 * kSecond);
    for (int i = 0; i < 60; ++i) pool.Acquire();
  }
  auto dist = pool.Distribution();
  EXPECT_GT(dist[2], 0) << "recycling lets failback happen";
  EXPECT_GT(pool.reconnects(), reconnects_before + 25u)
      << "...at the price of constant reconnect churn (§4.3.3)";
}

TEST(ConnectionPoolTest, AcquireAfterTotalFailureReturnsInvalid) {
  sim::Simulator sim;
  ConnectionPool pool(&sim, {1}, ConnectionPool::Options{});
  pool.MarkFailed(1);
  EXPECT_EQ(pool.Acquire(), -1);
  pool.MarkRecovered(1);
  EXPECT_EQ(pool.Acquire(), 1);
}

// --- Rolling upgrade (§4.4.3) ----------------------------------------------------

TEST(RollingUpgradeTest, UpgradesAllReplicasWithoutServiceInterruption) {
  middleware::ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.mode = middleware::ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 200 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.max_retries = 10;
  opts.driver.request_timeout = 500 * kMillisecond;
  middleware::Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE t (id INT PRIMARY KEY, v INT)",
           "INSERT INTO t VALUES (1, 0)"});
  c.Start();

  // Continuous writes throughout the upgrade.
  int committed = 0, failed = 0;
  sim::PeriodicTask writer(&c.sim, 50 * kMillisecond, [&] {
    middleware::TxnRequest req;
    req.statements = {"UPDATE t SET v = v + 1 WHERE id = 1"};
    c.driver()->Submit(std::move(req),
                       [&](const middleware::TxnResult& r) {
                         r.status.ok() ? ++committed : ++failed;
                       });
  });
  writer.Start();

  Status done = Status::Internal("callback never fired");
  c.controller->RollingUpgrade(/*target_version=*/2,
                               /*upgrade_duration=*/2 * kSecond,
                               [&](Status s) { done = s; });
  c.sim.RunFor(60 * kSecond);
  writer.Stop();
  c.sim.RunFor(5 * kSecond);

  ASSERT_TRUE(done.ok()) << done.ToString();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.replica(i)->software_version(), 2) << "replica " << i;
    EXPECT_EQ(c.controller->replica_state(i + 1),
              middleware::Controller::ReplicaState::kOnline);
  }
  EXPECT_GT(committed, 500);
  EXPECT_EQ(failed, 0) << "rolling upgrade must not interrupt service";
  EXPECT_TRUE(c.Converged());
}

TEST(RollingUpgradeTest, AlreadyUpgradedReplicasAreSkipped) {
  middleware::ClusterOptions opts;
  opts.replicas = 2;
  middleware::Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE t (id INT PRIMARY KEY)"});
  c.Start();
  c.replica(0)->set_software_version(2);
  c.replica(1)->set_software_version(2);
  bool fired = false;
  c.controller->RollingUpgrade(2, kSecond, [&](Status s) {
    EXPECT_TRUE(s.ok());
    fired = true;
  });
  c.sim.RunFor(kSecond);
  EXPECT_TRUE(fired) << "no-op upgrade completes immediately";
}

// --- Driver behaviours --------------------------------------------------------

TEST(DriverTest, TracksPerControllerWatermarks) {
  middleware::ClusterOptions opts;
  opts.replicas = 2;
  middleware::Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE t (id INT PRIMARY KEY, v INT)",
           "INSERT INTO t VALUES (1, 0)"});
  c.Start();
  EXPECT_EQ(c.driver()->last_seen_version(0), 0u);
  middleware::TxnRequest req;
  req.statements = {"UPDATE t SET v = 1 WHERE id = 1"};
  bool done = false;
  c.driver()->Submit(std::move(req),
                     [&](const middleware::TxnResult&) { done = true; });
  while (!done) c.sim.RunFor(100 * kMillisecond);
  EXPECT_GT(c.driver()->last_seen_version(0), 0u);
}

TEST(DriverTest, GivesUpAfterMaxRetries) {
  middleware::ClusterOptions opts;
  opts.replicas = 1;
  opts.driver.max_retries = 2;
  opts.driver.request_timeout = 200 * kMillisecond;
  opts.driver.retry_backoff = 10 * kMillisecond;
  middleware::Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE t (id INT PRIMARY KEY)"});
  c.Start();
  c.controller->Crash();  // Nothing will ever answer.
  middleware::TxnRequest req;
  req.statements = {"SELECT * FROM t"};
  req.read_only = true;
  middleware::TxnResult result;
  bool done = false;
  c.driver()->Submit(std::move(req), [&](const middleware::TxnResult& r) {
    result = r;
    done = true;
  });
  c.sim.RunFor(10 * kSecond);
  ASSERT_TRUE(done);
  EXPECT_EQ(result.status.code(), StatusCode::kTimeout);
  EXPECT_EQ(result.retries, 2);
  EXPECT_EQ(c.driver()->gave_up(), 1u);
}

TEST(DriverTest, RetryOfCommittedWriteIsNotReExecuted) {
  // Exactly-once: force a reply loss by crashing the DRIVER-facing path?
  // Simpler: submit the same effects twice via timeout-induced retry with
  // a very slow replica, then verify the increment applied exactly once.
  middleware::ClusterOptions opts;
  opts.replicas = 1;
  opts.controller.mode = middleware::ReplicationMode::kMultiMasterStatement;
  opts.driver.max_retries = 5;
  opts.driver.request_timeout = 100 * kMillisecond;  // Tighter than exec.
  opts.engine.cost_model.commit_us = 200000;         // 200 ms commits.
  middleware::Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE t (id INT PRIMARY KEY, v INT)",
           "INSERT INTO t VALUES (1, 0)"});
  c.Start();
  middleware::TxnRequest req;
  req.statements = {"UPDATE t SET v = v + 1 WHERE id = 1"};
  middleware::TxnResult result;
  bool done = false;
  c.driver()->Submit(std::move(req), [&](const middleware::TxnResult& r) {
    result = r;
    done = true;
  });
  c.sim.RunFor(20 * kSecond);
  ASSERT_TRUE(done);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.retries, 0) << "test needs at least one driver retry";
  engine::Rdbms* db = c.replica(0)->engine();
  engine::SessionId s = db->Connect().value();
  auto check = db->Execute(s, "SELECT v FROM t WHERE id = 1");
  EXPECT_EQ(check.rows[0][0].AsInt(), 1)
      << "the retried write must apply exactly once";
}

}  // namespace
}  // namespace replidb::client
