// Edge cases of the engine's executor, expression evaluator, and
// replication hooks that the main engine_test does not cover.

#include <gtest/gtest.h>

#include <memory>

#include "engine/rdbms.h"

namespace replidb::engine {
namespace {

using sql::Value;

class EngineEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Rdbms>(RdbmsOptions{});
    session_ = db_->Connect().value();
    Must("CREATE TABLE t (id INT PRIMARY KEY, a INT, b DOUBLE, s TEXT)");
    Must("INSERT INTO t VALUES (1, 10, 1.5, 'Hello'), (2, NULL, 2.5, 'World'), "
         "(3, 30, NULL, NULL)");
  }

  ExecResult Exec(const std::string& sql) { return db_->Execute(session_, sql); }
  ExecResult Must(const std::string& sql) {
    ExecResult r = Exec(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status.ToString();
    return r;
  }

  std::unique_ptr<Rdbms> db_;
  SessionId session_ = 0;
};

// --- Expressions ------------------------------------------------------------

TEST_F(EngineEdgeTest, DivisionByZeroIsAStatementError) {
  ExecResult r = Exec("SELECT a / 0 FROM t WHERE id = 1");
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  ExecResult r2 = Exec("UPDATE t SET a = 1 % 0 WHERE id = 1");
  EXPECT_FALSE(r2.ok());
}

TEST_F(EngineEdgeTest, NullArithmeticYieldsNull) {
  ExecResult r = Must("SELECT a + 1 FROM t WHERE id = 2");
  EXPECT_TRUE(r.rows[0][0].is_null());
}

TEST_F(EngineEdgeTest, IntegerAndDoubleArithmetic) {
  ExecResult r = Must("SELECT 7 / 2, 7.0 / 2, 7 % 3, -b FROM t WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);          // Integer division.
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 3.5);
  EXPECT_EQ(r.rows[0][2].AsInt(), 1);
  EXPECT_DOUBLE_EQ(r.rows[0][3].AsDouble(), -1.5);
}

TEST_F(EngineEdgeTest, StringFunctions) {
  ExecResult r = Must("SELECT LOWER(s), UPPER(s) FROM t WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsString(), "hello");
  EXPECT_EQ(r.rows[0][1].AsString(), "HELLO");
  EXPECT_FALSE(Exec("SELECT LOWER(a) FROM t WHERE id = 1").ok())
      << "LOWER of an int is a type error";
}

TEST_F(EngineEdgeTest, AbsOfNegatives) {
  Must("INSERT INTO t VALUES (9, -5, -2.5, 'x')");
  ExecResult r = Must("SELECT ABS(a), ABS(b) FROM t WHERE id = 9");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  EXPECT_DOUBLE_EQ(r.rows[0][1].AsDouble(), 2.5);
}

TEST_F(EngineEdgeTest, IsNullFilters) {
  ExecResult r = Must("SELECT id FROM t WHERE a IS NULL");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 2);
  ExecResult r2 = Must("SELECT COUNT(*) FROM t WHERE s IS NOT NULL");
  EXPECT_EQ(r2.rows[0][0].AsInt(), 2);
}

TEST_F(EngineEdgeTest, UnknownColumnIsAnError) {
  EXPECT_FALSE(Exec("SELECT nope FROM t").ok());
  EXPECT_FALSE(Exec("UPDATE t SET nope = 1").ok());
  EXPECT_FALSE(Exec("SELECT id FROM t ORDER BY nope").ok());
}

// --- Query shape edge cases ----------------------------------------------------

TEST_F(EngineEdgeTest, CountSkipsNullsStarDoesNot) {
  ExecResult r = Must("SELECT COUNT(*), COUNT(a) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsInt(), 2);
}

TEST_F(EngineEdgeTest, LimitZeroReturnsNothing) {
  ExecResult r = Must("SELECT * FROM t LIMIT 0");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(EngineEdgeTest, MultiKeyOrderBy) {
  Must("CREATE TABLE m (id INT PRIMARY KEY, g INT, v INT)");
  Must("INSERT INTO m VALUES (1, 1, 5), (2, 1, 3), (3, 2, 9), (4, 2, 1)");
  ExecResult r = Must("SELECT id FROM m ORDER BY g DESC, v");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 4);
  EXPECT_EQ(r.rows[1][0].AsInt(), 3);
  EXPECT_EQ(r.rows[2][0].AsInt(), 2);
  EXPECT_EQ(r.rows[3][0].AsInt(), 1);
}

TEST_F(EngineEdgeTest, UpdateMatchingNothingAffectsZero) {
  ExecResult r = Must("UPDATE t SET a = 1 WHERE id = 999");
  EXPECT_EQ(r.affected, 0);
}

TEST_F(EngineEdgeTest, MixedAggregateAndColumnRejected) {
  EXPECT_EQ(Exec("SELECT id, COUNT(*) FROM t").status.code(),
            StatusCode::kNotSupported);
}

// --- Primary-key mutations -------------------------------------------------------

TEST_F(EngineEdgeTest, PrimaryKeyUpdateMovesTheRow) {
  Must("UPDATE t SET id = 42 WHERE id = 1");
  EXPECT_TRUE(Must("SELECT * FROM t WHERE id = 42").rows.size() == 1);
  EXPECT_TRUE(Must("SELECT * FROM t WHERE id = 1").rows.empty());
}

TEST_F(EngineEdgeTest, PrimaryKeyUpdateCollisionFails) {
  ExecResult r = Exec("UPDATE t SET id = 2 WHERE id = 1");
  EXPECT_EQ(r.status.code(), StatusCode::kConstraintViolation);
  // And the row is untouched (statement atomicity).
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t WHERE id = 1").rows[0][0].AsInt(), 1);
}

TEST_F(EngineEdgeTest, PkChangeCapturedAsDeletePlusInsert) {
  Must("BEGIN");
  Must("UPDATE t SET id = 50 WHERE id = 3");
  const Writeset* ws = db_->CurrentWriteset(session_);
  ASSERT_NE(ws, nullptr);
  ASSERT_EQ(ws->ops.size(), 2u);
  EXPECT_EQ(ws->ops[0].kind, WriteOpKind::kDelete);
  EXPECT_EQ(ws->ops[0].primary_key.AsInt(), 3);
  EXPECT_EQ(ws->ops[1].kind, WriteOpKind::kInsert);
  EXPECT_EQ(ws->ops[1].primary_key.AsInt(), 50);
  Must("COMMIT");
}

TEST_F(EngineEdgeTest, DeleteThenReinsertSamePkInOneTxn) {
  Must("BEGIN");
  Must("DELETE FROM t WHERE id = 1");
  Must("INSERT INTO t VALUES (1, 99, 0.0, 'reborn')");
  Must("COMMIT");
  ExecResult r = Must("SELECT a FROM t WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 99);
}

// --- Replication hooks -----------------------------------------------------------

TEST_F(EngineEdgeTest, ApplyWritesetUpsertsMissingUpdateTarget) {
  Writeset ws;
  WriteOp op;
  op.kind = WriteOpKind::kUpdate;
  op.database = "main";
  op.table = "t";
  op.primary_key = Value::Int(777);
  op.after = {Value::Int(777), Value::Int(1), Value::Double(1.0),
              Value::String("upsert")};
  ws.ops.push_back(op);
  ASSERT_TRUE(db_->ApplyWriteset(ws).ok());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t WHERE id = 777").rows[0][0].AsInt(), 1);
}

TEST_F(EngineEdgeTest, ApplyWritesetDeleteOfMissingRowIsIdempotent) {
  Writeset ws;
  WriteOp op;
  op.kind = WriteOpKind::kDelete;
  op.database = "main";
  op.table = "t";
  op.primary_key = Value::Int(12345);
  ws.ops.push_back(op);
  EXPECT_TRUE(db_->ApplyWriteset(ws).ok());
}

TEST_F(EngineEdgeTest, ApplyWritesetRollsBackAtomicallyOnError) {
  Writeset ws;
  for (int i = 0; i < 2; ++i) {
    WriteOp op;
    op.kind = WriteOpKind::kInsert;
    op.database = "main";
    op.table = i == 0 ? "t" : "missing_table";
    op.primary_key = Value::Int(600 + i);
    op.after = {Value::Int(600 + i), Value::Int(0), Value::Double(0),
                Value::Null()};
    ws.ops.push_back(op);
  }
  EXPECT_FALSE(db_->ApplyWriteset(ws).ok());
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t WHERE id = 600").rows[0][0].AsInt(), 0)
      << "failed writeset apply must leave nothing behind";
}

TEST_F(EngineEdgeTest, HotBackupIsReadConsistentDespiteOpenTxn) {
  SessionId other = db_->Connect().value();
  db_->Execute(other, "BEGIN");
  db_->Execute(other, "UPDATE t SET a = 999 WHERE id = 1");
  BackupImage img = db_->Backup(BackupOptions{}).value();
  db_->Execute(other, "COMMIT");
  Rdbms clone{RdbmsOptions{}};
  ASSERT_TRUE(clone.Restore(img).ok());
  SessionId cs = clone.Connect().value();
  ExecResult r = clone.Execute(cs, "SELECT a FROM t WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10)
      << "backup must not contain uncommitted data";
}

TEST_F(EngineEdgeTest, AutoIncrementBumpsPastExplicitValues) {
  Must("CREATE TABLE ai (id INT PRIMARY KEY AUTO_INCREMENT, v INT)");
  Must("INSERT INTO ai (id, v) VALUES (100, 1)");
  Must("INSERT INTO ai (v) VALUES (2)");
  ExecResult r = Must("SELECT MAX(id) FROM ai");
  EXPECT_EQ(r.rows[0][0].AsInt(), 101);
}

TEST_F(EngineEdgeTest, TriggerRecursionIsBounded) {
  Must("CREATE TABLE loopy (id INT PRIMARY KEY AUTO_INCREMENT, v INT)");
  TriggerDef t;
  t.name = "self_feeding";
  t.database = "main";
  t.table = "loopy";
  t.event = WriteOpKind::kInsert;
  t.action = [](Rdbms* db, SessionId sid, const WriteOp&) {
    // Inserting into the table the trigger watches: unbounded without a cap.
    return db->Execute(sid, "INSERT INTO loopy (v) VALUES (1)").status;
  };
  db_->RegisterTrigger(std::move(t));
  ExecResult r = Exec("INSERT INTO loopy (v) VALUES (0)");
  EXPECT_TRUE(r.ok());
  ExecResult count = Must("SELECT COUNT(*) FROM loopy");
  EXPECT_LE(count.rows[0][0].AsInt(), 16) << "recursion must be capped";
}

TEST(EngineDialectEdgeTest, TempTablesDroppedOnCommitDialect) {
  RdbmsOptions opts;
  opts.dialect.temp_tables_dropped_on_commit = true;
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  db.Execute(s, "BEGIN");
  ASSERT_TRUE(db.Execute(s, "CREATE TEMPORARY TABLE tmp (x INT)").ok());
  ASSERT_TRUE(db.Execute(s, "INSERT INTO tmp VALUES (1)").ok());
  ASSERT_TRUE(db.Execute(s, "COMMIT").ok());
  EXPECT_FALSE(db.Execute(s, "SELECT * FROM tmp").ok())
      << "this dialect frees temp tables at COMMIT (§4.1.4)";
}

TEST(EngineDialectEdgeTest, SingleDatabaseDialectRefusesCreateDatabase) {
  RdbmsOptions opts;
  opts.dialect.supports_multiple_databases = false;
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  EXPECT_EQ(db.Execute(s, "CREATE DATABASE other").status.code(),
            StatusCode::kNotSupported);
}

TEST_F(EngineEdgeTest, ProcedureArgumentsAreEvaluated) {
  db_->RegisterProcedure("set_a", [](ProcedureContext* ctx) {
    return ctx
        ->Exec("UPDATE t SET a = " + ctx->args()[1].ToString() +
               " WHERE id = " + ctx->args()[0].ToString())
        .status;
  });
  Must("CALL set_a(1, 2 + 3)");
  EXPECT_EQ(Must("SELECT a FROM t WHERE id = 1").rows[0][0].AsInt(), 5);
}

TEST_F(EngineEdgeTest, StatsCountersAdvance) {
  uint64_t scanned_before = db_->stats().rows_scanned;
  Must("SELECT * FROM t");
  EXPECT_GT(db_->stats().rows_scanned, scanned_before);
  uint64_t written_before = db_->stats().rows_written;
  Must("UPDATE t SET a = 1 WHERE id = 1");
  EXPECT_GT(db_->stats().rows_written, written_before);
}

}  // namespace
}  // namespace replidb::engine
