// Sim-scheduler determinism harness: every tier-1 scenario must produce
// *identical* commit sequences and table digests no matter what
// REPLIDB_HASH_SEED perturbs the unordered-container hash order to.
//
// This is the runtime teeth behind replicheck's `unordered-iter` rule: a
// latent iteration over a hash container that reaches the replication
// stream passes every functional test (iteration order is stable within
// one build), but differs between two runs with different hash seeds —
// turning the silent-divergence hazard of the paper's §4 into a hard,
// attributable failure here.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/hashing.h"
#include "common/rng.h"
#include "engine/rdbms.h"
#include "middleware/cluster.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb {
namespace {

using middleware::Cluster;
using middleware::ClusterOptions;
using middleware::ReplicationMode;
using sim::kSecond;

/// Mixed read/write workload touching two tables, with enough write
/// concurrency to exercise certification kills, held-transaction wipes,
/// and the ship pipeline — the code paths that iterate containers.
class MixedWorkload : public workload::Workload {
 public:
  std::vector<std::string> SetupStatements() const override {
    std::vector<std::string> s;
    s.push_back(
        "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT, owner "
        "VARCHAR(32))");
    s.push_back("CREATE TABLE audit_log (id INT PRIMARY KEY, note VARCHAR(64))");
    for (int i = 0; i < 40; ++i) {
      s.push_back("INSERT INTO accounts VALUES (" + std::to_string(i) + ", " +
                  std::to_string(1000 + i) + ", 'user" + std::to_string(i) +
                  "')");
    }
    return s;
  }

  middleware::TxnRequest Next(Rng* rng) override {
    middleware::TxnRequest req;
    uint64_t pick = rng->Uniform(10);
    if (pick < 5) {
      req.read_only = true;
      req.statements.push_back(
          "SELECT * FROM accounts WHERE id = " +
          std::to_string(rng->UniformRange(0, 39)));
    } else if (pick < 8) {
      req.read_only = false;
      req.statements.push_back(
          "UPDATE accounts SET balance = balance + " +
          std::to_string(rng->UniformRange(1, 9)) + " WHERE id = " +
          std::to_string(rng->UniformRange(0, 39)));
    } else {
      req.read_only = false;
      int id = static_cast<int>(next_log_id_++);
      req.statements.push_back("INSERT INTO audit_log VALUES (" +
                               std::to_string(id) + ", 'note" +
                               std::to_string(id % 7) + "')");
    }
    return req;
  }

 private:
  uint64_t next_log_id_ = 1;
};

/// Serialized observable outcome of one run: per-replica commit sequence
/// (binlog order, statements, conflict keys) and per-replica table digests.
std::string Fingerprint(const Cluster& c) {
  std::ostringstream out;
  for (size_t r = 0; r < c.replicas.size(); ++r) {
    const engine::Rdbms& db = *c.replicas[r]->engine();
    out << "replica " << r << " commits:\n";
    for (const engine::BinlogEntry& e : db.binlog()) {
      out << "  seq=" << e.commit_seq;
      for (const std::string& s : e.statements) out << " stmt{" << s << "}";
      for (const std::string& k : e.writeset.ConflictKeys()) {
        out << " key{" << k << "}";
      }
      out << "\n";
    }
    out << "replica " << r << " digests:\n";
    for (const auto& [table, digest] : db.TableDigests()) {
      out << "  " << table << "=" << digest << "\n";
    }
  }
  return out.str();
}

std::string RunScenario(ReplicationMode mode, uint64_t hash_seed) {
  // Perturb hash order for every container constructed from here on. The
  // workload/scenario seeds stay fixed: the only degree of freedom between
  // two runs is unordered-container iteration order.
  SetHashSeed(hash_seed);
  MixedWorkload w;
  ClusterOptions opts;
  opts.replicas = 3;
  opts.drivers = 1;
  opts.controller.mode = mode;
  opts.controller.seed = 42;
  Cluster c(std::move(opts));
  c.Setup(w.SetupStatements());
  c.Start();
  workload::ClosedLoopGenerator gen(&c.sim, c.driver(), &w, /*clients=*/8,
                                    /*think=*/0, /*seed=*/42);
  gen.Run(3 * kSecond);
  c.sim.RunFor(kSecond);  // Drain shipping/apply backlogs.
  std::string fp = Fingerprint(c);
  SetHashSeed(0);
  return fp;
}

class SimDeterminismTest
    : public ::testing::TestWithParam<ReplicationMode> {};

TEST_P(SimDeterminismTest, CommitSequenceAndDigestsAreHashSeedInvariant) {
  const std::string a = RunScenario(GetParam(), 0x00C0FFEEu);
  const std::string b = RunScenario(GetParam(), 0xFEEDFACEDEADBEEFu);
  ASSERT_FALSE(a.empty());
  ASSERT_NE(a.find("stmt{"), std::string::npos)
      << "scenario must commit some writes";
  EXPECT_EQ(a, b)
      << "commit sequence or table digests changed with the hash seed: an "
         "unordered-container iteration order is leaking into the "
         "replication stream (see replicheck's unordered-iter rule)";
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, SimDeterminismTest,
    ::testing::Values(ReplicationMode::kMasterSlaveAsync,
                      ReplicationMode::kMasterSlaveSync,
                      ReplicationMode::kMultiMasterStatement,
                      ReplicationMode::kMultiMasterCertification),
    [](const ::testing::TestParamInfo<ReplicationMode>& info) {
      switch (info.param) {
        case ReplicationMode::kMasterSlaveAsync: return std::string("MasterSlaveAsync");
        case ReplicationMode::kMasterSlaveSync: return std::string("MasterSlaveSync");
        case ReplicationMode::kMultiMasterStatement: return std::string("MultiMasterStatement");
        case ReplicationMode::kMultiMasterCertification: return std::string("MultiMasterCertification");
      }
      return std::string("Unknown");
    });

TEST(HashSeedTest, SeedActuallyPerturbsIterationOrder) {
  // The harness is vacuous if the seed doesn't move iteration order: build
  // the same map under two seeds and require different traversals (with
  // enough elements, identical order under both seeds is ~impossible).
  auto order_under = [](uint64_t seed) {
    SetHashSeed(seed);
    HashMap<int, int> m;
    for (int i = 0; i < 200; ++i) m[i] = i;
    std::string order;
    for (const auto& [k, v] : m) order += std::to_string(k) + ",";
    SetHashSeed(0);
    return order;
  };
  EXPECT_NE(order_under(0x1234), order_under(0xABCDEF0123456789u))
      << "SeededHash must vary bucket assignment with the seed";
}

TEST(HashSeedTest, EnvSeedIsReadable) {
  // REPLIDB_HASH_SEED is consumed at first use; the in-process override
  // must round-trip so the double-run harness can perturb reliably.
  uint64_t prev = HashSeed();
  SetHashSeed(77);
  EXPECT_EQ(HashSeed(), 77u);
  SetHashSeed(prev);
}

}  // namespace
}  // namespace replidb
