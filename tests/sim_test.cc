#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace replidb::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.Schedule(30, [&] { order.push_back(3); });
  sim.Schedule(10, [&] { order.push_back(1); });
  sim.Schedule(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, SameTimeIsFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) sim.Schedule(5, [&order, i] { order.push_back(i); });
  sim.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimulatorTest, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] {
    EXPECT_EQ(sim.Now(), 10);
    sim.Schedule(5, [&] {
      EXPECT_EQ(sim.Now(), 15);
      ++fired;
    });
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelPreventsExecution) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(20, [&] { ++fired; });
  sim.Cancel(id);
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, CancelAfterFireIsNoop) {
  Simulator sim;
  int fired = 0;
  EventId id = sim.Schedule(1, [&] { ++fired; });
  sim.Run();
  sim.Cancel(id);  // Must not crash or affect later events.
  sim.Schedule(1, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50);
  sim.Run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.Now(), 100);
}

TEST(SimulatorTest, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.RunUntil(12345);
  EXPECT_EQ(sim.Now(), 12345);
}

TEST(SimulatorTest, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.RunUntil(100);
  int fired = 0;
  sim.Schedule(-50, [&] {
    EXPECT_EQ(sim.Now(), 100);
    ++fired;
  });
  sim.Run();
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, RequestStopHaltsRun) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(1, [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.Schedule(2, [&] { ++fired; });
  sim.Run();
  EXPECT_EQ(fired, 1);
  sim.Run();  // Resumes with remaining events.
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsExecutedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

TEST(PeriodicTaskTest, FiresEveryPeriod) {
  Simulator sim;
  std::vector<TimePoint> fire_times;
  PeriodicTask task(&sim, 10, [&] { fire_times.push_back(sim.Now()); });
  task.Start();
  sim.RunUntil(55);
  task.Stop();
  EXPECT_EQ(fire_times, (std::vector<TimePoint>{10, 20, 30, 40, 50}));
}

TEST(PeriodicTaskTest, StartAfterCustomDelay) {
  Simulator sim;
  std::vector<TimePoint> fire_times;
  PeriodicTask task(&sim, 10, [&] { fire_times.push_back(sim.Now()); });
  task.StartAfter(0);
  sim.RunUntil(25);
  task.Stop();
  EXPECT_EQ(fire_times, (std::vector<TimePoint>{0, 10, 20}));
}

TEST(PeriodicTaskTest, StopFromWithinCallback) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(&sim, 10, [&] {
    if (++count == 3) task.Stop();
  });
  task.Start();
  sim.RunUntil(1000);
  EXPECT_EQ(count, 3);
}

TEST(PeriodicTaskTest, DoubleStartIsNoop) {
  Simulator sim;
  int count = 0;
  PeriodicTask task(&sim, 10, [&] { ++count; });
  task.Start();
  task.Start();
  sim.RunUntil(35);
  task.Stop();
  EXPECT_EQ(count, 3);
}

TEST(SimTimeTest, Conversions) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_DOUBLE_EQ(ToSeconds(2 * kSecond), 2.0);
  EXPECT_DOUBLE_EQ(ToMillis(kSecond), 1000.0);
}

}  // namespace
}  // namespace replidb::sim
