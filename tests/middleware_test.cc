#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "middleware/cluster.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::middleware {
namespace {

using sim::kMillisecond;
using sim::kSecond;

std::vector<std::string> AccountsSetup(int rows = 100) {
  std::vector<std::string> out;
  out.push_back("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)");
  std::string batch = "INSERT INTO accounts VALUES ";
  for (int i = 0; i < rows; ++i) {
    if (i) batch += ", ";
    batch += "(" + std::to_string(i) + ", 100)";
  }
  out.push_back(batch);
  return out;
}

TxnRequest Write(const std::string& sql) {
  TxnRequest r;
  r.statements = {sql};
  r.read_only = false;
  return r;
}

TxnRequest Read(const std::string& sql) {
  TxnRequest r;
  r.statements = {sql};
  r.read_only = true;
  return r;
}

/// Submits a txn and runs the simulator until its result arrives.
TxnResult RunTxn(Cluster* c, TxnRequest req, int driver = 0) {
  TxnResult out;
  bool done = false;
  c->driver(driver)->Submit(std::move(req), [&](const TxnResult& r) {
    out = r;
    done = true;
  });
  for (int i = 0; i < 300 && !done; ++i) c->sim.RunFor(250 * kMillisecond);
  EXPECT_TRUE(done) << "transaction never completed";
  return out;
}

std::unique_ptr<Cluster> MakeCluster(ReplicationMode mode, int replicas = 3,
                                     ConsistencyLevel consistency =
                                         ConsistencyLevel::kSessionPCSI) {
  ClusterOptions opts;
  opts.replicas = replicas;
  opts.controller.mode = mode;
  opts.controller.consistency = consistency;
  auto c = std::make_unique<Cluster>(std::move(opts));
  c->Setup(AccountsSetup());
  c->Start();
  return c;
}

class AllModesTest : public ::testing::TestWithParam<ReplicationMode> {};

INSTANTIATE_TEST_SUITE_P(
    Modes, AllModesTest,
    ::testing::Values(ReplicationMode::kMasterSlaveAsync,
                      ReplicationMode::kMasterSlaveSync,
                      ReplicationMode::kMultiMasterStatement,
                      ReplicationMode::kMultiMasterCertification),
    [](const ::testing::TestParamInfo<ReplicationMode>& info) {
      switch (info.param) {
        case ReplicationMode::kMasterSlaveAsync: return std::string("MsAsync");
        case ReplicationMode::kMasterSlaveSync: return std::string("MsSync");
        case ReplicationMode::kMultiMasterStatement: return std::string("MmStmt");
        case ReplicationMode::kMultiMasterCertification: return std::string("MmCert");
      }
      return std::string("Unknown");
    });

TEST_P(AllModesTest, WriteCommitsAndReadSeesIt) {
  auto c = MakeCluster(GetParam());
  TxnResult w = RunTxn(c.get(),
                       Write("UPDATE accounts SET balance = 555 WHERE id = 7"));
  ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  EXPECT_GT(w.version, 0u);
  TxnResult r = RunTxn(c.get(), Read("SELECT balance FROM accounts WHERE id = 7"));
  ASSERT_TRUE(r.status.ok());
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 555)
      << "session consistency: read-your-writes";
}

TEST_P(AllModesTest, AllReplicasConverge) {
  auto c = MakeCluster(GetParam());
  for (int i = 0; i < 20; ++i) {
    TxnResult w = RunTxn(
        c.get(), Write("UPDATE accounts SET balance = balance + 1 WHERE id = " +
                       std::to_string(i % 10)));
    ASSERT_TRUE(w.status.ok()) << w.status.ToString();
  }
  c->sim.RunFor(5 * kSecond);  // Drain async shipping / applies.
  EXPECT_TRUE(c->Converged()) << "replicas diverged under "
                              << ReplicationModeName(GetParam());
  EXPECT_EQ(c->TotalApplyErrors(), 0u);
}

TEST_P(AllModesTest, InsertsReplicate) {
  auto c = MakeCluster(GetParam());
  TxnResult w = RunTxn(c.get(), Write("INSERT INTO accounts VALUES (900, 1)"));
  ASSERT_TRUE(w.status.ok());
  c->sim.RunFor(5 * kSecond);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c->replica(i)->engine()->TableRowCount("main", "accounts"), 101u)
        << "replica " << i;
  }
}

TEST_P(AllModesTest, EngineErrorPropagatesToClient) {
  auto c = MakeCluster(GetParam());
  TxnResult w = RunTxn(c.get(), Write("INSERT INTO accounts VALUES (7, 0)"));
  EXPECT_EQ(w.status.code(), StatusCode::kConstraintViolation)
      << w.status.ToString();
  c->sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c->Converged());
}

TEST_P(AllModesTest, MultiStatementTransactionIsAtomic) {
  auto c = MakeCluster(GetParam());
  TxnRequest txn;
  txn.read_only = false;
  txn.statements = {
      "UPDATE accounts SET balance = balance - 50 WHERE id = 1",
      "UPDATE accounts SET balance = balance + 50 WHERE id = 2",
  };
  TxnResult w = RunTxn(c.get(), txn);
  ASSERT_TRUE(w.status.ok());
  c->sim.RunFor(5 * kSecond);
  TxnResult r = RunTxn(c.get(), Read("SELECT SUM(balance) FROM accounts"));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0][0].AsInt(), 100 * 100) << "money conserved";
  EXPECT_TRUE(c->Converged());
}

// --- Master-slave specifics -------------------------------------------------

TEST(MasterSlaveTest, SlavesLagBehindMasterUntilShipped) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.replica.ship_interval = 500 * kMillisecond;  // Wide loss window.
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult w = RunTxn(&c, Write("UPDATE accounts SET balance = 1 WHERE id = 0"));
  ASSERT_TRUE(w.status.ok());
  // Immediately after the ack, slaves have not applied yet (1-safe).
  EXPECT_LT(c.replica(1)->applied_version(), w.version);
  c.sim.RunFor(2 * kSecond);
  EXPECT_GE(c.replica(1)->applied_version(), w.version);
}

TEST(MasterSlaveTest, TwoSafeWaitsForSlaveReceipt) {
  ClusterOptions a, b;
  for (auto* o : {&a, &b}) {
    o->replica.ship_interval = 200 * kMillisecond;
  }
  a.controller.mode = ReplicationMode::kMasterSlaveAsync;
  b.controller.mode = ReplicationMode::kMasterSlaveSync;
  Cluster ca(std::move(a)), cb(std::move(b));
  for (Cluster* c : {&ca, &cb}) {
    c->Setup(AccountsSetup());
    c->Start();
  }
  TxnResult w_async =
      RunTxn(&ca, Write("UPDATE accounts SET balance = 1 WHERE id = 0"));
  TxnResult w_sync =
      RunTxn(&cb, Write("UPDATE accounts SET balance = 1 WHERE id = 0"));
  ASSERT_TRUE(w_async.status.ok());
  ASSERT_TRUE(w_sync.status.ok());
  EXPECT_GT(w_sync.latency, w_async.latency)
      << "2-safe must pay the slave round trip (§2.2)";
}

TEST(MasterSlaveTest, FailoverPromotesSlaveAndWritesResume) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 150 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  ASSERT_TRUE(
      RunTxn(&c, Write("UPDATE accounts SET balance = 1 WHERE id = 0")).status.ok());
  c.sim.RunFor(2 * kSecond);
  net::NodeId old_master = c.controller->master();
  c.replica(0)->Crash();  // Master is replica index 0 (node id 1).
  c.sim.RunFor(3 * kSecond);
  EXPECT_NE(c.controller->master(), old_master);
  EXPECT_EQ(c.controller->stats().failovers, 1u);
  TxnResult w = RunTxn(&c, Write("UPDATE accounts SET balance = 2 WHERE id = 0"));
  EXPECT_TRUE(w.status.ok()) << "writes must resume on the new master: "
                             << w.status.ToString();
}

TEST(MasterSlaveTest, OneSafeLosesUnshippedCommitsOnFailover) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.replica.ship_interval = 10 * kSecond;  // Nothing ships in time.
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 150 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(RunTxn(&c, Write("UPDATE accounts SET balance = 9 WHERE id = " +
                                 std::to_string(i)))
                    .status.ok());
  }
  c.replica(0)->Crash();
  c.sim.RunFor(3 * kSecond);
  EXPECT_EQ(c.controller->stats().lost_transactions, 5u)
      << "all five acked commits were inside the unshipped window";
}

TEST(MasterSlaveTest, TwoSafeLosesNothingOnFailover) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveSync;
  opts.replica.ship_interval = 10 * kSecond;  // Periodic shipping idle...
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 150 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  for (int i = 0; i < 5; ++i) {
    // ...but 2-safe ships at commit: every ack implies slave receipt.
    ASSERT_TRUE(RunTxn(&c, Write("UPDATE accounts SET balance = 9 WHERE id = " +
                                 std::to_string(i)))
                    .status.ok());
  }
  c.replica(0)->Crash();
  c.sim.RunFor(3 * kSecond);
  EXPECT_EQ(c.controller->stats().lost_transactions, 0u);
}

TEST(MasterSlaveTest, CrashedSlaveResyncsAndConverges) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 150 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  c.replica(2)->Crash();
  c.sim.RunFor(2 * kSecond);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunTxn(&c, Write("UPDATE accounts SET balance = balance + 1 "
                                 "WHERE id = " + std::to_string(i)))
                    .status.ok());
  }
  c.replica(2)->Restart();
  c.sim.RunFor(10 * kSecond);
  EXPECT_EQ(c.controller->replica_state(3), Controller::ReplicaState::kOnline);
  EXPECT_GE(c.controller->stats().resyncs_completed, 1u);
  EXPECT_TRUE(c.Converged()) << "rejoined slave must catch up";
}

// --- Consistency levels -------------------------------------------------------

TEST(ConsistencyTest, EventualReadsCanBeStale) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.consistency = ConsistencyLevel::kEventual;
  opts.controller.reads_on_master = false;  // Force slave reads.
  opts.replica.ship_interval = 2 * kSecond;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  ASSERT_TRUE(
      RunTxn(&c, Write("UPDATE accounts SET balance = 777 WHERE id = 3")).status.ok());
  TxnResult r = RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 3"));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0][0].AsInt(), 100) << "stale slave read is allowed";
  EXPECT_GE(r.staleness, 1u);
}

TEST(ConsistencyTest, SessionPcsiGuaranteesReadYourWrites) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.consistency = ConsistencyLevel::kSessionPCSI;
  opts.controller.reads_on_master = false;
  opts.replica.ship_interval = 300 * kMillisecond;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  ASSERT_TRUE(
      RunTxn(&c, Write("UPDATE accounts SET balance = 777 WHERE id = 3")).status.ok());
  TxnResult r = RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 3"));
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0][0].AsInt(), 777)
      << "session PCSI must wait for the session's own write";
}

TEST(ConsistencyTest, OtherSessionMayStillReadStaleUnderPcsi) {
  ClusterOptions opts;
  opts.drivers = 2;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.consistency = ConsistencyLevel::kSessionPCSI;
  opts.controller.reads_on_master = false;
  opts.replica.ship_interval = 2 * kSecond;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  ASSERT_TRUE(
      RunTxn(&c, Write("UPDATE accounts SET balance = 777 WHERE id = 3"), 0)
          .status.ok());
  TxnResult r =
      RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 3"), 1);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.rows[0][0].AsInt(), 100)
      << "PCSI is per-session; another session may read older state";
}

TEST(ConsistencyTest, StrongSiNeverServesStaleReads) {
  ClusterOptions opts;
  opts.drivers = 2;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  opts.controller.consistency = ConsistencyLevel::kStrongSI;
  opts.replica.ship_interval = 300 * kMillisecond;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunTxn(&c, Write("UPDATE accounts SET balance = " +
                                 std::to_string(i) + " WHERE id = 3"), 0)
                    .status.ok());
    TxnResult r =
        RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 3"), 1);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.rows[0][0].AsInt(), i) << "strong SI read must be fresh";
  }
  EXPECT_EQ(c.controller->max_read_staleness(), 0u);
}

// --- Statement-mode non-determinism (§4.3.2) ---------------------------------

TEST(StatementModeTest, NowIsRewrittenAndReplicasConverge) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  opts.clock_skew_per_replica = 1000000;  // 1 s skew per replica.
  Cluster c(std::move(opts));
  c.Setup({"CREATE TABLE events (id INT PRIMARY KEY, ts INT)"});
  c.Start();
  TxnResult w = RunTxn(&c, Write("INSERT INTO events VALUES (1, NOW())"));
  ASSERT_TRUE(w.status.ok());
  c.sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c.Converged())
      << "NOW() must be rewritten to a literal before broadcast";
}

TEST(StatementModeTest, PerRowRandIsRefusedByDefault) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult w = RunTxn(&c, Write("UPDATE accounts SET balance = RAND()"));
  EXPECT_EQ(w.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(c.controller->stats().rejected_nondeterministic, 1u);
}

TEST(StatementModeTest, PerRowRandDivergesWhenBroadcastAnyway) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  opts.controller.nondeterminism = NonDeterminismPolicy::kBroadcastAnyway;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult w = RunTxn(&c, Write("UPDATE accounts SET balance = RAND()"));
  ASSERT_TRUE(w.status.ok());
  c.sim.RunFor(5 * kSecond);
  EXPECT_FALSE(c.Converged())
      << "the paper's UPDATE t SET x=rand() example must diverge";
  EXPECT_EQ(c.controller->stats().unsafe_broadcasts, 1u);
}

TEST(StatementModeTest, UnorderedLimitSubqueryDiverges) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  opts.controller.nondeterminism = NonDeterminismPolicy::kBroadcastAnyway;
  Cluster c(std::move(opts));
  std::vector<std::string> setup = {
      "CREATE TABLE foo (id INT PRIMARY KEY, keyvalue TEXT)"};
  std::string batch = "INSERT INTO foo VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i) batch += ", ";
    batch += "(" + std::to_string(i) + ", NULL)";
  }
  setup.push_back(batch);
  c.Setup(setup);
  c.Start();
  // The paper's exact example.
  TxnResult w = RunTxn(&c, Write(
      "UPDATE foo SET keyvalue = 'x' WHERE id IN "
      "(SELECT id FROM foo WHERE keyvalue = NULL LIMIT 10)"));
  ASSERT_TRUE(w.status.ok());
  c.sim.RunFor(5 * kSecond);
  EXPECT_FALSE(c.Converged())
      << "LIMIT without ORDER BY picks different rows per replica";
}

TEST(StatementModeTest, OrderedLimitSubqueryStaysConsistent) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMultiMasterStatement;
  Cluster c(std::move(opts));
  std::vector<std::string> setup = {
      "CREATE TABLE foo (id INT PRIMARY KEY, keyvalue TEXT)"};
  std::string batch = "INSERT INTO foo VALUES ";
  for (int i = 0; i < 40; ++i) {
    if (i) batch += ", ";
    batch += "(" + std::to_string(i) + ", NULL)";
  }
  setup.push_back(batch);
  c.Setup(setup);
  c.Start();
  TxnResult w = RunTxn(&c, Write(
      "UPDATE foo SET keyvalue = 'x' WHERE id IN "
      "(SELECT id FROM foo WHERE keyvalue = NULL ORDER BY id LIMIT 10)"));
  ASSERT_TRUE(w.status.ok());
  c.sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c.Converged()) << "ORDER BY makes the LIMIT deterministic";
}

// --- Certification mode --------------------------------------------------------

TEST(CertificationTest, ConflictingConcurrentWritesOneAborts) {
  ClusterOptions opts;
  opts.drivers = 2;
  opts.controller.mode = ReplicationMode::kMultiMasterCertification;
  opts.driver.max_retries = 0;  // Surface the conflict.
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  c.driver(0)->Submit(Write("UPDATE accounts SET balance = 1 WHERE id = 5"),
                      [&](const TxnResult& r) { r1 = r; d1 = true; });
  c.driver(1)->Submit(Write("UPDATE accounts SET balance = 2 WHERE id = 5"),
                      [&](const TxnResult& r) { r2 = r; d2 = true; });
  c.sim.RunFor(10 * kSecond);
  ASSERT_TRUE(d1 && d2);
  int ok_count = (r1.status.ok() ? 1 : 0) + (r2.status.ok() ? 1 : 0);
  EXPECT_EQ(ok_count, 1) << "exactly one of two conflicting writes commits: "
                         << r1.status.ToString() << " / "
                         << r2.status.ToString();
  c.sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c.Converged());
}

TEST(CertificationTest, NonConflictingConcurrentWritesBothCommit) {
  ClusterOptions opts;
  opts.drivers = 2;
  opts.controller.mode = ReplicationMode::kMultiMasterCertification;
  opts.driver.max_retries = 0;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  c.driver(0)->Submit(Write("UPDATE accounts SET balance = 1 WHERE id = 5"),
                      [&](const TxnResult& r) { r1 = r; d1 = true; });
  c.driver(1)->Submit(Write("UPDATE accounts SET balance = 2 WHERE id = 6"),
                      [&](const TxnResult& r) { r2 = r; d2 = true; });
  c.sim.RunFor(10 * kSecond);
  ASSERT_TRUE(d1 && d2);
  EXPECT_TRUE(r1.status.ok());
  EXPECT_TRUE(r2.status.ok());
  c.sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c.Converged());
}

TEST(CertificationTest, DriverRetriesConflictsTransparently) {
  ClusterOptions opts;
  opts.drivers = 2;
  opts.controller.mode = ReplicationMode::kMultiMasterCertification;
  opts.driver.max_retries = 5;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  TxnResult r1, r2;
  bool d1 = false, d2 = false;
  c.driver(0)->Submit(
      Write("UPDATE accounts SET balance = balance + 1 WHERE id = 5"),
      [&](const TxnResult& r) { r1 = r; d1 = true; });
  c.driver(1)->Submit(
      Write("UPDATE accounts SET balance = balance + 1 WHERE id = 5"),
      [&](const TxnResult& r) { r2 = r; d2 = true; });
  c.sim.RunFor(10 * kSecond);
  ASSERT_TRUE(d1 && d2);
  EXPECT_TRUE(r1.status.ok());
  EXPECT_TRUE(r2.status.ok()) << "retry absorbs the certification abort";
  c.sim.RunFor(5 * kSecond);
  TxnResult check = RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 5"));
  EXPECT_EQ(check.rows[0][0].AsInt(), 102) << "both increments applied once";
}

// --- Management / SPOF ----------------------------------------------------------

TEST(ManagementTest, AddReplicaOnlineAndServes) {
  ClusterOptions opts;
  opts.controller.mode = ReplicationMode::kMasterSlaveAsync;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(RunTxn(&c, Write("UPDATE accounts SET balance = balance + 1 "
                                 "WHERE id = " + std::to_string(i)))
                    .status.ok());
  }
  // Brand-new empty node.
  engine::RdbmsOptions eopts = c.options.engine;
  eopts.name = "replica-new";
  eopts.physical_seed = 7777;
  ReplicaNode fresh(&c.sim, c.network.get(), 50, eopts, c.options.replica);
  Status add_status = Status::Internal("callback never fired");
  c.controller->AddReplica(&fresh, /*donor=*/2,
                           [&](Status s) { add_status = s; });
  c.sim.RunFor(20 * kSecond);
  ASSERT_TRUE(add_status.ok()) << add_status.ToString();
  EXPECT_EQ(c.controller->replica_state(50), Controller::ReplicaState::kOnline);
  EXPECT_EQ(fresh.engine()->ContentHash(),
            c.replica(0)->engine()->ContentHash())
      << "cloned replica must match the cluster";
}

TEST(ManagementTest, BackupViaControllerReturnsImage) {
  auto c = MakeCluster(ReplicationMode::kMasterSlaveAsync);
  bool done = false;
  c->controller->StartBackup(2, engine::BackupOptions{},
                             [&](Result<engine::BackupImage> image) {
                               ASSERT_TRUE(image.ok());
                               EXPECT_FALSE(image.value().databases.empty());
                               done = true;
                             });
  c->sim.RunFor(10 * kSecond);
  EXPECT_TRUE(done);
}

TEST(SpofTest, ControllerCrashTakesDownService) {
  auto c = MakeCluster(ReplicationMode::kMasterSlaveAsync);
  ASSERT_TRUE(
      RunTxn(c.get(), Write("UPDATE accounts SET balance = 1 WHERE id = 0")).status.ok());
  c->controller->Crash();
  TxnResult r = RunTxn(c.get(), Read("SELECT balance FROM accounts WHERE id = 0"));
  EXPECT_FALSE(r.status.ok())
      << "with the (unreplicated) controller down, everything is down (§3.2)";
  c->controller->Restart();
  c->sim.RunFor(2 * kSecond);
  TxnResult r2 = RunTxn(c.get(), Read("SELECT balance FROM accounts WHERE id = 0"));
  EXPECT_TRUE(r2.status.ok()) << r2.status.ToString();
}

TEST(QuorumTest, MajorityLossRefusesWrites) {
  ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.mode = ReplicationMode::kMultiMasterCertification;
  opts.controller.require_majority_for_writes = true;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 150 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.max_retries = 0;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  c.replica(1)->Crash();
  c.replica(2)->Crash();
  c.sim.RunFor(3 * kSecond);
  TxnResult w = RunTxn(&c, Write("UPDATE accounts SET balance = 1 WHERE id = 0"));
  EXPECT_EQ(w.status.code(), StatusCode::kNoQuorum) << w.status.ToString();
}

// --- Load balancing -----------------------------------------------------------

TEST(LoadBalancingTest, ReadsSpreadAcrossReplicas) {
  ClusterOptions opts;
  opts.controller.load_balance = LoadBalancePolicy::kRoundRobin;
  Cluster c(std::move(opts));
  c.Setup(AccountsSetup());
  c.Start();
  uint64_t before[3];
  for (int i = 0; i < 3; ++i) {
    before[i] = c.replica(i)->engine()->stats().statements_executed;
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        RunTxn(&c, Read("SELECT balance FROM accounts WHERE id = 1")).status.ok());
  }
  for (int i = 0; i < 3; ++i) {
    uint64_t served =
        c.replica(i)->engine()->stats().statements_executed - before[i];
    EXPECT_GT(served, 0u) << "replica " << i << " served no reads";
  }
}

// --- End-to-end under load ------------------------------------------------------

TEST(EndToEndTest, TicketBrokerWorkloadRunsCleanAndConverges) {
  ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.mode = ReplicationMode::kMultiMasterCertification;
  Cluster c(std::move(opts));
  workload::TicketBrokerWorkload::Options wo;
  wo.items = 300;
  workload::TicketBrokerWorkload w(wo);
  c.Setup(w.SetupStatements());
  c.Start();
  workload::OpenLoopGenerator gen(&c.sim, c.driver(), &w, /*rate_tps=*/300,
                                  /*seed=*/5);
  gen.Run(20 * kSecond);
  const workload::RunStats& stats = gen.stats();
  EXPECT_GT(stats.committed, 4000u);
  EXPECT_LT(stats.AbortRate(), 0.01);
  c.sim.RunFor(5 * kSecond);
  EXPECT_TRUE(c.Converged());
  EXPECT_GT(stats.latency_ms.Mean(), 0.0);
}

}  // namespace
}  // namespace replidb::middleware
