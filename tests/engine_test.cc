#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "engine/rdbms.h"

namespace replidb::engine {
namespace {

using sql::Value;

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RdbmsOptions opts;
    opts.name = "test-db";
    db_ = std::make_unique<Rdbms>(opts);
    session_ = db_->Connect().value();
  }

  ExecResult Exec(const std::string& sql) { return db_->Execute(session_, sql); }

  ExecResult MustExec(const std::string& sql) {
    ExecResult r = Exec(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status.ToString();
    return r;
  }

  void MakeAccounts() {
    MustExec("CREATE TABLE accounts (id INT PRIMARY KEY, balance INT, owner TEXT)");
    MustExec("INSERT INTO accounts VALUES (1, 100, 'alice'), (2, 200, 'bob'), "
             "(3, 300, 'carol')");
  }

  std::unique_ptr<Rdbms> db_;
  SessionId session_ = 0;
};

// --- Basic DDL/DML -----------------------------------------------------------

TEST_F(EngineTest, CreateInsertSelect) {
  MakeAccounts();
  ExecResult r = MustExec("SELECT * FROM accounts ORDER BY id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.columns, (std::vector<std::string>{"id", "balance", "owner"}));
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[2][2].AsString(), "carol");
}

TEST_F(EngineTest, SelectWithWhereAndProjection) {
  MakeAccounts();
  ExecResult r = MustExec("SELECT owner, balance * 2 FROM accounts WHERE balance >= 200 ORDER BY balance");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "bob");
  EXPECT_EQ(r.rows[0][1].AsInt(), 400);
}

TEST_F(EngineTest, UpdateAffectsMatchingRows) {
  MakeAccounts();
  ExecResult r = MustExec("UPDATE accounts SET balance = balance + 10 WHERE id <= 2");
  EXPECT_EQ(r.affected, 2);
  ExecResult check = MustExec("SELECT balance FROM accounts ORDER BY id");
  EXPECT_EQ(check.rows[0][0].AsInt(), 110);
  EXPECT_EQ(check.rows[1][0].AsInt(), 210);
  EXPECT_EQ(check.rows[2][0].AsInt(), 300);
}

TEST_F(EngineTest, DeleteRemovesRows) {
  MakeAccounts();
  ExecResult r = MustExec("DELETE FROM accounts WHERE balance > 150");
  EXPECT_EQ(r.affected, 2);
  EXPECT_EQ(db_->TableRowCount("main", "accounts"), 1u);
}

TEST_F(EngineTest, Aggregates) {
  MakeAccounts();
  ExecResult r = MustExec("SELECT COUNT(*), SUM(balance), MIN(balance), MAX(balance), AVG(balance) FROM accounts");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[0][1].AsInt(), 600);
  EXPECT_EQ(r.rows[0][2].AsInt(), 100);
  EXPECT_EQ(r.rows[0][3].AsInt(), 300);
  EXPECT_DOUBLE_EQ(r.rows[0][4].AsDouble(), 200.0);
}

TEST_F(EngineTest, AggregatesOnEmptyTable) {
  MustExec("CREATE TABLE t (x INT)");
  ExecResult r = MustExec("SELECT COUNT(*), SUM(x), AVG(x) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  MakeAccounts();
  ExecResult r = MustExec("SELECT id FROM accounts ORDER BY balance DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 3);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
}

TEST_F(EngineTest, PrimaryKeyUniqueness) {
  MakeAccounts();
  ExecResult r = Exec("INSERT INTO accounts VALUES (1, 0, 'dup')");
  EXPECT_EQ(r.status.code(), StatusCode::kConstraintViolation);
  EXPECT_EQ(db_->TableRowCount("main", "accounts"), 3u);
}

TEST_F(EngineTest, UniqueColumnEnforced) {
  MustExec("CREATE TABLE u (id INT PRIMARY KEY, email TEXT UNIQUE)");
  MustExec("INSERT INTO u VALUES (1, 'a@x.com')");
  ExecResult r = Exec("INSERT INTO u VALUES (2, 'a@x.com')");
  EXPECT_EQ(r.status.code(), StatusCode::kConstraintViolation);
}

TEST_F(EngineTest, NotNullEnforced) {
  MustExec("CREATE TABLE n (id INT PRIMARY KEY, v TEXT NOT NULL)");
  ExecResult r = Exec("INSERT INTO n VALUES (1, NULL)");
  EXPECT_EQ(r.status.code(), StatusCode::kConstraintViolation);
}

TEST_F(EngineTest, MultiRowInsertIsAtomicPerStatement) {
  MakeAccounts();
  // Third row duplicates PK 1: the whole statement must be undone.
  ExecResult r = Exec("INSERT INTO accounts VALUES (10, 1, 'x'), (11, 2, 'y'), (1, 3, 'dup')");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(db_->TableRowCount("main", "accounts"), 3u);
}

TEST_F(EngineTest, AutoIncrementAssignsAndLeavesHoles) {
  MustExec("CREATE TABLE seqt (id INT PRIMARY KEY AUTO_INCREMENT, v TEXT)");
  MustExec("INSERT INTO seqt (v) VALUES ('a')");
  MustExec("INSERT INTO seqt (v) VALUES ('b')");
  // Failed statement consumes an id (the paper's "holes" behaviour).
  Exec("INSERT INTO seqt (id, v) VALUES (2, 'dup')");
  MustExec("INSERT INTO seqt (v) VALUES ('c')");
  ExecResult r = MustExec("SELECT id FROM seqt ORDER BY id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt(), 2);
  EXPECT_EQ(r.rows[2][0].AsInt(), 3);
}

TEST_F(EngineTest, DropTable) {
  MakeAccounts();
  MustExec("DROP TABLE accounts");
  EXPECT_FALSE(Exec("SELECT * FROM accounts").ok());
  MustExec("DROP TABLE IF EXISTS accounts");
  EXPECT_FALSE(Exec("DROP TABLE accounts").ok());
}

// --- Transactions -------------------------------------------------------------

TEST_F(EngineTest, CommitMakesChangesVisibleToOthers) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 0 WHERE id = 1");
  // Other session still sees the old value.
  ExecResult before = db_->Execute(other, "SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(before.rows[0][0].AsInt(), 100);
  MustExec("COMMIT");
  ExecResult after = db_->Execute(other, "SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(after.rows[0][0].AsInt(), 0);
}

TEST_F(EngineTest, RollbackDiscardsChanges) {
  MakeAccounts();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 0 WHERE id = 1");
  MustExec("INSERT INTO accounts VALUES (9, 9, 'z')");
  MustExec("ROLLBACK");
  ExecResult r = MustExec("SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 100);
  EXPECT_EQ(db_->TableRowCount("main", "accounts"), 3u);
}

TEST_F(EngineTest, WriteWriteConflictAbortsNoWait) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 1 WHERE id = 1");
  db_->Execute(other, "BEGIN");
  ExecResult r = db_->Execute(other, "UPDATE accounts SET balance = 2 WHERE id = 1");
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlock);
  MustExec("COMMIT");
}

TEST_F(EngineTest, SnapshotIsolationRepeatableRead) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  ASSERT_TRUE(db_->SetIsolation(session_, IsolationLevel::kSnapshot).ok());
  MustExec("BEGIN");
  ExecResult r1 = MustExec("SELECT balance FROM accounts WHERE id = 1");
  // Concurrent committed update.
  db_->Execute(other, "UPDATE accounts SET balance = 999 WHERE id = 1");
  ExecResult r2 = MustExec("SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(r1.rows[0][0].AsInt(), r2.rows[0][0].AsInt()) << "snapshot must not move";
  MustExec("COMMIT");
}

TEST_F(EngineTest, ReadCommittedSeesNewCommits) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  MustExec("BEGIN");
  ExecResult r1 = MustExec("SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(r1.rows[0][0].AsInt(), 100);
  db_->Execute(other, "UPDATE accounts SET balance = 999 WHERE id = 1");
  ExecResult r2 = MustExec("SELECT balance FROM accounts WHERE id = 1");
  EXPECT_EQ(r2.rows[0][0].AsInt(), 999) << "read-committed re-snapshots";
  MustExec("COMMIT");
}

TEST_F(EngineTest, SiFirstUpdaterWins) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  db_->SetIsolation(session_, IsolationLevel::kSnapshot);
  db_->SetIsolation(other, IsolationLevel::kSnapshot);
  MustExec("BEGIN");
  MustExec("SELECT * FROM accounts");  // Take the snapshot.
  // Other transaction updates and commits the row first.
  db_->Execute(other, "UPDATE accounts SET balance = 5 WHERE id = 1");
  ExecResult r = Exec("UPDATE accounts SET balance = 6 WHERE id = 1");
  EXPECT_EQ(r.status.code(), StatusCode::kConflict);
}

TEST_F(EngineTest, SiAllowsWriteSkew) {
  // The classic SI anomaly: two txns each read both rows, write different
  // rows; both commit under SI (would be forbidden under 1SR).
  MakeAccounts();
  SessionId other = db_->Connect().value();
  db_->SetIsolation(session_, IsolationLevel::kSnapshot);
  db_->SetIsolation(other, IsolationLevel::kSnapshot);
  MustExec("BEGIN");
  db_->Execute(other, "BEGIN");
  MustExec("SELECT SUM(balance) FROM accounts");
  db_->Execute(other, "SELECT SUM(balance) FROM accounts");
  EXPECT_TRUE(Exec("UPDATE accounts SET balance = 0 WHERE id = 1").ok());
  EXPECT_TRUE(db_->Execute(other, "UPDATE accounts SET balance = 0 WHERE id = 2").ok());
  EXPECT_TRUE(Exec("COMMIT").ok());
  EXPECT_TRUE(db_->Execute(other, "COMMIT").ok());
}

TEST_F(EngineTest, SerializableForbidsWriteSkew) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  db_->SetIsolation(session_, IsolationLevel::kSerializable);
  db_->SetIsolation(other, IsolationLevel::kSerializable);
  MustExec("BEGIN");
  db_->Execute(other, "BEGIN");
  MustExec("SELECT SUM(balance) FROM accounts");
  db_->Execute(other, "SELECT SUM(balance) FROM accounts");
  // Table-granularity 2PL: the second writer hits the other's read lock.
  ExecResult w1 = Exec("UPDATE accounts SET balance = 0 WHERE id = 1");
  EXPECT_EQ(w1.status.code(), StatusCode::kDeadlock);
}

TEST_F(EngineTest, SerializableReadersBlockWritersNoWait) {
  MakeAccounts();
  SessionId other = db_->Connect().value();
  db_->SetIsolation(other, IsolationLevel::kSerializable);
  db_->Execute(other, "BEGIN");
  db_->Execute(other, "SELECT * FROM accounts");
  db_->SetIsolation(session_, IsolationLevel::kSerializable);
  MustExec("BEGIN");
  ExecResult r = Exec("UPDATE accounts SET balance = 1 WHERE id = 1");
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlock);
  db_->Execute(other, "COMMIT");
}

// --- Dialect behaviour profiles (§4.1.2) ---------------------------------------

TEST(DialectTest, PostgresPoisonsTransactionOnError) {
  RdbmsOptions opts;
  opts.dialect = DialectProfile::PostgresLike();
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  db.Execute(s, "CREATE TABLE t (id INT PRIMARY KEY)");
  db.Execute(s, "BEGIN");
  db.Execute(s, "INSERT INTO t VALUES (1)");
  ExecResult bad = db.Execute(s, "INSERT INTO t VALUES (1)");  // Dup.
  EXPECT_FALSE(bad.ok());
  ExecResult next = db.Execute(s, "INSERT INTO t VALUES (2)");
  EXPECT_EQ(next.status.code(), StatusCode::kAborted)
      << "poisoned transaction must reject further statements";
  ExecResult commit = db.Execute(s, "COMMIT");
  EXPECT_EQ(commit.status.code(), StatusCode::kAborted);
  EXPECT_EQ(db.TableRowCount("main", "t"), 0u) << "everything rolled back";
}

TEST(DialectTest, MysqlContinuesAfterError) {
  RdbmsOptions opts;
  opts.dialect = DialectProfile::MysqlLike();
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  db.Execute(s, "CREATE TABLE t (id INT PRIMARY KEY)");
  db.Execute(s, "BEGIN");
  db.Execute(s, "INSERT INTO t VALUES (1)");
  ExecResult bad = db.Execute(s, "INSERT INTO t VALUES (1)");
  EXPECT_FALSE(bad.ok());
  ExecResult next = db.Execute(s, "INSERT INTO t VALUES (2)");
  EXPECT_TRUE(next.ok()) << "MySQL-like keeps the transaction alive";
  EXPECT_TRUE(db.Execute(s, "COMMIT").ok());
  EXPECT_EQ(db.TableRowCount("main", "t"), 2u);
}

TEST(DialectTest, NoSnapshotIsolationFallsBackToReadCommitted) {
  RdbmsOptions opts;
  opts.dialect = DialectProfile::MysqlLike();
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  ASSERT_TRUE(db.SetIsolation(s, IsolationLevel::kSnapshot).ok());
  EXPECT_EQ(db.EffectiveIsolation(s), IsolationLevel::kReadCommitted);
}

TEST(DialectTest, SybaseRefusesTempTablesInTransactions) {
  RdbmsOptions opts;
  opts.dialect = DialectProfile::SybaseLike();
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  db.Execute(s, "BEGIN");
  ExecResult r = db.Execute(s, "CREATE TEMPORARY TABLE tmp (x INT)");
  EXPECT_EQ(r.status.code(), StatusCode::kNotSupported);
}

// --- Temporary tables (§4.1.4) --------------------------------------------------

TEST_F(EngineTest, TempTablesAreSessionScoped) {
  MustExec("CREATE TEMPORARY TABLE tmp (k INT, v TEXT)");
  MustExec("INSERT INTO tmp VALUES (1, 'x')");
  SessionId other = db_->Connect().value();
  ExecResult r = db_->Execute(other, "SELECT * FROM tmp");
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound)
      << "temp table must be invisible to other sessions";
}

TEST_F(EngineTest, TempTablesDroppedOnDisconnect) {
  MustExec("CREATE TEMPORARY TABLE tmp (k INT)");
  MustExec("INSERT INTO tmp VALUES (1)");
  db_->Disconnect(session_);
  session_ = db_->Connect().value();
  EXPECT_FALSE(Exec("SELECT * FROM tmp").ok());
}

TEST_F(EngineTest, TempTableShadowsRealTable) {
  MustExec("CREATE TABLE t (x INT)");
  MustExec("INSERT INTO t VALUES (42)");
  MustExec("CREATE TEMPORARY TABLE t (x INT)");
  ExecResult r = MustExec("SELECT COUNT(*) FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 0) << "temp table shadows the real one";
}

TEST_F(EngineTest, TempTableWritesNotInBinlogOrWriteset) {
  MustExec("CREATE TEMPORARY TABLE tmp (k INT)");
  size_t before = db_->binlog().size();
  MustExec("BEGIN");
  MustExec("INSERT INTO tmp VALUES (1)");
  const Writeset* ws = db_->CurrentWriteset(session_);
  ASSERT_NE(ws, nullptr);
  EXPECT_TRUE(ws->ops.empty()) << "temp-table writes invisible to replication";
  MustExec("COMMIT");
  // The statement text IS recorded (statement replication would replay it);
  // row capture is what's missing — the gap the paper describes.
  EXPECT_GE(db_->binlog().size(), before);
}

// --- Sequences (§4.2.3) -----------------------------------------------------------

TEST_F(EngineTest, SequencesAdvanceAndSurviveRollback) {
  MustExec("CREATE SEQUENCE s START 10");
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  MustExec("BEGIN");
  MustExec("INSERT INTO t VALUES (NEXTVAL('s'))");
  MustExec("ROLLBACK");
  // The draw is not returned: next use sees a hole.
  MustExec("INSERT INTO t VALUES (NEXTVAL('s'))");
  ExecResult r = MustExec("SELECT id FROM t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 11) << "sequence hole after rollback";
  EXPECT_EQ(db_->SequenceValue("main", "s"), 12);
}

TEST_F(EngineTest, MissingSequenceErrors) {
  MustExec("CREATE TABLE t (id INT)");
  EXPECT_FALSE(Exec("INSERT INTO t VALUES (NEXTVAL('nope'))").ok());
}

// --- Multi-database (§4.1.1) ---------------------------------------------------

TEST_F(EngineTest, MultiDatabaseQueries) {
  MustExec("CREATE DATABASE reporting");
  MustExec("CREATE TABLE reporting.daily (d INT, total INT)");
  MustExec("INSERT INTO reporting.daily VALUES (1, 5)");
  ExecResult r = MustExec("SELECT total FROM reporting.daily WHERE d = 1");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
}

TEST_F(EngineTest, CrossDatabaseTransaction) {
  MakeAccounts();
  MustExec("CREATE DATABASE audit");
  MustExec("CREATE TABLE audit.log (id INT PRIMARY KEY AUTO_INCREMENT, note TEXT)");
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 0 WHERE id = 1");
  MustExec("INSERT INTO audit.log (note) VALUES ('zeroed')");
  MustExec("ROLLBACK");
  EXPECT_EQ(db_->TableRowCount("audit", "log"), 0u)
      << "cross-database transaction must roll back atomically";
}

// --- Triggers (§4.1.1 / §4.1.5) ---------------------------------------------------

TEST_F(EngineTest, TriggerWritesToAnotherDatabase) {
  MakeAccounts();
  MustExec("CREATE DATABASE reporting");
  MustExec("CREATE TABLE reporting.changes (id INT PRIMARY KEY AUTO_INCREMENT, acct INT)");
  TriggerDef t;
  t.name = "audit_updates";
  t.database = "main";
  t.table = "accounts";
  t.event = WriteOpKind::kUpdate;
  t.action = [](Rdbms* db, SessionId sid, const WriteOp& op) {
    return db->Execute(sid, "INSERT INTO reporting.changes (acct) VALUES (" +
                                op.primary_key.ToString() + ")")
        .status;
  };
  db_->RegisterTrigger(std::move(t));
  MustExec("UPDATE accounts SET balance = 1 WHERE id = 2");
  EXPECT_EQ(db_->TableRowCount("reporting", "changes"), 1u);
}

TEST_F(EngineTest, PerUserTriggerOnlyFiresForThatUser) {
  MakeAccounts();
  db_->CreateUser("batch");
  MustExec("CREATE TABLE audit_rows (n INT)");
  TriggerDef t;
  t.name = "only_batch";
  t.database = "main";
  t.table = "accounts";
  t.event = WriteOpKind::kUpdate;
  t.only_for_user = "batch";
  t.action = [](Rdbms* db, SessionId sid, const WriteOp&) {
    return db->Execute(sid, "INSERT INTO audit_rows VALUES (1)").status;
  };
  db_->RegisterTrigger(std::move(t));
  MustExec("UPDATE accounts SET balance = 1 WHERE id = 1");  // admin session.
  EXPECT_EQ(db_->TableRowCount("main", "audit_rows"), 0u);
  SessionId batch = db_->Connect("batch").value();
  db_->Execute(batch, "UPDATE accounts SET balance = 2 WHERE id = 1");
  EXPECT_EQ(db_->TableRowCount("main", "audit_rows"), 1u)
      << "the same SQL has a different effect per user (§4.1.5)";
}

TEST_F(EngineTest, FailedStatementFiresNoTriggers) {
  MakeAccounts();
  MustExec("CREATE TABLE audit_rows (n INT)");
  TriggerDef t;
  t.name = "on_insert";
  t.database = "main";
  t.table = "accounts";
  t.event = WriteOpKind::kInsert;
  t.action = [](Rdbms* db, SessionId sid, const WriteOp&) {
    return db->Execute(sid, "INSERT INTO audit_rows VALUES (1)").status;
  };
  db_->RegisterTrigger(std::move(t));
  Exec("INSERT INTO accounts VALUES (50, 0, 'x'), (1, 0, 'dup')");  // Fails.
  EXPECT_EQ(db_->TableRowCount("main", "audit_rows"), 0u);
}

// --- Stored procedures (§4.2.1) ------------------------------------------------

TEST_F(EngineTest, StoredProcedureRunsInCallerTransaction) {
  MakeAccounts();
  db_->RegisterProcedure("transfer", [](ProcedureContext* ctx) {
    int64_t from = ctx->args()[0].AsInt();
    int64_t to = ctx->args()[1].AsInt();
    int64_t amount = ctx->args()[2].AsInt();
    ExecResult r1 = ctx->Exec("UPDATE accounts SET balance = balance - " +
                              std::to_string(amount) + " WHERE id = " +
                              std::to_string(from));
    if (!r1.ok()) return r1.status;
    return ctx->Exec("UPDATE accounts SET balance = balance + " +
                     std::to_string(amount) + " WHERE id = " +
                     std::to_string(to))
        .status;
  });
  MustExec("CALL transfer(1, 2, 50)");
  ExecResult r = MustExec("SELECT balance FROM accounts ORDER BY id");
  EXPECT_EQ(r.rows[0][0].AsInt(), 50);
  EXPECT_EQ(r.rows[1][0].AsInt(), 250);
}

TEST_F(EngineTest, StoredProcedureRollsBackWithTransaction) {
  MakeAccounts();
  db_->RegisterProcedure("zero_all", [](ProcedureContext* ctx) {
    return ctx->Exec("UPDATE accounts SET balance = 0").status;
  });
  MustExec("BEGIN");
  MustExec("CALL zero_all()");
  MustExec("ROLLBACK");
  ExecResult r = MustExec("SELECT SUM(balance) FROM accounts");
  EXPECT_EQ(r.rows[0][0].AsInt(), 600);
}

TEST_F(EngineTest, UnknownProcedureFails) {
  EXPECT_EQ(Exec("CALL nope()").status.code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, ProcedureInnerStatementsAreBinlogged) {
  MakeAccounts();
  db_->RegisterProcedure("bump", [](ProcedureContext* ctx) {
    return ctx->Exec("UPDATE accounts SET balance = balance + 1 WHERE id = 1")
        .status;
  });
  size_t before = db_->binlog().size();
  MustExec("CALL bump()");
  ASSERT_EQ(db_->binlog().size(), before + 1);
  const BinlogEntry& e = db_->binlog().back();
  ASSERT_EQ(e.statements.size(), 1u);
  EXPECT_EQ(e.statements[0].find("CALL"), std::string::npos)
      << "inner statements, not the CALL, are logged";
  EXPECT_NE(e.statements[0].find("UPDATE"), std::string::npos);
}

// --- Binlog & writesets --------------------------------------------------------

TEST_F(EngineTest, BinlogRecordsCommittedTransactions) {
  MakeAccounts();
  size_t base = db_->binlog().size();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 0 WHERE id = 1");
  MustExec("INSERT INTO accounts VALUES (7, 70, 'g')");
  MustExec("COMMIT");
  ASSERT_EQ(db_->binlog().size(), base + 1);
  const BinlogEntry& e = db_->binlog().back();
  EXPECT_EQ(e.statements.size(), 2u);
  EXPECT_EQ(e.writeset.ops.size(), 2u);
  EXPECT_EQ(e.session_user, "admin");
}

TEST_F(EngineTest, RolledBackTransactionNotInBinlog) {
  MakeAccounts();
  size_t base = db_->binlog().size();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 0 WHERE id = 1");
  MustExec("ROLLBACK");
  EXPECT_EQ(db_->binlog().size(), base);
}

TEST_F(EngineTest, WritesetCapturesAfterImages) {
  MakeAccounts();
  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 42 WHERE id = 2");
  const Writeset* ws = db_->CurrentWriteset(session_);
  ASSERT_NE(ws, nullptr);
  ASSERT_EQ(ws->ops.size(), 1u);
  EXPECT_EQ(ws->ops[0].kind, WriteOpKind::kUpdate);
  EXPECT_EQ(ws->ops[0].primary_key.AsInt(), 2);
  EXPECT_EQ(ws->ops[0].after[1].AsInt(), 42);
  MustExec("COMMIT");
}

TEST_F(EngineTest, WritesetIncompleteWithoutPrimaryKey) {
  MustExec("CREATE TABLE nopk (x INT)");
  MustExec("BEGIN");
  MustExec("INSERT INTO nopk VALUES (1)");
  const Writeset* ws = db_->CurrentWriteset(session_);
  ASSERT_NE(ws, nullptr);
  EXPECT_TRUE(ws->incomplete);
  MustExec("COMMIT");
}

TEST_F(EngineTest, ApplyWritesetReplaysOnAnotherReplica) {
  MakeAccounts();
  // Second replica with the same schema and data.
  RdbmsOptions opts2;
  opts2.name = "replica2";
  opts2.physical_seed = 99;
  Rdbms db2(opts2);
  SessionId s2 = db2.Connect().value();
  db2.Execute(s2, "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT, owner TEXT)");
  db2.Execute(s2, "INSERT INTO accounts VALUES (1, 100, 'alice'), (2, 200, 'bob'), (3, 300, 'carol')");
  EXPECT_EQ(db_->ContentHash(), db2.ContentHash());

  MustExec("BEGIN");
  MustExec("UPDATE accounts SET balance = 7 WHERE id = 1");
  MustExec("DELETE FROM accounts WHERE id = 3");
  MustExec("INSERT INTO accounts VALUES (4, 40, 'dan')");
  Writeset ws = *db_->CurrentWriteset(session_);
  MustExec("COMMIT");

  ASSERT_TRUE(db2.ApplyWriteset(ws).ok());
  EXPECT_EQ(db_->ContentHash(), db2.ContentHash())
      << "replica content must converge after writeset apply";
}

TEST_F(EngineTest, ContentHashIgnoresPhysicalOrder) {
  RdbmsOptions a, b;
  a.physical_seed = 1;
  b.physical_seed = 2;
  Rdbms dba(a), dbb(b);
  SessionId sa = dba.Connect().value(), sb = dbb.Connect().value();
  for (Rdbms* db : {&dba, &dbb}) {
    SessionId s = (db == &dba) ? sa : sb;
    db->Execute(s, "CREATE TABLE t (id INT PRIMARY KEY, v TEXT)");
    db->Execute(s, "INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  }
  EXPECT_EQ(dba.ContentHash(), dbb.ContentHash());
}

TEST_F(EngineTest, PhysicalOrderDiffersAcrossSeeds) {
  RdbmsOptions a, b;
  a.physical_seed = 1;
  b.physical_seed = 2;
  Rdbms dba(a), dbb(b);
  SessionId sa = dba.Connect().value(), sb = dbb.Connect().value();
  std::string fill = "INSERT INTO t VALUES ";
  for (int i = 0; i < 20; ++i) {
    fill += (i ? ", (" : "(") + std::to_string(i) + ")";
  }
  for (Rdbms* db : {&dba, &dbb}) {
    SessionId s = (db == &dba) ? sa : sb;
    db->Execute(s, "CREATE TABLE t (id INT PRIMARY KEY)");
    db->Execute(s, fill);
  }
  ExecResult ra = dba.Execute(sa, "SELECT id FROM t LIMIT 5");
  ExecResult rb = dbb.Execute(sb, "SELECT id FROM t LIMIT 5");
  ASSERT_EQ(ra.rows.size(), 5u);
  ASSERT_EQ(rb.rows.size(), 5u);
  bool same = true;
  for (size_t i = 0; i < 5; ++i) {
    same = same && ra.rows[i][0].AsInt() == rb.rows[i][0].AsInt();
  }
  EXPECT_FALSE(same) << "unordered LIMIT picks different rows per replica";
}

// --- Backup / restore (§4.4.1, §4.1.5) -------------------------------------------

TEST_F(EngineTest, BackupRestoreRoundTrip) {
  MakeAccounts();
  BackupOptions bo;
  bo.include_metadata = true;
  bo.include_sequences = true;
  BackupImage img = db_->Backup(bo).value();
  RdbmsOptions opts2;
  opts2.name = "clone";
  Rdbms clone(opts2);
  ASSERT_TRUE(clone.Restore(img).ok());
  EXPECT_EQ(clone.TableRowCount("main", "accounts"), 3u);
  EXPECT_EQ(clone.ContentHash(), db_->ContentHash());
}

TEST_F(EngineTest, MetadataLessBackupLosesUsers) {
  db_->CreateUser("app");
  MakeAccounts();
  BackupImage img = db_->Backup(BackupOptions{}).value();  // Data only.
  RdbmsOptions opts2;
  opts2.name = "clone";
  opts2.enforce_authentication = true;
  Rdbms clone(opts2);
  ASSERT_TRUE(clone.Restore(img).ok());
  EXPECT_FALSE(clone.Connect("app").ok())
      << "cloned replica rejects app users: the §4.1.5 trap";
  EXPECT_TRUE(clone.Connect("admin").ok());
}

TEST_F(EngineTest, SequenceLessBackupResetsSequences) {
  MustExec("CREATE SEQUENCE s START 1");
  MustExec("CREATE TABLE t (id INT PRIMARY KEY)");
  for (int i = 0; i < 5; ++i) MustExec("INSERT INTO t VALUES (NEXTVAL('s'))");
  BackupImage img = db_->Backup(BackupOptions{}).value();
  Rdbms clone(RdbmsOptions{});
  ASSERT_TRUE(clone.Restore(img).ok());
  EXPECT_EQ(clone.SequenceValue("main", "s"), 0)
      << "sequences are not part of the transactional dump (§4.2.3)";
  BackupOptions with;
  with.include_sequences = true;
  BackupImage img2 = db_->Backup(with).value();
  Rdbms clone2(RdbmsOptions{});
  ASSERT_TRUE(clone2.Restore(img2).ok());
  EXPECT_EQ(clone2.SequenceValue("main", "s"), 6);
}

TEST_F(EngineTest, RestoreRequiresNoSessions) {
  MakeAccounts();
  BackupImage img = db_->Backup(BackupOptions{}).value();
  EXPECT_FALSE(db_->Restore(img).ok()) << "open session blocks restore";
  db_->Disconnect(session_);
  EXPECT_TRUE(db_->Restore(img).ok());
  session_ = db_->Connect().value();
  EXPECT_EQ(db_->TableRowCount("main", "accounts"), 3u);
}

// --- Faults ----------------------------------------------------------------------

TEST_F(EngineTest, DiskFullFailsWrites) {
  MakeAccounts();
  db_->set_disk_full(true);
  EXPECT_EQ(Exec("INSERT INTO accounts VALUES (9, 9, 'z')").status.code(),
            StatusCode::kDiskFull);
  EXPECT_TRUE(Exec("SELECT * FROM accounts").ok()) << "reads still work";
  db_->set_disk_full(false);
  EXPECT_TRUE(Exec("INSERT INTO accounts VALUES (9, 9, 'z')").ok());
}

TEST_F(EngineTest, AuthenticationEnforcement) {
  RdbmsOptions opts;
  opts.enforce_authentication = true;
  Rdbms db(opts);
  EXPECT_FALSE(db.Connect("ghost").ok());
  db.CreateUser("ghost");
  EXPECT_TRUE(db.Connect("ghost").ok());
}

// --- Non-determinism at the engine level -----------------------------------------

TEST_F(EngineTest, RandDiffersAcrossReplicas) {
  RdbmsOptions a, b;
  a.rand_seed = 1;
  b.rand_seed = 2;
  Rdbms dba(a), dbb(b);
  SessionId sa = dba.Connect().value(), sb = dbb.Connect().value();
  for (auto [db, s] : {std::pair{&dba, sa}, std::pair{&dbb, sb}}) {
    db->Execute(s, "CREATE TABLE t (id INT PRIMARY KEY, x DOUBLE)");
    db->Execute(s, "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0)");
    db->Execute(s, "UPDATE t SET x = RAND()");
  }
  EXPECT_NE(dba.ContentHash(), dbb.ContentHash())
      << "per-row RAND() must diverge across replicas (§4.3.2)";
}

TEST_F(EngineTest, NowUsesConfiguredClock) {
  int64_t fake_now = 5'000'000;
  RdbmsOptions opts;
  opts.clock = [&fake_now] { return fake_now; };
  Rdbms db(opts);
  SessionId s = db.Connect().value();
  db.Execute(s, "CREATE TABLE t (ts INT)");
  db.Execute(s, "INSERT INTO t VALUES (NOW())");
  ExecResult r = db.Execute(s, "SELECT ts FROM t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5'000'000);
}

TEST_F(EngineTest, StatsCount) {
  MakeAccounts();
  Exec("INSERT INTO accounts VALUES (1, 0, 'dup')");
  const RdbmsStats& st = db_->stats();
  EXPECT_GT(st.transactions_committed, 0u);
  EXPECT_GT(st.statement_errors, 0u);
}

TEST_F(EngineTest, CostModelChargesStatements) {
  MakeAccounts();
  ExecResult r = MustExec("SELECT * FROM accounts");
  EXPECT_GT(r.cost_us, 0);
  ExecResult w = MustExec("UPDATE accounts SET balance = 1 WHERE id = 1");
  EXPECT_GT(w.cost_us, 0);
}

}  // namespace
}  // namespace replidb::engine
