#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"

namespace replidb::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterIncrementsAndResets) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("test.obj.events");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("test.obj.events");
  Counter* b = r.GetCounter("test.obj.events");
  EXPECT_EQ(a, b);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistryTest, GaugeSetAddValue) {
  MetricsRegistry r;
  Gauge* g = r.GetGauge("test.queue.depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);  // Gauges may go negative (e.g. clock-skewed lag).
  EXPECT_EQ(g->value(), -5);
}

TEST(MetricsRegistryTest, HistogramObserveAndCopy) {
  MetricsRegistry r;
  HistogramMetric* h = r.GetHistogram("test.stage.latency_ms");
  for (int i = 1; i <= 100; ++i) h->Observe(i);
  EXPECT_EQ(h->count(), 100u);
  Histogram copy = r.HistogramCopy("test.stage.latency_ms");
  EXPECT_EQ(copy.count(), 100u);
  EXPECT_DOUBLE_EQ(copy.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(copy.Max(), 100.0);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry r;
  EXPECT_EQ(r.FindCounter("test.not.registered"), nullptr);
  EXPECT_EQ(r.FindGauge("test.not.registered"), nullptr);
  EXPECT_EQ(r.HistogramCopy("test.not.registered").count(), 0u);
  EXPECT_EQ(r.size(), 0u);
}

TEST(MetricsRegistryTest, FindRejectsWrongKind) {
  MetricsRegistry r;
  r.GetCounter("test.obj.events");
  EXPECT_EQ(r.FindGauge("test.obj.events"), nullptr);
}

TEST(MetricsRegistryDeathTest, KindMismatchAborts) {
  MetricsRegistry r;
  r.GetCounter("test.obj.events");
  EXPECT_DEATH(r.GetGauge("test.obj.events"), "different kind");
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry r;
  r.GetCounter("zz.last.metric");
  r.GetGauge("aa.first.metric");
  r.GetHistogram("mm.middle.metric");
  auto snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa.first.metric");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].name, "mm.middle.metric");
  EXPECT_EQ(snap[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].name, "zz.last.metric");
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
}

TEST(MetricsRegistryTest, SnapshotCarriesValues) {
  MetricsRegistry r;
  r.GetCounter("test.c")->Increment(7);
  r.GetGauge("test.g")->Set(-2);
  r.GetHistogram("test.h")->Observe(3.5);
  for (const MetricSample& s : r.Snapshot()) {
    if (s.name == "test.c") {
      EXPECT_EQ(s.counter, 7u);
    }
    if (s.name == "test.g") {
      EXPECT_EQ(s.gauge, -2);
    }
    if (s.name == "test.h") {
      EXPECT_EQ(s.histogram.count(), 1u);
      EXPECT_DOUBLE_EQ(s.histogram.Max(), 3.5);
    }
  }
}

TEST(MetricsRegistryTest, DumpTextMentionsEveryMetric) {
  MetricsRegistry r;
  r.GetCounter("test.c")->Increment(7);
  r.GetGauge("test.g")->Set(9);
  r.GetHistogram("test.h")->Observe(1.0);
  std::string dump = r.DumpText();
  EXPECT_NE(dump.find("test.c"), std::string::npos);
  EXPECT_NE(dump.find("test.g"), std::string::npos);
  EXPECT_NE(dump.find("test.h"), std::string::npos);
  EXPECT_NE(dump.find("7"), std::string::npos);
  EXPECT_NE(dump.find("9"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("test.c");
  Gauge* g = r.GetGauge("test.g");
  HistogramMetric* h = r.GetHistogram("test.h");
  c->Increment(5);
  g->Set(5);
  h->Observe(5);
  r.Reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // Handed-out pointers survive Reset: instrumentation caches them once.
  c->Increment();
  EXPECT_EQ(r.FindCounter("test.c")->value(), 1u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 200);
  t.CounterSample("replica.1.lag", 300, 4.0);
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(TracerTest, RecordsSpansInstantsAndCounters) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 200);
  t.CounterSample("replica.1.lag", 300, 4.0);
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, ClearDropsEventsKeepsEnabled) {
  Tracer t;
  t.Enable();
  t.Span("a", "s", 0, 1);
  t.Clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_TRUE(t.enabled());
}

TEST(TracerTest, ChromeTraceJsonStructure) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("controller.9", "failover.2", 250);
  t.CounterSample("gcs.backlog", 300, 12.5);
  std::string json = t.ChromeTraceJson();
  // Chrome trace envelope plus one event of each phase.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("apply.exec"), std::string::npos);
  // Track names are emitted as thread_name metadata for the viewer.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("replica.1"), std::string::npos);
  // Crude structural sanity: balanced braces and brackets.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TracerTest, NestedSpansShareATrackLane) {
  // Chrome-trace "X" events nest by time containment within one tid: an
  // outer mw.txn span and an inner apply.exec span on the same track must
  // come out with the same tid and contained [ts, ts+dur] windows.
  Tracer t;
  t.Enable();
  t.Span("replica.1", "mw.txn", 100, 200, 7);
  t.Span("replica.1", "apply.exec", 120, 160, 7);
  t.Span("controller.9", "mw.process", 90, 95, 7);
  std::string json = t.ChromeTraceJson();
  size_t outer = json.find("\"mw.txn\"");
  size_t inner = json.find("\"apply.exec\"");
  size_t other = json.find("\"mw.process\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(other, std::string::npos);
  auto tid_of = [&json](size_t from) {
    size_t p = json.find("\"tid\":", from);
    return json.substr(p + 6, json.find_first_of(",}", p + 6) - p - 6);
  };
  EXPECT_EQ(tid_of(outer), tid_of(inner));
  EXPECT_NE(tid_of(outer), tid_of(other));
  EXPECT_NE(json.find("\"ts\":100,\"dur\":100"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":120,\"dur\":40"), std::string::npos);
}

TEST(TracerTest, WriteChromeTraceRoundTrips) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(t.WriteChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, t.ChromeTraceJson());
  EXPECT_EQ(contents.front(), '{');
}

TEST(TracerTest, WriteChromeTraceFailsOnBadPath) {
  Tracer t;
  t.Enable();
  EXPECT_FALSE(t.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(TracerTest, DumpTimelineDoesNotCrash) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 120);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  t.DumpTimeline(sink, 10);
  EXPECT_GT(std::ftell(sink), 0L);
  std::fclose(sink);
}

TEST(TracerTest, NextTraceIdIsUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TracerTest, GlobalToggleDrivesTracingEnabled) {
  EXPECT_FALSE(TracingEnabled());  // Off by default (REPLIDB_TRACE unset).
  Tracer::Global().Enable();
  EXPECT_TRUE(TracingEnabled());
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  EXPECT_FALSE(TracingEnabled());
}

TEST(TracerTest, ChromeTraceTimestampsMonotonicPerThread) {
  // Record events deliberately out of virtual-time order; the exported
  // trace must come out sorted so viewers do not mis-nest spans.
  Tracer t;
  t.Enable();
  t.Span("replica.1", "late", 900, 950, 1);
  t.Span("replica.2", "other", 400, 450, 2);
  t.Span("replica.1", "early", 100, 200, 1);
  t.Instant("replica.1", "mid", 500);
  std::string json = t.ChromeTraceJson();
  // Walk the flat event list: span and instant events serialize as
  // adjacent `"tid":N,"ts":M` fields. Collect (tid, ts) in emission
  // order and require nondecreasing ts within each tid (thread_name
  // metadata events carry a tid but no ts and are skipped).
  std::map<std::string, std::vector<long>> per_tid;
  size_t pos = 0;
  while ((pos = json.find("\"tid\":", pos)) != std::string::npos) {
    size_t num_start = pos + 6;
    size_t num_end = json.find_first_of(",}", num_start);
    std::string tid = json.substr(num_start, num_end - num_start);
    pos = num_end;
    if (json.compare(num_end, 6, ",\"ts\":") != 0) continue;
    long ts = std::strtol(json.c_str() + num_end + 6, nullptr, 10);
    per_tid[tid].push_back(ts);
  }
  ASSERT_GE(per_tid.size(), 2u);
  for (const auto& [tid, series] : per_tid) {
    for (size_t i = 1; i < series.size(); ++i) {
      EXPECT_LE(series[i - 1], series[i]) << "tid " << tid << " idx " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// TimeSeriesHub / Series
// ---------------------------------------------------------------------------

TEST(SeriesTest, RingEvictsOldestAndCountsEvictions) {
  Series s("replica.1.lag_versions", /*capacity=*/4);
  for (int i = 0; i < 6; ++i) s.Add(/*ts_us=*/i * 1000, /*value=*/i);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.evicted(), 2u);
  std::vector<SeriesPoint> pts = s.Points();
  ASSERT_EQ(pts.size(), 4u);
  // Oldest two samples (0, 1) are gone; order is oldest to newest.
  EXPECT_EQ(pts.front().ts_us, 2000);
  EXPECT_EQ(pts.back().ts_us, 5000);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].ts_us, pts[i].ts_us);
  }
  EXPECT_DOUBLE_EQ(s.Last(), 5.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 5.0);
  EXPECT_DOUBLE_EQ(s.MinValue(), 2.0);
}

TEST(SeriesTest, EmptySeriesReadsAsZero) {
  Series s("x", 8);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(s.Last(), 0.0);
  EXPECT_DOUBLE_EQ(s.MaxValue(), 0.0);
  EXPECT_TRUE(s.Points().empty());
}

TEST(TimeSeriesHubTest, ProbesFeedSeriesEachSample) {
  TimeSeriesHub hub;
  double lag = 3.0;
  hub.RegisterProbe("replica.2.lag_versions", [&] { return lag; });
  hub.SampleProbes(1000);
  lag = 7.0;
  hub.SampleProbes(2000);
  EXPECT_EQ(hub.samples_taken(), 2u);
  const Series* s = hub.FindSeries("replica.2.lag_versions");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->size(), 2u);
  EXPECT_DOUBLE_EQ(s->Points()[0].value, 3.0);
  EXPECT_DOUBLE_EQ(s->Last(), 7.0);
  EXPECT_EQ(s->Points()[1].ts_us, 2000);
}

TEST(TimeSeriesHubTest, GetSeriesIsStableAndFindDoesNotCreate) {
  TimeSeriesHub hub;
  Series* a = hub.GetSeries("a", 16);
  EXPECT_EQ(hub.GetSeries("a"), a);
  EXPECT_EQ(a->capacity(), 16u);
  EXPECT_EQ(hub.FindSeries("never"), nullptr);
  EXPECT_EQ(hub.series_count(), 1u);
}

TEST(TimeSeriesHubTest, DumpJsonAndCsvCarrySamples) {
  TimeSeriesHub hub;
  hub.GetSeries("controller.pending_txns")->Add(500, 12);
  std::string json = hub.DumpJson();
  EXPECT_NE(json.find("\"controller.pending_txns\""), std::string::npos);
  EXPECT_NE(json.find("[500,12]"), std::string::npos);
  std::string csv = hub.DumpCsv();
  EXPECT_NE(csv.find("controller.pending_txns,500,12"), std::string::npos);
  hub.Reset();
  EXPECT_EQ(hub.series_count(), 0u);
}

// ---------------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------------

TEST(FlightRecorderTest, PerNodeRingsEvictIndependently) {
  FlightRecorder rec(/*per_node_capacity=*/3);
  // Node 1 is chatty; node 2 logs a single precious event early on.
  rec.Record(100, 2, FlightEventKind::kViewChange, "epoch=1");
  for (int i = 0; i < 10; ++i) {
    rec.Record(200 + i, 1, FlightEventKind::kCreditStall, "stall");
  }
  EXPECT_EQ(rec.recorded(), 11u);
  EXPECT_EQ(rec.size(), 4u);  // 3 retained for node 1 + 1 for node 2.
  ASSERT_EQ(rec.NodeEvents(2).size(), 1u);  // Survived node 1's chatter.
  EXPECT_EQ(rec.NodeEvents(2)[0].detail, "epoch=1");
  std::vector<FlightEvent> node1 = rec.NodeEvents(1);
  ASSERT_EQ(node1.size(), 3u);
  EXPECT_EQ(node1.front().ts_us, 207);  // Oldest seven evicted.
}

TEST(FlightRecorderTest, MergedEventsAreVirtualTimeOrdered) {
  FlightRecorder rec;
  rec.Record(900, 1, FlightEventKind::kFailover, "promote 2");
  rec.Record(100, 2, FlightEventKind::kSuspicion, "suspect 1");
  rec.Record(500, 3, FlightEventKind::kResyncPhase, "catch-up");
  std::vector<FlightEvent> merged = rec.MergedEvents();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].ts_us, 100);
  EXPECT_EQ(merged[1].ts_us, 500);
  EXPECT_EQ(merged[2].ts_us, 900);
  std::string text = rec.Render();
  // Render mentions every kind by its symbolic name.
  EXPECT_NE(text.find("failover"), std::string::npos);
  EXPECT_NE(text.find("suspicion"), std::string::npos);
}

TEST(FlightRecorderDeathTest, CheckFailureDumpsFlightRecorder) {
  // A REPLIDB_CHECK failure must print the assertion and then the flight
  // recorder tail, so the post-mortem context rides along with the abort.
  FlightRecorder::InstallCheckHook();
  FlightRecorder::Global().Record(12345, 3, FlightEventKind::kCreditStall,
                                  "window=0B");
  EXPECT_DEATH(
      { REPLIDB_CHECK(1 == 2, "deliberate failure for dump-on-failure test"); },
      "CHECK failed at.*deliberate failure.*flight recorder.*credit_stall");
}

// ---------------------------------------------------------------------------
// SloTracker
// ---------------------------------------------------------------------------

TEST(SloTrackerTest, WindowsRotateOnObservationPastTheEnd) {
  SloTracker slo("commit_latency_ms", /*window_us=*/1000, /*target_p99=*/10.0);
  slo.Observe(100, 2.0);
  slo.Observe(900, 4.0);
  EXPECT_EQ(slo.windows_closed(), 0u);  // Window [0,1000) still open.
  EXPECT_EQ(slo.current_count(), 2u);
  slo.Observe(1000, 6.0);  // At the boundary: closes [0,1000) first.
  EXPECT_EQ(slo.windows_closed(), 1u);
  EXPECT_EQ(slo.current_count(), 1u);
  EXPECT_DOUBLE_EQ(slo.last_p50(), 3.0);
  EXPECT_EQ(slo.breaches(), 0u);
  ASSERT_EQ(slo.RecentWindows().size(), 1u);
  EXPECT_EQ(slo.RecentWindows()[0].start_us, 0);
  EXPECT_EQ(slo.RecentWindows()[0].end_us, 1000);
  EXPECT_EQ(slo.RecentWindows()[0].count, 2u);
}

TEST(SloTrackerTest, BreachCountedWhenP99ExceedsTarget) {
  SloTracker slo("commit_latency_ms", 1000, 10.0);
  for (int i = 0; i < 100; ++i) slo.Observe(i, 50.0);  // Way over target.
  slo.AdvanceTo(2000);  // Sampler tick closes the window with no new value.
  EXPECT_EQ(slo.windows_closed(), 1u);
  EXPECT_EQ(slo.breaches(), 1u);
  EXPECT_DOUBLE_EQ(slo.last_p99(), 50.0);
  ASSERT_EQ(slo.RecentWindows().size(), 1u);
  EXPECT_TRUE(slo.RecentWindows()[0].breached);
  // StatusLine carries the counters for SHOW REPLICA STATUS.
  std::string line = slo.StatusLine();
  EXPECT_NE(line.find("windows=1"), std::string::npos);
  EXPECT_NE(line.find("breaches=1"), std::string::npos);
}

TEST(SloTrackerTest, EmptyWindowsAreSkippedNotBreached) {
  SloTracker slo("staleness", 1000, 5.0);
  slo.Observe(500, 1.0);
  // A long quiet gap: windows [1000,2000) .. [9000,10000) saw nothing.
  slo.Observe(10500, 2.0);
  EXPECT_EQ(slo.windows_closed(), 1u);  // Only [0,1000) closed.
  EXPECT_EQ(slo.breaches(), 0u);
  // First window is aligned to a multiple of the window size even when
  // the first observation arrives mid-window.
  SloTracker aligned("x", 1000, 5.0);
  aligned.Observe(1700, 1.0);
  aligned.Observe(2100, 2.0);
  ASSERT_EQ(aligned.RecentWindows().size(), 1u);
  EXPECT_EQ(aligned.RecentWindows()[0].start_us, 1000);
}

TEST(SloTrackerTest, ResetClearsStateAndRetentionIsBounded) {
  SloTracker slo("x", 100, 1000.0);
  for (int w = 0; w < 200; ++w) {
    slo.Observe(w * 100 + 50, 1.0);
  }
  slo.AdvanceTo(100000);
  EXPECT_EQ(slo.windows_closed(), 200u);
  EXPECT_LE(slo.RecentWindows().size(), SloTracker::kRetainedWindows);
  slo.Reset();
  EXPECT_EQ(slo.windows_closed(), 0u);
  EXPECT_EQ(slo.current_count(), 0u);
  EXPECT_TRUE(slo.RecentWindows().empty());
  EXPECT_DOUBLE_EQ(slo.last_p99(), 0.0);
}

}  // namespace
}  // namespace replidb::obs
