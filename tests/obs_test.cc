#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace replidb::obs {
namespace {

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, CounterIncrementsAndResets) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("test.obj.events");
  EXPECT_EQ(c->value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->value(), 42u);
  c->Reset();
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry r;
  Counter* a = r.GetCounter("test.obj.events");
  Counter* b = r.GetCounter("test.obj.events");
  EXPECT_EQ(a, b);
  EXPECT_EQ(r.size(), 1u);
}

TEST(MetricsRegistryTest, GaugeSetAddValue) {
  MetricsRegistry r;
  Gauge* g = r.GetGauge("test.queue.depth");
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->value(), 7);
  g->Set(-5);  // Gauges may go negative (e.g. clock-skewed lag).
  EXPECT_EQ(g->value(), -5);
}

TEST(MetricsRegistryTest, HistogramObserveAndCopy) {
  MetricsRegistry r;
  HistogramMetric* h = r.GetHistogram("test.stage.latency_ms");
  for (int i = 1; i <= 100; ++i) h->Observe(i);
  EXPECT_EQ(h->count(), 100u);
  Histogram copy = r.HistogramCopy("test.stage.latency_ms");
  EXPECT_EQ(copy.count(), 100u);
  EXPECT_DOUBLE_EQ(copy.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(copy.Max(), 100.0);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry r;
  EXPECT_EQ(r.FindCounter("test.not.registered"), nullptr);
  EXPECT_EQ(r.FindGauge("test.not.registered"), nullptr);
  EXPECT_EQ(r.HistogramCopy("test.not.registered").count(), 0u);
  EXPECT_EQ(r.size(), 0u);
}

TEST(MetricsRegistryTest, FindRejectsWrongKind) {
  MetricsRegistry r;
  r.GetCounter("test.obj.events");
  EXPECT_EQ(r.FindGauge("test.obj.events"), nullptr);
}

TEST(MetricsRegistryDeathTest, KindMismatchAborts) {
  MetricsRegistry r;
  r.GetCounter("test.obj.events");
  EXPECT_DEATH(r.GetGauge("test.obj.events"), "different kind");
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry r;
  r.GetCounter("zz.last.metric");
  r.GetGauge("aa.first.metric");
  r.GetHistogram("mm.middle.metric");
  auto snap = r.Snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "aa.first.metric");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].name, "mm.middle.metric");
  EXPECT_EQ(snap[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(snap[2].name, "zz.last.metric");
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
}

TEST(MetricsRegistryTest, SnapshotCarriesValues) {
  MetricsRegistry r;
  r.GetCounter("test.c")->Increment(7);
  r.GetGauge("test.g")->Set(-2);
  r.GetHistogram("test.h")->Observe(3.5);
  for (const MetricSample& s : r.Snapshot()) {
    if (s.name == "test.c") {
      EXPECT_EQ(s.counter, 7u);
    }
    if (s.name == "test.g") {
      EXPECT_EQ(s.gauge, -2);
    }
    if (s.name == "test.h") {
      EXPECT_EQ(s.histogram.count(), 1u);
      EXPECT_DOUBLE_EQ(s.histogram.Max(), 3.5);
    }
  }
}

TEST(MetricsRegistryTest, DumpTextMentionsEveryMetric) {
  MetricsRegistry r;
  r.GetCounter("test.c")->Increment(7);
  r.GetGauge("test.g")->Set(9);
  r.GetHistogram("test.h")->Observe(1.0);
  std::string dump = r.DumpText();
  EXPECT_NE(dump.find("test.c"), std::string::npos);
  EXPECT_NE(dump.find("test.g"), std::string::npos);
  EXPECT_NE(dump.find("test.h"), std::string::npos);
  EXPECT_NE(dump.find("7"), std::string::npos);
  EXPECT_NE(dump.find("9"), std::string::npos);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry r;
  Counter* c = r.GetCounter("test.c");
  Gauge* g = r.GetGauge("test.g");
  HistogramMetric* h = r.GetHistogram("test.h");
  c->Increment(5);
  g->Set(5);
  h->Observe(5);
  r.Reset();
  EXPECT_EQ(r.size(), 3u);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(g->value(), 0);
  EXPECT_EQ(h->count(), 0u);
  // Handed-out pointers survive Reset: instrumentation caches them once.
  c->Increment();
  EXPECT_EQ(r.FindCounter("test.c")->value(), 1u);
}

TEST(MetricsRegistryTest, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer t;
  EXPECT_FALSE(t.enabled());
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 200);
  t.CounterSample("replica.1.lag", 300, 4.0);
  EXPECT_EQ(t.event_count(), 0u);
}

TEST(TracerTest, RecordsSpansInstantsAndCounters) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 200);
  t.CounterSample("replica.1.lag", 300, 4.0);
  EXPECT_EQ(t.event_count(), 3u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(TracerTest, ClearDropsEventsKeepsEnabled) {
  Tracer t;
  t.Enable();
  t.Span("a", "s", 0, 1);
  t.Clear();
  EXPECT_EQ(t.event_count(), 0u);
  EXPECT_TRUE(t.enabled());
}

TEST(TracerTest, ChromeTraceJsonStructure) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("controller.9", "failover.2", 250);
  t.CounterSample("gcs.backlog", 300, 12.5);
  std::string json = t.ChromeTraceJson();
  // Chrome trace envelope plus one event of each phase.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":50"), std::string::npos);
  EXPECT_NE(json.find("apply.exec"), std::string::npos);
  // Track names are emitted as thread_name metadata for the viewer.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("replica.1"), std::string::npos);
  // Crude structural sanity: balanced braces and brackets.
  int braces = 0, brackets = 0;
  for (char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TracerTest, NestedSpansShareATrackLane) {
  // Chrome-trace "X" events nest by time containment within one tid: an
  // outer mw.txn span and an inner apply.exec span on the same track must
  // come out with the same tid and contained [ts, ts+dur] windows.
  Tracer t;
  t.Enable();
  t.Span("replica.1", "mw.txn", 100, 200, 7);
  t.Span("replica.1", "apply.exec", 120, 160, 7);
  t.Span("controller.9", "mw.process", 90, 95, 7);
  std::string json = t.ChromeTraceJson();
  size_t outer = json.find("\"mw.txn\"");
  size_t inner = json.find("\"apply.exec\"");
  size_t other = json.find("\"mw.process\"");
  ASSERT_NE(outer, std::string::npos);
  ASSERT_NE(inner, std::string::npos);
  ASSERT_NE(other, std::string::npos);
  auto tid_of = [&json](size_t from) {
    size_t p = json.find("\"tid\":", from);
    return json.substr(p + 6, json.find_first_of(",}", p + 6) - p - 6);
  };
  EXPECT_EQ(tid_of(outer), tid_of(inner));
  EXPECT_NE(tid_of(outer), tid_of(other));
  EXPECT_NE(json.find("\"ts\":100,\"dur\":100"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":120,\"dur\":40"), std::string::npos);
}

TEST(TracerTest, WriteChromeTraceRoundTrips) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  std::string path = ::testing::TempDir() + "obs_test_trace.json";
  ASSERT_TRUE(t.WriteChromeTrace(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(contents, t.ChromeTraceJson());
  EXPECT_EQ(contents.front(), '{');
}

TEST(TracerTest, WriteChromeTraceFailsOnBadPath) {
  Tracer t;
  t.Enable();
  EXPECT_FALSE(t.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

TEST(TracerTest, DumpTimelineDoesNotCrash) {
  Tracer t;
  t.Enable();
  t.Span("replica.1", "apply.exec", 100, 150, 7);
  t.Instant("detector.1", "suspect.2", 120);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  t.DumpTimeline(sink, 10);
  EXPECT_GT(std::ftell(sink), 0L);
  std::fclose(sink);
}

TEST(TracerTest, NextTraceIdIsUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) {
    uint64_t id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(ids.insert(id).second);
  }
}

TEST(TracerTest, GlobalToggleDrivesTracingEnabled) {
  EXPECT_FALSE(TracingEnabled());  // Off by default (REPLIDB_TRACE unset).
  Tracer::Global().Enable();
  EXPECT_TRUE(TracingEnabled());
  Tracer::Global().Disable();
  Tracer::Global().Clear();
  EXPECT_FALSE(TracingEnabled());
}

}  // namespace
}  // namespace replidb::obs
