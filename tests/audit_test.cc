#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "audit/auditor.h"
#include "audit/status.h"
#include "engine/rdbms.h"
#include "middleware/cluster.h"
#include "obs/metrics.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::audit {
namespace {

using middleware::Cluster;
using middleware::ClusterOptions;
using middleware::NonDeterminismPolicy;
using middleware::ReplicationMode;
using sim::kMillisecond;
using sim::kSecond;

// --- Incremental table digests (engine layer) --------------------------------

uint64_t DigestOf(const engine::Rdbms& db, const std::string& table) {
  for (const auto& [name, digest] : db.TableDigests()) {
    if (name == table) return digest;
  }
  ADD_FAILURE() << "no digest for table " << table;
  return 0;
}

class DigestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<engine::Rdbms>(engine::RdbmsOptions{});
    session_ = db_->Connect().value();
    Must("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  }
  void Must(const std::string& sql) {
    engine::ExecResult r = db_->Execute(session_, sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status.ToString();
  }
  std::unique_ptr<engine::Rdbms> db_;
  engine::SessionId session_ = 0;
};

TEST_F(DigestTest, InsertThenDeleteReturnsToBaseline) {
  uint64_t empty = DigestOf(*db_, "main.t");
  Must("INSERT INTO t VALUES (1, 10)");
  uint64_t with_row = DigestOf(*db_, "main.t");
  EXPECT_NE(with_row, empty) << "committed insert must change the digest";
  Must("DELETE FROM t WHERE id = 1");
  EXPECT_EQ(DigestOf(*db_, "main.t"), empty)
      << "deleting the only row must restore the empty-table digest";
}

TEST_F(DigestTest, UpdateAndUpdateBackRoundTrips) {
  Must("INSERT INTO t VALUES (1, 10), (2, 20)");
  uint64_t before = DigestOf(*db_, "main.t");
  Must("UPDATE t SET v = 99 WHERE id = 1");
  EXPECT_NE(DigestOf(*db_, "main.t"), before);
  Must("UPDATE t SET v = 10 WHERE id = 1");
  EXPECT_EQ(DigestOf(*db_, "main.t"), before)
      << "restoring the row value must restore the digest";
}

TEST_F(DigestTest, InsertAndDeleteInOneTransactionIsNeutral) {
  Must("INSERT INTO t VALUES (1, 10)");
  uint64_t before = DigestOf(*db_, "main.t");
  Must("BEGIN");
  Must("INSERT INTO t VALUES (2, 20)");
  Must("DELETE FROM t WHERE id = 2");
  Must("COMMIT");
  EXPECT_EQ(DigestOf(*db_, "main.t"), before)
      << "a row created and deleted inside one txn must not touch the digest";
}

TEST_F(DigestTest, RolledBackWorkIsNeutral) {
  Must("INSERT INTO t VALUES (1, 10)");
  uint64_t before = DigestOf(*db_, "main.t");
  Must("BEGIN");
  Must("INSERT INTO t VALUES (2, 20)");
  Must("UPDATE t SET v = 0 WHERE id = 1");
  Must("ROLLBACK");
  EXPECT_EQ(DigestOf(*db_, "main.t"), before);
}

TEST(DigestCrossEngineTest, OrderAndSeedIndependent) {
  // Two engines with different physical/RAND seeds and different statement
  // orders: equal committed content must mean equal digests (the property
  // the auditor's comparison rests on).
  engine::RdbmsOptions a_opts, b_opts;
  a_opts.name = "a";
  a_opts.physical_seed = 1;
  a_opts.rand_seed = 11;
  b_opts.name = "b";
  b_opts.physical_seed = 2;
  b_opts.rand_seed = 22;
  engine::Rdbms a(a_opts), b(b_opts);
  engine::SessionId sa = a.Connect().value(), sb = b.Connect().value();
  for (engine::Rdbms* db : {&a, &b}) {
    engine::SessionId s = db == &a ? sa : sb;
    ASSERT_TRUE(db->Execute(s, "CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  }
  // Same rows, inserted in opposite orders with different interleaving.
  ASSERT_TRUE(a.Execute(sa, "INSERT INTO t VALUES (1, 10), (2, 20)").ok());
  ASSERT_TRUE(a.Execute(sa, "INSERT INTO t VALUES (3, 30)").ok());
  ASSERT_TRUE(b.Execute(sb, "INSERT INTO t VALUES (3, 30)").ok());
  ASSERT_TRUE(b.Execute(sb, "INSERT INTO t VALUES (2, 20), (1, 10)").ok());
  EXPECT_EQ(DigestOf(a, "main.t"), DigestOf(b, "main.t"));
  // Diverge one value: digests must split.
  ASSERT_TRUE(b.Execute(sb, "UPDATE t SET v = 31 WHERE id = 3").ok());
  EXPECT_NE(DigestOf(a, "main.t"), DigestOf(b, "main.t"));
}

// --- DivergenceAuditor (pure logic) ------------------------------------------

ReplicaAuditReport Report(int32_t replica, uint64_t epoch, uint64_t version,
                          uint64_t digest) {
  ReplicaAuditReport r;
  r.replica = replica;
  r.epoch = epoch;
  r.captured_version = version;
  r.table_digests = {{"main.t", digest}};
  return r;
}

TEST(AuditorTest, MajorityVoteFlagsTheMinorityReplica) {
  DivergenceAuditor auditor;
  auditor.BeginEpoch(1, 10, {1, 2, 3});
  EXPECT_TRUE(auditor.AddReport(Report(1, 1, 10, 0xAAAA)).empty());
  EXPECT_TRUE(auditor.AddReport(Report(2, 1, 10, 0xAAAA)).empty());
  std::vector<Divergence> fresh = auditor.AddReport(Report(3, 1, 10, 0xBBBB));
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].replica, 3);
  EXPECT_EQ(fresh[0].table, "main.t");
  EXPECT_EQ(fresh[0].epoch, 1u);
  EXPECT_EQ(fresh[0].expected_digest, 0xAAAAu);
  EXPECT_EQ(fresh[0].actual_digest, 0xBBBBu);
  EXPECT_TRUE(auditor.IsDiverged(3));
  EXPECT_FALSE(auditor.IsDiverged(1));
  EXPECT_EQ(auditor.epochs_compared(), 1u);
}

TEST(AuditorTest, RepeatMismatchIsDedupedAndFirstEpochIsStable) {
  DivergenceAuditor auditor;
  for (uint64_t epoch = 1; epoch <= 3; ++epoch) {
    auditor.BeginEpoch(epoch, epoch * 10, {1, 2, 3});
    auditor.AddReport(Report(1, epoch, epoch * 10, 0xAAAA));
    auditor.AddReport(Report(2, epoch, epoch * 10, 0xAAAA));
    auditor.AddReport(Report(3, epoch, epoch * 10, 0xBBBB));
  }
  EXPECT_EQ(auditor.divergences().size(), 1u)
      << "the same (replica, table) mismatch must be reported once";
  EXPECT_EQ(auditor.FirstDivergentEpoch(3), 1u);
  EXPECT_EQ(auditor.DivergedTables(3),
            (std::vector<std::string>{"main.t"}));
}

TEST(AuditorTest, UnalignedCapturesAreSkippedNotFlagged) {
  DivergenceAuditor auditor;
  auditor.BeginEpoch(1, 10, {1, 2, 3});
  // All three replicas captured at different stream positions (e.g. a
  // master racing ahead of the barrier): nothing is comparable.
  auditor.AddReport(Report(1, 1, 10, 0xAAAA));
  auditor.AddReport(Report(2, 1, 11, 0xBBBB));
  auditor.AddReport(Report(3, 1, 12, 0xCCCC));
  EXPECT_TRUE(auditor.divergences().empty());
  EXPECT_EQ(auditor.epochs_compared(), 0u);
  EXPECT_EQ(auditor.epochs_unaligned(), 1u);
}

TEST(AuditorTest, PartialAlignmentComparesTheAlignedPair) {
  DivergenceAuditor auditor;
  auditor.BeginEpoch(1, 10, {1, 2, 3});
  auditor.AddReport(Report(1, 1, 10, 0xAAAA));
  auditor.AddReport(Report(2, 1, 10, 0xDDDD));  // Aligned with 1, differs.
  auditor.AddReport(Report(3, 1, 13, 0xEEEE));  // Ahead; not comparable.
  // Two-way tie: the lower replica id is canonical, so 2 is flagged.
  ASSERT_EQ(auditor.divergences().size(), 1u);
  EXPECT_EQ(auditor.divergences()[0].replica, 2);
  EXPECT_FALSE(auditor.IsDiverged(3));
}

TEST(AuditorTest, MissingTableCountsAsEmptyDigest) {
  DivergenceAuditor auditor;
  auditor.BeginEpoch(1, 10, {1, 2});
  ReplicaAuditReport missing;
  missing.replica = 2;
  missing.epoch = 1;
  missing.captured_version = 10;  // Reports no tables at all.
  auditor.AddReport(Report(1, 1, 10, 0xAAAA));
  auditor.AddReport(missing);
  ASSERT_EQ(auditor.divergences().size(), 1u);
  EXPECT_EQ(auditor.divergences()[0].table, "main.t");
}

// --- End-to-end: barriers + digests through a live cluster -------------------

/// Deterministic point-update workload for the false-positive soak.
class CleanWorkload : public workload::Workload {
 public:
  std::vector<std::string> SetupStatements() const override {
    std::vector<std::string> out = {
        "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)"};
    std::string batch = "INSERT INTO accounts VALUES ";
    for (int i = 0; i < 100; ++i) {
      if (i) batch += ", ";
      batch += "(" + std::to_string(i) + ", 100)";
    }
    out.push_back(batch);
    return out;
  }
  middleware::TxnRequest Next(Rng* rng) override {
    middleware::TxnRequest req;
    req.read_only = false;
    req.statements.push_back(
        "UPDATE accounts SET balance = balance + 1 WHERE id = " +
        std::to_string(rng->UniformRange(0, 99)));
    return req;
  }
};

/// CleanWorkload plus occasional per-row RAND() updates.
class RandWorkload : public CleanWorkload {
 public:
  middleware::TxnRequest Next(Rng* rng) override {
    if (rng->UniformRange(0, 4) == 0) {
      middleware::TxnRequest req;
      req.read_only = false;
      req.statements.push_back("UPDATE accounts SET balance = RAND() WHERE id = " +
                               std::to_string(rng->UniformRange(0, 99)));
      return req;
    }
    return CleanWorkload::Next(rng);
  }
};

std::unique_ptr<Cluster> MakeAuditedCluster(ReplicationMode mode,
                                            workload::Workload* w,
                                            sim::Duration interval,
                                            NonDeterminismPolicy policy =
                                                NonDeterminismPolicy::kRefuse,
                                            uint64_t seed = 1234) {
  ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.mode = mode;
  opts.controller.nondeterminism = policy;
  opts.controller.audit_interval = interval;
  opts.controller.seed = seed;
  auto c = std::make_unique<Cluster>(std::move(opts));
  c->Setup(w->SetupStatements());
  c->Start();
  return c;
}

TEST(ClusterAuditTest, NoFalsePositivesOverManyWritesetEpochs) {
  // 100+ audit epochs under randomized concurrent load in writeset mode:
  // every compared epoch must be clean. Two seeds to randomize schedules.
  for (uint64_t seed : {7u, 41u}) {
    CleanWorkload w;
    auto c = MakeAuditedCluster(ReplicationMode::kMultiMasterCertification,
                                &w, 50 * kMillisecond,
                                NonDeterminismPolicy::kRefuse, seed);
    workload::ClosedLoopGenerator gen(&c->sim, c->driver(), &w, /*clients=*/8,
                                      /*think=*/0, seed);
    gen.Run(6 * kSecond);
    c->sim.RunFor(kSecond);  // Drain so the tail epochs align.
    const DivergenceAuditor& auditor = c->controller->auditor();
    EXPECT_GE(auditor.epochs_started(), 100u);
    EXPECT_GT(auditor.epochs_compared(), 0u);
    EXPECT_TRUE(auditor.divergences().empty())
        << "seed " << seed << ": writeset replication audited divergent";
    EXPECT_TRUE(c->Converged());
  }
}

TEST(ClusterAuditTest, BarrierReportsAlignUnderLoad) {
  // While traffic is flowing, completed epochs either compare at least two
  // replicas at an identical stream position or are counted unaligned —
  // they are never silently dropped.
  CleanWorkload w;
  auto c = MakeAuditedCluster(ReplicationMode::kMasterSlaveAsync, &w,
                              100 * kMillisecond);
  workload::ClosedLoopGenerator gen(&c->sim, c->driver(), &w, 8, 0, 7);
  gen.Run(4 * kSecond);
  c->sim.RunFor(kSecond);
  const DivergenceAuditor& auditor = c->controller->auditor();
  EXPECT_GT(auditor.reports_received(), 0u);
  EXPECT_GT(auditor.epochs_compared(), 0u);
  EXPECT_GE(auditor.epochs_started(),
            auditor.epochs_compared() + auditor.epochs_unaligned());
  EXPECT_TRUE(auditor.divergences().empty());
}

TEST(ClusterAuditTest, CatchesStatementModeRandDivergenceOnline) {
  uint64_t detected_before = 0;
  if (const obs::Counter* counter = obs::MetricsRegistry::Global().FindCounter(
          "audit.cluster.divergence_detected")) {
    detected_before = counter->value();
  }
  RandWorkload w;
  auto c = MakeAuditedCluster(ReplicationMode::kMultiMasterStatement, &w,
                              100 * kMillisecond,
                              NonDeterminismPolicy::kBroadcastAnyway);
  workload::ClosedLoopGenerator gen(&c->sim, c->driver(), &w, 8, 0, 7);
  gen.Run(4 * kSecond);
  c->sim.RunFor(kSecond);
  const DivergenceAuditor& auditor = c->controller->auditor();
  ASSERT_FALSE(auditor.divergences().empty())
      << "per-row RAND() broadcast must be caught by the online audit";
  const Divergence& d = auditor.divergences().front();
  EXPECT_EQ(d.table, "main.accounts");
  EXPECT_GT(d.replica, 0);
  EXPECT_GT(d.epoch, 0u);
  EXPECT_TRUE(auditor.IsDiverged(d.replica));
  EXPECT_EQ(auditor.FirstDivergentEpoch(d.replica), d.epoch);
  const obs::Counter* counter = obs::MetricsRegistry::Global().FindCounter(
      "audit.cluster.divergence_detected");
  ASSERT_NE(counter, nullptr);
  EXPECT_GT(counter->value(), detected_before);
}

// --- Status console ----------------------------------------------------------

TEST(StatusConsoleTest, SnapshotAndRenderings) {
  CleanWorkload w;
  auto c = MakeAuditedCluster(ReplicationMode::kMasterSlaveAsync, &w,
                              100 * kMillisecond);
  workload::ClosedLoopGenerator gen(&c->sim, c->driver(), &w, 4, 0, 7);
  gen.Run(2 * kSecond);
  c->sim.RunFor(kSecond);

  StatusSnapshot snap = c->StatusReport();
  ASSERT_EQ(snap.replicas.size(), 3u);
  EXPECT_EQ(snap.replicas[0].role, "master");
  EXPECT_EQ(snap.replicas[1].role, "slave");
  EXPECT_GT(snap.head_version, 0u);
  EXPECT_GT(snap.audit_epochs_started, 0u);
  EXPECT_EQ(snap.divergences_detected, 0u);
  for (const ReplicaStatus& r : snap.replicas) {
    EXPECT_EQ(r.state, "online");
    EXPECT_FALSE(r.diverged);
    EXPECT_GT(r.digest_epoch, 0u);
  }

  std::string text = c->ShowReplicaStatus();
  EXPECT_NE(text.find("SHOW REPLICA STATUS"), std::string::npos);
  EXPECT_NE(text.find("master"), std::string::npos);
  EXPECT_NE(text.find("divergence(s) detected"), std::string::npos);

  std::string json = RenderStatusJson(snap);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"replicas\":"), std::string::npos);
  EXPECT_NE(json.find("\"head_version\":"), std::string::npos);
}

TEST(StatusConsoleTest, DivergedReplicaIsVisibleInTheTable) {
  StatusSnapshot snap;
  snap.mode = "multi-master-statement";
  snap.consistency = "session-pcsi";
  snap.head_version = 42;
  snap.audit_epochs_started = 5;
  snap.audit_epochs_compared = 4;
  snap.divergences_detected = 1;
  ReplicaStatus bad;
  bad.id = 2;
  bad.role = "replica";
  bad.state = "online";
  bad.diverged = true;
  bad.first_divergent_epoch = 3;
  bad.diverged_tables = "main.t";
  snap.replicas.push_back(bad);
  std::string text = RenderReplicaStatus(snap);
  EXPECT_NE(text.find("YES"), std::string::npos);
  EXPECT_NE(text.find("main.t"), std::string::npos);
  EXPECT_NE(text.find("epoch 3"), std::string::npos);
}

}  // namespace
}  // namespace replidb::audit
