#include <gtest/gtest.h>

#include "middleware/recovery_log.h"

namespace replidb::middleware {
namespace {

ReplicationEntry Entry(GlobalVersion v) {
  ReplicationEntry e;
  e.version = v;
  e.statements = {"UPDATE t SET x = " + std::to_string(v)};
  e.use_statements = true;
  return e;
}

TEST(RecoveryLogTest, AppendAndRange) {
  RecoveryLog log;
  for (GlobalVersion v = 1; v <= 10; ++v) log.Append(Entry(v));
  EXPECT_EQ(log.size(), 10u);
  EXPECT_EQ(log.last_version(), 10u);
  auto range = log.Range(3, 7);
  ASSERT_EQ(range.size(), 4u);
  EXPECT_EQ(range.front().version, 4u);
  EXPECT_EQ(range.back().version, 7u);
}

TEST(RecoveryLogTest, RangeBeyondEndIsClamped) {
  RecoveryLog log;
  for (GlobalVersion v = 1; v <= 5; ++v) log.Append(Entry(v));
  EXPECT_EQ(log.Range(0, 100).size(), 5u);
  EXPECT_TRUE(log.Range(5, 100).empty());
  EXPECT_TRUE(log.Range(7, 3).empty());
}

TEST(RecoveryLogTest, RangeSkipsGaps) {
  RecoveryLog log;
  log.Append(Entry(1));
  log.Append(Entry(2));
  log.Append(Entry(5));  // Gap after a failover truncation.
  auto range = log.Range(0, 10);
  ASSERT_EQ(range.size(), 3u);
  EXPECT_EQ(range[2].version, 5u);
}

TEST(RecoveryLogTest, CheckpointsPerReplica) {
  RecoveryLog log;
  EXPECT_EQ(log.Checkpoint(1), 0u);
  log.SetCheckpoint(1, 42);
  log.SetCheckpoint(2, 17);
  EXPECT_EQ(log.Checkpoint(1), 42u);
  EXPECT_EQ(log.Checkpoint(2), 17u);
}

TEST(RecoveryLogTest, TruncationRespectsSlowestCheckpoint) {
  RecoveryLog log;
  for (GlobalVersion v = 1; v <= 20; ++v) log.Append(Entry(v));
  log.SetCheckpoint(1, 15);
  log.SetCheckpoint(2, 8);  // Laggard pins the log.
  size_t dropped = log.TruncateThrough(20);
  EXPECT_EQ(dropped, 8u);
  EXPECT_EQ(log.size(), 12u);
  EXPECT_EQ(log.Range(0, 100).front().version, 9u);
}

TEST(RecoveryLogTest, TruncationWithoutCheckpointsUsesGivenVersion) {
  RecoveryLog log;
  for (GlobalVersion v = 1; v <= 10; ++v) log.Append(Entry(v));
  EXPECT_EQ(log.TruncateThrough(4), 4u);
  EXPECT_EQ(log.size(), 6u);
}

TEST(RecoveryLogTest, SizeBytesGrowsWithContent) {
  RecoveryLog log;
  int64_t empty = log.SizeBytes();
  log.Append(Entry(1));
  EXPECT_GT(log.SizeBytes(), empty);
}

TEST(RecoveryLogTest, ReAppendOverwritesVersion) {
  RecoveryLog log;
  log.Append(Entry(1));
  ReplicationEntry e = Entry(1);
  e.statements = {"UPDATE t SET x = 999"};
  log.Append(e);
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.Range(0, 2)[0].statements[0], "UPDATE t SET x = 999");
}

TEST(ReplicationEntryTest, SizeAccountsForPayload) {
  ReplicationEntry small = Entry(1);
  ReplicationEntry big = Entry(2);
  for (int i = 0; i < 50; ++i) {
    engine::WriteOp op;
    op.table = "accounts";
    op.primary_key = sql::Value::Int(i);
    op.after = {sql::Value::Int(i), sql::Value::String("some payload")};
    big.writeset.ops.push_back(std::move(op));
  }
  EXPECT_GT(big.SizeBytes(), small.SizeBytes());
}

}  // namespace
}  // namespace replidb::middleware
