#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "engine/rdbms.h"
#include "sql/parser.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::workload {
namespace {

/// Every workload's setup must load cleanly into a fresh engine and every
/// generated transaction must parse and (mostly) execute against it.
class WorkloadContractTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<Workload> Make() {
    switch (GetParam()) {
      case 0: return std::make_unique<TicketBrokerWorkload>();
      case 1: return std::make_unique<MicroWorkload>();
      case 2: return std::make_unique<BatchScriptWorkload>();
      case 3: return std::make_unique<MultiTableWorkload>();
      case 4: return std::make_unique<PartitionedOrdersWorkload>();
    }
    return nullptr;
  }
};

std::string WorkloadName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "TicketBroker";
    case 1: return "Micro";
    case 2: return "BatchScript";
    case 3: return "MultiTable";
    case 4: return "PartitionedOrders";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadContractTest,
                         ::testing::Range(0, 5), WorkloadName);

TEST_P(WorkloadContractTest, SetupLoadsCleanly) {
  auto w = Make();
  engine::Rdbms db{engine::RdbmsOptions{}};
  engine::SessionId s = db.Connect().value();
  for (const std::string& stmt : w->SetupStatements()) {
    engine::ExecResult r = db.Execute(s, stmt);
    ASSERT_TRUE(r.ok()) << stmt << " -> " << r.status.ToString();
  }
}

TEST_P(WorkloadContractTest, GeneratedStatementsParse) {
  auto w = Make();
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    middleware::TxnRequest req = w->Next(&rng);
    ASSERT_FALSE(req.statements.empty());
    for (const std::string& stmt : req.statements) {
      EXPECT_TRUE(sql::Parse(stmt).ok()) << stmt;
    }
  }
}

TEST_P(WorkloadContractTest, GeneratedTransactionsExecute) {
  auto w = Make();
  engine::Rdbms db{engine::RdbmsOptions{}};
  engine::SessionId s = db.Connect().value();
  for (const std::string& stmt : w->SetupStatements()) db.Execute(s, stmt);
  Rng rng(43);
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    middleware::TxnRequest req = w->Next(&rng);
    db.Execute(s, "BEGIN");
    bool ok = true;
    for (const std::string& stmt : req.statements) {
      if (!db.Execute(s, stmt).ok()) ok = false;
    }
    db.Execute(s, ok ? "COMMIT" : "ROLLBACK");
    if (!ok) ++failures;
  }
  EXPECT_EQ(failures, 0) << "workload transactions must run clean";
}

TEST_P(WorkloadContractTest, ReadOnlyFlagMatchesStatements) {
  auto w = Make();
  Rng rng(44);
  for (int i = 0; i < 200; ++i) {
    middleware::TxnRequest req = w->Next(&rng);
    bool has_write = false;
    for (const std::string& stmt : req.statements) {
      auto parsed = sql::Parse(stmt);
      if (parsed.ok() && parsed.value().IsWrite()) has_write = true;
    }
    if (req.read_only) {
      EXPECT_FALSE(has_write) << "read_only txn contains a write";
    }
  }
}

TEST(TicketBrokerTest, WriteFractionRoughlyHonored) {
  TicketBrokerWorkload w;
  Rng rng(7);
  int writes = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (!w.Next(&rng).read_only) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / n, 0.05, 0.015);
}

TEST(TicketBrokerTest, ZipfSkewsItemPopularity) {
  TicketBrokerWorkload::Options o;
  o.items = 1000;
  o.zipf_theta = 0.8;
  TicketBrokerWorkload w(o);
  Rng rng(7);
  int low_items = 0;
  for (int i = 0; i < 2000; ++i) {
    middleware::TxnRequest req = w.Next(&rng);
    if (req.partition_hint < 100) ++low_items;
  }
  EXPECT_GT(low_items, 600) << "popular items must dominate";
}

TEST(BatchScriptTest, CyclesThroughRowsSequentially) {
  BatchScriptWorkload w(10);
  Rng rng(1);
  std::set<int64_t> first_ten;
  for (int i = 0; i < 10; ++i) first_ten.insert(w.Next(&rng).partition_hint);
  EXPECT_EQ(first_ten.size(), 10u) << "each row visited once per cycle";
}

TEST(RunStatsTest, ThroughputAndAbortRate) {
  RunStats s;
  s.committed = 900;
  s.failed = 100;
  s.elapsed = 10 * sim::kSecond;
  EXPECT_DOUBLE_EQ(s.ThroughputTps(), 90.0);
  EXPECT_DOUBLE_EQ(s.AbortRate(), 0.1);
}

TEST(RunStatsTest, MergeCombinesEverything) {
  RunStats a, b;
  a.committed = 10;
  a.failed = 1;
  a.latency_ms.Add(5);
  a.elapsed = 5 * sim::kSecond;
  b.committed = 20;
  b.failed = 2;
  b.latency_ms.Add(15);
  b.elapsed = 10 * sim::kSecond;
  b.failures_by_code[StatusCode::kTimeout] = 2;
  a.Merge(b);
  EXPECT_EQ(a.committed, 30u);
  EXPECT_EQ(a.failed, 3u);
  EXPECT_EQ(a.latency_ms.count(), 2u);
  EXPECT_EQ(a.elapsed, 10 * sim::kSecond);
  EXPECT_EQ(a.failures_by_code[StatusCode::kTimeout], 2u);
}

TEST(RecordTest, RoutesLatencyByKind) {
  RunStats s;
  middleware::TxnRequest read;
  read.read_only = true;
  middleware::TxnResult ok;
  ok.status = Status::OK();
  ok.latency = 2 * sim::kMillisecond;
  ok.staleness = 3;
  Record(&s, read, ok);
  middleware::TxnRequest write;
  write.read_only = false;
  Record(&s, write, ok);
  middleware::TxnResult bad;
  bad.status = Status::Timeout("x");
  Record(&s, write, bad);
  EXPECT_EQ(s.committed, 2u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.read_latency_ms.count(), 1u);
  EXPECT_EQ(s.write_latency_ms.count(), 1u);
  EXPECT_EQ(s.staleness.count(), 1u);
  EXPECT_EQ(s.failures_by_code[StatusCode::kTimeout], 1u);
}

}  // namespace
}  // namespace replidb::workload
