// End-to-end tests for tools/replicheck: each rule gets a violating and a
// clean fixture tree, plus allow-directive suppression/inventory and exit
// codes. The binary path is injected by CMake as REPLICHECK_BIN.

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr combined.
};

/// One disposable source tree per test case, rooted in the gtest temp dir.
class ReplicheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = fs::path(::testing::TempDir()) / "replicheck" / info->name();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override { fs::remove_all(root_); }

  void WriteFile(const std::string& rel, const std::string& content) {
    fs::path p = root_ / rel;
    fs::create_directories(p.parent_path());
    std::ofstream out(p);
    ASSERT_TRUE(out.is_open()) << p;
    out << content;
  }

  RunResult Run(const std::string& extra_args = "") {
    std::string cmd = std::string(REPLICHECK_BIN) + " --root " +
                      root_.string() + " " + extra_args + " 2>&1";
    RunResult r;
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    if (!pipe) return r;
    char buf[4096];
    size_t n;
    while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) {
      r.output.append(buf, n);
    }
    int status = pclose(pipe);
    r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return r;
  }

  fs::path root_;
};

constexpr char kCleanSource[] = R"cc(
#include "common/rng.h"
int Sum(int a, int b) { return a + b; }
)cc";

TEST_F(ReplicheckTest, CleanTreeExitsZero) {
  WriteFile("src/clean.cc", kCleanSource);
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("0 violations"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, MissingTreeExitsTwo) {
  RunResult r = Run();  // Empty root: no src/tests/bench at all.
  EXPECT_EQ(r.exit_code, 2) << r.output;
}

TEST_F(ReplicheckTest, ListRulesExitsZero) {
  WriteFile("src/clean.cc", kCleanSource);
  RunResult r = Run("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule :
       {"raw-rng", "wall-clock", "addr-identity", "unordered-iter",
        "send-size", "raw-mutex", "lock-rank", "codec-registry"}) {
    EXPECT_NE(r.output.find(rule), std::string::npos)
        << "rule " << rule << " missing from --list-rules\n" << r.output;
  }
}

// --- raw-rng ---------------------------------------------------------------

TEST_F(ReplicheckTest, RawRngEngineIsFlagged) {
  WriteFile("src/gen.cc", R"cc(
#include <random>
std::mt19937 g_gen(42);
int Roll() { return rand(); }
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[raw-rng] 'mt19937'"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[raw-rng] 'rand'"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, RawRngAppliesToTestsToo) {
  WriteFile("tests/gen_test.cc", "std::mt19937_64 rng(7);\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("raw-rng"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, RngMentionsInCommentsAndStringsAreIgnored) {
  WriteFile("src/doc.cc", R"cc(
// std::mt19937 would be wrong here; rand() too.
const char* kNote = "uses mt19937 internally";
int F() { return 1; }
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST_F(ReplicheckTest, MemberNamedRandIsNotLibcRand) {
  WriteFile("src/member.cc", "int G(Rng& r) { return r.rand() + p->rand(); }\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- wall-clock ------------------------------------------------------------

TEST_F(ReplicheckTest, WallClockInSrcIsFlagged) {
  WriteFile("src/now.cc", R"cc(
#include <chrono>
long Now() {
  return std::chrono::system_clock::now().time_since_epoch().count();
}
long Epoch() {
  long e = time(nullptr);
  return e;
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[wall-clock] 'system_clock'"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("[wall-clock] 'time()'"), std::string::npos)
      << r.output;
}

TEST_F(ReplicheckTest, WallClockOutsideSrcIsAllowed) {
  // Tests may time themselves; only simulation code is clock-restricted.
  WriteFile("tests/bench_test.cc",
            "auto t = std::chrono::steady_clock::now();\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- addr-identity ---------------------------------------------------------

TEST_F(ReplicheckTest, PointerFormatAndPointerKeyedMapAreFlagged) {
  WriteFile("src/addr.cc", R"cc(
#include <cstdio>
#include <map>
struct Widget {};
std::map<Widget*, int> g_by_widget;
void Dump(Widget* w) { std::printf("widget at %p\n", (void*)w); }
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("addr-identity"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("%p"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("keyed by a pointer"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, ValueKeyedMapIsClean) {
  WriteFile("src/val.cc",
            "#include <map>\n#include <string>\n"
            "std::map<std::string, int> g_by_name;\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- unordered-iter --------------------------------------------------------

TEST_F(ReplicheckTest, UnorderedIterationInReplicationDirIsFlagged) {
  WriteFile("src/engine/scan.cc", R"cc(
#include <unordered_map>
std::unordered_map<int, int> g_rows;
int Total() {
  int sum = 0;
  for (const auto& kv : g_rows) sum += kv.second;
  return sum;
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unordered-iter]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("g_rows"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, UnorderedIterationResolvesThroughIncludes) {
  // The container lives in a header; the iteration in a .cc that includes
  // it (quoted includes are rooted at src/).
  WriteFile("src/engine/table.h",
            "#include <unordered_map>\n"
            "inline std::unordered_map<int, int> g_pending;\n");
  WriteFile("src/engine/table.cc", R"cc(
#include "engine/table.h"
void Wipe() {
  for (auto it = g_pending.begin(); it != g_pending.end(); ++it) {}
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unordered-iter]"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, UnorderedIterationOutsideTaggedDirsIsClean) {
  WriteFile("src/obs/stats.cc", R"cc(
#include <unordered_map>
std::unordered_map<int, int> g_counts;
int Total() {
  int sum = 0;
  for (const auto& kv : g_counts) sum += kv.second;
  return sum;
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- allow directives ------------------------------------------------------

TEST_F(ReplicheckTest, AllowCommentSuppressesAndIsInventoried) {
  WriteFile("src/engine/scan.cc", R"cc(
#include <unordered_map>
std::unordered_map<int, int> g_rows;
int Total() {
  int sum = 0;
  // replicheck:allow(unordered-iter) commutative sum; order never escapes
  for (const auto& kv : g_rows) sum += kv.second;
  return sum;
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("1 suppressed by 1 allow directive (0 unused)"),
            std::string::npos)
      << r.output;
}

TEST_F(ReplicheckTest, AllowForTheWrongRuleDoesNotSuppress) {
  WriteFile("src/engine/scan.cc", R"cc(
#include <unordered_map>
std::unordered_map<int, int> g_rows;
int Total() {
  int sum = 0;
  // replicheck:allow(raw-rng) wrong rule on purpose
  for (const auto& kv : g_rows) sum += kv.second;
  return sum;
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[unordered-iter]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("[UNUSED]"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, StaleAllowIsReportedUnused) {
  WriteFile("src/tidy.cc",
            "// replicheck:allow(raw-rng) leftover from deleted code\n"
            "int F() { return 1; }\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;  // Unused allows warn, not fail.
  EXPECT_NE(r.output.find("[UNUSED]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("(1 unused)"), std::string::npos) << r.output;
}

// --- send-size -------------------------------------------------------------

TEST_F(ReplicheckTest, BareLiteralSendSizeIsFlagged) {
  WriteFile("src/net/ping.cc", R"cc(
void Ping(Net& net_) {
  net_.Send(1, "ping", Body{}, 64);
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[send-size]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("'64'"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, NamedOrComputedSendSizeIsClean) {
  WriteFile("src/net/ping.cc", R"cc(
constexpr long kPingWireBytes = 64;
void Ping(Net& net_, long payload) {
  net_.Send(1, "ping", Body{}, kPingWireBytes);
  net_.Send(2, "data", Body{}, payload + 48);
}
)cc");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- raw-mutex / lock-rank -------------------------------------------------

TEST_F(ReplicheckTest, RawStdMutexIsFlagged) {
  WriteFile("src/svc.cc", "#include <mutex>\nstd::mutex g_mu;\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[raw-mutex]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("OrderedMutex"), std::string::npos) << r.output;
}

TEST_F(ReplicheckTest, UndeclaredLockRankIsFlagged) {
  WriteFile("src/common/locks.h",
            "enum class LockRank { kLogClock = 10, kTracer = 40, };\n");
  WriteFile("src/svc.cc",
            "OrderedMutex a{LockRank::kLogClock};\n"   // Declared: clean.
            "OrderedMutex b{LockRank::kBogus};\n");    // Not in the table.
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[lock-rank]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("kBogus"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("kLogClock"), std::string::npos) << r.output;
}

// --- codec-registry --------------------------------------------------------

TEST_F(ReplicheckTest, UnregisteredWireMessageIsFlagged) {
  WriteFile("src/middleware/messages.h",
            "struct PingMsg { int a; };\n"
            "struct PongMsg { int b; };\n");
  WriteFile("src/middleware/wire_registry.h",
            "#define REPLIDB_WIRE_MESSAGES(X) \\\n"
            "  X(PingMsg, kMsgPing)\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("[codec-registry]"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("PongMsg"), std::string::npos) << r.output;
  EXPECT_EQ(r.output.find("struct PingMsg is not registered"),
            std::string::npos)
      << r.output;
}

TEST_F(ReplicheckTest, FullyRegisteredMessagesAreClean) {
  WriteFile("src/middleware/messages.h",
            "struct PingMsg { int a; };\n");
  WriteFile("src/middleware/wire_registry.h",
            "#define REPLIDB_WIRE_MESSAGES(X) \\\n"
            "  X(PingMsg, kMsgPing)\n");
  RunResult r = Run();
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

// --- the real tree ---------------------------------------------------------

TEST_F(ReplicheckTest, RealSourceTreeIsClean) {
  // The same invocation the replicheck_tree ctest makes, minus the
  // compile-commands database (headers + all sources walked directly).
  std::string cmd =
      std::string(REPLICHECK_BIN) + " --root " + REPLICHECK_SOURCE_ROOT +
      " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof(buf), pipe)) > 0) output.append(buf, n);
  int status = pclose(pipe);
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0) << output;
  EXPECT_NE(output.find("0 violations"), std::string::npos) << output;
  EXPECT_NE(output.find("(0 unused)"), std::string::npos) << output;
}

}  // namespace
