#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/histogram.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace replidb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table t");
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, RetryableAborts) {
  EXPECT_TRUE(Status::Aborted("x").IsRetryableAbort());
  EXPECT_TRUE(Status::Deadlock("x").IsRetryableAbort());
  EXPECT_TRUE(Status::Conflict("x").IsRetryableAbort());
  EXPECT_FALSE(Status::NotFound("x").IsRetryableAbort());
  EXPECT_FALSE(Status::Unavailable("x").IsRetryableAbort());
  EXPECT_FALSE(Status::OK().IsRetryableAbort());
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Timeout("net");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValue();
  EXPECT_EQ(v, "payload");
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = r.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng r(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.Exponential(5.0);
  double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.3);
}

TEST(RngTest, ChanceRespectsProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.Chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng r(17);
  int low = 0, high = 0;
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = r.Zipf(1000, 0.8);
    EXPECT_LT(v, 1000u);
    if (v < 100) ++low;
    if (v >= 900) ++high;
  }
  EXPECT_GT(low, high * 3);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(21);
  Rng b = a.Fork();
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) {
    seen.insert(a.Next());
    seen.insert(b.Next());
  }
  EXPECT_EQ(seen.size(), 100u);
}

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Median(), 50.5, 0.6);
  EXPECT_NEAR(h.P95(), 95, 1.1);
  EXPECT_NEAR(h.P99(), 99, 1.1);
}

TEST(HistogramTest, PercentileEdgeCases) {
  Histogram h;
  h.Add(10);
  EXPECT_EQ(h.Percentile(0), 10.0);
  EXPECT_EQ(h.Percentile(100), 10.0);
  EXPECT_EQ(h.Percentile(50), 10.0);
}

TEST(HistogramTest, PercentileOutOfRangeRanksClampToExtremes) {
  Histogram h;
  for (int i = 1; i <= 10; ++i) h.Add(i);
  // Out-of-range and non-finite ranks clamp instead of reading garbage.
  EXPECT_DOUBLE_EQ(h.Percentile(-5), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(150), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(std::nan("")), 1.0);
  // Just inside the ends: interpolation stays within [min, max].
  EXPECT_GE(h.Percentile(1e-9), 1.0);
  EXPECT_LE(h.Percentile(100.0 - 1e-9), 10.0);
  EXPECT_NEAR(h.Percentile(99.9999), 10.0, 1e-3);
}

TEST(HistogramTest, PercentileTwoSamplesAllRanksBounded) {
  Histogram h;
  h.Add(3);
  h.Add(7);
  for (double p = 0.0; p <= 100.0; p += 0.37) {
    double v = h.Percentile(p);
    EXPECT_GE(v, 3.0) << "p=" << p;
    EXPECT_LE(v, 7.0) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(h.Percentile(0), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.0);
}

TEST(HistogramTest, AddAfterQueryStillSorted) {
  Histogram h;
  h.Add(5);
  EXPECT_EQ(h.Max(), 5.0);
  h.Add(1);
  h.Add(9);
  EXPECT_EQ(h.Min(), 1.0);
  EXPECT_EQ(h.Max(), 9.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(1);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, EmptyPercentilesAndExtremaAreZero) {
  Histogram h;
  EXPECT_EQ(h.Min(), 0.0);
  EXPECT_EQ(h.Max(), 0.0);
  EXPECT_EQ(h.Median(), 0.0);
  EXPECT_EQ(h.P95(), 0.0);
  EXPECT_EQ(h.P99(), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesBetweenSamples) {
  Histogram h;
  h.Add(0);
  h.Add(10);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  for (double v : {20.0, 30.0, 40.0}) h.Add(v);
  // Sorted: 0 10 20 30 40 — rank p/100 * (n-1) lands on exact indices.
  EXPECT_DOUBLE_EQ(h.Percentile(25), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 20.0);
  EXPECT_DOUBLE_EQ(h.Percentile(75), 30.0);
}

TEST(HistogramTest, PercentilesOnSkewedTail) {
  // 99 fast requests and one 1000 ms straggler: the median must ignore the
  // tail, p99 must interpolate toward it, max must report it exactly.
  Histogram h;
  for (int i = 0; i < 99; ++i) h.Add(1.0);
  h.Add(1000.0);
  EXPECT_DOUBLE_EQ(h.Median(), 1.0);
  EXPECT_DOUBLE_EQ(h.P95(), 1.0);
  // rank = 0.99 * 99 = 98.01 -> 0.99*samples[98] + 0.01*samples[99].
  EXPECT_NEAR(h.P99(), 10.99, 1e-6);
  EXPECT_DOUBLE_EQ(h.Max(), 1000.0);
}

TEST(HistogramTest, InsertionOrderDoesNotMatter) {
  Histogram asc, desc;
  for (int i = 1; i <= 100; ++i) asc.Add(i);
  for (int i = 100; i >= 1; --i) desc.Add(i);
  for (double p : {10.0, 50.0, 90.0, 95.0, 99.0}) {
    EXPECT_DOUBLE_EQ(asc.Percentile(p), desc.Percentile(p)) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(asc.Max(), desc.Max());
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  for (int i = 1; i <= 50; ++i) a.Add(i);
  for (int i = 51; i <= 100; ++i) b.Add(i);
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_DOUBLE_EQ(a.Mean(), 50.5);
  EXPECT_DOUBLE_EQ(a.Min(), 1.0);
  EXPECT_DOUBLE_EQ(a.Max(), 100.0);
  EXPECT_NEAR(a.Median(), 50.5, 1e-9);
}

}  // namespace
}  // namespace replidb
